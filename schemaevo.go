// Package schemaevo analyzes the time-related behaviour of relational
// schema evolution, reproducing the taxonomy of "Time-Related Patterns Of
// Schema Evolution" (Vassiliadis & Karakasidis, EDBT 2025).
//
// Given a project's history of DDL snapshots, the library reconstructs
// the logical schema per version, detects attribute-level change, builds
// the monthly heartbeat and its cumulative line, computes the paper's
// time-related measures (§3.2), quantizes them to the Table 1 labels, and
// classifies the project into one of the eight patterns of §4:
//
//	Be Quick or Be Dead:        Flatliner, Radical Sign, Sigmoid, Late Riser
//	Stairway to Heaven:         Quantum Steps, Regularly Curated
//	Scared to Fall Asleep Again: Siesta, Smoking Funnel
//
// The typical entry points are AnalyzeDir (a directory of dated .sql
// snapshots), AnalyzeRepo (an in-memory commit history), and
// GeneratePaperCorpus (the calibrated 151-project synthetic corpus that
// regenerates the paper's evaluation).
package schemaevo

import (
	"context"
	"fmt"

	"schemaevo/internal/chart"
	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/gitrepo"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
	"schemaevo/internal/vcs"
)

// Pattern identifies one of the eight time-related patterns (or
// Unclassified).
type Pattern = core.Pattern

// The eight patterns and the sentinel.
const (
	Unclassified     = core.Unclassified
	Flatliner        = core.Flatliner
	RadicalSign      = core.RadicalSign
	Sigmoid          = core.Sigmoid
	LateRiser        = core.LateRiser
	QuantumSteps     = core.QuantumSteps
	RegularlyCurated = core.RegularlyCurated
	Siesta           = core.Siesta
	SmokingFunnel    = core.SmokingFunnel
)

// AllPatterns lists the eight patterns in the paper's order.
var AllPatterns = core.AllPatterns

// Family identifies one of the three pattern families.
type Family = core.Family

// The three families.
const (
	BeQuickOrBeDead         = core.BeQuickOrBeDead
	StairwayToHeaven        = core.StairwayToHeaven
	ScaredToFallAsleepAgain = core.ScaredToFallAsleepAgain
)

// FamilyOf returns the family of a pattern.
func FamilyOf(p Pattern) Family { return core.FamilyOf(p) }

// Describe returns the paper's prose characterization of a pattern.
func Describe(p Pattern) string { return core.Describe(p) }

// DescribeFamily returns the paper's prose characterization of a family.
func DescribeFamily(f Family) string { return core.DescribeFamily(f) }

// Repo is a project commit history: the input to AnalyzeRepo. Build one
// programmatically, load it with LoadRepo, or read a snapshot directory
// with AnalyzeDir.
type Repo = vcs.Repo

// Commit is one repository commit (timestamp, file snapshots, source
// lines touched).
type Commit = vcs.Commit

// Measures holds the §3.2 time-related measures of a project.
type Measures = metrics.Measures

// Labels is the Table 1 ordinal profile of a project.
type Labels = quantize.Labels

// History is the reconstructed schema history (versions, deltas,
// heartbeats).
type History = history.History

// Corpus is a collection of projects under study.
type Corpus = corpus.Corpus

// Project is one corpus member.
type Project = corpus.Project

// Analysis is the complete result of analyzing one project.
type Analysis struct {
	// Project is the repository name.
	Project string
	// Pattern is the time-related pattern the project follows. When the
	// profile satisfies no formal definition exactly, this is the
	// nearest pattern and Exact is false.
	Pattern Pattern
	// Exact reports whether the profile satisfies the pattern's formal
	// definition (Defs 4.1-4.8).
	Exact bool
	// Family is the pattern's family.
	Family Family
	// Measures and Labels are the underlying §3.2 measures and Table 1
	// labels.
	Measures Measures
	Labels   Labels
	// History gives access to versions, deltas and heartbeats.
	History *History
}

// SchemaLine returns the cumulative fractional schema-evolution line
// (one value per month of project life).
func (a *Analysis) SchemaLine() []float64 { return a.History.SchemaCumulative() }

// SourceLine returns the cumulative fractional source-code line.
func (a *Analysis) SourceLine() []float64 { return a.History.SourceCumulative() }

// Chart renders the Fig. 1-style ASCII chart of the project.
func (a *Analysis) Chart() string {
	title := fmt.Sprintf("%s — %s (%s)", a.Project, a.Pattern, a.Family)
	return chart.ASCII(a.SchemaLine(), a.SourceLine(), chart.Options{Title: title})
}

// ChartSVG renders the chart as an SVG document.
func (a *Analysis) ChartSVG() string {
	title := fmt.Sprintf("%s — %s", a.Project, a.Pattern)
	return chart.SVG(a.SchemaLine(), a.SourceLine(), chart.Options{Title: title})
}

// AnalyzeRepo runs the full pipeline on a repository: schema-history
// extraction, measures, labels and pattern classification.
func AnalyzeRepo(r *Repo) (*Analysis, error) {
	return AnalyzeRepoCached(r, "")
}

// AnalyzeRepoCached is AnalyzeRepo backed by the content-hash result
// cache rooted at cacheDir (empty disables caching): re-analysis of an
// unchanged repository restores its history and measures from disk
// instead of recomputing them.
func AnalyzeRepoCached(r *Repo, cacheDir string) (*Analysis, error) {
	a, _, err := AnalyzeRepoWithOptions(r, PipelineOptions{CacheDir: cacheDir})
	return a, err
}

// AnalyzeRepoWithOptions is AnalyzeRepo under explicit pipeline options —
// cache directory, per-project deadline, fault injection — returning the
// pipeline statistics (including the degradation report, which classifies
// any failure as parse/assemble/metrics/timeout/panic) alongside the
// analysis.
func AnalyzeRepoWithOptions(r *Repo, opts PipelineOptions) (*Analysis, PipelineStats, error) {
	res, stats, err := pipeline.AnalyzeRepo(context.Background(), r, opts)
	if err != nil {
		return nil, stats, err
	}
	if !res.Measures.HasSchema {
		return nil, stats, fmt.Errorf("schemaevo: %s: the schema file never defines a logical schema", r.Name)
	}
	p := core.Classify(res.Labels)
	exact := p != core.Unclassified
	if !exact {
		p = core.ClassifyNearest(res.Labels)
	}
	return &Analysis{
		Project:  r.Name,
		Pattern:  p,
		Exact:    exact,
		Family:   core.FamilyOf(p),
		Measures: res.Measures,
		Labels:   res.Labels,
		History:  res.History,
	}, stats, nil
}

// AnalyzeDir analyzes a directory of dated schema snapshots named
// NNNN_YYYY-MM-DD.sql (or YYYY-MM-DD.sql).
func AnalyzeDir(dir string) (*Analysis, error) {
	r, err := vcs.ReadVersionDir(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeRepo(r)
}

// LoadRepo reads a repository from its JSON serialization.
func LoadRepo(path string) (*Repo, error) { return vcs.LoadFile(path) }

// AnalyzeGit extracts the schema history of a local git checkout (the
// current branch, oldest first) and analyzes it. Requires a git binary on
// the PATH. maxCommits bounds the walk (0 = all commits).
func AnalyzeGit(dir string, maxCommits int) (*Analysis, error) {
	r, err := gitrepo.Extract(dir, maxCommits)
	if err != nil {
		return nil, err
	}
	return AnalyzeRepo(r)
}

// GeneratePaperCorpus generates the calibrated 151-project corpus whose
// aggregate behaviour matches the paper's published statistics. The same
// seed always yields the same corpus. The corpus is returned un-analyzed;
// call AnalyzeCorpus (or Corpus.Analyze) before reading derived fields.
func GeneratePaperCorpus(seed int64) (*Corpus, error) {
	return synth.PaperCorpus(seed)
}

// GenerateRandomCorpus generates n projects drawn from the paper's
// pattern mix — useful for scale testing.
func GenerateRandomCorpus(n int, seed int64) (*Corpus, error) {
	return synth.RandomCorpus(n, seed)
}

// AnalyzeCorpus runs the pipeline on every project of a corpus with the
// paper's quantization.
func AnalyzeCorpus(c *Corpus) error {
	return c.Analyze(quantize.DefaultScheme())
}

// AnalyzeCorpusParallel is AnalyzeCorpus with a bounded worker pool;
// workers <= 0 selects GOMAXPROCS. Results are identical to the
// sequential form.
func AnalyzeCorpusParallel(c *Corpus, workers int) error {
	return c.AnalyzeParallel(quantize.DefaultScheme(), workers)
}

// PipelineOptions configures the shard-per-core analysis pipeline:
// shard count, fail-fast vs collect-all error handling, and the
// content-hash cache directory. The zero value is a sensible default
// (one shard per GOMAXPROCS).
type PipelineOptions = pipeline.Options

// PipelineStats reports what a pipeline run did, including the cache-hit
// counters.
type PipelineStats = pipeline.Stats

// AnalyzeCorpusPipeline runs the corpus through the shard-per-core
// pipeline (parse → assemble → measures/labels per project, projects
// hashed across shards) with the paper's quantization. Results are
// identical to AnalyzeCorpus at any shard count; with a cache directory
// configured, unchanged projects are restored from disk instead of
// recomputed. All failures are collected and attributed per project
// unless opts.FailFast is set.
func AnalyzeCorpusPipeline(ctx context.Context, c *Corpus, opts PipelineOptions) (PipelineStats, error) {
	return pipeline.Run(ctx, c, opts)
}

// ClassifyLabels applies the formal definitions of §4 to a label profile;
// it returns Unclassified when no definition matches exactly.
func ClassifyLabels(l Labels) Pattern { return core.Classify(l) }

// ClassifyNearest always returns a pattern: the exact match when one
// exists, otherwise the nearest definition.
func ClassifyNearest(l Labels) Pattern { return core.ClassifyNearest(l) }
