package sqlddl

import (
	"reflect"
	"strings"
	"testing"
)

// roundTrip parses src, renders it, re-parses, and asserts the two parse
// results are deeply equal (RawStatement text aside).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	first, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rendered := Render(first)
	second, err := ParseStatement(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v\nrendered: %s", src, err, rendered)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("round trip changed the statement\nsource:   %s\nrendered: %s\nfirst:  %#v\nsecond: %#v",
			src, rendered, first, second)
	}
}

func TestRenderRoundTripCreateTable(t *testing.T) {
	cases := []string{
		`CREATE TABLE t (a INT)`,
		`CREATE TABLE IF NOT EXISTS t (a INT NOT NULL, b TEXT DEFAULT 'x')`,
		`CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(30) UNIQUE)`,
		`CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))`,
		`CREATE TABLE t (a INT, CONSTRAINT fk FOREIGN KEY (a) REFERENCES o (id) ON DELETE CASCADE)`,
		`CREATE TABLE t (a INT, UNIQUE (a))`,
		`CREATE TABLE t (a INT REFERENCES o (id) ON UPDATE RESTRICT)`,
		`CREATE TEMPORARY TABLE scratch (x INT)`,
		`CREATE TABLE "Weird Name" ("A Col" INT)`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRenderRoundTripAlterTable(t *testing.T) {
	cases := []string{
		`ALTER TABLE t ADD COLUMN a INT`,
		`ALTER TABLE t ADD COLUMN a INT NOT NULL DEFAULT 5, DROP COLUMN b`,
		`ALTER TABLE t MODIFY COLUMN a BIGINT NOT NULL`,
		`ALTER TABLE t RENAME COLUMN a TO b`,
		`ALTER TABLE t CHANGE COLUMN a b VARCHAR(10)`,
		`ALTER TABLE t ADD CONSTRAINT ck PRIMARY KEY (a)`,
		`ALTER TABLE t DROP PRIMARY KEY`,
		`ALTER TABLE t DROP CONSTRAINT fk_x`,
		`ALTER TABLE t RENAME TO u`,
		`ALTER TABLE t ALTER COLUMN a SET DEFAULT 'v'`,
		`ALTER TABLE t ALTER COLUMN a DROP DEFAULT`,
		`ALTER TABLE t ALTER COLUMN a SET NOT NULL`,
		`ALTER TABLE t ALTER COLUMN a DROP NOT NULL`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRenderRoundTripDropAndIndex(t *testing.T) {
	cases := []string{
		`DROP TABLE t`,
		`DROP TABLE IF EXISTS a, b CASCADE`,
		`CREATE UNIQUE INDEX idx ON t (a, b)`,
		`CREATE INDEX ON t (a)`,
		`DROP INDEX idx`,
		`DROP INDEX idx ON t`,
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRenderScript(t *testing.T) {
	script := Parse(`CREATE TABLE a (x INT); DROP TABLE b;`)
	out := RenderScript(script)
	if strings.Count(out, ";") != 2 {
		t.Errorf("script render: %q", out)
	}
	re := Parse(out)
	if len(re.Errors) != 0 || len(re.Statements) != 2 {
		t.Errorf("rendered script does not re-parse: %v", re.Errors)
	}
}

func TestRenderRawStatement(t *testing.T) {
	raw := &RawStatement{Verb: "INSERT", Text: "INSERT INTO t VALUES (1)"}
	if Render(raw) != raw.Text {
		t.Error("raw statements must render verbatim")
	}
}

func TestRenderCommentEscaping(t *testing.T) {
	stmt, err := ParseStatement(`CREATE TABLE t (a INT COMMENT 'it''s a comment')`)
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(stmt)
	if !strings.Contains(rendered, "it''s") {
		t.Errorf("comment not escaped: %s", rendered)
	}
	roundTrip(t, `CREATE TABLE t (a INT COMMENT 'plain')`)
}
