package sqlddl

import (
	"strings"
	"testing"
)

func mustParseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", src, err)
	}
	if stmt == nil {
		t.Fatalf("ParseStatement(%q): nil statement", src)
	}
	return stmt
}

func asCreate(t *testing.T, src string) *CreateTable {
	t.Helper()
	ct, ok := mustParseOne(t, src).(*CreateTable)
	if !ok {
		t.Fatalf("not a CreateTable: %q", src)
	}
	return ct
}

func asAlter(t *testing.T, src string) *AlterTable {
	t.Helper()
	at, ok := mustParseOne(t, src).(*AlterTable)
	if !ok {
		t.Fatalf("not an AlterTable: %q", src)
	}
	return at
}

func TestCreateTableBasic(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE users (
		id INT NOT NULL AUTO_INCREMENT,
		name VARCHAR(255) NOT NULL,
		email VARCHAR(100) DEFAULT NULL,
		created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP,
		PRIMARY KEY (id),
		UNIQUE KEY uq_email (email)
	) ENGINE=InnoDB DEFAULT CHARSET=utf8`)
	if ct.Name != "users" {
		t.Errorf("name = %q", ct.Name)
	}
	if len(ct.Columns) != 4 {
		t.Fatalf("got %d columns: %+v", len(ct.Columns), ct.Columns)
	}
	if !ct.Columns[0].AutoIncrement || !ct.Columns[0].NotNull {
		t.Errorf("id column flags: %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type != "varchar(255)" {
		t.Errorf("name type = %q", ct.Columns[1].Type)
	}
	if !ct.Columns[2].HasDefault || ct.Columns[2].Default != "NULL" {
		t.Errorf("email default = %+v", ct.Columns[2])
	}
	if len(ct.Constraints) != 2 {
		t.Fatalf("got %d constraints: %+v", len(ct.Constraints), ct.Constraints)
	}
	if ct.Constraints[0].Kind != PrimaryKeyConstraint || ct.Constraints[0].Columns[0] != "id" {
		t.Errorf("pk = %+v", ct.Constraints[0])
	}
	if ct.Constraints[1].Kind != UniqueConstraint || ct.Constraints[1].Name != "uq_email" {
		t.Errorf("unique = %+v", ct.Constraints[1])
	}
	if !strings.Contains(ct.Options, "InnoDB") {
		t.Errorf("options = %q", ct.Options)
	}
}

func TestCreateTableInlineConstraints(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE orders (
		id SERIAL PRIMARY KEY,
		user_id INTEGER NOT NULL REFERENCES users(id) ON DELETE CASCADE,
		total NUMERIC(10,2) DEFAULT 0.00 CHECK (total >= 0),
		note TEXT UNIQUE
	)`)
	id := ct.Columns[0]
	if !id.PrimaryKey || !id.AutoIncrement || !id.NotNull {
		t.Errorf("serial pk column: %+v", id)
	}
	fk := ct.Columns[1].References
	if fk == nil || fk.Table != "users" || fk.Columns[0] != "id" || fk.OnDelete != "CASCADE" {
		t.Errorf("inline fk: %+v", fk)
	}
	if ct.Columns[2].Default != "0.00" {
		t.Errorf("default = %q", ct.Columns[2].Default)
	}
	if !ct.Columns[3].Unique {
		t.Errorf("unique col: %+v", ct.Columns[3])
	}
}

func TestCreateTableForeignKeyConstraint(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE line_items (
		order_id INT,
		product_id INT,
		CONSTRAINT fk_order FOREIGN KEY (order_id) REFERENCES orders (id) ON DELETE CASCADE ON UPDATE RESTRICT,
		FOREIGN KEY (product_id) REFERENCES products (id)
	)`)
	if len(ct.Constraints) != 2 {
		t.Fatalf("constraints: %+v", ct.Constraints)
	}
	c0 := ct.Constraints[0]
	if c0.Name != "fk_order" || c0.Ref.Table != "orders" || c0.Ref.OnDelete != "CASCADE" || c0.Ref.OnUpdate != "RESTRICT" {
		t.Errorf("named fk: %+v ref %+v", c0, c0.Ref)
	}
	if ct.Constraints[1].Ref.Table != "products" {
		t.Errorf("anon fk: %+v", ct.Constraints[1])
	}
}

func TestCreateTablePostgresTypes(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE IF NOT EXISTS evt (
		id BIGSERIAL,
		at TIMESTAMP WITH TIME ZONE NOT NULL,
		dur DOUBLE PRECISION,
		tags TEXT[],
		name CHARACTER VARYING(30) DEFAULT 'x'::character varying,
		payload JSONB
	)`)
	if !ct.IfNotExists {
		t.Error("IF NOT EXISTS not detected")
	}
	wantTypes := []string{"bigserial", "timestamp with time zone", "double precision", "text array", "character varying(30)", "jsonb"}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type = %q, want %q", i, ct.Columns[i].Type, w)
		}
	}
	if ct.Columns[4].Default != "'x'::character varying" {
		t.Errorf("cast default = %q", ct.Columns[4].Default)
	}
}

func TestCreateTableQuotedIdentifiers(t *testing.T) {
	ct := asCreate(t, "CREATE TABLE `My Table` (`Weird Col` INT, \"Another\" TEXT)")
	if ct.Name != "My Table" {
		t.Errorf("name = %q", ct.Name)
	}
	if ct.Columns[0].Name != "Weird Col" || ct.Columns[1].Name != "Another" {
		t.Errorf("columns: %+v", ct.Columns)
	}
}

func TestCreateTableSchemaQualified(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE public.accounts (id INT)`)
	if ct.Name != "accounts" {
		t.Errorf("qualified name reduced to %q, want accounts", ct.Name)
	}
}

func TestCreateTableMySQLKeyClauses(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE t (
		a INT,
		b INT,
		KEY idx_a (a),
		INDEX (b),
		FULLTEXT KEY ft (a, b)
	)`)
	if len(ct.Columns) != 2 {
		t.Fatalf("columns: %+v", ct.Columns)
	}
	if len(ct.Constraints) != 3 {
		t.Fatalf("constraints: %+v", ct.Constraints)
	}
	for _, c := range ct.Constraints {
		if c.Kind != IndexConstraint {
			t.Errorf("kind = %v", c.Kind)
		}
	}
}

func TestAlterTableAddDropColumn(t *testing.T) {
	at := asAlter(t, `ALTER TABLE users ADD COLUMN age INT DEFAULT 0, DROP COLUMN legacy`)
	if at.Name != "users" || len(at.Actions) != 2 {
		t.Fatalf("%+v", at)
	}
	if at.Actions[0].Action != AddColumn || at.Actions[0].Column.Name != "age" {
		t.Errorf("add: %+v", at.Actions[0])
	}
	if at.Actions[1].Action != DropColumn || at.Actions[1].Column.Name != "legacy" {
		t.Errorf("drop: %+v", at.Actions[1])
	}
}

func TestAlterTableAddGroupedColumns(t *testing.T) {
	at := asAlter(t, `ALTER TABLE t ADD (a INT, b TEXT, c DATE)`)
	if len(at.Actions) != 3 {
		t.Fatalf("grouped add: %+v", at.Actions)
	}
	names := []string{"a", "b", "c"}
	for i, n := range names {
		if at.Actions[i].Action != AddColumn || at.Actions[i].Column.Name != n {
			t.Errorf("action %d: %+v", i, at.Actions[i])
		}
	}
}

func TestAlterTableModifyAndChange(t *testing.T) {
	at := asAlter(t, `ALTER TABLE t MODIFY COLUMN a BIGINT NOT NULL, CHANGE old_name new_name VARCHAR(50)`)
	if at.Actions[0].Action != ModifyColumn || at.Actions[0].Column.Type != "bigint" {
		t.Errorf("modify: %+v", at.Actions[0])
	}
	ch := at.Actions[1]
	if ch.Action != RenameColumn || ch.OldName != "old_name" || ch.Column.Name != "new_name" || ch.Column.Type != "varchar(50)" {
		t.Errorf("change: %+v", ch)
	}
}

func TestAlterTablePostgresAlterColumn(t *testing.T) {
	at := asAlter(t, `ALTER TABLE t
		ALTER COLUMN a TYPE BIGINT USING a::bigint,
		ALTER COLUMN b SET DEFAULT 'x',
		ALTER COLUMN c DROP NOT NULL,
		ALTER COLUMN d SET NOT NULL`)
	if at.Actions[0].Action != ModifyColumn || at.Actions[0].Column.Type != "bigint" {
		t.Errorf("type change: %+v", at.Actions[0])
	}
	if at.Actions[1].Action != SetDefault || at.Actions[1].Column.Default != "'x'" {
		t.Errorf("set default: %+v", at.Actions[1])
	}
	if at.Actions[2].Action != SetNotNull || !at.Actions[2].Drop {
		t.Errorf("drop not null: %+v", at.Actions[2])
	}
	if at.Actions[3].Action != SetNotNull || at.Actions[3].Drop {
		t.Errorf("set not null: %+v", at.Actions[3])
	}
}

func TestAlterTableConstraints(t *testing.T) {
	at := asAlter(t, `ALTER TABLE t
		ADD CONSTRAINT fk_x FOREIGN KEY (x) REFERENCES other (id),
		ADD PRIMARY KEY (id),
		DROP PRIMARY KEY,
		DROP FOREIGN KEY fk_old,
		DROP CONSTRAINT chk_1`)
	if at.Actions[0].Action != AddTableConstraint || at.Actions[0].Constraint.Kind != ForeignKeyConstraint {
		t.Errorf("add fk: %+v", at.Actions[0])
	}
	if at.Actions[1].Constraint.Kind != PrimaryKeyConstraint {
		t.Errorf("add pk: %+v", at.Actions[1])
	}
	if at.Actions[2].Action != DropConstraint || at.Actions[2].ConstraintKind != PrimaryKeyConstraint {
		t.Errorf("drop pk: %+v", at.Actions[2])
	}
	if at.Actions[3].ConstraintName != "fk_old" {
		t.Errorf("drop fk: %+v", at.Actions[3])
	}
	if at.Actions[4].ConstraintName != "chk_1" {
		t.Errorf("drop constraint: %+v", at.Actions[4])
	}
}

func TestAlterTableRename(t *testing.T) {
	at := asAlter(t, `ALTER TABLE a RENAME TO b`)
	if at.Actions[0].Action != RenameTable || at.Actions[0].NewTableName != "b" {
		t.Errorf("rename table: %+v", at.Actions[0])
	}
	at = asAlter(t, `ALTER TABLE t RENAME COLUMN x TO y`)
	if at.Actions[0].Action != RenameColumn || at.Actions[0].OldName != "x" || at.Actions[0].Column.Name != "y" {
		t.Errorf("rename column: %+v", at.Actions[0])
	}
}

func TestAlterTableSchemaNeutralActions(t *testing.T) {
	at := asAlter(t, `ALTER TABLE t ENGINE=MyISAM, OWNER TO bob`)
	for _, a := range at.Actions {
		if a.Action != OtherAlteration {
			t.Errorf("expected OtherAlteration, got %+v", a)
		}
	}
}

func TestDropTable(t *testing.T) {
	dt, ok := mustParseOne(t, `DROP TABLE IF EXISTS a, b CASCADE`).(*DropTable)
	if !ok {
		t.Fatal("not a DropTable")
	}
	if !dt.IfExists || !dt.Cascade || len(dt.Names) != 2 || dt.Names[1] != "b" {
		t.Errorf("%+v", dt)
	}
}

func TestCreateAndDropIndex(t *testing.T) {
	ci, ok := mustParseOne(t, `CREATE UNIQUE INDEX idx_name ON users USING btree (lower(name), id)`).(*CreateIndex)
	if !ok {
		t.Fatal("not a CreateIndex")
	}
	if !ci.Unique || ci.Name != "idx_name" || ci.Table != "users" || len(ci.Columns) != 2 {
		t.Errorf("%+v", ci)
	}
	di, ok := mustParseOne(t, `DROP INDEX idx_name ON users`).(*DropIndex)
	if !ok {
		t.Fatal("not a DropIndex")
	}
	if di.Name != "idx_name" || di.Table != "users" {
		t.Errorf("%+v", di)
	}
}

func TestCreateView(t *testing.T) {
	cv, ok := mustParseOne(t, `CREATE OR REPLACE VIEW v AS SELECT * FROM t`).(*CreateView)
	if !ok {
		t.Fatal("not a CreateView")
	}
	if cv.Name != "v" {
		t.Errorf("%+v", cv)
	}
}

func TestRawStatements(t *testing.T) {
	for _, src := range []string{
		`INSERT INTO t VALUES (1, 'a')`,
		`SET NAMES utf8`,
		`USE mydb`,
		`GRANT ALL ON t TO bob`,
		`SELECT 1`,
		`UPDATE t SET a = 1`,
	} {
		raw, ok := mustParseOne(t, src).(*RawStatement)
		if !ok {
			t.Errorf("%q: expected RawStatement", src)
			continue
		}
		wantVerb := strings.ToUpper(strings.Fields(src)[0])
		if raw.Verb != wantVerb {
			t.Errorf("%q: verb %q, want %q", src, raw.Verb, wantVerb)
		}
	}
}

func TestParseErrorTolerance(t *testing.T) {
	script := Parse(`CREATE TABLE good (id INT);
CREATE TABLE bad (id INT,,,);
CREATE TABLE also_good (x TEXT);`)
	if len(script.Statements) != 2 {
		t.Fatalf("got %d statements, want 2 survivors: %+v, errors %v",
			len(script.Statements), script.Statements, script.Errors)
	}
	if len(script.Errors) != 1 {
		t.Fatalf("got %d errors, want 1: %v", len(script.Errors), script.Errors)
	}
	if script.Errors[0].Stmt != 1 {
		t.Errorf("error statement index = %d", script.Errors[0].Stmt)
	}
	if !strings.Contains(script.Errors[0].Error(), "sqlddl:") {
		t.Errorf("error string: %v", script.Errors[0])
	}
}

func TestParseWholeDump(t *testing.T) {
	script := Parse(`
-- A realistic mysqldump fragment
SET NAMES utf8;
DROP TABLE IF EXISTS wp_posts;
CREATE TABLE wp_posts (
  ID bigint(20) unsigned NOT NULL auto_increment,
  post_author bigint(20) unsigned NOT NULL default '0',
  post_date datetime NOT NULL default '0000-00-00 00:00:00',
  post_content longtext NOT NULL,
  post_title text NOT NULL,
  PRIMARY KEY  (ID),
  KEY post_name (post_author)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;
INSERT INTO wp_posts VALUES (1, 0, NOW(), 'hello', 'world');
`)
	if len(script.Errors) != 0 {
		t.Fatalf("errors: %v", script.Errors)
	}
	if len(script.Statements) != 4 {
		t.Fatalf("got %d statements", len(script.Statements))
	}
	ct, ok := script.Statements[2].(*CreateTable)
	if !ok {
		t.Fatalf("statement 2: %T", script.Statements[2])
	}
	if len(ct.Columns) != 5 {
		t.Errorf("wp_posts columns: %d", len(ct.Columns))
	}
	if ct.Columns[0].Type != "bigint(20) unsigned" {
		t.Errorf("ID type = %q", ct.Columns[0].Type)
	}
}

func TestGeneratedColumns(t *testing.T) {
	ct := asCreate(t, `CREATE TABLE t (
		id INT GENERATED ALWAYS AS IDENTITY,
		full_name TEXT GENERATED ALWAYS AS (first || ' ' || last) STORED
	)`)
	if !ct.Columns[0].AutoIncrement {
		t.Errorf("identity column: %+v", ct.Columns[0])
	}
	if ct.Columns[1].Name != "full_name" {
		t.Errorf("generated column: %+v", ct.Columns[1])
	}
}

func TestEmptyInput(t *testing.T) {
	stmt, err := ParseStatement("   -- nothing\n")
	if err != nil || stmt != nil {
		t.Errorf("empty input: stmt=%v err=%v", stmt, err)
	}
	script := Parse("")
	if len(script.Statements) != 0 || len(script.Errors) != 0 {
		t.Errorf("empty script: %+v", script)
	}
}

func TestColumnPositionClauses(t *testing.T) {
	at := asAlter(t, "ALTER TABLE t ADD COLUMN a INT FIRST, ADD COLUMN b INT AFTER a, MODIFY COLUMN c TEXT AFTER b")
	if len(at.Actions) != 3 {
		t.Fatalf("actions: %+v", at.Actions)
	}
	if at.Actions[0].Column.Name != "a" || at.Actions[1].Column.Name != "b" {
		t.Errorf("positioned columns: %+v", at.Actions)
	}
}

func TestTokenAndKindStrings(t *testing.T) {
	for k := EOF; k <= Op; k++ {
		if k.String() == "" {
			t.Errorf("Kind(%d) has empty string", int(k))
		}
	}
	tok := Token{Kind: Ident, Text: "x", Line: 3, Col: 7}
	if s := tok.String(); !strings.Contains(s, "Ident") || !strings.Contains(s, "3:7") {
		t.Errorf("token string: %q", s)
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestConstraintKindStrings(t *testing.T) {
	kinds := []ConstraintKind{PrimaryKeyConstraint, ForeignKeyConstraint,
		UniqueConstraint, CheckConstraint, IndexConstraint}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d empty", int(k))
		}
	}
	if ConstraintKind(42).String() != "CONSTRAINT" {
		t.Error("unknown constraint kind fallback")
	}
}

func TestAlterActionStrings(t *testing.T) {
	for a := AddColumn; a <= OtherAlteration; a++ {
		if a.String() == "" {
			t.Errorf("action %d empty", int(a))
		}
	}
	if AlterAction(99).String() != "ALTER" {
		t.Error("unknown action fallback")
	}
}
