package sqlddl

import (
	"strings"
	"sync"
)

// Unit is one statement slot of a parsed script: the raw (trimmed)
// statement text plus the parse outcome. A Unit with a nil Stmt and a nil
// Err is a comment-only slot (the text lexes to nothing); a Unit with a
// non-nil Err failed to parse. Unit indices match the statement indices
// reported in ParseError.Stmt.
type Unit struct {
	Text string
	Stmt Statement
	Err  *ParseError
}

// cachedStmt is one memoized statement parse. The Stmt index inside err is
// meaningless in the cache; it is re-stamped per script on reuse.
type cachedStmt struct {
	stmt Statement
	err  *ParseError
}

// maxInterned bounds the identifier intern table of a pooled session; a
// long-lived process parsing many corpora resets the table past this size
// instead of growing without bound.
const maxInterned = 1 << 16

// Session is the reusable scratch state of a parse session: an identifier
// intern table, a per-statement parse cache, and the token/parser buffers
// the hot path would otherwise reallocate per statement.
//
// The statement cache makes re-parsing consecutive versions of the same
// DDL file nearly free: version N+1 of a schema dump shares almost every
// statement with version N byte-for-byte, and a cache hit returns the
// previously built AST without lexing a single byte. Cached ASTs are
// shared — holders must treat statements as immutable (schema application
// and rendering already do).
//
// A Session is not safe for concurrent use. Use AcquireSession /
// ReleaseSession to recycle sessions through a pool; Release clears the
// statement cache (whose keys alias source text) but keeps the intern
// table, whose entries are small owned copies that stay useful across
// projects.
type Session struct {
	interned map[string]string
	stmts    map[string]cachedStmt

	// dialectID, prof and quirks are the active dialect's behavior,
	// flattened out of the Dialect interface so the lexer and parser hot
	// paths read plain struct fields. Zero values = generic union.
	dialectID DialectID
	prof      LexProfile
	quirks    Quirks

	lx    Lexer
	toks  []Token
	ends  []int // ends[i] is the byte offset just past token i
	p     parser
	lower []byte // scratch for lower-casing identifiers
}

// NewSession returns an empty parse session.
func NewSession() *Session {
	return &Session{
		interned: make(map[string]string, 256),
		stmts:    make(map[string]cachedStmt, 64),
	}
}

var sessionPool = sync.Pool{New: func() any { return NewSession() }}

// AcquireSession returns a session from the package pool.
func AcquireSession() *Session { return sessionPool.Get().(*Session) }

// ReleaseSession clears the session's statement cache and returns it to
// the pool. Statements previously returned remain valid; they are simply
// no longer cached.
func ReleaseSession(s *Session) {
	s.dialectID, s.prof, s.quirks = DialectGeneric, LexProfile{}, Quirks{}
	s.ClearCache()
	sessionPool.Put(s)
}

// SetDialect switches the session to d (nil means Generic). Memoized
// statement ASTs are dialect-dependent, so changing the dialect drops the
// statement cache; setting the dialect the session already uses is free.
func (s *Session) SetDialect(d Dialect) {
	if d == nil {
		d = Generic
	}
	if d.ID() == s.dialectID {
		return
	}
	s.dialectID = d.ID()
	s.prof = d.LexProfile()
	s.quirks = d.Quirks()
	clear(s.stmts)
}

// DialectID returns the session's active dialect.
func (s *Session) DialectID() DialectID { return s.dialectID }

// ClearCache drops the per-statement parse cache (whose keys alias the
// parsed source) and, when the intern table has grown past its bound, the
// intern table as well. Call between unrelated inputs to bound retention.
func (s *Session) ClearCache() {
	clear(s.stmts)
	if len(s.interned) > maxInterned {
		clear(s.interned)
	}
}

// intern returns a canonical owned copy of t. All equal strings interned
// through one session share backing storage, so downstream comparisons of
// table/column names usually short-circuit on the data pointer.
func (s *Session) intern(t string) string {
	if v, ok := s.interned[t]; ok {
		return v
	}
	v := strings.Clone(t)
	s.interned[v] = v
	return v
}

// internBytes is intern for a scratch byte buffer; the map probe does not
// allocate, so only a cache miss copies.
func (s *Session) internBytes(b []byte) string {
	if v, ok := s.interned[string(b)]; ok {
		return v
	}
	v := string(b)
	s.interned[v] = v
	return v
}

// internLower returns the interned lower-cased form of an unquoted
// identifier. ASCII-only inputs take an allocation-free path; anything
// with non-ASCII bytes falls back to the full Unicode folding the parser
// historically applied.
func (s *Session) internLower(t string) string {
	hasUpper, ascii := false, true
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 0x80 {
			ascii = false
			break
		}
		if 'A' <= c && c <= 'Z' {
			hasUpper = true
		}
	}
	if !ascii {
		return s.intern(strings.ToLower(t))
	}
	if !hasUpper {
		return s.intern(t)
	}
	buf := s.lower[:0]
	for i := 0; i < len(t); i++ {
		c := t[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	s.lower = buf
	return s.internBytes(buf)
}

// ParseUnits parses src into statement units in a single lexer pass: the
// whole script is tokenized once, split on top-level semicolons, and each
// unit's token window handed to the parser — or resolved from the
// session's statement cache without re-parsing. The returned slice reuses
// buf's storage when capacity allows.
//
// Unlike the historical two-pass path (SplitStatements re-lexed the text
// it had already lexed), token positions are script-relative.
func (s *Session) ParseUnits(src string, buf []Unit) []Unit {
	units := buf[:0]
	s.lx = Lexer{src: src, line: 1, col: 1, prof: s.prof, scratch: s.lx.scratch}
	toks, ends := s.toks[:0], s.ends[:0]
	for {
		t := s.lx.Next()
		toks = append(toks, t)
		ends = append(ends, s.lx.pos)
		if t.Kind == EOF {
			break
		}
	}
	s.toks, s.ends = toks, ends

	depth := 0
	start, lastEnd := 0, 0
	unitTok := 0
	flush := func(end, tokHi int) {
		if text := strings.TrimSpace(src[start:end]); text != "" {
			units = append(units, s.parseUnit(text, toks[unitTok:tokHi], len(units)))
		}
	}
	for i := range toks {
		switch toks[i].Kind {
		case EOF:
			flush(lastEnd, i+1)
			return units
		case LParen:
			depth++
		case RParen:
			if depth > 0 {
				depth--
			}
		case Semi:
			if depth == 0 {
				// The separator becomes this unit's EOF terminator, so the
				// parser can run on the token window without copying.
				toks[i] = Token{Kind: EOF, Line: toks[i].Line, Col: toks[i].Col}
				flush(lastEnd, i+1)
				start = ends[i]
				unitTok = i + 1
			}
		}
		lastEnd = ends[i]
	}
	return units
}

// parseUnit resolves one statement text against the cache, parsing and
// memoizing on miss. idx is the unit's statement index within the script.
func (s *Session) parseUnit(text string, toks []Token, idx int) Unit {
	if c, ok := s.stmts[text]; ok {
		u := Unit{Text: text, Stmt: c.stmt}
		if c.err != nil {
			e := *c.err
			e.Stmt = idx
			u.Err = &e
		}
		return u
	}
	stmt, err := s.parseTokens(toks, idx, text)
	s.stmts[text] = cachedStmt{stmt: stmt, err: err}
	return Unit{Text: text, Stmt: stmt, Err: err}
}

// parseTokens parses one statement from its token window (terminated by
// an EOF token). It mirrors the historical per-statement entry point.
func (s *Session) parseTokens(toks []Token, idx int, text string) (stmt Statement, perr *ParseError) {
	if len(toks) == 1 { // just EOF: comments or whitespace only
		return nil, nil
	}
	p := &s.p
	p.reset(s, toks, idx, text)
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(*ParseError)
			if !ok {
				panic(r)
			}
			stmt, perr = nil, e
		}
	}()
	return p.parse(), nil
}

// ParseScript parses a whole DDL script through the session, collecting
// parsed statements and per-statement errors exactly like Parse.
func (s *Session) ParseScript(src string) *Script {
	units := s.ParseUnits(src, nil)
	script := &Script{}
	for i := range units {
		u := &units[i]
		if u.Err != nil {
			script.Errors = append(script.Errors, u.Err)
			continue
		}
		if u.Stmt != nil {
			script.Statements = append(script.Statements, u.Stmt)
		}
	}
	return script
}
