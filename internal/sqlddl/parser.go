// Package sqlddl parses the SQL data-definition subset found in the schema
// files of open-source projects (MySQL, PostgreSQL and SQLite dialects).
//
// The parser is deliberately error-tolerant: real schema histories contain
// vendor quirks, partial statements and plain garbage, and losing an entire
// file to one bad statement would corrupt the change-detection signal the
// rest of the pipeline depends on. Parsing therefore proceeds statement by
// statement; failures are collected in Script.Errors and the survivors in
// Script.Statements.
package sqlddl

import (
	"strings"
)

// Parse parses a DDL script. It never returns an error: per-statement
// failures are reported in Script.Errors. The whole script is lexed in a
// single pass through a pooled session; see Session for the allocation
// discipline.
func Parse(src string) *Script {
	s := AcquireSession()
	defer ReleaseSession(s)
	return s.ParseScript(src)
}

// ParseWith parses a DDL script under a specific dialect. Like Parse it
// never returns an error; dialect-foreign constructs surface as
// per-statement entries in Script.Errors.
func ParseWith(d Dialect, src string) *Script {
	s := AcquireSession()
	defer ReleaseSession(s)
	s.SetDialect(d)
	return s.ParseScript(src)
}

// ParseStatement parses a single statement (no trailing semicolon
// required). It returns a nil Statement for empty input.
func ParseStatement(text string) (Statement, error) {
	s := AcquireSession()
	defer ReleaseSession(s)
	lx := Lexer{src: text, line: 1, col: 1, scratch: s.lx.scratch}
	toks := s.toks[:0]
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	s.toks = toks
	s.lx.scratch = lx.scratch
	stmt, perr := s.parseTokens(toks, 0, text)
	if perr != nil {
		return nil, perr
	}
	return stmt, nil
}

type parser struct {
	sess    *Session
	toks    []Token
	pos     int
	stmtIdx int
	text    string
	// q holds the session dialect's parse quirks, copied once per
	// statement so the hot path never dispatches through the interface.
	q Quirks
	// pending accumulates extra alterations produced while parsing one
	// action (MySQL "ADD (c1 t1, c2 t2)" grouped adds).
	pending []Alteration
	typeBuf []byte // scratch for assembling data-type spellings
	scratch []byte // scratch for parenthesized raw fragments
}

// reset prepares the parser for one statement's token window, reusing its
// scratch buffers across statements.
func (p *parser) reset(s *Session, toks []Token, idx int, text string) {
	p.sess = s
	p.toks = toks
	p.pos = 0
	p.stmtIdx = idx
	p.text = text
	p.q = s.quirks
	p.pending = p.pending[:0]
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token { // token after cur
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) fail(msg string) {
	t := p.cur()
	excerpt := p.text
	if len(excerpt) > 60 {
		excerpt = excerpt[:60] + "..."
	}
	panic(&ParseError{Stmt: p.stmtIdx, Line: t.Line, Col: t.Col, Msg: msg, Excerpt: excerpt})
}

// accept consumes the next token if it matches the keyword.
func (p *parser) accept(keyword string) bool {
	if p.cur().Match(keyword) {
		p.pos++
		return true
	}
	return false
}

// acceptSeq consumes the keywords if they all match in order.
func (p *parser) acceptSeq(kws ...string) bool {
	for i, kw := range kws {
		if p.pos+i >= len(p.toks) || !p.toks[p.pos+i].Match(kw) {
			return false
		}
	}
	p.pos += len(kws)
	return true
}

func (p *parser) expect(keyword string) {
	if !p.accept(keyword) {
		p.fail("expected " + strings.ToUpper(keyword))
	}
}

func (p *parser) expectKind(k Kind) Token {
	if p.cur().Kind != k {
		p.fail("expected " + k.String())
	}
	return p.next()
}

// ident consumes a (possibly quoted, possibly schema-qualified) identifier
// and returns its final component, lower-cased for unquoted names so that
// MySQL/Postgres case-insensitivity is normalized away.
func (p *parser) ident() string {
	t := p.cur()
	if !t.IsIdent() {
		p.fail("expected identifier")
	}
	p.next()
	name := p.identValue(t)
	for p.cur().Kind == Dot {
		p.next()
		t = p.cur()
		if !t.IsIdent() {
			p.fail("expected identifier after '.'")
		}
		p.next()
		name = p.identValue(t)
	}
	return name
}

// identValue normalizes one identifier token: quoted names keep their
// exact spelling, unquoted names are lower-cased. Both are interned in the
// session so repeated names share storage and compare pointer-first.
func (p *parser) identValue(t Token) string {
	if t.Kind == QuotedIdent {
		return p.sess.intern(t.Text)
	}
	return p.sess.internLower(t.Text)
}

func (p *parser) parse() Statement {
	switch {
	case p.accept("create"):
		return p.parseCreate()
	case p.accept("alter"):
		if p.accept("table") {
			return p.parseAlterTable()
		}
		return p.rawRest("ALTER")
	case p.accept("drop"):
		return p.parseDrop()
	default:
		verb := strings.ToUpper(p.cur().Text)
		if p.cur().Kind != Ident {
			p.fail("statement must start with a keyword")
		}
		p.next()
		return p.rawRest(verb)
	}
}

func (p *parser) rawRest(verb string) Statement {
	for p.cur().Kind != EOF {
		p.next()
	}
	return &RawStatement{Verb: verb, Text: p.text}
}

func (p *parser) parseCreate() Statement {
	p.accept("or")
	p.accept("replace")
	temp := p.accept("temporary") || p.accept("temp") || p.accept("global") || p.accept("local")
	p.accept("temporary") // GLOBAL TEMPORARY
	unique := p.accept("unique")
	p.accept("fulltext")
	p.accept("spatial")
	switch {
	case p.accept("table"):
		return p.parseCreateTable(temp)
	case p.accept("index"):
		return p.parseCreateIndex(unique)
	case p.accept("view"):
		p.accept("if")
		p.accept("not")
		p.accept("exists")
		name := p.ident()
		return p.finishRaw(&CreateView{Name: name})
	case p.accept("materialized"):
		p.expect("view")
		name := p.ident()
		return p.finishRaw(&CreateView{Name: name})
	default:
		// CREATE DATABASE / SEQUENCE / TRIGGER / FUNCTION / TYPE / ...
		return p.rawRest("CREATE")
	}
}

func (p *parser) finishRaw(s Statement) Statement {
	for p.cur().Kind != EOF {
		p.next()
	}
	return s
}

func (p *parser) parseCreateTable(temp bool) Statement {
	ct := &CreateTable{Temporary: temp}
	if p.acceptSeq("if", "not", "exists") {
		ct.IfNotExists = true
	}
	ct.Name = p.ident()
	if p.accept("as") || p.accept("like") {
		// CREATE TABLE t AS SELECT ... / LIKE other — no explicit column
		// list; treat as an empty logical definition.
		return p.finishRaw(ct)
	}
	if p.cur().Kind != LParen {
		// Tables without a body (options only) are legal in some dumps.
		return p.finishRaw(ct)
	}
	p.next() // (
	for {
		if p.cur().Kind == RParen {
			break
		}
		if c, ok := p.tryTableConstraint(); ok {
			ct.Constraints = append(ct.Constraints, c)
		} else {
			ct.Columns = append(ct.Columns, p.parseColumnDef())
		}
		if p.cur().Kind == Comma {
			p.next()
			continue
		}
		break
	}
	if p.cur().Kind != RParen {
		p.fail("expected ')' closing CREATE TABLE body")
	}
	p.next()
	// Trailing table options: capture raw and ignore.
	var opts []string
	for p.cur().Kind != EOF {
		opts = append(opts, p.next().Text)
	}
	ct.Options = strings.Join(opts, " ")
	return ct
}

// constraintLeader reports whether the parser is positioned at a
// table-level constraint rather than a column definition.
func (p *parser) constraintLeader() bool {
	t := p.cur()
	if t.Kind != Ident {
		return false
	}
	switch {
	case t.Match("constraint"), t.Match("foreign"), t.Match("check"), t.Match("exclude"):
		return true
	case t.Match("primary"):
		return p.peek().Match("key")
	case t.Match("unique"):
		// UNIQUE (cols) / UNIQUE KEY name (cols) at table level; a column
		// named "unique" would be quoted.
		return p.peek().Kind == LParen || p.peek().Match("key") || p.peek().Match("index") || p.peek().IsIdent()
	case t.Match("key"), t.Match("index"):
		// KEY name (cols) — MySQL secondary index inside CREATE TABLE.
		return p.peek().IsIdent() || p.peek().Kind == LParen
	case t.Match("fulltext"), t.Match("spatial"):
		return true
	}
	return false
}

func (p *parser) tryTableConstraint() (TableConstraint, bool) {
	if !p.constraintLeader() {
		return TableConstraint{}, false
	}
	return p.parseTableConstraint(), true
}

func (p *parser) parseTableConstraint() TableConstraint {
	var c TableConstraint
	if p.accept("constraint") {
		if p.cur().IsIdent() && !p.cur().Match("primary") && !p.cur().Match("foreign") &&
			!p.cur().Match("unique") && !p.cur().Match("check") {
			c.Name = p.ident()
		}
	}
	switch {
	case p.acceptSeq("primary", "key"):
		c.Kind = PrimaryKeyConstraint
		p.skipIndexMethod()
		c.Columns = p.parseColumnList()
	case p.acceptSeq("foreign", "key"):
		c.Kind = ForeignKeyConstraint
		if p.cur().IsIdent() { // optional index name (MySQL)
			c.Name = p.ident()
		}
		c.Columns = p.parseColumnList()
		p.expect("references")
		c.Ref = p.parseFKRef()
	case p.accept("unique"):
		c.Kind = UniqueConstraint
		p.accept("key")
		p.accept("index")
		if p.cur().IsIdent() {
			c.Name = p.ident()
		}
		p.skipIndexMethod()
		c.Columns = p.parseColumnList()
	case p.accept("check"):
		c.Kind = CheckConstraint
		c.Expr = p.parenRaw()
		p.accept("not")
		p.accept("enforced")
	case p.accept("fulltext") || p.accept("spatial"):
		c.Kind = IndexConstraint
		p.accept("key")
		p.accept("index")
		if p.cur().IsIdent() {
			c.Name = p.ident()
		}
		c.Columns = p.parseColumnList()
	case p.accept("key") || p.accept("index"):
		c.Kind = IndexConstraint
		if p.cur().IsIdent() {
			c.Name = p.ident()
		}
		p.skipIndexMethod()
		c.Columns = p.parseColumnList()
	case p.accept("exclude"):
		c.Kind = CheckConstraint
		// EXCLUDE [USING m] (elements) — treat as an opaque check.
		p.skipIndexMethod()
		c.Expr = p.parenRaw()
	default:
		p.fail("unrecognized table constraint")
	}
	// Trailing constraint attributes common to dialects.
	for {
		switch {
		case p.acceptSeq("on", "delete"):
			act := p.refAction()
			if c.Ref != nil {
				c.Ref.OnDelete = act
			}
		case p.acceptSeq("on", "update"):
			act := p.refAction()
			if c.Ref != nil {
				c.Ref.OnUpdate = act
			}
		case p.accept("deferrable"), p.acceptSeq("not", "deferrable"),
			p.acceptSeq("initially", "deferred"), p.acceptSeq("initially", "immediate"),
			p.accept("enable"), p.accept("disable"):
			// constraint timing attributes — schema-neutral
		case p.accept("using"):
			p.next() // method name
		case p.accept("match"):
			p.next() // FULL | PARTIAL | SIMPLE
		default:
			return c
		}
	}
}

func (p *parser) skipIndexMethod() {
	if p.accept("using") {
		p.next() // btree, hash, gin, ...
	}
}

func (p *parser) refAction() string {
	switch {
	case p.accept("cascade"):
		return "CASCADE"
	case p.accept("restrict"):
		return "RESTRICT"
	case p.acceptSeq("set", "null"):
		return "SET NULL"
	case p.acceptSeq("set", "default"):
		return "SET DEFAULT"
	case p.acceptSeq("no", "action"):
		return "NO ACTION"
	}
	p.fail("expected referential action")
	return ""
}

// parseColumnList parses "(" name [(len)] [ASC|DESC] , ... ")".
func (p *parser) parseColumnList() []string {
	p.expectKind(LParen)
	var cols []string
	for {
		if p.cur().Kind == RParen {
			break
		}
		if p.cur().Kind == LParen {
			// Expression index element — skip it, record a placeholder.
			cols = append(cols, "("+p.parenRawInner()+")")
		} else {
			cols = append(cols, p.ident())
			if p.cur().Kind == LParen { // prefix length, e.g. name(10)
				p.skipParens()
			}
			p.accept("asc")
			p.accept("desc")
		}
		if p.cur().Kind == Comma {
			p.next()
			continue
		}
		break
	}
	p.expectKind(RParen)
	return cols
}

func (p *parser) parseFKRef() *FKRef {
	ref := &FKRef{Table: p.ident()}
	if p.cur().Kind == LParen {
		ref.Columns = p.parseColumnList()
	}
	for {
		switch {
		case p.acceptSeq("on", "delete"):
			ref.OnDelete = p.refAction()
		case p.acceptSeq("on", "update"):
			ref.OnUpdate = p.refAction()
		case p.accept("match"):
			p.next()
		case p.accept("deferrable"), p.acceptSeq("not", "deferrable"),
			p.acceptSeq("initially", "deferred"), p.acceptSeq("initially", "immediate"):
		default:
			return ref
		}
	}
}

// typeSuffixWords are identifiers that extend a multi-word data type.
var typeSuffixWords = map[string]bool{
	"precision": true, "varying": true, "unsigned": true, "signed": true,
	"zerofill": true, "with": true, "without": true, "time": true,
	"zone": true, "local": true, "large": true, "object": true,
}

// isTypeSuffixWord reports whether the identifier text names a type suffix
// word, folding ASCII case without allocating.
func isTypeSuffixWord(t string) bool {
	if len(t) > len("precision") {
		return false
	}
	var b [len("precision")]byte
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 0x80 {
			return false
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return typeSuffixWords[string(b[:len(t)])]
}

// appendLowerIdent appends the ASCII-lower-cased identifier text; inputs
// with non-ASCII bytes fall back to full Unicode folding.
func appendLowerIdent(buf []byte, t string) []byte {
	for i := 0; i < len(t); i++ {
		if t[i] >= 0x80 {
			return append(buf, strings.ToLower(t)...)
		}
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	return buf
}

// parseType consumes a data type: leading identifier(s), optional
// parenthesized arguments, optional suffix words (e.g. "timestamp with
// time zone", "double precision", "int(11) unsigned"). The spelling is
// assembled in parser scratch and interned, so repeated types across a
// corpus share one string.
func (p *parser) parseType() string {
	buf := p.typeBuf[:0]
	buf = appendLowerIdent(buf, p.expectIdentText())
	// "character varying", "double precision" — second word before args.
	for p.cur().Kind == Ident && isTypeSuffixWord(p.cur().Text) {
		buf = append(buf, ' ')
		buf = appendLowerIdent(buf, p.next().Text)
	}
	if p.cur().Kind == LParen {
		buf = append(buf, '(')
		buf = p.parenRawInnerBuf(buf)
		buf = append(buf, ')')
	}
	for p.cur().Kind == Ident && isTypeSuffixWord(p.cur().Text) {
		buf = append(buf, ' ')
		buf = appendLowerIdent(buf, p.next().Text)
	}
	// Array suffix: "integer[]" lexes the empty brackets as an empty
	// quoted identifier — or, under a profile without bracket quoting
	// (PostgreSQL), as two operator tokens; "integer ARRAY" is the
	// spelled-out form. All three render as the same type spelling.
	for {
		if p.cur().Kind == QuotedIdent && p.cur().Text == "" {
			p.next()
			buf = append(buf, " array"...)
			continue
		}
		if p.cur().Kind == Op && p.cur().Text == "[" && p.peek().Kind == Op && p.peek().Text == "]" {
			p.next()
			p.next()
			buf = append(buf, " array"...)
			continue
		}
		break
	}
	if p.accept("array") {
		buf = append(buf, " array"...)
	}
	p.typeBuf = buf[:0]
	return p.sess.internBytes(buf)
}

func (p *parser) expectIdentText() string {
	t := p.cur()
	if !t.IsIdent() {
		p.fail("expected type name")
	}
	p.next()
	return t.Text
}

// parenRaw consumes a balanced parenthesized group and returns its text
// including the parentheses.
func (p *parser) parenRaw() string {
	return "(" + p.parenRawInner() + ")"
}

// parenRawInner consumes "(" ... ")" and returns the inner text.
func (p *parser) parenRawInner() string {
	buf := p.parenRawInnerBuf(p.scratch[:0])
	p.scratch = buf[:0]
	return string(buf)
}

// parenRawInnerBuf consumes "(" ... ")" and appends the inner text
// (space-separated token spellings) to buf.
func (p *parser) parenRawInnerBuf(buf []byte) []byte {
	p.expectKind(LParen)
	depth := 1
	mark := len(buf)
	for {
		t := p.cur()
		if t.Kind == EOF {
			p.fail("unbalanced parentheses")
		}
		if t.Kind == LParen {
			depth++
		}
		if t.Kind == RParen {
			depth--
			if depth == 0 {
				p.next()
				return buf
			}
		}
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		if t.Kind == String {
			buf = appendQuoteString(buf, t.Text)
		} else {
			buf = append(buf, t.Text...)
		}
		p.next()
	}
}

// appendQuoteString appends v as a SQL single-quoted literal, doubling
// embedded quotes — the byte-for-byte equivalent of QuoteString.
func appendQuoteString(buf []byte, v string) []byte {
	buf = append(buf, '\'')
	for i := 0; i < len(v); i++ {
		if v[i] == '\'' {
			buf = append(buf, '\'', '\'')
			continue
		}
		buf = append(buf, v[i])
	}
	return append(buf, '\'')
}

func (p *parser) skipParens() {
	depth := 0
	for {
		t := p.cur()
		switch t.Kind {
		case LParen:
			depth++
		case RParen:
			depth--
			if depth == 0 {
				p.next()
				return
			}
		case EOF:
			p.fail("unbalanced parentheses")
		}
		p.next()
	}
}

var serialTypes = map[string]bool{"serial": true, "bigserial": true, "smallserial": true, "serial4": true, "serial8": true, "serial2": true}

func (p *parser) parseColumnDef() ColumnDef {
	var col ColumnDef
	col.Name = p.ident()
	if !p.q.NoTypeless && (!p.cur().IsIdent() || p.constraintKeyword(p.cur()) || p.cur().Match("unique")) {
		// SQLite allows typeless columns ("id PRIMARY KEY").
		col.Type = ""
	} else {
		col.Type = p.parseType()
	}
	if !p.q.NoSerialAuto && serialTypes[col.Type] {
		col.AutoIncrement = true
		col.NotNull = true
	}
	for p.parseColumnConstraint(&col) {
	}
	return col
}

// parseColumnConstraint consumes one trailing column attribute; it
// reports false when the column definition is complete.
func (p *parser) parseColumnConstraint(col *ColumnDef) bool {
	switch {
	case p.accept("constraint"):
		if p.cur().IsIdent() && !p.constraintKeyword(p.cur()) {
			p.ident() // named inline constraint; name not retained
		}
		return true
	case p.acceptSeq("not", "null"):
		col.NotNull = true
	case p.accept("null"):
		// explicit NULL — default nullability
	case p.accept("default"):
		col.Default = p.parseDefaultExpr()
		col.HasDefault = true
	case p.acceptSeq("primary", "key"):
		col.PrimaryKey = true
		col.NotNull = true
		p.accept("asc")
		p.accept("desc")
		p.accept("autoincrement") // SQLite: PRIMARY KEY AUTOINCREMENT
	case p.accept("unique"):
		col.Unique = true
		p.accept("key")
	case p.accept("auto_increment"), p.accept("autoincrement"):
		col.AutoIncrement = true
	case p.accept("identity"):
		col.AutoIncrement = true
		if p.cur().Kind == LParen {
			p.skipParens()
		}
	case p.accept("generated"):
		// GENERATED {ALWAYS | BY DEFAULT} AS IDENTITY [(...)]
		// GENERATED ALWAYS AS (expr) [STORED | VIRTUAL]
		p.accept("always")
		p.acceptSeq("by", "default")
		p.expect("as")
		if p.accept("identity") {
			col.AutoIncrement = true
			if p.cur().Kind == LParen {
				p.skipParens()
			}
		} else if p.cur().Kind == LParen {
			p.skipParens()
			p.accept("stored")
			p.accept("virtual")
		}
	case p.accept("references"):
		col.References = p.parseFKRef()
	case p.accept("check"):
		p.parenRaw()
	case p.accept("comment"):
		if p.cur().Kind == String {
			col.Comment = p.next().Text
		}
	case p.accept("collate"):
		p.next() // collation name
	case p.acceptSeq("character", "set"), p.acceptSeq("charset"):
		p.next()
	case p.acceptSeq("on", "update"):
		// MySQL: ON UPDATE CURRENT_TIMESTAMP[(n)]
		p.next()
		if p.cur().Kind == LParen {
			p.skipParens()
		}
	case p.acceptSeq("on", "delete"):
		act := p.refAction()
		if col.References != nil {
			col.References.OnDelete = act
		}
	case p.accept("deferrable"), p.acceptSeq("not", "deferrable"),
		p.acceptSeq("initially", "deferred"), p.acceptSeq("initially", "immediate"),
		p.accept("invisible"), p.accept("visible"), p.accept("storage"),
		p.accept("stored"), p.accept("virtual"):
	default:
		return false
	}
	return true
}

func (p *parser) constraintKeyword(t Token) bool {
	if t.Kind != Ident {
		return false
	}
	return t.Match("not") || t.Match("null") || t.Match("default") || t.Match("primary") ||
		t.Match("unique") || t.Match("check") || t.Match("references") || t.Match("generated")
}

// parseDefaultExpr consumes a default value expression: a literal, signed
// number, NULL/TRUE/FALSE, a function call, a parenthesized expression, or
// any of those followed by Postgres '::' casts.
func (p *parser) parseDefaultExpr() string {
	var sb strings.Builder
	t := p.cur()
	switch {
	case t.Kind == String:
		p.next()
		sb.WriteString(QuoteString(t.Text))
	case t.Kind == Number:
		p.next()
		sb.WriteString(t.Text)
	case t.Kind == Op && (t.Text == "-" || t.Text == "+"):
		p.next()
		sb.WriteString(t.Text)
		sb.WriteString(p.expectKind(Number).Text)
	case t.Kind == LParen:
		sb.WriteString(p.parenRaw())
	case t.IsIdent():
		p.next()
		sb.WriteString(t.Text)
		if p.cur().Kind == LParen {
			sb.WriteString(p.parenRaw())
		}
	default:
		p.fail("expected default expression")
	}
	for !p.q.NoDoubleColonCast && p.cur().Kind == Op && p.cur().Text == "::" {
		p.next()
		sb.WriteString("::")
		// The default expression is stored (and re-rendered) as text, so
		// an exotic cast target must be quoted here or the rendered
		// statement would not re-parse (e.g. a cast to a bare "[]").
		sb.WriteString(renderType(p.parseType()))
	}
	return sb.String()
}

func (p *parser) parseAlterTable() Statement {
	at := &AlterTable{}
	if p.acceptSeq("if", "exists") {
		at.IfExists = true
	}
	p.accept("only") // Postgres: ALTER TABLE ONLY t
	at.Name = p.ident()
	for {
		act := p.parseAlteration()
		at.Actions = append(at.Actions, act)
		at.Actions = append(at.Actions, p.pending...)
		p.pending = p.pending[:0]
		if p.cur().Kind == Comma {
			p.next()
			continue
		}
		break
	}
	if p.cur().Kind != EOF {
		p.fail("trailing input after ALTER TABLE actions")
	}
	return at
}

func (p *parser) parseAlteration() Alteration {
	switch {
	case p.accept("add"):
		return p.parseAlterAdd()
	case p.accept("drop"):
		return p.parseAlterDrop()
	case p.accept("modify"):
		p.accept("column")
		col := p.parseColumnDef()
		p.skipColumnPosition()
		return Alteration{Action: ModifyColumn, Column: col}
	case p.accept("change"):
		p.accept("column")
		old := p.ident()
		col := p.parseColumnDef()
		p.skipColumnPosition()
		return Alteration{Action: RenameColumn, OldName: old, Column: col}
	case p.accept("alter"):
		return p.parseAlterColumn()
	case p.accept("rename"):
		switch {
		case p.accept("to"), p.accept("as"):
			return Alteration{Action: RenameTable, NewTableName: p.ident()}
		case p.accept("column"):
			old := p.ident()
			p.expect("to")
			return Alteration{Action: RenameColumn, OldName: old, Column: ColumnDef{Name: p.ident()}}
		default:
			// MySQL: RENAME t / RENAME INDEX a TO b
			if p.accept("index") || p.accept("key") {
				p.ident()
				p.expect("to")
				p.ident()
				return Alteration{Action: OtherAlteration}
			}
			return Alteration{Action: RenameTable, NewTableName: p.ident()}
		}
	default:
		// Engine options, OWNER TO, ENABLE TRIGGER, CONVERT TO CHARSET...
		p.skipToActionEnd()
		return Alteration{Action: OtherAlteration}
	}
}

func (p *parser) skipColumnPosition() {
	if p.accept("first") {
		return
	}
	if p.accept("after") {
		p.ident()
	}
}

func (p *parser) parseAlterAdd() Alteration {
	switch {
	case p.cur().Match("constraint") || p.cur().Match("foreign") ||
		(p.cur().Match("primary") && p.peek().Match("key")) ||
		p.cur().Match("check") ||
		(p.cur().Match("unique") && (p.peek().Kind == LParen || p.peek().Match("key") || p.peek().Match("index"))) ||
		((p.cur().Match("index") || p.cur().Match("key") || p.cur().Match("fulltext") || p.cur().Match("spatial")) &&
			(p.peek().IsIdent() || p.peek().Kind == LParen)):
		c := p.parseTableConstraint()
		return Alteration{Action: AddTableConstraint, Constraint: &c}
	default:
		p.accept("column")
		p.acceptSeq("if", "not", "exists")
		if p.cur().Kind == LParen {
			// MySQL: ADD (col1 def, col2 def) — parse first, the rest are
			// returned as extra actions by the caller via comma handling;
			// for simplicity treat the whole group as a single add of the
			// first column plus follow-ups parsed here.
			return p.parseAlterAddGroup()
		}
		col := p.parseColumnDef()
		p.skipColumnPosition()
		return Alteration{Action: AddColumn, Column: col}
	}
}

// parseAlterAddGroup handles "ADD (c1 t1, c2 t2)": it returns the first
// column and pushes synthetic tokens is not possible, so it instead
// flattens by storing the remaining columns in the pending list.
func (p *parser) parseAlterAddGroup() Alteration {
	p.expectKind(LParen)
	first := p.parseColumnDef()
	for p.cur().Kind == Comma {
		p.next()
		col := p.parseColumnDef()
		p.pending = append(p.pending, Alteration{Action: AddColumn, Column: col})
	}
	p.expectKind(RParen)
	return Alteration{Action: AddColumn, Column: first}
}

func (p *parser) parseAlterDrop() Alteration {
	switch {
	case p.acceptSeq("primary", "key"):
		return Alteration{Action: DropConstraint, ConstraintKind: PrimaryKeyConstraint}
	case p.acceptSeq("foreign", "key"):
		return Alteration{Action: DropConstraint, ConstraintKind: ForeignKeyConstraint, ConstraintName: p.ident()}
	case p.accept("constraint"):
		p.acceptSeq("if", "exists")
		return Alteration{Action: DropConstraint, ConstraintKind: ForeignKeyConstraint, ConstraintName: p.ident()}
	case p.accept("index"), p.accept("key"):
		name := p.ident()
		return Alteration{Action: DropConstraint, ConstraintKind: IndexConstraint, ConstraintName: name}
	default:
		p.accept("column")
		p.acceptSeq("if", "exists")
		name := p.ident()
		p.accept("cascade")
		p.accept("restrict")
		return Alteration{Action: DropColumn, Column: ColumnDef{Name: name}}
	}
}

func (p *parser) parseAlterColumn() Alteration {
	p.accept("column")
	name := p.ident()
	switch {
	case p.acceptSeq("set", "default"):
		expr := p.parseDefaultExpr()
		return Alteration{Action: SetDefault, Column: ColumnDef{Name: name, Default: expr, HasDefault: true}}
	case p.acceptSeq("drop", "default"):
		return Alteration{Action: SetDefault, Column: ColumnDef{Name: name}, Drop: true}
	case p.acceptSeq("set", "not", "null"):
		return Alteration{Action: SetNotNull, Column: ColumnDef{Name: name, NotNull: true}}
	case p.acceptSeq("drop", "not", "null"):
		return Alteration{Action: SetNotNull, Column: ColumnDef{Name: name}, Drop: true}
	case p.acceptSeq("set", "data", "type"), p.accept("type"):
		typ := p.parseType()
		p.skipUsingClause()
		return Alteration{Action: ModifyColumn, Column: ColumnDef{Name: name, Type: typ}}
	default:
		// SET STATISTICS, SET STORAGE, ... — schema-neutral.
		p.skipToActionEnd()
		return Alteration{Action: OtherAlteration, Column: ColumnDef{Name: name}}
	}
}

func (p *parser) skipUsingClause() {
	if !p.accept("using") {
		return
	}
	depth := 0
	for {
		t := p.cur()
		if t.Kind == EOF || (depth == 0 && t.Kind == Comma) {
			return
		}
		if t.Kind == LParen {
			depth++
		}
		if t.Kind == RParen {
			depth--
		}
		p.next()
	}
}

func (p *parser) skipToActionEnd() {
	depth := 0
	for {
		t := p.cur()
		if t.Kind == EOF || (depth == 0 && t.Kind == Comma) {
			return
		}
		if t.Kind == LParen {
			depth++
		}
		if t.Kind == RParen {
			depth--
		}
		p.next()
	}
}

func (p *parser) parseDrop() Statement {
	switch {
	case p.accept("table"):
		dt := &DropTable{}
		if p.acceptSeq("if", "exists") {
			dt.IfExists = true
		}
		dt.Names = append(dt.Names, p.ident())
		for p.cur().Kind == Comma {
			p.next()
			dt.Names = append(dt.Names, p.ident())
		}
		if p.accept("cascade") {
			dt.Cascade = true
		}
		p.accept("restrict")
		return p.finishRaw(dt)
	case p.accept("index"):
		di := &DropIndex{}
		p.accept("concurrently")
		p.acceptSeq("if", "exists")
		di.Name = p.ident()
		if p.accept("on") {
			di.Table = p.ident()
		}
		return p.finishRaw(di)
	case p.accept("view"), p.accept("materialized"):
		return p.rawRest("DROP")
	default:
		return p.rawRest("DROP")
	}
}

func (p *parser) parseCreateIndex(unique bool) Statement {
	ci := &CreateIndex{Unique: unique}
	p.accept("concurrently")
	p.acceptSeq("if", "not", "exists")
	if p.cur().IsIdent() && !p.cur().Match("on") {
		ci.Name = p.ident()
	}
	p.expect("on")
	p.accept("only")
	ci.Table = p.ident()
	p.skipIndexMethod()
	if p.cur().Kind == LParen {
		ci.Columns = p.parseColumnList()
	}
	return p.finishRaw(ci)
}
