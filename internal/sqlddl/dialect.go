package sqlddl

// DialectID identifies a SQL dialect. The zero value is the generic
// mixed-dialect mode — the union grammar the parser historically accepted —
// so existing zero-valued sessions and cache records keep their meaning.
type DialectID uint8

const (
	DialectGeneric DialectID = iota
	DialectMySQL
	DialectPostgres
	DialectSQLite
)

// Valid reports whether id is one of the defined dialect identifiers —
// the codec-side range check for dialect tags read from untrusted bytes.
func (id DialectID) Valid() bool { return id <= DialectSQLite }

func (id DialectID) String() string {
	switch id {
	case DialectMySQL:
		return "mysql"
	case DialectPostgres:
		return "postgres"
	case DialectSQLite:
		return "sqlite"
	}
	return "generic"
}

// LexProfile configures the lexer for one dialect. All fields are
// negations of the generic union behavior (plus Dollar, which only
// PostgreSQL enables), so the zero value lexes exactly like the
// pre-dialect lexer — the invariant the differential goldens pin.
type LexProfile struct {
	// NoHashComment disables '#' line comments (MySQL-only syntax).
	NoHashComment bool
	// NoBacktick disables `backtick` identifier quoting.
	NoBacktick bool
	// NoBracket disables [bracket] identifier quoting.
	NoBracket bool
	// Dollar enables PostgreSQL $tag$ ... $tag$ dollar-quoted strings.
	Dollar bool
}

// Quirks configures dialect-specific parse behavior. As with LexProfile,
// the zero value reproduces the generic union grammar.
type Quirks struct {
	// NoDoubleColonCast disables PostgreSQL '::type' casts in default
	// expressions.
	NoDoubleColonCast bool
	// NoSerialAuto disables treating the SERIAL type family as
	// auto-incrementing NOT NULL columns.
	NoSerialAuto bool
	// NoTypeless requires every column definition to carry a data type
	// (SQLite alone allows "id PRIMARY KEY").
	NoTypeless bool
}

// Dialect is a pluggable SQL dialect: a lexer profile, a set of parser
// quirks, and a type vocabulary. Adapters live in
// internal/sqlddl/dialect/{mysql,postgres,sqlite}; the generic union
// dialect is defined here so the core package is usable standalone.
//
// Implementations must be immutable and safe for concurrent use; the
// Session copies the profile and quirks once per SetDialect, so no
// interface dispatch happens on the per-token or per-statement hot path.
type Dialect interface {
	ID() DialectID
	// Name is the canonical lower-case name ("mysql", "postgres", ...).
	Name() string
	LexProfile() LexProfile
	Quirks() Quirks
	// KnownType reports whether the lower-cased base type name (first
	// word, no arguments) belongs to the dialect's native vocabulary.
	// Unknown types still parse — the parser stays error-tolerant — but
	// the vocabulary drives dialect detection and conformance scoring.
	KnownType(name string) bool
}

// genericDialect is the union grammar: every quoting style, every quirk.
type genericDialect struct{}

func (genericDialect) ID() DialectID          { return DialectGeneric }
func (genericDialect) Name() string           { return "generic" }
func (genericDialect) LexProfile() LexProfile { return LexProfile{} }
func (genericDialect) Quirks() Quirks         { return Quirks{} }
func (genericDialect) KnownType(string) bool  { return true }

// Generic is the default dialect: the historical mixed-dialect union
// grammar. A nil Dialect everywhere means Generic.
var Generic Dialect = genericDialect{}
