package sqlddl

import (
	"fmt"
	"strings"
	"testing"
)

// largeDump builds a realistic n-table dump for throughput benchmarks.
func largeDump(n int) string {
	var sb strings.Builder
	sb.WriteString("SET NAMES utf8;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `CREATE TABLE table_%d (
  id BIGINT NOT NULL AUTO_INCREMENT,
  name VARCHAR(255) NOT NULL DEFAULT '',
  payload TEXT,
  amount NUMERIC(10,2) DEFAULT 0.00,
  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP,
  ref_id INT,
  PRIMARY KEY (id),
  KEY idx_name (name),
  CONSTRAINT fk_%d FOREIGN KEY (ref_id) REFERENCES table_0 (id) ON DELETE CASCADE
) ENGINE=InnoDB DEFAULT CHARSET=utf8;
`, i, i)
	}
	return sb.String()
}

// BenchmarkParseLargeDump measures parser throughput on a 300-table dump
// (the size of a large FOSS schema).
func BenchmarkParseLargeDump(b *testing.B) {
	dump := largeDump(300)
	b.SetBytes(int64(len(dump)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		script := Parse(dump)
		if len(script.Errors) != 0 {
			b.Fatalf("errors: %v", script.Errors)
		}
		if len(script.Statements) != 301 {
			b.Fatalf("statements = %d", len(script.Statements))
		}
	}
}

// BenchmarkTokenize measures raw lexer throughput.
func BenchmarkTokenize(b *testing.B) {
	dump := largeDump(100)
	b.SetBytes(int64(len(dump)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks := Tokenize(dump)
		if len(toks) < 1000 {
			b.Fatal("suspiciously few tokens")
		}
	}
}
