package sqlddl

// Script is a parsed DDL file: the statements that could be parsed, plus
// any per-statement errors for the ones that could not.
type Script struct {
	Statements []Statement
	// Errors holds one entry per statement that failed to parse. Parsing
	// is error-tolerant: a bad statement is skipped, not fatal.
	Errors []*ParseError
}

// Statement is a single parsed DDL statement.
type Statement interface {
	// stmt is a marker method restricting the implementations to this
	// package.
	stmt()
}

// ColumnDef describes one column of a table.
type ColumnDef struct {
	Name string
	// Type is the raw data type as written (e.g. "VARCHAR(255)",
	// "integer", "numeric(10,2)"). Use schema.NormalizeType for the
	// canonical form.
	Type string
	// NotNull is set by NOT NULL or by PRIMARY KEY membership declared
	// inline.
	NotNull bool
	// Default is the raw default expression, empty if absent.
	Default string
	// HasDefault distinguishes DEFAULT NULL from no default at all.
	HasDefault bool
	// PrimaryKey marks an inline PRIMARY KEY column constraint.
	PrimaryKey bool
	// Unique marks an inline UNIQUE column constraint.
	Unique bool
	// AutoIncrement marks AUTO_INCREMENT / AUTOINCREMENT / IDENTITY /
	// SERIAL-typed columns.
	AutoIncrement bool
	// References is the inline foreign-key target, nil if absent.
	References *FKRef
	// Comment is the MySQL COMMENT 'text' clause, if present.
	Comment string
}

// FKRef is the target of a foreign-key reference.
type FKRef struct {
	Table   string
	Columns []string
	// OnDelete and OnUpdate carry the referential actions as written
	// (e.g. "CASCADE", "SET NULL"), empty if unspecified.
	OnDelete string
	OnUpdate string
}

// ConstraintKind classifies table-level constraints.
type ConstraintKind int

// Table constraint kinds.
const (
	PrimaryKeyConstraint ConstraintKind = iota
	ForeignKeyConstraint
	UniqueConstraint
	CheckConstraint
	IndexConstraint // KEY / INDEX clauses inside CREATE TABLE (MySQL)
)

func (k ConstraintKind) String() string {
	switch k {
	case PrimaryKeyConstraint:
		return "PRIMARY KEY"
	case ForeignKeyConstraint:
		return "FOREIGN KEY"
	case UniqueConstraint:
		return "UNIQUE"
	case CheckConstraint:
		return "CHECK"
	case IndexConstraint:
		return "INDEX"
	}
	return "CONSTRAINT"
}

// TableConstraint is a table-level constraint of a CREATE TABLE or an
// ALTER TABLE ... ADD CONSTRAINT.
type TableConstraint struct {
	Kind ConstraintKind
	// Name is the optional constraint name.
	Name string
	// Columns are the constrained columns (empty for CHECK).
	Columns []string
	// Ref is set for foreign keys.
	Ref *FKRef
	// Expr is the raw expression for CHECK constraints.
	Expr string
}

// CreateTable is a parsed CREATE TABLE statement.
type CreateTable struct {
	Name        string
	IfNotExists bool
	Temporary   bool
	Columns     []ColumnDef
	Constraints []TableConstraint
	// Options holds trailing table options (ENGINE=, CHARSET=, ...) as
	// raw text; they do not affect the logical schema.
	Options string
}

func (*CreateTable) stmt() {}

// AlterAction enumerates the ALTER TABLE sub-commands that affect the
// logical schema.
type AlterAction int

// Alter action kinds.
const (
	AddColumn AlterAction = iota
	DropColumn
	ModifyColumn       // MODIFY/ALTER COLUMN type changes
	RenameColumn       // RENAME COLUMN a TO b, CHANGE a b type
	AddTableConstraint // ADD CONSTRAINT / ADD PRIMARY KEY / ADD FOREIGN KEY
	DropConstraint     // DROP CONSTRAINT / DROP PRIMARY KEY / DROP FOREIGN KEY
	RenameTable        // RENAME TO t
	SetDefault         // ALTER COLUMN c SET DEFAULT / DROP DEFAULT
	SetNotNull         // ALTER COLUMN c SET NOT NULL / DROP NOT NULL
	OtherAlteration    // recognized but schema-neutral (e.g. engine options)
)

func (a AlterAction) String() string {
	switch a {
	case AddColumn:
		return "ADD COLUMN"
	case DropColumn:
		return "DROP COLUMN"
	case ModifyColumn:
		return "MODIFY COLUMN"
	case RenameColumn:
		return "RENAME COLUMN"
	case AddTableConstraint:
		return "ADD CONSTRAINT"
	case DropConstraint:
		return "DROP CONSTRAINT"
	case RenameTable:
		return "RENAME TABLE"
	case SetDefault:
		return "SET DEFAULT"
	case SetNotNull:
		return "SET NOT NULL"
	case OtherAlteration:
		return "OTHER"
	}
	return "ALTER"
}

// Alteration is a single action of an ALTER TABLE statement.
type Alteration struct {
	Action AlterAction
	// Column is the affected column definition: the new definition for
	// AddColumn/ModifyColumn/RenameColumn, or just the Name for
	// DropColumn/SetDefault/SetNotNull.
	Column ColumnDef
	// OldName is the pre-rename column name for RenameColumn.
	OldName string
	// NewTableName is set for RenameTable.
	NewTableName string
	// Constraint is set for AddTableConstraint.
	Constraint *TableConstraint
	// ConstraintKind and ConstraintName are set for DropConstraint.
	ConstraintKind ConstraintKind
	ConstraintName string
	// Drop is true for the DROP variants of SetDefault/SetNotNull.
	Drop bool
}

// AlterTable is a parsed ALTER TABLE statement (one or more actions).
type AlterTable struct {
	Name     string
	IfExists bool
	Actions  []Alteration
}

func (*AlterTable) stmt() {}

// DropTable is a parsed DROP TABLE statement.
type DropTable struct {
	Names    []string
	IfExists bool
	Cascade  bool
}

func (*DropTable) stmt() {}

// CreateIndex is a parsed CREATE [UNIQUE] INDEX statement. Indexes are
// physical-level and do not contribute to logical-schema change, but they
// are parsed so that callers can count them.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndex) stmt() {}

// DropIndex is a parsed DROP INDEX statement.
type DropIndex struct {
	Name  string
	Table string // MySQL form: DROP INDEX name ON table
}

func (*DropIndex) stmt() {}

// CreateView records a CREATE VIEW statement. Views are recognized so
// they are not misparsed, but the logical-schema model tracks base tables
// only, matching the paper's unit of measurement.
type CreateView struct {
	Name string
}

func (*CreateView) stmt() {}

// RawStatement is any statement the parser recognizes as valid SQL but
// does not model (INSERT, UPDATE, SET, USE, GRANT, COMMENT, SELECT, ...).
// Verb is the first keyword, upper-cased.
type RawStatement struct {
	Verb string
	Text string
}

func (*RawStatement) stmt() {}
