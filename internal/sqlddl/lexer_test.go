package sqlddl

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("CREATE TABLE t (id INT);")
	want := []Kind{Ident, Ident, Ident, LParen, Ident, Ident, RParen, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), toks, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v (%v)", i, got[i], want[i], toks[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `-- line comment
# mysql comment
/* block
   comment */ SELECT 1`
	toks := Tokenize(src)
	if len(toks) != 3 || !toks[0].Match("select") || toks[1].Kind != Number {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`'plain'`, "plain"},
		{`'it''s'`, "it's"},
		{`'it\'s'`, "it's"},
		{`'back\\slash'`, `back\slash`},
		{`''`, ""},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if toks[0].Kind != String || toks[0].Text != c.want {
			t.Errorf("Tokenize(%s) = %v, want String(%q)", c.src, toks[0], c.want)
		}
	}
}

func TestTokenizeQuotedIdents(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"`my table`", "my table"},
		{`"CaseSensitive"`, "CaseSensitive"},
		{`[bracketed]`, "bracketed"},
		{"`a``b`", "a`b"},
		{`"a""b"`, `a"b`},
	}
	for _, c := range cases {
		toks := Tokenize(c.src)
		if toks[0].Kind != QuotedIdent || toks[0].Text != c.want {
			t.Errorf("Tokenize(%s) = %v, want QuotedIdent(%q)", c.src, toks[0], c.want)
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []string{"0", "42", "3.14", ".5", "1e10", "2.5E-3"}
	for _, c := range cases {
		toks := Tokenize(c)
		if toks[0].Kind != Number || toks[0].Text != c {
			t.Errorf("Tokenize(%q) = %v, want Number(%q)", c, toks[0], c)
		}
		if len(toks) != 2 {
			t.Errorf("Tokenize(%q): trailing tokens %v", c, toks[1:])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := map[string]string{
		"<=": "<=", ">=": ">=", "<>": "<>", "!=": "!=", "::": "::", "||": "||",
		"=": "=", "<": "<", "*": "*",
	}
	for src, want := range cases {
		toks := Tokenize(src)
		if toks[0].Kind != Op || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %v, want Op(%q)", src, toks[0], want)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks := Tokenize("a\n  bb")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("token a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("token bb at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestTokenizeUnterminatedString(t *testing.T) {
	toks := Tokenize("'never ends")
	if toks[0].Kind != String || toks[0].Text != "never ends" {
		t.Fatalf("unterminated string: %v", toks)
	}
	if toks[1].Kind != EOF {
		t.Fatalf("expected EOF after unterminated string, got %v", toks[1])
	}
}

func TestSplitStatements(t *testing.T) {
	src := `CREATE TABLE a (x INT); -- trailing
	INSERT INTO a VALUES ('semi ; inside string');
	CREATE TABLE b (y INT)`
	stmts := SplitStatements(src)
	if len(stmts) != 3 {
		t.Fatalf("got %d statements, want 3: %q", len(stmts), stmts)
	}
	if !strings.HasPrefix(stmts[0], "CREATE TABLE a") {
		t.Errorf("stmt 0 = %q", stmts[0])
	}
	if !strings.Contains(stmts[1], "semi ; inside") {
		t.Errorf("stmt 1 lost string content: %q", stmts[1])
	}
	if !strings.HasPrefix(stmts[2], "CREATE TABLE b") {
		t.Errorf("stmt 2 = %q", stmts[2])
	}
}

func TestSplitStatementsEmptyAndSeparators(t *testing.T) {
	if got := SplitStatements(";;;  ;"); len(got) != 0 {
		t.Errorf("empty script produced %q", got)
	}
	if got := SplitStatements("  \n\t"); len(got) != 0 {
		t.Errorf("whitespace produced %q", got)
	}
}

func TestMatchIsCaseInsensitive(t *testing.T) {
	tok := Token{Kind: Ident, Text: "CrEaTe"}
	if !tok.Match("create") || !tok.Match("CREATE") {
		t.Error("Match should be case-insensitive")
	}
	quoted := Token{Kind: QuotedIdent, Text: "create"}
	if quoted.Match("create") {
		t.Error("quoted identifiers must not match keywords")
	}
}

// TestTokenizeNeverPanicsOrLoops is a property test: the lexer must
// terminate with an EOF token on arbitrary input.
func TestTokenizeNeverPanicsOrLoops(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		return len(toks) >= 1 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestSplitStatementsCoversInput checks that splitting loses no
// non-separator content: rejoining the statements and re-lexing yields the
// same token stream as lexing the original minus top-level semicolons.
func TestSplitStatementsCoversInput(t *testing.T) {
	src := "CREATE TABLE a (x INT, y TEXT); DROP TABLE a; ALTER TABLE b ADD c INT"
	orig := Tokenize(src)
	var origNoSemi []Token
	for _, tk := range orig {
		if tk.Kind != Semi && tk.Kind != EOF {
			origNoSemi = append(origNoSemi, tk)
		}
	}
	var rejoined []Token
	for _, s := range SplitStatements(src) {
		for _, tk := range Tokenize(s) {
			if tk.Kind != EOF {
				rejoined = append(rejoined, tk)
			}
		}
	}
	if len(rejoined) != len(origNoSemi) {
		t.Fatalf("token count mismatch: %d vs %d", len(rejoined), len(origNoSemi))
	}
	for i := range rejoined {
		if rejoined[i].Kind != origNoSemi[i].Kind || rejoined[i].Text != origNoSemi[i].Text {
			t.Errorf("token %d: %v vs %v", i, rejoined[i], origNoSemi[i])
		}
	}
}
