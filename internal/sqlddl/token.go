package sqlddl

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds produced by the lexer.
const (
	// EOF marks the end of the input.
	EOF Kind = iota
	// Ident is an unquoted identifier or keyword. Keywords are not
	// distinguished lexically; the parser matches them case-insensitively.
	Ident
	// QuotedIdent is an identifier quoted with double quotes, backquotes
	// or square brackets. Its Text carries the unquoted value.
	QuotedIdent
	// Number is an integer or decimal literal.
	Number
	// String is a single-quoted SQL string literal. Its Text carries the
	// unescaped value.
	String
	// LParen and RParen are the parenthesis tokens.
	LParen
	RParen
	// Comma, Semi and Dot are the corresponding punctuation tokens.
	Comma
	Semi
	Dot
	// Op is any other operator or punctuation character sequence
	// (=, <, >, <=, >=, <>, !=, +, -, *, /, %, ::, etc.).
	Op
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case QuotedIdent:
		return "QuotedIdent"
	case Number:
		return "Number"
	case String:
		return "String"
	case LParen:
		return "LParen"
	case RParen:
		return "RParen"
	case Comma:
		return "Comma"
	case Semi:
		return "Semi"
	case Dot:
		return "Dot"
	case Op:
		return "Op"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical unit of a DDL script.
type Token struct {
	Kind Kind
	// Text is the token payload: the identifier (unquoted), the literal
	// value, or the operator characters.
	Text string
	// Line and Col locate the first character of the token (1-based).
	Line, Col int
}

// IsIdent reports whether the token is a (possibly quoted) identifier.
func (t Token) IsIdent() bool { return t.Kind == Ident || t.Kind == QuotedIdent }

// Match reports whether the token is an unquoted identifier equal to the
// given keyword, compared case-insensitively. Quoted identifiers never
// match keywords.
func (t Token) Match(keyword string) bool {
	return t.Kind == Ident && equalFold(t.Text, keyword)
}

// equalFold is an ASCII-only case-insensitive comparison. SQL keywords are
// ASCII, so the full Unicode folding of strings.EqualFold is unnecessary,
// and this avoids its overhead on the hot tokenizing path.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d:%d", t.Kind, t.Text, t.Line, t.Col)
}
