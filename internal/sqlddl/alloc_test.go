package sqlddl

import "testing"

// Allocation budgets for the lexing/parsing hot path. These pin the
// zero-copy discipline: lexing an escape-free statement must not allocate
// at all, and re-parsing a script whose statements are memoized in the
// session must stay within a handful of allocations per call. Budgets are
// ceilings with a little slack, not exact counts — shrink them if the path
// gets leaner, but a jump means a zero-copy invariant broke.

const allocStmt = "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(255) NOT NULL, email TEXT, org_id INT REFERENCES orgs (id));"

const allocScript = allocStmt + `
CREATE TABLE orgs (id INT PRIMARY KEY, title TEXT DEFAULT 'n/a');
ALTER TABLE users ADD COLUMN created_at TIMESTAMP;
CREATE INDEX idx_users_org ON users (org_id);
`

func TestAllocBudgetLexOneStatement(t *testing.T) {
	lx := NewLexer(allocStmt)
	allocs := testing.AllocsPerRun(200, func() {
		*lx = Lexer{src: allocStmt, line: 1, col: 1, scratch: lx.scratch}
		for {
			if tok := lx.Next(); tok.Kind == EOF {
				break
			}
		}
	})
	if allocs > 0 {
		t.Errorf("lexing one escape-free statement: %.1f allocs/run, want 0", allocs)
	}
}

func TestAllocBudgetParseOneScriptWarm(t *testing.T) {
	sess := NewSession()
	units := sess.ParseUnits(allocScript, nil) // warm the statement cache
	allocs := testing.AllocsPerRun(200, func() {
		units = sess.ParseUnits(allocScript, units[:0])
	})
	// A fully memoized re-parse lexes the script (zero-copy) and resolves
	// every statement from the cache; nothing on that path allocates.
	if allocs > 0 {
		t.Errorf("re-parsing a memoized script: %.1f allocs/run, want 0", allocs)
	}
}

func TestAllocBudgetParseOneScriptCold(t *testing.T) {
	sess := NewSession()
	var units []Unit
	allocs := testing.AllocsPerRun(100, func() {
		sess.ClearCache()
		clear(sess.interned) // cold: intern table hits would hide the cost
		units = sess.ParseUnits(allocScript, units[:0])
	})
	// A cold parse builds the ASTs, the cache entries, and the interned
	// names; the budget bounds that inherent cost so it cannot creep.
	const budget = 120
	if allocs > budget {
		t.Errorf("cold-parsing the script: %.1f allocs/run, budget %d", allocs, budget)
	}
}
