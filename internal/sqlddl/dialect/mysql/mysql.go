// Package mysql is the MySQL/MariaDB dialect adapter: backtick quoting,
// '#' line comments, no PostgreSQL casts or dollar quoting, and the
// MySQL type vocabulary.
package mysql

import core "schemaevo/internal/sqlddl"

type dialectImpl struct{}

// Dialect is the MySQL dialect singleton.
var Dialect core.Dialect = dialectImpl{}

func (dialectImpl) ID() core.DialectID { return core.DialectMySQL }
func (dialectImpl) Name() string       { return "mysql" }

func (dialectImpl) LexProfile() core.LexProfile {
	// Backticks and '#' comments are native; [brackets] and $dollar$
	// quoting are not.
	return core.LexProfile{NoBracket: true}
}

func (dialectImpl) Quirks() core.Quirks {
	// No '::' casts, no SERIAL-implies-identity, and every column carries
	// a type.
	return core.Quirks{NoDoubleColonCast: true, NoSerialAuto: true, NoTypeless: true}
}

func (dialectImpl) KnownType(name string) bool { return types[name] }

var types = map[string]bool{
	"bit": true, "tinyint": true, "smallint": true, "mediumint": true,
	"int": true, "integer": true, "bigint": true, "decimal": true,
	"numeric": true, "float": true, "double": true, "real": true,
	"bool": true, "boolean": true, "serial": true,
	"date": true, "datetime": true, "timestamp": true, "time": true, "year": true,
	"char": true, "varchar": true, "binary": true, "varbinary": true,
	"tinyblob": true, "blob": true, "mediumblob": true, "longblob": true,
	"tinytext": true, "text": true, "mediumtext": true, "longtext": true,
	"enum": true, "set": true, "json": true,
	"geometry": true, "point": true, "linestring": true, "polygon": true,
	"multipoint": true, "multilinestring": true, "multipolygon": true,
	"geometrycollection": true,
}
