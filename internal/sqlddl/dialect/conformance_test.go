package dialect_test

// Conformance corpus: each adapter must accept its own real-world-shaped
// corpus without a single parse error, and must degrade — parse errors,
// never panics — on the two foreign corpora whose syntax it does not
// speak. Detection must also attribute every corpus file to its dialect.

import (
	"os"
	"path/filepath"
	"testing"

	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
)

const corporaDir = "../../../testdata/dialects"

// corpusFiles returns the conformance files for one dialect name.
func corpusFiles(t *testing.T, name string) map[string]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(corporaDir, name, "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no %s corpus files: %v", name, err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(f)] = string(src)
	}
	return out
}

func TestConformanceOwnCorpus(t *testing.T) {
	for _, d := range dialect.All() {
		for name, src := range corpusFiles(t, d.Name()) {
			script := core.ParseWith(d, src)
			if len(script.Errors) != 0 {
				t.Errorf("%s/%s: own-dialect parse errors: %v", d.Name(), name, script.Errors)
			}
			if len(script.Statements) == 0 {
				t.Errorf("%s/%s: no statements parsed", d.Name(), name)
			}
		}
	}
}

// TestConformanceForeignCorpus asserts the degradation contract: parsing
// a corpus under a foreign dialect never panics (ParseWith recovers
// per-statement), and each foreign corpus trips at least one parse error
// — the engineered quirks (backticks, '#' comments, '::' casts, typeless
// columns, bracket quoting) are dialect-foreign by construction.
func TestConformanceForeignCorpus(t *testing.T) {
	for _, owner := range dialect.All() {
		corpus := corpusFiles(t, owner.Name())
		for _, foreign := range dialect.All() {
			if foreign.ID() == owner.ID() {
				continue
			}
			totalErrs := 0
			for name, src := range corpus {
				script := core.ParseWith(foreign, src) // must not panic
				totalErrs += len(script.Errors)
				_ = name
			}
			if totalErrs == 0 {
				t.Errorf("%s corpus parsed error-free under %s; expected degradation", owner.Name(), foreign.Name())
			}
		}
	}
}

func TestConformanceDetection(t *testing.T) {
	for _, d := range dialect.All() {
		for name, src := range corpusFiles(t, d.Name()) {
			got := dialect.DetectID(src)
			if got != d.ID() {
				t.Errorf("%s/%s: detected as %s (scores %+v)", d.Name(), name, got, dialect.Score(src))
			}
		}
	}
}
