// Package sqlite is the SQLite dialect adapter: loose typing (typeless
// columns), backtick and [bracket] quoting both tolerated, no '#'
// comments, no PostgreSQL casts, and SQLite's affinity-style vocabulary.
package sqlite

import core "schemaevo/internal/sqlddl"

type dialectImpl struct{}

// Dialect is the SQLite dialect singleton.
var Dialect core.Dialect = dialectImpl{}

func (dialectImpl) ID() core.DialectID { return core.DialectSQLite }
func (dialectImpl) Name() string       { return "sqlite" }

func (dialectImpl) LexProfile() core.LexProfile {
	// SQLite accepts MySQL backticks and MSSQL brackets as identifier
	// quotes, but not '#' comments or dollar quoting.
	return core.LexProfile{NoHashComment: true}
}

func (dialectImpl) Quirks() core.Quirks {
	// Typeless columns are native; SERIAL is just a type name here.
	return core.Quirks{NoDoubleColonCast: true, NoSerialAuto: true}
}

func (dialectImpl) KnownType(name string) bool { return types[name] }

// SQLite accepts any type name (affinity rules), but the vocabulary below
// is what real SQLite schemas actually use; detection scores against it.
var types = map[string]bool{
	"int": true, "integer": true, "tinyint": true, "smallint": true,
	"mediumint": true, "bigint": true, "unsigned": true,
	"character": true, "varchar": true, "varying": true, "nchar": true,
	"native": true, "nvarchar": true, "text": true, "clob": true,
	"blob": true, "real": true, "double": true, "float": true,
	"numeric": true, "decimal": true, "bool": true, "boolean": true,
	"date": true, "datetime": true, "timestamp": true,
}
