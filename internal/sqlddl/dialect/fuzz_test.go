package dialect_test

import (
	"os"
	"path/filepath"
	"testing"

	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
)

// seedCorpus seeds a fuzz target with one dialect's conformance corpus
// (plus the neutral corpus, so cross-dialect bytes reach every adapter).
func seedCorpus(f *testing.F, names ...string) {
	f.Helper()
	for _, name := range names {
		files, err := filepath.Glob(filepath.Join(corporaDir, name, "*.sql"))
		if err != nil || len(files) == 0 {
			f.Fatalf("no %s corpus files: %v", name, err)
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(data))
		}
	}
}

// fuzzParseDialect is the shared body of the per-dialect parse fuzzers:
// whatever bytes arrive, the adapter must return a script (degrading via
// Errors, never panicking), and every structured statement it produces
// must re-parse from its own rendering under the same dialect.
func fuzzParseDialect(f *testing.F, name string) {
	d, ok := dialect.ByName(name)
	if !ok {
		f.Fatalf("unknown dialect %s", name)
	}
	seedCorpus(f, name, "neutral")
	f.Fuzz(func(t *testing.T, src string) {
		script := core.ParseWith(d, src)
		if script == nil {
			t.Fatal("nil script")
		}
		for _, stmt := range script.Statements {
			if _, ok := stmt.(*core.RawStatement); ok {
				continue
			}
			rendered := core.Render(stmt)
			re := core.ParseWith(d, rendered)
			if len(re.Errors) != 0 {
				t.Fatalf("rendered statement does not re-parse: %v\nrendered: %s", re.Errors, rendered)
			}
		}
	})
}

// FuzzParseMySQL: go test -fuzz=FuzzParseMySQL ./internal/sqlddl/dialect
func FuzzParseMySQL(f *testing.F) { fuzzParseDialect(f, "mysql") }

// FuzzParsePostgres: go test -fuzz=FuzzParsePostgres ./internal/sqlddl/dialect
func FuzzParsePostgres(f *testing.F) { fuzzParseDialect(f, "postgres") }

// FuzzParseSQLite: go test -fuzz=FuzzParseSQLite ./internal/sqlddl/dialect
func FuzzParseSQLite(f *testing.F) { fuzzParseDialect(f, "sqlite") }

// FuzzDetectDialect: detection must be total (no panics, a valid ID) and
// self-consistent — re-scoring the same bytes yields the same scores, and
// the winner reported by DetectID matches the full Score breakdown.
func FuzzDetectDialect(f *testing.F) {
	seedCorpus(f, "mysql", "postgres", "sqlite", "neutral")
	f.Fuzz(func(t *testing.T, src string) {
		id := dialect.DetectID(src)
		if !id.Valid() {
			t.Fatalf("detected invalid dialect id %d", id)
		}
		s1, s2 := dialect.Score(src), dialect.Score(src)
		if s1 != s2 {
			t.Fatalf("detection not deterministic: %+v vs %+v", s1, s2)
		}
		if got := dialect.Detect(src).ID(); got != id {
			t.Fatalf("Detect/DetectID disagree: %v vs %v", got, id)
		}
	})
}
