package dialect_test

import (
	"testing"

	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
)

// Per-dialect allocation budgets. The core budgets (internal/sqlddl)
// pin the generic union path; these pin the same zero-copy discipline
// through each adapter's lexer profile and quirks, each on a statement
// written in its own dialect's syntax.

// allocScripts holds an escape-free, memoizable script per dialect.
var allocScripts = map[string]string{
	"mysql": "CREATE TABLE `users` (`id` INT AUTO_INCREMENT, `name` VARCHAR(255) NOT NULL, PRIMARY KEY (`id`)) ENGINE=InnoDB;\n" +
		"ALTER TABLE `users` ADD COLUMN `created_at` TIMESTAMP;\n" +
		"CREATE INDEX idx_users_name ON `users` (`name`);\n",
	"postgres": "CREATE TABLE users (id serial PRIMARY KEY, name varchar(255) NOT NULL, tags text[] DEFAULT '{}'::text[]);\n" +
		"ALTER TABLE users ADD COLUMN created_at timestamptz;\n" +
		"CREATE INDEX idx_users_name ON users (name);\n",
	"sqlite": "CREATE TABLE users (id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL, profile);\n" +
		"ALTER TABLE users ADD COLUMN created_at TEXT;\n" +
		"CREATE INDEX idx_users_name ON users (name);\n",
}

// TestAllocBudgetDialectLex: lexing an escape-free own-dialect statement
// allocates nothing, whatever the active profile.
func TestAllocBudgetDialectLex(t *testing.T) {
	for _, d := range dialect.All() {
		t.Run(d.Name(), func(t *testing.T) {
			src := allocScripts[d.Name()]
			lx := core.NewLexerProfile(src, d.LexProfile())
			allocs := testing.AllocsPerRun(200, func() {
				lx.Reset(src)
				for {
					if tok := lx.Next(); tok.Kind == core.EOF {
						break
					}
				}
			})
			if allocs > 0 {
				t.Errorf("lexing: %.1f allocs/run, want 0", allocs)
			}
		})
	}
}

// TestAllocBudgetDialectParseWarm: a fully memoized re-parse stays
// allocation-free under every adapter.
func TestAllocBudgetDialectParseWarm(t *testing.T) {
	for _, d := range dialect.All() {
		t.Run(d.Name(), func(t *testing.T) {
			src := allocScripts[d.Name()]
			sess := core.NewSession()
			sess.SetDialect(d)
			units := sess.ParseUnits(src, nil)
			allocs := testing.AllocsPerRun(200, func() {
				units = sess.ParseUnits(src, units[:0])
			})
			if allocs > 0 {
				t.Errorf("memoized re-parse: %.1f allocs/run, want 0", allocs)
			}
		})
	}
}

// TestAllocBudgetDialectParseCold: a cold parse (statement cache
// cleared between runs; the intern table stays warm, as it does across
// files of one project) stays within the same ceiling the generic cold
// budget uses.
func TestAllocBudgetDialectParseCold(t *testing.T) {
	const budget = 120
	for _, d := range dialect.All() {
		t.Run(d.Name(), func(t *testing.T) {
			src := allocScripts[d.Name()]
			sess := core.NewSession()
			sess.SetDialect(d)
			var units []core.Unit
			units = sess.ParseUnits(src, units) // warm the intern table
			allocs := testing.AllocsPerRun(100, func() {
				sess.ClearCache()
				units = sess.ParseUnits(src, units[:0])
			})
			if allocs > budget {
				t.Errorf("cold parse: %.1f allocs/run, budget %d", allocs, budget)
			}
		})
	}
}
