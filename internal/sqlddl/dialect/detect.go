package dialect

import (
	core "schemaevo/internal/sqlddl"
)

// Detection is a single allocation-free scan of raw DDL text that scores
// dialect-specific signals: quoting style (backticks, brackets, dollar
// quotes), comment syntax ('#'), operator fingerprints ('::'), and
// keyword/type vocabulary (ENGINE=, AUTO_INCREMENT vs AUTOINCREMENT,
// SERIAL/BYTEA/JSONB, WITHOUT ROWID/PRAGMA). String literals, quoted
// identifiers and comments are skipped so their contents cannot vote.
//
// Detect is deterministic and total: equal inputs produce equal results,
// and every input produces a result. The highest score wins; ties break
// in the documented order MySQL > PostgreSQL > SQLite; an all-zero score
// (nothing dialect-specific in the file) yields Generic.

// Scores holds the per-dialect evidence accumulated by one detection scan.
type Scores struct {
	MySQL    int
	Postgres int
	SQLite   int
}

// winner applies the documented tie-break order.
func (s Scores) winner() core.DialectID {
	switch {
	case s.MySQL == 0 && s.Postgres == 0 && s.SQLite == 0:
		return core.DialectGeneric
	case s.MySQL >= s.Postgres && s.MySQL >= s.SQLite:
		return core.DialectMySQL
	case s.Postgres >= s.SQLite:
		return core.DialectPostgres
	default:
		return core.DialectSQLite
	}
}

// Detect guesses the dialect of a DDL script. See the package comment for
// the scoring model; Generic means "no dialect-specific evidence".
func Detect(src string) core.Dialect { return ByID(DetectID(src)) }

// DetectID is Detect returning just the identifier.
func DetectID(src string) core.DialectID { return Score(src).winner() }

// weight pairs a dialect with the evidence weight of one signal word.
type weight struct {
	id core.DialectID
	w  int
}

// signalWords maps lower-cased identifier spellings to dialect evidence.
// Words common across dialects (text, integer, timestamp, ...) carry no
// signal and are absent.
var signalWords = map[string]weight{
	// MySQL: storage engines, charset clauses, width/sign modifiers, the
	// tiny/medium/long type ladder.
	"engine":         {core.DialectMySQL, 4},
	"auto_increment": {core.DialectMySQL, 4},
	"innodb":         {core.DialectMySQL, 4},
	"myisam":         {core.DialectMySQL, 4},
	"unsigned":       {core.DialectMySQL, 2},
	"zerofill":       {core.DialectMySQL, 2},
	"charset":        {core.DialectMySQL, 3},
	"utf8mb4":        {core.DialectMySQL, 3},
	"mediumint":      {core.DialectMySQL, 3},
	"mediumtext":     {core.DialectMySQL, 3},
	"mediumblob":     {core.DialectMySQL, 3},
	"longtext":       {core.DialectMySQL, 3},
	"longblob":       {core.DialectMySQL, 3},
	"tinytext":       {core.DialectMySQL, 3},
	"tinyblob":       {core.DialectMySQL, 3},
	"tinyint":        {core.DialectMySQL, 1},
	"enum":           {core.DialectMySQL, 2},

	// PostgreSQL: identity families, native types, sequence functions,
	// ALTER TABLE ONLY, procedural language markers.
	"serial":      {core.DialectPostgres, 4},
	"bigserial":   {core.DialectPostgres, 4},
	"smallserial": {core.DialectPostgres, 4},
	"bytea":       {core.DialectPostgres, 4},
	"jsonb":       {core.DialectPostgres, 4},
	"timestamptz": {core.DialectPostgres, 4},
	"nextval":     {core.DialectPostgres, 4},
	"setval":      {core.DialectPostgres, 3},
	"inherits":    {core.DialectPostgres, 3},
	"regclass":    {core.DialectPostgres, 3},
	"plpgsql":     {core.DialectPostgres, 4},
	"tablespace":  {core.DialectPostgres, 2},
	"varying":     {core.DialectPostgres, 2},
	"only":        {core.DialectPostgres, 2},
	"int4":        {core.DialectPostgres, 3},
	"int8":        {core.DialectPostgres, 3},
	"float8":      {core.DialectPostgres, 3},
	"gin":         {core.DialectPostgres, 2},
	"gist":        {core.DialectPostgres, 2},

	// SQLite: AUTOINCREMENT (one word), rowid tables, pragmas, FTS.
	"autoincrement":   {core.DialectSQLite, 4},
	"rowid":           {core.DialectSQLite, 4},
	"pragma":          {core.DialectSQLite, 3},
	"sqlite_sequence": {core.DialectSQLite, 4},
	"fts5":            {core.DialectSQLite, 3},
	"glob":            {core.DialectSQLite, 2},
}

func (s *Scores) add(w weight) {
	switch w.id {
	case core.DialectMySQL:
		s.MySQL += w.w
	case core.DialectPostgres:
		s.Postgres += w.w
	case core.DialectSQLite:
		s.SQLite += w.w
	}
}

func isWordByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// Score runs the detection scan and returns the raw per-dialect scores.
// It allocates nothing and never fails, whatever bytes it is handed.
func Score(src string) Scores {
	var sc Scores
	var wordBuf [24]byte
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f':
			i++
			continue
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i < len(src) && !(src[i] == '*' && i+1 < len(src) && src[i+1] == '/') {
				i++
			}
			i += 2
		case c == '#':
			sc.add(weight{core.DialectMySQL, 2})
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			i++
			for i < len(src) {
				if src[i] == '\\' {
					i += 2
					continue
				}
				if src[i] == '\'' {
					i++
					break
				}
				i++
			}
		case c == '"':
			i++
			for i < len(src) && src[i] != '"' {
				i++
			}
			i++
		case c == '`':
			sc.add(weight{core.DialectMySQL, 3})
			i++
			for i < len(src) && src[i] != '`' {
				i++
			}
			i++
		case c == '[':
			// "integer[]" — bracket glued to a word — is a PostgreSQL
			// array suffix; a free-standing bracket is MSSQL-style
			// quoting, which in the FOSS corpus means SQLite tolerance.
			if i > 0 && isWordByte(src[i-1]) {
				sc.add(weight{core.DialectPostgres, 2})
			} else {
				sc.add(weight{core.DialectSQLite, 2})
			}
			i++
			for i < len(src) && src[i] != ']' {
				i++
			}
			i++
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			sc.add(weight{core.DialectPostgres, 3})
			i += 2
		case c == '$':
			// Dollar-quote opener: '$' [word chars]* '$'.
			j := i + 1
			for j < len(src) && isWordByte(src[j]) {
				j++
			}
			if j < len(src) && src[j] == '$' {
				sc.add(weight{core.DialectPostgres, 3})
				tag := src[i : j+1]
				i = j + 1
				for i < len(src) {
					if src[i] == '$' && len(src)-i >= len(tag) && src[i:i+len(tag)] == tag {
						i += len(tag)
						break
					}
					i++
				}
			} else {
				i = j
			}
		case isWordByte(c):
			start := i
			for i < len(src) && isWordByte(src[i]) {
				i++
			}
			word := src[start:i]
			if len(word) <= len(wordBuf) {
				n := 0
				for k := 0; k < len(word); k++ {
					b := word[k]
					if 'A' <= b && b <= 'Z' {
						b += 'a' - 'A'
					}
					wordBuf[n] = b
					n++
				}
				if w, ok := signalWords[string(wordBuf[:n])]; ok {
					sc.add(w)
				}
			}
		default:
			i++
		}
	}
	return sc
}
