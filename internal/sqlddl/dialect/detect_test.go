package dialect_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
	"schemaevo/internal/synth"
)

// labeledFile is one ground-truth detection sample.
type labeledFile struct {
	name string
	want core.DialectID
	src  string
}

// labeledCorpus assembles the detection benchmark: every conformance
// corpus file plus every schema-file version of synthetic repos realized
// in each flavor and style. All samples carry the generator's (or corpus
// author's) dialect as ground truth.
func labeledCorpus(t *testing.T) []labeledFile {
	t.Helper()
	var out []labeledFile
	byName := map[string]core.DialectID{
		"neutral":  core.DialectGeneric,
		"mysql":    core.DialectMySQL,
		"postgres": core.DialectPostgres,
		"sqlite":   core.DialectSQLite,
	}
	for dir, want := range byName {
		for name, src := range corpusFiles(t, dir) {
			out = append(out, labeledFile{name: dir + "/" + name, want: want, src: src})
		}
	}
	flavors := map[synth.Flavor]core.DialectID{
		synth.FlavorGeneric:  core.DialectGeneric,
		synth.FlavorMySQL:    core.DialectMySQL,
		synth.FlavorPostgres: core.DialectPostgres,
		synth.FlavorSQLite:   core.DialectSQLite,
	}
	start := time.Date(2012, 4, 1, 0, 0, 0, 0, time.UTC)
	// A steady 24-month schedule: a 6-attribute birth, then small monthly
	// churn — enough versions that each flavor/style pair contributes a
	// dozen labeled files.
	monthly := make([]int, 24)
	monthly[0] = 6
	for m := 2; m < 24; m += 2 {
		monthly[m] = 3
	}
	sched := &synth.Schedule{PUP: 24, Monthly: monthly, ExpShare: 0.7}
	styleName := map[synth.Style]string{synth.FullDump: "dump", synth.MigrationScript: "migration"}
	for flavor, want := range flavors {
		for style, sname := range styleName {
			repo, err := synth.RealizeFlavored(sched, "det", start, rand.New(rand.NewSource(17)), style, flavor)
			if err != nil {
				t.Fatal(err)
			}
			path := repo.MainDDLPath()
			for i, fv := range repo.FileHistory(path) {
				if fv.Deleted {
					continue
				}
				out = append(out, labeledFile{
					name: fmt.Sprintf("%s/%s/v%d", flavor, sname, i),
					want: want,
					src:  fv.Content,
				})
			}
		}
	}
	return out
}

// TestDetectionAccuracy pins the detector's accuracy on the labeled
// corpus: at least 50 samples, and not a single misattribution — the
// corpus is built from unambiguous real-world-shaped files, so anything
// below 100% is a detector regression, not corpus noise.
func TestDetectionAccuracy(t *testing.T) {
	files := labeledCorpus(t)
	if len(files) < 50 {
		t.Fatalf("labeled corpus has %d files, want >= 50", len(files))
	}
	correct := 0
	for _, lf := range files {
		got := dialect.DetectID(lf.src)
		if got == lf.want {
			correct++
		} else {
			t.Errorf("%s: detected %v, want %v (scores %+v)", lf.name, got, lf.want, dialect.Score(lf.src))
		}
	}
	acc := float64(correct) / float64(len(files))
	t.Logf("detection accuracy: %d/%d (%.1f%%)", correct, len(files), acc*100)
	const floor = 1.0
	if acc < floor {
		t.Fatalf("accuracy %.3f below pinned floor %.3f", acc, floor)
	}
}

// TestDetectionTieBreak pins the documented tie-break order
// MySQL > PostgreSQL > SQLite on engineered equal-evidence inputs, and
// Generic on signal-free input.
func TestDetectionTieBreak(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want core.DialectID
	}{
		// 2-2 ties between each pair (all signal words carry weight 2).
		{"mysql-vs-postgres", "CREATE TABLE t (a int unsigned, b int) TABLESPACE x;", core.DialectMySQL},
		{"mysql-vs-sqlite", "CREATE TABLE t (a int zerofill, b text CHECK (b GLOB 'x*'));", core.DialectMySQL},
		{"postgres-vs-sqlite", "CREATE INDEX i ON t USING gin (a); SELECT 1 WHERE a GLOB 'x*';", core.DialectPostgres},
		// Three-way 2-2-2 tie.
		{"three-way", "CREATE TABLE t (a int unsigned) TABLESPACE x; SELECT 1 WHERE a GLOB 'y';", core.DialectMySQL},
		// No evidence at all.
		{"signal-free", "CREATE TABLE t (a int, b text, PRIMARY KEY (a));", core.DialectGeneric},
		{"empty", "", core.DialectGeneric},
	}
	for _, tc := range cases {
		s := dialect.Score(tc.src)
		if got := dialect.DetectID(tc.src); got != tc.want {
			t.Errorf("%s: detected %v, want %v (scores %+v)", tc.name, got, tc.want, s)
		}
	}
	// The engineered ties must actually be ties, or the cases silently
	// stop testing the tie-break.
	for _, tc := range cases[:3] {
		s := dialect.Score(tc.src)
		max := s.MySQL
		if s.Postgres > max {
			max = s.Postgres
		}
		if s.SQLite > max {
			max = s.SQLite
		}
		tied := 0
		for _, v := range []int{s.MySQL, s.Postgres, s.SQLite} {
			if v == max {
				tied++
			}
		}
		if max == 0 || tied < 2 {
			t.Errorf("%s: not a tie (scores %+v)", tc.name, s)
		}
	}
}
