// Package postgres is the PostgreSQL dialect adapter: dollar-quoted
// strings, '::' casts, the SERIAL identity family, no backtick/bracket
// quoting or '#' comments, and the PostgreSQL type vocabulary.
package postgres

import core "schemaevo/internal/sqlddl"

type dialectImpl struct{}

// Dialect is the PostgreSQL dialect singleton.
var Dialect core.Dialect = dialectImpl{}

func (dialectImpl) ID() core.DialectID { return core.DialectPostgres }
func (dialectImpl) Name() string       { return "postgres" }

func (dialectImpl) LexProfile() core.LexProfile {
	return core.LexProfile{NoHashComment: true, NoBacktick: true, NoBracket: true, Dollar: true}
}

func (dialectImpl) Quirks() core.Quirks {
	// '::' casts and SERIAL auto-increment stay on; columns are typed.
	return core.Quirks{NoTypeless: true}
}

func (dialectImpl) KnownType(name string) bool { return types[name] }

var types = map[string]bool{
	"smallint": true, "integer": true, "int": true, "bigint": true,
	"int2": true, "int4": true, "int8": true,
	"decimal": true, "numeric": true, "real": true, "double": true,
	"float4": true, "float8": true, "money": true,
	"smallserial": true, "serial": true, "bigserial": true,
	"serial2": true, "serial4": true, "serial8": true,
	"character": true, "char": true, "varchar": true, "text": true,
	"bytea": true, "timestamp": true, "timestamptz": true, "date": true,
	"time": true, "timetz": true, "interval": true,
	"bool": true, "boolean": true, "point": true, "line": true,
	"lseg": true, "box": true, "path": true, "polygon": true, "circle": true,
	"cidr": true, "inet": true, "macaddr": true, "macaddr8": true,
	"bit": true, "varbit": true, "tsvector": true, "tsquery": true,
	"uuid": true, "xml": true, "json": true, "jsonb": true,
	"oid": true, "regclass": true, "name": true,
}
