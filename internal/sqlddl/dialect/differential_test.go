package dialect_test

// Differential harness: the neutral corpus goldens were generated with
// the pre-refactor mixed-dialect parser. Every adapter (and the generic
// union grammar) must render byte-identical per-version schemas and
// identical diff sequences, proving the dialect split is
// behavior-preserving on dialect-neutral input.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"schemaevo/internal/diff"
	"schemaevo/internal/schema"
	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
)

const neutralDir = "../../../testdata/dialects/neutral"

// renderHistory renders one neutral corpus file (versions separated by
// "-- @version" lines) parsed under d into the canonical golden format.
// It must stay byte-compatible with the format the pre-refactor generator
// used; the goldens are the contract.
func renderHistory(d core.Dialect, src string) string {
	versions := strings.Split(src, "-- @version\n")
	var sb strings.Builder
	var prev *schema.Schema
	for i, vsrc := range versions {
		script := core.ParseWith(d, vsrc)
		s, notes := schema.FromScript(script)
		fmt.Fprintf(&sb, "== v%d (stmts=%d errors=%d notes=%d)\n", i+1, len(script.Statements), len(script.Errors), len(notes))
		sb.WriteString(s.Emit())
		delta := diff.Schemas(prev, s)
		fmt.Fprintf(&sb, "-- delta v%d->v%d: +tables=%v -tables=%v expansion=%d maintenance=%d\n",
			i, i+1, delta.TablesAdded, delta.TablesDropped, delta.Expansion(), delta.Maintenance())
		for _, c := range delta.Changes {
			fmt.Fprintf(&sb, "   %s\n", c)
		}
		prev = s
	}
	return sb.String()
}

func neutralFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(neutralDir, "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no neutral corpus files: %v", err)
	}
	return files
}

func TestDifferentialNeutralCorpus(t *testing.T) {
	dialects := append([]core.Dialect{core.Generic}, dialect.All()...)
	for _, f := range neutralFiles(t) {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		base := strings.TrimSuffix(filepath.Base(f), ".sql")
		golden, err := os.ReadFile(filepath.Join(neutralDir, "golden", base+".golden"))
		if err != nil {
			t.Fatalf("missing golden for %s: %v (goldens are generated from the pre-refactor parser and committed; they are not regenerated)", base, err)
		}
		for _, d := range dialects {
			got := renderHistory(d, string(src))
			if got != string(golden) {
				t.Errorf("%s under %s diverges from pre-refactor golden:\n%s", base, d.Name(), firstDiff(got, string(golden)))
			}
		}
	}
}

// TestDifferentialAutoDetect pins that auto-detection on neutral input
// resolves to Generic — no dialect-specific evidence means no dialect —
// so detected parsing of neutral corpora is also byte-identical.
func TestDifferentialAutoDetect(t *testing.T) {
	for _, f := range neutralFiles(t) {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if id := dialect.DetectID(string(src)); id != core.DialectGeneric {
			t.Errorf("%s: neutral corpus detected as %s (scores %+v)", filepath.Base(f), id, dialect.Score(string(src)))
		}
	}
}

func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("length mismatch: got %d lines, want %d", len(gl), len(wl))
}
