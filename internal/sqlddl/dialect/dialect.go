// Package dialect is the registry and auto-detector for the SQL dialect
// adapters. The core parser (internal/sqlddl) defines the Dialect
// interface and the generic union grammar; the adapters under
// dialect/{mysql,postgres,sqlite} specialize it; this package maps names
// and IDs to adapters and scores raw DDL text to guess its dialect.
package dialect

import (
	core "schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect/mysql"
	"schemaevo/internal/sqlddl/dialect/postgres"
	"schemaevo/internal/sqlddl/dialect/sqlite"
)

// All returns the concrete dialect adapters (not Generic), in the
// documented tie-break order: MySQL, PostgreSQL, SQLite.
func All() []core.Dialect {
	return []core.Dialect{mysql.Dialect, postgres.Dialect, sqlite.Dialect}
}

// Names returns the accepted -dialect flag values.
func Names() []string {
	return []string{"auto", "generic", "mysql", "postgres", "sqlite"}
}

// ByID maps a DialectID to its adapter; unknown IDs map to Generic.
func ByID(id core.DialectID) core.Dialect {
	switch id {
	case core.DialectMySQL:
		return mysql.Dialect
	case core.DialectPostgres:
		return postgres.Dialect
	case core.DialectSQLite:
		return sqlite.Dialect
	}
	return core.Generic
}

// ByName resolves a dialect name (case-sensitive, lower-case, with the
// common aliases). The empty string and "generic" resolve to Generic;
// "auto" is not a dialect — callers handle it before resolving.
func ByName(name string) (core.Dialect, bool) {
	switch name {
	case "", "generic":
		return core.Generic, true
	case "mysql", "mariadb":
		return mysql.Dialect, true
	case "postgres", "postgresql", "pg":
		return postgres.Dialect, true
	case "sqlite", "sqlite3":
		return sqlite.Dialect, true
	}
	return nil, false
}
