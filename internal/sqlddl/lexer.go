package sqlddl

import (
	"fmt"
	"strings"
)

// Lexer turns a DDL script into a stream of tokens. It tolerates the
// comment and quoting syntax of the common open-source dialects:
//
//   - line comments:  -- ...  and  # ...
//   - block comments: /* ... */ (non-nesting, MySQL hint comments included)
//   - string literals: 'it”s' with doubled-quote and backslash escapes
//   - quoted identifiers: "postgres", `mysql`, [mssql]
//
// The lexer never fails: malformed input (e.g. an unterminated string)
// yields a final token covering the rest of the input, and the parser
// decides how much of the statement is salvageable.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	// prof selects the dialect's quoting and comment syntax; the zero
	// value is the generic union above.
	prof LexProfile
	// scratch backs the unescaping slow path of string and quoted-identifier
	// tokens; the common escape-free case slices src directly instead.
	scratch []byte
}

// NewLexer returns a lexer over src using the generic union profile.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewLexerProfile returns a lexer over src with a dialect lex profile.
func NewLexerProfile(src string, prof LexProfile) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, prof: prof}
}

// Reset re-points the lexer at src, keeping the profile and reusing the
// scratch buffer — re-lexing many inputs through one lexer allocates
// nothing on the escape-free path.
func (lx *Lexer) Reset(src string) {
	lx.src, lx.pos, lx.line, lx.col = src, 0, 1, 1
}

// Tokenize scans the whole input and returns the token slice, terminated
// by an EOF token.
func Tokenize(src string) []Token {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f':
			lx.advance()
		case c == '-' && lx.peekAt(1) == '-':
			lx.skipToEOL()
		case c == '#' && !lx.prof.NoHashComment:
			lx.skipToEOL()
		case c == '/' && lx.peekAt(1) == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

func (lx *Lexer) skipToEOL() {
	for lx.pos < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: lx.line, Col: lx.col}
	}
	line, col := lx.line, lx.col
	c := lx.peek()
	switch {
	case c == '$' && lx.prof.Dollar && lx.dollarQuoteAhead():
		return lx.lexDollar(line, col)
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		return Token{Kind: Ident, Text: lx.src[start:lx.pos], Line: line, Col: col}
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(line, col)
	case c == '\'':
		return lx.lexString(line, col)
	case c == '"':
		return lx.lexQuoted('"', '"', line, col)
	case c == '`' && !lx.prof.NoBacktick:
		return lx.lexQuoted('`', '`', line, col)
	case c == '[' && !lx.prof.NoBracket:
		return lx.lexQuoted('[', ']', line, col)
	case c == '(':
		lx.advance()
		return Token{Kind: LParen, Text: "(", Line: line, Col: col}
	case c == ')':
		lx.advance()
		return Token{Kind: RParen, Text: ")", Line: line, Col: col}
	case c == ',':
		lx.advance()
		return Token{Kind: Comma, Text: ",", Line: line, Col: col}
	case c == ';':
		lx.advance()
		return Token{Kind: Semi, Text: ";", Line: line, Col: col}
	case c == '.':
		lx.advance()
		return Token{Kind: Dot, Text: ".", Line: line, Col: col}
	default:
		return lx.lexOp(line, col)
	}
}

func (lx *Lexer) lexNumber(line, col int) Token {
	start := lx.pos
	seenDot := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if isDigit(c) {
			lx.advance()
			continue
		}
		if c == '.' && !seenDot && isDigit(lx.peekAt(1)) {
			seenDot = true
			lx.advance()
			continue
		}
		if (c == 'e' || c == 'E') && (isDigit(lx.peekAt(1)) ||
			((lx.peekAt(1) == '+' || lx.peekAt(1) == '-') && isDigit(lx.peekAt(2)))) {
			lx.advance() // e
			lx.advance() // sign or first digit
			continue
		}
		break
	}
	return Token{Kind: Number, Text: lx.src[start:lx.pos], Line: line, Col: col}
}

// lexString scans a single-quoted literal honouring both the SQL-standard
// doubled-quote escape ('it”s') and the MySQL backslash escape ('it\'s').
// Escape-free literals — the overwhelmingly common case — are returned as
// zero-copy slices of the source.
func (lx *Lexer) lexString(line, col int) Token {
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case '\'':
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				return lx.lexStringSlow(start, line, col)
			}
			text := lx.src[start:lx.pos]
			lx.advance() // closing quote
			return Token{Kind: String, Text: text, Line: line, Col: col}
		case '\\':
			return lx.lexStringSlow(start, line, col)
		}
		lx.advance()
	}
	// Unterminated literal: return what we have; the parser will likely
	// hit EOF and abandon the statement.
	return Token{Kind: String, Text: lx.src[start:], Line: line, Col: col}
}

// lexStringSlow finishes a single-quoted literal that contains escapes,
// unescaping into the lexer's scratch buffer.
func (lx *Lexer) lexStringSlow(start, line, col int) Token {
	buf := append(lx.scratch[:0], lx.src[start:lx.pos]...)
	defer func() { lx.scratch = buf[:0] }()
	for lx.pos < len(lx.src) {
		c := lx.advance()
		switch c {
		case '\'':
			if lx.peek() == '\'' {
				lx.advance()
				buf = append(buf, '\'')
				continue
			}
			return Token{Kind: String, Text: string(buf), Line: line, Col: col}
		case '\\':
			if lx.pos < len(lx.src) {
				buf = append(buf, lx.advance())
				continue
			}
			buf = append(buf, c)
		default:
			buf = append(buf, c)
		}
	}
	return Token{Kind: String, Text: string(buf), Line: line, Col: col}
}

// dollarQuoteAhead reports whether the lexer is positioned at a
// PostgreSQL dollar-quote opener: '$' [ident chars]* '$'.
func (lx *Lexer) dollarQuoteAhead() bool {
	j := 1
	for isIdentPart(lx.peekAt(j)) && lx.peekAt(j) != '$' {
		j++
	}
	return lx.peekAt(j) == '$'
}

// lexDollar scans a dollar-quoted string ($$...$$ or $tag$...$tag$). The
// body needs no unescaping, so the token is always a zero-copy slice.
func (lx *Lexer) lexDollar(line, col int) Token {
	start := lx.pos
	lx.advance() // opening '$'
	for lx.peek() != '$' {
		lx.advance()
	}
	lx.advance() // '$' closing the tag
	tag := lx.src[start:lx.pos]
	bodyStart := lx.pos
	for lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '$' && strings.HasPrefix(lx.src[lx.pos:], tag) {
			text := lx.src[bodyStart:lx.pos]
			for range len(tag) {
				lx.advance()
			}
			return Token{Kind: String, Text: text, Line: line, Col: col}
		}
		lx.advance()
	}
	// Unterminated dollar quote: the rest of the input is the body.
	return Token{Kind: String, Text: lx.src[bodyStart:], Line: line, Col: col}
}

func (lx *Lexer) lexQuoted(open, close byte, line, col int) Token {
	lx.advance() // opening delimiter
	start := lx.pos
	for lx.pos < len(lx.src) {
		if lx.src[lx.pos] == close {
			// Doubled closing delimiter escapes it inside the name.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == close {
				return lx.lexQuotedSlow(start, close, line, col)
			}
			text := lx.src[start:lx.pos]
			lx.advance() // closing delimiter
			return Token{Kind: QuotedIdent, Text: text, Line: line, Col: col}
		}
		lx.advance()
	}
	return Token{Kind: QuotedIdent, Text: lx.src[start:], Line: line, Col: col}
}

// lexQuotedSlow finishes a quoted identifier containing doubled-delimiter
// escapes.
func (lx *Lexer) lexQuotedSlow(start int, close byte, line, col int) Token {
	buf := append(lx.scratch[:0], lx.src[start:lx.pos]...)
	defer func() { lx.scratch = buf[:0] }()
	for lx.pos < len(lx.src) {
		c := lx.advance()
		if c == close {
			if lx.peek() == close {
				lx.advance()
				buf = append(buf, close)
				continue
			}
			return Token{Kind: QuotedIdent, Text: string(buf), Line: line, Col: col}
		}
		buf = append(buf, c)
	}
	return Token{Kind: QuotedIdent, Text: string(buf), Line: line, Col: col}
}

// opTexts maps a single operator byte to its string without allocating;
// entries match what string(rune(b)) would produce.
var opTexts = func() [256]string {
	var t [256]string
	for i := range t {
		t[i] = string(rune(i))
	}
	return t
}()

func (lx *Lexer) lexOp(line, col int) Token {
	c := lx.advance()
	text := opTexts[c]
	two := func(next byte) bool {
		if lx.peek() == next {
			lx.advance()
			return true
		}
		return false
	}
	switch c {
	case '<':
		if two('=') {
			text = "<="
		} else if two('>') {
			text = "<>"
		}
	case '>':
		if two('=') {
			text = ">="
		}
	case '!':
		if two('=') {
			text = "!="
		}
	case ':':
		if two(':') {
			text = "::"
		}
	case '|':
		if two('|') {
			text = "||"
		}
	}
	return Token{Kind: Op, Text: text, Line: line, Col: col}
}

// SplitStatements splits a script into statements on top-level semicolons,
// ignoring semicolons inside strings, comments and parentheses. It returns
// the raw text of each non-empty statement. This is used by callers that
// want per-statement error recovery.
func SplitStatements(src string) []string {
	var out []string
	lx := NewLexer(src)
	depth := 0
	start := 0
	lastEnd := 0
	for {
		// Record position before the token so statement text includes
		// neither leading separators nor the semicolon itself.
		t := lx.Next()
		if t.Kind == EOF {
			if s := strings.TrimSpace(src[start:lastEnd]); s != "" {
				out = append(out, s)
			}
			return out
		}
		switch t.Kind {
		case LParen:
			depth++
		case RParen:
			if depth > 0 {
				depth--
			}
		case Semi:
			if depth == 0 {
				if s := strings.TrimSpace(src[start:lastEnd]); s != "" {
					out = append(out, s)
				}
				start = lx.pos
			}
		}
		lastEnd = lx.pos
	}
}

// QuoteString renders a value as a SQL single-quoted literal, doubling
// embedded quotes.
func QuoteString(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// ParseError describes a failure to parse a single statement. The
// statement index and position refer to the original script.
type ParseError struct {
	Stmt    int    // 0-based statement index within the script
	Line    int    // 1-based line of the offending token
	Col     int    // 1-based column of the offending token
	Msg     string // what went wrong
	Excerpt string // leading fragment of the statement text
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sqlddl: statement %d at %d:%d: %s", e.Stmt, e.Line, e.Col, e.Msg)
}
