package sqlddl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse is a native fuzz target for the whole parse path. Run with
//
//	go test -fuzz=FuzzParse ./internal/sqlddl
//
// Without -fuzz the seed corpus below (hand-picked statements plus every
// DDL file under testdata/) runs as a regular test.
func FuzzParse(f *testing.F) {
	// Seed with the real-world-shaped schema dumps committed under
	// testdata/ — they exercise multi-statement scripts, dialect quirks
	// and constraint syntax the synthetic one-liners below do not.
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*", "*.sql"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	seeds := []string{
		"CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a));",
		"ALTER TABLE t ADD COLUMN c DATE, DROP COLUMN b;",
		"DROP TABLE IF EXISTS t CASCADE;",
		"CREATE TABLE `q` (\"w\" int(10) unsigned DEFAULT '0' COMMENT 'it''s');",
		"CREATE TABLE x (y serial PRIMARY KEY, z text[] DEFAULT '{}'::text[]);",
		"-- comment\n/* block */ SELECT 1;",
		"CREATE TABLE ((((",
		"'unterminated string",
		";;;;",
		"ALTER TABLE ONLY public.t ALTER COLUMN c TYPE bigint USING c::bigint;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script := Parse(src)
		if script == nil {
			t.Fatal("nil script")
		}
		// Rendered output of every parsed statement must itself parse.
		for _, stmt := range script.Statements {
			if _, ok := stmt.(*RawStatement); ok {
				continue
			}
			rendered := Render(stmt)
			if _, err := ParseStatement(rendered); err != nil {
				t.Fatalf("rendered statement does not re-parse: %v\nrendered: %s", err, rendered)
			}
		}
	})
}
