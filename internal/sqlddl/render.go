package sqlddl

import (
	"fmt"
	"strings"
)

// Render prints a statement back as SQL. The output is normalized
// (upper-case keywords, lower-case unquoted identifiers, one clause per
// construct) and re-parses to an equal statement; see the round-trip
// tests. RawStatement renders as its original text.
func Render(stmt Statement) string {
	switch st := stmt.(type) {
	case *CreateTable:
		return renderCreateTable(st)
	case *AlterTable:
		return renderAlterTable(st)
	case *DropTable:
		return renderDropTable(st)
	case *CreateIndex:
		return renderCreateIndex(st)
	case *DropIndex:
		return renderDropIndex(st)
	case *CreateView:
		return "CREATE VIEW " + renderIdent(st.Name) + " AS SELECT 1"
	case *RawStatement:
		return st.Text
	}
	return ""
}

// RenderScript prints every statement of a script, semicolon-terminated.
func RenderScript(s *Script) string {
	var sb strings.Builder
	for _, stmt := range s.Statements {
		sb.WriteString(Render(stmt))
		sb.WriteString(";\n")
	}
	return sb.String()
}

// constraintLeaders are the contextual keywords that can open a
// table-level constraint inside CREATE TABLE. A column or table named
// after one of them must render quoted, or the re-parse would take the
// constraint branch (e.g. an unquoted column "key" reads as a MySQL
// secondary-index definition).
var constraintLeaders = map[string]bool{
	"constraint": true, "primary": true, "foreign": true, "unique": true,
	"key": true, "index": true, "check": true, "exclude": true,
}

// renderIdent quotes identifiers that are not plain lower-case names (so
// the parser's normalization — lower-casing unquoted names — is a no-op
// on re-parse) and names that collide with constraint keywords.
func renderIdent(name string) string {
	if constraintLeaders[name] {
		return `"` + name + `"`
	}
	plain := name != ""
	for i := 0; i < len(name) && plain; i++ {
		c := name[i]
		switch {
		case c == '_' || ('a' <= c && c <= 'z'):
		case '0' <= c && c <= '9':
			plain = i > 0
		default:
			plain = false
		}
	}
	if plain {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

func renderIdentList(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = renderIdent(n)
	}
	return strings.Join(out, ", ")
}

// renderType prints a data type; exotic type names that would not lex
// back as a type (quoted custom types, odd characters) are re-quoted.
func renderType(typ string) string {
	if plainType(typ) {
		return typ
	}
	return `"` + strings.ReplaceAll(typ, `"`, `""`) + `"`
}

// plainType reports whether a type string matches the shape the type
// grammar re-parses unquoted: an identifier word, optional suffix words
// drawn from typeSuffixWords, at most one parenthesized argument group,
// and an optional final "array". Anything else (digit-led words, stray
// words, unbalanced quotes, comment-capable characters) must be rendered
// quoted or it would not survive a parse round trip — fuzzing found
// multi-word "types" built from quoted identifiers that rendered bare and
// then failed to re-parse.
func plainType(typ string) bool {
	i, n := 0, len(typ)
	isWordStart := func(c byte) bool {
		return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
	}
	readWord := func() (string, bool) {
		if i >= n || !isWordStart(typ[i]) {
			return "", false
		}
		start := i
		for i < n {
			c := typ[i]
			if isWordStart(c) || ('0' <= c && c <= '9') {
				i++
				continue
			}
			break
		}
		return typ[start:i], true
	}
	if _, ok := readWord(); !ok {
		return false
	}
	seenParen, seenArray := false, false
	for i < n {
		switch typ[i] {
		case '(':
			if seenParen || seenArray {
				return false
			}
			seenParen = true
			depth := 0
			closed := false
			for i < n && !closed {
				switch c := typ[i]; {
				case c == '\'': // skip a simple string literal
					i++
					for i < n && typ[i] != '\'' {
						i++
					}
					if i >= n {
						return false
					}
				case c == '(':
					depth++
				case c == ')':
					depth--
					closed = depth == 0
				case isWordStart(c), '0' <= c && c <= '9', c == ' ', c == ',', c == '.':
				default:
					return false
				}
				i++
			}
			if !closed {
				return false
			}
		case ' ':
			i++
			w, ok := readWord()
			if !ok || seenArray {
				return false
			}
			switch lw := strings.ToLower(w); {
			case lw == "array":
				seenArray = true
			case typeSuffixWords[lw]:
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

func renderColumnDef(c ColumnDef) string {
	var sb strings.Builder
	sb.WriteString(renderIdent(c.Name))
	if c.Type != "" {
		sb.WriteByte(' ')
		sb.WriteString(renderType(c.Type))
	}
	if c.NotNull && !c.PrimaryKey {
		sb.WriteString(" NOT NULL")
	}
	if c.HasDefault {
		sb.WriteString(" DEFAULT ")
		if c.Default == "" {
			sb.WriteString("NULL")
		} else {
			sb.WriteString(c.Default)
		}
	}
	if c.PrimaryKey {
		sb.WriteString(" PRIMARY KEY")
	}
	if c.Unique {
		sb.WriteString(" UNIQUE")
	}
	if c.AutoIncrement && !isSerial(c.Type) {
		sb.WriteString(" AUTO_INCREMENT")
	}
	if c.References != nil {
		sb.WriteString(" REFERENCES ")
		sb.WriteString(renderFKRef(c.References))
	}
	if c.Comment != "" {
		sb.WriteString(" COMMENT " + QuoteString(c.Comment))
	}
	return sb.String()
}

func isSerial(typ string) bool { return serialTypes[typ] }

func renderFKRef(ref *FKRef) string {
	var sb strings.Builder
	sb.WriteString(renderIdent(ref.Table))
	if len(ref.Columns) > 0 {
		fmt.Fprintf(&sb, " (%s)", renderIdentList(ref.Columns))
	}
	if ref.OnDelete != "" {
		sb.WriteString(" ON DELETE " + ref.OnDelete)
	}
	if ref.OnUpdate != "" {
		sb.WriteString(" ON UPDATE " + ref.OnUpdate)
	}
	return sb.String()
}

func renderTableConstraint(c TableConstraint) string {
	var sb strings.Builder
	if c.Name != "" && c.Kind != IndexConstraint {
		sb.WriteString("CONSTRAINT " + renderIdent(c.Name) + " ")
	}
	switch c.Kind {
	case PrimaryKeyConstraint:
		fmt.Fprintf(&sb, "PRIMARY KEY (%s)", renderIdentList(c.Columns))
	case ForeignKeyConstraint:
		fmt.Fprintf(&sb, "FOREIGN KEY (%s) REFERENCES %s", renderIdentList(c.Columns), renderFKRef(c.Ref))
	case UniqueConstraint:
		fmt.Fprintf(&sb, "UNIQUE (%s)", renderIdentList(c.Columns))
	case CheckConstraint:
		fmt.Fprintf(&sb, "CHECK %s", c.Expr)
	case IndexConstraint:
		sb.WriteString("INDEX")
		if c.Name != "" {
			sb.WriteString(" " + renderIdent(c.Name))
		}
		fmt.Fprintf(&sb, " (%s)", renderIdentList(c.Columns))
	}
	return sb.String()
}

func renderCreateTable(ct *CreateTable) string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if ct.Temporary {
		sb.WriteString("TEMPORARY ")
	}
	sb.WriteString("TABLE ")
	if ct.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(renderIdent(ct.Name))
	if len(ct.Columns) == 0 && len(ct.Constraints) == 0 {
		return sb.String()
	}
	sb.WriteString(" (\n")
	first := true
	for _, c := range ct.Columns {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString("  " + renderColumnDef(c))
	}
	for _, c := range ct.Constraints {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString("  " + renderTableConstraint(c))
	}
	sb.WriteString("\n)")
	return sb.String()
}

func renderAlterTable(at *AlterTable) string {
	var sb strings.Builder
	sb.WriteString("ALTER TABLE ")
	if at.IfExists {
		sb.WriteString("IF EXISTS ")
	}
	sb.WriteString(renderIdent(at.Name))
	for i, act := range at.Actions {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(" " + renderAlteration(act))
	}
	return sb.String()
}

func renderAlteration(a Alteration) string {
	switch a.Action {
	case AddColumn:
		return "ADD COLUMN " + renderColumnDef(a.Column)
	case DropColumn:
		return "DROP COLUMN " + renderIdent(a.Column.Name)
	case ModifyColumn:
		return "MODIFY COLUMN " + renderColumnDef(a.Column)
	case RenameColumn:
		if a.Column.Type != "" {
			// MySQL CHANGE form retains the full definition.
			return "CHANGE COLUMN " + renderIdent(a.OldName) + " " + renderColumnDef(a.Column)
		}
		return "RENAME COLUMN " + renderIdent(a.OldName) + " TO " + renderIdent(a.Column.Name)
	case AddTableConstraint:
		if a.Constraint == nil {
			return ""
		}
		return "ADD " + renderTableConstraint(*a.Constraint)
	case DropConstraint:
		switch a.ConstraintKind {
		case PrimaryKeyConstraint:
			return "DROP PRIMARY KEY"
		case IndexConstraint:
			return "DROP INDEX " + renderIdent(a.ConstraintName)
		default:
			return "DROP CONSTRAINT " + renderIdent(a.ConstraintName)
		}
	case RenameTable:
		return "RENAME TO " + renderIdent(a.NewTableName)
	case SetDefault:
		if a.Drop {
			return "ALTER COLUMN " + renderIdent(a.Column.Name) + " DROP DEFAULT"
		}
		return "ALTER COLUMN " + renderIdent(a.Column.Name) + " SET DEFAULT " + a.Column.Default
	case SetNotNull:
		if a.Drop {
			return "ALTER COLUMN " + renderIdent(a.Column.Name) + " DROP NOT NULL"
		}
		return "ALTER COLUMN " + renderIdent(a.Column.Name) + " SET NOT NULL"
	case OtherAlteration:
		return "ENGINE = unchanged"
	}
	return ""
}

func renderDropTable(dt *DropTable) string {
	var sb strings.Builder
	sb.WriteString("DROP TABLE ")
	if dt.IfExists {
		sb.WriteString("IF EXISTS ")
	}
	sb.WriteString(renderIdentList(dt.Names))
	if dt.Cascade {
		sb.WriteString(" CASCADE")
	}
	return sb.String()
}

func renderCreateIndex(ci *CreateIndex) string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if ci.Unique {
		sb.WriteString("UNIQUE ")
	}
	sb.WriteString("INDEX ")
	if ci.Name != "" {
		sb.WriteString(renderIdent(ci.Name) + " ")
	}
	sb.WriteString("ON " + renderIdent(ci.Table))
	if len(ci.Columns) > 0 {
		fmt.Fprintf(&sb, " (%s)", renderIdentList(ci.Columns))
	}
	return sb.String()
}

func renderDropIndex(di *DropIndex) string {
	out := "DROP INDEX " + renderIdent(di.Name)
	if di.Table != "" {
		out += " ON " + renderIdent(di.Table)
	}
	return out
}
