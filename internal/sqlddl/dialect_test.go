package sqlddl

import (
	"strings"
	"testing"
)

// dialectCase is one real-world DDL construct the parser must survive —
// ideally modeled, at minimum tolerated without poisoning the script.
type dialectCase struct {
	name string
	src  string
	// wantTables is the number of CreateTable statements expected.
	wantTables int
	// wantErrors is the number of per-statement parse errors tolerated.
	wantErrors int
	// check, when set, inspects the parsed script further.
	check func(t *testing.T, s *Script)
}

func firstCreate(s *Script) *CreateTable {
	for _, stmt := range s.Statements {
		if ct, ok := stmt.(*CreateTable); ok {
			return ct
		}
	}
	return nil
}

func TestDialectZoo(t *testing.T) {
	cases := []dialectCase{
		{
			name:       "mysql backquotes and table options",
			src:        "CREATE TABLE `a b` (`c d` int(10) unsigned zerofill) ENGINE=InnoDB AUTO_INCREMENT=17 DEFAULT CHARSET=utf8mb4 COLLATE=utf8mb4_unicode_ci COMMENT='x';",
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if ct.Name != "a b" || ct.Columns[0].Name != "c d" {
					t.Errorf("quoted names: %+v", ct)
				}
				if ct.Columns[0].Type != "int(10) unsigned zerofill" {
					t.Errorf("type: %q", ct.Columns[0].Type)
				}
			},
		},
		{
			name:       "mysql enum and set types",
			src:        "CREATE TABLE t (s ENUM('a','b','c') NOT NULL DEFAULT 'a', f SET('x','y'));",
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if !strings.HasPrefix(ct.Columns[0].Type, "enum(") {
					t.Errorf("enum type: %q", ct.Columns[0].Type)
				}
				if ct.Columns[0].Default != "'a'" {
					t.Errorf("enum default: %q", ct.Columns[0].Default)
				}
			},
		},
		{
			name:       "mysql on update current_timestamp",
			src:        "CREATE TABLE t (u TIMESTAMP NOT NULL DEFAULT CURRENT_TIMESTAMP ON UPDATE CURRENT_TIMESTAMP);",
			wantTables: 1,
		},
		{
			name:       "postgres quoted mixed-case and casts",
			src:        `CREATE TABLE "Users" ("Id" integer DEFAULT nextval('users_id_seq'::regclass) NOT NULL, state character varying DEFAULT 'new'::character varying);`,
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if ct.Name != "Users" || ct.Columns[0].Name != "Id" {
					t.Errorf("mixed case lost: %+v", ct)
				}
			},
		},
		{
			name:       "postgres exclusion constraint",
			src:        `CREATE TABLE res (room int, during text, EXCLUDE USING gist (room WITH =));`,
			wantTables: 1,
		},
		{
			name:       "sqlite typeless and autoincrement",
			src:        `CREATE TABLE kv (k PRIMARY KEY, v, id INTEGER PRIMARY KEY AUTOINCREMENT);`,
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if len(ct.Columns) != 3 || ct.Columns[1].Type != "" {
					t.Errorf("typeless columns: %+v", ct.Columns)
				}
			},
		},
		{
			name:       "sqlite if not exists with check",
			src:        `CREATE TABLE IF NOT EXISTS c (age INT CHECK (age >= 0 AND age < 150));`,
			wantTables: 1,
		},
		{
			name:       "composite keys with prefix lengths",
			src:        "CREATE TABLE t (a VARCHAR(200), b VARCHAR(200), PRIMARY KEY (a(10), b), KEY ix (b(20) DESC));",
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if len(ct.Constraints) != 2 || len(ct.Constraints[0].Columns) != 2 {
					t.Errorf("constraints: %+v", ct.Constraints)
				}
			},
		},
		{
			name: "deferrable foreign keys",
			src: `CREATE TABLE child (pid int,
				CONSTRAINT fk FOREIGN KEY (pid) REFERENCES parent (id)
				ON DELETE SET NULL ON UPDATE NO ACTION DEFERRABLE INITIALLY DEFERRED);`,
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				ref := ct.Constraints[0].Ref
				if ref.OnDelete != "SET NULL" || ref.OnUpdate != "NO ACTION" {
					t.Errorf("actions: %+v", ref)
				}
			},
		},
		{
			name:       "generated column stored",
			src:        `CREATE TABLE t (a int, b int GENERATED ALWAYS AS (a * 2) STORED);`,
			wantTables: 1,
		},
		{
			name:       "comment only file",
			src:        "-- nothing here\n/* still nothing */\n# mysql comment\n",
			wantTables: 0,
		},
		{
			name:       "windows line endings and BOM-ish noise",
			src:        "CREATE TABLE t (\r\n a INT,\r\n b TEXT\r\n);\r\n",
			wantTables: 1,
		},
		{
			name:       "unicode identifiers",
			src:        "CREATE TABLE café (überschrift TEXT, 名前 VARCHAR(10));",
			wantTables: 1,
		},
		{
			name: "mysqldump header block",
			src: `/*!40101 SET @saved_cs_client = @@character_set_client */;
				SET NAMES utf8;
				LOCK TABLES ` + "`t`" + ` WRITE;
				CREATE TABLE t (a INT);
				UNLOCK TABLES;`,
			wantTables: 1,
		},
		{
			name:       "broken statement does not poison the file",
			src:        "CREATE TABLE good (a INT);\nCREATE TABLE broken (a INT,);\nCREATE TABLE also (b INT);",
			wantTables: 3, // trailing comma tolerated: column list just ends
		},
		{
			name:       "truly malformed statement isolated",
			src:        "CREATE TABLE good (a INT);\nCREATE TABLE (a INT);\nCREATE TABLE fine (b INT);",
			wantTables: 2,
			wantErrors: 1,
		},
		{
			name:       "create table as select",
			src:        "CREATE TABLE copy AS SELECT * FROM orig;",
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				if ct := firstCreate(s); len(ct.Columns) != 0 {
					t.Errorf("CTAS should have no explicit columns: %+v", ct)
				}
			},
		},
		{
			name:       "partitioned table options",
			src:        "CREATE TABLE logs (d DATE) PARTITION BY RANGE (YEAR(d)) (PARTITION p0 VALUES LESS THAN (2020));",
			wantTables: 1,
		},
		{
			name:       "postgres inherits",
			src:        "CREATE TABLE child () INHERITS (parent);",
			wantTables: 1,
		},
		{
			name:       "default expressions with functions and casts",
			src:        `CREATE TABLE t (a timestamp DEFAULT now(), b uuid DEFAULT gen_random_uuid(), c numeric DEFAULT (1 + 2), d smallint DEFAULT 0::smallint, e int DEFAULT -1);`,
			wantTables: 1,
			check: func(t *testing.T, s *Script) {
				ct := firstCreate(s)
				if ct.Columns[4].Default != "-1" {
					t.Errorf("negative default: %q", ct.Columns[4].Default)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			script := Parse(c.src)
			tables := 0
			for _, stmt := range script.Statements {
				if _, ok := stmt.(*CreateTable); ok {
					tables++
				}
			}
			if tables != c.wantTables {
				t.Errorf("tables = %d, want %d (errors: %v)", tables, c.wantTables, script.Errors)
			}
			if len(script.Errors) != c.wantErrors {
				t.Errorf("errors = %d, want %d: %v", len(script.Errors), c.wantErrors, script.Errors)
			}
			if c.check != nil && tables == c.wantTables && c.wantTables > 0 {
				c.check(t, script)
			}
		})
	}
}
