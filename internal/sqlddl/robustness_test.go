package sqlddl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanicsOnArbitraryInput: Parse must terminate and never
// panic for any string.
func TestParseNeverPanicsOnArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		script := Parse(s)
		return script != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsOnSQLLikeInput stresses the parser with random
// mashups of SQL tokens — far more likely to reach deep parser states
// than uniformly random strings.
func TestParseNeverPanicsOnSQLLikeInput(t *testing.T) {
	vocab := []string{
		"CREATE", "TABLE", "ALTER", "DROP", "ADD", "COLUMN", "PRIMARY", "KEY",
		"FOREIGN", "REFERENCES", "UNIQUE", "CHECK", "CONSTRAINT", "NOT", "NULL",
		"DEFAULT", "INT", "VARCHAR(10)", "TEXT", "t", "a", "b", "(", ")", ",",
		";", "'str'", "42", "=", "IF", "EXISTS", "RENAME", "TO", "MODIFY",
		"CHANGE", "INDEX", "ON", "`q`", `"Q"`, ".", "::", "USING", "CASCADE",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(30) + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}

// TestParsedStatementsAreConsistent: every successfully parsed statement
// renders to SQL that parses again without error (weak round trip over
// random SQL-like soup).
func TestParsedStatementsAreConsistent(t *testing.T) {
	vocab := []string{
		"CREATE TABLE t (a INT)",
		"CREATE TABLE u (x TEXT, y INT, PRIMARY KEY (x))",
		"ALTER TABLE t ADD COLUMN z DATE",
		"ALTER TABLE t DROP COLUMN a",
		"DROP TABLE IF EXISTS u",
		"CREATE UNIQUE INDEX i ON t (a)",
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		var parts []string
		for i := 0; i <= rng.Intn(5); i++ {
			parts = append(parts, vocab[rng.Intn(len(vocab))])
		}
		src := strings.Join(parts, ";\n")
		script := Parse(src)
		if len(script.Errors) != 0 {
			t.Fatalf("valid script failed: %v\n%s", script.Errors, src)
		}
		re := Parse(RenderScript(script))
		if len(re.Errors) != 0 {
			t.Fatalf("rendered script failed: %v", re.Errors)
		}
		if len(re.Statements) != len(script.Statements) {
			t.Fatalf("statement count changed: %d vs %d", len(re.Statements), len(script.Statements))
		}
	}
}
