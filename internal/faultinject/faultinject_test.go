package faultinject

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestDeterministic: two injectors with the same config make identical
// decisions for every (site, key) pair, and a different seed changes at
// least one decision over a reasonable key set.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3}
	a, b := New(cfg), New(cfg)
	diffSeed := New(Config{Seed: 43, Rate: 0.3})
	sites := []string{"cache.read", "pipeline.parse", "vcs.open"}
	changed := false
	for _, site := range sites {
		for i := 0; i < 200; i++ {
			key := site + "-key-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			ka, kb := a.At(site, key), b.At(site, key)
			if ka != kb {
				t.Fatalf("same seed diverged at %s/%s: %v vs %v", site, key, ka, kb)
			}
			if ka != diffSeed.At(site, key) {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("changing the seed changed no decision over 600 keys")
	}
}

// TestRate: rate 0 and nil injectors never fire; rate 1 always fires.
func TestRate(t *testing.T) {
	var nilInj *Injector
	if k := nilInj.At("s", "k"); k != KindNone {
		t.Errorf("nil injector fired %v", k)
	}
	inert := New(Config{Seed: 1})
	always := New(Config{Seed: 1, Rate: 1})
	fired := 0
	for i := 0; i < 100; i++ {
		key := string(rune('a' + i%26))
		if inert.At("s", key) != KindNone {
			t.Fatal("rate-0 injector fired")
		}
		if always.At("s", key) != KindNone {
			fired++
		}
	}
	if fired != 100 {
		t.Errorf("rate-1 injector fired %d/100", fired)
	}
}

// TestSiteAndKindFilters: only configured sites fault, and only
// configured kinds are drawn.
func TestSiteAndKindFilters(t *testing.T) {
	in := New(Config{Seed: 7, Rate: 1, Sites: []string{"cache.read"}, Kinds: []Kind{KindErr}})
	for i := 0; i < 50; i++ {
		key := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if k := in.At("pipeline.parse", key); k != KindNone {
			t.Fatalf("unlisted site fired %v", k)
		}
		if k := in.At("cache.read", key); k != KindErr {
			t.Fatalf("got kind %v, want only io-error", k)
		}
	}
	f := in.Fired()
	if f["cache.read/io-error"] != 50 || len(f) != 1 {
		t.Errorf("fired counters = %v, want cache.read/io-error×50 only", f)
	}
}

// TestMangle: deterministic, always changes non-empty data, nil-safe.
func TestMangle(t *testing.T) {
	in := New(Config{Seed: 5, Rate: 1})
	orig := []byte("the quick brown fox jumps over the lazy dog")
	a := append([]byte(nil), orig...)
	b := append([]byte(nil), orig...)
	in.Mangle(a, "k1")
	in.Mangle(b, "k1")
	if bytes.Equal(a, orig) {
		t.Error("Mangle changed nothing")
	}
	if !bytes.Equal(a, b) {
		t.Error("Mangle is not deterministic")
	}
	one := []byte{0x00}
	in.Mangle(one, "k2")
	if one[0] == 0x00 {
		t.Error("Mangle left a 1-byte buffer unchanged")
	}
	var nilInj *Injector
	c := append([]byte(nil), orig...)
	nilInj.Mangle(c, "k1")
	if !bytes.Equal(c, orig) {
		t.Error("nil injector mangled data")
	}
	in.Mangle(nil, "k")
}

// TestSleepRespectsContext: a cancelled context cuts the stall short.
func TestSleepRespectsContext(t *testing.T) {
	in := New(Config{Seed: 1, Rate: 1, Delay: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	in.Sleep(ctx)
	if d := time.Since(start); d > time.Second {
		t.Errorf("Sleep ignored cancellation (%v)", d)
	}
	var nilInj *Injector
	nilInj.Sleep(context.Background())
}

// TestErrorTransient: injected errors advertise retryability.
func TestErrorTransient(t *testing.T) {
	e := &Error{Site: "cache.read", Key: "abc"}
	if !e.Transient() {
		t.Error("injected error not transient")
	}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

// TestSummary renders fired counters stably.
func TestSummary(t *testing.T) {
	in := New(Config{Seed: 3, Rate: 1, Kinds: []Kind{KindDelay}})
	if got := in.Summary(); got != "no faults injected" {
		t.Errorf("fresh injector summary = %q", got)
	}
	in.At("s", "k")
	if got := in.Summary(); got != "s/delay×1" {
		t.Errorf("summary = %q, want s/delay×1", got)
	}
}
