// Package faultinject provides deterministic, seed-driven fault injection
// at named sites. It exists so the chaos tests (and the CLIs' -fault-seed
// mode) can subject the analysis pipeline to the failure modes a real
// mining run meets — I/O errors, bit-rot, stalls, and outright panics —
// while staying perfectly reproducible: whether a given (site, key) pair
// faults, and with which kind, is a pure function of the injector's seed,
// independent of scheduling, parallelism, or wall-clock time.
//
// A site is a stable string naming a code location ("cache.read",
// "pipeline.parse", "vcs.open", ...); a key identifies the unit of work
// flowing through it (a project name, a fingerprint, a path). Call sites
// ask At(site, key) for the fault to apply and honor only the kinds that
// make sense there (a pipeline stage cannot corrupt bytes; a byte reader
// cannot panic usefully). A nil *Injector is valid and injects nothing,
// so production paths carry no conditional wiring.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the class of fault to inject at a site.
type Kind int

const (
	// KindNone means the site proceeds normally.
	KindNone Kind = iota
	// KindErr makes the site fail with a transient *Error.
	KindErr
	// KindCorrupt makes the site flip bytes in the data it handles.
	KindCorrupt
	// KindDelay makes the site stall for the configured Delay.
	KindDelay
	// KindPanic makes the site panic.
	KindPanic
)

// AllKinds lists every injectable fault kind.
var AllKinds = []Kind{KindErr, KindCorrupt, KindDelay, KindPanic}

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindErr:
		return "io-error"
	case KindCorrupt:
		return "corrupt"
	case KindDelay:
		return "delay"
	case KindPanic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Error is the error injected for KindErr faults. It reports itself as
// transient so retry layers treat it like a recoverable I/O failure.
type Error struct {
	Site string
	Key  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected I/O fault at %s (%s)", e.Site, e.Key)
}

// Transient marks the error as retryable.
func (e *Error) Transient() bool { return true }

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every injection decision; two injectors with equal
	// configs make identical decisions.
	Seed int64
	// Rate is the fraction of (site, key) pairs that fault, in [0, 1].
	// Rates <= 0 make the injector inert.
	Rate float64
	// Kinds restricts the fault kinds drawn; nil selects AllKinds.
	Kinds []Kind
	// Sites restricts injection to the named sites; nil allows every site.
	Sites []string
	// Delay is the stall applied for KindDelay faults (default 1ms).
	Delay time.Duration
}

// Injector decides, deterministically, which (site, key) pairs fault and
// how. Safe for concurrent use.
type Injector struct {
	cfg   Config
	sites map[string]bool

	// observer, when set, is invoked for every fault that fires, with the
	// site and the kind's string form. It must not affect injection
	// decisions — it is a telemetry tap, not a control hook.
	observer atomic.Pointer[func(site, kind string)]

	mu    sync.Mutex
	fired map[string]int
}

// SetObserver installs (or, with nil, removes) a callback invoked on every
// fired fault. The callback must be safe for concurrent use. Nil-safe.
func (in *Injector) SetObserver(fn func(site, kind string)) {
	if in == nil {
		return
	}
	if fn == nil {
		in.observer.Store(nil)
		return
	}
	in.observer.Store(&fn)
}

// New builds an injector from cfg, applying the documented defaults.
func New(cfg Config) *Injector {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = AllKinds
	}
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	in := &Injector{cfg: cfg, fired: map[string]int{}}
	if len(cfg.Sites) > 0 {
		in.sites = make(map[string]bool, len(cfg.Sites))
		for _, s := range cfg.Sites {
			in.sites[s] = true
		}
	}
	return in
}

// hash64 mixes the seed, site and key into one well-distributed 64-bit
// value: FNV-1a over the inputs, then a murmur-style avalanche finalizer
// (plain FNV leaves the low bits of short, similar keys correlated, which
// would make the fire decision near-constant across a corpus).
func hash64(seed int64, site, key string) uint64 {
	f := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	f.Write(b[:])
	f.Write([]byte(site))
	f.Write([]byte{0})
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// At returns the fault kind to inject at site for key, or KindNone. The
// decision depends only on (seed, site, key): the same injector returns
// the same answer every time, under any concurrency. Nil-safe.
func (in *Injector) At(site, key string) Kind {
	if in == nil || in.cfg.Rate <= 0 {
		return KindNone
	}
	if in.sites != nil && !in.sites[site] {
		return KindNone
	}
	h := hash64(in.cfg.Seed, site, key)
	// The low 32 bits decide whether to fire; the high bits pick the kind,
	// so rate and kind selection stay independent.
	if float64(uint32(h))/float64(1<<32) >= in.cfg.Rate {
		return KindNone
	}
	k := in.cfg.Kinds[int((h>>32)%uint64(len(in.cfg.Kinds)))]
	in.mu.Lock()
	in.fired[site+"/"+k.String()]++
	in.mu.Unlock()
	if obs := in.observer.Load(); obs != nil {
		(*obs)(site, k.String())
	}
	return k
}

// Sleep stalls for the configured Delay, returning early if ctx is
// cancelled, so delayed workers never outlive their run. Nil-safe.
func (in *Injector) Sleep(ctx context.Context) {
	if in == nil {
		return
	}
	t := time.NewTimer(in.cfg.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Mangle deterministically flips bytes of data in place (seeded by the
// injector seed and key), guaranteeing at least one change when data is
// non-empty. It simulates bit-rot for KindCorrupt faults. Nil-safe: a nil
// injector leaves data untouched.
func (in *Injector) Mangle(data []byte, key string) {
	if in == nil || len(data) == 0 {
		return
	}
	h := hash64(in.cfg.Seed, "mangle", key)
	// Flip 1–4 bytes at hash-derived offsets; XOR with a non-zero mask so
	// every flip really changes the byte.
	n := 1 + int(h%4)
	for i := 0; i < n; i++ {
		h = h*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		off := int(h % uint64(len(data)))
		mask := byte(h >> 56)
		if mask == 0 {
			mask = 0xFF
		}
		data[off] ^= mask
	}
}

// Fired returns a copy of the per-(site, kind) injection counters, keyed
// "site/kind". Nil-safe.
func (in *Injector) Fired() map[string]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// Summary renders the fired counters as one sorted line, for logs.
func (in *Injector) Summary() string {
	f := in.Fired()
	if len(f) == 0 {
		return "no faults injected"
	}
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, f[k]))
	}
	return strings.Join(parts, " ")
}
