// Package jsondoc extends the study to NoSQL document stores — the first
// item of the paper's future-work list ("NoSQL schemata are a clear case
// where this method can be applied"). It infers an implicit schema from
// collections of JSON documents, detects field-level change between
// versions, and adapts the result to the same heartbeat → measures →
// pattern pipeline used for relational histories.
package jsondoc

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"schemaevo/internal/history"
)

// Schema is the implicit schema of a document collection: a map from
// flattened field paths to type names. Nested objects flatten with '.'
// separators; array elements with "[]" ("tags[]", "orders[].total").
type Schema struct {
	// Fields maps each path to "string", "number", "bool", "null",
	// "object", or "mixed" when documents disagree.
	Fields map[string]string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema { return &Schema{Fields: map[string]string{}} }

// FieldCount returns the number of distinct field paths — the NoSQL
// analogue of the attribute count.
func (s *Schema) FieldCount() int { return len(s.Fields) }

// Paths returns the sorted field paths.
func (s *Schema) Paths() []string {
	out := make([]string, 0, len(s.Fields))
	for p := range s.Fields {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// addValue merges a JSON value rooted at path into the schema.
func (s *Schema) addValue(path string, v any) {
	switch val := v.(type) {
	case map[string]any:
		if path != "" {
			s.addType(path, "object")
		}
		for k, child := range val {
			childPath := k
			if path != "" {
				childPath = path + "." + k
			}
			s.addValue(childPath, child)
		}
	case []any:
		elemPath := path + "[]"
		if len(val) == 0 {
			s.addType(elemPath, "empty")
			return
		}
		for _, item := range val {
			s.addValue(elemPath, item)
		}
	case string:
		s.addType(path, "string")
	case float64:
		s.addType(path, "number")
	case bool:
		s.addType(path, "bool")
	case nil:
		s.addType(path, "null")
	case json.Number:
		s.addType(path, "number")
	}
}

// addType records a type observation, degrading to "mixed" on conflict.
// "null" and "empty" observations never override a concrete type.
func (s *Schema) addType(path, typ string) {
	prev, seen := s.Fields[path]
	switch {
	case !seen, prev == "null", prev == "empty":
		s.Fields[path] = typ
	case prev == typ, typ == "null", typ == "empty":
		// keep prev
	default:
		s.Fields[path] = "mixed"
	}
}

// InferDocument parses one JSON document and returns its schema.
func InferDocument(doc string) (*Schema, error) {
	s := NewSchema()
	if err := s.Merge(doc); err != nil {
		return nil, err
	}
	return s, nil
}

// Merge folds one more JSON document into the schema.
func (s *Schema) Merge(doc string) error {
	var v any
	if err := json.Unmarshal([]byte(doc), &v); err != nil {
		return fmt.Errorf("jsondoc: %w", err)
	}
	if _, ok := v.(map[string]any); !ok {
		return fmt.Errorf("jsondoc: document root must be an object, got %T", v)
	}
	s.addValue("", v)
	return nil
}

// InferCollection infers the union schema of a document collection.
func InferCollection(docs []string) (*Schema, error) {
	s := NewSchema()
	for i, d := range docs {
		if err := s.Merge(d); err != nil {
			return nil, fmt.Errorf("jsondoc: document %d: %w", i, err)
		}
	}
	return s, nil
}

// Delta is the field-level difference between two schema versions — the
// document-store analogue of diff.Delta.
type Delta struct {
	Added       []string
	Removed     []string
	TypeChanged []string
}

// Total returns the number of affected fields, the unit of NoSQL schema
// evolution volume.
func (d *Delta) Total() int { return len(d.Added) + len(d.Removed) + len(d.TypeChanged) }

// Diff computes the field-level delta from old to new. Either may be nil
// (the empty schema).
func Diff(old, new *Schema) *Delta {
	d := &Delta{}
	oldFields := map[string]string{}
	if old != nil {
		oldFields = old.Fields
	}
	newFields := map[string]string{}
	if new != nil {
		newFields = new.Fields
	}
	for path, typ := range newFields {
		prev, existed := oldFields[path]
		switch {
		case !existed:
			d.Added = append(d.Added, path)
		case prev != typ:
			d.TypeChanged = append(d.TypeChanged, path)
		}
	}
	for path := range oldFields {
		if _, survives := newFields[path]; !survives {
			d.Removed = append(d.Removed, path)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.TypeChanged)
	return d
}

// Version is one timestamped state of a document collection.
type Version struct {
	Time time.Time
	// Docs are sample documents representative of the collection at this
	// point in time.
	Docs []string
}

// History adapts a sequence of document-collection versions to the same
// history.History the relational pipeline consumes: one schema per
// version, field-level deltas, monthly heartbeat over the project's
// lifetime [start, end].
func History(project string, versions []Version, start, end time.Time) (*history.History, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("jsondoc: no versions")
	}
	if end.Before(start) {
		return nil, fmt.Errorf("jsondoc: end precedes start")
	}
	months := (end.Year()*12 + int(end.Month())) - (start.Year()*12 + int(start.Month())) + 1
	h := &history.History{
		Project:       project,
		DDLPath:       "(json documents)",
		Start:         start,
		End:           end,
		SchemaMonthly: make([]int, months),
		SourceMonthly: make([]int, months),
	}
	var prev *Schema
	for i, v := range versions {
		if v.Time.Before(start) || v.Time.After(end) {
			return nil, fmt.Errorf("jsondoc: version %d outside [start, end]", i)
		}
		cur, err := InferCollection(v.Docs)
		if err != nil {
			return nil, err
		}
		d := Diff(prev, cur)
		idx := (v.Time.Year()*12 + int(v.Time.Month())) - (start.Year()*12 + int(start.Month()))
		h.SchemaMonthly[idx] += d.Total()
		h.ExpansionTotal += len(d.Added)
		h.MaintenanceTotal += len(d.Removed) + len(d.TypeChanged)
		prev = cur
	}
	return h, nil
}

// FieldPathDepth returns the nesting depth of a flattened path ("a.b[].c"
// has depth 3) — a document-shape statistic with no relational analogue.
func FieldPathDepth(path string) int {
	if path == "" {
		return 0
	}
	depth := 1
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			depth++
		}
	}
	return depth
}

// String renders the schema compactly for diagnostics.
func (s *Schema) String() string {
	var sb strings.Builder
	for i, p := range s.Paths() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p)
		sb.WriteString(":")
		sb.WriteString(s.Fields[p])
	}
	return sb.String()
}
