package jsondoc

import (
	"testing"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
)

func TestInferDocumentFlattening(t *testing.T) {
	s, err := InferDocument(`{
		"name": "ada",
		"age": 36,
		"active": true,
		"address": {"city": "london", "zip": null},
		"tags": ["a", "b"],
		"orders": [{"total": 9.5}]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"name": "string", "age": "number", "active": "bool",
		"address": "object", "address.city": "string", "address.zip": "null",
		"tags[]": "string", "orders[]": "object", "orders[].total": "number",
	}
	for path, typ := range want {
		if got := s.Fields[path]; got != typ {
			t.Errorf("%s = %q, want %q", path, got, typ)
		}
	}
	if s.FieldCount() != len(want) {
		t.Errorf("field count = %d (%s)", s.FieldCount(), s)
	}
}

func TestInferCollectionUnionAndMixed(t *testing.T) {
	s, err := InferCollection([]string{
		`{"id": 1, "v": "text"}`,
		`{"id": 2, "v": 42, "extra": true}`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fields["v"] != "mixed" {
		t.Errorf("conflicting field = %q", s.Fields["v"])
	}
	if s.Fields["extra"] != "bool" || s.Fields["id"] != "number" {
		t.Errorf("union fields: %s", s)
	}
}

func TestNullDoesNotOverrideConcrete(t *testing.T) {
	s, err := InferCollection([]string{
		`{"v": null}`,
		`{"v": "x"}`,
		`{"v": null}`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Fields["v"] != "string" {
		t.Errorf("v = %q, want string", s.Fields["v"])
	}
}

func TestEmptyArray(t *testing.T) {
	s, err := InferDocument(`{"tags": []}`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fields["tags[]"] != "empty" {
		t.Errorf("tags[] = %q", s.Fields["tags[]"])
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := InferDocument(`not json`); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := InferDocument(`[1,2,3]`); err == nil {
		t.Error("non-object root should fail")
	}
	if _, err := InferCollection([]string{`{"a":1}`, `broken`}); err == nil {
		t.Error("collection with a broken doc should fail")
	}
}

func TestDiff(t *testing.T) {
	old, _ := InferDocument(`{"a": 1, "b": "x", "c": true}`)
	new, _ := InferDocument(`{"a": 1, "b": 2, "d": "fresh"}`)
	d := Diff(old, new)
	if len(d.Added) != 1 || d.Added[0] != "d" {
		t.Errorf("added: %v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "c" {
		t.Errorf("removed: %v", d.Removed)
	}
	if len(d.TypeChanged) != 1 || d.TypeChanged[0] != "b" {
		t.Errorf("type changed: %v", d.TypeChanged)
	}
	if d.Total() != 3 {
		t.Errorf("total = %d", d.Total())
	}
	birth := Diff(nil, old)
	if len(birth.Added) != 3 || birth.Total() != 3 {
		t.Errorf("birth diff: %+v", birth)
	}
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func TestHistoryAndClassification(t *testing.T) {
	// A document collection that freezes right after its early birth:
	// the NoSQL flatliner the paper hypothesizes.
	versions := []Version{
		{Time: day(2020, 1, 10), Docs: []string{
			`{"user": "a", "score": 10, "meta": {"lang": "en"}}`,
		}},
		{Time: day(2020, 1, 25), Docs: []string{
			`{"user": "a", "score": 10, "meta": {"lang": "en"}}`,
		}},
	}
	h, err := History("nosql-demo", versions, day(2020, 1, 1), day(2022, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h.Months() != 30 {
		t.Errorf("months = %d", h.Months())
	}
	if h.SchemaMonthly[0] != 4 { // user, score, meta, meta.lang
		t.Errorf("birth volume = %d", h.SchemaMonthly[0])
	}
	m := metrics.Compute(h)
	l := quantize.Compute(m, quantize.DefaultScheme())
	if got := core.Classify(l); got != core.Flatliner {
		t.Errorf("pattern = %v, want Flatliner", got)
	}
}

func TestHistoryLateChange(t *testing.T) {
	// Early birth, long sleep, late change: a NoSQL Siesta.
	versions := []Version{
		{Time: day(2018, 2, 1), Docs: []string{`{"a":1,"b":2,"c":"x","d":true,"e":[1]}`}},
		{Time: day(2021, 10, 1), Docs: []string{`{"a":1,"b":2,"c":"x","d":true,"e":[1],"f":{"g":1},"h":2,"i":3}`}},
		{Time: day(2021, 12, 1), Docs: []string{`{"a":1,"b":2,"c":"x","d":true,"e":[1],"f":{"g":1},"h":2,"i":3,"j":4,"k":5}`}},
	}
	h, err := History("nosql-siesta", versions, day(2018, 1, 1), day(2022, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.Compute(h)
	l := quantize.Compute(m, quantize.DefaultScheme())
	if got := core.Classify(l); got != core.Siesta {
		t.Errorf("pattern = %v, want Siesta (labels %+v)", got, l)
	}
}

func TestHistoryErrors(t *testing.T) {
	if _, err := History("x", nil, day(2020, 1, 1), day(2021, 1, 1)); err == nil {
		t.Error("no versions should fail")
	}
	v := []Version{{Time: day(2020, 6, 1), Docs: []string{`{"a":1}`}}}
	if _, err := History("x", v, day(2021, 1, 1), day(2020, 1, 1)); err == nil {
		t.Error("end before start should fail")
	}
	if _, err := History("x", v, day(2020, 7, 1), day(2021, 1, 1)); err == nil {
		t.Error("version outside range should fail")
	}
}

func TestFieldPathDepth(t *testing.T) {
	cases := map[string]int{"": 0, "a": 1, "a.b": 2, "a.b[].c": 3}
	for path, want := range cases {
		if got := FieldPathDepth(path); got != want {
			t.Errorf("depth(%q) = %d, want %d", path, got, want)
		}
	}
}
