package coevolution

import (
	"math"
	"testing"

	"schemaevo/internal/history"
)

// hist builds a history from explicit monthly heartbeats.
func hist(schema, source []int) *history.History {
	return &history.History{
		Project:       "test",
		SchemaMonthly: schema,
		SourceMonthly: source,
	}
}

func TestSchemaLeadsSource(t *testing.T) {
	// Schema completes at month 0; source is spread evenly over 10 months.
	schema := []int{10, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	source := []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	m, err := Compute(hist(schema, source))
	if err != nil {
		t.Fatal(err)
	}
	if m.SchemaHalfPct != 0 {
		t.Errorf("schema half = %v", m.SchemaHalfPct)
	}
	if m.Lag <= 0 {
		t.Errorf("lag = %v, schema should lead", m.Lag)
	}
	// At schema freeze (month 0) only 10% of the source exists.
	if math.Abs(m.SourceAtSchemaTop-0.1) > 1e-9 {
		t.Errorf("source at top = %v", m.SourceAtSchemaTop)
	}
}

func TestSynchronousEvolution(t *testing.T) {
	beat := []int{2, 3, 1, 4, 2, 3, 1, 4}
	m, err := Compute(hist(beat, beat))
	if err != nil {
		t.Fatal(err)
	}
	if m.Lag != 0 {
		t.Errorf("identical heartbeats lag = %v", m.Lag)
	}
	if math.Abs(m.HeartbeatRho-1) > 1e-9 {
		t.Errorf("rho = %v", m.HeartbeatRho)
	}
}

func TestLateSchema(t *testing.T) {
	// Source first, schema late: negative lag.
	schema := []int{0, 0, 0, 0, 0, 0, 0, 0, 5, 5}
	source := []int{5, 5, 0, 0, 0, 0, 0, 0, 0, 0}
	m, err := Compute(hist(schema, source))
	if err != nil {
		t.Fatal(err)
	}
	if m.Lag >= 0 {
		t.Errorf("lag = %v, source should lead", m.Lag)
	}
	if m.SourceAtSchemaTop != 1 {
		t.Errorf("source at top = %v", m.SourceAtSchemaTop)
	}
}

func TestComputeEmptyHistory(t *testing.T) {
	if _, err := Compute(hist(nil, nil)); err == nil {
		t.Error("empty history should error")
	}
}

func TestSummarize(t *testing.T) {
	ms := []Measures{
		{Lag: 0.4, SourceAtSchemaTop: 0.1},
		{Lag: 0.2, SourceAtSchemaTop: 0.3},
		{Lag: -0.1, SourceAtSchemaTop: 0.9},
	}
	agg, err := Summarize(ms)
	if err != nil {
		t.Fatal(err)
	}
	if agg.N != 3 || agg.SchemaLeads != 2 {
		t.Errorf("aggregate: %+v", agg)
	}
	if math.Abs(agg.MedianLag-0.2) > 1e-9 || math.Abs(agg.MedianSourceAtTop-0.3) > 1e-9 {
		t.Errorf("medians: %+v", agg)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty summary should error")
	}
}
