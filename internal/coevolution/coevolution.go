// Package coevolution analyzes how the schema line and the source-code
// line of a project relate in time. The paper builds on a joint study of
// source and schema evolution (its Fig. 1 charts both lines) and observes
// that "the behaviour towards schema evolution is not obligatorily in
// sync with the behaviour towards source code evolution" (§6.1); this
// package quantifies that: half-attainment lag, source progress at schema
// freeze, and rank correlation of the two heartbeats.
package coevolution

import (
	"fmt"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/stats"
)

// Measures captures the temporal relationship of a project's schema and
// source lines.
type Measures struct {
	// SchemaHalfPct and SourceHalfPct are the normalized times at which
	// each cumulative line first reaches 50% of its total.
	SchemaHalfPct float64
	SourceHalfPct float64
	// Lag is SourceHalfPct - SchemaHalfPct: positive when the schema
	// completes half its evolution before the source does (the schema
	// "leads"; the freeze-then-build anecdote predicts strongly positive
	// values).
	Lag float64
	// SourceAtSchemaTop is the fraction of total source activity already
	// performed when the schema reaches its top band. Low values mean
	// most of the coding happened against an already-frozen schema.
	SourceAtSchemaTop float64
	// HeartbeatRho is the Spearman correlation of the two monthly
	// heartbeats (NaN when either is constant).
	HeartbeatRho float64
}

// halfPoint returns the normalized time at which a cumulative series
// first reaches 0.5, or 1 if it never does (zero-activity series).
func halfPoint(cum []float64, pup int) float64 {
	for i, v := range cum {
		if v >= 0.5 {
			return metrics.PctOfPUP(i, pup)
		}
	}
	return 1
}

// Compute derives the co-evolution measures of one history.
func Compute(h *history.History) (Measures, error) {
	if h.Months() == 0 {
		return Measures{}, fmt.Errorf("coevolution: empty history")
	}
	schemaCum := h.SchemaCumulative()
	sourceCum := h.SourceCumulative()
	m := Measures{
		SchemaHalfPct: halfPoint(schemaCum, h.Months()),
		SourceHalfPct: halfPoint(sourceCum, h.Months()),
	}
	m.Lag = m.SourceHalfPct - m.SchemaHalfPct

	// Source progress at schema top-band attainment.
	top := -1
	for i, v := range schemaCum {
		if v >= metrics.TopBandThreshold-1e-12 {
			top = i
			break
		}
	}
	if top >= 0 && len(sourceCum) > top {
		m.SourceAtSchemaTop = sourceCum[top]
	}

	sm := make([]float64, len(h.SchemaMonthly))
	so := make([]float64, len(h.SourceMonthly))
	for i := range sm {
		sm[i] = float64(h.SchemaMonthly[i])
		so[i] = float64(h.SourceMonthly[i])
	}
	m.HeartbeatRho = stats.Spearman(sm, so)
	return m, nil
}

// Aggregate summarizes co-evolution over a set of project measures.
type Aggregate struct {
	N int
	// MedianLag is the median schema-vs-source half-point lag.
	MedianLag float64
	// SchemaLeads counts projects with positive lag (schema half-done
	// before source half-done).
	SchemaLeads int
	// MedianSourceAtTop is the median source progress at schema freeze.
	MedianSourceAtTop float64
}

// Summarize aggregates per-project co-evolution measures.
func Summarize(ms []Measures) (Aggregate, error) {
	if len(ms) == 0 {
		return Aggregate{}, fmt.Errorf("coevolution: nothing to summarize")
	}
	agg := Aggregate{N: len(ms)}
	lags := make([]float64, 0, len(ms))
	atTop := make([]float64, 0, len(ms))
	for _, m := range ms {
		lags = append(lags, m.Lag)
		atTop = append(atTop, m.SourceAtSchemaTop)
		if m.Lag > 0 {
			agg.SchemaLeads++
		}
	}
	agg.MedianLag = stats.Median(lags)
	agg.MedianSourceAtTop = stats.Median(atTop)
	return agg, nil
}
