package core

import (
	"sort"
	"strconv"
	"strings"

	"schemaevo/internal/quantize"
)

// Subject is the minimal view of a project the taxonomy operates on: its
// quantized label profile and the pattern it was assigned to (in the
// paper: by manual annotation; here: the generator's ground truth or
// ClassifyNearest for fresh projects).
type Subject struct {
	Name     string
	Labels   quantize.Labels
	Assigned Pattern
}

// IsException reports whether the subject violates the formal definition
// of its assigned pattern — the paper's Table 2 exceptions.
func (s Subject) IsException() bool {
	return s.Assigned != Unclassified && !MatchesDefinition(s.Assigned, s.Labels)
}

// ExceptionReport summarizes Table 2 for one pattern.
type ExceptionReport struct {
	Pattern Pattern
	// Projects is the pattern's population size.
	Projects int
	// Exceptions names the member projects violating the definition.
	Exceptions []string
	// Overlaps names member projects whose profile also satisfies some
	// other pattern's definition (the paper reports none).
	Overlaps []string
}

// Exceptions audits a classified corpus against the formal definitions,
// producing the data behind Table 2.
func Exceptions(subjects []Subject) []ExceptionReport {
	byPattern := map[Pattern]*ExceptionReport{}
	for _, p := range AllPatterns {
		byPattern[p] = &ExceptionReport{Pattern: p}
	}
	for _, s := range subjects {
		r, ok := byPattern[s.Assigned]
		if !ok {
			continue
		}
		r.Projects++
		if s.IsException() {
			r.Exceptions = append(r.Exceptions, s.Name)
			continue
		}
		for _, other := range AllPatterns {
			if other != s.Assigned && MatchesDefinition(other, s.Labels) {
				r.Overlaps = append(r.Overlaps, s.Name)
				break
			}
		}
	}
	out := make([]ExceptionReport, 0, len(AllPatterns))
	for _, p := range AllPatterns {
		sort.Strings(byPattern[p].Exceptions)
		sort.Strings(byPattern[p].Overlaps)
		out = append(out, *byPattern[p])
	}
	return out
}

// Profile aggregates the observed label values of one pattern's members —
// one row of the Fig. 4 overview.
type Profile struct {
	Pattern Pattern
	Count   int
	// Each map counts members per observed label value.
	BirthVol     map[string]int
	BirthTiming  map[string]int
	TopBandPoint map[string]int
	Vault        map[string]int
	GrowInterval map[string]int
	ActGrowth    map[string]int
	ActPUP       map[string]int
	Tail         map[string]int
	// ActiveMonthsMin/Max bound the raw active-growth-month counts.
	ActiveMonthsMin, ActiveMonthsMax int
}

// Profiles computes the Fig. 4 overview for a classified corpus, in the
// paper's pattern order.
func Profiles(subjects []Subject) []Profile {
	byPattern := map[Pattern]*Profile{}
	for _, p := range AllPatterns {
		byPattern[p] = &Profile{
			Pattern:      p,
			BirthVol:     map[string]int{},
			BirthTiming:  map[string]int{},
			TopBandPoint: map[string]int{},
			Vault:        map[string]int{},
			GrowInterval: map[string]int{},
			ActGrowth:    map[string]int{},
			ActPUP:       map[string]int{},
			Tail:         map[string]int{},
		}
	}
	for _, s := range subjects {
		pr, ok := byPattern[s.Assigned]
		if !ok {
			continue
		}
		l := s.Labels
		if pr.Count == 0 || l.ActiveGrowthMonths < pr.ActiveMonthsMin {
			pr.ActiveMonthsMin = l.ActiveGrowthMonths
		}
		if l.ActiveGrowthMonths > pr.ActiveMonthsMax {
			pr.ActiveMonthsMax = l.ActiveGrowthMonths
		}
		pr.Count++
		pr.BirthVol[l.BirthVolume.String()]++
		pr.BirthTiming[l.BirthTiming.String()]++
		pr.TopBandPoint[l.TopBandPoint.String()]++
		if l.HasVault {
			pr.Vault["true"]++
		} else {
			pr.Vault["false"]++
		}
		pr.GrowInterval[l.IntervalBirthToTop.String()]++
		pr.ActGrowth[l.ActivePctGrowth.String()]++
		pr.ActPUP[l.ActivePctPUP.String()]++
		pr.Tail[l.IntervalTopToEnd.String()]++
	}
	out := make([]Profile, 0, len(AllPatterns))
	for _, p := range AllPatterns {
		out = append(out, *byPattern[p])
	}
	return out
}

// LabelSet renders a count map as "a, b (n), c" — values sorted by
// descending count, minority values annotated with their counts.
func LabelSet(m map[string]int) string {
	type kv struct {
		k string
		n int
	}
	items := make([]kv, 0, len(m))
	total := 0
	for k, n := range m {
		items = append(items, kv{k, n})
		total += n
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].k < items[j].k
	})
	var parts []string
	for _, it := range items {
		// Annotate clear minorities (under 15% of the pattern).
		if total > 0 && it.n*100 < total*15 {
			parts = append(parts, it.k+" ("+strconv.Itoa(it.n)+")")
		} else {
			parts = append(parts, it.k)
		}
	}
	return strings.Join(parts, ", ")
}

// DomainPoint is one populated combination of the four defining label
// dimensions — one cell of the Fig. 6 active-domain view.
type DomainPoint struct {
	BirthTiming  string
	TopBandPoint string
	GrowInterval string
	FewActive    bool // at most 3 active growth months
	// Count per assigned pattern for projects at this point.
	Patterns map[Pattern]int
	Total    int
}

// Key renders the coordinate tuple.
func (d DomainPoint) Key() string {
	rate := "few"
	if !d.FewActive {
		rate = "many"
	}
	return d.BirthTiming + "/" + d.TopBandPoint + "/" + d.GrowInterval + "/" + rate
}

// DomainCoverage groups a classified corpus by the Cartesian coordinates
// of the defining attributes, reproducing Fig. 6: which parts of the
// space are populated, by how many projects, of which patterns.
func DomainCoverage(subjects []Subject) []DomainPoint {
	byKey := map[string]*DomainPoint{}
	for _, s := range subjects {
		d := DomainPoint{
			BirthTiming:  s.Labels.BirthTiming.String(),
			TopBandPoint: s.Labels.TopBandPoint.String(),
			GrowInterval: s.Labels.IntervalBirthToTop.String(),
			FewActive:    s.Labels.ActiveGrowthMonths <= quantumStepsMaxActive,
		}
		k := d.Key()
		pt, ok := byKey[k]
		if !ok {
			d.Patterns = map[Pattern]int{}
			byKey[k] = &d
			pt = &d
		}
		pt.Patterns[s.Assigned]++
		pt.Total++
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]DomainPoint, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

// SharedPoints returns the domain points populated by more than one
// pattern — the essential-disjointness check of §5.3 expects (almost)
// none once change rate is part of the coordinates.
func SharedPoints(points []DomainPoint) []DomainPoint {
	var out []DomainPoint
	for _, p := range points {
		if len(p.Patterns) > 1 {
			out = append(out, p)
		}
	}
	return out
}
