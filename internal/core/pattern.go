// Package core implements the paper's primary contribution: the eight
// time-related patterns of schema evolution (Definitions 4.1-4.8),
// organized in three families, as a rule-based classifier over the
// quantized label profile of a project, plus exception detection
// (Table 2) and the per-pattern characteristics overview (Fig. 4).
package core

import (
	"fmt"

	"schemaevo/internal/quantize"
)

// Pattern identifies one of the eight time-related patterns.
type Pattern int

// The eight patterns of §4, plus Unclassified for profiles that satisfy
// no definition (the paper's manually-earmarked exceptions live inside
// their assigned pattern; see Exceptions).
const (
	Unclassified Pattern = iota
	Flatliner
	RadicalSign
	Sigmoid
	LateRiser
	QuantumSteps
	RegularlyCurated
	Siesta
	SmokingFunnel
)

// AllPatterns lists the eight patterns in the paper's presentation order.
var AllPatterns = []Pattern{
	Flatliner, RadicalSign, Sigmoid, LateRiser,
	QuantumSteps, RegularlyCurated, Siesta, SmokingFunnel,
}

func (p Pattern) String() string {
	switch p {
	case Flatliner:
		return "Flatliner"
	case RadicalSign:
		return "Radical Sign"
	case Sigmoid:
		return "Sigmoid"
	case LateRiser:
		return "Late Riser"
	case QuantumSteps:
		return "Quantum Steps"
	case RegularlyCurated:
		return "Regularly Curated"
	case Siesta:
		return "Siesta"
	case SmokingFunnel:
		return "Smoking Funnel"
	case Unclassified:
		return "Unclassified"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// ParsePattern maps a pattern name (as produced by String) back to the
// Pattern value; it reports false for unknown names.
func ParsePattern(name string) (Pattern, bool) {
	for _, p := range append([]Pattern{Unclassified}, AllPatterns...) {
		if p.String() == name {
			return p, true
		}
	}
	return Unclassified, false
}

// Family identifies one of the three pattern families.
type Family int

// The three families of §4.
const (
	NoFamily Family = iota
	// BeQuickOrBeDead: focused change around the point of schema birth.
	BeQuickOrBeDead
	// StairwayToHeaven: fairly regular rate of change.
	StairwayToHeaven
	// ScaredToFallAsleepAgain: change starting late in the project life.
	ScaredToFallAsleepAgain
)

func (f Family) String() string {
	switch f {
	case BeQuickOrBeDead:
		return "Be Quick or Be Dead"
	case StairwayToHeaven:
		return "Stairway to Heaven"
	case ScaredToFallAsleepAgain:
		return "Scared to Fall Asleep Again"
	case NoFamily:
		return "None"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// AllFamilies lists the three families in presentation order.
var AllFamilies = []Family{BeQuickOrBeDead, StairwayToHeaven, ScaredToFallAsleepAgain}

// FamilyOf returns the family of a pattern.
func FamilyOf(p Pattern) Family {
	switch p {
	case Flatliner, RadicalSign, Sigmoid, LateRiser:
		return BeQuickOrBeDead
	case QuantumSteps, RegularlyCurated:
		return StairwayToHeaven
	case Siesta, SmokingFunnel:
		return ScaredToFallAsleepAgain
	}
	return NoFamily
}

// quantumStepsMaxActive is the change-rate boundary separating Quantum
// Steps (at most 3 active growth months) from Regularly Curated (more
// than 3); see Definitions 4.5 and 4.6.
const quantumStepsMaxActive = 3

// Classify applies the formal definitions of §4 and returns the pattern
// whose defining conditions the label profile satisfies, or Unclassified
// when none matches. The definitions are pairwise disjoint (§5.3), so at
// most one can match and evaluation order is immaterial; the order below
// follows the paper's presentation.
func Classify(l quantize.Labels) Pattern {
	for _, p := range AllPatterns {
		if MatchesDefinition(p, l) {
			return p
		}
	}
	return Unclassified
}

// MatchesDefinition reports whether a label profile satisfies the formal
// definition of the given pattern. It is used both by Classify and by the
// Table 2 exception audit (a project kept in a pattern by the manual
// grouping may violate the pattern's formal definition).
func MatchesDefinition(p Pattern, l quantize.Labels) bool {
	birthEarly := l.BirthTiming == quantize.TimingVP0 || l.BirthTiming == quantize.TimingEarly
	growShort := l.IntervalBirthToTop == quantize.GrowthZero || l.IntervalBirthToTop == quantize.GrowthSoon
	few := l.ActiveGrowthMonths <= quantumStepsMaxActive

	switch p {
	case Flatliner:
		// Def 4.1: birth and top-band attainment both at V_p^0.
		return l.BirthTiming == quantize.TimingVP0 && l.TopBandPoint == quantize.TimingVP0
	case RadicalSign:
		// Def 4.2: born at V_p^0 or early; top band attained early.
		return birthEarly && l.TopBandPoint == quantize.TimingEarly
	case Sigmoid:
		// Def 4.3: middle birth, middle top band, zero-or-soon interval.
		return l.BirthTiming == quantize.TimingMiddle &&
			l.TopBandPoint == quantize.TimingMiddle && growShort
	case LateRiser:
		// Def 4.4: late birth, late top band, zero-or-soon interval.
		return l.BirthTiming == quantize.TimingLate &&
			l.TopBandPoint == quantize.TimingLate && growShort
	case QuantumSteps:
		// Def 4.5: at most 3 active growth months; early-to-middle or
		// middle-to-late journey.
		return few &&
			((birthEarly && l.TopBandPoint == quantize.TimingMiddle) ||
				(l.BirthTiming == quantize.TimingMiddle && l.TopBandPoint == quantize.TimingLate))
	case RegularlyCurated:
		// Def 4.6: more than 3 active growth months; early birth reaching
		// the top middle-or-late, or middle birth reaching it late.
		if few {
			return false
		}
		if birthEarly &&
			(l.TopBandPoint == quantize.TimingMiddle || l.TopBandPoint == quantize.TimingLate) {
			// Siesta's area (early birth, late top, very long interval)
			// belongs to Siesta only at a low change rate; with >3 active
			// months the project is regularly curated.
			return true
		}
		return l.BirthTiming == quantize.TimingMiddle && l.TopBandPoint == quantize.TimingLate
	case Siesta:
		// Def 4.7: early birth, late top band, very long interval, at
		// most 3 active growth months.
		return birthEarly && l.TopBandPoint == quantize.TimingLate &&
			l.IntervalBirthToTop == quantize.GrowthVeryLong && few
	case SmokingFunnel:
		// Def 4.8: middle birth, middle top band, fair interval, more
		// than 3 active growth months.
		return l.BirthTiming == quantize.TimingMiddle &&
			l.TopBandPoint == quantize.TimingMiddle &&
			l.IntervalBirthToTop == quantize.GrowthFair && !few
	}
	return false
}

// ClassifyNearest always returns a pattern: the definitional match when
// one exists, otherwise the pattern whose defining conditions the profile
// violates least. It mirrors the paper's manual practice of keeping a
// project in the pattern it most resembles even when the formal
// definition is (slightly) violated.
func ClassifyNearest(l quantize.Labels) Pattern {
	if p := Classify(l); p != Unclassified {
		return p
	}
	best := Unclassified
	bestScore := -1
	for _, p := range AllPatterns {
		s := definitionScore(p, l)
		if s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// definitionScore counts how many of the pattern's defining conditions
// the profile satisfies; higher is closer.
func definitionScore(p Pattern, l quantize.Labels) int {
	birthEarly := l.BirthTiming == quantize.TimingVP0 || l.BirthTiming == quantize.TimingEarly
	growShort := l.IntervalBirthToTop == quantize.GrowthZero || l.IntervalBirthToTop == quantize.GrowthSoon
	few := l.ActiveGrowthMonths <= quantumStepsMaxActive
	b := func(conds ...bool) int {
		n := 0
		for _, c := range conds {
			if c {
				n++
			}
		}
		return n
	}
	switch p {
	case Flatliner:
		return b(l.BirthTiming == quantize.TimingVP0, l.TopBandPoint == quantize.TimingVP0, few)
	case RadicalSign:
		return b(birthEarly, l.TopBandPoint == quantize.TimingEarly, few)
	case Sigmoid:
		return b(l.BirthTiming == quantize.TimingMiddle, l.TopBandPoint == quantize.TimingMiddle, growShort, few)
	case LateRiser:
		return b(l.BirthTiming == quantize.TimingLate, l.TopBandPoint == quantize.TimingLate, growShort, few)
	case QuantumSteps:
		varA := b(birthEarly, l.TopBandPoint == quantize.TimingMiddle, few)
		varB := b(l.BirthTiming == quantize.TimingMiddle, l.TopBandPoint == quantize.TimingLate, few)
		return max(varA, varB)
	case RegularlyCurated:
		varA := b(birthEarly, l.TopBandPoint == quantize.TimingMiddle || l.TopBandPoint == quantize.TimingLate, !few)
		varB := b(l.BirthTiming == quantize.TimingMiddle, l.TopBandPoint == quantize.TimingLate, !few)
		return max(varA, varB)
	case Siesta:
		return b(birthEarly, l.TopBandPoint == quantize.TimingLate,
			l.IntervalBirthToTop == quantize.GrowthVeryLong, few)
	case SmokingFunnel:
		return b(l.BirthTiming == quantize.TimingMiddle, l.TopBandPoint == quantize.TimingMiddle,
			l.IntervalBirthToTop == quantize.GrowthFair, !few)
	}
	return 0
}
