package core

import (
	"testing"

	"schemaevo/internal/quantize"
)

// labelsFor builds a label profile succinctly.
func labelsFor(bv quantize.BirthVolumeClass, bt, tp quantize.TimingClass,
	gi quantize.GrowthIntervalClass, tail quantize.TailClass,
	active int, vault bool) quantize.Labels {
	return quantize.Labels{
		BirthVolume:        bv,
		BirthTiming:        bt,
		TopBandPoint:       tp,
		IntervalBirthToTop: gi,
		IntervalTopToEnd:   tail,
		ActiveGrowthMonths: active,
		HasVault:           vault,
	}
}

func TestClassifyArchetypes(t *testing.T) {
	cases := []struct {
		name string
		l    quantize.Labels
		want Pattern
	}{
		{"flatliner", labelsFor(quantize.BirthVolFull, quantize.TimingVP0, quantize.TimingVP0,
			quantize.GrowthZero, quantize.TailFull, 0, true), Flatliner},
		{"radical sign from vp0", labelsFor(quantize.BirthVolHigh, quantize.TimingVP0, quantize.TimingEarly,
			quantize.GrowthSoon, quantize.TailLong, 0, true), RadicalSign},
		{"radical sign from early", labelsFor(quantize.BirthVolHigh, quantize.TimingEarly, quantize.TimingEarly,
			quantize.GrowthZero, quantize.TailLong, 0, true), RadicalSign},
		{"sigmoid", labelsFor(quantize.BirthVolFull, quantize.TimingMiddle, quantize.TimingMiddle,
			quantize.GrowthZero, quantize.TailFair, 0, true), Sigmoid},
		{"late riser", labelsFor(quantize.BirthVolHigh, quantize.TimingLate, quantize.TimingLate,
			quantize.GrowthZero, quantize.TailSoon, 0, true), LateRiser},
		{"quantum steps A", labelsFor(quantize.BirthVolHigh, quantize.TimingEarly, quantize.TimingMiddle,
			quantize.GrowthFair, quantize.TailFair, 2, false), QuantumSteps},
		{"quantum steps B", labelsFor(quantize.BirthVolFair, quantize.TimingMiddle, quantize.TimingLate,
			quantize.GrowthFair, quantize.TailSoon, 3, false), QuantumSteps},
		{"regularly curated A", labelsFor(quantize.BirthVolLow, quantize.TimingVP0, quantize.TimingLate,
			quantize.GrowthVeryLong, quantize.TailSoon, 8, false), RegularlyCurated},
		{"regularly curated B", labelsFor(quantize.BirthVolFair, quantize.TimingMiddle, quantize.TimingLate,
			quantize.GrowthFair, quantize.TailSoon, 5, false), RegularlyCurated},
		{"siesta", labelsFor(quantize.BirthVolFair, quantize.TimingEarly, quantize.TimingLate,
			quantize.GrowthVeryLong, quantize.TailSoon, 1, false), Siesta},
		{"smoking funnel", labelsFor(quantize.BirthVolFair, quantize.TimingMiddle, quantize.TimingMiddle,
			quantize.GrowthFair, quantize.TailFair, 6, false), SmokingFunnel},
	}
	for _, c := range cases {
		if got := Classify(c.l); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassifyUnclassified(t *testing.T) {
	// Late birth reaching top band in middle life is impossible; build a
	// nearby combination no definition covers: late birth, late top, but
	// a fair interval (late risers need zero-or-soon).
	l := labelsFor(quantize.BirthVolHigh, quantize.TimingLate, quantize.TimingLate,
		quantize.GrowthFair, quantize.TailSoon, 0, false)
	if got := Classify(l); got != Unclassified {
		t.Errorf("Classify = %v, want Unclassified", got)
	}
	// Nearest should still put it with the late risers.
	if got := ClassifyNearest(l); got != LateRiser {
		t.Errorf("ClassifyNearest = %v, want LateRiser", got)
	}
}

// TestDefinitionsAreDisjoint enumerates the full label domain and checks
// that no profile satisfies two definitions (§5.3 formal disjointness).
func TestDefinitionsAreDisjoint(t *testing.T) {
	count := 0
	for bt := quantize.TimingVP0; bt <= quantize.TimingLate; bt++ {
		for tp := quantize.TimingVP0; tp <= quantize.TimingLate; tp++ {
			for gi := quantize.GrowthZero; gi <= quantize.GrowthVeryLong; gi++ {
				for _, active := range []int{0, 1, 3, 4, 10} {
					l := quantize.Labels{
						BirthTiming:        bt,
						TopBandPoint:       tp,
						IntervalBirthToTop: gi,
						ActiveGrowthMonths: active,
					}
					var matched []Pattern
					for _, p := range AllPatterns {
						if MatchesDefinition(p, l) {
							matched = append(matched, p)
						}
					}
					if len(matched) > 1 {
						t.Errorf("profile %v/%v/%v/%d matches %v", bt, tp, gi, active, matched)
					}
					if len(matched) == 1 {
						count++
					}
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("no profile matched any definition")
	}
}

// TestClassifyAgreesWithMatches: Classify returns exactly the matching
// definition.
func TestClassifyAgreesWithMatches(t *testing.T) {
	for bt := quantize.TimingVP0; bt <= quantize.TimingLate; bt++ {
		for tp := quantize.TimingVP0; tp <= quantize.TimingLate; tp++ {
			for gi := quantize.GrowthZero; gi <= quantize.GrowthVeryLong; gi++ {
				for _, active := range []int{0, 2, 4} {
					l := quantize.Labels{
						BirthTiming: bt, TopBandPoint: tp,
						IntervalBirthToTop: gi, ActiveGrowthMonths: active,
					}
					got := Classify(l)
					if got == Unclassified {
						for _, p := range AllPatterns {
							if MatchesDefinition(p, l) {
								t.Fatalf("Classify missed %v for %+v", p, l)
							}
						}
					} else if !MatchesDefinition(got, l) {
						t.Fatalf("Classify returned non-matching %v for %+v", got, l)
					}
				}
			}
		}
	}
}

func TestClassifyNearestAlwaysReturnsAPattern(t *testing.T) {
	for bt := quantize.TimingVP0; bt <= quantize.TimingLate; bt++ {
		for tp := quantize.TimingVP0; tp <= quantize.TimingLate; tp++ {
			for gi := quantize.GrowthZero; gi <= quantize.GrowthVeryLong; gi++ {
				l := quantize.Labels{BirthTiming: bt, TopBandPoint: tp, IntervalBirthToTop: gi}
				if got := ClassifyNearest(l); got == Unclassified {
					t.Fatalf("ClassifyNearest returned Unclassified for %+v", l)
				}
			}
		}
	}
}

func TestFamilies(t *testing.T) {
	wants := map[Pattern]Family{
		Flatliner: BeQuickOrBeDead, RadicalSign: BeQuickOrBeDead,
		Sigmoid: BeQuickOrBeDead, LateRiser: BeQuickOrBeDead,
		QuantumSteps: StairwayToHeaven, RegularlyCurated: StairwayToHeaven,
		Siesta: ScaredToFallAsleepAgain, SmokingFunnel: ScaredToFallAsleepAgain,
		Unclassified: NoFamily,
	}
	for p, f := range wants {
		if got := FamilyOf(p); got != f {
			t.Errorf("FamilyOf(%v) = %v, want %v", p, got, f)
		}
	}
}

func TestPatternStringsRoundTrip(t *testing.T) {
	for _, p := range AllPatterns {
		back, ok := ParsePattern(p.String())
		if !ok || back != p {
			t.Errorf("round trip %v -> %q -> %v (%v)", p, p.String(), back, ok)
		}
	}
	if _, ok := ParsePattern("No Such Pattern"); ok {
		t.Error("unknown name accepted")
	}
}

func TestExceptionsAndOverlaps(t *testing.T) {
	flat := labelsFor(quantize.BirthVolFull, quantize.TimingVP0, quantize.TimingVP0,
		quantize.GrowthZero, quantize.TailFull, 0, true)
	// A "sigmoid" member born early violates Def 4.3 (the paper's own
	// exception case).
	earlySigmoid := labelsFor(quantize.BirthVolFull, quantize.TimingEarly, quantize.TimingMiddle,
		quantize.GrowthSoon, quantize.TailFair, 0, true)
	subjects := []Subject{
		{Name: "f1", Labels: flat, Assigned: Flatliner},
		{Name: "f2", Labels: flat, Assigned: Flatliner},
		{Name: "sx", Labels: earlySigmoid, Assigned: Sigmoid},
	}
	reports := Exceptions(subjects)
	byPattern := map[Pattern]ExceptionReport{}
	for _, r := range reports {
		byPattern[r.Pattern] = r
	}
	if byPattern[Flatliner].Projects != 2 || len(byPattern[Flatliner].Exceptions) != 0 {
		t.Errorf("flatliner report: %+v", byPattern[Flatliner])
	}
	if byPattern[Sigmoid].Projects != 1 || len(byPattern[Sigmoid].Exceptions) != 1 ||
		byPattern[Sigmoid].Exceptions[0] != "sx" {
		t.Errorf("sigmoid report: %+v", byPattern[Sigmoid])
	}
}

func TestProfilesAggregation(t *testing.T) {
	subjects := []Subject{
		{Name: "a", Assigned: QuantumSteps, Labels: labelsFor(quantize.BirthVolHigh,
			quantize.TimingEarly, quantize.TimingMiddle, quantize.GrowthFair, quantize.TailFair, 2, false)},
		{Name: "b", Assigned: QuantumSteps, Labels: labelsFor(quantize.BirthVolFair,
			quantize.TimingVP0, quantize.TimingMiddle, quantize.GrowthLong, quantize.TailFair, 3, false)},
	}
	profiles := Profiles(subjects)
	var qs Profile
	for _, p := range profiles {
		if p.Pattern == QuantumSteps {
			qs = p
		}
	}
	if qs.Count != 2 {
		t.Fatalf("count = %d", qs.Count)
	}
	if qs.BirthTiming["early"] != 1 || qs.BirthTiming["vp0"] != 1 {
		t.Errorf("birth timing: %v", qs.BirthTiming)
	}
	if qs.ActiveMonthsMin != 2 || qs.ActiveMonthsMax != 3 {
		t.Errorf("active bounds: %d..%d", qs.ActiveMonthsMin, qs.ActiveMonthsMax)
	}
	if qs.Vault["false"] != 2 {
		t.Errorf("vault: %v", qs.Vault)
	}
}

func TestDomainCoverage(t *testing.T) {
	flat := labelsFor(quantize.BirthVolFull, quantize.TimingVP0, quantize.TimingVP0,
		quantize.GrowthZero, quantize.TailFull, 0, true)
	qsA := labelsFor(quantize.BirthVolHigh, quantize.TimingEarly, quantize.TimingMiddle,
		quantize.GrowthFair, quantize.TailFair, 2, false)
	subjects := []Subject{
		{Name: "f1", Labels: flat, Assigned: Flatliner},
		{Name: "f2", Labels: flat, Assigned: Flatliner},
		{Name: "q1", Labels: qsA, Assigned: QuantumSteps},
	}
	points := DomainCoverage(subjects)
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	var flatPoint DomainPoint
	for _, pt := range points {
		if pt.BirthTiming == "vp0" {
			flatPoint = pt
		}
	}
	if flatPoint.Total != 2 || flatPoint.Patterns[Flatliner] != 2 {
		t.Errorf("flat point: %+v", flatPoint)
	}
	if shared := SharedPoints(points); len(shared) != 0 {
		t.Errorf("unexpected shared points: %+v", shared)
	}
}

func TestLabelSet(t *testing.T) {
	s := LabelSet(map[string]int{"high": 30, "full": 10, "low": 1})
	if s != "high, full, low (1)" {
		t.Errorf("LabelSet = %q", s)
	}
	if LabelSet(map[string]int{}) != "" {
		t.Error("empty map should render empty")
	}
}

func TestDescribe(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range append([]Pattern{Unclassified}, AllPatterns...) {
		d := Describe(p)
		if d == "" || seen[d] {
			t.Errorf("Describe(%v) empty or duplicated", p)
		}
		seen[d] = true
	}
	for _, f := range AllFamilies {
		if DescribeFamily(f) == "" {
			t.Errorf("DescribeFamily(%v) empty", f)
		}
	}
	if DescribeFamily(NoFamily) != "" {
		t.Error("NoFamily should have no description")
	}
}
