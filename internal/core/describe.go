package core

// Describe returns the §4 prose characterization of a pattern, used by
// the CLI and documentation surfaces.
func Describe(p Pattern) string {
	switch p {
	case Flatliner:
		return "Practically frozen: the schema is born at the originating " +
			"version of the project and all of its (little) change happens " +
			"in that first month, leaving a flat line for the rest of the " +
			"project's life (Def. 4.1)."
	case RadicalSign:
		return "Born early and rising to (usually all of) its total change " +
			"in a sharp vault right after birth, followed by a long frozen " +
			"tail — the most populous pattern (Def. 4.2)."
	case Sigmoid:
		return "Born in the middle of the project's life with a very sharp " +
			"rise to the top band at birth and a long frozen tail — the " +
			"archetypal shape all the almost-no-evolution patterns vary on " +
			"(Def. 4.3)."
	case LateRiser:
		return "Born late (after three quarters of the project's life) with " +
			"very little change afterwards; the schema's life is summarized " +
			"by one late vault (Def. 4.4)."
	case QuantumSteps:
		return "A few focused points of change (at most 3 active months) on " +
			"the journey from an early-or-middle birth to the top band — " +
			"rare but regular steps (Def. 4.5)."
	case RegularlyCurated:
		return "Consistently maintained: more than 3 active growth months " +
			"spread between birth and a middle-or-late top band, with the " +
			"highest change volumes of the corpus (Def. 4.6)."
	case Siesta:
		return "Born early at a significant share of its total change, then " +
			"idle for a very long time, and finally changed again late in " +
			"the project's life (Def. 4.7)."
	case SmokingFunnel:
		return "Born mid-life at a medium share of its total change and " +
			"densely evolved through a fair interval, with change continuing " +
			"into the tail (Def. 4.8)."
	case Unclassified:
		return "No formal pattern definition fits this label profile exactly."
	}
	return ""
}

// DescribeFamily returns the §4 prose characterization of a family.
func DescribeFamily(f Family) string {
	switch f {
	case BeQuickOrBeDead:
		return "Very focused change close to the point of schema birth; the " +
			"member patterns differ only in when that birth happens. Two " +
			"thirds of the corpus."
	case StairwayToHeaven:
		return "A fairly regular rate of change with steps distributed over " +
			"time; the member patterns differ in the density of the steps. " +
			"A quarter of the corpus."
	case ScaredToFallAsleepAgain:
		return "Change that arrives (or resumes) late in the project's " +
			"life. About a tenth of the corpus."
	}
	return ""
}
