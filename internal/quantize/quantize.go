// Package quantize maps the continuous time-related measures onto the
// ordinal labels of Table 1 of the paper. The cut points live in a Scheme
// value so that the label-sensitivity ablation can perturb them; the
// paper's exact limits are DefaultScheme.
package quantize

import (
	"fmt"

	"schemaevo/internal/metrics"
)

// BirthVolumeClass labels the fraction of total activity at schema birth.
type BirthVolumeClass int

// Birth-volume labels (Table 1, row 1).
const (
	BirthVolLow  BirthVolumeClass = iota // <= 0.25
	BirthVolFair                         // (0.25 .. 0.75]
	BirthVolHigh                         // (0.75 .. 1)
	BirthVolFull                         // exactly 1
)

func (c BirthVolumeClass) String() string {
	return [...]string{"low", "fair", "high", "full"}[c]
}

// TimingClass labels a time point on normalized project time. It is used
// both for the point of schema birth and for top-band attainment.
type TimingClass int

// Timing labels (Table 1, rows 2-3).
const (
	TimingVP0    TimingClass = iota // the originating month, V_p^0
	TimingEarly                     // (0 .. 0.25]
	TimingMiddle                    // (0.25 .. 0.75]
	TimingLate                      // > 0.75
)

func (c TimingClass) String() string {
	return [...]string{"vp0", "early", "middle", "late"}[c]
}

// GrowthIntervalClass labels the normalized interval from schema birth to
// top-band attainment.
type GrowthIntervalClass int

// Growth-interval labels (Table 1, row 4).
const (
	GrowthZero     GrowthIntervalClass = iota // exactly 0
	GrowthSoon                                // (0 .. 0.1]
	GrowthFair                                // (0.1 .. 0.35]
	GrowthLong                                // (0.35 .. 0.75]
	GrowthVeryLong                            // > 0.75
)

func (c GrowthIntervalClass) String() string {
	return [...]string{"zero", "soon", "fair", "long", "vlong"}[c]
}

// TailClass labels the normalized interval from top-band attainment to
// the end of the project.
type TailClass int

// Tail labels (Table 1, row 5).
const (
	TailSoon TailClass = iota // <= 0.25
	TailFair                  // (0.25 .. 0.75]
	TailLong                  // (0.75 .. 1)
	TailFull                  // exactly 1 (top band attained at V_p^0)
)

func (c TailClass) String() string {
	return [...]string{"soon", "fair", "long", "full"}[c]
}

// ActiveGrowthClass labels active months as a fraction of the growth
// period.
type ActiveGrowthClass int

// Active-growth labels (Table 1, row 6).
const (
	ActGrowthZero ActiveGrowthClass = iota // exactly 0
	ActGrowthFew                           // (0 .. 0.2]
	ActGrowthFair                          // (0.2 .. 0.75]
	ActGrowthHigh                          // > 0.75
)

func (c ActiveGrowthClass) String() string {
	return [...]string{"zero", "few", "fair", "high"}[c]
}

// ActivePUPClass labels active months as a fraction of the PUP.
type ActivePUPClass int

// Active-per-PUP labels (Table 1, row 7).
const (
	ActPUPZero  ActivePUPClass = iota // exactly 0
	ActPUPFair                        // (0 .. 0.08]
	ActPUPHigh                        // (0.08 .. 0.5]
	ActPUPUltra                       // > 0.5
)

func (c ActivePUPClass) String() string {
	return [...]string{"zero", "fair", "high", "ultra"}[c]
}

// Scheme holds the quantization cut points. The zero value is invalid;
// use DefaultScheme (the paper's Table 1) or derive a perturbed copy.
type Scheme struct {
	// BirthVolLowMax and BirthVolFairMax bound the low and fair birth
	// volume classes (high runs to, but not including, 1).
	BirthVolLowMax  float64
	BirthVolFairMax float64
	// TimingEarlyMax and TimingMiddleMax bound the early and middle
	// timing classes.
	TimingEarlyMax  float64
	TimingMiddleMax float64
	// GrowthSoonMax, GrowthFairMax, GrowthLongMax bound the growth
	// interval classes.
	GrowthSoonMax float64
	GrowthFairMax float64
	GrowthLongMax float64
	// TailSoonMax and TailFairMax bound the tail classes.
	TailSoonMax float64
	TailFairMax float64
	// ActGrowthFewMax and ActGrowthFairMax bound the active-growth
	// classes.
	ActGrowthFewMax  float64
	ActGrowthFairMax float64
	// ActPUPFairMax and ActPUPHighMax bound the active-per-PUP classes.
	ActPUPFairMax float64
	ActPUPHighMax float64
}

// DefaultScheme is the quantization of Table 1 of the paper.
func DefaultScheme() Scheme {
	return Scheme{
		BirthVolLowMax:   0.25,
		BirthVolFairMax:  0.75,
		TimingEarlyMax:   0.25,
		TimingMiddleMax:  0.75,
		GrowthSoonMax:    0.10,
		GrowthFairMax:    0.35,
		GrowthLongMax:    0.75,
		TailSoonMax:      0.25,
		TailFairMax:      0.75,
		ActGrowthFewMax:  0.20,
		ActGrowthFairMax: 0.75,
		ActPUPFairMax:    0.08,
		ActPUPHighMax:    0.50,
	}
}

const eps = 1e-9

// Labels is the full ordinal profile of one project.
type Labels struct {
	BirthVolume        BirthVolumeClass
	BirthTiming        TimingClass
	TopBandPoint       TimingClass
	IntervalBirthToTop GrowthIntervalClass
	IntervalTopToEnd   TailClass
	ActivePctGrowth    ActiveGrowthClass
	ActivePctPUP       ActivePUPClass
	// HasVault and ActiveGrowthMonths are carried over verbatim: the
	// pattern definitions of §4 use them alongside the ordinal labels.
	HasVault           bool
	ActiveGrowthMonths int
}

// Compute quantizes the measures under the scheme. The measures must
// describe a project with schema activity (HasSchema).
func Compute(m metrics.Measures, s Scheme) Labels {
	return Labels{
		BirthVolume:        s.birthVolume(m.BirthVolumePct),
		BirthTiming:        s.timing(m.BirthMonth, m.BirthPct),
		TopBandPoint:       s.timing(m.TopBandMonth, m.TopBandPct),
		IntervalBirthToTop: s.growthInterval(m.TopBandMonth-m.BirthMonth, m.IntervalBirthToTopPct),
		IntervalTopToEnd:   s.tail(m.TopBandMonth, m.IntervalTopToEndPct),
		ActivePctGrowth:    s.activeGrowth(m.ActiveGrowthMonths, m.ActivePctGrowth),
		ActivePctPUP:       s.activePUP(m.ActiveGrowthMonths, m.ActivePctPUP),
		HasVault:           m.HasVault,
		ActiveGrowthMonths: m.ActiveGrowthMonths,
	}
}

func (s Scheme) birthVolume(v float64) BirthVolumeClass {
	switch {
	case v >= 1-eps:
		return BirthVolFull
	case v > s.BirthVolFairMax:
		return BirthVolHigh
	case v > s.BirthVolLowMax:
		return BirthVolFair
	default:
		return BirthVolLow
	}
}

// timing distinguishes V_p^0 by the month index, not the percentage: in a
// long project several early months map to tiny percentages, but only
// month zero is the originating version.
func (s Scheme) timing(month int, pct float64) TimingClass {
	switch {
	case month == 0:
		return TimingVP0
	case pct <= s.TimingEarlyMax+eps:
		return TimingEarly
	case pct <= s.TimingMiddleMax+eps:
		return TimingMiddle
	default:
		return TimingLate
	}
}

// growthInterval uses the month distance for the exact-zero class, so
// that "birth and top band in the same month" is Zero regardless of
// rounding.
func (s Scheme) growthInterval(months int, pct float64) GrowthIntervalClass {
	switch {
	case months <= 0:
		return GrowthZero
	case pct <= s.GrowthSoonMax+eps:
		return GrowthSoon
	case pct <= s.GrowthFairMax+eps:
		return GrowthFair
	case pct <= s.GrowthLongMax+eps:
		return GrowthLong
	default:
		return GrowthVeryLong
	}
}

// tail treats "top band attained at V_p^0" as the Full class, matching
// Table 1 where Full (tail = the whole project life) has exactly the
// flatliner population.
func (s Scheme) tail(topBandMonth int, pct float64) TailClass {
	switch {
	case topBandMonth == 0:
		return TailFull
	case pct > s.TailFairMax:
		return TailLong
	case pct > s.TailSoonMax:
		return TailFair
	default:
		return TailSoon
	}
}

func (s Scheme) activeGrowth(activeMonths int, pct float64) ActiveGrowthClass {
	switch {
	case activeMonths == 0:
		return ActGrowthZero
	case pct <= s.ActGrowthFewMax+eps:
		return ActGrowthFew
	case pct <= s.ActGrowthFairMax+eps:
		return ActGrowthFair
	default:
		return ActGrowthHigh
	}
}

func (s Scheme) activePUP(activeMonths int, pct float64) ActivePUPClass {
	switch {
	case activeMonths == 0:
		return ActPUPZero
	case pct <= s.ActPUPFairMax+eps:
		return ActPUPFair
	case pct <= s.ActPUPHighMax+eps:
		return ActPUPHigh
	default:
		return ActPUPUltra
	}
}

// FeatureNames lists the label dimensions in a fixed order, used by the
// decision tree and the domain-space report.
var FeatureNames = []string{
	"BirthVolume", "BirthTiming", "TopBandPoint",
	"IntervalBirthToTop", "IntervalTopToEnd",
	"ActivePctGrowth", "ActivePctPUP", "HasVault",
}

// Features renders the labels as a string-valued feature vector aligned
// with FeatureNames.
func (l Labels) Features() []string {
	vault := "false"
	if l.HasVault {
		vault = "true"
	}
	return []string{
		l.BirthVolume.String(), l.BirthTiming.String(), l.TopBandPoint.String(),
		l.IntervalBirthToTop.String(), l.IntervalTopToEnd.String(),
		l.ActivePctGrowth.String(), l.ActivePctPUP.String(), vault,
	}
}

// Validate checks that a (possibly perturbed) scheme's cut points are
// ordered and inside (0,1); ablations that mutate cut points should
// validate before classifying.
func (s Scheme) Validate() error {
	type bound struct {
		name string
		v    float64
	}
	inUnit := []bound{
		{"BirthVolLowMax", s.BirthVolLowMax}, {"BirthVolFairMax", s.BirthVolFairMax},
		{"TimingEarlyMax", s.TimingEarlyMax}, {"TimingMiddleMax", s.TimingMiddleMax},
		{"GrowthSoonMax", s.GrowthSoonMax}, {"GrowthFairMax", s.GrowthFairMax},
		{"GrowthLongMax", s.GrowthLongMax}, {"TailSoonMax", s.TailSoonMax},
		{"TailFairMax", s.TailFairMax}, {"ActGrowthFewMax", s.ActGrowthFewMax},
		{"ActGrowthFairMax", s.ActGrowthFairMax}, {"ActPUPFairMax", s.ActPUPFairMax},
		{"ActPUPHighMax", s.ActPUPHighMax},
	}
	for _, b := range inUnit {
		if b.v <= 0 || b.v >= 1 {
			return fmt.Errorf("quantize: %s = %v outside (0,1)", b.name, b.v)
		}
	}
	ordered := [][2]bound{
		{{"BirthVolLowMax", s.BirthVolLowMax}, {"BirthVolFairMax", s.BirthVolFairMax}},
		{{"TimingEarlyMax", s.TimingEarlyMax}, {"TimingMiddleMax", s.TimingMiddleMax}},
		{{"GrowthSoonMax", s.GrowthSoonMax}, {"GrowthFairMax", s.GrowthFairMax}},
		{{"GrowthFairMax", s.GrowthFairMax}, {"GrowthLongMax", s.GrowthLongMax}},
		{{"TailSoonMax", s.TailSoonMax}, {"TailFairMax", s.TailFairMax}},
		{{"ActGrowthFewMax", s.ActGrowthFewMax}, {"ActGrowthFairMax", s.ActGrowthFairMax}},
		{{"ActPUPFairMax", s.ActPUPFairMax}, {"ActPUPHighMax", s.ActPUPHighMax}},
	}
	for _, pair := range ordered {
		if pair[0].v >= pair[1].v {
			return fmt.Errorf("quantize: %s (%v) must be below %s (%v)",
				pair[0].name, pair[0].v, pair[1].name, pair[1].v)
		}
	}
	return nil
}
