package quantize

import (
	"math/rand"
	"testing"

	"schemaevo/internal/metrics"
)

func TestBirthVolumeClasses(t *testing.T) {
	s := DefaultScheme()
	cases := []struct {
		v    float64
		want BirthVolumeClass
	}{
		{0.05, BirthVolLow},
		{0.25, BirthVolLow},
		{0.26, BirthVolFair},
		{0.75, BirthVolFair},
		{0.76, BirthVolHigh},
		{0.999, BirthVolHigh},
		{1.0, BirthVolFull},
	}
	for _, c := range cases {
		if got := s.birthVolume(c.v); got != c.want {
			t.Errorf("birthVolume(%f) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTimingClasses(t *testing.T) {
	s := DefaultScheme()
	if got := s.timing(0, 0); got != TimingVP0 {
		t.Errorf("month 0 = %v", got)
	}
	// Month 1 of a long project maps to a tiny pct but is Early, not VP0.
	if got := s.timing(1, 0.01); got != TimingEarly {
		t.Errorf("month 1 = %v", got)
	}
	if got := s.timing(5, 0.25); got != TimingEarly {
		t.Errorf("pct 0.25 = %v", got)
	}
	if got := s.timing(6, 0.26); got != TimingMiddle {
		t.Errorf("pct 0.26 = %v", got)
	}
	if got := s.timing(18, 0.75); got != TimingMiddle {
		t.Errorf("pct 0.75 = %v", got)
	}
	if got := s.timing(19, 0.76); got != TimingLate {
		t.Errorf("pct 0.76 = %v", got)
	}
}

func TestGrowthIntervalClasses(t *testing.T) {
	s := DefaultScheme()
	if got := s.growthInterval(0, 0); got != GrowthZero {
		t.Errorf("zero months = %v", got)
	}
	cases := []struct {
		pct  float64
		want GrowthIntervalClass
	}{
		{0.05, GrowthSoon}, {0.10, GrowthSoon},
		{0.11, GrowthFair}, {0.35, GrowthFair},
		{0.36, GrowthLong}, {0.75, GrowthLong},
		{0.76, GrowthVeryLong}, {0.99, GrowthVeryLong},
	}
	for _, c := range cases {
		if got := s.growthInterval(3, c.pct); got != c.want {
			t.Errorf("growthInterval(%f) = %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestTailClasses(t *testing.T) {
	s := DefaultScheme()
	if got := s.tail(0, 1.0); got != TailFull {
		t.Errorf("top at VP0 = %v", got)
	}
	cases := []struct {
		pct  float64
		want TailClass
	}{
		{0.0, TailSoon}, {0.25, TailSoon},
		{0.26, TailFair}, {0.75, TailFair},
		{0.76, TailLong}, {0.99, TailLong},
	}
	for _, c := range cases {
		if got := s.tail(5, c.pct); got != c.want {
			t.Errorf("tail(%f) = %v, want %v", c.pct, got, c.want)
		}
	}
}

func TestActiveClasses(t *testing.T) {
	s := DefaultScheme()
	if s.activeGrowth(0, 0) != ActGrowthZero || s.activePUP(0, 0) != ActPUPZero {
		t.Error("zero active months must be Zero even at pct 0")
	}
	if got := s.activeGrowth(1, 0.2); got != ActGrowthFew {
		t.Errorf("growth 0.2 = %v", got)
	}
	if got := s.activeGrowth(3, 0.5); got != ActGrowthFair {
		t.Errorf("growth 0.5 = %v", got)
	}
	if got := s.activeGrowth(9, 0.9); got != ActGrowthHigh {
		t.Errorf("growth 0.9 = %v", got)
	}
	if got := s.activePUP(1, 0.05); got != ActPUPFair {
		t.Errorf("pup 0.05 = %v", got)
	}
	if got := s.activePUP(4, 0.3); got != ActPUPHigh {
		t.Errorf("pup 0.3 = %v", got)
	}
	if got := s.activePUP(20, 0.7); got != ActPUPUltra {
		t.Errorf("pup 0.7 = %v", got)
	}
}

func TestComputeFlatliner(t *testing.T) {
	m := metrics.Measures{
		HasSchema:           true,
		PUPMonths:           24,
		BirthMonth:          0,
		BirthVolumePct:      1.0,
		TopBandMonth:        0,
		IntervalTopToEndPct: 1.0,
		HasVault:            true,
	}
	l := Compute(m, DefaultScheme())
	if l.BirthVolume != BirthVolFull || l.BirthTiming != TimingVP0 ||
		l.TopBandPoint != TimingVP0 || l.IntervalBirthToTop != GrowthZero ||
		l.IntervalTopToEnd != TailFull || l.ActivePctGrowth != ActGrowthZero {
		t.Errorf("flatliner labels: %+v", l)
	}
	if !l.HasVault || l.ActiveGrowthMonths != 0 {
		t.Errorf("carried fields: %+v", l)
	}
}

func TestFeaturesAlignWithNames(t *testing.T) {
	l := Labels{HasVault: true}
	f := l.Features()
	if len(f) != len(FeatureNames) {
		t.Fatalf("features %d vs names %d", len(f), len(FeatureNames))
	}
	if f[7] != "true" {
		t.Errorf("vault feature = %q", f[7])
	}
	if f[0] != "low" || f[1] != "vp0" {
		t.Errorf("zero-value features: %v", f)
	}
}

func TestClassStrings(t *testing.T) {
	if BirthVolFull.String() != "full" || TimingLate.String() != "late" ||
		GrowthVeryLong.String() != "vlong" || TailFull.String() != "full" ||
		ActGrowthHigh.String() != "high" || ActPUPUltra.String() != "ultra" {
		t.Error("class strings wrong")
	}
}

// TestComputeTotalCoverage: every syntactically valid measure vector gets
// some label in every dimension, and labels are monotone in their inputs.
func TestComputeTotalCoverage(t *testing.T) {
	s := DefaultScheme()
	rng := rand.New(rand.NewSource(13))
	prevVol := BirthVolLow
	for trial := 0; trial < 2000; trial++ {
		pup := 13 + rng.Intn(150)
		birth := rng.Intn(pup)
		top := birth + rng.Intn(pup-birth)
		m := metrics.Measures{
			HasSchema:          true,
			PUPMonths:          pup,
			BirthMonth:         birth,
			BirthPct:           metrics.PctOfPUP(birth, pup),
			BirthVolumePct:     rng.Float64()*0.999 + 0.001,
			TopBandMonth:       top,
			TopBandPct:         metrics.PctOfPUP(top, pup),
			ActiveGrowthMonths: rng.Intn(max(1, top-birth)),
			ActivePctGrowth:    rng.Float64(),
			ActivePctPUP:       rng.Float64() * 0.6,
		}
		m.IntervalBirthToTopPct = m.TopBandPct - m.BirthPct
		m.IntervalTopToEndPct = 1 - m.TopBandPct
		l := Compute(m, s)
		// Labels must be in range (String() would panic otherwise).
		_ = l.BirthVolume.String()
		_ = l.BirthTiming.String()
		_ = l.TopBandPoint.String()
		_ = l.IntervalBirthToTop.String()
		_ = l.IntervalTopToEnd.String()
		_ = l.ActivePctGrowth.String()
		_ = l.ActivePctPUP.String()
		// Consistency: VP0 iff month 0.
		if (l.BirthTiming == TimingVP0) != (birth == 0) {
			t.Fatalf("vp0 mismatch: birth %d label %v", birth, l.BirthTiming)
		}
		if (l.IntervalBirthToTop == GrowthZero) != (top == birth) {
			t.Fatalf("zero-interval mismatch: %d..%d label %v", birth, top, l.IntervalBirthToTop)
		}
		// Monotone birth volume labeling.
		if trial > 0 && m.BirthVolumePct > 0.999 && prevVol > l.BirthVolume {
			t.Fatalf("volume label not monotone")
		}
		prevVol = l.BirthVolume
	}
}

func TestSchemeValidate(t *testing.T) {
	if err := DefaultScheme().Validate(); err != nil {
		t.Fatalf("default scheme invalid: %v", err)
	}
	bad := DefaultScheme()
	bad.TimingEarlyMax = 0.9 // above TimingMiddleMax
	if err := bad.Validate(); err == nil {
		t.Error("disordered cut points accepted")
	}
	bad2 := DefaultScheme()
	bad2.GrowthSoonMax = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero cut point accepted")
	}
	bad3 := DefaultScheme()
	bad3.TailFairMax = 1.5
	if err := bad3.Validate(); err == nil {
		t.Error("cut point above 1 accepted")
	}
}
