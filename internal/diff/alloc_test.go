package diff

import (
	"testing"

	"schemaevo/internal/schema"
)

// Allocation budget for the per-version diff. With pooled name scratch and
// the copy-on-write pointer fast path, diffing two versions that share
// most tables allocates only the Delta itself plus the per-changed-table
// maps — a budget, not an exact count, so leaner is fine and a jump is a
// regression.
func TestAllocBudgetDiffTwoSchemas(t *testing.T) {
	oldS, _ := schema.ParseAndBuild(`
CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);
CREATE TABLE orgs (id INT PRIMARY KEY, title TEXT);
CREATE TABLE audit (id INT PRIMARY KEY, entry TEXT, at TIMESTAMP);
`)
	// The common reconstruction shape: the new version shares two tables
	// pointer-identically (copy-on-write) and changes one.
	newS := oldS.CloneCOW()
	changed, _ := schema.ParseAndBuild(`CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT, age INT);`)
	ut, _ := changed.Table("users")
	newS.AddTable(ut)

	var d *Delta
	allocs := testing.AllocsPerRun(200, func() {
		d = Schemas(oldS, newS)
	})
	if d.Total() != 1 {
		t.Fatalf("sanity: delta total = %d, want 1", d.Total())
	}
	const budget = 12
	if allocs > budget {
		t.Errorf("diffing two mostly-shared schemas: %.1f allocs/run, budget %d", allocs, budget)
	}
}
