// Package diff detects logical-schema change between two schema versions.
//
// The unit of measurement is the paper's (§3.2): the number of affected
// attributes — born with new tables, injected into existing ones, deleted
// with removed tables, ejected from surviving ones, with their data type
// changed, or their participation in a primary/foreign key updated. The
// breakdown into expansion vs maintenance follows §6.3.
package diff

import (
	"fmt"
	"sort"
	"sync"

	"schemaevo/internal/schema"
)

// AttrChange records one affected attribute for detailed reporting.
type AttrChange struct {
	Table string
	Attr  string
	Kind  ChangeKind
}

func (a AttrChange) String() string {
	return fmt.Sprintf("%s.%s: %s", a.Table, a.Attr, a.Kind)
}

// ChangeKind classifies how an attribute was affected.
type ChangeKind int

// The attribute-level change kinds of the paper's measurement unit.
const (
	// BornWithTable: the attribute arrived as part of a newly added table.
	BornWithTable ChangeKind = iota
	// Injected: the attribute was added to a pre-existing table.
	Injected
	// DeletedWithTable: the attribute vanished because its table was dropped.
	DeletedWithTable
	// Ejected: the attribute was removed from a surviving table.
	Ejected
	// TypeChanged: the attribute's (normalized) data type changed.
	TypeChanged
	// KeyChanged: the attribute's participation in the primary key or in
	// some foreign key changed.
	KeyChanged
)

func (k ChangeKind) String() string {
	switch k {
	case BornWithTable:
		return "born-with-table"
	case Injected:
		return "injected"
	case DeletedWithTable:
		return "deleted-with-table"
	case Ejected:
		return "ejected"
	case TypeChanged:
		return "type-changed"
	case KeyChanged:
		return "key-changed"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Delta is the attribute-level difference between two schema versions.
type Delta struct {
	// TablesAdded and TablesDropped list affected table names.
	TablesAdded   []string
	TablesDropped []string
	// Counts per change kind.
	NBornWithTable    int
	NInjected         int
	NDeletedWithTable int
	NEjected          int
	NTypeChanged      int
	NKeyChanged       int
	// Changes carries the per-attribute detail, in deterministic order.
	Changes []AttrChange
}

// Expansion returns the attributes counted as expansion (§6.3): births
// with new tables plus injections into existing ones.
func (d *Delta) Expansion() int { return d.NBornWithTable + d.NInjected }

// Maintenance returns the attributes counted as maintenance (§6.3):
// deletions (with or without their table), data-type changes and key
// participation changes.
func (d *Delta) Maintenance() int {
	return d.NDeletedWithTable + d.NEjected + d.NTypeChanged + d.NKeyChanged
}

// Total returns the total number of affected attributes — the paper's
// unit of schema-evolution volume.
func (d *Delta) Total() int { return d.Expansion() + d.Maintenance() }

// IsZero reports whether no logical change was detected.
func (d *Delta) IsZero() bool { return d.Total() == 0 }

func (d *Delta) add(table, attr string, kind ChangeKind) {
	d.Changes = append(d.Changes, AttrChange{Table: table, Attr: attr, Kind: kind})
	switch kind {
	case BornWithTable:
		d.NBornWithTable++
	case Injected:
		d.NInjected++
	case DeletedWithTable:
		d.NDeletedWithTable++
	case Ejected:
		d.NEjected++
	case TypeChanged:
		d.NTypeChanged++
	case KeyChanged:
		d.NKeyChanged++
	}
}

// scratch holds the per-call name buffers of Schemas, pooled so the hot
// per-version diff allocates only its result.
type scratch struct {
	oldNames, newNames []string
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Schemas computes the delta from old to new. Either argument may be nil,
// meaning the empty schema (so Schemas(nil, s) measures schema birth).
// Tables and attributes are matched by name; a rename therefore counts as
// deletion plus addition, matching snapshot-based extraction from real
// histories.
//
// Tables that are pointer-identical in both schemas — the common case
// under copy-on-write reconstruction — are skipped without comparing a
// single column.
func Schemas(old, new *schema.Schema) *Delta {
	d := &Delta{}
	sc := scratchPool.Get().(*scratch)
	newNames := sortedTableNames(new, sc.newNames[:0])
	oldNames := sortedTableNames(old, sc.oldNames[:0])

	for i, name := range newNames {
		if i > 0 && name == newNames[i-1] {
			continue // duplicate order entry (rename collision)
		}
		nt, _ := tableOf(new, name)
		ot, existed := tableOf(old, name)
		if !existed {
			d.TablesAdded = append(d.TablesAdded, name)
			for _, c := range nt.Columns {
				d.add(name, c.Name, BornWithTable)
			}
			continue
		}
		if ot == nt {
			continue
		}
		diffTable(d, ot, nt)
	}
	for i, name := range oldNames {
		if i > 0 && name == oldNames[i-1] {
			continue
		}
		if _, survives := tableOf(new, name); !survives {
			d.TablesDropped = append(d.TablesDropped, name)
			ot, _ := tableOf(old, name)
			for _, c := range ot.Columns {
				d.add(name, c.Name, DeletedWithTable)
			}
		}
	}
	sc.oldNames, sc.newNames = oldNames[:0], newNames[:0]
	scratchPool.Put(sc)
	return d
}

func tableOf(s *schema.Schema, name string) (*schema.Table, bool) {
	if s == nil {
		return nil, false
	}
	return s.Table(name)
}

// sortedTableNames appends s's table names to buf and sorts them; the
// result may contain duplicates when the insertion order does (callers
// skip adjacent repeats).
func sortedTableNames(s *schema.Schema, buf []string) []string {
	if s == nil {
		return buf
	}
	buf = s.AppendTableNames(buf)
	sort.Strings(buf)
	return buf
}

// diffTable diffs one surviving table. Each attribute is counted at most
// once, with data-type change taking precedence over key change when both
// apply — the paper counts affected attributes, not individual edits.
func diffTable(d *Delta, ot, nt *schema.Table) {
	oldCols := columnMap(ot)
	newCols := columnMap(nt)
	oldKeys := keyMembership(ot)
	newKeys := keyMembership(nt)

	for _, c := range nt.Columns {
		oc, existed := oldCols[c.Name]
		if !existed {
			d.add(nt.Name, c.Name, Injected)
			continue
		}
		switch {
		case oc.Type != c.Type:
			d.add(nt.Name, c.Name, TypeChanged)
		case oldKeys[c.Name] != newKeys[c.Name]:
			d.add(nt.Name, c.Name, KeyChanged)
		}
	}
	for _, c := range ot.Columns {
		if _, survives := newCols[c.Name]; !survives {
			d.add(nt.Name, c.Name, Ejected)
		}
	}
}

// keyMembership encodes each column's participation in the primary key
// and in foreign keys as a compact comparable value. A table with no keys
// yields nil (lookups on a nil map read as zero).
func keyMembership(t *schema.Table) map[string]uint8 {
	if len(t.PrimaryKey) == 0 && len(t.ForeignKeys) == 0 {
		return nil
	}
	m := make(map[string]uint8, len(t.Columns))
	for _, c := range t.PrimaryKey {
		m[c] |= 1
	}
	for _, fk := range t.ForeignKeys {
		for _, c := range fk.Columns {
			m[c] |= 2
		}
	}
	return m
}

func columnMap(t *schema.Table) map[string]*schema.Column {
	m := make(map[string]*schema.Column, len(t.Columns))
	for i := range t.Columns {
		m[t.Columns[i].Name] = &t.Columns[i]
	}
	return m
}
