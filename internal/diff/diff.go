// Package diff detects logical-schema change between two schema versions.
//
// The unit of measurement is the paper's (§3.2): the number of affected
// attributes — born with new tables, injected into existing ones, deleted
// with removed tables, ejected from surviving ones, with their data type
// changed, or their participation in a primary/foreign key updated. The
// breakdown into expansion vs maintenance follows §6.3.
package diff

import (
	"fmt"
	"sort"

	"schemaevo/internal/schema"
)

// AttrChange records one affected attribute for detailed reporting.
type AttrChange struct {
	Table string
	Attr  string
	Kind  ChangeKind
}

func (a AttrChange) String() string {
	return fmt.Sprintf("%s.%s: %s", a.Table, a.Attr, a.Kind)
}

// ChangeKind classifies how an attribute was affected.
type ChangeKind int

// The attribute-level change kinds of the paper's measurement unit.
const (
	// BornWithTable: the attribute arrived as part of a newly added table.
	BornWithTable ChangeKind = iota
	// Injected: the attribute was added to a pre-existing table.
	Injected
	// DeletedWithTable: the attribute vanished because its table was dropped.
	DeletedWithTable
	// Ejected: the attribute was removed from a surviving table.
	Ejected
	// TypeChanged: the attribute's (normalized) data type changed.
	TypeChanged
	// KeyChanged: the attribute's participation in the primary key or in
	// some foreign key changed.
	KeyChanged
)

func (k ChangeKind) String() string {
	switch k {
	case BornWithTable:
		return "born-with-table"
	case Injected:
		return "injected"
	case DeletedWithTable:
		return "deleted-with-table"
	case Ejected:
		return "ejected"
	case TypeChanged:
		return "type-changed"
	case KeyChanged:
		return "key-changed"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Delta is the attribute-level difference between two schema versions.
type Delta struct {
	// TablesAdded and TablesDropped list affected table names.
	TablesAdded   []string
	TablesDropped []string
	// Counts per change kind.
	NBornWithTable    int
	NInjected         int
	NDeletedWithTable int
	NEjected          int
	NTypeChanged      int
	NKeyChanged       int
	// Changes carries the per-attribute detail, in deterministic order.
	Changes []AttrChange
}

// Expansion returns the attributes counted as expansion (§6.3): births
// with new tables plus injections into existing ones.
func (d *Delta) Expansion() int { return d.NBornWithTable + d.NInjected }

// Maintenance returns the attributes counted as maintenance (§6.3):
// deletions (with or without their table), data-type changes and key
// participation changes.
func (d *Delta) Maintenance() int {
	return d.NDeletedWithTable + d.NEjected + d.NTypeChanged + d.NKeyChanged
}

// Total returns the total number of affected attributes — the paper's
// unit of schema-evolution volume.
func (d *Delta) Total() int { return d.Expansion() + d.Maintenance() }

// IsZero reports whether no logical change was detected.
func (d *Delta) IsZero() bool { return d.Total() == 0 }

func (d *Delta) add(table, attr string, kind ChangeKind) {
	d.Changes = append(d.Changes, AttrChange{Table: table, Attr: attr, Kind: kind})
	switch kind {
	case BornWithTable:
		d.NBornWithTable++
	case Injected:
		d.NInjected++
	case DeletedWithTable:
		d.NDeletedWithTable++
	case Ejected:
		d.NEjected++
	case TypeChanged:
		d.NTypeChanged++
	case KeyChanged:
		d.NKeyChanged++
	}
}

// Schemas computes the delta from old to new. Either argument may be nil,
// meaning the empty schema (so Schemas(nil, s) measures schema birth).
// Tables and attributes are matched by name; a rename therefore counts as
// deletion plus addition, matching snapshot-based extraction from real
// histories.
func Schemas(old, new *schema.Schema) *Delta {
	d := &Delta{}
	oldTables := tableMap(old)
	newTables := tableMap(new)

	for _, name := range sortedNames(newTables) {
		nt := newTables[name]
		ot, existed := oldTables[name]
		if !existed {
			d.TablesAdded = append(d.TablesAdded, name)
			for _, c := range nt.Columns {
				d.add(name, c.Name, BornWithTable)
			}
			continue
		}
		diffTable(d, ot, nt)
	}
	for _, name := range sortedNames(oldTables) {
		if _, survives := newTables[name]; !survives {
			d.TablesDropped = append(d.TablesDropped, name)
			ot := oldTables[name]
			for _, c := range ot.Columns {
				d.add(name, c.Name, DeletedWithTable)
			}
		}
	}
	return d
}

// diffTable diffs one surviving table. Each attribute is counted at most
// once, with data-type change taking precedence over key change when both
// apply — the paper counts affected attributes, not individual edits.
func diffTable(d *Delta, ot, nt *schema.Table) {
	oldCols := columnMap(ot)
	newCols := columnMap(nt)
	oldKeys := keyMembership(ot)
	newKeys := keyMembership(nt)

	for _, c := range nt.Columns {
		oc, existed := oldCols[c.Name]
		if !existed {
			d.add(nt.Name, c.Name, Injected)
			continue
		}
		switch {
		case oc.Type != c.Type:
			d.add(nt.Name, c.Name, TypeChanged)
		case oldKeys[c.Name] != newKeys[c.Name]:
			d.add(nt.Name, c.Name, KeyChanged)
		}
	}
	for _, c := range ot.Columns {
		if _, survives := newCols[c.Name]; !survives {
			d.add(nt.Name, c.Name, Ejected)
		}
	}
}

// keyMembership encodes each column's participation in the primary key
// and in foreign keys as a compact comparable value.
func keyMembership(t *schema.Table) map[string]uint8 {
	m := make(map[string]uint8, len(t.Columns))
	for _, c := range t.PrimaryKey {
		m[c] |= 1
	}
	for _, fk := range t.ForeignKeys {
		for _, c := range fk.Columns {
			m[c] |= 2
		}
	}
	return m
}

func tableMap(s *schema.Schema) map[string]*schema.Table {
	m := make(map[string]*schema.Table)
	if s == nil {
		return m
	}
	for _, t := range s.Tables() {
		m[t.Name] = t
	}
	return m
}

func columnMap(t *schema.Table) map[string]*schema.Column {
	m := make(map[string]*schema.Column, len(t.Columns))
	for i := range t.Columns {
		m[t.Columns[i].Name] = &t.Columns[i]
	}
	return m
}

func sortedNames(m map[string]*schema.Table) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
