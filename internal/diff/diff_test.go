package diff

import (
	"testing"
	"testing/quick"

	"schemaevo/internal/schema"
)

func buildSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, notes := schema.ParseAndBuild(src)
	if len(notes) != 0 {
		t.Fatalf("notes building %q: %v", src, notes)
	}
	return s
}

func TestBirthFromEmpty(t *testing.T) {
	s := buildSchema(t, `CREATE TABLE a (x INT, y TEXT); CREATE TABLE b (z INT);`)
	d := Schemas(nil, s)
	if d.NBornWithTable != 3 || d.Total() != 3 {
		t.Errorf("birth delta: %+v", d)
	}
	if len(d.TablesAdded) != 2 {
		t.Errorf("tables added: %v", d.TablesAdded)
	}
	if d.Expansion() != 3 || d.Maintenance() != 0 {
		t.Errorf("expansion/maintenance: %d/%d", d.Expansion(), d.Maintenance())
	}
}

func TestNoChange(t *testing.T) {
	src := `CREATE TABLE a (x INT, y VARCHAR(10), PRIMARY KEY (x));`
	d := Schemas(buildSchema(t, src), buildSchema(t, src))
	if !d.IsZero() {
		t.Errorf("expected zero delta, got %+v changes %v", d, d.Changes)
	}
}

func TestDialectSynonymsAreNotChanges(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INTEGER, b BOOLEAN, v CHARACTER VARYING(30));`)
	new := buildSchema(t, `CREATE TABLE a (x INT, b BOOL, v VARCHAR(30));`)
	d := Schemas(old, new)
	if !d.IsZero() {
		t.Errorf("synonym re-dump produced changes: %v", d.Changes)
	}
}

func TestInjectionAndEjection(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT, gone TEXT);`)
	new := buildSchema(t, `CREATE TABLE a (x INT, fresh DATE);`)
	d := Schemas(old, new)
	if d.NInjected != 1 || d.NEjected != 1 || d.Total() != 2 {
		t.Errorf("delta: %+v changes %v", d, d.Changes)
	}
	if d.Expansion() != 1 || d.Maintenance() != 1 {
		t.Errorf("expansion/maintenance: %d/%d", d.Expansion(), d.Maintenance())
	}
}

func TestTableDrop(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT); CREATE TABLE b (p INT, q INT);`)
	new := buildSchema(t, `CREATE TABLE a (x INT);`)
	d := Schemas(old, new)
	if d.NDeletedWithTable != 2 || len(d.TablesDropped) != 1 || d.TablesDropped[0] != "b" {
		t.Errorf("delta: %+v", d)
	}
}

func TestTypeChange(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT, y VARCHAR(10));`)
	new := buildSchema(t, `CREATE TABLE a (x BIGINT, y VARCHAR(20));`)
	d := Schemas(old, new)
	if d.NTypeChanged != 2 || d.Total() != 2 {
		t.Errorf("delta: %+v changes %v", d, d.Changes)
	}
}

func TestKeyChange(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT, y INT);`)
	new := buildSchema(t, `CREATE TABLE a (x INT, y INT, PRIMARY KEY (x));`)
	d := Schemas(old, new)
	if d.NKeyChanged != 1 {
		t.Errorf("pk gain: %+v changes %v", d, d.Changes)
	}

	old2 := buildSchema(t, `CREATE TABLE b (r INT);`)
	new2 := buildSchema(t, `CREATE TABLE b (r INT REFERENCES other(id));`)
	d2 := Schemas(old2, new2)
	if d2.NKeyChanged != 1 {
		t.Errorf("fk gain: %+v changes %v", d2, d2.Changes)
	}
}

func TestTypeChangeTakesPrecedenceOverKeyChange(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT);`)
	new := buildSchema(t, `CREATE TABLE a (x BIGINT, PRIMARY KEY (x));`)
	d := Schemas(old, new)
	if d.NTypeChanged != 1 || d.NKeyChanged != 0 || d.Total() != 1 {
		t.Errorf("attribute double-counted: %+v changes %v", d, d.Changes)
	}
}

func TestRenameCountsAsDropPlusAdd(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE old_name (x INT, y INT);`)
	new := buildSchema(t, `CREATE TABLE new_name (x INT, y INT);`)
	d := Schemas(old, new)
	if d.NBornWithTable != 2 || d.NDeletedWithTable != 2 {
		t.Errorf("rename delta: %+v", d)
	}
}

func TestDeterministicOrder(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE z (a INT); CREATE TABLE m (b INT);`)
	new := buildSchema(t, `CREATE TABLE z (a INT, c INT); CREATE TABLE k (d INT);`)
	d1 := Schemas(old, new)
	d2 := Schemas(old, new)
	if len(d1.Changes) != len(d2.Changes) {
		t.Fatal("non-deterministic change count")
	}
	for i := range d1.Changes {
		if d1.Changes[i] != d2.Changes[i] {
			t.Errorf("change %d differs: %v vs %v", i, d1.Changes[i], d2.Changes[i])
		}
	}
	// Tables are visited in sorted order.
	if d1.TablesAdded[0] != "k" {
		t.Errorf("added order: %v", d1.TablesAdded)
	}
}

func TestCountsMatchDetail(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE a (x INT, y TEXT); CREATE TABLE b (p INT);`)
	new := buildSchema(t, `CREATE TABLE a (x BIGINT, z DATE); CREATE TABLE c (q INT, r INT);`)
	d := Schemas(old, new)
	byKind := map[ChangeKind]int{}
	for _, c := range d.Changes {
		byKind[c.Kind]++
	}
	if byKind[BornWithTable] != d.NBornWithTable || byKind[Injected] != d.NInjected ||
		byKind[DeletedWithTable] != d.NDeletedWithTable || byKind[Ejected] != d.NEjected ||
		byKind[TypeChanged] != d.NTypeChanged || byKind[KeyChanged] != d.NKeyChanged {
		t.Errorf("counts disagree with detail: %+v vs %v", d, byKind)
	}
	if len(d.Changes) != d.Total() {
		t.Errorf("Total()=%d but %d detailed changes", d.Total(), len(d.Changes))
	}
}

// TestDiffSymmetryProperty: swapping the arguments swaps expansion-like
// and deletion-like counts, and type/key change counts are symmetric.
func TestDiffSymmetryProperty(t *testing.T) {
	gen := func(seed uint8) *schema.Schema {
		s := schema.New()
		n := int(seed%4) + 1
		for i := 0; i < n; i++ {
			tbl := &schema.Table{Name: string(rune('a' + i))}
			cols := int(seed>>2)%3 + 1
			for j := 0; j < cols; j++ {
				typ := "int"
				if (int(seed)+i+j)%2 == 0 {
					typ = "text"
				}
				tbl.Columns = append(tbl.Columns, schema.Column{Name: string(rune('p' + j)), Type: typ})
			}
			s.AddTable(tbl)
		}
		return s
	}
	f := func(a, b uint8) bool {
		s1, s2 := gen(a), gen(b)
		d12 := Schemas(s1, s2)
		d21 := Schemas(s2, s1)
		return d12.NBornWithTable == d21.NDeletedWithTable &&
			d12.NDeletedWithTable == d21.NBornWithTable &&
			d12.NInjected == d21.NEjected &&
			d12.NEjected == d21.NInjected &&
			d12.NTypeChanged == d21.NTypeChanged &&
			d12.NKeyChanged == d21.NKeyChanged
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChangeKindStrings(t *testing.T) {
	kinds := []ChangeKind{BornWithTable, Injected, DeletedWithTable, Ejected, TypeChanged, KeyChanged}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad string %q", int(k), s)
		}
		seen[s] = true
	}
}
