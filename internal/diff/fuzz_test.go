package diff

import (
	"os"
	"path/filepath"
	"testing"

	"schemaevo/internal/schema"
)

// FuzzDiff fuzzes the schema differ through the real input path: two DDL
// sources are parsed and built into logical schemas, then diffed both
// ways. Run with
//
//	go test -fuzz=FuzzDiff ./internal/diff
//
// Without -fuzz the seeds run as a regular test. The checked invariants
// are the accounting identities the metrics layer relies on.
func FuzzDiff(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*", "*.sql"))
	if err != nil {
		f.Fatal(err)
	}
	var contents []string
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		contents = append(contents, string(data))
	}
	for i, c := range contents {
		f.Add(c, contents[(i+1)%len(contents)])
	}
	f.Add("CREATE TABLE t (a INT);", "CREATE TABLE t (a BIGINT, b TEXT);")
	f.Add("CREATE TABLE t (a INT PRIMARY KEY);", "CREATE TABLE t (a INT);")
	f.Add("CREATE TABLE t (a INT);", "DROP TABLE t;")
	f.Add("", "CREATE TABLE x (y INT, z INT, PRIMARY KEY (y, z));")
	f.Add(";;;", "'unterminated")

	f.Fuzz(func(t *testing.T, oldSrc, newSrc string) {
		oldS, _ := schema.ParseAndBuild(oldSrc)
		newS, _ := schema.ParseAndBuild(newSrc)

		d := Schemas(oldS, newS)
		// Accounting identities: every recorded change is counted exactly
		// once, and the expansion/maintenance split partitions the total.
		if d.Total() != len(d.Changes) {
			t.Fatalf("Total() = %d but %d changes recorded", d.Total(), len(d.Changes))
		}
		if d.Expansion()+d.Maintenance() != d.Total() {
			t.Fatalf("expansion %d + maintenance %d != total %d",
				d.Expansion(), d.Maintenance(), d.Total())
		}
		counted := d.NBornWithTable + d.NInjected + d.NDeletedWithTable +
			d.NEjected + d.NTypeChanged + d.NKeyChanged
		if counted != d.Total() {
			t.Fatalf("kind counters sum to %d, total %d", counted, d.Total())
		}

		// Self-diff must be empty: a schema never differs from itself.
		if self := Schemas(newS, newS); !self.IsZero() {
			t.Fatalf("self-diff not zero: %+v", self)
		}

		// Re-parsing the same source must yield an equivalent schema.
		again, _ := schema.ParseAndBuild(newSrc)
		if rebuilt := Schemas(newS, again); !rebuilt.IsZero() {
			t.Fatalf("re-parsed schema differs from itself: %+v", rebuilt)
		}

		// Schema birth from nil counts every attribute of every table.
		birth := Schemas(nil, newS)
		if birth.Maintenance() != 0 {
			t.Fatalf("birth delta has maintenance changes: %+v", birth)
		}
		if birth.NBornWithTable != newS.AttributeCount() {
			t.Fatalf("birth counts %d attributes, schema has %d",
				birth.NBornWithTable, newS.AttributeCount())
		}

		// Death to nil is the mirror image.
		death := Schemas(newS, nil)
		if death.Expansion() != 0 || death.NDeletedWithTable != newS.AttributeCount() {
			t.Fatalf("death delta inconsistent: %+v vs %d attrs", death, newS.AttributeCount())
		}
	})
}
