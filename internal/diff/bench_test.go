package diff

import (
	"fmt"
	"strings"
	"testing"

	"schemaevo/internal/schema"
)

func benchSchema(b *testing.B, tables int, extraCol bool) *schema.Schema {
	b.Helper()
	var sb strings.Builder
	for i := 0; i < tables; i++ {
		extra := ""
		if extraCol && i%3 == 0 {
			extra = ", added_later INT"
		}
		fmt.Fprintf(&sb, "CREATE TABLE t%d (id INT PRIMARY KEY, a TEXT, b NUMERIC(8,2), c TIMESTAMP%s);\n", i, extra)
	}
	s, notes := schema.ParseAndBuild(sb.String())
	if len(notes) != 0 {
		b.Fatalf("notes: %v", notes)
	}
	return s
}

// BenchmarkDiffLargeSchemas measures change detection between two
// 300-table schema versions.
func BenchmarkDiffLargeSchemas(b *testing.B) {
	old := benchSchema(b, 300, false)
	new := benchSchema(b, 300, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := Schemas(old, new)
		if d.NInjected != 100 {
			b.Fatalf("injected = %d", d.NInjected)
		}
	}
}
