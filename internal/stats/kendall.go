package stats

import "math"

// KendallTau returns Kendall's tau-b rank correlation of two equal-length
// samples, with tie correction. It is a robustness companion to Spearman:
// the Fig. 2 findings should not depend on the choice of rank statistic
// (see the correlation-agreement test in the experiments package).
func KendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// joint tie: contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if den == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / den
}
