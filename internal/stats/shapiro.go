package stats

import (
	"fmt"
	"math"
	"sort"
)

// ShapiroWilk performs the Shapiro-Wilk normality test following
// Royston's AS R94 algorithm (valid for 3 <= n <= 5000). It returns the W
// statistic and the p-value of the null hypothesis that the sample is
// normally distributed. The paper (§3.4.1) uses it to establish the
// non-normal character of every time-related measure.
func ShapiroWilk(xs []float64) (w, p float64, err error) {
	n := len(xs)
	if n < 3 {
		return 0, 0, fmt.Errorf("stats: shapiro-wilk needs n >= 3, got %d", n)
	}
	if n > 5000 {
		return 0, 0, fmt.Errorf("stats: shapiro-wilk valid up to n = 5000, got %d", n)
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] {
		return 0, 0, fmt.Errorf("stats: shapiro-wilk requires non-constant data")
	}

	// Expected values of normal order statistics (Blom approximation).
	m := make([]float64, n)
	var ssm float64
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}

	// Royston's polynomial-corrected weights.
	a := make([]float64, n)
	rsn := 1.0 / math.Sqrt(float64(n))
	c := make([]float64, n)
	norm := math.Sqrt(ssm)
	for i := range m {
		c[i] = m[i] / norm
	}
	if n == 3 {
		a[0] = math.Sqrt(0.5)
		a[2] = -a[0]
	} else {
		// a_n
		an := c[n-1] + polyEval(rsn, 0, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056)
		var an1 float64
		var phi float64
		if n > 5 {
			an1 = c[n-2] + polyEval(rsn, 0, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633)
			phi = (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) /
				(1 - 2*an*an - 2*an1*an1)
		} else {
			phi = (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
		}
		sqrtPhi := math.Sqrt(phi)
		a[n-1], a[0] = an, -an
		start := 1
		if n > 5 {
			a[n-2], a[1] = an1, -an1
			start = 2
		}
		for i := start; i < n-start; i++ {
			a[i] = m[i] / sqrtPhi
		}
	}

	// W statistic.
	mean := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		den += (x[i] - mean) * (x[i] - mean)
	}
	w = num * num / den
	if w > 1 {
		w = 1
	}

	// P-value via Royston's normalizing transformations.
	switch {
	case n == 3:
		// Exact for n = 3.
		const pi6, stqr = 1.90985931710274, 1.04719755119660 // 6/pi, asin(sqrt(3/4))
		p = pi6 * (math.Asin(math.Sqrt(w)) - stqr)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return w, p, nil
	case n <= 11:
		g := -2.273 + 0.459*float64(n)
		mu := polyEval(float64(n), 0.5440, -0.39978, 0.025054, -0.0006714)
		sigma := math.Exp(polyEval(float64(n), 1.3822, -0.77857, 0.062767, -0.0020322))
		z := (-math.Log(g-math.Log(1-w)) - mu) / sigma
		p = 1 - NormalCDF(z)
	default:
		ln := math.Log(float64(n))
		mu := polyEval(ln, -1.5861, -0.31082, -0.083751, 0.0038915)
		sigma := math.Exp(polyEval(ln, -0.4803, -0.082676, 0.0030302))
		z := (math.Log(1-w) - mu) / sigma
		p = 1 - NormalCDF(z)
	}
	return w, p, nil
}

// polyEval evaluates c0 + c1 x + c2 x^2 + ... by Horner's rule.
func polyEval(x float64, coeffs ...float64) float64 {
	v := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = v*x + coeffs[i]
	}
	return v
}

// NormalCDF is the standard normal distribution function Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile is the inverse of NormalCDF (the probit function),
// computed by Acklam's rational approximation refined with one Halley
// step, giving near machine precision on (0,1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
