package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "stddev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs must yield NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	approx(t, "median", Median(xs), 5.5, 1e-12)
	approx(t, "q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "q1", Quantile(xs, 1), 10, 1e-12)
	approx(t, "q.25", Quantile(xs, 0.25), 3.25, 1e-12) // R type 7
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) {
		t.Error("invalid quantile inputs must yield NaN")
	}
	approx(t, "median odd", Median([]float64{3, 1, 2}), 2, 1e-12)
	approx(t, "median ints", MedianInts([]int{5, 1, 9}), 5, 1e-12)
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank %d = %v, want %v", i, r[i], want[i])
		}
	}
	r2 := Ranks([]float64{5, 5, 5})
	for _, v := range r2 {
		if v != 2 {
			t.Errorf("all-tie ranks: %v", r2)
		}
	}
}

func TestPearsonAndSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, "pearson linear", Pearson(xs, ys), 1, 1e-12)
	approx(t, "spearman monotone", Spearman(xs, []float64{1, 8, 27, 64, 125}), 1, 1e-12)
	approx(t, "spearman reversed", Spearman(xs, []float64{5, 4, 3, 2, 1}), -1, 1e-12)
	if !math.IsNaN(Pearson(xs, []float64{3, 3, 3, 3, 3})) {
		t.Error("constant series must yield NaN")
	}
	if !math.IsNaN(Spearman(xs, xs[:3])) {
		t.Error("length mismatch must yield NaN")
	}
	// Known small example with ties: x=(1,2,3,4), y=(1,1,3,4).
	got := Spearman([]float64{1, 2, 3, 4}, []float64{1, 1, 3, 4})
	approx(t, "spearman ties", got, 0.9486832980505138, 1e-9)
}

func TestSpearmanMatrix(t *testing.T) {
	names := []string{"a", "b", "c"}
	series := [][]float64{
		{1, 2, 3, 4, 5},
		{2, 4, 6, 8, 10},
		{5, 4, 3, 2, 1},
	}
	m, err := SpearmanMatrix(names, series)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "R[0][1]", m.R[0][1], 1, 1e-12)
	approx(t, "R[0][2]", m.R[0][2], -1, 1e-12)
	approx(t, "diag", m.R[2][2], 1, 1e-12)
	if m.R[1][0] != m.R[0][1] {
		t.Error("matrix not symmetric")
	}
	strong := m.StrongPairs(0.9)
	if len(strong) != 3 {
		t.Errorf("strong pairs: %v", strong)
	}
	if _, err := SpearmanMatrix(names, series[:2]); err == nil {
		t.Error("name/series mismatch should error")
	}
	if _, err := SpearmanMatrix([]string{"a", "b"}, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged series should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0, 0.05, 0.15, 0.5, 0.95, 1, 1}
	h, err := NewHistogram(xs, 10, 0, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Special[0] != 2 || h.Special[1] != 2 {
		t.Errorf("special counts: %v", h.Special)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bucket counts: %v", h.Counts)
	}
	if h.N != 8 {
		t.Errorf("N = %d", h.N)
	}
	if h.BucketLabel(0) != "(0.00..0.10]" {
		t.Errorf("label: %s", h.BucketLabel(0))
	}
	if _, err := NewHistogram(xs, 0, 0, 1); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := NewHistogram(xs, 10, 1, 1); err == nil {
		t.Error("empty range should error")
	}
}

func TestNormalCDFAndQuantile(t *testing.T) {
	approx(t, "Phi(0)", NormalCDF(0), 0.5, 1e-15)
	approx(t, "Phi(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-12)
	approx(t, "Phi(-1)", NormalCDF(-1), 0.15865525393145707, 1e-12)
	approx(t, "probit(0.5)", NormalQuantile(0.5), 0, 1e-12)
	approx(t, "probit(0.975)", NormalQuantile(0.975), 1.959963984540054, 1e-9)
	approx(t, "probit(0.001)", NormalQuantile(0.001), -3.090232306167813, 1e-8)
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles must be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) {
		t.Error("out-of-range p must be NaN")
	}
}

// TestNormalQuantileRoundTrip: Phi(Phi^-1(p)) == p over the open interval.
func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		p := (float64(u%999998) + 1) / 1000000 // (0,1)
		back := NormalCDF(NormalQuantile(p))
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShapiroWilkNormalData(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rejected := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		xs := make([]float64, 100)
		for j := range xs {
			xs[j] = rng.NormFloat64()
		}
		w, p, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatal(err)
		}
		if w < 0.9 || w > 1 {
			t.Errorf("trial %d: W = %v for normal data", i, w)
		}
		if p < 0.05 {
			rejected++
		}
	}
	// At the 5% level we expect about 2 rejections in 40 trials; allow
	// generous slack but catch a broken test (all or most rejected).
	if rejected > 8 {
		t.Errorf("rejected %d/%d normal samples at 5%%", rejected, trials)
	}
}

func TestShapiroWilkSkewedData(t *testing.T) {
	// Power-law-ish data like the paper's time measures: strongly
	// non-normal, p should be tiny for n = 151.
	xs := make([]float64, 151)
	for i := range xs {
		xs[i] = math.Pow(float64(i+1), -1.5)
	}
	w, p, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("skewed data: p = %v, want < 1e-6 (W = %v)", p, w)
	}
}

func TestShapiroWilkUniformGrid(t *testing.T) {
	// A uniform grid is platykurtic; for n = 50 W is high but the test
	// should not scream normal with tiny p either way. Check sane ranges.
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
	}
	w, p, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if w < 0.9 || w > 1 {
		t.Errorf("uniform grid W = %v", w)
	}
	if p < 0 || p > 1 {
		t.Errorf("p out of range: %v", p)
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	for _, n := range []int{3, 4, 5, 7, 11} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i * i)
		}
		w, p, err := ShapiroWilk(xs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w <= 0 || w > 1 || p < 0 || p > 1 {
			t.Errorf("n=%d: W=%v p=%v", n, w, p)
		}
	}
}

func TestShapiroWilkAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 100 + 42*x
	}
	w1, p1, err1 := ShapiroWilk(xs)
	w2, p2, err2 := ShapiroWilk(ys)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	approx(t, "W affine", w2, w1, 1e-9)
	approx(t, "p affine", p2, p1, 1e-9)
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Error("n < 3 should error")
	}
	if _, _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Error("constant data should error")
	}
	big := make([]float64, 5001)
	for i := range big {
		big[i] = float64(i)
	}
	if _, _, err := ShapiroWilk(big); err == nil {
		t.Error("n > 5000 should error")
	}
}

func TestKendallTau(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "tau monotone", KendallTau(xs, []float64{2, 4, 6, 8, 10}), 1, 1e-12)
	approx(t, "tau reversed", KendallTau(xs, []float64{5, 4, 3, 2, 1}), -1, 1e-12)
	// Classic worked example: x=(12,2,1,12,2), y=(1,4,7,1,0).
	// tau-b = -0.4714045...
	got := KendallTau([]float64{12, 2, 1, 12, 2}, []float64{1, 4, 7, 1, 0})
	approx(t, "tau-b ties", got, -0.47140452079103173, 1e-12)
	if !math.IsNaN(KendallTau(xs, xs[:3])) {
		t.Error("length mismatch must be NaN")
	}
	if !math.IsNaN(KendallTau([]float64{1, 1}, []float64{2, 2})) {
		t.Error("all-tied input must be NaN")
	}
}

// TestKendallAgreesWithSpearmanInSign: on random monotone-ish data the two
// rank statistics agree in sign.
func TestKendallAgreesWithSpearmanInSign(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 20 + rng.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		slope := rng.Float64()*4 - 2
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = slope*xs[i] + rng.NormFloat64()*0.5
		}
		tau := KendallTau(xs, ys)
		rho := Spearman(xs, ys)
		if math.Abs(rho) > 0.3 && tau*rho < 0 {
			t.Fatalf("trial %d: tau %.2f vs rho %.2f disagree in sign", trial, tau, rho)
		}
	}
}
