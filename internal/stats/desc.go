// Package stats implements the statistical machinery the paper's analysis
// uses: Spearman rank correlations with tie correction (Fig. 2), the
// Shapiro-Wilk normality test (§3.4.1), quantiles, and histograms with
// special handling of the boundary values 0 and 1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator); it
// returns NaN for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the p-quantile (0 <= p <= 1) using linear
// interpolation between order statistics (R's default type 7). It returns
// NaN for an empty slice.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s[lo]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianInts is a convenience for integer-valued measures like total
// schema activity.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// Histogram bins values into equal-width buckets over [min, max], with
// optional dedicated bins for exact special values (the paper singles out
// 0 and 1, which carry semantics like "born at V_p^0").
type Histogram struct {
	// Min and Max bound the regular buckets.
	Min, Max float64
	// Counts has one entry per regular bucket.
	Counts []int
	// Special maps each requested special value to its exact-match count;
	// specially counted values are excluded from the regular buckets.
	Special map[float64]int
	// N is the total number of values binned.
	N int
}

// NewHistogram bins xs into nBuckets equal-width buckets between min and
// max, counting exact matches of the special values separately.
func NewHistogram(xs []float64, nBuckets int, min, max float64, special ...float64) (*Histogram, error) {
	if nBuckets <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", nBuckets)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram range [%g,%g] is empty", min, max)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nBuckets), Special: map[float64]int{}}
	for _, s := range special {
		h.Special[s] = 0
	}
	width := (max - min) / float64(nBuckets)
	for _, x := range xs {
		h.N++
		if _, ok := h.Special[x]; ok {
			h.Special[x]++
			continue
		}
		if x < min || x > max {
			continue // out of range; still counted in N
		}
		idx := int((x - min) / width)
		if idx >= nBuckets {
			idx = nBuckets - 1 // x == max
		}
		h.Counts[idx]++
	}
	return h, nil
}

// BucketLabel renders the half-open range of bucket i.
func (h *Histogram) BucketLabel(i int) string {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	lo := h.Min + float64(i)*width
	hi := lo + width
	return fmt.Sprintf("(%.2f..%.2f]", lo, hi)
}

// Ranks assigns 1-based ranks with ties resolved by averaging (mid-ranks),
// the convention Spearman's rho requires.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples; it returns NaN when either sample is constant or the inputs
// are invalid.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the rank correlation coefficient, handling ties by
// mid-ranking (this is Pearson on the rank vectors, the standard
// tie-corrected estimator).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Matrix is a named square correlation matrix.
type Matrix struct {
	Names []string
	// R[i][j] is the correlation between series i and j.
	R [][]float64
}

// SpearmanMatrix computes all pairwise Spearman correlations between the
// named series. All series must have equal length.
func SpearmanMatrix(names []string, series [][]float64) (*Matrix, error) {
	if len(names) != len(series) {
		return nil, fmt.Errorf("stats: %d names for %d series", len(names), len(series))
	}
	for i, s := range series {
		if len(s) != len(series[0]) {
			return nil, fmt.Errorf("stats: series %q has length %d, want %d", names[i], len(s), len(series[0]))
		}
	}
	// Rank once per series rather than once per pair.
	ranked := make([][]float64, len(series))
	for i, s := range series {
		ranked[i] = Ranks(s)
	}
	m := &Matrix{Names: names, R: make([][]float64, len(series))}
	for i := range series {
		m.R[i] = make([]float64, len(series))
		m.R[i][i] = 1
		for j := 0; j < i; j++ {
			r := Pearson(ranked[i], ranked[j])
			m.R[i][j], m.R[j][i] = r, r
		}
	}
	return m, nil
}

// StrongPairs returns the index pairs (i<j) whose absolute correlation
// meets the threshold — the "clean view" of Fig. 2.
func (m *Matrix) StrongPairs(threshold float64) [][2]int {
	var out [][2]int
	for i := range m.R {
		for j := i + 1; j < len(m.R); j++ {
			if !math.IsNaN(m.R[i][j]) && math.Abs(m.R[i][j]) >= threshold {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
