// Package corpus manages a collection of project schema histories: the
// study's unit of analysis. It couples each project's repository with the
// derived artifacts (history, measures, labels) and the ground-truth
// pattern annotation, and provides the >12-months filtering step of §3.1
// and JSON persistence.
package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"schemaevo/internal/core"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

// Project is one repository under study plus everything derived from it.
type Project struct {
	Name string
	Repo *vcs.Repo
	// GroundTruth is the pattern annotation (in the paper: manual; here:
	// the generator's intent). Unclassified means unannotated.
	GroundTruth core.Pattern
	// Dialect is the SQL dialect the project's DDL was authored in (for
	// synthetic corpora: the generator's intent; empty means generic).
	// It is an annotation like GroundTruth, not an analysis input — the
	// pipeline's own dialect selection lives in pipeline.Options.Dialect.
	Dialect string

	// Derived fields, populated by Analyze.
	History  *history.History
	Measures metrics.Measures
	Labels   quantize.Labels
	// Analyzed reports whether the derived fields are valid.
	Analyzed bool
}

// Analyze runs the full pipeline for the project: history extraction,
// measures, quantization.
func (p *Project) Analyze(scheme quantize.Scheme) error {
	h, err := history.FromRepo(p.Repo)
	if err != nil {
		return fmt.Errorf("corpus: project %q: %w", p.Name, err)
	}
	p.History = h
	p.Measures = metrics.Compute(h)
	if err := p.Measures.Validate(); err != nil {
		return fmt.Errorf("corpus: project %q: %w", p.Name, err)
	}
	if p.Measures.HasSchema {
		p.Labels = quantize.Compute(p.Measures, scheme)
	}
	p.Analyzed = true
	return nil
}

// Assigned returns the pattern the project counts under: the ground
// truth when annotated, otherwise the nearest definitional pattern.
func (p *Project) Assigned() core.Pattern {
	if p.GroundTruth != core.Unclassified {
		return p.GroundTruth
	}
	if p.Analyzed && p.Measures.HasSchema {
		return core.ClassifyNearest(p.Labels)
	}
	return core.Unclassified
}

// Subject projects the fields the taxonomy needs.
func (p *Project) Subject() core.Subject {
	return core.Subject{Name: p.Name, Labels: p.Labels, Assigned: p.Assigned()}
}

// Corpus is an ordered project collection.
type Corpus struct {
	Projects []*Project
}

// Analyze runs the pipeline on every project, stopping at the first
// failure.
func (c *Corpus) Analyze(scheme quantize.Scheme) error {
	for _, p := range c.Projects {
		if err := p.Analyze(scheme); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of projects.
func (c *Corpus) Len() int { return len(c.Projects) }

// FilterMinMonths returns the sub-corpus of projects whose lifetime
// exceeds the given number of months — the paper keeps projects with
// life span strictly greater than 12 months (§3.1).
func (c *Corpus) FilterMinMonths(months int) *Corpus {
	out := &Corpus{}
	for _, p := range c.Projects {
		if p.Repo.LifetimeMonths() > months {
			out.Projects = append(out.Projects, p)
		}
	}
	return out
}

// Subjects returns the taxonomy view of every analyzed project with a
// schema.
func (c *Corpus) Subjects() []core.Subject {
	var out []core.Subject
	for _, p := range c.Projects {
		if p.Analyzed && p.Measures.HasSchema {
			out = append(out, p.Subject())
		}
	}
	return out
}

// ByPattern groups the projects by their assigned pattern.
func (c *Corpus) ByPattern() map[core.Pattern][]*Project {
	out := map[core.Pattern][]*Project{}
	for _, p := range c.Projects {
		out[p.Assigned()] = append(out[p.Assigned()], p)
	}
	return out
}

// persisted is the JSON wire form of a corpus.
type persisted struct {
	Projects []persistedProject `json:"projects"`
}

type persistedProject struct {
	Name        string    `json:"name"`
	GroundTruth string    `json:"ground_truth,omitempty"`
	Dialect     string    `json:"dialect,omitempty"`
	Repo        *vcs.Repo `json:"repo"`
}

// WriteJSON persists the corpus (repositories and annotations; derived
// fields are recomputed on load).
func (c *Corpus) WriteJSON(w io.Writer) error {
	var p persisted
	for _, prj := range c.Projects {
		pp := persistedProject{Name: prj.Name, Dialect: prj.Dialect, Repo: prj.Repo}
		if prj.GroundTruth != core.Unclassified {
			pp.GroundTruth = prj.GroundTruth.String()
		}
		p.Projects = append(p.Projects, pp)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("corpus: encoding: %w", err)
	}
	return nil
}

// ReadJSON loads a persisted corpus.
func ReadJSON(r io.Reader) (*Corpus, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("corpus: decoding: %w", err)
	}
	c := &Corpus{}
	for i, pp := range p.Projects {
		if pp.Repo == nil {
			return nil, fmt.Errorf("corpus: project %d (%q) has no repo", i, pp.Name)
		}
		if err := pp.Repo.Validate(); err != nil {
			return nil, fmt.Errorf("corpus: project %q: %w", pp.Name, err)
		}
		prj := &Project{Name: pp.Name, Dialect: pp.Dialect, Repo: pp.Repo}
		if pp.GroundTruth != "" {
			gt, ok := core.ParsePattern(pp.GroundTruth)
			if !ok {
				return nil, fmt.Errorf("corpus: project %q: unknown pattern %q", pp.Name, pp.GroundTruth)
			}
			prj.GroundTruth = gt
		}
		c.Projects = append(c.Projects, prj)
	}
	return c, nil
}

// SaveFile writes the corpus to a JSON file.
func (c *Corpus) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a corpus from a JSON file.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
