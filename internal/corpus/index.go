package corpus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
)

// IDLen is the length of a stable project ID in hex characters: the
// truncated SHA-256 prefix is plenty for corpus-scale cardinalities while
// staying short enough for URLs and logs.
const IDLen = 16

// DefaultProjectID derives a project's stable ID from its name: the first
// IDLen hex characters of the name's SHA-256. It is stable across runs,
// processes, and corpus orderings, so it can be used as an external
// handle (e.g. a REST resource ID).
func DefaultProjectID(p *Project) string {
	sum := sha256.Sum256([]byte(p.Name))
	return hex.EncodeToString(sum[:])[:IDLen]
}

// Index provides O(1) lookup of corpus projects by stable ID — the
// accessor a serving layer needs to answer point queries without
// re-running a whole-corpus analysis. The ID function is fixed at
// construction; DefaultProjectID hashes the project name, but callers may
// substitute a content-based scheme (e.g. the pipeline fingerprint).
//
// The index is a snapshot: projects added to the corpus after NewIndex
// are not visible. It is safe for concurrent readers.
type Index struct {
	byID map[string]*Project
	ids  []string
}

// NewIndex builds an index over the corpus using the given ID function
// (nil selects DefaultProjectID). It fails on a duplicate ID, which would
// make lookups ambiguous.
func NewIndex(c *Corpus, id func(*Project) string) (*Index, error) {
	if id == nil {
		id = DefaultProjectID
	}
	ix := &Index{byID: make(map[string]*Project, len(c.Projects))}
	for _, p := range c.Projects {
		k := id(p)
		if prev, dup := ix.byID[k]; dup {
			return nil, fmt.Errorf("corpus: index: projects %q and %q share ID %q", prev.Name, p.Name, k)
		}
		ix.byID[k] = p
		ix.ids = append(ix.ids, k)
	}
	sort.Strings(ix.ids)
	return ix, nil
}

// Lookup returns the project with the given ID, if any.
func (ix *Index) Lookup(id string) (*Project, bool) {
	p, ok := ix.byID[id]
	return p, ok
}

// IDs returns every indexed ID in sorted order.
func (ix *Index) IDs() []string {
	return append([]string(nil), ix.ids...)
}

// Len returns the number of indexed projects.
func (ix *Index) Len() int { return len(ix.byID) }
