package corpus

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

// flatRepo builds a flatliner-shaped project of the given length.
func flatRepo(name string, months int) *vcs.Repo {
	r := &vcs.Repo{Name: name}
	r.Commits = append(r.Commits, vcs.Commit{
		ID: "0", Time: day(2020, 1, 1),
		Files:    map[string]string{"schema.sql": "CREATE TABLE t (a INT, b INT, c TEXT);"},
		SrcLines: 10,
	})
	r.Commits = append(r.Commits, vcs.Commit{
		ID: "1", Time: day(2020, 1, 1).AddDate(0, months-1, 0),
		Files: map[string]string{"main.go": "x"}, SrcLines: 5,
	})
	return r
}

func TestAnalyzeAndAssign(t *testing.T) {
	p := &Project{Name: "flat", Repo: flatRepo("flat", 24)}
	if err := p.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	if !p.Analyzed || !p.Measures.HasSchema {
		t.Fatalf("analysis: %+v", p.Measures)
	}
	// Without annotation, Assigned falls back to the classifier.
	if got := p.Assigned(); got != core.Flatliner {
		t.Errorf("assigned = %v, want Flatliner", got)
	}
	// Annotation wins.
	p.GroundTruth = core.Siesta
	if got := p.Assigned(); got != core.Siesta {
		t.Errorf("annotated assigned = %v", got)
	}
}

func TestAssignedUnanalyzed(t *testing.T) {
	p := &Project{Name: "x", Repo: flatRepo("x", 15)}
	if got := p.Assigned(); got != core.Unclassified {
		t.Errorf("unanalyzed assigned = %v", got)
	}
}

func TestFilterMinMonths(t *testing.T) {
	c := &Corpus{Projects: []*Project{
		{Name: "short", Repo: flatRepo("short", 10)},
		{Name: "exactly12", Repo: flatRepo("exactly12", 12)},
		{Name: "long", Repo: flatRepo("long", 13)},
	}}
	f := c.FilterMinMonths(12)
	if f.Len() != 1 || f.Projects[0].Name != "long" {
		t.Errorf("filtered: %d projects", f.Len())
	}
}

func TestSubjectsSkipUnanalyzed(t *testing.T) {
	c := &Corpus{Projects: []*Project{
		{Name: "a", Repo: flatRepo("a", 20)},
	}}
	if got := len(c.Subjects()); got != 0 {
		t.Errorf("unanalyzed subjects = %d", got)
	}
	if err := c.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Subjects()); got != 1 {
		t.Errorf("subjects = %d", got)
	}
}

func TestByPattern(t *testing.T) {
	c := &Corpus{Projects: []*Project{
		{Name: "a", Repo: flatRepo("a", 20), GroundTruth: core.Flatliner},
		{Name: "b", Repo: flatRepo("b", 20), GroundTruth: core.Flatliner},
		{Name: "c", Repo: flatRepo("c", 20), GroundTruth: core.Siesta},
	}}
	groups := c.ByPattern()
	if len(groups[core.Flatliner]) != 2 || len(groups[core.Siesta]) != 1 {
		t.Errorf("groups: %v", groups)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"projects":[{"name":"x"}]}`)); err == nil {
		t.Error("missing repo should fail")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"projects":[{"name":"x","ground_truth":"Nope","repo":{"name":"x","commits":[{"id":"0","time":"2020-01-01T00:00:00Z"}]}}]}`)); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	c := &Corpus{Projects: []*Project{
		{Name: "a", Repo: flatRepo("a", 20), GroundTruth: core.RadicalSign},
		{Name: "b", Repo: flatRepo("b", 25)},
	}}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	if back.Projects[0].GroundTruth != core.RadicalSign {
		t.Error("annotation lost")
	}
	if back.Projects[1].GroundTruth != core.Unclassified {
		t.Error("unannotated project gained an annotation")
	}
}

func TestAnalyzeFailureStops(t *testing.T) {
	noDDL := &vcs.Repo{Name: "noddl", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"main.go": "x"}},
	}}
	c := &Corpus{Projects: []*Project{{Name: "noddl", Repo: noDDL}}}
	if err := c.Analyze(quantize.DefaultScheme()); err == nil {
		t.Error("expected analysis failure for DDL-less repo")
	}
}
