package corpus

import (
	"testing"
	"time"

	"schemaevo/internal/vcs"
)

func testProject(name string) *Project {
	return &Project{Name: name, Repo: &vcs.Repo{Name: name, Commits: []vcs.Commit{
		{ID: "c0", Time: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)},
	}}}
}

func TestIndexLookup(t *testing.T) {
	c := &Corpus{Projects: []*Project{testProject("alpha"), testProject("beta"), testProject("gamma")}}
	ix, err := NewIndex(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	for _, p := range c.Projects {
		id := DefaultProjectID(p)
		if len(id) != IDLen {
			t.Fatalf("ID %q has length %d, want %d", id, len(id), IDLen)
		}
		got, ok := ix.Lookup(id)
		if !ok || got != p {
			t.Fatalf("Lookup(%q) = %v, %v; want project %q", id, got, ok, p.Name)
		}
	}
	if _, ok := ix.Lookup("deadbeefdeadbeef"); ok {
		t.Fatal("Lookup of an unknown ID reported a hit")
	}
}

func TestIndexStableIDs(t *testing.T) {
	p := testProject("alpha")
	if a, b := DefaultProjectID(p), DefaultProjectID(testProject("alpha")); a != b {
		t.Fatalf("DefaultProjectID not stable: %q vs %q", a, b)
	}
	// A reordered corpus yields the same IDs list (sorted) and lookups.
	c1 := &Corpus{Projects: []*Project{testProject("a"), testProject("b")}}
	c2 := &Corpus{Projects: []*Project{testProject("b"), testProject("a")}}
	ix1, err := NewIndex(c1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := NewIndex(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids1, ids2 := ix1.IDs(), ix2.IDs()
	if len(ids1) != len(ids2) {
		t.Fatalf("ID count mismatch: %d vs %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("IDs diverge at %d: %q vs %q", i, ids1[i], ids2[i])
		}
	}
}

func TestIndexDuplicateID(t *testing.T) {
	c := &Corpus{Projects: []*Project{testProject("dup"), testProject("dup")}}
	if _, err := NewIndex(c, nil); err == nil {
		t.Fatal("NewIndex accepted duplicate IDs")
	}
	// A custom ID function that disambiguates duplicates succeeds.
	seq := 0
	ix, err := NewIndex(c, func(p *Project) string {
		seq++
		return DefaultProjectID(p)[:IDLen-1] + string(rune('0'+seq))
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}
