package corpus

import (
	"strings"
	"testing"

	"schemaevo/internal/core"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	build := func() *Corpus {
		c := &Corpus{}
		for i := 0; i < 20; i++ {
			name := "p" + string(rune('a'+i))
			c.Projects = append(c.Projects, &Project{
				Name: name, Repo: flatRepo(name, 14+i), GroundTruth: core.Flatliner,
			})
		}
		return c
	}
	seq, par := build(), build()
	if err := seq.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	if err := par.AnalyzeParallel(quantize.DefaultScheme(), 4); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Projects {
		a, b := seq.Projects[i].Measures, par.Projects[i].Measures
		if a.BirthMonth != b.BirthMonth || a.TotalActivity != b.TotalActivity ||
			a.PUPMonths != b.PUPMonths {
			t.Errorf("project %d: sequential and parallel measures differ", i)
		}
		if seq.Projects[i].Labels != par.Projects[i].Labels {
			t.Errorf("project %d: labels differ", i)
		}
	}
}

func TestAnalyzeParallelPropagatesErrors(t *testing.T) {
	bad := &vcs.Repo{Name: "noddl", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"main.go": "x"}},
	}}
	c := &Corpus{Projects: []*Project{
		{Name: "ok", Repo: flatRepo("ok", 20)},
		{Name: "bad", Repo: bad},
		{Name: "ok2", Repo: flatRepo("ok2", 20)},
	}}
	if err := c.AnalyzeParallel(quantize.DefaultScheme(), 3); err == nil {
		t.Error("expected an error from the bad project")
	}
}

func TestAnalyzeParallelDegenerateWorkerCounts(t *testing.T) {
	c := &Corpus{Projects: []*Project{{Name: "a", Repo: flatRepo("a", 15)}}}
	if err := c.AnalyzeParallel(quantize.DefaultScheme(), 0); err != nil {
		t.Fatal(err)
	}
	if !c.Projects[0].Analyzed {
		t.Error("project not analyzed")
	}
	empty := &Corpus{}
	if err := empty.AnalyzeParallel(quantize.DefaultScheme(), 8); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeParallelAggregatesAllFailures is the regression test for the
// old behaviour of reporting only the first failure: with several failing
// projects, every failure must be present in the joined error, in corpus
// order, and the healthy projects must still be analyzed.
func TestAnalyzeParallelAggregatesAllFailures(t *testing.T) {
	noDDL := func(name string) *vcs.Repo {
		return &vcs.Repo{Name: name, Commits: []vcs.Commit{
			{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"main.go": "x"}},
		}}
	}
	c := &Corpus{Projects: []*Project{
		{Name: "bad-alpha", Repo: noDDL("bad-alpha")},
		{Name: "ok", Repo: flatRepo("ok", 20)},
		{Name: "bad-beta", Repo: noDDL("bad-beta")},
		{Name: "bad-gamma", Repo: noDDL("bad-gamma")},
	}}
	err := c.AnalyzeParallel(quantize.DefaultScheme(), 4)
	if err == nil {
		t.Fatal("expected an error")
	}
	msg := err.Error()
	for _, name := range []string{"bad-alpha", "bad-beta", "bad-gamma"} {
		if !strings.Contains(msg, name) {
			t.Errorf("aggregated error does not mention %q:\n%s", name, msg)
		}
	}
	// Corpus-order aggregation: alpha before beta before gamma.
	if a, b, g := strings.Index(msg, "bad-alpha"), strings.Index(msg, "bad-beta"),
		strings.Index(msg, "bad-gamma"); !(a < b && b < g) {
		t.Errorf("failures not in corpus order:\n%s", msg)
	}
	if !c.Projects[1].Analyzed {
		t.Error("healthy project was not analyzed")
	}
}
