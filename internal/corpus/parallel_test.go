package corpus

import (
	"testing"

	"schemaevo/internal/core"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

func TestAnalyzeParallelMatchesSequential(t *testing.T) {
	build := func() *Corpus {
		c := &Corpus{}
		for i := 0; i < 20; i++ {
			name := "p" + string(rune('a'+i))
			c.Projects = append(c.Projects, &Project{
				Name: name, Repo: flatRepo(name, 14+i), GroundTruth: core.Flatliner,
			})
		}
		return c
	}
	seq, par := build(), build()
	if err := seq.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	if err := par.AnalyzeParallel(quantize.DefaultScheme(), 4); err != nil {
		t.Fatal(err)
	}
	for i := range seq.Projects {
		a, b := seq.Projects[i].Measures, par.Projects[i].Measures
		if a.BirthMonth != b.BirthMonth || a.TotalActivity != b.TotalActivity ||
			a.PUPMonths != b.PUPMonths {
			t.Errorf("project %d: sequential and parallel measures differ", i)
		}
		if seq.Projects[i].Labels != par.Projects[i].Labels {
			t.Errorf("project %d: labels differ", i)
		}
	}
}

func TestAnalyzeParallelPropagatesErrors(t *testing.T) {
	bad := &vcs.Repo{Name: "noddl", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"main.go": "x"}},
	}}
	c := &Corpus{Projects: []*Project{
		{Name: "ok", Repo: flatRepo("ok", 20)},
		{Name: "bad", Repo: bad},
		{Name: "ok2", Repo: flatRepo("ok2", 20)},
	}}
	if err := c.AnalyzeParallel(quantize.DefaultScheme(), 3); err == nil {
		t.Error("expected an error from the bad project")
	}
}

func TestAnalyzeParallelDegenerateWorkerCounts(t *testing.T) {
	c := &Corpus{Projects: []*Project{{Name: "a", Repo: flatRepo("a", 15)}}}
	if err := c.AnalyzeParallel(quantize.DefaultScheme(), 0); err != nil {
		t.Fatal(err)
	}
	if !c.Projects[0].Analyzed {
		t.Error("project not analyzed")
	}
	empty := &Corpus{}
	if err := empty.AnalyzeParallel(quantize.DefaultScheme(), 8); err != nil {
		t.Fatal(err)
	}
}
