package corpus

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"schemaevo/internal/quantize"
	"schemaevo/internal/telemetry"
)

// AnalyzeParallel runs the analysis pipeline over the corpus with a
// bounded worker pool. Results are identical to Analyze; only wall-clock
// time differs (each project's analysis is independent). workers <= 0
// selects GOMAXPROCS. Unlike Analyze, it does not stop at the first
// failure: every project is attempted and all failures are returned
// joined, in corpus order.
func (c *Corpus) AnalyzeParallel(scheme quantize.Scheme, workers int) error {
	return c.AnalyzeParallelObserved(scheme, workers, nil)
}

// AnalyzeParallelObserved is AnalyzeParallel reporting per-project timings,
// worker occupancy and failure counts to tel under the "analyze" stage
// (plus one trace span per project). A nil tel collects nothing at no
// cost. Note the workers <= 1 degenerate path delegates to the sequential
// Analyze and records no telemetry.
func (c *Corpus) AnalyzeParallelObserved(scheme quantize.Scheme, workers int, tel *telemetry.Collector) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Projects) {
		workers = len(c.Projects)
	}
	if workers <= 1 {
		return c.Analyze(scheme)
	}
	stage := tel.Stage("analyze")
	stage.SetWorkers(workers)
	type failure struct {
		idx int
		err error
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []failure
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var begin time.Time
				if stage != nil {
					stage.Enter()
					begin = time.Now()
				}
				err := analyzeRecovered(c.Projects[i], scheme)
				if stage != nil {
					busy := time.Since(begin)
					stage.Exit()
					stage.Observe(0, busy, err != nil)
					tel.RecordSpan(c.Projects[i].Name, "analyze", begin, busy, err != nil)
				}
				if err != nil {
					tel.Degradation("analyze")
					mu.Lock()
					failures = append(failures, failure{idx: i, err: err})
					mu.Unlock()
				}
			}
		}()
	}
	for i := range c.Projects {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if len(failures) == 0 {
		return nil
	}
	sort.Slice(failures, func(a, b int) bool { return failures[a].idx < failures[b].idx })
	errs := make([]error, len(failures))
	for i, f := range failures {
		errs[i] = f.err
	}
	return fmt.Errorf("corpus: parallel analysis: %w", errors.Join(errs...))
}

// analyzeRecovered isolates one project's analysis: a panic becomes that
// project's attributed error instead of killing the worker pool (and with
// it every queued project and the process).
func analyzeRecovered(p *Project, scheme quantize.Scheme) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("corpus: project %q: panic: %v", p.Name, r)
		}
	}()
	return p.Analyze(scheme)
}
