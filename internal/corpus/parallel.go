package corpus

import (
	"fmt"
	"runtime"
	"sync"

	"schemaevo/internal/quantize"
)

// AnalyzeParallel runs the analysis pipeline over the corpus with a
// bounded worker pool. Results are identical to Analyze; only wall-clock
// time differs (each project's analysis is independent). workers <= 0
// selects GOMAXPROCS.
func (c *Corpus) AnalyzeParallel(scheme quantize.Scheme, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(c.Projects) {
		workers = len(c.Projects)
	}
	if workers <= 1 {
		return c.Analyze(scheme)
	}
	jobs := make(chan *Project)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				if err := p.Analyze(scheme); err != nil {
					// Report the first failure; keep draining so the
					// sender never blocks.
					select {
					case errs <- err:
					default:
					}
				}
			}
		}()
	}
	for _, p := range c.Projects {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return fmt.Errorf("corpus: parallel analysis: %w", err)
	default:
		return nil
	}
}
