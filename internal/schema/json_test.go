package schema

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSchemaJSONRoundTrip(t *testing.T) {
	src := `
CREATE TABLE b (id INT PRIMARY KEY, note TEXT DEFAULT 'x');
CREATE TABLE a (
  id INT NOT NULL,
  b_id INT,
  kind VARCHAR(16),
  PRIMARY KEY (id),
  CONSTRAINT fk_b FOREIGN KEY (b_id) REFERENCES b (id),
  UNIQUE (kind, b_id)
);`
	s, _ := ParseAndBuild(src)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got := New()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	// Insertion order must survive: b before a.
	wantOrder := []string{"b", "a"}
	var gotOrder []string
	for _, tb := range got.Tables() {
		gotOrder = append(gotOrder, tb.Name)
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("table order = %v, want %v", gotOrder, wantOrder)
	}
	for _, name := range wantOrder {
		orig, _ := s.Table(name)
		back, ok := got.Table(name)
		if !ok {
			t.Fatalf("table %q missing after round trip", name)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Errorf("table %q differs after round trip:\n%+v\nvs\n%+v", name, orig, back)
		}
	}
	// A second marshal must be byte-identical (determinism).
	data2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-marshal not byte-identical")
	}
}

func TestSchemaJSONEmpty(t *testing.T) {
	data, err := json.Marshal(New())
	if err != nil {
		t.Fatal(err)
	}
	got := New()
	if err := json.Unmarshal(data, got); err != nil {
		t.Fatal(err)
	}
	if got.TableCount() != 0 {
		t.Fatalf("TableCount = %d, want 0", got.TableCount())
	}
}
