package schema

import (
	"math/rand"
	"strings"
	"testing"
)

func TestEmitRoundTripSimple(t *testing.T) {
	src := `CREATE TABLE users (
		id INT NOT NULL,
		email VARCHAR(255) NOT NULL,
		age INT DEFAULT 0,
		PRIMARY KEY (id),
		UNIQUE (email)
	);
	CREATE TABLE posts (
		id INT,
		author INT,
		PRIMARY KEY (id),
		CONSTRAINT author_fk FOREIGN KEY (author) REFERENCES users (id)
	);`
	orig := build(t, src)
	emitted := orig.Emit()
	back, notes := ParseAndBuild(emitted)
	if len(notes) != 0 {
		t.Fatalf("re-parse notes: %v\n%s", notes, emitted)
	}
	if !Equivalent(orig, back) {
		t.Fatalf("round trip not equivalent:\noriginal: %v\nre-parsed: %v\nemitted:\n%s",
			orig, back, emitted)
	}
}

func TestEmitQuotesAwkwardNames(t *testing.T) {
	s := New()
	s.AddTable(&Table{
		Name: "Mixed Case",
		Columns: []Column{
			{Name: "primary", Type: "int"},
			{Name: "0starts_with_digit", Type: "text"},
		},
	})
	emitted := s.Emit()
	if !strings.Contains(emitted, `"Mixed Case"`) || !strings.Contains(emitted, `"primary"`) {
		t.Fatalf("quoting missing:\n%s", emitted)
	}
	back, notes := ParseAndBuild(emitted)
	if len(notes) != 0 {
		t.Fatalf("notes: %v", notes)
	}
	if !Equivalent(s, back) {
		t.Fatalf("quoted round trip failed:\n%s", emitted)
	}
}

func TestEmitEmptySchema(t *testing.T) {
	if out := New().Emit(); out != "" {
		t.Errorf("empty schema emitted %q", out)
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	base := `CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a));`
	a := build(t, base)
	cases := map[string]string{
		"extra table":   base + `CREATE TABLE u (x INT);`,
		"missing col":   `CREATE TABLE t (a INT, PRIMARY KEY (a));`,
		"type change":   `CREATE TABLE t (a INT, b VARCHAR(10), PRIMARY KEY (a));`,
		"pk change":     `CREATE TABLE t (a INT, b TEXT);`,
		"null change":   `CREATE TABLE t (a INT, b TEXT NOT NULL, PRIMARY KEY (a));`,
		"renamed table": `CREATE TABLE s (a INT, b TEXT, PRIMARY KEY (a));`,
	}
	for name, src := range cases {
		other := build(t, src)
		if Equivalent(a, other) {
			t.Errorf("%s: schemas reported equivalent", name)
		}
	}
	if !Equivalent(a, build(t, base)) {
		t.Error("identical schemas reported different")
	}
}

// TestEmitRoundTripRandom: random schemas emit and re-parse to an
// equivalent schema.
func TestEmitRoundTripRandom(t *testing.T) {
	types := []string{"int", "bigint", "text", "varchar(50)", "numeric(8,2)", "bool", "timestamp"}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		s := New()
		nt := 1 + rng.Intn(5)
		for ti := 0; ti < nt; ti++ {
			tbl := &Table{Name: string(rune('a'+ti)) + "_tbl"}
			nc := 1 + rng.Intn(6)
			for ci := 0; ci < nc; ci++ {
				tbl.Columns = append(tbl.Columns, Column{
					Name:    string(rune('p' + ci)),
					Type:    types[rng.Intn(len(types))],
					NotNull: rng.Intn(3) == 0,
				})
			}
			if rng.Intn(2) == 0 {
				tbl.setPrimaryKey([]string{tbl.Columns[0].Name})
			}
			if ti > 0 && rng.Intn(3) == 0 && len(tbl.Columns) > 1 {
				fk := ForeignKey{
					Columns:    []string{tbl.Columns[1].Name},
					RefTable:   "a_tbl",
					RefColumns: []string{"p"},
				}
				fk.Name = syntheticFKName(fk)
				tbl.ForeignKeys = append(tbl.ForeignKeys, fk)
			}
			s.AddTable(tbl)
		}
		back, notes := ParseAndBuild(s.Emit())
		if len(notes) != 0 {
			t.Fatalf("trial %d: notes %v\n%s", trial, notes, s.Emit())
		}
		if !Equivalent(s, back) {
			t.Fatalf("trial %d: round trip failed\n%s", trial, s.Emit())
		}
	}
}
