package schema

import "testing"

// Allocation budgets for incremental version application. The dominant
// per-version costs under reconstruction are (a) re-building an unchanged
// version — a copy-on-write clone resolved entirely from caches — and
// (b) extending the previous version by one statement. Both must stay
// within a small constant number of allocations regardless of how the
// statements are phrased, because every allocation here is paid per
// version per project across the whole corpus.

const allocV1 = `
CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);
CREATE TABLE orgs (id INT PRIMARY KEY, title TEXT);
`

const allocV2 = allocV1 + `ALTER TABLE users ADD COLUMN created_at TIMESTAMP;`

func TestAllocBudgetApplyUnchangedVersion(t *testing.T) {
	rc := NewReconstructor()
	rc.Build(allocV2) // warm: caches populated, chain established
	rc.Build(allocV2)
	allocs := testing.AllocsPerRun(200, func() {
		rc.Build(allocV2)
	})
	// Re-building an unchanged version is a COW clone: the schema header,
	// its table map and order slice, and the copied note slice headers.
	const budget = 8
	if allocs > budget {
		t.Errorf("re-building an unchanged version: %.1f allocs/run, budget %d", allocs, budget)
	}
}

func TestAllocBudgetApplyOneVersion(t *testing.T) {
	rc := NewReconstructor()
	rc.Build(allocV1)
	rc.Build(allocV2) // warm both versions' statements and protos
	allocs := testing.AllocsPerRun(200, func() {
		rc.Build(allocV1) // rewind the chain (full rebuild, all cache hits)
		rc.Build(allocV2) // then extend it by one ALTER statement
	})
	// Two versions per run: the rebuilt base (schema + shared prototypes)
	// plus the incremental extension (COW clone + one cloned table for the
	// ALTER's copy-on-write).
	const budget = 24
	if allocs > budget {
		t.Errorf("rebuilding base + applying one version: %.1f allocs/run, budget %d", allocs, budget)
	}
}
