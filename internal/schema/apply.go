package schema

import (
	"fmt"
	"strings"

	"schemaevo/internal/sqlddl"
)

// Note is a non-fatal observation made while applying a script: a
// reference to a missing table, a duplicate definition, and so on. Real
// schema histories are full of such wrinkles; the pipeline records them
// and carries on.
type Note struct {
	Stmt int
	Msg  string
}

func (n Note) String() string { return fmt.Sprintf("stmt %d: %s", n.Stmt, n.Msg) }

// FromScript builds a schema snapshot from a full DDL dump.
func FromScript(script *sqlddl.Script) (*Schema, []Note) {
	s := New()
	notes := s.Apply(script)
	return s, notes
}

// ParseAndBuild parses src and builds the schema it defines, folding
// parse errors into the returned notes.
func ParseAndBuild(src string) (*Schema, []Note) {
	script := sqlddl.Parse(src)
	s, notes := FromScript(script)
	for _, e := range script.Errors {
		notes = append(notes, Note{Stmt: e.Stmt, Msg: "parse: " + e.Msg})
	}
	return s, notes
}

// Apply evolves the schema by the statements of the script, in order.
// Unknown or physical-level statements are ignored. It returns notes for
// anomalies (missing targets, duplicates) rather than failing, because a
// later version of a real history must remain analyzable even when an
// intermediate migration references state the extractor never saw.
func (s *Schema) Apply(script *sqlddl.Script) []Note {
	var notes []Note
	for i, stmt := range script.Statements {
		notes = append(notes, s.applyStatement(i, stmt)...)
	}
	return notes
}

func (s *Schema) applyStatement(idx int, stmt sqlddl.Statement) []Note {
	switch st := stmt.(type) {
	case *sqlddl.CreateTable:
		return s.applyCreateTable(idx, st)
	case *sqlddl.AlterTable:
		return s.applyAlterTable(idx, st)
	case *sqlddl.DropTable:
		var notes []Note
		for _, name := range st.Names {
			if !s.DropTable(name) && !st.IfExists {
				notes = append(notes, Note{idx, "DROP TABLE " + name + ": no such table"})
			}
		}
		return notes
	default:
		// CreateIndex, DropIndex, CreateView, RawStatement: physical or
		// non-schema statements; logical level unchanged.
		return nil
	}
}

func (s *Schema) applyCreateTable(idx int, ct *sqlddl.CreateTable) []Note {
	var notes []Note
	if _, exists := s.Table(ct.Name); exists {
		if ct.IfNotExists {
			return nil
		}
		notes = append(notes, Note{idx, "CREATE TABLE " + ct.Name + ": replacing existing definition"})
	}
	t, msgs := buildCreateTable(ct)
	for _, m := range msgs {
		notes = append(notes, Note{idx, m})
	}
	s.AddTable(t)
	return notes
}

// buildCreateTable materializes the logical table a CREATE TABLE statement
// defines, plus the messages for per-column anomalies. The result depends
// only on the statement — not on schema state — which is what lets the
// incremental reconstructor cache tables per AST node.
func buildCreateTable(ct *sqlddl.CreateTable) (*Table, []string) {
	t := &Table{Name: ct.Name}
	var msgs []string
	var pk []string
	for _, cd := range ct.Columns {
		// Real engines reject duplicate column names; tolerate the file by
		// keeping the first definition, so that name-based lookups (and the
		// differ) see one column per name.
		if _, exists := t.Column(cd.Name); exists {
			msgs = append(msgs, "CREATE TABLE "+ct.Name+": duplicate column "+cd.Name)
			continue
		}
		col := columnFromDef(cd)
		t.Columns = append(t.Columns, col)
		if cd.PrimaryKey {
			pk = append(pk, cd.Name)
		}
		if cd.Unique {
			t.Uniques = append(t.Uniques, []string{cd.Name})
		}
		if cd.References != nil {
			t.ForeignKeys = append(t.ForeignKeys, fkFromRef("", []string{cd.Name}, cd.References))
		}
	}
	for _, c := range ct.Constraints {
		switch c.Kind {
		case sqlddl.PrimaryKeyConstraint:
			pk = c.Columns
		case sqlddl.ForeignKeyConstraint:
			t.ForeignKeys = append(t.ForeignKeys, fkFromRef(c.Name, c.Columns, c.Ref))
		case sqlddl.UniqueConstraint:
			// Copy: the table's key lists are mutated on column renames, and
			// they must never alias the (cached, shared) AST.
			t.Uniques = append(t.Uniques, copySlice(c.Columns))
		}
	}
	if len(pk) > 0 {
		t.setPrimaryKey(pk)
	}
	return t, msgs
}

func columnFromDef(cd sqlddl.ColumnDef) Column {
	return Column{
		Name:          cd.Name,
		Type:          NormalizeType(cd.Type),
		NotNull:       cd.NotNull,
		Default:       cd.Default,
		HasDefault:    cd.HasDefault,
		AutoIncrement: cd.AutoIncrement,
		InPK:          cd.PrimaryKey,
	}
}

func fkFromRef(name string, cols []string, ref *sqlddl.FKRef) ForeignKey {
	fk := ForeignKey{
		Name:    name,
		Columns: append([]string(nil), cols...),
	}
	if ref != nil {
		fk.RefTable = ref.Table
		fk.RefColumns = append([]string(nil), ref.Columns...)
	}
	if fk.Name == "" {
		fk.Name = syntheticFKName(fk)
	}
	return fk
}

// syntheticFKName derives a stable name for anonymous foreign keys so
// they can be matched across versions.
func syntheticFKName(fk ForeignKey) string {
	n := len("fk_") + len(fk.RefTable) + 1
	for _, c := range fk.Columns {
		n += len(c) + 1
	}
	var sb strings.Builder
	sb.Grow(n)
	sb.WriteString("fk_")
	for i, c := range fk.Columns {
		if i > 0 {
			sb.WriteByte('_')
		}
		sb.WriteString(c)
	}
	sb.WriteByte('_')
	sb.WriteString(fk.RefTable)
	return sb.String()
}

func (s *Schema) applyAlterTable(idx int, at *sqlddl.AlterTable) []Note {
	t, ok := s.Table(at.Name)
	if !ok {
		if at.IfExists {
			return nil
		}
		return []Note{{idx, "ALTER TABLE " + at.Name + ": no such table"}}
	}
	t = s.writable(t)
	var notes []Note
	for _, act := range at.Actions {
		notes = append(notes, s.applyAlteration(idx, t, act)...)
	}
	return notes
}

func (s *Schema) applyAlteration(idx int, t *Table, act sqlddl.Alteration) []Note {
	switch act.Action {
	case sqlddl.AddColumn:
		if _, exists := t.Column(act.Column.Name); exists {
			return []Note{{idx, "ADD COLUMN " + t.Name + "." + act.Column.Name + ": already exists"}}
		}
		col := columnFromDef(act.Column)
		t.Columns = append(t.Columns, col)
		if act.Column.PrimaryKey {
			t.setPrimaryKey(append(append([]string(nil), t.PrimaryKey...), col.Name))
		}
		if act.Column.References != nil {
			t.ForeignKeys = append(t.ForeignKeys, fkFromRef("", []string{col.Name}, act.Column.References))
		}
	case sqlddl.DropColumn:
		if !dropColumn(t, act.Column.Name) {
			return []Note{{idx, "DROP COLUMN " + t.Name + "." + act.Column.Name + ": no such column"}}
		}
	case sqlddl.ModifyColumn:
		c, ok := t.Column(act.Column.Name)
		if !ok {
			return []Note{{idx, "MODIFY COLUMN " + t.Name + "." + act.Column.Name + ": no such column"}}
		}
		if act.Column.Type != "" {
			c.Type = NormalizeType(act.Column.Type)
		}
		// MySQL MODIFY restates the full definition; adopt the flags.
		c.NotNull = act.Column.NotNull || c.InPK
		if act.Column.HasDefault {
			c.Default, c.HasDefault = act.Column.Default, true
		}
		if act.Column.AutoIncrement {
			c.AutoIncrement = true
		}
	case sqlddl.RenameColumn:
		c, ok := t.Column(act.OldName)
		if !ok {
			return []Note{{idx, "RENAME COLUMN " + t.Name + "." + act.OldName + ": no such column"}}
		}
		c.Name = act.Column.Name
		if act.Column.Type != "" { // CHANGE restates the type
			c.Type = NormalizeType(act.Column.Type)
			c.NotNull = act.Column.NotNull || c.InPK
		}
		renameInKeys(t, act.OldName, act.Column.Name)
	case sqlddl.AddTableConstraint:
		applyAddConstraint(t, act.Constraint)
	case sqlddl.DropConstraint:
		applyDropConstraint(t, act)
	case sqlddl.RenameTable:
		s.renameTable(t.Name, act.NewTableName)
	case sqlddl.SetDefault:
		if c, ok := t.Column(act.Column.Name); ok {
			if act.Drop {
				c.Default, c.HasDefault = "", false
			} else {
				c.Default, c.HasDefault = act.Column.Default, true
			}
		}
	case sqlddl.SetNotNull:
		if c, ok := t.Column(act.Column.Name); ok {
			c.NotNull = !act.Drop
		}
	case sqlddl.OtherAlteration:
		// schema-neutral
	}
	return nil
}

func dropColumn(t *Table, name string) bool {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			t.Columns = append(t.Columns[:i], t.Columns[i+1:]...)
			removeFromKeys(t, name)
			return true
		}
	}
	return false
}

func applyAddConstraint(t *Table, c *sqlddl.TableConstraint) {
	if c == nil {
		return
	}
	switch c.Kind {
	case sqlddl.PrimaryKeyConstraint:
		t.setPrimaryKey(c.Columns)
	case sqlddl.ForeignKeyConstraint:
		t.ForeignKeys = append(t.ForeignKeys, fkFromRef(c.Name, c.Columns, c.Ref))
	case sqlddl.UniqueConstraint:
		// Copy: key lists are renamed in place and must not alias the AST.
		t.Uniques = append(t.Uniques, copySlice(c.Columns))
	}
}

func applyDropConstraint(t *Table, act sqlddl.Alteration) {
	switch act.ConstraintKind {
	case sqlddl.PrimaryKeyConstraint:
		t.setPrimaryKey(nil)
		t.PrimaryKey = nil
	default:
		// Foreign key (or generic constraint) dropped by name; a generic
		// DROP CONSTRAINT may also target a unique — try both.
		for i, fk := range t.ForeignKeys {
			if fk.Name == act.ConstraintName {
				t.ForeignKeys = append(t.ForeignKeys[:i], t.ForeignKeys[i+1:]...)
				return
			}
		}
	}
}

func renameInKeys(t *Table, old, new string) {
	replace := func(cols []string) {
		for i, c := range cols {
			if c == old {
				cols[i] = new
			}
		}
	}
	replace(t.PrimaryKey)
	for i := range t.ForeignKeys {
		replace(t.ForeignKeys[i].Columns)
	}
	for i := range t.Uniques {
		replace(t.Uniques[i])
	}
}

func removeFromKeys(t *Table, name string) {
	remove := func(cols []string) []string {
		out := cols[:0]
		for _, c := range cols {
			if c != name {
				out = append(out, c)
			}
		}
		return out
	}
	t.PrimaryKey = remove(t.PrimaryKey)
	kept := t.ForeignKeys[:0]
	for _, fk := range t.ForeignKeys {
		fk.Columns = remove(fk.Columns)
		if len(fk.Columns) > 0 {
			kept = append(kept, fk)
		}
	}
	t.ForeignKeys = kept
}
