package schema

import "encoding/json"

// jsonSchema is the wire form of a Schema: the tables in insertion order.
// The map/order pair of the in-memory form is an implementation detail;
// persisting the ordered slice keeps the round trip deterministic and lets
// the pipeline cache store full histories as plain JSON.
type jsonSchema struct {
	Tables []*Table `json:"tables"`
}

// MarshalJSON serializes the schema as its tables in insertion order.
func (s *Schema) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonSchema{Tables: s.Tables()})
}

// UnmarshalJSON rebuilds a schema from its wire form, restoring the
// insertion order recorded at marshal time.
func (s *Schema) UnmarshalJSON(data []byte) error {
	var js jsonSchema
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.tables = make(map[string]*Table, len(js.Tables))
	s.order = s.order[:0]
	for _, t := range js.Tables {
		s.AddTable(t)
	}
	return nil
}
