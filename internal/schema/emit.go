package schema

import (
	"fmt"
	"strings"
)

// Emit renders the schema as a SQL DDL script that, parsed and applied to
// an empty schema, reconstructs an equivalent logical schema (see the
// round-trip property tests). Tables appear in insertion order; names are
// quoted only when necessary.
func (s *Schema) Emit() string {
	var sb strings.Builder
	for i, t := range s.Tables() {
		if i > 0 {
			sb.WriteByte('\n')
		}
		emitTable(&sb, t)
	}
	return sb.String()
}

func emitTable(sb *strings.Builder, t *Table) {
	fmt.Fprintf(sb, "CREATE TABLE %s (\n", quoteIdent(t.Name))
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(",\n")
		}
		sb.WriteString("  ")
		sb.WriteString(quoteIdent(c.Name))
		if c.Type != "" {
			sb.WriteByte(' ')
			sb.WriteString(c.Type)
		}
		if c.NotNull && !c.InPK {
			sb.WriteString(" NOT NULL")
		}
		if c.HasDefault {
			sb.WriteString(" DEFAULT ")
			if c.Default == "" {
				sb.WriteString("NULL")
			} else {
				sb.WriteString(c.Default)
			}
		}
		if c.AutoIncrement {
			sb.WriteString(" AUTO_INCREMENT")
		}
	}
	if len(t.PrimaryKey) > 0 {
		fmt.Fprintf(sb, ",\n  PRIMARY KEY (%s)", quoteList(t.PrimaryKey))
	}
	for _, u := range t.Uniques {
		fmt.Fprintf(sb, ",\n  UNIQUE (%s)", quoteList(u))
	}
	for _, fk := range t.ForeignKeys {
		sb.WriteString(",\n  ")
		if fk.Name != "" && !strings.HasPrefix(fk.Name, "fk_") {
			fmt.Fprintf(sb, "CONSTRAINT %s ", quoteIdent(fk.Name))
		}
		fmt.Fprintf(sb, "FOREIGN KEY (%s) REFERENCES %s", quoteList(fk.Columns), quoteIdent(fk.RefTable))
		if len(fk.RefColumns) > 0 {
			fmt.Fprintf(sb, " (%s)", quoteList(fk.RefColumns))
		}
	}
	sb.WriteString("\n);\n")
}

func quoteList(names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = quoteIdent(n)
	}
	return strings.Join(out, ", ")
}

// quoteIdent wraps an identifier in double quotes when it is not a plain
// lower-case SQL name (the form the parser normalizes unquoted names to).
func quoteIdent(name string) string {
	if plainIdent(name) {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

func plainIdent(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Words that would lex as keywords in column position must be quoted.
	switch name {
	case "primary", "unique", "constraint", "foreign", "check", "key", "index",
		"not", "null", "default", "references", "create", "table", "drop", "alter":
		return false
	}
	return true
}

// Equivalent reports whether two schemas are logically identical: same
// tables, columns (name, type, nullability, default, key participation),
// primary keys and foreign-key column sets. It is the equality notion
// under which Emit round-trips.
func Equivalent(a, b *Schema) bool {
	if a.TableCount() != b.TableCount() {
		return false
	}
	for _, ta := range a.Tables() {
		tb, ok := b.Table(ta.Name)
		if !ok || !tablesEquivalent(ta, tb) {
			return false
		}
	}
	return true
}

func tablesEquivalent(a, b *Table) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		ca, cb := a.Columns[i], b.Columns[i]
		if ca.Name != cb.Name || ca.Type != cb.Type || ca.NotNull != cb.NotNull ||
			ca.HasDefault != cb.HasDefault || ca.InPK != cb.InPK {
			return false
		}
	}
	if !sameStrings(a.PrimaryKey, b.PrimaryKey) {
		return false
	}
	if len(a.ForeignKeys) != len(b.ForeignKeys) {
		return false
	}
	// Foreign keys compare as a multiset: declaration order differs
	// legitimately between full dumps and migration scripts.
	counts := map[string]int{}
	for _, fk := range a.ForeignKeys {
		counts[fkKey(fk)]++
	}
	for _, fk := range b.ForeignKeys {
		counts[fkKey(fk)]--
		if counts[fkKey(fk)] < 0 {
			return false
		}
	}
	return true
}

func fkKey(fk ForeignKey) string {
	return strings.Join(fk.Columns, ",") + "->" + fk.RefTable
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
