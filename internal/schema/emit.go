package schema

import (
	"strings"
)

// Emit renders the schema as a SQL DDL script that, parsed and applied to
// an empty schema, reconstructs an equivalent logical schema (see the
// round-trip property tests). Tables appear in insertion order; names are
// quoted only when necessary.
func (s *Schema) Emit() string {
	var sb strings.Builder
	// Rough per-attribute footprint of the rendered script; avoids the
	// builder's doubling churn on large schemas.
	sb.Grow(64*s.TableCount() + 48*s.AttributeCount())
	for i, t := range s.Tables() {
		if i > 0 {
			sb.WriteByte('\n')
		}
		emitTable(&sb, t)
	}
	return sb.String()
}

func emitTable(sb *strings.Builder, t *Table) {
	sb.WriteString("CREATE TABLE ")
	writeQuotedIdent(sb, t.Name)
	sb.WriteString(" (\n")
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(",\n")
		}
		sb.WriteString("  ")
		writeQuotedIdent(sb, c.Name)
		if c.Type != "" {
			sb.WriteByte(' ')
			sb.WriteString(c.Type)
		}
		if c.NotNull && !c.InPK {
			sb.WriteString(" NOT NULL")
		}
		if c.HasDefault {
			sb.WriteString(" DEFAULT ")
			if c.Default == "" {
				sb.WriteString("NULL")
			} else {
				sb.WriteString(c.Default)
			}
		}
		if c.AutoIncrement {
			sb.WriteString(" AUTO_INCREMENT")
		}
	}
	if len(t.PrimaryKey) > 0 {
		sb.WriteString(",\n  PRIMARY KEY (")
		writeQuotedList(sb, t.PrimaryKey)
		sb.WriteByte(')')
	}
	for _, u := range t.Uniques {
		sb.WriteString(",\n  UNIQUE (")
		writeQuotedList(sb, u)
		sb.WriteByte(')')
	}
	for _, fk := range t.ForeignKeys {
		sb.WriteString(",\n  ")
		if fk.Name != "" && !strings.HasPrefix(fk.Name, "fk_") {
			sb.WriteString("CONSTRAINT ")
			writeQuotedIdent(sb, fk.Name)
			sb.WriteByte(' ')
		}
		sb.WriteString("FOREIGN KEY (")
		writeQuotedList(sb, fk.Columns)
		sb.WriteString(") REFERENCES ")
		writeQuotedIdent(sb, fk.RefTable)
		if len(fk.RefColumns) > 0 {
			sb.WriteString(" (")
			writeQuotedList(sb, fk.RefColumns)
			sb.WriteByte(')')
		}
	}
	sb.WriteString("\n);\n")
}

// writeQuotedList writes a comma-separated identifier list straight into
// the builder, quoting each name only as needed.
func writeQuotedList(sb *strings.Builder, names []string) {
	for i, n := range names {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeQuotedIdent(sb, n)
	}
}

// writeQuotedIdent writes an identifier into the builder, wrapping it in
// double quotes when it is not a plain lower-case SQL name (the form the
// parser normalizes unquoted names to).
func writeQuotedIdent(sb *strings.Builder, name string) {
	if plainIdent(name) {
		sb.WriteString(name)
		return
	}
	sb.WriteByte('"')
	for i := 0; i < len(name); i++ {
		if name[i] == '"' {
			sb.WriteString(`""`)
		} else {
			sb.WriteByte(name[i])
		}
	}
	sb.WriteByte('"')
}

func plainIdent(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Words that would lex as keywords in column position must be quoted.
	switch name {
	case "primary", "unique", "constraint", "foreign", "check", "key", "index",
		"not", "null", "default", "references", "create", "table", "drop", "alter":
		return false
	}
	return true
}

// Equivalent reports whether two schemas are logically identical: same
// tables, columns (name, type, nullability, default, key participation),
// primary keys and foreign-key column sets. It is the equality notion
// under which Emit round-trips.
func Equivalent(a, b *Schema) bool {
	if a.TableCount() != b.TableCount() {
		return false
	}
	for _, ta := range a.Tables() {
		tb, ok := b.Table(ta.Name)
		if !ok || !tablesEquivalent(ta, tb) {
			return false
		}
	}
	return true
}

func tablesEquivalent(a, b *Table) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		ca, cb := a.Columns[i], b.Columns[i]
		if ca.Name != cb.Name || ca.Type != cb.Type || ca.NotNull != cb.NotNull ||
			ca.HasDefault != cb.HasDefault || ca.InPK != cb.InPK {
			return false
		}
	}
	if !sameStrings(a.PrimaryKey, b.PrimaryKey) {
		return false
	}
	if len(a.ForeignKeys) != len(b.ForeignKeys) {
		return false
	}
	// Foreign keys compare as a multiset: declaration order differs
	// legitimately between full dumps and migration scripts.
	counts := map[string]int{}
	for _, fk := range a.ForeignKeys {
		counts[fkKey(fk)]++
	}
	for _, fk := range b.ForeignKeys {
		counts[fkKey(fk)]--
		if counts[fkKey(fk)] < 0 {
			return false
		}
	}
	return true
}

func fkKey(fk ForeignKey) string {
	return strings.Join(fk.Columns, ",") + "->" + fk.RefTable
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
