// Package schema models the logical level of a relational database schema —
// tables, attributes (columns), primary and foreign keys — and evolves it by
// applying parsed DDL scripts. This is the level of abstraction at which the
// paper measures change: physical artifacts (indexes, storage options,
// views) are recognized but excluded, matching the unit of measurement of
// §3.2 of the paper (the number of affected attributes).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Column is a single attribute of a table.
type Column struct {
	Name string
	// Type is the normalized data type (see NormalizeType).
	Type string
	// NotNull, Default, HasDefault and AutoIncrement mirror the parsed
	// column attributes that participate in maintenance-change detection.
	NotNull       bool
	Default       string
	HasDefault    bool
	AutoIncrement bool
	// InPK reports whether the column participates in the primary key.
	InPK bool
}

// ForeignKey is a referential constraint of a table.
type ForeignKey struct {
	// Name is the constraint name; synthesized when anonymous.
	Name       string
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table is a base table of the logical schema.
type Table struct {
	Name    string
	Columns []Column // in definition order
	// PrimaryKey lists the PK columns in key order (empty = no PK).
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	// Uniques lists unique constraints as column-name lists.
	Uniques [][]string
	// shared marks a table referenced by more than one snapshot (see
	// Schema.CloneCOW); the apply path clones it before any mutation.
	shared bool
}

// Column returns the column with the given name and whether it exists.
func (t *Table) Column(name string) (*Column, bool) {
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i], true
		}
	}
	return nil, false
}

// ColumnNames returns the column names in definition order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// copySlice returns an owned copy of s, preserving nil-ness (the cache
// codec encodes nil and empty slices distinctly, so clones must not
// collapse one into the other).
func copySlice[E any](s []E) []E {
	if s == nil {
		return nil
	}
	out := make([]E, len(s))
	copy(out, s)
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	ct := &Table{Name: t.Name}
	ct.Columns = copySlice(t.Columns)
	ct.PrimaryKey = copySlice(t.PrimaryKey)
	if t.ForeignKeys != nil {
		ct.ForeignKeys = make([]ForeignKey, len(t.ForeignKeys))
		for i, fk := range t.ForeignKeys {
			ct.ForeignKeys[i] = ForeignKey{
				Name:       fk.Name,
				Columns:    copySlice(fk.Columns),
				RefTable:   fk.RefTable,
				RefColumns: copySlice(fk.RefColumns),
			}
		}
	}
	if t.Uniques != nil {
		ct.Uniques = make([][]string, len(t.Uniques))
		for i, u := range t.Uniques {
			ct.Uniques[i] = copySlice(u)
		}
	}
	return ct
}

// setPrimaryKey installs a primary key, updating the per-column InPK and
// NotNull flags (PK columns are implicitly NOT NULL).
func (t *Table) setPrimaryKey(cols []string) {
	for i := range t.Columns {
		t.Columns[i].InPK = false
	}
	t.PrimaryKey = append([]string(nil), cols...)
	for _, name := range cols {
		if c, ok := t.Column(name); ok {
			c.InPK = true
			c.NotNull = true
		}
	}
}

// Schema is a set of base tables. The zero value is not usable; call New.
type Schema struct {
	tables map[string]*Table
	order  []string // insertion order, for deterministic iteration
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: make(map[string]*Table)}
}

// NewWithCapacity returns an empty schema pre-sized for n tables, for
// builders that know the table count up front (e.g. the flat cache
// decoder, which rebuilds each version's schema from a table pool).
// Decoded snapshots may hold arena-backed string views into a read-only
// buffer (see internal/pipeline flatcodec); such schemas must be Sealed
// before publication so every mutation path copies tables instead of
// writing through the shared views.
func NewWithCapacity(n int) *Schema {
	return &Schema{tables: make(map[string]*Table, n), order: make([]string, 0, n)}
}

// TableCount returns the number of tables.
func (s *Schema) TableCount() int { return len(s.tables) }

// AttributeCount returns the total number of attributes across all tables.
func (s *Schema) AttributeCount() int {
	n := 0
	for _, t := range s.tables {
		n += len(t.Columns)
	}
	return n
}

// Table returns the named table and whether it exists.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns all tables in insertion order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, name := range s.order {
		if t, ok := s.tables[name]; ok {
			out = append(out, t)
		}
	}
	return out
}

// AppendTableNames appends the table names in insertion order to buf and
// returns it, allocating only when buf lacks capacity. Names can repeat
// if a rename collided with an existing table; set-like callers must
// dedupe.
func (s *Schema) AppendTableNames(buf []string) []string {
	for _, name := range s.order {
		if _, ok := s.tables[name]; ok {
			buf = append(buf, name)
		}
	}
	return buf
}

// TableNames returns the sorted table names.
func (s *Schema) TableNames() []string {
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddTable inserts or replaces a table.
func (s *Schema) AddTable(t *Table) {
	if _, exists := s.tables[t.Name]; !exists {
		s.order = append(s.order, t.Name)
	}
	s.tables[t.Name] = t
}

// DropTable removes a table; it reports whether the table existed.
func (s *Schema) DropTable(name string) bool {
	if _, ok := s.tables[name]; !ok {
		return false
	}
	delete(s.tables, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// renameTable renames a table in place, preserving order position.
func (s *Schema) renameTable(old, new string) bool {
	t, ok := s.tables[old]
	if !ok {
		return false
	}
	t = s.writable(t)
	delete(s.tables, old)
	t.Name = new
	s.tables[new] = t
	for i, n := range s.order {
		if n == old {
			s.order[i] = new
			break
		}
	}
	return true
}

// writable returns a table of s that is safe to mutate, cloning it first
// (and swapping the clone into the schema) when the table is shared with
// another snapshot.
func (s *Schema) writable(t *Table) *Table {
	if !t.shared {
		return t
	}
	c := t.Clone()
	s.tables[t.Name] = c
	return c
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := New()
	for _, name := range s.order {
		if t, ok := s.tables[name]; ok {
			c.AddTable(t.Clone())
		}
	}
	return c
}

// Seal marks every table of the schema as shared, so any later mutation
// through the apply path clones the table instead of writing in place.
// Published snapshots (completed analyses, cache decodes) are sealed:
// consecutive versions of a history share table storage, and writing
// through one snapshot would silently corrupt its siblings.
func (s *Schema) Seal() {
	for _, t := range s.tables {
		t.shared = true
	}
}

// CloneCOW returns a snapshot that shares table storage with the
// receiver. Tables become copy-on-write in both schemas: the first
// mutation through either schema's apply path clones the affected table,
// so unchanged tables stay pointer-identical across versions (which the
// differ exploits). Use Clone for a fully independent deep copy.
func (s *Schema) CloneCOW() *Schema {
	c := &Schema{tables: make(map[string]*Table, len(s.tables)), order: copySlice(s.order)}
	for name, t := range s.tables {
		t.shared = true
		c.tables[name] = t
	}
	return c
}

// String renders a compact single-line summary, useful in test failures.
func (s *Schema) String() string {
	var sb strings.Builder
	for i, name := range s.TableNames() {
		if i > 0 {
			sb.WriteString("; ")
		}
		t := s.tables[name]
		fmt.Fprintf(&sb, "%s(%s)", name, strings.Join(t.ColumnNames(), ","))
	}
	return sb.String()
}
