package schema

import (
	"testing"

	"schemaevo/internal/sqlddl"
)

func parse(src string) *sqlddl.Script { return sqlddl.Parse(src) }

func mustParse(t *testing.T, src string) *sqlddl.Script {
	t.Helper()
	script := parse(src)
	if len(script.Errors) > 0 {
		t.Fatalf("parse %q: %v", src, script.Errors)
	}
	return script
}

func build(t *testing.T, src string) *Schema {
	t.Helper()
	s, notes := ParseAndBuild(src)
	for _, n := range notes {
		t.Logf("note: %v", n)
	}
	return s
}

func TestBuildSnapshot(t *testing.T) {
	s := build(t, `
CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(50) NOT NULL);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  author INT REFERENCES users(id),
  body TEXT
);`)
	if s.TableCount() != 2 {
		t.Fatalf("tables = %d", s.TableCount())
	}
	if s.AttributeCount() != 5 {
		t.Errorf("attributes = %d", s.AttributeCount())
	}
	users, _ := s.Table("users")
	if len(users.PrimaryKey) != 1 || users.PrimaryKey[0] != "id" {
		t.Errorf("users pk = %v", users.PrimaryKey)
	}
	id, _ := users.Column("id")
	if !id.InPK || !id.NotNull {
		t.Errorf("pk column flags: %+v", id)
	}
	posts, _ := s.Table("posts")
	if len(posts.ForeignKeys) != 1 || posts.ForeignKeys[0].RefTable != "users" {
		t.Errorf("posts fks = %+v", posts.ForeignKeys)
	}
}

func TestApplyAlterLifecycle(t *testing.T) {
	s := build(t, `CREATE TABLE t (a INT);`)
	steps := []string{
		`ALTER TABLE t ADD COLUMN b TEXT`,
		`ALTER TABLE t ADD COLUMN c DATE, ADD COLUMN d INT`,
		`ALTER TABLE t DROP COLUMN a`,
		`ALTER TABLE t RENAME COLUMN b TO bb`,
		`ALTER TABLE t MODIFY COLUMN d BIGINT NOT NULL`,
		`ALTER TABLE t ADD PRIMARY KEY (d)`,
	}
	for _, step := range steps {
		notes := s.Apply(mustParse(t, step))
		if len(notes) != 0 {
			t.Fatalf("%s: notes %v", step, notes)
		}
	}
	tbl, _ := s.Table("t")
	got := tbl.ColumnNames()
	want := []string{"bb", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("columns = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("column %d = %q want %q", i, got[i], want[i])
		}
	}
	d, _ := tbl.Column("d")
	if d.Type != "bigint" || !d.NotNull || !d.InPK {
		t.Errorf("d = %+v", d)
	}
}

func TestRenameTable(t *testing.T) {
	s := build(t, `CREATE TABLE old (x INT); ALTER TABLE old RENAME TO new;`)
	if _, ok := s.Table("old"); ok {
		t.Error("old still present")
	}
	tbl, ok := s.Table("new")
	if !ok || tbl.Name != "new" {
		t.Fatalf("new missing: %v", s)
	}
}

func TestDropTableNotes(t *testing.T) {
	s, notes := ParseAndBuild(`DROP TABLE missing;`)
	if len(notes) != 1 {
		t.Fatalf("notes = %v", notes)
	}
	if s.TableCount() != 0 {
		t.Errorf("tables = %d", s.TableCount())
	}
	_, notes = ParseAndBuild(`DROP TABLE IF EXISTS missing;`)
	if len(notes) != 0 {
		t.Errorf("IF EXISTS should be silent: %v", notes)
	}
}

func TestAlterMissingTargets(t *testing.T) {
	s := build(t, `CREATE TABLE t (a INT);`)
	notes := s.Apply(parse(`ALTER TABLE nope ADD COLUMN x INT;
ALTER TABLE t DROP COLUMN nope;
ALTER TABLE t ADD COLUMN a INT;`))
	if len(notes) != 3 {
		t.Fatalf("notes = %v", notes)
	}
}

func TestDropColumnCleansKeys(t *testing.T) {
	s := build(t, `CREATE TABLE t (
		a INT, b INT, PRIMARY KEY (a, b),
		CONSTRAINT fk FOREIGN KEY (a) REFERENCES other (id)
	);
	ALTER TABLE t DROP COLUMN a;`)
	tbl, _ := s.Table("t")
	if len(tbl.PrimaryKey) != 1 || tbl.PrimaryKey[0] != "b" {
		t.Errorf("pk = %v", tbl.PrimaryKey)
	}
	if len(tbl.ForeignKeys) != 0 {
		t.Errorf("fk not removed: %+v", tbl.ForeignKeys)
	}
}

func TestDropForeignKeyByName(t *testing.T) {
	s := build(t, `CREATE TABLE t (
		a INT,
		CONSTRAINT fk_a FOREIGN KEY (a) REFERENCES o (id)
	);
	ALTER TABLE t DROP FOREIGN KEY fk_a;`)
	tbl, _ := s.Table("t")
	if len(tbl.ForeignKeys) != 0 {
		t.Errorf("fks = %+v", tbl.ForeignKeys)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := build(t, `CREATE TABLE t (a INT, PRIMARY KEY (a));`)
	c := s.Clone()
	tbl, _ := c.Table("t")
	tbl.Columns[0].Name = "mutated"
	tbl.PrimaryKey[0] = "mutated"
	orig, _ := s.Table("t")
	if orig.Columns[0].Name != "a" || orig.PrimaryKey[0] != "a" {
		t.Error("clone aliases original storage")
	}
}

func TestCreateTableIfNotExistsKeepsOriginal(t *testing.T) {
	s := build(t, `
CREATE TABLE t (a INT, b INT);
CREATE TABLE IF NOT EXISTS t (x INT);`)
	tbl, _ := s.Table("t")
	if len(tbl.Columns) != 2 {
		t.Errorf("original replaced: %v", tbl.ColumnNames())
	}
}

func TestNormalizeType(t *testing.T) {
	cases := map[string]string{
		"INTEGER":                  "int",
		"int4":                     "int",
		"serial":                   "int",
		"bigserial":                "bigint",
		"BOOLEAN":                  "bool",
		"character varying(30)":    "varchar(30)",
		"varchar(30)":              "varchar(30)",
		"double precision":         "double",
		"numeric(10, 2)":           "numeric(10,2)",
		"decimal(10,2)":            "numeric(10,2)",
		"datetime":                 "timestamp",
		"timestamp with time zone": "timestamp with time zone",
		"int(11) unsigned":         "int(11) unsigned",
		"bigint unsigned":          "bigint unsigned",
		"text array":               "text array",
		"":                         "",
	}
	for in, want := range cases {
		if got := NormalizeType(in); got != want {
			t.Errorf("NormalizeType(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTypeFamily(t *testing.T) {
	cases := map[string]string{
		"varchar(255)":          "varchar",
		"character varying(30)": "varchar",
		"int(11) unsigned":      "int",
		"numeric(10,2)":         "numeric",
	}
	for in, want := range cases {
		if got := TypeFamily(in); got != want {
			t.Errorf("TypeFamily(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTablesOrderDeterministic(t *testing.T) {
	s := build(t, `CREATE TABLE z (a INT); CREATE TABLE a (b INT); CREATE TABLE m (c INT);`)
	tables := s.Tables()
	wantOrder := []string{"z", "a", "m"} // insertion order
	for i, tb := range tables {
		if tb.Name != wantOrder[i] {
			t.Errorf("Tables()[%d] = %q, want %q", i, tb.Name, wantOrder[i])
		}
	}
	names := s.TableNames()
	wantSorted := []string{"a", "m", "z"}
	for i, n := range names {
		if n != wantSorted[i] {
			t.Errorf("TableNames()[%d] = %q, want %q", i, n, wantSorted[i])
		}
	}
}

// TestNormalizeTypeIdempotent: normalizing twice is the same as once.
func TestNormalizeTypeIdempotent(t *testing.T) {
	inputs := []string{
		"INTEGER", "int4", "serial", "character varying(30)", "double precision",
		"numeric(10, 2)", "datetime", "int(11) unsigned", "text array",
		"bigint unsigned zerofill", "timestamptz", "CLOB", "weird_custom_type(3)",
	}
	for _, in := range inputs {
		once := NormalizeType(in)
		twice := NormalizeType(once)
		if once != twice {
			t.Errorf("NormalizeType not idempotent on %q: %q -> %q", in, once, twice)
		}
	}
}
