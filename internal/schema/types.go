package schema

import "strings"

// typeAliases maps dialect-specific base type names to a canonical family
// name, so that diffing does not report a "change" when a project merely
// re-dumps the same schema through a different tool (int vs integer,
// bool vs boolean, ...). Genuinely different types (tinyint vs bigint,
// text vs varchar) stay distinct.
var typeAliases = map[string]string{
	"integer": "int", "int4": "int", "mediumint": "int",
	"int8":   "bigint",
	"int2":   "smallint",
	"serial": "int", "serial4": "int",
	"bigserial": "bigint", "serial8": "bigint",
	"smallserial": "smallint", "serial2": "smallint",
	"boolean":           "bool",
	"character varying": "varchar", "char varying": "varchar",
	"character":        "char",
	"double precision": "double", "float8": "double",
	"float4":  "real",
	"decimal": "numeric", "dec": "numeric",
	"datetime":               "timestamp",
	"timestamptz":            "timestamp with time zone",
	"character large object": "text", "clob": "text",
	"binary large object": "blob",
}

// NormalizeType canonicalizes a raw SQL data type: lower-cases it, maps
// dialect synonyms onto one family name, and preserves precision/length
// arguments and the unsigned/zerofill/array modifiers.
//
//	NormalizeType("INTEGER")            == "int"
//	NormalizeType("charactervarying(30)") is not accepted; input comes
//	from sqlddl which spaces multi-word types: "character varying(30)"
//	→ "varchar(30)".
func NormalizeType(raw string) string {
	raw = strings.ToLower(strings.TrimSpace(raw))
	if raw == "" {
		return ""
	}
	base, args, suffix := splitType(raw)
	if canon, ok := typeAliases[base]; ok {
		base = canon
	}
	var sb strings.Builder
	sb.WriteString(base)
	if args != "" {
		sb.WriteString("(")
		sb.WriteString(args)
		sb.WriteString(")")
	}
	if suffix != "" {
		sb.WriteString(" ")
		sb.WriteString(suffix)
	}
	return sb.String()
}

// splitType splits "base(args) suffix" where base may be multi-word
// ("character varying") and suffix holds trailing modifiers such as
// "unsigned", "zerofill" or "array".
func splitType(raw string) (base, args, suffix string) {
	open := strings.IndexByte(raw, '(')
	if open < 0 {
		return splitSuffix(raw)
	}
	close := strings.IndexByte(raw[open:], ')')
	if close < 0 {
		return splitSuffix(raw)
	}
	close += open
	base = strings.TrimSpace(raw[:open])
	args = strings.ReplaceAll(strings.TrimSpace(raw[open+1:close]), " ", "")
	suffix = strings.TrimSpace(raw[close+1:])
	return base, args, suffix
}

// splitSuffix separates trailing modifiers from an unparenthesized type.
func splitSuffix(raw string) (base, args, suffix string) {
	words := strings.Fields(raw)
	var suffixes []string
	for len(words) > 1 {
		last := words[len(words)-1]
		if last == "unsigned" || last == "zerofill" || last == "signed" || last == "array" {
			suffixes = append([]string{last}, suffixes...)
			words = words[:len(words)-1]
			continue
		}
		break
	}
	return strings.Join(words, " "), "", strings.Join(suffixes, " ")
}

// TypeFamily returns the canonical base name of a type, without arguments
// or modifiers: TypeFamily("varchar(255)") == "varchar". It is the
// coarsest comparison level; diff uses full NormalizeType equality and
// exposes the family for reporting.
func TypeFamily(raw string) string {
	base, _, _ := splitType(strings.ToLower(strings.TrimSpace(raw)))
	if canon, ok := typeAliases[base]; ok {
		return canon
	}
	return base
}
