package schema

import (
	"sync"

	"schemaevo/internal/sqlddl"
)

// tableProto is the memoized materialization of one CREATE TABLE
// statement: the table it defines plus the per-column anomaly messages.
// Both depend only on the statement, so they are cached per AST node and
// shared (copy-on-write) by every schema version that executes it.
type tableProto struct {
	table *Table
	msgs  []string
}

// Reconstructor rebuilds the per-version schemas of one DDL file
// incrementally. Successive versions of real (and synthetic) schema
// histories overwhelmingly share a statement prefix with their
// predecessor — migration scripts are append-only, and full dumps differ
// in a handful of statements — so instead of re-lexing, re-parsing and
// re-applying the whole script per version, the reconstructor:
//
//  1. parses each version through a sqlddl.Session, which memoizes
//     statement ASTs by text, making the per-version parse a sequence of
//     cache hits;
//  2. detects when the new version's statement list extends the previous
//     version's, and in that case clones the predecessor schema
//     copy-on-write and applies only the suffix;
//  3. on a full rebuild, materializes CREATE TABLE statements through a
//     per-AST-node prototype cache, so unchanged tables remain
//     pointer-identical across versions and the differ can skip them.
//
// The result is required to be indistinguishable from the full rebuild
// (ParseAndBuild) — same schemas, same notes, same nil-ness of every
// slice through the cache codec; TestReconstructorMatchesFullRebuild
// pins this.
//
// A Reconstructor is not safe for concurrent use. Acquire/Release recycle
// instances (and their parse sessions) through a pool.
type Reconstructor struct {
	sess   *sqlddl.Session
	protos map[*sqlddl.CreateTable]*tableProto

	units     []sqlddl.Unit
	prevUnits []sqlddl.Unit
	prev      *Schema
	prevNotes []Note // apply notes of prev (parse notes excluded)
	prevStmts int    // parsed (non-nil) statements in prev
	prevValid bool
}

// NewReconstructor returns a reconstructor backed by a pooled parse
// session.
func NewReconstructor() *Reconstructor {
	return &Reconstructor{
		sess:   sqlddl.AcquireSession(),
		protos: make(map[*sqlddl.CreateTable]*tableProto, 64),
	}
}

var reconstructorPool = sync.Pool{New: func() any { return NewReconstructor() }}

// AcquireReconstructor returns a reconstructor from the package pool,
// reset for a fresh file history.
func AcquireReconstructor() *Reconstructor {
	rc := reconstructorPool.Get().(*Reconstructor)
	return rc
}

// ReleaseReconstructor clears per-project state (the statement and
// prototype caches retain parsed source text), restores the generic
// dialect, and returns the reconstructor to the pool.
func ReleaseReconstructor(rc *Reconstructor) {
	rc.SetDialect(sqlddl.Generic)
	rc.ResetProject()
	reconstructorPool.Put(rc)
}

// SetDialect switches the parse dialect for subsequent Build calls.
// Cached statement ASTs and table prototypes were produced under the
// previous dialect's grammar, so an actual dialect change invalidates
// them along with the incremental chain; re-setting the current dialect
// is a no-op.
func (rc *Reconstructor) SetDialect(d sqlddl.Dialect) {
	if d == nil {
		d = sqlddl.Generic
	}
	if d.ID() == rc.sess.DialectID() {
		return
	}
	rc.sess.SetDialect(d)
	clear(rc.protos)
	rc.ResetFile()
}

// DialectID returns the dialect the reconstructor currently parses under.
func (rc *Reconstructor) DialectID() sqlddl.DialectID { return rc.sess.DialectID() }

// ResetProject drops all cached state tied to previously parsed content:
// the statement cache (whose keys alias source text), the table
// prototypes (keyed by cached AST nodes), and the previous-version chain.
func (rc *Reconstructor) ResetProject() {
	rc.sess.ClearCache()
	clear(rc.protos)
	rc.ResetFile()
}

// ResetFile breaks the incremental chain (a new file history begins, or
// the file was deleted) while keeping the statement and prototype caches,
// which remain valid for the same project.
func (rc *Reconstructor) ResetFile() {
	rc.prev = nil
	rc.prevNotes = nil
	rc.prevStmts = 0
	rc.prevValid = false
}

// Build parses src and returns the schema it defines plus the anomaly
// notes, exactly as ParseAndBuild would, reusing the previous version's
// work where the statement prefix is unchanged.
func (rc *Reconstructor) Build(src string) (*Schema, []Note) {
	rc.units, rc.prevUnits = rc.prevUnits, rc.units
	units := rc.sess.ParseUnits(src, rc.units[:0])
	rc.units = units

	var s *Schema
	var notes []Note
	parsed, from := 0, 0
	if rc.prevValid && prefixMatches(rc.prevUnits, units) {
		s = rc.prev.CloneCOW()
		notes = append(notes, rc.prevNotes...)
		parsed = rc.prevStmts
		from = len(rc.prevUnits)
	} else {
		s = New()
	}
	for i := from; i < len(units); i++ {
		if st := units[i].Stmt; st != nil {
			notes = rc.applyStatement(s, notes, parsed, st)
			parsed++
		}
	}
	applyNotes := notes
	// Parse-error notes come after all apply notes, mirroring ParseAndBuild.
	for i := range units {
		if e := units[i].Err; e != nil {
			notes = append(notes, Note{Stmt: e.Stmt, Msg: "parse: " + e.Msg})
		}
	}
	rc.prev = s
	rc.prevNotes = applyNotes
	rc.prevStmts = parsed
	rc.prevValid = true
	return s, notes
}

// Prime replays a previously built source text so that the next Build
// call can extend it incrementally, exactly as if src had been built in
// sequence; the schema and notes are discarded. It is the hand-off point
// for stores that kept a file history's last snapshot: re-feeding that one
// version seeds the session's statement cache and the prefix chain, so
// re-analyzing versions N+1.. costs only the suffix.
func (rc *Reconstructor) Prime(src string) {
	rc.Build(src)
}

// prefixMatches reports whether cur begins with exactly the units of
// prev. Parsed units compare by AST pointer (the session memoizes by
// text, so equal text means the same pointer); unparsed units (comments,
// parse errors) compare by text.
func prefixMatches(prev, cur []sqlddl.Unit) bool {
	if len(prev) > len(cur) {
		return false
	}
	for i := range prev {
		pu, cu := &prev[i], &cur[i]
		if pu.Stmt != cu.Stmt {
			return false
		}
		if pu.Stmt == nil && pu.Text != cu.Text {
			return false
		}
	}
	return true
}

// applyStatement applies one statement, routing CREATE TABLE through the
// prototype cache; all note values match Schema.applyStatement exactly.
func (rc *Reconstructor) applyStatement(s *Schema, notes []Note, idx int, stmt sqlddl.Statement) []Note {
	ct, ok := stmt.(*sqlddl.CreateTable)
	if !ok {
		return append(notes, s.applyStatement(idx, stmt)...)
	}
	proto := rc.protos[ct]
	if proto == nil {
		t, msgs := buildCreateTable(ct)
		proto = &tableProto{table: t, msgs: msgs}
		rc.protos[ct] = proto
	}
	if _, exists := s.Table(ct.Name); exists {
		if ct.IfNotExists {
			return notes
		}
		notes = append(notes, Note{idx, "CREATE TABLE " + ct.Name + ": replacing existing definition"})
	}
	for _, m := range proto.msgs {
		notes = append(notes, Note{idx, m})
	}
	// The prototype is shared by every version executing this statement;
	// later in-version mutations go copy-on-write through writable.
	proto.table.shared = true
	s.AddTable(proto.table)
	return notes
}
