package gitrepo

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"schemaevo/internal/history"
)

// testRepo builds a real git repository with a DDL history spanning
// months (via forged commit dates).
func testRepo(t *testing.T) string {
	t.Helper()
	if !Available() {
		t.Skip("git binary not available")
	}
	dir := t.TempDir()
	run := func(env []string, args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(), env...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	run(nil, "init", "-q")
	run(nil, "config", "user.email", "test@example.org")
	run(nil, "config", "user.name", "Test")

	write := func(path, content string) {
		t.Helper()
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	commit := func(date, msg string) {
		t.Helper()
		env := []string{"GIT_AUTHOR_DATE=" + date, "GIT_COMMITTER_DATE=" + date}
		run(env, "add", "-A")
		run(env, "commit", "-q", "-m", msg, "--allow-empty")
	}

	write("main.go", "package main\nfunc main() {}\n")
	commit("2020-01-10T10:00:00+00:00", "initial code")

	write("db/schema.sql", "CREATE TABLE users (id INT PRIMARY KEY, name TEXT);\n")
	commit("2020-03-05T10:00:00+00:00", "schema birth")

	write("db/schema.sql", "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);\nCREATE TABLE posts (id INT, author INT);\n")
	write("main.go", "package main\nfunc main() { /* v2 */ }\nfunc helper() {}\n")
	commit("2020-06-20T10:00:00+00:00", "grow schema")

	write("main.go", "package main\nfunc main() { /* v3 */ }\n")
	commit("2021-05-01T10:00:00+00:00", "late source work")
	return dir
}

func TestExtractBasics(t *testing.T) {
	dir := testRepo(t)
	repo, err := Extract(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Commits) != 4 {
		t.Fatalf("commits = %d", len(repo.Commits))
	}
	if repo.Commits[0].SrcLines == 0 {
		t.Error("first commit source lines missing")
	}
	if repo.MainDDLPath() != "db/schema.sql" {
		t.Errorf("main ddl = %q", repo.MainDDLPath())
	}
	versions := repo.FileHistory("db/schema.sql")
	if len(versions) != 2 {
		t.Fatalf("ddl versions = %d", len(versions))
	}
	if versions[1].Content == versions[0].Content {
		t.Error("snapshots identical")
	}
	// Lifetime: 2020-01 .. 2021-05 = 17 months.
	if got := repo.LifetimeMonths(); got != 17 {
		t.Errorf("lifetime = %d months", got)
	}
}

func TestExtractFeedsPipeline(t *testing.T) {
	dir := testRepo(t)
	repo, err := Extract(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := history.FromRepo(repo)
	if err != nil {
		t.Fatal(err)
	}
	if h.NoteCount() != 0 {
		t.Errorf("notes: %d", h.NoteCount())
	}
	// Birth: 2 attrs (users); growth: email injected + posts(2) born = 3.
	if h.TotalActivity() != 5 {
		t.Errorf("activity = %d, heartbeat %v", h.TotalActivity(), h.SchemaMonthly)
	}
	if h.SchemaMonthly[2] != 2 || h.SchemaMonthly[5] != 3 {
		t.Errorf("heartbeat: %v", h.SchemaMonthly)
	}
}

func TestExtractMaxCommits(t *testing.T) {
	dir := testRepo(t)
	repo, err := Extract(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Commits) != 2 {
		t.Errorf("commits = %d", len(repo.Commits))
	}
}

func TestExtractDeletedDDL(t *testing.T) {
	dir := testRepo(t)
	run := func(env []string, args ...string) {
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(), env...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	if err := os.Remove(filepath.Join(dir, "db/schema.sql")); err != nil {
		t.Fatal(err)
	}
	env := []string{"GIT_AUTHOR_DATE=2021-08-01T10:00:00+00:00", "GIT_COMMITTER_DATE=2021-08-01T10:00:00+00:00"}
	run(env, "add", "-A")
	run(env, "commit", "-q", "-m", "drop schema file")

	repo, err := Extract(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := repo.Commits[len(repo.Commits)-1]
	if len(last.Deleted) != 1 || last.Deleted[0] != "db/schema.sql" {
		t.Errorf("deletion not detected: %+v", last)
	}
	h, err := history.FromRepo(repo)
	if err != nil {
		t.Fatal(err)
	}
	final := h.FinalSchema()
	if final.TableCount() != 0 {
		t.Errorf("final schema should be empty, has %v", final.TableNames())
	}
}

func TestExtractErrors(t *testing.T) {
	if !Available() {
		t.Skip("git binary not available")
	}
	if _, err := Extract(t.TempDir(), 0); err == nil {
		t.Error("non-repo directory should fail")
	}
}

func TestNormalizeRenamePath(t *testing.T) {
	cases := map[string]string{
		"plain/path.sql":           "plain/path.sql",
		"old.sql => new.sql":       "new.sql",
		"db/{v1 => v2}/schema.sql": "db/v2/schema.sql",
		"db/{ => sql}/schema.sql":  "db/sql/schema.sql",
		"a/{old => }/x.sql":        "a/x.sql",
	}
	for in, want := range cases {
		if got := normalizeRenamePath(in); got != want {
			t.Errorf("normalizeRenamePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNonMonotoneDatesAreClamped(t *testing.T) {
	if !Available() {
		t.Skip("git binary not available")
	}
	dir := t.TempDir()
	run := func(env []string, args ...string) {
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(), env...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	run(nil, "init", "-q")
	run(nil, "config", "user.email", "t@e.org")
	run(nil, "config", "user.name", "T")
	for i, date := range []string{
		"2020-05-01T10:00:00+00:00",
		"2020-02-01T10:00:00+00:00", // earlier than its parent
		"2020-08-01T10:00:00+00:00",
	} {
		if err := os.WriteFile(filepath.Join(dir, "s.sql"),
			[]byte(fmt.Sprintf("CREATE TABLE t%d (a INT);", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		env := []string{"GIT_AUTHOR_DATE=" + date, "GIT_COMMITTER_DATE=" + date}
		run(env, "add", "-A")
		run(env, "commit", "-q", "-m", "c")
	}
	repo, err := Extract(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Validate(); err != nil {
		t.Fatalf("clamping failed: %v", err)
	}
}
