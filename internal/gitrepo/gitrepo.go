// Package gitrepo extracts a schema history from a real local git
// repository — the step the paper's authors perform by cloning each FOSS
// project and walking the history of its DDL files. It shells out to the
// git binary (standard library os/exec only) and produces the same
// vcs.Repo the rest of the pipeline consumes, so
// schemaevo.AnalyzeRepo(gitrepo.Extract(dir)) classifies a live checkout.
package gitrepo

import (
	"bytes"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"schemaevo/internal/vcs"
)

// Available reports whether a usable git binary is on the PATH.
func Available() bool {
	_, err := exec.LookPath("git")
	return err == nil
}

// git runs a git command in dir and returns its stdout.
func git(dir string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("gitrepo: git %s: %w (%s)",
			strings.Join(args, " "), err, strings.TrimSpace(errb.String()))
	}
	return out.String(), nil
}

// logEntry is one commit of the extraction walk.
type logEntry struct {
	hash    string
	when    time.Time
	subject string
}

// Extract walks the current branch of the repository at dir (oldest
// first) and builds a vcs.Repo: every commit carries the post-commit
// snapshots of the DDL files it touched plus the number of source lines
// it changed in non-DDL files. maxCommits bounds the walk (0 = all).
func Extract(dir string, maxCommits int) (*vcs.Repo, error) {
	if !Available() {
		return nil, fmt.Errorf("gitrepo: no git binary on PATH")
	}
	logArgs := []string{"log", "--reverse", "--date-order", "--format=%H%x09%cI%x09%s"}
	out, err := git(dir, logArgs...)
	if err != nil {
		return nil, err
	}
	var entries []logEntry
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("gitrepo: malformed log line %q", line)
		}
		when, err := time.Parse(time.RFC3339, parts[1])
		if err != nil {
			return nil, fmt.Errorf("gitrepo: commit %s: %w", parts[0], err)
		}
		e := logEntry{hash: parts[0], when: when}
		if len(parts) == 3 {
			e.subject = parts[2]
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("gitrepo: repository %s has no commits", dir)
	}
	if maxCommits > 0 && len(entries) > maxCommits {
		entries = entries[:maxCommits]
	}

	repoName := dir
	if i := strings.LastIndexByte(dir, '/'); i >= 0 && i+1 < len(dir) {
		repoName = dir[i+1:]
	}
	repo := &vcs.Repo{Name: repoName}
	for _, e := range entries {
		commit, err := extractCommit(dir, e)
		if err != nil {
			return nil, err
		}
		repo.Commits = append(repo.Commits, commit)
	}
	// Commit dates in real repositories are not always monotone (rebases,
	// clock skew); the analysis needs monotone time, so clamp backwards
	// jumps to the running maximum.
	for i := 1; i < len(repo.Commits); i++ {
		if repo.Commits[i].Time.Before(repo.Commits[i-1].Time) {
			repo.Commits[i].Time = repo.Commits[i-1].Time
		}
	}
	if err := repo.Validate(); err != nil {
		return nil, err
	}
	return repo, nil
}

// extractCommit reads one commit's change set via --numstat.
func extractCommit(dir string, e logEntry) (vcs.Commit, error) {
	c := vcs.Commit{ID: e.hash, Time: e.when, Message: e.subject}
	out, err := git(dir, "show", "--numstat", "--format=", e.hash)
	if err != nil {
		return c, err
	}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, "\t", 3)
		if len(fields) != 3 {
			continue
		}
		added, _ := strconv.Atoi(fields[0]) // "-" (binary) parses to 0
		deleted, _ := strconv.Atoi(fields[1])
		path := normalizeRenamePath(fields[2])
		if !vcs.IsDDLPath(path) {
			c.SrcLines += added + deleted
			continue
		}
		content, err := git(dir, "show", e.hash+":"+path)
		if err != nil {
			// The file is gone in this commit (deletion or rename-away).
			c.Deleted = append(c.Deleted, path)
			continue
		}
		if c.Files == nil {
			c.Files = map[string]string{}
		}
		c.Files[path] = content
	}
	return c, nil
}

// normalizeRenamePath reduces git's rename notations to the new path:
// "old => new" and "pre/{old => new}/post".
func normalizeRenamePath(path string) string {
	if !strings.Contains(path, " => ") {
		return path
	}
	if open := strings.IndexByte(path, '{'); open >= 0 {
		close := strings.IndexByte(path, '}')
		if close > open {
			inner := path[open+1 : close]
			parts := strings.SplitN(inner, " => ", 2)
			newInner := inner
			if len(parts) == 2 {
				newInner = parts[1]
			}
			out := path[:open] + newInner + path[close+1:]
			return strings.ReplaceAll(out, "//", "/")
		}
	}
	parts := strings.SplitN(path, " => ", 2)
	return parts[len(parts)-1]
}
