package server

import (
	"container/list"
	"sync"
)

// lruStore is the bounded in-memory result store: codec-encoded analysis
// results keyed by short content-hash ID, evicting least-recently-used
// entries beyond the capacity. Values are the pipeline cache codec's
// bytes (see internal/pipeline.EncodeResult), so the store bounds memory
// by the same compact representation the disk cache uses, and a hit is
// provably the same artifact a cold run would have produced.
//
// All methods are safe for concurrent use.
type lruStore struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	byID     map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	id   string
	data []byte
}

// newLRUStore builds a store holding at most capacity entries (minimum 1).
func newLRUStore(capacity int) *lruStore {
	if capacity < 1 {
		capacity = 1
	}
	return &lruStore{capacity: capacity, order: list.New(), byID: map[string]*list.Element{}}
}

// get returns the encoded result for id and marks it most recently used.
func (s *lruStore) get(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byID[id]
	if !ok {
		s.misses++
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits++
	return el.Value.(*lruEntry).data, true
}

// put inserts (or refreshes) an entry, evicting from the cold end beyond
// capacity.
func (s *lruStore) put(id string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		el.Value.(*lruEntry).data = data
		s.order.MoveToFront(el)
		return
	}
	s.byID[id] = s.order.PushFront(&lruEntry{id: id, data: data})
	for s.order.Len() > s.capacity {
		cold := s.order.Back()
		s.order.Remove(cold)
		delete(s.byID, cold.Value.(*lruEntry).id)
		s.evictions++
	}
}

// stats returns the hit/miss/eviction counters and current size.
func (s *lruStore) stats() (hits, misses, evictions int64, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions, s.order.Len()
}
