// Differential, persistence, and lifecycle tests for the store-backed
// server: incremental re-analysis must be byte-identical to cold
// analysis, a warm restart must serve everything from disk with zero
// re-analyses, and damage must degrade to recomputation, not loss.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// evolvingRepo returns the first n commits (4 <= n <= 8) of a fixed
// eight-commit DDL evolution: each prefix is a valid submission, and each
// longer prefix extends the shorter ones — the shape the incremental
// path needs to prove before reusing a cached parse.
func evolvingRepo(name string, n int) *vcs.Repo {
	day := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 9, 30, 0, 0, time.UTC)
	}
	all := []vcs.Commit{
		{ID: "e1", Time: day(2018, 3, 5), SrcLines: 100, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT);",
		}},
		{ID: "e2", Time: day(2018, 4, 11), SrcLines: 140, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);\nCREATE TABLE orders (id INT PRIMARY KEY, user_id INT);",
		}},
		{ID: "e3", Time: day(2018, 7, 2), SrcLines: 90},
		{ID: "e4", Time: day(2018, 9, 23), SrcLines: 220, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT);\nCREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total INT);\nCREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku TEXT);",
		}},
		{ID: "e5", Time: day(2019, 2, 14), SrcLines: 180, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT, active BOOLEAN);\nCREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total INT);\nCREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku TEXT);",
		}},
		{ID: "e6", Time: day(2019, 8, 30), SrcLines: 120},
		{ID: "e7", Time: day(2020, 1, 7), SrcLines: 260, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT, active BOOLEAN);\nCREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total INT, placed_at TIMESTAMP);\nCREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku TEXT);",
		}},
		{ID: "e8", Time: day(2020, 6, 19), SrcLines: 150, Files: map[string]string{
			"db/schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT, active BOOLEAN);\nCREATE TABLE orders (id INT PRIMARY KEY, user_id INT, total INT, placed_at TIMESTAMP);\nCREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku TEXT, qty INT);",
		}},
	}
	return &vcs.Repo{Name: name, Commits: append([]vcs.Commit(nil), all[:n]...)}
}

// TestIncrementalDifferential is the service-level differential suite:
// submitting versions 4..8 of one project in sequence rides the
// incremental path for every extension, and each response — plus the
// follow-up GET and the final aggregates — is byte-identical to a cold
// server analyzing the same version from scratch.
func TestIncrementalDifferential(t *testing.T) {
	warm, warmURL := newService(t, server.Config{})

	var warmBodies [][]byte
	var lastID string
	for n := 4; n <= 8; n++ {
		status, hdr, body := post(t, warmURL.URL, evolvingRepo("evolving-project", n))
		if status != http.StatusOK {
			t.Fatalf("v%d submit: status %d, body %s", n, status, body)
		}
		wantState := "miss"
		if n > 4 {
			wantState = "incremental"
		}
		if got := hdr.Get("X-Cache"); got != wantState {
			t.Fatalf("v%d submit X-Cache = %q, want %q", n, got, wantState)
		}
		warmBodies = append(warmBodies, body)
		var wire struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		lastID = wire.ID
	}
	if got := warm.Analyses(); got != 1 {
		t.Fatalf("full analyses = %d, want 1 (only v4)", got)
	}
	if got := warm.Incrementals(); got != 4 {
		t.Fatalf("incremental analyses = %d, want 4 (v5..v8)", got)
	}

	// The differential check proper: a cold server re-analyzes each
	// version from nothing; its bodies must match the warm server's
	// byte for byte.
	for i, n := 4, 0; i <= 8; i, n = i+1, n+1 {
		_, cold := newService(t, server.Config{})
		status, hdr, body := post(t, cold.URL, evolvingRepo("evolving-project", i))
		if status != http.StatusOK {
			t.Fatalf("cold v%d: status %d", i, status)
		}
		if hdr.Get("X-Cache") != "miss" {
			t.Fatalf("cold v%d X-Cache = %q, want miss", i, hdr.Get("X-Cache"))
		}
		if !bytes.Equal(body, warmBodies[n]) {
			t.Errorf("v%d: incremental body differs from cold analysis\n--- incremental ---\n%s\n--- cold ---\n%s",
				i, warmBodies[n], body)
		}
	}

	// The GET view of the final version agrees with its submit body.
	_, _, got := do(t, http.MethodGet, warmURL.URL+"/v1/projects/"+lastID, nil)
	if !bytes.Equal(got, warmBodies[len(warmBodies)-1]) {
		t.Fatal("GET body differs from the incremental submit body")
	}

	// Aggregates saw five versions of one name: exactly one live member.
	_, _, stats := do(t, http.MethodGet, warmURL.URL+"/v1/corpus/stats", nil)
	var sw struct {
		Projects int `json:"projects"`
		Analyzed int `json:"analyzed"`
	}
	if err := json.Unmarshal(stats, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Projects != 1 || sw.Analyzed != 1 {
		t.Fatalf("stats = %d/%d, want 1/1 (overwrites must not accumulate)", sw.Analyzed, sw.Projects)
	}
}

// TestWarmRestartServesFromDisk is the acceptance e2e at package level:
// a server with a disk store is fed several projects and shut down; a
// second server over the same directory serves every project from the
// disk tier — byte-identically, with zero analyses of any kind — and its
// aggregate endpoints agree with the pre-restart state.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	first, hs1 := newService(t, server.Config{StoreDir: dir, StoreShards: 4})
	type proj struct {
		id   string
		body []byte
	}
	var projects []proj
	for i := 0; i < 5; i++ {
		r := evolvingRepo(fmt.Sprintf("persisted-%02d", i), 4+i%5)
		status, _, body := post(t, hs1.URL, r)
		if status != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, status)
		}
		var wire struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		projects = append(projects, proj{id: wire.ID, body: body})
	}
	_, _, statsBefore := do(t, http.MethodGet, hs1.URL+"/v1/corpus/stats", nil)
	_, _, patternsBefore := do(t, http.MethodGet, hs1.URL+"/v1/corpus/patterns", nil)
	hs1.Close()
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	second, err := server.New(context.Background(), server.Config{StoreDir: dir, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	hs2 := newTestServer(t, second)

	if got := second.Stored(); got != 5 {
		t.Fatalf("restarted store holds %d projects, want 5", got)
	}
	for i, p := range projects {
		status, hdr, body := do(t, http.MethodGet, hs2.URL+"/v1/projects/"+p.id, nil)
		if status != http.StatusOK {
			t.Fatalf("restart GET %d: status %d", i, status)
		}
		if hdr.Get("X-Cache") != "hit" {
			t.Fatalf("restart GET %d X-Cache = %q, want hit", i, hdr.Get("X-Cache"))
		}
		if !bytes.Equal(body, p.body) {
			t.Fatalf("restart GET %d: body differs from the original submission", i)
		}
	}
	// Zero re-analyses of any kind: the whole restart was decode-only.
	if second.Analyses() != 0 || second.Incrementals() != 0 {
		t.Fatalf("restart ran %d full / %d incremental analyses, want 0/0",
			second.Analyses(), second.Incrementals())
	}
	rep := tel.Snapshot()
	if rep.Store.DiskHits == 0 {
		t.Fatal("restart served no disk hits; the disk tier was not exercised")
	}
	for _, st := range rep.Stages {
		if (st.Name == "analyze.exec" || st.Name == "analyze.incr") && st.Jobs != 0 {
			t.Fatalf("telemetry %s jobs = %d after warm restart, want 0", st.Name, st.Jobs)
		}
	}

	// The aggregates rebuilt from disk agree with the live ones.
	_, _, statsAfter := do(t, http.MethodGet, hs2.URL+"/v1/corpus/stats", nil)
	if !bytes.Equal(statsBefore, statsAfter) {
		t.Errorf("corpus stats drifted across restart\n--- before ---\n%s\n--- after ---\n%s", statsBefore, statsAfter)
	}
	_, _, patternsAfter := do(t, http.MethodGet, hs2.URL+"/v1/corpus/patterns", nil)
	if !bytes.Equal(patternsBefore, patternsAfter) {
		t.Errorf("corpus patterns drifted across restart")
	}

	// And the restarted server keeps extending incrementally: version 8
	// of a project whose v7 lives only on disk still takes the
	// incremental path.
	status, hdr, _ := post(t, hs2.URL, evolvingRepo("persisted-03", 8))
	if status != http.StatusOK || hdr.Get("X-Cache") != "incremental" {
		t.Fatalf("post-restart extension: status %d X-Cache %q, want 200 incremental", status, hdr.Get("X-Cache"))
	}
}

// newTestServer wraps httptest setup for an already-constructed server.
func newTestServer(t *testing.T, srv *server.Server) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs
}

// TestQuarantineReanalyzedOnDemand damages one persisted result record
// under a restarted server and asserts the project is re-analyzed from
// its snapshot on first GET — served 200 "reanalyzed", byte-identical —
// rather than lost.
func TestQuarantineReanalyzedOnDemand(t *testing.T) {
	dir := t.TempDir()
	first, hs1 := newService(t, server.Config{StoreDir: dir, StoreShards: 1})
	r := evolvingRepo("quarantine-me", 6)
	status, _, body := post(t, hs1.URL, r)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	var wire struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	first.Close()

	// Flip bytes in the tail of the single segment — the result record
	// is written after the source record, so tail damage hits it.
	seg := filepath.Join(dir, "shard-000.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for off := len(data) - 40; off < len(data)-20; off++ {
		data[off] ^= 0xA5
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	tel := telemetry.New()
	second, err := server.New(context.Background(), server.Config{StoreDir: dir, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	hs2 := newTestServer(t, second)

	status, hdr, got := do(t, http.MethodGet, hs2.URL+"/v1/projects/"+wire.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("quarantined GET: status %d, want 200 via re-analysis (body %s)", status, got)
	}
	if hdr.Get("X-Cache") != "reanalyzed" {
		t.Fatalf("quarantined GET X-Cache = %q, want reanalyzed", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(got, body) {
		t.Fatal("re-analyzed body differs from the original submission")
	}
	if rep := tel.Snapshot(); rep.Store.Quarantined == 0 || rep.Store.Reanalyses != 1 {
		t.Fatalf("telemetry: quarantined=%d reanalyses=%d, want >0 and 1",
			rep.Store.Quarantined, rep.Store.Reanalyses)
	}
}

// TestDeleteLifecycle covers DELETE /v1/projects/{id}: a submitted
// project disappears from every read path and the aggregates, stays
// dead across a restart (the tombstone), corpus projects are immutable,
// and unknown IDs 404.
func TestDeleteLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newService(t, server.Config{Corpus: testCorpus(t), StoreDir: dir})

	_, _, body := post(t, hs.URL, evolvingRepo("doomed-project", 5))
	var wire struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if srv.Stored() != 1 {
		t.Fatalf("Stored = %d, want 1", srv.Stored())
	}

	status, _, delBody := do(t, http.MethodDelete, hs.URL+"/v1/projects/"+wire.ID, nil)
	if status != http.StatusOK {
		t.Fatalf("delete: status %d, body %s", status, delBody)
	}
	var dw struct {
		Status string `json:"status"`
		ID     string `json:"id"`
	}
	if err := json.Unmarshal(delBody, &dw); err != nil || dw.Status != "deleted" || dw.ID != wire.ID {
		t.Fatalf("delete body malformed: %s", delBody)
	}
	if status, _, _ := do(t, http.MethodGet, hs.URL+"/v1/projects/"+wire.ID, nil); status != http.StatusNotFound {
		t.Fatalf("deleted project GET: status %d, want 404", status)
	}
	if status, _, _ := do(t, http.MethodDelete, hs.URL+"/v1/projects/"+wire.ID, nil); status != http.StatusNotFound {
		t.Fatalf("double delete: status %d, want 404", status)
	}
	var sw struct {
		Projects int `json:"projects"`
	}
	_, _, stats := do(t, http.MethodGet, hs.URL+"/v1/corpus/stats", nil)
	if err := json.Unmarshal(stats, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Projects != 12 {
		t.Fatalf("stats projects = %d after delete, want corpus-only 12", sw.Projects)
	}

	// Corpus projects are immutable.
	_, _, patterns := do(t, http.MethodGet, hs.URL+"/v1/corpus/patterns", nil)
	var pats struct {
		Groups []struct {
			Projects []struct {
				ID string `json:"id"`
			} `json:"projects"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(patterns, &pats); err != nil {
		t.Fatal(err)
	}
	var corpusID string
	for _, g := range pats.Groups {
		if len(g.Projects) > 0 {
			corpusID = g.Projects[0].ID
			break
		}
	}
	if corpusID == "" {
		t.Fatal("corpus has no analyzed projects")
	}
	if status, _, _ := do(t, http.MethodDelete, hs.URL+"/v1/projects/"+corpusID, nil); status != http.StatusForbidden {
		t.Fatalf("corpus delete: status %d, want 403", status)
	}

	// The tombstone keeps the project dead across a restart.
	hs.Close()
	srv.Close()
	second, err := server.New(context.Background(), server.Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	hs2 := newTestServer(t, second)
	if status, _, _ := do(t, http.MethodGet, hs2.URL+"/v1/projects/"+wire.ID, nil); status != http.StatusNotFound {
		t.Fatalf("deleted project resurrected after restart: status %d", status)
	}
	if second.Stored() != 0 {
		t.Fatalf("restarted Stored = %d, want 0", second.Stored())
	}
}
