package server

import (
	"strconv"
	"testing"
	"time"
)

// newRetryAfterServer builds the minimal in-package fixture the hint
// computation reads: the config base, the worker semaphore, and the
// waiter counter.
func newRetryAfterServer(base time.Duration, capacity int) *Server {
	return &Server{cfg: Config{RetryAfter: base}, sem: make(chan struct{}, capacity)}
}

func hintSecs(t *testing.T, s *Server) int {
	t.Helper()
	secs, err := strconv.Atoi(s.retryAfterSeconds())
	if err != nil {
		t.Fatalf("retryAfterSeconds() = %q, want an integer", s.retryAfterSeconds())
	}
	return secs
}

// TestRetryAfterAdaptiveBounds pins the adaptive hint's contract: the
// configured base on an idle server, monotone growth with pressure, and
// a hard [base, 8×base] envelope at every load — so clients never see a
// hint below the operator's floor nor an unbounded one.
func TestRetryAfterAdaptiveBounds(t *testing.T) {
	const capacity = 4
	base := 2 * time.Second

	s := newRetryAfterServer(base, capacity)
	if got := hintSecs(t, s); got != 2 {
		t.Fatalf("idle hint = %d, want the 2s base", got)
	}

	// Sweep busy workers × waiters, asserting the envelope and
	// monotonicity in total load.
	prev := 0
	prevLoad := -1
	for busy := 0; busy <= capacity; busy++ {
		for waiters := 0; waiters <= 3*capacity; waiters++ {
			s := newRetryAfterServer(base, capacity)
			for i := 0; i < busy; i++ {
				s.sem <- struct{}{}
			}
			s.semWait.Store(int64(waiters))
			got := hintSecs(t, s)
			if got < 2 || got > 16 {
				t.Fatalf("busy=%d waiters=%d: hint = %d, outside [2, 16]", busy, waiters, got)
			}
			if load := busy + waiters; load >= prevLoad && busy == 0 {
				// Monotone along the waiters axis (fixed busy=0): more
				// pressure must never shrink the hint.
				if got < prev {
					t.Fatalf("waiters=%d: hint %d < previous %d; must be monotone", waiters, got, prev)
				}
				prev, prevLoad = got, load
			}
		}
	}

	// Saturation: load ≥ 2×capacity pins the hint to the 8× ceiling.
	s = newRetryAfterServer(base, capacity)
	for i := 0; i < capacity; i++ {
		s.sem <- struct{}{}
	}
	s.semWait.Store(100)
	if got := hintSecs(t, s); got != 16 {
		t.Fatalf("saturated hint = %d, want the 16s (8×base) ceiling", got)
	}

	// Sub-second bases still respect the header's 1s granularity.
	s = newRetryAfterServer(10*time.Millisecond, capacity)
	if got := hintSecs(t, s); got != 1 {
		t.Fatalf("sub-second base hint = %d, want 1", got)
	}

	// The zero config selects a 1s base: idle hints 1, saturation 8.
	s = newRetryAfterServer(0, capacity)
	if got := hintSecs(t, s); got != 1 {
		t.Fatalf("default idle hint = %d, want 1", got)
	}
	s.semWait.Store(int64(2 * capacity))
	if got := hintSecs(t, s); got != 8 {
		t.Fatalf("default saturated hint = %d, want 8", got)
	}
}
