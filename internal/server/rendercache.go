package server

// renderCache is the serving read path's render-once/serve-many tier: an
// immutable pre-rendered HTTP body per project, stored in a sharded
// bytes-bounded LRU and served with a single w.Write — no store decode,
// no reflection, no per-request marshal.
//
// Staleness is handled with per-shard epochs rather than per-entry
// version tracking. The protocol is:
//
//	reader:  e := epoch(key); read store; render; put(key, e, entry)
//	mutator: mutate store (commit fully visible); invalidate(key)
//
// invalidate bumps the shard epoch and drops the entry, so a put whose
// render raced a mutation (its epoch snapshot predates the bump) is
// rejected and the next reader re-renders from the post-mutation store.
// An entry present in the cache therefore always reflects a store state
// at least as new as the last completed invalidate for its key. Sharing
// one epoch per shard instead of per key only over-invalidates (a racing
// put for an unrelated key in the same shard is rejected and retried by
// the next reader) — it never under-invalidates, and it keeps the epoch
// state O(shards) instead of O(keys ever seen).
//
// Note the bodies themselves are content-addressed — a project ID is the
// fingerprint of its source, so two renders of the same live ID can only
// differ if the analysis toolchain changed (which restarts the process).
// Invalidation exists for liveness (DELETE, supersede by overwrite), not
// because bytes under a key can silently change meaning.

import (
	"container/list"
	"strings"
	"sync"

	"schemaevo/internal/telemetry"
)

// renderShardCount is the number of independently locked cache shards.
// Power of two so the shard pick is a mask.
const renderShardCount = 16

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters, used both
// for shard selection and for ETag derivation.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// etagFor derives the strong ETag for a rendered body: the quoted
// lowercase hex FNV-1a-64 of the exact bytes on the wire. Identical
// bodies (same result content, same API schema version) yield identical
// ETags across restarts and replicas.
func etagFor(body []byte) string {
	h := uint64(fnvOffset64)
	for _, b := range body {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	buf := make([]byte, 18)
	buf[0] = '"'
	for i := 0; i < 16; i++ {
		buf[1+i] = jsonHex[(h>>uint(60-4*i))&0xF]
	}
	buf[17] = '"'
	return string(buf)
}

// renderEntry is one cached response: the immutable rendered body, its
// strong ETag, and the summary fields the POST/batch paths need so a
// cache hit can answer without decoding the stored result.
type renderEntry struct {
	body    []byte
	etag    string
	project string
	pattern string
	// corpus marks a body rendered from the immutable corpus index rather
	// than the result store (GETs label it X-Cache: corpus, and the submit
	// fast path ignores it so first submissions still run an analysis).
	corpus bool
}

type renderShard struct {
	mu    sync.Mutex
	epoch uint64
	bytes int64
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // value: *renderItem
}

type renderItem struct {
	key   string
	entry renderEntry
}

// renderCache is a sharded bytes-bounded LRU of rendered bodies. A nil
// *renderCache is a valid no-op (every method nil-checks), which is how
// Config.RenderBytes < 0 disables the tier without conditional wiring.
type renderCache struct {
	perShard int64 // byte budget per shard
	tel      *telemetry.Collector
	shards   [renderShardCount]renderShard
}

// newRenderCache builds a cache with the given total byte budget spread
// across the shards. Budgets below one page per shard are clamped so a
// tiny budget still caches something per shard rather than thrashing.
func newRenderCache(maxBytes int64, tel *telemetry.Collector) *renderCache {
	per := maxBytes / renderShardCount
	if per < 4096 {
		per = 4096
	}
	c := &renderCache{perShard: per, tel: tel}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = map[string]*list.Element{}
	}
	return c
}

func (c *renderCache) shard(key string) *renderShard {
	return &c.shards[fnv1a(key)&(renderShardCount-1)]
}

// get returns the cached entry for key, if live. The returned entry's
// body must be treated as immutable.
func (c *renderCache) get(key string) (renderEntry, bool) {
	if c == nil {
		return renderEntry{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.tel.RenderMiss()
		return renderEntry{}, false
	}
	s.ll.MoveToFront(el)
	e := el.Value.(*renderItem).entry
	s.mu.Unlock()
	c.tel.RenderHit(int64(len(e.body)))
	return e, true
}

// epochOf snapshots the epoch governing key. Call BEFORE reading the
// store state the render will be computed from; pass the snapshot to put.
func (c *renderCache) epochOf(key string) uint64 {
	if c == nil {
		return 0
	}
	s := c.shard(key)
	s.mu.Lock()
	e := s.epoch
	s.mu.Unlock()
	return e
}

// put inserts a rendered entry if no invalidation intervened since the
// epoch snapshot was taken. Returns false (and caches nothing) when the
// epoch moved — the render may predate a store mutation, so serving it
// from cache later could resurrect stale bytes. The rejected render is
// still safe to WRITE to the requester that produced it: it reflected a
// real store state at its snapshot.
func (c *renderCache) put(key string, epoch uint64, e renderEntry) bool {
	if c == nil {
		return false
	}
	s := c.shard(key)
	s.mu.Lock()
	if s.epoch != epoch {
		s.mu.Unlock()
		return false
	}
	if el, ok := s.items[key]; ok {
		// Same key re-rendered under an unchanged epoch: identical bytes
		// (renders are pure functions of store state). Keep the original.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return true
	}
	s.items[key] = s.ll.PushFront(&renderItem{key: key, entry: e})
	s.bytes += int64(len(e.body))
	evicted := 0
	for s.bytes > c.perShard && s.ll.Len() > 1 {
		back := s.ll.Back()
		it := back.Value.(*renderItem)
		s.ll.Remove(back)
		delete(s.items, it.key)
		s.bytes -= int64(len(it.entry.body))
		evicted++
	}
	s.mu.Unlock()
	c.tel.RenderWrite(int64(len(e.body)))
	for i := 0; i < evicted; i++ {
		c.tel.RenderEvict()
	}
	return true
}

// invalidate drops key and bumps its shard epoch. Call AFTER the store
// mutation is fully visible, so any concurrent render that read the
// pre-mutation store holds a stale epoch snapshot and its put is
// rejected.
func (c *renderCache) invalidate(key string) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	s.epoch++
	if el, ok := s.items[key]; ok {
		it := el.Value.(*renderItem)
		s.ll.Remove(el)
		delete(s.items, it.key)
		s.bytes -= int64(len(it.entry.body))
	}
	s.mu.Unlock()
	c.tel.RenderInvalidate()
}

// bytes reports the total cached body bytes across shards (for tests and
// the /metrics gauge).
func (c *renderCache) bytesCached() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// ifNoneMatchSatisfied reports whether an If-None-Match header value
// matches the resource's current ETag under RFC 9110 §13.1.2: weak
// comparison (a W/ prefix on either side is ignored), "*" matches any
// current representation, and the header may list several
// comma-separated candidates.
func ifNoneMatchSatisfied(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	target := strings.TrimPrefix(etag, "W/")
	for len(header) > 0 {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			break
		}
		if header[0] == '*' {
			return true
		}
		var cand string
		if i := strings.Index(header, ","); i >= 0 {
			cand, header = header[:i], header[i+1:]
		} else {
			cand, header = header, ""
		}
		cand = strings.TrimRight(cand, " \t")
		if strings.TrimPrefix(cand, "W/") == target {
			return true
		}
	}
	return false
}

// renderGauges exports point-in-time cache occupancy into the collector
// ahead of a snapshot.
func (c *renderCache) renderGauges() {
	if c == nil {
		return
	}
	c.tel.SetGauge("render_cache_bytes", c.bytesCached())
}
