package server

// Hand-rolled append-based JSON encoders for the hot wire types. The
// serving read path renders each body exactly once into an immutable
// []byte (see rendercache.go), so the encoder's job is to be
// byte-identical to the reflection rendering the goldens pin —
// json.MarshalIndent(v, "", "  ") plus a trailing newline for the /v1
// document bodies, compact json.Marshal for the batch NDJSON lines —
// while allocating nothing beyond the destination buffer.
//
// Byte-identity is enforced two ways: TestEncodersMatchReflection diffs
// every golden-shaped body against encoding/json, and FuzzWireEncoders
// drives adversarial strings and floats through both renderings. If
// encoding/json's output format ever changes, those tests fail loudly
// and the goldens decide which side moves.

import (
	"math"
	"strconv"
	"unicode/utf8"
)

const jsonHex = "0123456789abcdef"

// jsonStringSafe reports whether byte b may appear verbatim inside a
// JSON string under encoding/json's HTML-escaping rules (its
// htmlSafeSet): printable ASCII except '"', '\\', '<', '>', '&'.
func jsonStringSafe(b byte) bool {
	if b < 0x20 || b >= utf8.RuneSelf {
		return false
	}
	switch b {
	case '"', '\\', '<', '>', '&':
		return false
	}
	return true
}

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json with escapeHTML=true: short escapes for the classic
// control characters, \u00xx for the rest of C0 and for <, >, &,
// � for invalid UTF-8, and  /  escaped for JSONP safety.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonStringSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f in encoding/json's ES6-style number
// rendering: shortest round-trip representation, 'f' form inside
// [1e-6, 1e21), 'e' form outside with the exponent's leading zero
// stripped. NaN and infinities (which encoding/json rejects) render as
// 0 — the wire measures are finite by construction, so this is a
// never-taken guard, not a format choice.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONBool appends the JSON boolean literal.
func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// Indentation prefixes for MarshalIndent(v, "", "  ") depths 1..3. The
// wire documents nest at most three levels deep.
const (
	ind1 = "\n  "
	ind2 = "\n    "
	ind3 = "\n      "
)

// appendProjectWire renders the projectWire body — byte-identical to
// json.MarshalIndent(w, "", "  ") with a trailing newline, the exact
// bytes the pinned API goldens hold.
func appendProjectWire(dst []byte, w *projectWire) []byte {
	dst = append(dst, '{')
	dst = append(dst, ind1+`"schema_version": `...)
	dst = strconv.AppendInt(dst, int64(w.SchemaVersion), 10)
	dst = append(dst, ","+ind1+`"id": `...)
	dst = appendJSONString(dst, w.ID)
	dst = append(dst, ","+ind1+`"project": `...)
	dst = appendJSONString(dst, w.Project)
	dst = append(dst, ","+ind1+`"dialect": `...)
	dst = appendJSONString(dst, w.Dialect)
	dst = append(dst, ","+ind1+`"pattern": `...)
	dst = appendJSONString(dst, w.Pattern)
	dst = append(dst, ","+ind1+`"family": `...)
	dst = appendJSONString(dst, w.Family)
	dst = append(dst, ","+ind1+`"exact": `...)
	dst = appendJSONBool(dst, w.Exact)

	m := &w.Measures
	dst = append(dst, ","+ind1+`"measures": {`...)
	dst = append(dst, ind2+`"pup_months": `...)
	dst = strconv.AppendInt(dst, int64(m.PUPMonths), 10)
	dst = append(dst, ","+ind2+`"birth_month": `...)
	dst = strconv.AppendInt(dst, int64(m.BirthMonth), 10)
	dst = append(dst, ","+ind2+`"birth_pct": `...)
	dst = appendJSONFloat(dst, m.BirthPct)
	dst = append(dst, ","+ind2+`"birth_volume_pct": `...)
	dst = appendJSONFloat(dst, m.BirthVolumePct)
	dst = append(dst, ","+ind2+`"top_band_month": `...)
	dst = strconv.AppendInt(dst, int64(m.TopBandMonth), 10)
	dst = append(dst, ","+ind2+`"top_band_pct": `...)
	dst = appendJSONFloat(dst, m.TopBandPct)
	dst = append(dst, ","+ind2+`"interval_birth_to_top_pct": `...)
	dst = appendJSONFloat(dst, m.IntervalBirthToTopPct)
	dst = append(dst, ","+ind2+`"interval_top_to_end_pct": `...)
	dst = appendJSONFloat(dst, m.IntervalTopToEndPct)
	dst = append(dst, ","+ind2+`"has_vault": `...)
	dst = appendJSONBool(dst, m.HasVault)
	dst = append(dst, ","+ind2+`"active_growth_months": `...)
	dst = strconv.AppendInt(dst, int64(m.ActiveGrowthMonths), 10)
	dst = append(dst, ","+ind2+`"active_pct_growth": `...)
	dst = appendJSONFloat(dst, m.ActivePctGrowth)
	dst = append(dst, ","+ind2+`"active_pct_pup": `...)
	dst = appendJSONFloat(dst, m.ActivePctPUP)
	dst = append(dst, ","+ind2+`"total_activity": `...)
	dst = strconv.AppendInt(dst, int64(m.TotalActivity), 10)
	dst = append(dst, ","+ind2+`"expansion": `...)
	dst = strconv.AppendInt(dst, int64(m.Expansion), 10)
	dst = append(dst, ","+ind2+`"maintenance": `...)
	dst = strconv.AppendInt(dst, int64(m.Maintenance), 10)
	dst = append(dst, ","+ind2+`"tables_at_birth": `...)
	dst = strconv.AppendInt(dst, int64(m.TablesAtBirth), 10)
	dst = append(dst, ","+ind2+`"attrs_at_birth": `...)
	dst = strconv.AppendInt(dst, int64(m.AttrsAtBirth), 10)
	dst = append(dst, ","+ind2+`"tables_at_end": `...)
	dst = strconv.AppendInt(dst, int64(m.TablesAtEnd), 10)
	dst = append(dst, ","+ind2+`"attrs_at_end": `...)
	dst = strconv.AppendInt(dst, int64(m.AttrsAtEnd), 10)
	dst = append(dst, ind1+"},"...)

	l := &w.Labels
	dst = append(dst, ind1+`"labels": {`...)
	dst = append(dst, ind2+`"birth_volume": `...)
	dst = appendJSONString(dst, l.BirthVolume)
	dst = append(dst, ","+ind2+`"birth_timing": `...)
	dst = appendJSONString(dst, l.BirthTiming)
	dst = append(dst, ","+ind2+`"top_band_point": `...)
	dst = appendJSONString(dst, l.TopBandPoint)
	dst = append(dst, ","+ind2+`"interval_birth_to_top": `...)
	dst = appendJSONString(dst, l.IntervalBirthToTop)
	dst = append(dst, ","+ind2+`"interval_top_to_end": `...)
	dst = appendJSONString(dst, l.IntervalTopToEnd)
	dst = append(dst, ","+ind2+`"active_pct_growth": `...)
	dst = appendJSONString(dst, l.ActivePctGrowth)
	dst = append(dst, ","+ind2+`"active_pct_pup": `...)
	dst = appendJSONString(dst, l.ActivePctPUP)
	dst = append(dst, ","+ind2+`"has_vault": `...)
	dst = appendJSONBool(dst, l.HasVault)
	dst = append(dst, ","+ind2+`"active_growth_months": `...)
	dst = strconv.AppendInt(dst, int64(l.ActiveGrowthMonths), 10)
	dst = append(dst, ind1+"},"...)

	t := &w.Timeline
	dst = append(dst, ind1+`"timeline": {`...)
	dst = append(dst, ind2+`"versions": `...)
	dst = strconv.AppendInt(dst, int64(t.Versions), 10)
	dst = append(dst, ","+ind2+`"active_versions": `...)
	dst = strconv.AppendInt(dst, int64(t.ActiveVersions), 10)
	dst = append(dst, ","+ind2+`"months": `...)
	dst = strconv.AppendInt(dst, int64(t.Months), 10)
	dst = append(dst, ","+ind2+`"active_months": `...)
	dst = strconv.AppendInt(dst, int64(t.ActiveMonths), 10)
	dst = append(dst, ","+ind2+`"longest_dormancy": `...)
	dst = strconv.AppendInt(dst, int64(t.LongestDormancy), 10)
	dst = append(dst, ind1+"}"...)

	return append(dst, "\n}\n"...)
}

// appendCorpusStatsWire renders the corpusStatsWire body, byte-identical
// to json.MarshalIndent plus a trailing newline.
func appendCorpusStatsWire(dst []byte, w *corpusStatsWire) []byte {
	dst = append(dst, '{')
	dst = append(dst, ind1+`"schema_version": `...)
	dst = strconv.AppendInt(dst, int64(w.SchemaVersion), 10)
	dst = append(dst, ","+ind1+`"projects": `...)
	dst = strconv.AppendInt(dst, int64(w.Projects), 10)
	dst = append(dst, ","+ind1+`"analyzed": `...)
	dst = strconv.AppendInt(dst, int64(w.Analyzed), 10)
	dst = append(dst, ","+ind1+`"patterns": `...)
	if len(w.Patterns) == 0 {
		dst = append(dst, "[]"...)
	} else {
		dst = append(dst, '[')
		for i := range w.Patterns {
			if i > 0 {
				dst = append(dst, ',')
			}
			p := &w.Patterns[i]
			dst = append(dst, ind2+"{"...)
			dst = append(dst, ind3+`"pattern": `...)
			dst = appendJSONString(dst, p.Pattern)
			dst = append(dst, ","+ind3+`"family": `...)
			dst = appendJSONString(dst, p.Family)
			dst = append(dst, ","+ind3+`"count": `...)
			dst = strconv.AppendInt(dst, int64(p.Count), 10)
			dst = append(dst, ind2+"}"...)
		}
		dst = append(dst, ind1+"]"...)
	}
	return append(dst, "\n}\n"...)
}

// appendCorpusPatternsWire renders the corpusPatternsWire body,
// byte-identical to json.MarshalIndent plus a trailing newline.
func appendCorpusPatternsWire(dst []byte, w *corpusPatternsWire) []byte {
	const (
		ind4 = "\n        "
		ind5 = "\n          "
	)
	dst = append(dst, '{')
	dst = append(dst, ind1+`"schema_version": `...)
	dst = strconv.AppendInt(dst, int64(w.SchemaVersion), 10)
	dst = append(dst, ","+ind1+`"groups": `...)
	if len(w.Groups) == 0 {
		dst = append(dst, "[]"...)
	} else {
		dst = append(dst, '[')
		for i := range w.Groups {
			if i > 0 {
				dst = append(dst, ',')
			}
			g := &w.Groups[i]
			dst = append(dst, ind2+"{"...)
			dst = append(dst, ind3+`"pattern": `...)
			dst = appendJSONString(dst, g.Pattern)
			dst = append(dst, ","+ind3+`"family": `...)
			dst = appendJSONString(dst, g.Family)
			dst = append(dst, ","+ind3+`"count": `...)
			dst = strconv.AppendInt(dst, int64(g.Count), 10)
			dst = append(dst, ","+ind3+`"projects": `...)
			if len(g.Projects) == 0 {
				dst = append(dst, "[]"...)
			} else {
				dst = append(dst, '[')
				for j := range g.Projects {
					if j > 0 {
						dst = append(dst, ',')
					}
					r := &g.Projects[j]
					dst = append(dst, ind4+"{"...)
					dst = append(dst, ind5+`"name": `...)
					dst = appendJSONString(dst, r.Name)
					dst = append(dst, ","+ind5+`"id": `...)
					dst = appendJSONString(dst, r.ID)
					dst = append(dst, ind4+"}"...)
				}
				dst = append(dst, ind3+"]"...)
			}
			dst = append(dst, ind2+"}"...)
		}
		dst = append(dst, ind1+"]"...)
	}
	return append(dst, "\n}\n"...)
}

// appendBatchLineWire renders one compact batch NDJSON result line plus
// the terminating newline, byte-identical to json.Marshal of the same
// value (omitempty fields included only when set).
func appendBatchLineWire(dst []byte, w *batchLineWire) []byte {
	dst = append(dst, `{"line":`...)
	dst = strconv.AppendInt(dst, int64(w.Line), 10)
	dst = append(dst, `,"status":`...)
	dst = appendJSONString(dst, w.Status)
	if w.ID != "" {
		dst = append(dst, `,"id":`...)
		dst = appendJSONString(dst, w.ID)
	}
	if w.Project != "" {
		dst = append(dst, `,"project":`...)
		dst = appendJSONString(dst, w.Project)
	}
	if w.Pattern != "" {
		dst = append(dst, `,"pattern":`...)
		dst = appendJSONString(dst, w.Pattern)
	}
	if w.Cache != "" {
		dst = append(dst, `,"cache":`...)
		dst = appendJSONString(dst, w.Cache)
	}
	if w.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, w.Error)
	}
	return append(dst, '}', '\n')
}

// appendBatchSummaryWire renders the compact batch summary line plus the
// terminating newline, byte-identical to json.Marshal.
func appendBatchSummaryWire(dst []byte, w *batchSummaryWire) []byte {
	dst = append(dst, `{"status":`...)
	dst = appendJSONString(dst, w.Status)
	dst = append(dst, `,"lines":`...)
	dst = strconv.AppendInt(dst, int64(w.Lines), 10)
	dst = append(dst, `,"ok":`...)
	dst = strconv.AppendInt(dst, int64(w.OK), 10)
	dst = append(dst, `,"errors":`...)
	dst = strconv.AppendInt(dst, int64(w.Errors), 10)
	return append(dst, '}', '\n')
}
