package server

import "sync"

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn; late arrivals block on the leader
// and receive its result. Zero-dependency by design (the module vendors
// nothing), and narrower than x/sync/singleflight: no forget, no async
// channel form — the submit handler needs exactly duplicate-collapse.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
	dups int
}

// Do executes fn once per concurrent set of callers sharing key. It
// returns fn's result, and shared reports whether this caller received a
// leader's result instead of executing fn itself.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		c.dups++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
