// Black-box tests of the health state machine, the read-only write
// gate, and the self-healing scrub-and-repair loop — all driven over
// HTTP, with deterministic chaos from internal/faultinject.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"schemaevo/internal/faultinject"
	"schemaevo/internal/server"
	"schemaevo/internal/telemetry"
)

// healthzBody mirrors the /healthz wire shape the tests assert on.
type healthzBody struct {
	Status         string   `json:"status"`
	Projects       int      `json:"projects"`
	Stored         int      `json:"stored"`
	ReadOnly       bool     `json:"read_only"`
	PendingRepairs int      `json:"pending_repairs"`
	QueueDepth     int      `json:"queue_depth"`
	Reasons        []string `json:"reasons"`
}

// readyzBody mirrors the /readyz wire shape.
type readyzBody struct {
	Status  string   `json:"status"`
	State   string   `json:"state"`
	Reasons []string `json:"reasons"`
}

func getHealthz(t *testing.T, base string) (int, healthzBody) {
	t.Helper()
	status, _, body := do(t, http.MethodGet, base+"/healthz", nil)
	var hz healthzBody
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("healthz body %s: %v", body, err)
	}
	return status, hz
}

func getReadyz(t *testing.T, base string) (int, http.Header, readyzBody) {
	t.Helper()
	status, hdr, body := do(t, http.MethodGet, base+"/readyz", nil)
	var rz readyzBody
	if err := json.Unmarshal(body, &rz); err != nil {
		t.Fatalf("readyz body %s: %v", body, err)
	}
	return status, hdr, rz
}

// TestHealthzReadyzHealthy pins the probe contract of an untroubled
// server: /healthz reports "healthy" with empty pressure fields, /readyz
// answers 200 "ready".
func TestHealthzReadyzHealthy(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t)})
	status, hz := getHealthz(t, hs.URL)
	if status != http.StatusOK || hz.Status != "healthy" {
		t.Fatalf("healthz = %d %q, want 200 healthy", status, hz.Status)
	}
	if hz.ReadOnly || hz.PendingRepairs != 0 || len(hz.Reasons) != 0 {
		t.Fatalf("healthy server reports pressure: %+v", hz)
	}
	status, _, rz := getReadyz(t, hs.URL)
	if status != http.StatusOK || rz.Status != "ready" || rz.State != "healthy" {
		t.Fatalf("readyz = %d %+v, want 200 ready/healthy", status, rz)
	}
}

// TestReadOnlyModeOverHTTP drives the full disk-exhaustion degradation
// end to end: an injected ENOSPC during a submission's store flush flips
// the store to read-only; the submission is answered 503 (never acked),
// every write endpoint refuses with 503 + Retry-After, /readyz goes
// unavailable, /healthz stays 200 and says why — and reads keep serving.
func TestReadOnlyModeOverHTTP(t *testing.T) {
	srv, hs := newService(t, server.Config{
		Corpus:   testCorpus(t),
		StoreDir: t.TempDir(),
		Fault:    siteInjector("store.diskfull", faultinject.KindErr),
	})

	// The analysis succeeds but the durable write hits ENOSPC: the server
	// must refuse to ack it.
	status, hdr, body := post(t, hs.URL, submitRepo())
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit during disk-full: status %d, body %s, want 503", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After hint")
	}

	// The store is now read-only; every write endpoint gates up front.
	for _, req := range []struct{ method, path string }{
		{http.MethodPost, "/v1/projects"},
		{http.MethodPost, "/v1/projects:batch"},
		{http.MethodDelete, "/v1/projects/0000000000000000"},
	} {
		status, hdr, _ := do(t, req.method, hs.URL+req.path, []byte("{}"))
		if status != http.StatusServiceUnavailable {
			t.Fatalf("%s %s in read-only mode: status %d, want 503", req.method, req.path, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("%s %s: 503 without Retry-After", req.method, req.path)
		}
	}

	// Probes: readyz flips, healthz stays up and explains.
	status, hdr, rz := getReadyz(t, hs.URL)
	if status != http.StatusServiceUnavailable || rz.Status != "unavailable" || rz.State != "read-only" {
		t.Fatalf("readyz = %d %+v, want 503 unavailable/read-only", status, rz)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("readyz 503 without Retry-After")
	}
	status, hz := getHealthz(t, hs.URL)
	if status != http.StatusOK || hz.Status != "read-only" || !hz.ReadOnly {
		t.Fatalf("healthz = %d %+v, want 200 read-only", status, hz)
	}
	if srv.HealthState() != server.StateReadOnly {
		t.Fatalf("HealthState() = %v, want read-only", srv.HealthState())
	}

	// Reads keep serving: the corpus endpoints answer 200.
	if status, _, _ := do(t, http.MethodGet, hs.URL+"/v1/corpus/stats", nil); status != http.StatusOK {
		t.Fatalf("corpus stats in read-only mode: status %d, want 200", status)
	}
	if status, _, _ := do(t, http.MethodGet, hs.URL+"/metrics", nil); status != http.StatusOK {
		t.Fatalf("metrics in read-only mode: status %d, want 200", status)
	}
}

// TestDegradedWhileSaturated pins the degraded state: with the only
// worker slot held by a stalled analysis, /readyz stays 200 (a busy
// replica still serves) but reports "degraded".
func TestDegradedWhileSaturated(t *testing.T) {
	srv, hs := newService(t, server.Config{
		Corpus:        testCorpus(t),
		MaxConcurrent: 1,
		Fault:         delayInjector(3 * time.Second),
	})

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		post(t, hs.URL, distinctRepo(0))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled submission never entered the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let it pass fingerprinting and take the slot

	status, _, rz := getReadyz(t, hs.URL)
	if status != http.StatusOK || rz.Status != "ready" || rz.State != "degraded" {
		t.Fatalf("readyz while saturated = %d %+v, want 200 ready/degraded", status, rz)
	}
	status, hz := getHealthz(t, hs.URL)
	if status != http.StatusOK || hz.Status != "degraded" || hz.QueueDepth != 1 {
		t.Fatalf("healthz while saturated = %d %+v, want 200 degraded depth 1", status, hz)
	}
	<-firstDone
	if st := srv.HealthState(); st != server.StateHealthy {
		t.Fatalf("HealthState() after drain = %v, want healthy", st)
	}
}

// TestScrubRepairsOverHTTP is the self-healing acceptance path: every
// submitted project's result record is declared latently corrupt by the
// "store.scrub" chaos site; one scrub pass must detect ALL of them,
// quarantine them, and repair each by re-analysis from its persisted
// source snapshot — after which every GET serves bytes identical to the
// original submission, with zero operator action.
func TestScrubRepairsOverHTTP(t *testing.T) {
	const n = 6
	srv, hs := newService(t, server.Config{
		StoreDir: t.TempDir(),
		// A two-entry hot tier forces most repairs down the re-analysis
		// path (the scrubber repairs hot entries from memory instead).
		LRUEntries: 2,
		Fault:      siteInjector("store.scrub", faultinject.KindCorrupt),
	})

	ids := make([]string, n)
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		status, _, body := post(t, hs.URL, distinctRepo(i))
		if status != http.StatusOK {
			t.Fatalf("submit %d: status %d, body %s", i, status, body)
		}
		var wire struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		ids[i], want[i] = wire.ID, body
	}

	rep := srv.ScrubNow(context.Background())
	if rep.Corrupt != n {
		t.Fatalf("scrub found %d corrupt records, want all %d", rep.Corrupt, n)
	}
	if rep.Repaired != n || rep.RepairFailed != 0 {
		t.Fatalf("scrub repaired %d (failed %d), want %d/0", rep.Repaired, rep.RepairFailed, n)
	}

	status, hz := getHealthz(t, hs.URL)
	if status != http.StatusOK || hz.PendingRepairs != 0 {
		t.Fatalf("healthz after scrub = %d %+v, want 200 with no pending repairs", status, hz)
	}
	for i, id := range ids {
		status, _, got := do(t, http.MethodGet, hs.URL+"/v1/projects/"+id, nil)
		if status != http.StatusOK {
			t.Fatalf("GET %s after repair: status %d", id, status)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("GET %s after repair: body differs from the original submission", id)
		}
	}
}

// TestBackgroundScrubberHealsService runs the loop for real: the server
// is configured with a fast ScrubInterval, latent corruption is injected
// through the chaos site, and the test only observes — polling /metrics
// until the repair counters prove the service healed itself.
func TestBackgroundScrubberHealsService(t *testing.T) {
	const n = 3
	_, hs := newService(t, server.Config{
		StoreDir:      t.TempDir(),
		ScrubInterval: 2 * time.Millisecond,
		ScrubPace:     -1,
		Fault:         siteInjector("store.scrub", faultinject.KindCorrupt),
		Telemetry:     telemetry.New(),
	})

	ids := make([]string, n)
	for i := 0; i < n; i++ {
		status, _, body := post(t, hs.URL, distinctRepo(i))
		if status != http.StatusOK {
			t.Fatalf("submit %d: status %d, body %s", i, status, body)
		}
		var wire struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		ids[i] = wire.ID
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, body := do(t, http.MethodGet, hs.URL+"/metrics", nil)
		var rep struct {
			Store struct {
				ScrubPasses int64 `json:"scrub_passes"`
				Repairs     int64 `json:"repairs"`
			} `json:"store"`
		}
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("metrics body %s: %v", body, err)
		}
		if rep.Store.Repairs >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber repaired %d of %d within the deadline (passes %d)",
				rep.Store.Repairs, n, rep.Store.ScrubPasses)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids {
		if status, _, _ := do(t, http.MethodGet, hs.URL+"/v1/projects/"+id, nil); status != http.StatusOK {
			t.Fatalf("GET %s after background healing: status %d", id, status)
		}
	}
}

// TestBatchReadOnlyMidStream flips the store read-only between two batch
// lines (via an operator-style flip through a disk-full submission on a
// parallel connection being impractical here, the test drives the flip
// deterministically with the diskfull site keyed to the second line's
// project) and asserts the first line is acked, the second is an error
// line, and the stream still terminates with a well-formed summary.
func TestBatchReadOnlyMidStream(t *testing.T) {
	// The diskfull site faults per store key (the project ID); rate 1
	// faults every key, so line 1 already flips the store. That is fine:
	// the invariant under test is that NO line is acked without landing
	// durably, and the stream still summarizes.
	_, hs := newService(t, server.Config{
		StoreDir: t.TempDir(),
		Fault:    siteInjector("store.diskfull", faultinject.KindErr),
	})

	var in bytes.Buffer
	for i := 0; i < 3; i++ {
		line, err := json.Marshal(distinctRepo(i))
		if err != nil {
			t.Fatal(err)
		}
		in.Write(line)
		in.WriteByte('\n')
	}
	status, _, body := do(t, http.MethodPost, hs.URL+"/v1/projects:batch", in.Bytes())
	if status != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", status, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	var summary struct {
		Status string `json:"status"`
		Lines  int    `json:"lines"`
		OK     int    `json:"ok"`
		Errors int    `json:"errors"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &summary); err != nil {
		t.Fatalf("summary line %s: %v", lines[len(lines)-1], err)
	}
	if summary.Status != "summary" {
		t.Fatalf("last line is not the summary: %s", lines[len(lines)-1])
	}
	// Every line that failed to land durably must be an error line; none
	// may be acked "ok" (the first line's flush already failed).
	if summary.OK != 0 || summary.Errors != summary.Lines {
		t.Fatalf("summary %+v: lines that missed durability were acked", summary)
	}
	for i, raw := range lines[:len(lines)-1] {
		var lw struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(raw, &lw); err != nil {
			t.Fatalf("line %d %s: %v", i, raw, err)
		}
		if lw.Status != "error" {
			t.Fatalf("line %d acked despite failed flush: %s", i, raw)
		}
		if lw.Error == "" {
			t.Fatalf("line %d error line without a reason: %s", i, raw)
		}
	}
}
