// Fuzzer for the streaming batch endpoint: arbitrary NDJSON bodies must
// never crash the server, and the response must always be well-formed —
// one parseable JSON line per processed input line, terminated by
// exactly one summary whose tallies are internally consistent.
package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/telemetry"
)

func FuzzBatchNDJSON(f *testing.F) {
	// A valid one-commit repo, a growing two-commit history, malformed
	// JSON, schema-valid-but-repo-invalid lines, blanks, and binary noise.
	valid := `{"name":"fuzz-seed","commits":[{"id":"c1","time":"2019-01-10T12:00:00Z","src_lines":120,"files":{"db/schema.sql":"CREATE TABLE users (id INT PRIMARY KEY);"}},{"id":"c2","time":"2019-06-02T12:00:00Z","src_lines":150,"files":{"db/schema.sql":"CREATE TABLE users (id INT PRIMARY KEY, name TEXT);"}}]}`
	f.Add([]byte(valid + "\n"))
	f.Add([]byte(valid + "\n" + valid + "\n"))
	f.Add([]byte("{\"name\":\"x\",\"commits\":[]}\n\n{not json}\n"))
	f.Add([]byte("{\"name\":42}\n{\"commits\":null}\n"))
	f.Add([]byte("\x00\xff\xfe{\n}\n"))
	f.Add([]byte(strings.Repeat("a", 2000) + "\n"))

	srv, err := server.New(context.Background(), server.Config{
		MaxLineBytes:   1 << 10,
		RequestTimeout: 5 * time.Second,
		Telemetry:      telemetry.New(),
	})
	if err != nil {
		f.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	f.Cleanup(func() {
		hs.Close()
		srv.Close()
	})

	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(hs.URL+"/v1/projects:batch", "application/x-ndjson", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("request failed: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}

		var (
			respLines       int
			summaries       int
			lastWasSummary  bool
			okSeen, errSeen int
		)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			respLines++
			var l struct {
				Status string `json:"status"`
				Line   int    `json:"line"`
				Error  string `json:"error"`
				Lines  int    `json:"lines"`
				OK     int    `json:"ok"`
				Errors int    `json:"errors"`
			}
			if err := json.Unmarshal(line, &l); err != nil {
				t.Fatalf("unparseable response line %q: %v", line, err)
			}
			lastWasSummary = false
			switch l.Status {
			case "ok":
				okSeen++
			case "error":
				errSeen++
				if l.Error == "" {
					t.Fatalf("error line without a message: %q", line)
				}
			case "summary":
				summaries++
				lastWasSummary = true
				if l.OK != okSeen || l.Errors != errSeen {
					t.Fatalf("summary tallies ok=%d errors=%d, stream had ok=%d errors=%d",
						l.OK, l.Errors, okSeen, errSeen)
				}
				if l.OK+l.Errors > l.Lines {
					t.Fatalf("summary counts exceed scanned lines: %q", line)
				}
			default:
				t.Fatalf("unknown status %q in line %q", l.Status, line)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("reading response: %v", err)
		}
		if summaries != 1 || !lastWasSummary {
			t.Fatalf("response must end with exactly one summary (got %d, last=%v)", summaries, lastWasSummary)
		}

		// The server must still be alive and consistent after the batch.
		hc, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz after batch: %v", err)
		}
		io.Copy(io.Discard, hc.Body)
		hc.Body.Close()
		if hc.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d after batch", hc.StatusCode)
		}
	})
}
