// Black-box tests for the server's dialect configuration: a daemon
// running with Config.Dialect "auto" must report each submission's
// detected dialect on the wire, a forced dialect must appear verbatim,
// and an unknown name must fail construction — not the first analysis.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// mysqlRepo is a small fixed history written in unmistakable MySQL.
func mysqlRepo() *vcs.Repo {
	day := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
	}
	return &vcs.Repo{
		Name: "dialect-mysql-project",
		Commits: []vcs.Commit{
			{ID: "c1", Time: day(2019, 1, 10), SrcLines: 100, Files: map[string]string{
				"db/schema.sql": "CREATE TABLE `users` (`id` INT AUTO_INCREMENT, `name` VARCHAR(64), PRIMARY KEY (`id`)) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;",
			}},
			{ID: "c2", Time: day(2020, 6, 1), SrcLines: 150, Files: map[string]string{
				"db/schema.sql": "CREATE TABLE `users` (`id` INT AUTO_INCREMENT, `name` VARCHAR(64), `email` VARCHAR(128), PRIMARY KEY (`id`)) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;",
			}},
		},
	}
}

func submittedDialect(t *testing.T, baseURL string, r *vcs.Repo) string {
	t.Helper()
	status, _, body := post(t, baseURL, r)
	if status != http.StatusOK {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var resp struct {
		SchemaVersion int    `json:"schema_version"`
		Dialect       string `json:"dialect"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SchemaVersion != server.APISchemaVersion {
		t.Fatalf("schema_version %d, want %d", resp.SchemaVersion, server.APISchemaVersion)
	}
	return resp.Dialect
}

func TestServerDialectAuto(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t), Dialect: "auto"})
	if got := submittedDialect(t, hs.URL, mysqlRepo()); got != "mysql" {
		t.Errorf("auto server: dialect %q, want %q", got, "mysql")
	}
	// Dialect-neutral DDL must stay generic under auto.
	if got := submittedDialect(t, hs.URL, submitRepo()); got != "generic" {
		t.Errorf("auto server, neutral input: dialect %q, want %q", got, "generic")
	}
}

func TestServerDialectForced(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t), Dialect: "sqlite"})
	if got := submittedDialect(t, hs.URL, submitRepo()); got != "sqlite" {
		t.Errorf("forced server: dialect %q, want %q", got, "sqlite")
	}
}

func TestServerDialectDefaultGeneric(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t)})
	if got := submittedDialect(t, hs.URL, mysqlRepo()); got != "generic" {
		t.Errorf("default server: dialect %q, want %q", got, "generic")
	}
}

func TestServerDialectUnknownRejected(t *testing.T) {
	_, err := server.New(context.Background(), server.Config{
		Corpus:    testCorpus(t),
		Dialect:   "oracle",
		Telemetry: telemetry.New(),
	})
	if err == nil {
		t.Fatal("New accepted unknown dialect \"oracle\"")
	}
}
