// Conformance and race tests for the zero-copy serving tier: strong
// ETags with If-None-Match → 304 on every GET surface, and render-cache
// invalidation under concurrent overwrite/DELETE churn. Black-box like
// the rest of the service tests — HTTP only.
package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/vcs"
)

var etagShape = regexp.MustCompile(`^"[0-9a-f]{16}"$`)

// doCond issues one GET with an If-None-Match header.
func doCond(t *testing.T, url, inm string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	body := []byte{}
	for {
		n, err := resp.Body.Read(buf[:])
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header, body
}

// churnRepo builds version v of a deterministic single-project history;
// each version has different DDL content (so a different content hash)
// under the same project name, which makes a POST of version v+1
// supersede version v.
func churnRepo(name string, v int) *vcs.Repo {
	base := time.Date(2018, time.March, 1, 12, 0, 0, 0, time.UTC)
	r := &vcs.Repo{Name: name}
	for i := 0; i <= v; i++ {
		ddl := fmt.Sprintf("CREATE TABLE t%d (id INT PRIMARY KEY, payload TEXT);", i)
		for j := 0; j < i; j++ {
			ddl += fmt.Sprintf("\nCREATE TABLE extra_%d_%d (id INT PRIMARY KEY);", i, j)
		}
		r.Commits = append(r.Commits, vcs.Commit{
			ID:       fmt.Sprintf("c%d", i),
			Time:     base.AddDate(0, i*2, 3),
			SrcLines: 100 + 10*i,
			Files:    map[string]string{"db/schema.sql": ddl},
		})
	}
	return r
}

func wireID(t *testing.T, body []byte) string {
	t.Helper()
	var w struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &w); err != nil {
		t.Fatalf("response is not a project body: %v\n%s", err, body)
	}
	if w.ID == "" {
		t.Fatalf("response carries no id:\n%s", body)
	}
	return w.ID
}

// TestETagConformance pins the conditional-request tier across every
// rendered surface: strong validator shape, exact and weak-compare 304s
// with zero body bytes, full 200 on mismatch, and validator movement
// when the underlying state changes.
func TestETagConformance(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t)})

	status, h, postBody := post(t, hs.URL, submitRepo())
	if status != http.StatusOK {
		t.Fatalf("POST status %d: %s", status, postBody)
	}
	etag := h.Get("ETag")
	if !etagShape.MatchString(etag) {
		t.Fatalf("POST ETag %q is not a strong 16-hex validator", etag)
	}
	id := wireID(t, postBody)
	url := hs.URL + "/v1/projects/" + id

	// Unconditional GET: same validator, byte-identical body.
	status, h, body := doCond(t, url, "")
	if status != http.StatusOK || h.Get("ETag") != etag || string(body) != string(postBody) {
		t.Fatalf("GET: status %d etag %q bodyEqual=%v", status, h.Get("ETag"), string(body) == string(postBody))
	}

	// Conditional GETs: exact, weak-prefixed, list, and wildcard all
	// answer 304 with zero body bytes and the validator still advertised.
	for _, inm := range []string{etag, "W/" + etag, `"zzz", ` + etag, "*"} {
		status, h, body = doCond(t, url, inm)
		if status != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, status)
		}
		if len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body))
		}
		if h.Get("ETag") != etag {
			t.Fatalf("If-None-Match %q: 304 ETag %q, want %q", inm, h.Get("ETag"), etag)
		}
	}

	// A non-matching validator gets the full representation.
	status, _, body = doCond(t, url, `"0000000000000000"`)
	if status != http.StatusOK || string(body) != string(postBody) {
		t.Fatalf("mismatched If-None-Match: status %d bodyEqual=%v", status, string(body) == string(postBody))
	}

	// Aggregates: validator moves when the corpus membership changes.
	statsURL := hs.URL + "/v1/corpus/stats"
	status, h, _ = doCond(t, statsURL, "")
	if status != http.StatusOK {
		t.Fatalf("stats GET status %d", status)
	}
	statsTag := h.Get("ETag")
	if !etagShape.MatchString(statsTag) {
		t.Fatalf("stats ETag %q is not a strong validator", statsTag)
	}
	if status, _, body = doCond(t, statsURL, statsTag); status != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("stats conditional: status %d len %d, want 304 empty", status, len(body))
	}

	status, _, body = post(t, hs.URL, churnRepo("etag-churn", 1))
	if status != http.StatusOK {
		t.Fatalf("churn POST status %d: %s", status, body)
	}
	churnV1 := wireID(t, body)
	status, h, body = doCond(t, statsURL, statsTag)
	if status != http.StatusOK || len(body) == 0 {
		t.Fatalf("stats after new project: status %d, want full 200", status)
	}
	statsTag2 := h.Get("ETag")
	if statsTag2 == statsTag {
		t.Fatal("stats ETag did not move after membership changed")
	}

	// Overwrite: the new version is a new resource with its own
	// validator; the superseded version stops being served.
	status, h, body = post(t, hs.URL, churnRepo("etag-churn", 2))
	if status != http.StatusOK {
		t.Fatalf("churn v2 POST status %d: %s", status, body)
	}
	churnV2 := wireID(t, body)
	if churnV2 == churnV1 {
		t.Fatal("overwrite kept the same content id")
	}
	v2Tag := h.Get("ETag")
	if !etagShape.MatchString(v2Tag) || v2Tag == etag {
		t.Fatalf("v2 ETag %q invalid or colliding", v2Tag)
	}
	if status, _, _ = doCond(t, hs.URL+"/v1/projects/"+churnV1, ""); status != http.StatusNotFound {
		t.Fatalf("superseded version GET status %d, want 404", status)
	}
	if status, _, _ = doCond(t, hs.URL+"/v1/projects/"+churnV2, v2Tag); status != http.StatusNotModified {
		t.Fatalf("v2 conditional GET status %d, want 304", status)
	}

	// DELETE moves the aggregate validator again and the project is gone.
	status, _, body = do(t, http.MethodDelete, hs.URL+"/v1/projects/"+churnV2, nil)
	if status != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", status, body)
	}
	if status, _, _ = doCond(t, hs.URL+"/v1/projects/"+churnV2, v2Tag); status != http.StatusNotFound {
		t.Fatalf("deleted project conditional GET status %d, want 404", status)
	}
	if status, h, _ = doCond(t, statsURL, ""); status != http.StatusOK || h.Get("ETag") == statsTag2 {
		t.Fatalf("stats ETag after DELETE: status %d etag %q, want a moved validator", status, h.Get("ETag"))
	}
}

// TestRenderInvalidationUnderChurn races readers against
// overwrite/DELETE committers and pins the invalidation invariant: once
// a mutation's response has returned, no subsequent GET may serve the
// pre-mutation state — a superseded or deleted version answers 404, a
// live version answers its exact bytes, and a 304 never carries a body.
// Run under -race this also shakes out cache/aggregate data races.
func TestRenderInvalidationUnderChurn(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t)})

	// bodies maps every content id this test ever created to its exact
	// wire body; a 200 for id must match bodies[id] no matter how the
	// race unfolded, because ids are content-addressed.
	var mu sync.Mutex
	bodies := map[string][]byte{}
	var current atomic.Value // string: the id most recently committed
	current.Store("")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := current.Load().(string)
				if id == "" {
					continue
				}
				mu.Lock()
				want := bodies[id]
				mu.Unlock()
				status, _, body := doCond(t, hs.URL+"/v1/projects/"+id, "")
				switch status {
				case http.StatusOK:
					if string(body) != string(want) {
						t.Errorf("GET %s returned foreign bytes for its content id", id)
						return
					}
				case http.StatusNotFound:
					// Superseded or deleted while we raced — legal.
				default:
					t.Errorf("GET %s: unexpected status %d", id, status)
					return
				}
				// Aggregates must stay serveable throughout the churn.
				if status, _, _ := doCond(t, hs.URL+"/v1/corpus/stats", ""); status != http.StatusOK {
					t.Errorf("stats GET during churn: status %d", status)
					return
				}
			}
		}()
	}

	const rounds = 10
	var prev string
	for v := 1; v <= rounds; v++ {
		status, _, body := post(t, hs.URL, churnRepo("churn-project", v))
		if status != http.StatusOK {
			t.Fatalf("round %d POST status %d: %s", v, status, body)
		}
		id := wireID(t, body)
		mu.Lock()
		bodies[id] = body
		mu.Unlock()
		current.Store(id)

		// The commit has returned: the previous version must already be
		// invisible and the new one must serve its exact bytes.
		if prev != "" && prev != id {
			if status, _, _ := doCond(t, hs.URL+"/v1/projects/"+prev, ""); status != http.StatusNotFound {
				t.Fatalf("round %d: superseded %s still served (status %d)", v, prev, status)
			}
		}
		status, h, got := doCond(t, hs.URL+"/v1/projects/"+id, "")
		if status != http.StatusOK || string(got) != string(body) {
			t.Fatalf("round %d: GET after commit: status %d bodyEqual=%v", v, status, string(got) == string(body))
		}
		if status, _, b304 := doCond(t, hs.URL+"/v1/projects/"+id, h.Get("ETag")); status != http.StatusNotModified || len(b304) != 0 {
			t.Fatalf("round %d: conditional GET status %d len %d", v, status, len(b304))
		}
		prev = id
	}

	// DELETE the final version mid-churn, then verify it stays gone.
	if status, _, body := do(t, http.MethodDelete, hs.URL+"/v1/projects/"+prev, nil); status != http.StatusOK {
		t.Fatalf("DELETE status %d: %s", status, body)
	}
	if status, _, _ := doCond(t, hs.URL+"/v1/projects/"+prev, ""); status != http.StatusNotFound {
		t.Fatalf("deleted %s still served (status %d)", prev, status)
	}
	close(stop)
	wg.Wait()
}
