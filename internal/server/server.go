// Package server exposes the schema-evolution analysis toolchain as a
// zero-dependency (net/http) HTTP service: submit a project's DDL commit
// history, get back its time-related pattern, measures and labels; query
// corpus-wide pattern statistics; scrape the run's telemetry.
//
// The hot path is built for heavy duplicate traffic:
//
//   - a singleflight group collapses concurrent identical submissions
//     (same content fingerprint) into one pipeline execution;
//   - an LRU result store keyed by the content hash memoizes results in
//     the pipeline cache codec's compact encoding, so repeat submissions
//     and point GETs never recompute;
//   - a bounded worker semaphore backpressures analysis work — a
//     saturated server answers 429 with a Retry-After hint instead of
//     queueing without bound;
//   - every request runs under a deadline, and BeginDrain flips the
//     server into lame-duck mode: in-flight requests complete, new ones
//     get 503 (the SIGTERM contract, see DESIGN.md §9).
//
// Telemetry (internal/telemetry) observes every endpoint — request
// counters, latency histograms, an in-flight gauge — plus the store's
// hit/miss counters and one "analyze.exec" stage counting actual pipeline
// executions (the singleflight tests key off it). Fault injection
// (internal/faultinject) reaches the handler path through the
// "server.submit" site and flows into the pipeline's own sites, so the
// chaos suite can exercise the full service stack.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// Config parameterizes a Server. The zero value is valid: no preloaded
// corpus, defaults for every limit, a fresh telemetry collector, no fault
// injection.
type Config struct {
	// Corpus, when non-nil, is analyzed at construction time and served
	// by the /v1/corpus endpoints and by GET /v1/projects/{id}.
	Corpus *corpus.Corpus
	// CacheDir enables the pipeline's content-hash disk cache for
	// submitted analyses (empty disables it; the in-memory LRU result
	// store is always on).
	CacheDir string
	// MaxConcurrent bounds concurrently executing submissions (the worker
	// semaphore). Beyond it the server answers 429. <= 0 selects
	// 2×GOMAXPROCS.
	MaxConcurrent int
	// RequestTimeout is the per-request deadline. <= 0 selects 30s.
	RequestTimeout time.Duration
	// LRUEntries caps the in-memory result store. <= 0 selects 1024.
	LRUEntries int
	// RetryAfter is the backoff hint advertised on 429/503 responses.
	// <= 0 selects 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds a submission body. <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// Scheme overrides the quantization scheme; nil selects the paper's.
	Scheme *quantize.Scheme
	// Telemetry receives the service's observability stream; nil selects
	// a fresh collector (the server always observes).
	Telemetry *telemetry.Collector
	// Fault injects deterministic chaos into the handler path (site
	// "server.submit") and the pipeline/cache sites of submitted
	// analyses. nil disables injection. Startup corpus analysis is
	// always fault-free.
	Fault *faultinject.Injector
}

// Server is the HTTP analysis service. Construct with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	scheme quantize.Scheme
	tel    *telemetry.Collector
	mux    *http.ServeMux

	corpus *corpus.Corpus
	index  *corpus.Index
	// statsBody and patternsBody are the /v1/corpus responses, rendered
	// once at construction: the corpus is immutable while serving, so the
	// bodies are static — and trivially byte-stable.
	statsBody    []byte
	patternsBody []byte

	store  *lruStore
	flight flightGroup
	sem    chan struct{}

	draining atomic.Bool
	inflight atomic.Int64
	analyses atomic.Int64
}

// errSaturated is returned by the submit path when the worker semaphore
// is full; the handler maps it to 429 + Retry-After.
var errSaturated = errors.New("server: analysis workers saturated")

// New builds the service: analyzes the configured corpus (fault-free,
// through the staged pipeline), indexes it by content-hash ID, and wires
// the routes. It fails if the corpus cannot be fully analyzed — a serving
// process must not start with a silently shrunken dataset.
func New(ctx context.Context, cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, scheme: quantize.DefaultScheme()}
	if cfg.Scheme != nil {
		s.scheme = *cfg.Scheme
	}
	if s.tel = cfg.Telemetry; s.tel == nil {
		s.tel = telemetry.New()
	}
	max := cfg.MaxConcurrent
	if max <= 0 {
		max = 2 * runtime.GOMAXPROCS(0)
	}
	s.sem = make(chan struct{}, max)
	entries := cfg.LRUEntries
	if entries <= 0 {
		entries = 1024
	}
	s.store = newLRUStore(entries)

	s.corpus = cfg.Corpus
	if s.corpus == nil {
		s.corpus = &corpus.Corpus{}
	}
	if len(s.corpus.Projects) > 0 {
		opts := pipeline.Options{CacheDir: cfg.CacheDir, Scheme: cfg.Scheme, Telemetry: s.tel}
		if _, err := pipeline.Run(ctx, s.corpus, opts); err != nil {
			return nil, fmt.Errorf("server: corpus analysis: %w", err)
		}
	}
	ids := make(map[*corpus.Project]string, len(s.corpus.Projects))
	idOf := func(p *corpus.Project) string {
		if id, ok := ids[p]; ok {
			return id
		}
		id := projectID(pipeline.Fingerprint(p.Repo))
		ids[p] = id
		return id
	}
	idx, err := corpus.NewIndex(s.corpus, idOf)
	if err != nil {
		return nil, err
	}
	s.index = idx
	if s.statsBody, err = renderJSON(buildCorpusStats(s.corpus)); err != nil {
		return nil, err
	}
	if s.patternsBody, err = renderJSON(buildCorpusPatterns(s.corpus, idOf)); err != nil {
		return nil, err
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/projects", s.wrap("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/projects/{id}", s.wrap("project", s.handleProject))
	s.mux.HandleFunc("GET /v1/corpus/stats", s.wrap("stats", s.handleCorpusStats))
	s.mux.HandleFunc("GET /v1/corpus/patterns", s.wrap("patterns", s.handleCorpusPatterns))
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))
	return s, nil
}

// projectID derives the short stable resource ID from a full content
// fingerprint.
func projectID(fingerprint string) string {
	return fingerprint[:corpus.IDLen]
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain flips the server into lame-duck mode: every subsequent
// request is answered 503 + Retry-After, while requests already in flight
// run to completion. Idempotent. Pair it with http.Server.Shutdown, which
// waits for the in-flight set to drain (the SIGTERM sequence in
// cmd/schemaevod).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Analyses returns the number of actual pipeline executions the submit
// path performed (duplicate submissions collapsed by the singleflight
// group or served from the result store do not count).
func (s *Server) Analyses() int64 { return s.analyses.Load() }

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// statusWriter captures the response status for telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// wrap is the per-endpoint middleware: the drain gate, the per-request
// deadline, and telemetry (request counter, latency histogram, in-flight
// occupancy, one span per request).
func (s *Server) wrap(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	stage := s.tel.Stage("http." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "server is draining", nil)
			return
		}
		timeout := s.cfg.RequestTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		s.inflight.Add(1)
		stage.Enter()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r.WithContext(ctx))
		busy := time.Since(begin)
		stage.Exit()
		s.inflight.Add(-1)
		failed := sw.status >= 500
		stage.Observe(0, busy, failed)
		s.tel.RecordSpan(r.Method+" "+r.URL.Path, "http."+name, begin, busy, failed)
	}
}

// retryAfterSeconds renders the configured backoff hint as whole seconds
// (minimum 1, the header's granularity).
func (s *Server) retryAfterSeconds() string {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleSubmit is POST /v1/projects: accept a DDL commit history
// (vcs.Repo JSON), analyze it through the pipeline — deduplicated by
// content fingerprint, memoized in the result store, bounded by the
// worker semaphore — and return the pattern-study result.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	var repo vcs.Repo
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&repo); err != nil {
		writeError(w, http.StatusBadRequest, "invalid repository JSON: "+err.Error(), nil)
		return
	}
	if err := repo.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}

	fingerprint := pipeline.Fingerprint(&repo)
	id := projectID(fingerprint)
	if data, ok := s.store.get(id); ok {
		s.tel.CacheHit(int64(len(data)))
		res, err := pipeline.DecodeResult(data)
		if err == nil {
			w.Header().Set("X-Cache", "hit")
			writeJSON(w, http.StatusOK, buildProjectWire(id, res.Project, res.History, res.Measures, s.scheme))
			return
		}
		// An undecodable store entry is impossible short of memory
		// corruption; treat it as a miss and recompute.
	}
	s.tel.CacheMiss()

	val, err, shared := s.flight.Do(fingerprint, func() (any, error) {
		return s.analyze(r.Context(), &repo, fingerprint)
	})
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	res := val.(*pipeline.CachedResult)
	cacheState := "miss"
	if shared {
		cacheState = "coalesced"
	}
	w.Header().Set("X-Cache", cacheState)
	writeJSON(w, http.StatusOK, buildProjectWire(id, res.Project, res.History, res.Measures, s.scheme))
}

// failServer is the degradation taxonomy bucket for faults injected at
// the handler path itself (site "server.submit"), as opposed to the
// pipeline's own parse/assemble/metrics/timeout/panic kinds.
const failServer = pipeline.FailureKind("server")

// handlerDegradation builds the single-project degradation report a
// handler-path incident attaches to its 500 body.
func handlerDegradation(project string, kind pipeline.FailureKind, msg string) *pipeline.DegradationReport {
	return &pipeline.DegradationReport{
		Projects: 1,
		ByKind:   map[pipeline.FailureKind]int{kind: 1},
		Failures: []pipeline.ProjectFailure{{Project: project, Kind: kind, Error: msg}},
	}
}

// analysisError carries a failed run's degradation report to the error
// body.
type analysisError struct {
	err error
	rep *pipeline.DegradationReport
}

func (e *analysisError) Error() string { return e.err.Error() }
func (e *analysisError) Unwrap() error { return e.err }

// analyze is the singleflight leader's body: acquire a worker slot (or
// report saturation), apply handler-path chaos, run the pipeline, and
// memoize the encoded result.
func (s *Server) analyze(ctx context.Context, repo *vcs.Repo, fingerprint string) (v any, err error) {
	// Double-check the store under flight leadership: a caller that
	// missed the store, then became leader only after a previous leader
	// for the same content completed, must serve the memoized result —
	// never a second pipeline run.
	if data, ok := s.store.get(projectID(fingerprint)); ok {
		if res, derr := pipeline.DecodeResult(data); derr == nil {
			return res, nil
		}
	}
	select {
	case s.sem <- struct{}{}:
	default:
		return nil, errSaturated
	}
	defer func() { <-s.sem }()

	// The handler-path fault site: errors and panics become attributed
	// 500s with a degradation report; delays stall cooperatively (they
	// respect the request deadline via ctx).
	defer func() {
		if r := recover(); r != nil {
			err = &analysisError{
				err: fmt.Errorf("analysis panicked: %v", r),
				rep: handlerDegradation(repo.Name, pipeline.FailPanic, fmt.Sprint(r)),
			}
		}
	}()
	switch s.cfg.Fault.At("server.submit", repo.Name) {
	case faultinject.KindErr:
		ferr := &faultinject.Error{Site: "server.submit", Key: repo.Name}
		return nil, &analysisError{err: ferr, rep: handlerDegradation(repo.Name, failServer, ferr.Error())}
	case faultinject.KindPanic:
		panic(fmt.Sprintf("faultinject: server.submit (%s)", repo.Name))
	case faultinject.KindDelay:
		s.cfg.Fault.Sleep(ctx)
	}

	exec := s.tel.Stage("analyze.exec")
	exec.Enter()
	begin := time.Now()
	res, stats, aerr := pipeline.AnalyzeRepo(ctx, repo, pipeline.Options{
		CacheDir:  s.cfg.CacheDir,
		Scheme:    s.cfg.Scheme,
		Fault:     s.cfg.Fault,
		Telemetry: s.tel,
	})
	busy := time.Since(begin)
	exec.Exit()
	exec.Observe(0, busy, aerr != nil)
	s.analyses.Add(1)
	if aerr != nil {
		return nil, &analysisError{err: aerr, rep: stats.Degradation}
	}

	cached := &pipeline.CachedResult{
		Fingerprint: fingerprint,
		Project:     repo.Name,
		History:     res.History,
		Measures:    res.Measures,
	}
	s.store.put(projectID(fingerprint), pipeline.EncodeResult(cached))
	return cached, nil
}

// writeSubmitError maps an analysis failure to its status code and body.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errSaturated) {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, errSaturated.Error(), nil)
		return
	}
	var ae *analysisError
	if errors.As(err, &ae) {
		status := http.StatusInternalServerError
		if errors.Is(ae.err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, ae.err.Error(), ae.rep)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, err.Error(), nil)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error(), nil)
}

// handleProject is GET /v1/projects/{id}: the result store first (any
// previously submitted history), then the corpus index (preloaded
// projects), else 404. Responses are byte-identical to the submit
// response for the same content.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if data, ok := s.store.get(id); ok {
		s.tel.CacheHit(int64(len(data)))
		if res, err := pipeline.DecodeResult(data); err == nil {
			w.Header().Set("X-Cache", "hit")
			writeJSON(w, http.StatusOK, buildProjectWire(id, res.Project, res.History, res.Measures, s.scheme))
			return
		}
	}
	s.tel.CacheMiss()
	if p, ok := s.index.Lookup(id); ok && p.Analyzed {
		w.Header().Set("X-Cache", "corpus")
		writeJSON(w, http.StatusOK, buildProjectWire(id, p.Name, p.History, p.Measures, s.scheme))
		return
	}
	writeError(w, http.StatusNotFound, "unknown project id "+id, nil)
}

// handleCorpusStats is GET /v1/corpus/stats (pre-rendered at startup).
func (s *Server) handleCorpusStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.statsBody)
}

// handleCorpusPatterns is GET /v1/corpus/patterns (pre-rendered at
// startup).
func (s *Server) handleCorpusPatterns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.patternsBody)
}

// healthzWire is the GET /healthz body.
type healthzWire struct {
	Status   string `json:"status"`
	Projects int    `json:"projects"`
}

// handleHealthz is GET /healthz: liveness plus the corpus size. (While
// draining, the drain gate answers 503 before this handler runs — load
// balancers stop routing on the status flip.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzWire{Status: "ok", Projects: s.corpus.Len()})
}

// handleMetrics is GET /metrics: the run's telemetry report JSON
// (schema_version'd; see internal/telemetry). The report's cache block
// aggregates the in-memory result store and, when configured, the
// pipeline's disk cache.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.tel.WriteJSON(w); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), nil)
	}
}
