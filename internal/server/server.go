// Package server exposes the schema-evolution analysis toolchain as a
// zero-dependency (net/http) HTTP service: submit a project's DDL commit
// history, get back its time-related pattern, measures and labels; query
// corpus-wide pattern statistics; scrape the run's telemetry.
//
// The hot path is built for heavy duplicate traffic and long-lived data:
//
//   - a singleflight group collapses concurrent identical submissions
//     (same content fingerprint) into one pipeline execution;
//   - a sharded two-tier result store (internal/store) is the source of
//     truth: a bounded in-memory hot tier over optional on-disk segment
//     files holding both the encoded result and the submitted source
//     snapshot — so eviction, corruption and restarts cost recomputation
//     at worst, never data loss;
//   - version N+1 submissions of a known project are re-analyzed
//     incrementally: the persisted snapshot proves the new history
//     extends the old one, so only the suffix is parsed and diffed
//     (pipeline.ExtendResult), byte-identical to a cold full analysis;
//   - a bounded worker semaphore backpressures analysis work — a
//     saturated server answers 429 with a Retry-After hint on the single
//     submit path, while the streaming batch endpoint blocks per line
//     (natural backpressure) instead;
//   - every request runs under a deadline, and BeginDrain flips the
//     server into lame-duck mode: in-flight requests complete, new ones
//     get 503 (the SIGTERM contract, see DESIGN.md §9).
//
// Corpus-wide aggregates (/v1/corpus/stats, /v1/corpus/patterns) are
// incrementally maintained: submissions join them on commit, overwrites
// and DELETEs invalidate, and a warm restart rebuilds them from the disk
// tier without re-running any analysis.
//
// Telemetry (internal/telemetry) observes every endpoint — request
// counters, latency histograms, an in-flight gauge — plus the store's
// tiered hit/miss block and two analysis stages: "analyze.exec" counts
// full pipeline executions, "analyze.incr" counts incremental
// re-analyses (the differential tests key off both). Fault injection
// (internal/faultinject) reaches the handler path through the
// "server.submit" site, the store through "store.flush", and flows into
// the pipeline's own sites, so the chaos suite can exercise the full
// service stack.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/sqlddl/dialect"
	"schemaevo/internal/store"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// Config parameterizes a Server. The zero value is valid: no preloaded
// corpus, a memory-only store, defaults for every limit, a fresh
// telemetry collector, no fault injection.
type Config struct {
	// Corpus, when non-nil, is analyzed at construction time and served
	// by the /v1/corpus endpoints and by GET /v1/projects/{id}.
	Corpus *corpus.Corpus
	// CacheDir enables the pipeline's content-hash disk cache for
	// submitted analyses (empty disables it; the result store is always
	// on).
	CacheDir string
	// StoreDir enables the result store's disk tier: submitted analyses
	// (results AND source snapshots) persist across restarts in sharded
	// segment files under this directory. Empty selects memory-only mode.
	StoreDir string
	// StoreShards is the disk tier's segment-file count. <= 0 selects 8.
	// Fixed at directory creation; reopening ignores a differing value.
	StoreShards int
	// Dialect selects the SQL grammar for every analysis — the startup
	// corpus and each submission: "" or "generic" (the permissive union
	// grammar, the default), a concrete dialect name, or "auto" for
	// per-file detection. Unknown names fail New up front; resolved
	// dialects appear in every /v1 analysis body.
	Dialect string
	// AnalysisShards is the analysis pipeline's shard count (one shard =
	// one goroutine owning its parse/assemble/metrics scratch), used for
	// the startup corpus analysis and every submitted analysis. <= 0
	// selects GOMAXPROCS; 1 selects the sequential path.
	AnalysisShards int
	// MaxConcurrent bounds concurrently executing submissions (the worker
	// semaphore). Beyond it the single submit path answers 429. <= 0
	// selects 2×GOMAXPROCS.
	MaxConcurrent int
	// RequestTimeout is the per-request deadline. <= 0 selects 30s. The
	// streaming batch endpoint is exempt as a whole (its lifetime is
	// client-paced) and applies this budget to each line instead.
	RequestTimeout time.Duration
	// LRUEntries caps the store's in-memory hot tier by entry count.
	// <= 0 selects 1024.
	LRUEntries int
	// HotBytes caps the hot tier by total encoded-result bytes. <= 0
	// selects 256 MiB.
	HotBytes int64
	// RetryAfter is the backoff hint advertised on 429/503 responses.
	// <= 0 selects 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds a single-submission body. <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// MaxLineBytes bounds one NDJSON line on the batch endpoint. <= 0
	// selects 4 MiB.
	MaxLineBytes int
	// Scheme overrides the quantization scheme; nil selects the paper's.
	Scheme *quantize.Scheme
	// Telemetry receives the service's observability stream; nil selects
	// a fresh collector (the server always observes).
	Telemetry *telemetry.Collector
	// Fault injects deterministic chaos into the handler path (site
	// "server.submit"), the store ("store.flush", "store.scrub",
	// "store.diskfull", "store.slowdisk"), and the pipeline/cache sites of
	// submitted analyses. nil disables injection. Startup corpus analysis
	// is always fault-free.
	Fault *faultinject.Injector
	// ScrubInterval enables the background store scrubber: every interval
	// it CRC-verifies stored records ahead of demand, quarantines latent
	// corruption, repairs affected projects by re-analysis from their
	// persisted source snapshots, schedules compaction, and runs the
	// disk-budget watchdog. <= 0 disables the background loop (ScrubNow
	// stays available for on-demand passes).
	ScrubInterval time.Duration
	// ScrubPace rate-limits the scrubber's per-record reads so a pass
	// never competes with foreground traffic for disk. 0 selects 500µs
	// between records; < 0 disables pacing.
	ScrubPace time.Duration
	// DiskLowBytes is the disk-budget watchdog's free-space floor: while
	// the store directory's filesystem has less available, the store
	// degrades to read-only (write endpoints answer 503 + Retry-After,
	// reads keep serving) instead of crashing into ENOSPC, recovering once
	// free space climbs back above twice the floor. <= 0 disables the
	// watchdog.
	DiskLowBytes int64
	// RenderBytes caps the pre-rendered response cache (the zero-copy
	// serving tier: each project's wire JSON rendered once into an
	// immutable []byte and served with a single write). 0 selects 64 MiB;
	// negative disables the cache — every read re-renders, which the
	// eviction/re-analysis tests use to exercise the fall-through paths.
	RenderBytes int64
}

// aggEntry is one submitted project's contribution to the live corpus
// aggregates.
type aggEntry struct {
	name string
	pat  core.Pattern
}

// renderedDoc is one lazily rendered aggregate document (stats or
// patterns): the pre-rendered body and its ETag, valid while epoch still
// matches the live aggregate epoch. A nil body means not yet rendered.
type renderedDoc struct {
	epoch uint64
	body  []byte
	etag  string
}

// Server is the HTTP analysis service. Construct with New; it implements
// http.Handler. Close releases the store.
type Server struct {
	cfg    Config
	scheme quantize.Scheme
	tel    *telemetry.Collector
	mux    *http.ServeMux

	corpus *corpus.Corpus
	index  *corpus.Index
	// corpusMembers is the immutable analyzed-corpus contribution to the
	// aggregate endpoints, derived once at construction.
	corpusMembers []member

	store  *store.Store
	flight flightGroup
	sem    chan struct{}
	// render is the pre-rendered response cache (nil when disabled via
	// RenderBytes < 0); invalidated through the store's OnCommit hook.
	render *renderCache

	// agg is the live aggregate membership of store-backed projects
	// (never corpus IDs), maintained on every commit/delete/overwrite.
	// aggCounts is its per-pattern tally, maintained incrementally so the
	// stats document never rescans the membership; aggEpoch bumps on every
	// aggregate mutation and versions the two lazily rendered documents.
	aggMu       sync.Mutex
	agg         map[string]aggEntry
	aggCounts   map[core.Pattern]int
	aggEpoch    uint64
	statsDoc    renderedDoc
	patternsDoc renderedDoc
	// corpusCounts is the immutable corpus baseline's per-pattern tally,
	// derived once at construction alongside corpusMembers.
	corpusCounts map[core.Pattern]int

	execStage *telemetry.Stage
	incrStage *telemetry.Stage

	draining     atomic.Bool
	inflight     atomic.Int64
	analyses     atomic.Int64
	incrementals atomic.Int64
	// semWait counts callers currently blocked on the worker semaphore
	// (batch lines and repairs); together with the semaphore's occupancy it
	// drives the adaptive Retry-After hint.
	semWait atomic.Int64
}

// errSaturated is returned by the submit path when the worker semaphore
// is full; the handler maps it to 429 + Retry-After.
var errSaturated = errors.New("server: analysis workers saturated")

// New builds the service: analyzes the configured corpus (fault-free,
// through the staged pipeline), indexes it by content-hash ID, opens the
// result store (recovering any persisted projects and rebuilding the
// live aggregates from them — with zero re-analyses), and wires the
// routes. It fails if the corpus cannot be fully analyzed — a serving
// process must not start with a silently shrunken dataset.
func New(ctx context.Context, cfg Config) (*Server, error) {
	// Fail fast on an unknown dialect: every later analysis would fail
	// the same way, and the fingerprints computed before the first
	// analysis would claim a selection that can never resolve.
	if cfg.Dialect != "auto" {
		if _, ok := dialect.ByName(cfg.Dialect); !ok {
			return nil, fmt.Errorf("server: unknown dialect %q (accepted: %v)", cfg.Dialect, dialect.Names())
		}
	}
	s := &Server{
		cfg:          cfg,
		scheme:       quantize.DefaultScheme(),
		agg:          map[string]aggEntry{},
		aggCounts:    map[core.Pattern]int{},
		corpusCounts: map[core.Pattern]int{},
	}
	if cfg.Scheme != nil {
		s.scheme = *cfg.Scheme
	}
	if s.tel = cfg.Telemetry; s.tel == nil {
		s.tel = telemetry.New()
	}
	max := cfg.MaxConcurrent
	if max <= 0 {
		max = 2 * runtime.GOMAXPROCS(0)
	}
	s.sem = make(chan struct{}, max)
	s.execStage = s.tel.Stage("analyze.exec")
	s.incrStage = s.tel.Stage("analyze.incr")

	if cfg.RenderBytes >= 0 {
		rb := cfg.RenderBytes
		if rb == 0 {
			rb = 64 << 20
		}
		s.render = newRenderCache(rb, s.tel)
	}
	// Every store mutation (overwrite, delete, re-analysis write-back)
	// invalidates the affected IDs' rendered bodies after the mutation is
	// fully visible — the epoch protocol in rendercache.go relies on this
	// ordering.
	var onCommit func(id string, seq uint64)
	if s.render != nil {
		onCommit = func(id string, _ uint64) { s.render.invalidate(id) }
	}

	st, err := store.Open(store.Config{
		Dir:        cfg.StoreDir,
		Shards:     cfg.StoreShards,
		HotEntries: cfg.LRUEntries,
		HotBytes:   cfg.HotBytes,
		Telemetry:  s.tel,
		Fault:      cfg.Fault,
		OnCommit:   onCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.store = st

	s.corpus = cfg.Corpus
	if s.corpus == nil {
		s.corpus = &corpus.Corpus{}
	}
	if len(s.corpus.Projects) > 0 {
		opts := pipeline.Options{CacheDir: cfg.CacheDir, Scheme: cfg.Scheme, Telemetry: s.tel, Shards: cfg.AnalysisShards, Dialect: cfg.Dialect}
		if _, err := pipeline.Run(ctx, s.corpus, opts); err != nil {
			st.Close()
			return nil, fmt.Errorf("server: corpus analysis: %w", err)
		}
	}
	ids := make(map[*corpus.Project]string, len(s.corpus.Projects))
	idOf := func(p *corpus.Project) string {
		if id, ok := ids[p]; ok {
			return id
		}
		id := projectID(pipeline.FingerprintDialect(p.Repo, cfg.Dialect))
		ids[p] = id
		return id
	}
	idx, err := corpus.NewIndex(s.corpus, idOf)
	if err != nil {
		st.Close()
		return nil, err
	}
	s.index = idx
	for _, p := range s.corpus.Projects {
		if p.Analyzed {
			s.corpusMembers = append(s.corpusMembers, member{id: idOf(p), name: p.Name, pat: p.Assigned()})
			s.corpusCounts[p.Assigned()]++
		}
	}

	// Warm restart: every persisted project rejoins the aggregates from
	// its stored result — decode only, no analysis. Entries whose result
	// is currently unreadable (quarantined) stay out until re-analyzed on
	// demand.
	s.store.Each(func(id, name string, result []byte) {
		if result == nil {
			return
		}
		if _, corpusOwned := s.index.Lookup(id); corpusOwned {
			return
		}
		if res, err := pipeline.DecodeResult(result); err == nil {
			pat := assignedPattern(res.Measures, s.scheme)
			s.agg[id] = aggEntry{name: name, pat: pat}
			s.aggCounts[pat]++
		}
	})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/projects", s.wrap("submit", s.handleSubmit))
	s.mux.HandleFunc("POST /v1/projects:batch", s.wrapStream("batch", s.handleBatch))
	s.mux.HandleFunc("GET /v1/projects/{id}", s.wrap("project", s.handleProject))
	s.mux.HandleFunc("DELETE /v1/projects/{id}", s.wrap("delete", s.handleDelete))
	s.mux.HandleFunc("GET /v1/corpus/stats", s.wrap("stats", s.handleCorpusStats))
	s.mux.HandleFunc("GET /v1/corpus/patterns", s.wrap("patterns", s.handleCorpusPatterns))
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.wrap("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", s.handleMetrics))

	if cfg.ScrubInterval > 0 {
		s.store.StartScrubber(s.scrubConfig())
	}
	return s, nil
}

// projectID derives the short stable resource ID from a full content
// fingerprint.
func projectID(fingerprint string) string {
	return fingerprint[:corpus.IDLen]
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the background scrubber and releases the result store
// (segment file handles). The server must not serve requests afterwards.
func (s *Server) Close() error { return s.store.Close() }

// BeginDrain flips the server into lame-duck mode: every subsequent
// request is answered 503 + Retry-After, while requests already in flight
// run to completion. Idempotent. Pair it with http.Server.Shutdown, which
// waits for the in-flight set to drain (the SIGTERM sequence in
// cmd/schemaevod).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Analyses returns the number of full pipeline executions the service
// performed (submissions collapsed by the singleflight group, served
// from the store, or analyzed incrementally do not count).
func (s *Server) Analyses() int64 { return s.analyses.Load() }

// Incrementals returns the number of submissions analyzed incrementally
// against a persisted predecessor snapshot.
func (s *Server) Incrementals() int64 { return s.incrementals.Load() }

// Stored returns the number of live projects in the result store.
func (s *Server) Stored() int { return s.store.Len() }

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// statusWriter captures the response status for telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the batch endpoint) to the
// underlying writer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer so http.NewResponseController
// can reach per-connection controls (full-duplex mode for batch
// streaming) through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap is the per-endpoint middleware: the drain gate, the per-request
// deadline, and telemetry (request counter, latency histogram, in-flight
// occupancy, one span per request).
func (s *Server) wrap(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(name, true, h)
}

// wrapStream is wrap without the whole-request deadline, for streaming
// endpoints whose lifetime is client-paced: a large NDJSON batch with
// blocking backpressure legitimately outlives any fixed request budget,
// so the batch handler bounds its work per line instead (see
// requestTimeout) and relies on context cancellation for client
// disconnects.
func (s *Server) wrapStream(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(name, false, h)
}

func (s *Server) instrument(name string, deadline bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	stage := s.tel.Stage("http." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			writeError(w, http.StatusServiceUnavailable, "server is draining", nil)
			return
		}
		if deadline {
			ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout())
			defer cancel()
			r = r.WithContext(ctx)
		}

		s.inflight.Add(1)
		stage.Enter()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		busy := time.Since(begin)
		stage.Exit()
		s.inflight.Add(-1)
		failed := sw.status >= 500
		stage.Observe(0, busy, failed)
		s.tel.RecordSpan(r.Method+" "+r.URL.Path, "http."+name, begin, busy, failed)
	}
}

// requestTimeout resolves the configured per-request deadline.
func (s *Server) requestTimeout() time.Duration {
	if s.cfg.RequestTimeout > 0 {
		return s.cfg.RequestTimeout
	}
	return 30 * time.Second
}

// retryAfterSeconds renders the backoff hint as whole seconds (minimum
// 1, the header's granularity). The hint is adaptive: the configured base
// scales with current pressure — busy workers plus callers blocked on the
// semaphore, relative to capacity — clamped to [base, 8×base]. An idle
// server hints the base so transient rejections (drain races, read-only
// blips) retry promptly; a saturated server with a deep waiter backlog
// tells clients to stay away up to 8× longer, spreading the retry storm
// instead of synchronizing it.
func (s *Server) retryAfterSeconds() string {
	base := s.cfg.RetryAfter
	if base <= 0 {
		base = time.Second
	}
	d := base
	if capacity := int64(cap(s.sem)); capacity > 0 {
		load := int64(len(s.sem)) + s.semWait.Load()
		// Linear ramp: factor 1 at load 0 up to 8 at load ≥ 2×capacity
		// (every worker busy and as many callers again queued behind them).
		factor := 1 + 7*float64(load)/float64(2*capacity)
		if factor > 8 {
			factor = 8
		}
		d = time.Duration(float64(base) * factor)
	}
	secs := int((d + time.Second - 1) / time.Second) // ceil: never hint below a busy base
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleSubmit is POST /v1/projects: accept a DDL commit history
// (vcs.Repo JSON), analyze it — deduplicated by content fingerprint,
// incrementally when the store holds the project's previous version,
// bounded by the worker semaphore — and return the pattern-study result.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.store.ReadOnly() {
		s.writeReadOnly(w)
		return
	}
	maxBody := s.cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	var repo vcs.Repo
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&repo); err != nil {
		writeError(w, http.StatusBadRequest, "invalid repository JSON: "+err.Error(), nil)
		return
	}
	if err := repo.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), nil)
		return
	}
	out, cacheState, err := s.submit(r.Context(), &repo, false)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.serveRendered(w, r, out.entry, cacheState, false)
}

// submitOutcome carries the singleflight leader's result plus how it was
// obtained, so followers can label their responses. entry is always a
// fully rendered body; the batch endpoint reads the project and pattern
// summaries off it without decoding anything.
type submitOutcome struct {
	id    string
	entry renderEntry
	state string // "hit", "miss", or "incremental"
}

// submit is the shared analysis path of the single and batch endpoints:
// render cache, then store lookup, then singleflight and
// incremental-or-full analysis plus commit.
// wait selects the semaphore discipline — false rejects with errSaturated
// when all workers are busy (single submit's 429 contract), true blocks
// until a slot or ctx expiry (the batch endpoint's backpressure).
// The returned cache state is one of "hit", "coalesced", "incremental",
// "miss".
func (s *Server) submit(ctx context.Context, repo *vcs.Repo, wait bool) (*submitOutcome, string, error) {
	fingerprint := pipeline.FingerprintDialect(repo, s.cfg.Dialect)
	id := projectID(fingerprint)
	// A live rendered body is proof the store already holds this content
	// (corpus-only renders don't count: the first submission of a corpus
	// project must still analyze and commit it).
	if e, ok := s.render.get(id); ok && !e.corpus {
		return &submitOutcome{id: id, entry: e, state: "hit"}, "hit", nil
	}
	if e, ok := s.renderStored(id); ok {
		return &submitOutcome{id: id, entry: e, state: "hit"}, "hit", nil
	}
	val, err, shared := s.flight.Do(fingerprint, func() (any, error) {
		return s.analyze(ctx, repo, fingerprint, wait)
	})
	if err != nil {
		return nil, "", err
	}
	out := val.(*submitOutcome)
	state := out.state
	if shared {
		state = "coalesced"
	}
	return out, state, nil
}

// failServer is the degradation taxonomy bucket for faults injected at
// the handler path itself (site "server.submit"), as opposed to the
// pipeline's own parse/assemble/metrics/timeout/panic kinds.
const failServer = pipeline.FailureKind("server")

// handlerDegradation builds the single-project degradation report a
// handler-path incident attaches to its 500 body.
func handlerDegradation(project string, kind pipeline.FailureKind, msg string) *pipeline.DegradationReport {
	return &pipeline.DegradationReport{
		Projects: 1,
		ByKind:   map[pipeline.FailureKind]int{kind: 1},
		Failures: []pipeline.ProjectFailure{{Project: project, Kind: kind, Error: msg}},
	}
}

// analysisError carries a failed run's degradation report to the error
// body.
type analysisError struct {
	err error
	rep *pipeline.DegradationReport
}

func (e *analysisError) Error() string { return e.err.Error() }
func (e *analysisError) Unwrap() error { return e.err }

// analyze is the singleflight leader's body: acquire a worker slot,
// apply handler-path chaos, analyze incrementally against the persisted
// predecessor when possible (else run the full pipeline), and commit the
// result to the store and the live aggregates.
func (s *Server) analyze(ctx context.Context, repo *vcs.Repo, fingerprint string, wait bool) (v any, err error) {
	id := projectID(fingerprint)
	// Double-check the store under flight leadership: a caller that
	// missed the store, then became leader only after a previous leader
	// for the same content completed, must serve the stored result —
	// never a second analysis.
	if e, ok := s.renderStored(id); ok {
		return &submitOutcome{id: id, entry: e, state: "hit"}, nil
	}
	if wait {
		s.semWait.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.semWait.Add(-1)
		case <-ctx.Done():
			s.semWait.Add(-1)
			return nil, ctx.Err()
		}
	} else {
		select {
		case s.sem <- struct{}{}:
		default:
			return nil, errSaturated
		}
	}
	defer func() { <-s.sem }()

	// The handler-path fault site: errors and panics become attributed
	// 500s with a degradation report; delays stall cooperatively (they
	// respect the request deadline via ctx).
	defer func() {
		if r := recover(); r != nil {
			err = &analysisError{
				err: fmt.Errorf("analysis panicked: %v", r),
				rep: handlerDegradation(repo.Name, pipeline.FailPanic, fmt.Sprint(r)),
			}
		}
	}()
	switch s.cfg.Fault.At("server.submit", repo.Name) {
	case faultinject.KindErr:
		ferr := &faultinject.Error{Site: "server.submit", Key: repo.Name}
		return nil, &analysisError{err: ferr, rep: handlerDegradation(repo.Name, failServer, ferr.Error())}
	case faultinject.KindPanic:
		panic(fmt.Sprintf("faultinject: server.submit (%s)", repo.Name))
	case faultinject.KindDelay:
		s.cfg.Fault.Sleep(ctx)
	}

	if res, ok := s.tryExtend(repo, id); ok {
		if cerr := s.commit(repo, fingerprint, id, res); cerr != nil {
			return nil, cerr
		}
		return &submitOutcome{id: id, entry: s.renderResult(id, res), state: "incremental"}, nil
	}

	res, aerr := s.runFull(ctx, repo, fingerprint)
	if aerr != nil {
		return nil, aerr
	}
	if cerr := s.commit(repo, fingerprint, id, res); cerr != nil {
		return nil, cerr
	}
	return &submitOutcome{id: id, entry: s.renderResult(id, res), state: "miss"}, nil
}

// tryExtend attempts incremental re-analysis: if the store holds this
// project's previous version (result + source snapshot) and the new
// history provably extends it, only the suffix is parsed and diffed. A
// nil return on any decode or precondition failure degrades silently to
// the full pipeline — incremental analysis is an optimization, never a
// correctness dependency.
func (s *Server) tryExtend(next *vcs.Repo, nextID string) (*pipeline.CachedResult, bool) {
	prevID, ok := s.store.LatestID(next.Name)
	if !ok || prevID == nextID {
		return nil, false
	}
	prevData, _, ok := s.store.Get(prevID)
	if !ok {
		return nil, false
	}
	prevRes, err := pipeline.DecodeResult(prevData)
	if err != nil {
		return nil, false
	}
	srcBytes, ok := s.store.Source(prevID)
	if !ok {
		return nil, false
	}
	prevRepo, err := pipeline.DecodeRepo(srcBytes)
	if err != nil {
		return nil, false
	}

	s.incrStage.Enter()
	begin := time.Now()
	res, ok := pipeline.ExtendResult(prevRes, prevRepo, next)
	busy := time.Since(begin)
	s.incrStage.Exit()
	s.incrStage.Observe(0, busy, !ok)
	if !ok {
		return nil, false
	}
	s.incrementals.Add(1)
	return res, true
}

// runFull executes the staged pipeline for one repo under the
// "analyze.exec" stage.
func (s *Server) runFull(ctx context.Context, repo *vcs.Repo, fingerprint string) (*pipeline.CachedResult, error) {
	s.execStage.Enter()
	begin := time.Now()
	res, stats, aerr := pipeline.AnalyzeRepo(ctx, repo, pipeline.Options{
		CacheDir:  s.cfg.CacheDir,
		Scheme:    s.cfg.Scheme,
		Fault:     s.cfg.Fault,
		Telemetry: s.tel,
		Shards:    s.cfg.AnalysisShards,
		Dialect:   s.cfg.Dialect,
	})
	busy := time.Since(begin)
	s.execStage.Exit()
	s.execStage.Observe(0, busy, aerr != nil)
	s.analyses.Add(1)
	if aerr != nil {
		return nil, &analysisError{err: aerr, rep: stats.Degradation}
	}
	return &pipeline.CachedResult{
		Fingerprint: fingerprint,
		Project:     repo.Name,
		History:     res.History,
		Measures:    res.Measures,
	}, nil
}

// commit persists one analyzed submission — result and source snapshot —
// and folds it into the live aggregates, invalidating the superseded
// version. An ordinary store flush error is not a request failure: the
// result still serves from the hot tier and telemetry records the
// incident. Read-only refusals and disk exhaustion ARE failures — the
// write did not land durably, so acking it would promise durability the
// store cannot deliver; the caller answers 503 and the client retries
// once space recovers.
func (s *Server) commit(repo *vcs.Repo, fingerprint, id string, res *pipeline.CachedResult) error {
	prevID, err := s.store.Put(store.Entry{
		ID:          id,
		Name:        repo.Name,
		Fingerprint: fingerprint,
		Source:      pipeline.EncodeRepo(repo),
		Result:      pipeline.EncodeResult(res),
	})
	if errors.Is(err, store.ErrReadOnly) || store.IsDiskFull(err) {
		return err
	}
	s.aggPut(id, repo.Name, assignedPattern(res.Measures, s.scheme), prevID)
	return nil
}

// aggPut updates the live aggregates: the superseded entry leaves, the
// new one joins — but only while it is still the name's live version
// (concurrent overwrites of one project linearize on the store, so the
// check keeps the aggregates convergent regardless of commit order), and
// never for corpus-owned IDs (the corpus contribution is immutable).
func (s *Server) aggPut(id, name string, pat core.Pattern, prevID string) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	changed := false
	if prevID != "" {
		if old, ok := s.agg[prevID]; ok {
			delete(s.agg, prevID)
			s.aggCounts[old.pat]--
			changed = true
		}
	}
	live, ok := s.store.LatestID(name)
	_, corpusOwned := s.index.Lookup(id)
	if ok && live == id && !corpusOwned {
		if old, exists := s.agg[id]; exists {
			s.aggCounts[old.pat]--
		}
		s.agg[id] = aggEntry{name: name, pat: pat}
		s.aggCounts[pat]++
		changed = true
	}
	if changed {
		s.aggEpoch++
	}
}

// writeSubmitError maps an analysis failure to its status code and body.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errSaturated) {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, errSaturated.Error(), nil)
		return
	}
	if errors.Is(err, store.ErrReadOnly) || store.IsDiskFull(err) {
		// The store flipped read-only mid-request (the endpoint gate passed
		// before the flip): the write did not land, so the client must
		// retry — same contract as being gated up front.
		s.writeReadOnly(w)
		return
	}
	var ae *analysisError
	if errors.As(err, &ae) {
		status := http.StatusInternalServerError
		if errors.Is(ae.err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, ae.err.Error(), ae.rep)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, err.Error(), nil)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error(), nil)
}

// serveRendered writes one pre-rendered JSON body with its strong ETag
// in a single Write. conditional enables the If-None-Match tier (GETs):
// a match answers 304 Not Modified with zero body bytes, the ETag header
// still present so caches can refresh their metadata.
func (s *Server) serveRendered(w http.ResponseWriter, r *http.Request, e renderEntry, state string, conditional bool) {
	h := w.Header()
	h.Set("X-Cache", state)
	h.Set("ETag", e.etag)
	if conditional && ifNoneMatchSatisfied(r.Header.Get("If-None-Match"), e.etag) {
		s.tel.RenderNotModified()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	w.Write(e.body)
}

// renderStored renders id's live stored result into a cache entry under
// the epoch protocol: snapshot the epoch, read the store, render, insert
// only if no invalidation intervened. ok=false when the store has no
// readable result for id.
func (s *Server) renderStored(id string) (renderEntry, bool) {
	epoch := s.render.epochOf(id)
	data, _, ok := s.store.Get(id)
	if !ok {
		return renderEntry{}, false
	}
	res, err := pipeline.DecodeResult(data)
	if err != nil {
		// An undecodable store entry is impossible short of memory
		// corruption; treat it as a miss and let the caller recompute.
		return renderEntry{}, false
	}
	e := buildRenderEntry(id, res.Project, res.History, res.Measures, s.scheme, false)
	s.render.put(id, epoch, e)
	return e, true
}

// renderStoredFlight is renderStored with concurrent first renders of
// the same id collapsed onto one leader.
func (s *Server) renderStoredFlight(id string) (renderEntry, bool) {
	type outcome struct {
		e  renderEntry
		ok bool
	}
	val, _, _ := s.flight.Do("render:"+id, func() (any, error) {
		e, ok := s.renderStored(id)
		return outcome{e, ok}, nil
	})
	o := val.(outcome)
	return o.e, o.ok
}

// renderResult renders a result the caller just committed (analysis or
// re-analysis write-back). The epoch snapshot happens after that commit,
// so the insert is rejected if any later mutation raced us; the liveness
// re-check keeps a fully completed DELETE in the gap from being shadowed
// by a resurrected body. The entry is served to the caller either way.
func (s *Server) renderResult(id string, res *pipeline.CachedResult) renderEntry {
	epoch := s.render.epochOf(id)
	e := buildRenderEntry(id, res.Project, res.History, res.Measures, s.scheme, false)
	if live, ok := s.store.LatestID(res.Project); ok && live == id {
		s.render.put(id, epoch, e)
	}
	return e
}

// renderCorpus renders an immutable corpus project's body. Reached only
// after the store paths missed; a submission of the same content racing
// in commits under the same ID (the fingerprint covers the name) with
// byte-identical rendering, and its commit invalidation evicts this
// entry so the store-backed state takes over.
func (s *Server) renderCorpus(id string, p *corpus.Project) renderEntry {
	epoch := s.render.epochOf(id)
	e := buildRenderEntry(id, p.Name, p.History, p.Measures, s.scheme, true)
	s.render.put(id, epoch, e)
	return e
}

// handleProject is GET /v1/projects/{id}: the rendered-body cache first
// (one Write, no decode, no marshal), then the result store (any
// previously submitted history, hot or disk tier), then on-demand
// re-analysis from the persisted source snapshot (an evicted or
// quarantined result is recomputable, not lost), then the corpus index
// (preloaded projects), else 404. Responses are byte-identical to the
// submit response for the same content, carry a strong ETag, and answer
// If-None-Match with a zero-body 304.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if e, ok := s.render.get(id); ok {
		state := "hit"
		if e.corpus {
			state = "corpus"
		}
		s.serveRendered(w, r, e, state, true)
		return
	}
	if e, ok := s.renderStoredFlight(id); ok {
		s.serveRendered(w, r, e, "hit", true)
		return
	}
	if res, ok, err := s.reanalyze(r.Context(), id); err != nil {
		s.writeSubmitError(w, err)
		return
	} else if ok {
		s.serveRendered(w, r, s.renderResult(id, res), "reanalyzed", true)
		return
	}
	if p, ok := s.index.Lookup(id); ok && p.Analyzed {
		s.serveRendered(w, r, s.renderCorpus(id, p), "corpus", true)
		return
	}
	writeError(w, http.StatusNotFound, "unknown project id "+id, nil)
}

// reanalyze recomputes a live entry whose result is currently
// unreadable, from its persisted source snapshot, writing the result
// back to the store. Returns ok=false when the store has no source for
// id (the caller falls through to the corpus / 404).
func (s *Server) reanalyze(ctx context.Context, id string) (*pipeline.CachedResult, bool, error) {
	srcBytes, ok := s.store.Source(id)
	if !ok {
		return nil, false, nil
	}
	val, err, _ := s.flight.Do("reanalyze:"+id, func() (any, error) {
		// The result may have reappeared while we waited for leadership.
		if data, _, ok := s.store.Get(id); ok {
			if res, derr := pipeline.DecodeResult(data); derr == nil {
				return res, nil
			}
		}
		repo, derr := pipeline.DecodeRepo(srcBytes)
		if derr != nil {
			return nil, fmt.Errorf("server: stored snapshot for %s: %w", id, derr)
		}
		s.semWait.Add(1)
		select {
		case s.sem <- struct{}{}:
			s.semWait.Add(-1)
		case <-ctx.Done():
			s.semWait.Add(-1)
			return nil, ctx.Err()
		}
		defer func() { <-s.sem }()
		res, aerr := s.runFull(ctx, repo, pipeline.FingerprintDialect(repo, s.cfg.Dialect))
		if aerr != nil {
			return nil, aerr
		}
		s.tel.StoreReanalysis()
		if perr := s.store.PutResult(id, pipeline.EncodeResult(res)); perr == nil {
			s.aggPut(id, repo.Name, assignedPattern(res.Measures, s.scheme), "")
		}
		return res, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*pipeline.CachedResult), true, nil
}

// deleteWire is the DELETE /v1/projects/{id} success body.
type deleteWire struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Status        string `json:"status"`
}

// handleDelete is DELETE /v1/projects/{id}: remove a submitted project
// from the store (tombstoned on disk, gone from every tier and the
// aggregates). Corpus projects are immutable — 403.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.store.ReadOnly() {
		s.writeReadOnly(w)
		return
	}
	id := r.PathValue("id")
	if _, ok := s.index.Lookup(id); ok {
		writeError(w, http.StatusForbidden, "corpus projects are immutable", nil)
		return
	}
	deleted, derr := s.store.Delete(id)
	if errors.Is(derr, store.ErrReadOnly) {
		s.writeReadOnly(w)
		return
	}
	if !deleted {
		writeError(w, http.StatusNotFound, "unknown project id "+id, nil)
		return
	}
	s.aggMu.Lock()
	if old, ok := s.agg[id]; ok {
		delete(s.agg, id)
		s.aggCounts[old.pat]--
		s.aggEpoch++
	}
	s.aggMu.Unlock()
	writeJSON(w, http.StatusOK, deleteWire{SchemaVersion: APISchemaVersion, ID: id, Status: "deleted"})
}

// aggMembers snapshots the live store-backed aggregate membership.
func (s *Server) aggMembers() []member {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	out := make([]member, 0, len(s.agg))
	for id, e := range s.agg {
		out = append(out, member{id: id, name: e.name, pat: e.pat})
	}
	return out
}

// statsRendered returns the pre-rendered stats document, rebuilding it
// from the incrementally maintained per-pattern counts only when the
// aggregate epoch moved since the last render.
func (s *Server) statsRendered() renderEntry {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if s.statsDoc.body == nil || s.statsDoc.epoch != s.aggEpoch {
		counts := make(map[core.Pattern]int, len(s.corpusCounts)+len(s.aggCounts))
		for pat, n := range s.corpusCounts {
			counts[pat] += n
		}
		for pat, n := range s.aggCounts {
			counts[pat] += n
		}
		doc := buildCorpusStatsFromCounts(s.corpus.Len()+len(s.agg), len(s.corpusMembers)+len(s.agg), counts)
		body := appendCorpusStatsWire(nil, &doc)
		s.statsDoc = renderedDoc{epoch: s.aggEpoch, body: body, etag: etagFor(body)}
	}
	return renderEntry{body: s.statsDoc.body, etag: s.statsDoc.etag}
}

// patternsRendered returns the pre-rendered patterns document, rebuilt
// from the live membership once per aggregate epoch.
func (s *Server) patternsRendered() renderEntry {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if s.patternsDoc.body == nil || s.patternsDoc.epoch != s.aggEpoch {
		members := make([]member, 0, len(s.corpusMembers)+len(s.agg))
		members = append(members, s.corpusMembers...)
		for id, e := range s.agg {
			members = append(members, member{id: id, name: e.name, pat: e.pat})
		}
		doc := buildCorpusPatterns(members)
		body := appendCorpusPatternsWire(nil, &doc)
		s.patternsDoc = renderedDoc{epoch: s.aggEpoch, body: body, etag: etagFor(body)}
	}
	return renderEntry{body: s.patternsDoc.body, etag: s.patternsDoc.etag}
}

// handleCorpusStats is GET /v1/corpus/stats: the corpus baseline plus
// every live submitted project, tallied by pattern — served from the
// epoch-versioned pre-rendered document.
func (s *Server) handleCorpusStats(w http.ResponseWriter, r *http.Request) {
	s.serveRendered(w, r, s.statsRendered(), "corpus", true)
}

// handleCorpusPatterns is GET /v1/corpus/patterns: pattern groups over
// the corpus baseline plus every live submitted project, served the same
// way.
func (s *Server) handleCorpusPatterns(w http.ResponseWriter, r *http.Request) {
	s.serveRendered(w, r, s.patternsRendered(), "corpus", true)
}

// handleMetrics is GET /metrics: the run's telemetry report JSON
// (schema_version'd; see internal/telemetry). The report's store block
// aggregates the result store's tiers; the cache block covers the
// pipeline's disk cache when configured.
// The report is rendered fully before any header is written, so an
// encoding failure surfaces as a clean 500 instead of a truncated 200.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.render.renderGauges()
	data, err := renderJSON(s.tel.Snapshot())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}
