package server

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// reflectIndent is the reference rendering the append encoders must
// reproduce exactly for document bodies: json.MarshalIndent(v, "", "  ")
// plus a trailing newline (renderJSON).
func reflectIndent(t testing.TB, v any) []byte {
	t.Helper()
	data, err := renderJSON(v)
	if err != nil {
		t.Fatalf("renderJSON: %v", err)
	}
	return data
}

// reflectCompact is the reference for NDJSON lines: json.Marshal plus a
// trailing newline.
func reflectCompact(t testing.TB, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return append(data, '\n')
}

func diffBytes(t *testing.T, name string, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		n := 0
		for n < len(got) && n < len(want) && got[n] == want[n] {
			n++
		}
		t.Errorf("%s: hand-rolled encoding diverges from encoding/json at byte %d\n--- got ---\n%s\n--- want ---\n%s", name, n, got, want)
	}
}

// nastyStrings exercises every escaping branch: HTML escapes, short
// escapes, the C0 \u00xx fallback, invalid UTF-8, U+2028/U+2029, and
// plain multibyte runes.
var nastyStrings = []string{
	"",
	"plain",
	`quote " backslash \ done`,
	"<script>&amp;</script>",
	"tab\tnewline\ncr\rbackspace\bformfeed\f",
	"nul\x00unit\x1fesc\x1b",
	"invalid \xff\xfe utf8 \xc3\x28 tail",
	"line para sep",
	"żółć 漢字 🚀 ☃",
	"mixed< \xffé&>",
}

// nastyFloats exercises the ES6 number formatting branches: f-form,
// e-form above 1e21 and below 1e-6, the e-0x exponent cleanup, zeros,
// and shortest-round-trip fractions.
var nastyFloats = []float64{
	0, 1, -1, 0.5, -0.25,
	1.0 / 3.0, 2.0 / 3.0, 5.0 / 11.0, 2.0 / 13.0,
	1e-6, 9.999999e-7, 1e-7, -3.25e-9,
	1e20, 1e21, 1.5e21, -2.5e300,
	math.MaxFloat64, math.SmallestNonzeroFloat64,
	0.1, 0.30000000000000004, 1234567.891,
}

func sampleProjectWire(s string, f float64, n int, b bool) projectWire {
	return projectWire{
		SchemaVersion: APISchemaVersion,
		ID:            s + "-id",
		Project:       s,
		Dialect:       "generic",
		Pattern:       s + "-pat",
		Family:        s + "-fam",
		Exact:         b,
		Measures: measuresWire{
			PUPMonths: n, BirthMonth: -n, BirthPct: f, BirthVolumePct: -f,
			TopBandMonth: n * 3, TopBandPct: f / 3, IntervalBirthToTopPct: f * f,
			IntervalTopToEndPct: 1 - f, HasVault: !b, ActiveGrowthMonths: n,
			ActivePctGrowth: f, ActivePctPUP: f / 7, TotalActivity: n * n,
			Expansion: n + 1, Maintenance: n - 1, TablesAtBirth: 2, AttrsAtBirth: 9,
			TablesAtEnd: 3, AttrsAtEnd: 14,
		},
		Labels: labelsWire{
			BirthVolume: s, BirthTiming: s + "\n", TopBandPoint: "<" + s + ">",
			IntervalBirthToTop: s, IntervalTopToEnd: s, ActivePctGrowth: s,
			ActivePctPUP: s, HasVault: b, ActiveGrowthMonths: n,
		},
		Timeline: timelineWire{Versions: n, ActiveVersions: n, Months: n * 2, ActiveMonths: n, LongestDormancy: n / 2},
	}
}

// TestEncodersMatchReflection pins byte-identity of every hand-rolled
// encoder against encoding/json over adversarial values.
func TestEncodersMatchReflection(t *testing.T) {
	for i, s := range nastyStrings {
		f := nastyFloats[i%len(nastyFloats)]
		w := sampleProjectWire(s, f, i*7-3, i%2 == 0)
		diffBytes(t, "projectWire", appendProjectWire(nil, &w), reflectIndent(t, w))
	}

	stats := corpusStatsWire{SchemaVersion: APISchemaVersion, Projects: 12, Analyzed: 11, Patterns: []patternCountWire{}}
	diffBytes(t, "corpusStatsWire/empty", appendCorpusStatsWire(nil, &stats), reflectIndent(t, stats))
	for _, s := range nastyStrings {
		stats.Patterns = append(stats.Patterns, patternCountWire{Pattern: s, Family: s + "&", Count: len(s) - 2})
	}
	diffBytes(t, "corpusStatsWire", appendCorpusStatsWire(nil, &stats), reflectIndent(t, stats))

	pats := corpusPatternsWire{SchemaVersion: APISchemaVersion, Groups: []patternGroupWire{}}
	diffBytes(t, "corpusPatternsWire/empty", appendCorpusPatternsWire(nil, &pats), reflectIndent(t, pats))
	for i, s := range nastyStrings {
		g := patternGroupWire{Pattern: s, Family: "f<" + s, Count: i, Projects: []projectRefWire{}}
		for j := 0; j <= i%3; j++ {
			g.Projects = append(g.Projects, projectRefWire{Name: s + "\t", ID: s})
		}
		if i%4 == 0 {
			g.Projects = []projectRefWire{}
		}
		pats.Groups = append(pats.Groups, g)
	}
	diffBytes(t, "corpusPatternsWire", appendCorpusPatternsWire(nil, &pats), reflectIndent(t, pats))

	for i, s := range nastyStrings {
		// Exercise every omitempty combination bit by bit.
		line := batchLineWire{Line: i - 4, Status: s}
		if i&1 != 0 {
			line.ID = s + "-id"
		}
		if i&2 != 0 {
			line.Project = s
		}
		if i&4 != 0 {
			line.Pattern = "<" + s
		}
		if i&8 != 0 {
			line.Cache = "hit"
		}
		if i&1 == 0 {
			line.Error = s + " "
		}
		diffBytes(t, "batchLineWire", appendBatchLineWire(nil, &line), reflectCompact(t, line))
	}

	sum := batchSummaryWire{Status: "summary", Lines: 12, OK: 9, Errors: 3}
	diffBytes(t, "batchSummaryWire", appendBatchSummaryWire(nil, &sum), reflectCompact(t, sum))
}

// TestAppendJSONFloat pins the ES6 number branches directly.
func TestAppendJSONFloat(t *testing.T) {
	for _, f := range nastyFloats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Errorf("float %v: got %s, want %s", f, got, want)
		}
	}
}

// TestAppendJSONString pins string escaping directly.
func TestAppendJSONString(t *testing.T) {
	cases := append([]string{}, nastyStrings...)
	for b := 0; b < 256; b++ {
		cases = append(cases, "x"+string(rune(b))+"y", string([]byte{byte(b)}))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("string %q: got %s, want %s", s, got, want)
		}
	}
}

// FuzzWireEncoders drives arbitrary strings, floats, ints and bools
// through the hand-rolled encoders and the reflection reference,
// requiring byte-identity. Non-finite floats are skipped — encoding/json
// rejects them and the wire measures are finite by construction.
func FuzzWireEncoders(f *testing.F) {
	f.Add("seed", 0.25, 7, true)
	f.Add("<&> \xff", -1.5e-9, -3, false)
	f.Add("", 1e22, 0, true)
	f.Fuzz(func(t *testing.T, s string, fl float64, n int, b bool) {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			t.Skip("non-finite floats are rejected by encoding/json")
		}
		w := sampleProjectWire(s, fl, n, b)
		gotW, err := renderJSON(w)
		if err != nil {
			t.Skip("reference encoder rejected the value")
		}
		if got := appendProjectWire(nil, &w); !bytes.Equal(got, gotW) {
			t.Errorf("projectWire(%q, %v, %d, %v) diverges\n--- got ---\n%s\n--- want ---\n%s", s, fl, n, b, got, gotW)
		}
		line := batchLineWire{Line: n, Status: s, Project: s, Error: s}
		if got, want := appendBatchLineWire(nil, &line), reflectCompact(t, line); !bytes.Equal(got, want) {
			t.Errorf("batchLineWire(%q, %d) diverges\n--- got ---\n%s\n--- want ---\n%s", s, n, got, want)
		}
	})
}
