package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"schemaevo/internal/core"
	"schemaevo/internal/store"
	"schemaevo/internal/synth"
)

// TestRenderCacheEpochProtocol pins the race-closing insert protocol: a
// put carrying an epoch older than the key's current one must be
// rejected, so a reader that raced a mutation can never resurrect the
// pre-mutation body.
func TestRenderCacheEpochProtocol(t *testing.T) {
	c := newRenderCache(1<<20, nil)
	entry := func(body string) renderEntry {
		b := []byte(body)
		return renderEntry{body: b, etag: etagFor(b)}
	}

	epoch := c.epochOf("k")
	if !c.put("k", epoch, entry("v1")) {
		t.Fatal("put with a fresh epoch was rejected")
	}
	if e, ok := c.get("k"); !ok || string(e.body) != "v1" {
		t.Fatalf("get after put: ok=%v body=%q", ok, e.body)
	}

	// Invalidation drops the entry and moves the epoch.
	c.invalidate("k")
	if _, ok := c.get("k"); ok {
		t.Fatal("get after invalidate still hit")
	}
	if c.put("k", epoch, entry("stale")) {
		t.Fatal("put with a pre-invalidation epoch was accepted")
	}
	if _, ok := c.get("k"); ok {
		t.Fatal("stale put populated the cache")
	}

	// The post-invalidation epoch admits a fresh render.
	epoch2 := c.epochOf("k")
	if epoch2 == epoch {
		t.Fatal("invalidate did not move the epoch")
	}
	if !c.put("k", epoch2, entry("v2")) {
		t.Fatal("put with the current epoch was rejected")
	}

	// A duplicate put under an unchanged epoch keeps the original bytes
	// (both renders are byte-identical by construction; keeping the first
	// avoids churning the accounting).
	first, _ := c.get("k")
	c.put("k", epoch2, entry("v2"))
	second, _ := c.get("k")
	if &first.body[0] != &second.body[0] {
		t.Fatal("duplicate put under one epoch replaced the entry")
	}
}

// TestRenderCacheEviction bounds the cache by bytes: inserting far more
// than the budget must evict LRU entries, never exceed the budget, and
// keep the most recently used entry resident.
func TestRenderCacheEviction(t *testing.T) {
	c := newRenderCache(1, nil) // clamps to the 4 KiB per-shard floor
	body := make([]byte, 1024)
	var last string
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%03d", i)
		c.put(key, c.epochOf(key), renderEntry{body: body, etag: etagFor(body)})
		last = key
	}
	budget := int64(renderShardCount * 4096)
	if got := c.bytesCached(); got > budget {
		t.Fatalf("bytesCached %d exceeds the %d budget", got, budget)
	}
	if _, ok := c.get(last); !ok {
		t.Fatal("most recently inserted entry was evicted")
	}
	misses := 0
	for i := 0; i < 200; i++ {
		if _, ok := c.get(fmt.Sprintf("key-%03d", i)); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("no entry was evicted despite 200 KiB over a 64 KiB budget")
	}
}

// TestETagFormat pins the strong-validator shape: a quoted 16-digit
// lowercase hex string, stable for equal bodies, different for
// different bodies.
func TestETagFormat(t *testing.T) {
	re := regexp.MustCompile(`^"[0-9a-f]{16}"$`)
	a, b := etagFor([]byte("alpha")), etagFor([]byte("beta"))
	if !re.MatchString(a) || !re.MatchString(b) {
		t.Fatalf("malformed etags %s / %s", a, b)
	}
	if a == b {
		t.Fatal("distinct bodies produced equal etags")
	}
	if a != etagFor([]byte("alpha")) {
		t.Fatal("equal bodies produced distinct etags")
	}
}

// TestIfNoneMatchSatisfied pins RFC 9110 §13.1.2 weak comparison over
// the header shapes clients actually send.
func TestIfNoneMatchSatisfied(t *testing.T) {
	const etag = `"0123456789abcdef"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{etag, true},
		{`W/` + etag, true},
		{`"other"`, false},
		{`"other", ` + etag, true},
		{`"a" , W/` + etag + ` ,"b"`, true},
		{"*", true},
		{`"0123456789abcdef`, false}, // unterminated, not an exact match
		{"0123456789abcdef", false},  // unquoted is a different opaque tag
	}
	for _, c := range cases {
		if got := ifNoneMatchSatisfied(c.header, etag); got != c.want {
			t.Errorf("ifNoneMatchSatisfied(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// discardWriter is the cheapest possible ResponseWriter: a reusable
// header map and a byte-counting sink, so AllocsPerRun measures the
// serving path rather than the recorder.
type discardWriter struct {
	h http.Header
	n int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *discardWriter) WriteHeader(int)             {}

func newAllocServer(t *testing.T) *Server {
	t.Helper()
	c, err := synth.RandomCorpus(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(context.Background(), Config{Corpus: c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCachedReadAllocs enforces the acceptance budget: a cached project
// GET performs at most 10 allocations (header sets and the
// Content-Length itoa), and a 304 strictly fewer.
func TestCachedReadAllocs(t *testing.T) {
	s := newAllocServer(t)
	id := s.corpusMembers[0].id

	req := httptest.NewRequest(http.MethodGet, "/v1/projects/"+id, nil)
	req.SetPathValue("id", id)
	w := &discardWriter{h: make(http.Header, 8)}
	s.handleProject(w, req) // warm the render cache
	if _, ok := s.render.get(id); !ok {
		t.Fatal("warm-up GET did not populate the render cache")
	}

	measure := func(r *http.Request) float64 {
		return testing.AllocsPerRun(200, func() {
			for k := range w.h {
				delete(w.h, k)
			}
			s.handleProject(w, r)
		})
	}
	if got := measure(req); got > 10 {
		t.Errorf("cached GET allocates %.1f per request, budget is 10", got)
	}

	etag, _ := s.render.get(id)
	cond := httptest.NewRequest(http.MethodGet, "/v1/projects/"+id, nil)
	cond.SetPathValue("id", id)
	cond.Header.Set("If-None-Match", etag.etag)
	if got := measure(cond); got > 10 {
		t.Errorf("conditional GET allocates %.1f per request, budget is 10", got)
	}
}

// TestAggregateDifferential drives the incremental aggregate tally
// through overwrites and re-puts and requires the rendered documents to
// stay byte-identical to a from-scratch rebuild over the live
// membership — the incremental path may never drift from the
// recomputed truth.
func TestAggregateDifferential(t *testing.T) {
	s := newAllocServer(t)

	check := func(step string) {
		t.Helper()
		members := append(append([]member{}, s.corpusMembers...), s.aggMembers()...)
		s.aggMu.Lock()
		live := len(s.agg)
		s.aggMu.Unlock()
		full := buildCorpusStats(s.corpus.Len()+live, members)
		wantStats := appendCorpusStatsWire(nil, &full)
		if got := s.statsRendered(); string(got.body) != string(wantStats) {
			t.Fatalf("%s: incremental stats drifted from rebuild\n--- got ---\n%s\n--- want ---\n%s", step, got.body, wantStats)
		}
		fullPats := buildCorpusPatterns(members)
		wantPats := appendCorpusPatternsWire(nil, &fullPats)
		if got := s.patternsRendered(); string(got.body) != string(wantPats) {
			t.Fatalf("%s: incremental patterns drifted from rebuild\n--- got ---\n%s\n--- want ---\n%s", step, got.body, wantPats)
		}
	}

	// put mirrors the commit path exactly: a store put (which supersedes
	// the name's previous version) followed by the aggregate update with
	// the store-reported previous ID.
	put := func(id, name string, pat core.Pattern) {
		t.Helper()
		prev, err := s.store.Put(store.Entry{
			ID: id, Name: name, Fingerprint: "fp-" + id,
			Source: []byte("src " + id), Result: []byte("res " + id),
		})
		if err != nil {
			t.Fatal(err)
		}
		s.aggPut(id, name, pat, prev)
	}

	check("baseline")
	pats := core.AllPatterns
	for i := 0; i < 8; i++ {
		put(fmt.Sprintf("id-%d", i), fmt.Sprintf("proj-%d", i), pats[i%len(pats)])
		check(fmt.Sprintf("insert %d", i))
	}
	// Overwrite: a new version supersedes the previous ID, possibly
	// changing the pattern bucket.
	put("id-0b", "proj-0", pats[3])
	check("overwrite with supersede")
	// Same-ID re-put with a different pattern (re-analysis refinement).
	put("id-1", "proj-1", pats[4])
	check("same-id re-put")
	// Deletion through the real handler.
	dreq := httptest.NewRequest(http.MethodDelete, "/v1/projects/id-2", nil)
	dreq.SetPathValue("id", "id-2")
	drec := httptest.NewRecorder()
	s.handleDelete(drec, dreq)
	if drec.Code != http.StatusOK {
		t.Fatalf("DELETE id-2: status %d, body %s", drec.Code, drec.Body.Bytes())
	}
	check("delete")

	// The cached document must be reused (same backing array) while the
	// epoch is unchanged, and replaced after a mutation.
	a, b := s.statsRendered(), s.statsRendered()
	if &a.body[0] != &b.body[0] {
		t.Fatal("unchanged epoch re-rendered the stats document")
	}
	put("id-9", "proj-9", pats[0])
	cafter := s.statsRendered()
	if len(a.body) == len(cafter.body) && &a.body[0] == &cafter.body[0] {
		t.Fatal("aggregate mutation did not refresh the stats document")
	}
	check("final")
}
