package server

// The health state machine summarizes the service's operational condition
// for probes and load balancers:
//
//	healthy  → everything durable and accepting work
//	degraded → serving, but impaired: stored projects await repair
//	           (quarantined results the scrubber has not healed yet) or
//	           the analysis workers are saturated
//	read-only→ the store refuses durable writes (disk budget exhausted,
//	           ENOSPC observed, or an operator flip); reads keep serving,
//	           write endpoints answer 503 + Retry-After
//	draining → lame-duck shutdown; every request is answered 503 by the
//	           drain gate before any handler runs
//
// GET /healthz is liveness plus the full picture (always 200 while the
// process serves; the body carries the state). GET /readyz is the routing
// signal: 200 for healthy/degraded, 503 for read-only/draining.

import (
	"context"
	"fmt"
	"net/http"

	"schemaevo/internal/store"
)

// HealthState is the service's operational condition, ordered by
// severity.
type HealthState int

const (
	StateHealthy HealthState = iota
	StateDegraded
	StateReadOnly
	StateDraining
)

func (st HealthState) String() string {
	switch st {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateReadOnly:
		return "read-only"
	case StateDraining:
		return "draining"
	}
	return fmt.Sprintf("HealthState(%d)", int(st))
}

// healthState computes the current state with its reasons and publishes
// the health gauge (0 healthy … 3 draining).
func (s *Server) healthState() (HealthState, []string) {
	st := StateHealthy
	var reasons []string
	switch {
	case s.draining.Load():
		st = StateDraining
		reasons = append(reasons, "drain in progress")
	case s.store.ReadOnly():
		st = StateReadOnly
		reasons = append(reasons, "store refuses writes (disk budget, ENOSPC, or operator flip)")
	default:
		if missing := s.store.StatsSnapshot().MissingResults; missing > 0 {
			st = StateDegraded
			reasons = append(reasons, fmt.Sprintf("%d stored projects await repair", missing))
		}
		if len(s.sem) == cap(s.sem) {
			st = StateDegraded
			reasons = append(reasons, "analysis workers saturated")
		}
	}
	s.tel.SetGauge("health.state", int64(st))
	return st, reasons
}

// HealthState returns the current state (recomputed, gauge published) —
// the programmatic twin of /healthz for embedding callers and tests.
func (s *Server) HealthState() HealthState {
	st, _ := s.healthState()
	return st
}

// healthzWire is the GET /healthz body. Projects/Stored keep their PR-4
// names (external tooling parses them); the health fields are additive.
type healthzWire struct {
	Status         string   `json:"status"`
	Projects       int      `json:"projects"`
	Stored         int      `json:"stored"`
	ReadOnly       bool     `json:"read_only"`
	PendingRepairs int      `json:"pending_repairs"`
	QueueDepth     int      `json:"queue_depth"`
	Reasons        []string `json:"reasons,omitempty"`
}

// handleHealthz is GET /healthz: liveness plus the full health picture.
// It answers 200 whenever the process serves at all — the state lives in
// the body; routing decisions belong to /readyz. (While draining, the
// drain gate answers 503 before this handler runs.)
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st, reasons := s.healthState()
	stats := s.store.StatsSnapshot()
	writeJSON(w, http.StatusOK, healthzWire{
		Status:         st.String(),
		Projects:       s.corpus.Len(),
		Stored:         s.store.Len(),
		ReadOnly:       stats.ReadOnly,
		PendingRepairs: stats.MissingResults,
		QueueDepth:     len(s.sem),
		Reasons:        reasons,
	})
}

// readyzWire is the GET /readyz body.
type readyzWire struct {
	Status  string   `json:"status"` // "ready" or "unavailable"
	State   string   `json:"state"`
	Reasons []string `json:"reasons,omitempty"`
}

// handleReadyz is GET /readyz, the routing signal: 200 while healthy or
// degraded (an impaired replica still serves correctly), 503 + Retry-
// After in read-only mode (a naive balancer must stop sending writes;
// deployments that can route reads separately should key off the
// /healthz state instead) — and 503 from the drain gate while draining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st, reasons := s.healthState()
	if st >= StateReadOnly {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusServiceUnavailable, readyzWire{Status: "unavailable", State: st.String(), Reasons: reasons})
		return
	}
	writeJSON(w, http.StatusOK, readyzWire{Status: "ready", State: st.String(), Reasons: reasons})
}

// scrubConfig assembles the store scrubber's configuration with the
// server's repair callback: re-analyze the project from its persisted
// source snapshot (shared with on-demand GET repair — singleflighted,
// semaphore-bounded) and write the result back.
func (s *Server) scrubConfig() store.ScrubConfig {
	return store.ScrubConfig{
		Interval:       s.cfg.ScrubInterval,
		Pace:           s.cfg.ScrubPace,
		DiskFloorBytes: s.cfg.DiskLowBytes,
		Repair: func(ctx context.Context, id string) error {
			_, ok, err := s.reanalyze(ctx, id)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("server: no source snapshot for %s", id)
			}
			return nil
		},
	}
}

// ScrubNow runs one synchronous scrub pass with the server's repair
// callback — the deterministic trigger tests and operators use; the
// background loop (Config.ScrubInterval) runs the same pass on a timer.
func (s *Server) ScrubNow(ctx context.Context) store.ScrubReport {
	return s.store.ScrubOnce(ctx, s.scrubConfig())
}

// writeReadOnly answers a write request while the store cannot accept
// durable writes: 503 + Retry-After — the same shape as the drain gate,
// so retrying clients converge once space recovers.
func (s *Server) writeReadOnly(w http.ResponseWriter) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	writeError(w, http.StatusServiceUnavailable, "store is in read-only mode", nil)
}
