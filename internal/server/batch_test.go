// Tests for the streaming NDJSON batch endpoint: per-line results in
// input order, error isolation, the oversized-line guard, and blocking
// backpressure.
package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/server"
)

// batchLine mirrors the per-line wire shape (and the summary, which
// shares the Status field).
type batchLine struct {
	Line    int    `json:"line"`
	Status  string `json:"status"`
	ID      string `json:"id"`
	Project string `json:"project"`
	Pattern string `json:"pattern"`
	Cache   string `json:"cache"`
	Error   string `json:"error"`
	Lines   int    `json:"lines"`
	OK      int    `json:"ok"`
	Errors  int    `json:"errors"`
}

// postBatch sends raw NDJSON and decodes every response line.
func postBatch(t *testing.T, baseURL, body string) (int, []batchLine) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/projects:batch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("unparseable batch line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

func ndjson(t *testing.T, repos ...any) string {
	t.Helper()
	var b strings.Builder
	for _, r := range repos {
		switch v := r.(type) {
		case string:
			b.WriteString(v)
		default:
			data, err := json.Marshal(v)
			if err != nil {
				t.Fatal(err)
			}
			b.Write(data)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestBatchMixedLines drives one batch through every per-line outcome:
// fresh analysis, duplicate (cache hit), version extension
// (incremental), malformed JSON, an invalid repo, and a blank line —
// asserting each response line lands on the right input line number and
// the summary tallies them.
func TestBatchMixedLines(t *testing.T) {
	srv, hs := newService(t, server.Config{})

	v4 := evolvingRepo("batch-project", 4)
	v5 := evolvingRepo("batch-project", 5)
	body := ndjson(t,
		v4,                                   // line 1: ok, miss
		"",                                   // line 2: blank, skipped
		v4,                                   // line 3: ok, hit
		`{"name": 42}`,                       // line 4: invalid JSON shape
		v5,                                   // line 5: ok, incremental
		`{"name":"no-commits","commits":[]}`, // line 6: fails validation
	)
	status, lines := postBatch(t, hs.URL, body)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", status)
	}
	if len(lines) != 6 {
		t.Fatalf("got %d response lines, want 5 results + summary:\n%+v", len(lines), lines)
	}

	type want struct {
		line   int
		status string
		cache  string
	}
	wants := []want{
		{1, "ok", "miss"},
		{3, "ok", "hit"},
		{4, "error", ""},
		{5, "ok", "incremental"},
		{6, "error", ""},
	}
	for i, w := range wants {
		got := lines[i]
		if got.Line != w.line || got.Status != w.status {
			t.Errorf("response %d = line %d %q, want line %d %q", i, got.Line, got.Status, w.line, w.status)
		}
		if w.status == "ok" {
			if got.Cache != w.cache {
				t.Errorf("line %d cache = %q, want %q", w.line, got.Cache, w.cache)
			}
			if got.ID == "" || got.Project != "batch-project" || got.Pattern == "" {
				t.Errorf("line %d missing payload fields: %+v", w.line, got)
			}
		} else if got.Error == "" {
			t.Errorf("line %d error line carries no message", w.line)
		}
	}
	sum := lines[len(lines)-1]
	if sum.Status != "summary" || sum.Lines != 6 || sum.OK != 3 || sum.Errors != 2 {
		t.Fatalf("summary = %+v, want lines=6 ok=3 errors=2", sum)
	}

	// The batch fed the same store as single submissions: v5 superseded
	// v4, one live project, one full analysis plus one incremental.
	if srv.Stored() != 1 {
		t.Fatalf("Stored = %d, want 1", srv.Stored())
	}
	if srv.Analyses() != 1 || srv.Incrementals() != 1 {
		t.Fatalf("analyses = %d/%d incremental, want 1/1", srv.Analyses(), srv.Incrementals())
	}
}

// TestBatchOversizedLine pins the scanner guard: a line over
// MaxLineBytes terminates the stream with a descriptive error line and
// a summary, not a hung connection or a silent truncation.
func TestBatchOversizedLine(t *testing.T) {
	_, hs := newService(t, server.Config{MaxLineBytes: 1 << 10})

	big := fmt.Sprintf(`{"name":"big","commits":[],"pad":%q}`, strings.Repeat("x", 4<<10))
	body := ndjson(t, evolvingRepo("small-project", 4), big)
	status, lines := postBatch(t, hs.URL, body)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", status)
	}
	last, sum := lines[len(lines)-2], lines[len(lines)-1]
	if last.Status != "error" || !strings.Contains(last.Error, "1024-byte limit") {
		t.Fatalf("oversized-line error = %+v, want the byte-limit message", last)
	}
	if sum.Status != "summary" || sum.OK != 1 || sum.Errors != 1 {
		t.Fatalf("summary = %+v, want ok=1 errors=1", sum)
	}
}

// TestBatchStreamOutlivesRequestTimeout pins the deadline contract of the
// streaming endpoint: RequestTimeout bounds each LINE's analysis, not the
// stream — a client feeding a large corpus slower than the request budget
// (the endpoint's stated use case, with intentionally blocking
// backpressure) must not see later lines fail with a deadline error.
func TestBatchStreamOutlivesRequestTimeout(t *testing.T) {
	_, hs := newService(t, server.Config{RequestTimeout: 150 * time.Millisecond})

	// Feed 4 lines with gaps that push the stream's total lifetime well
	// past the request timeout.
	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		for i := 0; i < 4; i++ {
			if i > 0 {
				time.Sleep(120 * time.Millisecond)
			}
			data, err := json.Marshal(evolvingRepo(fmt.Sprintf("slow-feed-%d", i), 4))
			if err != nil {
				pw.CloseWithError(err)
				return
			}
			if _, err := pw.Write(append(data, '\n')); err != nil {
				return
			}
		}
	}()

	resp, err := http.Post(hs.URL+"/v1/projects:batch", "application/x-ndjson", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("unparseable batch line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no response lines")
	}
	sum := lines[len(lines)-1]
	if sum.Status != "summary" || sum.OK != 4 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want ok=4 errors=0 (stream outliving RequestTimeout must not fail lines)", sum)
	}
}

// TestBatchBackpressureBlocks pins the batch endpoint's pacing
// contract: with a single worker slot, a batch of distinct projects
// still completes every line — lines queue for the semaphore instead of
// bouncing with 429 the way single submissions do.
func TestBatchBackpressureBlocks(t *testing.T) {
	srv, hs := newService(t, server.Config{MaxConcurrent: 1})

	var repos []any
	for i := 0; i < 8; i++ {
		repos = append(repos, evolvingRepo(fmt.Sprintf("paced-%02d", i), 4+i%5))
	}
	status, lines := postBatch(t, hs.URL, ndjson(t, repos...))
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	sum := lines[len(lines)-1]
	if sum.OK != 8 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want ok=8 errors=0", sum)
	}
	if srv.Stored() != 8 {
		t.Fatalf("Stored = %d, want 8", srv.Stored())
	}
}
