package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"schemaevo/internal/faultinject"
	"schemaevo/internal/server"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// delayInjector builds an injector that stalls every submission at the
// handler-path site for d — the deterministic way to hold an analysis
// in flight while other requests arrive.
func delayInjector(d time.Duration) *faultinject.Injector {
	return faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1,
		Kinds: []faultinject.Kind{faultinject.KindDelay},
		Sites: []string{"server.submit"},
		Delay: d,
	})
}

// TestSingleflightCollapsesDuplicates fires N concurrent identical
// submissions and asserts the pipeline executed exactly once — verified
// through the server's execution counter AND the telemetry report's
// analyze.exec stage — while every caller still received a full,
// identical 200 body.
func TestSingleflightCollapsesDuplicates(t *testing.T) {
	tel := telemetry.New()
	// The delay holds the leader in the handler long enough for all
	// followers to join its flight; the leader's post-completion store
	// double-check makes even a late straggler reuse the result.
	srv, hs := newService(t, server.Config{Telemetry: tel, Fault: delayInjector(300 * time.Millisecond)})

	const n = 16
	repo := submitRepo()
	payload, err := json.Marshal(repo)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg     sync.WaitGroup
		start  = make(chan struct{})
		mu     sync.Mutex
		bodies [][]byte
		codes  []int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Post(hs.URL+"/v1/projects", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			mu.Lock()
			bodies = append(bodies, buf.Bytes())
			codes = append(codes, resp.StatusCode)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, code, bodies[i])
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if got := srv.Analyses(); got != 1 {
		t.Fatalf("pipeline executions = %d, want exactly 1 for %d duplicate submissions", got, n)
	}
	// Cross-check through the public telemetry report.
	rep := tel.Snapshot()
	for _, st := range rep.Stages {
		if st.Name == "analyze.exec" && st.Jobs != 1 {
			t.Fatalf("telemetry analyze.exec jobs = %d, want 1", st.Jobs)
		}
		if st.Name == "http.submit" && st.Jobs != n {
			t.Fatalf("telemetry http.submit jobs = %d, want %d", st.Jobs, n)
		}
	}
}

// distinctRepo derives a content-distinct variant of the golden repo.
func distinctRepo(i int) *vcs.Repo {
	r := submitRepo()
	r.Name = fmt.Sprintf("distinct-project-%02d", i)
	commits := append([]vcs.Commit(nil), r.Commits...)
	files := map[string]string{}
	for k, v := range commits[0].Files {
		files[k] = v + fmt.Sprintf("\nCREATE TABLE extra_%02d (id INT);", i)
	}
	commits[0].Files = files
	r.Commits = commits
	return r
}

// TestDistinctSubmissionsAllExecute is the complement of the collapse
// test: N concurrent distinct submissions do not share results.
func TestDistinctSubmissionsAllExecute(t *testing.T) {
	srv, hs := newService(t, server.Config{MaxConcurrent: 32})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := post(t, hs.URL, distinctRepo(i))
			if status != http.StatusOK {
				t.Errorf("distinct submit %d: status %d, body %s", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	if got := srv.Analyses(); got != n {
		t.Fatalf("pipeline executions = %d, want %d", got, n)
	}
	// IDs are content-derived, so all n results are retrievable.
	for i := 0; i < n; i++ {
		_, _, body := post(t, hs.URL, distinctRepo(i))
		var wire struct {
			ID      string `json:"id"`
			Project string `json:"project"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		if wire.Project != fmt.Sprintf("distinct-project-%02d", i) {
			t.Fatalf("result %d resolved to %q", i, wire.Project)
		}
	}
	if got := srv.Analyses(); got != n {
		t.Fatalf("resubmits recomputed: executions = %d, want still %d", srv.Analyses(), n)
	}
}

// TestBackpressure429 saturates the single worker slot with a stalled
// submission and asserts the next distinct submission is rejected with
// 429 and a Retry-After hint, without waiting.
func TestBackpressure429(t *testing.T) {
	srv, hs := newService(t, server.Config{
		MaxConcurrent: 1,
		RetryAfter:    2 * time.Second,
		Fault:         delayInjector(3 * time.Second),
	})

	// Occupy the only worker slot with a stalled submission.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		status, _, body := post(t, hs.URL, distinctRepo(0))
		if status != http.StatusOK {
			t.Errorf("stalled submit: status %d, body %s", status, body)
		}
	}()

	// Wait until the stalled request is provably inside the handler,
	// then give it a beat to pass fingerprinting and acquire the slot
	// (sub-millisecond work; the 3s stall dwarfs the margin).
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled submission never entered the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	status, hdr, body := post(t, hs.URL, distinctRepo(1))
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429 (body %s)", status, body)
	}
	// The hint is adaptive (see TestRetryAfterAdaptiveBounds): with the
	// single worker slot occupied and no waiters, load is half of the 2×
	// capacity ramp, so the 2s base scales by 4.5 to 9s — and must stay
	// within the contract's [base, 8×base] envelope.
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After = %q, want an integer", hdr.Get("Retry-After"))
	}
	if secs < 2 || secs > 16 {
		t.Fatalf("Retry-After = %d, want within [2, 16] (base 2s, cap 8×)", secs)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("429 took %v; backpressure must reject immediately", took)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body not a structured error: %s", body)
	}
	<-firstDone
}

// TestRaceMixedTraffic hammers the service with overlapping duplicate
// submissions, distinct submissions, point GETs and corpus reads; run
// under -race it is the data-race canary for the whole handler surface.
func TestRaceMixedTraffic(t *testing.T) {
	_, hs := newService(t, server.Config{Corpus: testCorpus(t), MaxConcurrent: 8, LRUEntries: 4})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				switch j % 3 {
				case 0:
					post(t, hs.URL, submitRepo())
				case 1:
					post(t, hs.URL, distinctRepo(i))
				case 2:
					do(t, http.MethodGet, hs.URL+"/v1/corpus/stats", nil)
					do(t, http.MethodGet, hs.URL+"/metrics", nil)
				}
			}
		}(i)
	}
	wg.Wait()
}
