package server

import (
	"encoding/json"
	"net/http"
	"sort"

	"schemaevo/internal/core"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
)

// APISchemaVersion identifies the /v1 response layout. Every /v1 body
// carries it as schema_version; consumers should reject versions they do
// not understand. Bump it whenever a field is added, removed, or changes
// meaning — the golden API tests pin the byte-exact rendering. Version 2
// added the project body's "dialect" field.
const APISchemaVersion = 2

// measuresWire is the §3.2 measures in wire form: explicit JSON names in
// a pinned order, independent of the internal struct so internal renames
// never leak into the API.
type measuresWire struct {
	PUPMonths             int     `json:"pup_months"`
	BirthMonth            int     `json:"birth_month"`
	BirthPct              float64 `json:"birth_pct"`
	BirthVolumePct        float64 `json:"birth_volume_pct"`
	TopBandMonth          int     `json:"top_band_month"`
	TopBandPct            float64 `json:"top_band_pct"`
	IntervalBirthToTopPct float64 `json:"interval_birth_to_top_pct"`
	IntervalTopToEndPct   float64 `json:"interval_top_to_end_pct"`
	HasVault              bool    `json:"has_vault"`
	ActiveGrowthMonths    int     `json:"active_growth_months"`
	ActivePctGrowth       float64 `json:"active_pct_growth"`
	ActivePctPUP          float64 `json:"active_pct_pup"`
	TotalActivity         int     `json:"total_activity"`
	Expansion             int     `json:"expansion"`
	Maintenance           int     `json:"maintenance"`
	TablesAtBirth         int     `json:"tables_at_birth"`
	AttrsAtBirth          int     `json:"attrs_at_birth"`
	TablesAtEnd           int     `json:"tables_at_end"`
	AttrsAtEnd            int     `json:"attrs_at_end"`
}

// labelsWire is the Table 1 ordinal profile, rendered as strings.
type labelsWire struct {
	BirthVolume        string `json:"birth_volume"`
	BirthTiming        string `json:"birth_timing"`
	TopBandPoint       string `json:"top_band_point"`
	IntervalBirthToTop string `json:"interval_birth_to_top"`
	IntervalTopToEnd   string `json:"interval_top_to_end"`
	ActivePctGrowth    string `json:"active_pct_growth"`
	ActivePctPUP       string `json:"active_pct_pup"`
	HasVault           bool   `json:"has_vault"`
	ActiveGrowthMonths int    `json:"active_growth_months"`
}

// timelineWire summarizes the reconstructed history.
type timelineWire struct {
	Versions        int `json:"versions"`
	ActiveVersions  int `json:"active_versions"`
	Months          int `json:"months"`
	ActiveMonths    int `json:"active_months"`
	LongestDormancy int `json:"longest_dormancy"`
}

// projectWire is the body of POST /v1/projects and GET /v1/projects/{id}.
type projectWire struct {
	SchemaVersion int          `json:"schema_version"`
	ID            string       `json:"id"`
	Project       string       `json:"project"`
	Dialect       string       `json:"dialect"`
	Pattern       string       `json:"pattern"`
	Family        string       `json:"family"`
	Exact         bool         `json:"exact"`
	Measures      measuresWire `json:"measures"`
	Labels        labelsWire   `json:"labels"`
	Timeline      timelineWire `json:"timeline"`
}

// patternCountWire is one pattern's tally in GET /v1/corpus/stats.
type patternCountWire struct {
	Pattern string `json:"pattern"`
	Family  string `json:"family"`
	Count   int    `json:"count"`
}

// corpusStatsWire is the body of GET /v1/corpus/stats.
type corpusStatsWire struct {
	SchemaVersion int                `json:"schema_version"`
	Projects      int                `json:"projects"`
	Analyzed      int                `json:"analyzed"`
	Patterns      []patternCountWire `json:"patterns"`
}

// projectRefWire names one corpus project and its stable resource ID
// (usable with GET /v1/projects/{id}).
type projectRefWire struct {
	Name string `json:"name"`
	ID   string `json:"id"`
}

// patternGroupWire is one pattern's membership in GET /v1/corpus/patterns.
type patternGroupWire struct {
	Pattern  string           `json:"pattern"`
	Family   string           `json:"family"`
	Count    int              `json:"count"`
	Projects []projectRefWire `json:"projects"`
}

// corpusPatternsWire is the body of GET /v1/corpus/patterns.
type corpusPatternsWire struct {
	SchemaVersion int                `json:"schema_version"`
	Groups        []patternGroupWire `json:"groups"`
}

// errorWire is every non-2xx /v1 body: the message, and for failed
// analyses the pipeline's structured degradation report.
type errorWire struct {
	SchemaVersion int                         `json:"schema_version"`
	Error         string                      `json:"error"`
	Degradation   *pipeline.DegradationReport `json:"degradation,omitempty"`
}

// buildProjectWire derives the wire form of one analyzed project. The
// rendering is a pure function of (id, project, history, measures), so
// byte-identical inputs — e.g. a result decoded from the LRU store vs one
// freshly computed — produce byte-identical bodies.
func buildProjectWire(id, project string, h *history.History, m metrics.Measures, scheme quantize.Scheme) projectWire {
	var labels quantize.Labels
	pattern, exact := core.Unclassified, false
	if m.HasSchema {
		labels = quantize.Compute(m, scheme)
		pattern = core.Classify(labels)
		exact = pattern != core.Unclassified
		if !exact {
			pattern = core.ClassifyNearest(labels)
		}
	}
	sum := h.Summarize()
	return projectWire{
		SchemaVersion: APISchemaVersion,
		ID:            id,
		Project:       project,
		Dialect:       h.Dialect.String(),
		Pattern:       pattern.String(),
		Family:        core.FamilyOf(pattern).String(),
		Exact:         exact,
		Measures: measuresWire{
			PUPMonths:             m.PUPMonths,
			BirthMonth:            m.BirthMonth,
			BirthPct:              m.BirthPct,
			BirthVolumePct:        m.BirthVolumePct,
			TopBandMonth:          m.TopBandMonth,
			TopBandPct:            m.TopBandPct,
			IntervalBirthToTopPct: m.IntervalBirthToTopPct,
			IntervalTopToEndPct:   m.IntervalTopToEndPct,
			HasVault:              m.HasVault,
			ActiveGrowthMonths:    m.ActiveGrowthMonths,
			ActivePctGrowth:       m.ActivePctGrowth,
			ActivePctPUP:          m.ActivePctPUP,
			TotalActivity:         m.TotalActivity,
			Expansion:             m.Expansion,
			Maintenance:           m.Maintenance,
			TablesAtBirth:         m.TablesAtBirth,
			AttrsAtBirth:          m.AttrsAtBirth,
			TablesAtEnd:           m.TablesAtEnd,
			AttrsAtEnd:            m.AttrsAtEnd,
		},
		Labels: labelsWire{
			BirthVolume:        labels.BirthVolume.String(),
			BirthTiming:        labels.BirthTiming.String(),
			TopBandPoint:       labels.TopBandPoint.String(),
			IntervalBirthToTop: labels.IntervalBirthToTop.String(),
			IntervalTopToEnd:   labels.IntervalTopToEnd.String(),
			ActivePctGrowth:    labels.ActivePctGrowth.String(),
			ActivePctPUP:       labels.ActivePctPUP.String(),
			HasVault:           labels.HasVault,
			ActiveGrowthMonths: labels.ActiveGrowthMonths,
		},
		Timeline: timelineWire{
			Versions:        sum.Versions,
			ActiveVersions:  sum.ActiveVersions,
			Months:          sum.Months,
			ActiveMonths:    sum.ActiveMonths,
			LongestDormancy: sum.LongestDormancy,
		},
	}
}

// member is one analyzed project's contribution to the aggregate
// endpoints: its stable ID, name, and assigned pattern. Both the
// immutable corpus baseline and the live store-backed set reduce to this
// shape, so the aggregate builders are order-independent pure functions.
type member struct {
	id, name string
	pat      core.Pattern
}

// assignedPattern derives the pattern a result counts under, mirroring
// buildProjectWire's classification exactly (definitional match first,
// else the nearest pattern) so a project's aggregate bucket always
// matches its wire body.
func assignedPattern(m metrics.Measures, scheme quantize.Scheme) core.Pattern {
	if !m.HasSchema {
		return core.Unclassified
	}
	labels := quantize.Compute(m, scheme)
	pat := core.Classify(labels)
	if pat == core.Unclassified {
		pat = core.ClassifyNearest(labels)
	}
	return pat
}

// buildCorpusStats tallies members by assigned pattern in the paper's
// presentation order (patterns with no members are included, so the
// document shape is corpus-independent). projects is the total project
// count including any unanalyzed corpus entries.
func buildCorpusStats(projects int, members []member) corpusStatsWire {
	counts := map[core.Pattern]int{}
	for _, m := range members {
		counts[m.pat]++
	}
	return buildCorpusStatsFromCounts(projects, len(members), counts)
}

// buildCorpusStatsFromCounts is buildCorpusStats over an already
// maintained per-pattern tally — the incremental aggregate path, which
// never rescans the membership. The differential aggregate test pins
// both constructions to identical documents.
func buildCorpusStatsFromCounts(projects, analyzed int, counts map[core.Pattern]int) corpusStatsWire {
	out := corpusStatsWire{
		SchemaVersion: APISchemaVersion,
		Projects:      projects,
		Analyzed:      analyzed,
		Patterns:      []patternCountWire{},
	}
	for _, pat := range core.AllPatterns {
		out.Patterns = append(out.Patterns, patternCountWire{
			Pattern: pat.String(),
			Family:  core.FamilyOf(pat).String(),
			Count:   counts[pat],
		})
	}
	if n := counts[core.Unclassified]; n > 0 {
		out.Patterns = append(out.Patterns, patternCountWire{
			Pattern: core.Unclassified.String(),
			Family:  core.FamilyOf(core.Unclassified).String(),
			Count:   n,
		})
	}
	return out
}

// buildCorpusPatterns groups members by assigned pattern, sorted by name
// within each group — a deterministic rendering however the membership
// accumulated.
func buildCorpusPatterns(members []member) corpusPatternsWire {
	out := corpusPatternsWire{SchemaVersion: APISchemaVersion, Groups: []patternGroupWire{}}
	grouped := map[core.Pattern][]projectRefWire{}
	for _, m := range members {
		grouped[m.pat] = append(grouped[m.pat], projectRefWire{Name: m.name, ID: m.id})
	}
	emit := func(pat core.Pattern) {
		refs := grouped[pat]
		sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
		if refs == nil {
			refs = []projectRefWire{}
		}
		out.Groups = append(out.Groups, patternGroupWire{
			Pattern:  pat.String(),
			Family:   core.FamilyOf(pat).String(),
			Count:    len(refs),
			Projects: refs,
		})
	}
	for _, pat := range core.AllPatterns {
		emit(pat)
	}
	if len(grouped[core.Unclassified]) > 0 {
		emit(core.Unclassified)
	}
	return out
}

// buildRenderEntry renders one project's wire body through the
// append-based encoder into an immutable cache entry: the exact bytes
// json.MarshalIndent would produce (plus trailing newline), the strong
// ETag over them, and the summary fields the batch stream needs.
func buildRenderEntry(id, project string, h *history.History, m metrics.Measures, scheme quantize.Scheme, corpusOwned bool) renderEntry {
	wire := buildProjectWire(id, project, h, m, scheme)
	body := appendProjectWire(make([]byte, 0, 1536), &wire)
	return renderEntry{
		body:    body,
		etag:    etagFor(body),
		project: wire.Project,
		pattern: wire.Pattern,
		corpus:  corpusOwned,
	}
}

// renderJSON is the byte-stable rendering every endpoint uses: indented
// JSON with a trailing newline (struct field order pins key order;
// MarshalIndent output is deterministic for identical values).
func renderJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeJSON renders v and writes it with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := renderJSON(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// writeError renders a non-2xx body.
func writeError(w http.ResponseWriter, status int, msg string, rep *pipeline.DegradationReport) {
	writeJSON(w, status, errorWire{SchemaVersion: APISchemaVersion, Error: msg, Degradation: rep})
}
