// Chaos and shutdown tests: deterministic fault injection on the
// handler path and the pipeline underneath it, plus the graceful-drain
// contract. The core invariant mirrors the pipeline chaos suite's: a
// fault becomes an attributed, structured response — never a hung
// request, never a crashed process.
package server_test

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"schemaevo/internal/faultinject"
	"schemaevo/internal/server"
)

// siteInjector fires the given kind at every key of one site.
func siteInjector(site string, kind faultinject.Kind) *faultinject.Injector {
	return faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1,
		Kinds: []faultinject.Kind{kind},
		Sites: []string{site},
	})
}

// degradationBody decodes a 500 body and returns its report fields.
func degradationBody(t *testing.T, body []byte) (errMsg string, byKind map[string]int) {
	t.Helper()
	var wire struct {
		Error       string `json:"error"`
		Degradation *struct {
			ByKind   map[string]int `json:"by_kind"`
			Failures []struct {
				Project string `json:"project"`
				Kind    string `json:"kind"`
				Error   string `json:"error"`
			} `json:"failures"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("500 body is not structured JSON: %v\n%s", err, body)
	}
	if wire.Error == "" {
		t.Fatalf("500 body carries no error message: %s", body)
	}
	if wire.Degradation == nil {
		t.Fatalf("500 body carries no degradation report: %s", body)
	}
	if len(wire.Degradation.Failures) == 0 {
		t.Fatalf("degradation report lists no failures: %s", body)
	}
	return wire.Error, wire.Degradation.ByKind
}

// TestChaosPipelineFailure injects an I/O fault at the pipeline's parse
// site: the submission must come back as a prompt 500 whose body carries
// the pipeline's DegradationReport with the parse taxonomy — never a
// hung request.
func TestChaosPipelineFailure(t *testing.T) {
	_, hs := newService(t, server.Config{
		RequestTimeout: 10 * time.Second,
		Fault:          siteInjector("pipeline.parse", faultinject.KindErr),
	})
	start := time.Now()
	status, _, body := post(t, hs.URL, submitRepo())
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("faulted submission took %v; must fail promptly", took)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", status, body)
	}
	_, byKind := degradationBody(t, body)
	if byKind["parse"] < 1 {
		t.Fatalf("degradation by_kind lacks parse: %v", byKind)
	}
}

// TestChaosHandlerError injects an I/O fault at the handler-path site
// itself (server.submit): attributed 500 with the "server" taxonomy.
func TestChaosHandlerError(t *testing.T) {
	_, hs := newService(t, server.Config{Fault: siteInjector("server.submit", faultinject.KindErr)})
	status, _, body := post(t, hs.URL, submitRepo())
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", status, body)
	}
	_, byKind := degradationBody(t, body)
	if byKind["server"] < 1 {
		t.Fatalf("degradation by_kind lacks server: %v", byKind)
	}
}

// TestChaosHandlerPanic injects a panic at the handler-path site: the
// recover boundary converts it to an attributed 500 (panic taxonomy)
// and the server stays up and serves the same content afterwards.
func TestChaosHandlerPanic(t *testing.T) {
	fault := faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1,
		Kinds: []faultinject.Kind{faultinject.KindPanic},
		Sites: []string{"server.submit"},
	})
	_, hs := newService(t, server.Config{Fault: fault})
	status, _, body := post(t, hs.URL, submitRepo())
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", status, body)
	}
	_, byKind := degradationBody(t, body)
	if byKind["panic"] < 1 {
		t.Fatalf("degradation by_kind lacks panic: %v", byKind)
	}
	// The process survived; non-submit endpoints still serve.
	if status, _, _ := do(t, http.MethodGet, hs.URL+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", status)
	}
}

// TestChaosFaultsReachMetrics asserts fired faults surface in the
// /metrics report's fault tally (the injector observer is wired through
// the pipeline options).
func TestChaosFaultsReachMetrics(t *testing.T) {
	_, hs := newService(t, server.Config{Fault: siteInjector("pipeline.parse", faultinject.KindErr)})
	post(t, hs.URL, submitRepo())
	_, _, body := do(t, http.MethodGet, hs.URL+"/metrics", nil)
	var rep struct {
		Faults []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"faults"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Faults {
		if f.Name == "pipeline.parse/io-error" && f.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics fault tally lacks pipeline.parse/io-error: %+v", rep.Faults)
	}
}

// TestGracefulDrain proves the lame-duck contract: after BeginDrain
// (what SIGTERM triggers in cmd/schemaevod), an in-flight submission
// runs to completion with a full 200, while every new request — on a
// fresh connection — is answered 503 with a Retry-After hint.
func TestGracefulDrain(t *testing.T) {
	srv, hs := newService(t, server.Config{
		RetryAfter: time.Second,
		Fault:      delayInjector(1500 * time.Millisecond),
	})

	var (
		wg         sync.WaitGroup
		slowStatus int
		slowBody   []byte
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		slowStatus, _, slowBody = post(t, hs.URL, submitRepo())
	}()

	// Wait for the slow submission to be in flight, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow submission never entered the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	// New traffic is refused with 503 + Retry-After on every endpoint.
	for _, path := range []string{"/healthz", "/v1/corpus/stats", "/metrics"} {
		status, hdr, body := do(t, http.MethodGet, hs.URL+path, nil)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("GET %s during drain: status %d, want 503", path, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("GET %s during drain: no Retry-After header", path)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("drain 503 body not structured: %s", body)
		}
	}
	status, _, _ := post(t, hs.URL, distinctRepo(3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: status %d, want 503", status)
	}

	// The in-flight submission completes with a full result.
	wg.Wait()
	if slowStatus != http.StatusOK {
		t.Fatalf("in-flight submission during drain: status %d, body %s", slowStatus, slowBody)
	}
	var wire struct {
		Pattern string `json:"pattern"`
	}
	if err := json.Unmarshal(slowBody, &wire); err != nil || wire.Pattern == "" {
		t.Fatalf("in-flight submission returned an incomplete body: %s", slowBody)
	}
}

// TestChaosCorpusStartupUnaffected: the startup corpus analysis must be
// fault-free even under an aggressive injector — chaos applies to the
// serving path only, so a chaos-mode server still boots with a fully
// analyzed corpus.
func TestChaosCorpusStartupUnaffected(t *testing.T) {
	fault := faultinject.New(faultinject.Config{Seed: 7, Rate: 1})
	_, hs := newService(t, server.Config{Corpus: testCorpus(t), Fault: fault})
	status, _, body := do(t, http.MethodGet, hs.URL+"/v1/corpus/stats", nil)
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	var stats struct {
		Projects int `json:"projects"`
		Analyzed int `json:"analyzed"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Projects != 12 || stats.Analyzed != 12 {
		t.Fatalf("corpus = %d/%d analyzed, want 12/12", stats.Analyzed, stats.Projects)
	}
}
