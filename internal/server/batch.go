package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"schemaevo/internal/vcs"
)

// The streaming batch endpoint: POST /v1/projects:batch accepts
// newline-delimited JSON, one vcs.Repo per line, and streams back one
// NDJSON response line per input line as each analysis completes, then a
// summary line. A malformed or failed line is reported in place and does
// not stop the batch; per-line results flush immediately, so a client
// ingesting a large corpus sees progress in real time. Backpressure is
// blocking rather than 429: each line waits for a worker slot (bounded by
// the same semaphore as single submissions), which paces the producer by
// TCP flow control.

// batchDrainLimit bounds how many leftover request-body bytes the handler
// consumes after the scan stops early; past it the connection is poisoned
// for reuse instead (see the drain comment in handleBatch).
const batchDrainLimit = 1 << 20

// batchLineWire is one per-line response on the batch stream: an ok line
// carries the analysis summary, an error line the reason.
type batchLineWire struct {
	Line    int    `json:"line"`
	Status  string `json:"status"` // "ok" or "error"
	ID      string `json:"id,omitempty"`
	Project string `json:"project,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Cache   string `json:"cache,omitempty"`
	Error   string `json:"error,omitempty"`
}

// batchSummaryWire terminates the batch stream.
type batchSummaryWire struct {
	Status string `json:"status"` // always "summary"
	Lines  int    `json:"lines"`
	OK     int    `json:"ok"`
	Errors int    `json:"errors"`
}

// decodeBatchLine parses and validates one NDJSON input line. Factored
// out of the handler so the fuzzer can drive it directly.
func decodeBatchLine(line []byte) (*vcs.Repo, error) {
	var repo vcs.Repo
	if err := json.Unmarshal(line, &repo); err != nil {
		return nil, fmt.Errorf("invalid repository JSON: %w", err)
	}
	if err := repo.Validate(); err != nil {
		return nil, err
	}
	return &repo, nil
}

// handleBatch is POST /v1/projects:batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.store.ReadOnly() {
		// Refuse the whole stream up front — every line is a write. A
		// read-only flip mid-stream surfaces as per-line errors instead
		// (the submit path propagates the store's refusal).
		s.writeReadOnly(w)
		return
	}
	maxLine := s.cfg.MaxLineBytes
	if maxLine <= 0 {
		maxLine = 4 << 20
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// Without full duplex, HTTP/1.x discards the unread request body as
	// soon as the first response line is written — which would truncate
	// any batch larger than the connection's read-ahead buffer.
	// Best-effort: HTTP/2 is already full-duplex.
	_ = rc.EnableFullDuplex()
	flusher, _ := w.(http.Flusher)
	// Per-line rendering goes through the append-based encoder into a
	// pooled buffer — byte-identical to json.Marshal (the conformance
	// test pins it) with zero per-line allocation at steady state.
	buf := lineBufPool.Get().(*[]byte)
	defer func() {
		*buf = (*buf)[:0]
		lineBufPool.Put(buf)
	}()
	flush := func(line []byte) {
		w.Write(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emitLine := func(lw batchLineWire) {
		*buf = appendBatchLineWire((*buf)[:0], &lw)
		flush(*buf)
	}

	sc := bufio.NewScanner(r.Body)
	// The scanner's token cap is max(maxLine, cap(buf)), so the initial
	// buffer must not exceed the configured limit or it would override it.
	initial := 64 << 10
	if initial > maxLine {
		initial = maxLine
	}
	sc.Buffer(make([]byte, initial), maxLine)
	var lines, okCount, errCount int
	for sc.Scan() {
		lines++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		repo, err := decodeBatchLine(raw)
		if err != nil {
			errCount++
			emitLine(batchLineWire{Line: lines, Status: "error", Error: err.Error()})
			continue
		}
		// The stream as a whole has no deadline (its lifetime is
		// client-paced; see wrapStream) — the request budget applies to
		// each line's analysis, so a large corpus ingest with blocking
		// backpressure never times out mid-batch.
		lineCtx, cancel := context.WithTimeout(r.Context(), s.requestTimeout())
		out, state, err := s.submit(lineCtx, repo, true)
		cancel()
		if err != nil {
			errCount++
			emitLine(batchLineWire{Line: lines, Status: "error", Error: err.Error()})
			// A dead request context means the client is gone or the
			// server is shutting down — every further line would fail the
			// same way. A per-line timeout only fails its own line.
			if r.Context().Err() != nil {
				break
			}
			continue
		}
		okCount++
		// The summary fields ride on the rendered entry — no decode of the
		// stored result on warm lines.
		emitLine(batchLineWire{
			Line:    lines,
			Status:  "ok",
			ID:      out.id,
			Project: out.entry.project,
			Pattern: out.entry.pattern,
			Cache:   state,
		})
	}
	if err := sc.Err(); err != nil {
		lines++
		errCount++
		msg := err.Error()
		if errors.Is(err, bufio.ErrTooLong) {
			msg = fmt.Sprintf("line exceeds the %d-byte limit", maxLine)
		}
		emitLine(batchLineWire{Line: lines, Status: "error", Error: msg})
	}
	// In full-duplex mode the server no longer consumes leftover body
	// bytes after the handler returns; anything we leave unread would be
	// misparsed as the next request on this connection. Drain the
	// remainder (a no-op when the scan reached EOF) — but bounded in both
	// bytes and time, so a slow or hostile client cannot pin the handler
	// goroutine indefinitely. If the drain cannot reach EOF within the
	// bounds, poison further reads with an expired deadline: the server
	// then fails to reuse the connection and closes it instead of
	// misparsing the leftover.
	_ = rc.SetReadDeadline(time.Now().Add(s.requestTimeout()))
	if n, err := io.Copy(io.Discard, io.LimitReader(r.Body, batchDrainLimit)); err != nil || n == batchDrainLimit {
		_ = rc.SetReadDeadline(time.Now())
	}
	*buf = appendBatchSummaryWire((*buf)[:0], &batchSummaryWire{Status: "summary", Lines: lines, OK: okCount, Errors: errCount})
	flush(*buf)
}

// lineBufPool recycles batch NDJSON line buffers across requests.
var lineBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}
