package query

import (
	"testing"
	"time"

	"schemaevo/internal/diff"
	"schemaevo/internal/history"
	"schemaevo/internal/schema"
	"schemaevo/internal/vcs"
)

func buildSchema(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, notes := schema.ParseAndBuild(src)
	if len(notes) != 0 {
		t.Fatalf("notes: %v", notes)
	}
	return s
}

func TestOfDeltaTableDrop(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE users (id INT, name TEXT); CREATE TABLE logs (msg TEXT);`)
	new := buildSchema(t, `CREATE TABLE users (id INT, name TEXT);`)
	d := diff.Schemas(old, new)
	queries, err := ParseAll([]string{
		`SELECT msg FROM logs`,
		`SELECT name FROM users`,
	})
	if err != nil {
		t.Fatal(err)
	}
	impacts := OfDelta(d, queries)
	if len(impacts) != 1 {
		t.Fatalf("impacts: %v", impacts)
	}
	if impacts[0].Severity != Broken || impacts[0].Query.Name != "q0" {
		t.Errorf("impact: %v", impacts[0])
	}
}

func TestOfDeltaColumnEjection(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE users (id INT, nickname TEXT);`)
	new := buildSchema(t, `CREATE TABLE users (id INT);`)
	d := diff.Schemas(old, new)
	queries, _ := ParseAll([]string{
		`SELECT nickname FROM users`,
		`SELECT id FROM users`,
		`SELECT u.nickname FROM users u`,
	})
	impacts := OfDelta(d, queries)
	if len(impacts) != 2 {
		t.Fatalf("impacts: %v", impacts)
	}
	for _, im := range impacts {
		if im.Severity != Broken {
			t.Errorf("severity: %v", im)
		}
	}
}

func TestOfDeltaTypeChangeWarns(t *testing.T) {
	old := buildSchema(t, `CREATE TABLE m (v INT);`)
	new := buildSchema(t, `CREATE TABLE m (v TEXT);`)
	d := diff.Schemas(old, new)
	queries, _ := ParseAll([]string{`SELECT v FROM m`})
	impacts := OfDelta(d, queries)
	if len(impacts) != 1 || impacts[0].Severity != Warning {
		t.Fatalf("impacts: %v", impacts)
	}
	if impacts[0].String() == "" {
		t.Error("empty rendering")
	}
}

func TestValidate(t *testing.T) {
	s := buildSchema(t, `CREATE TABLE users (id INT, name TEXT);`)
	good := mustParse(t, `SELECT name FROM users WHERE id = 1`)
	if problems := Validate(good, s); len(problems) != 0 {
		t.Errorf("valid query flagged: %v", problems)
	}
	badTable := mustParse(t, `SELECT x FROM ghosts`)
	if problems := Validate(badTable, s); len(problems) == 0 {
		t.Error("unknown table not flagged")
	}
	badColumn := mustParse(t, `SELECT users.salary FROM users`)
	problems := Validate(badColumn, s)
	if len(problems) != 1 || problems[0] != "unknown column users.salary" {
		t.Errorf("problems: %v", problems)
	}
	unresolvable := mustParse(t, `SELECT salary FROM users`)
	if problems := Validate(unresolvable, s); len(problems) != 1 {
		t.Errorf("problems: %v", problems)
	}
}

func TestOverHistory(t *testing.T) {
	day := func(y int, m time.Month) time.Time {
		return time.Date(y, m, 10, 0, 0, 0, 0, time.UTC)
	}
	r := &vcs.Repo{Name: "app", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1), Files: map[string]string{
			"s.sql": "CREATE TABLE users (id INT, nickname TEXT); CREATE TABLE logs (msg TEXT);"}},
		{ID: "1", Time: day(2020, 6), Files: map[string]string{
			"s.sql": "CREATE TABLE users (id INT); CREATE TABLE logs (msg TEXT);"}},
		{ID: "2", Time: day(2021, 3), Files: map[string]string{
			"s.sql": "CREATE TABLE users (id INT);"}},
	}}
	h, err := history.FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := ParseAll([]string{
		`SELECT nickname FROM users`,
		`SELECT msg FROM logs`,
		`SELECT id FROM users`,
	})
	vis := OverHistory(h, queries)
	if len(vis) != 2 {
		t.Fatalf("version impacts: %v", vis)
	}
	if vis[0].Version != 1 || vis[0].Impacts[0].Query.Name != "q0" {
		t.Errorf("v1: %v", vis[0])
	}
	if vis[1].Version != 2 || vis[1].Impacts[0].Query.Name != "q1" {
		t.Errorf("v2: %v", vis[1])
	}
	if TotalBreakages(vis) != 2 {
		t.Errorf("breakages = %d", TotalBreakages(vis))
	}
}
