package query

import (
	"fmt"
	"sort"

	"schemaevo/internal/diff"
	"schemaevo/internal/history"
	"schemaevo/internal/schema"
)

// Severity grades how a schema change affects a query.
type Severity int

// Impact severities.
const (
	// Broken: the query references a table or column that no longer
	// exists.
	Broken Severity = iota
	// Warning: a referenced column changed its data type or key role;
	// the query still parses against the schema but its semantics may
	// have shifted.
	Warning
)

func (s Severity) String() string {
	if s == Broken {
		return "BROKEN"
	}
	return "WARNING"
}

// Impact is one query affected by one schema change.
type Impact struct {
	Query    *Query
	Severity Severity
	// Reason explains the finding ("table orders dropped", ...).
	Reason string
}

func (im Impact) String() string {
	return fmt.Sprintf("%s %s: %s", im.Severity, im.Query.Name, im.Reason)
}

// OfDelta reports which of the queries a schema delta affects. Each query
// appears at most once per severity, with the first triggering reason.
func OfDelta(d *diff.Delta, queries []*Query) []Impact {
	var out []Impact
	for _, q := range queries {
		if reason, hit := breakReason(d, q); hit {
			out = append(out, Impact{Query: q, Severity: Broken, Reason: reason})
			continue
		}
		if reason, hit := warnReason(d, q); hit {
			out = append(out, Impact{Query: q, Severity: Warning, Reason: reason})
		}
	}
	return out
}

func breakReason(d *diff.Delta, q *Query) (string, bool) {
	for _, table := range d.TablesDropped {
		if q.DependsOnTable(table) {
			return fmt.Sprintf("table %s dropped", table), true
		}
	}
	for _, c := range d.Changes {
		if c.Kind == diff.Ejected && q.DependsOnColumn(c.Table, c.Attr) {
			return fmt.Sprintf("column %s.%s removed", c.Table, c.Attr), true
		}
	}
	return "", false
}

func warnReason(d *diff.Delta, q *Query) (string, bool) {
	for _, c := range d.Changes {
		switch c.Kind {
		case diff.TypeChanged:
			if q.DependsOnColumn(c.Table, c.Attr) {
				return fmt.Sprintf("column %s.%s changed type", c.Table, c.Attr), true
			}
		case diff.KeyChanged:
			if q.DependsOnColumn(c.Table, c.Attr) {
				return fmt.Sprintf("column %s.%s changed key role", c.Table, c.Attr), true
			}
		}
	}
	return "", false
}

// Validate resolves a query against a schema version: every referenced
// table must exist, and every referenced column must exist in its table
// (unqualified references must resolve in at least one referenced table).
// It returns the unresolved references.
func Validate(q *Query, s *schema.Schema) []string {
	var problems []string
	for _, table := range q.Tables {
		if _, ok := s.Table(table); !ok {
			problems = append(problems, "unknown table "+table)
		}
	}
	for _, c := range q.Columns {
		if c.Table != "" {
			t, ok := s.Table(c.Table)
			if !ok {
				continue // already reported as unknown table
			}
			if _, ok := t.Column(c.Column); !ok {
				problems = append(problems, "unknown column "+c.String())
			}
			continue
		}
		found := false
		for _, table := range q.Tables {
			if t, ok := s.Table(table); ok {
				if _, ok := t.Column(c.Column); ok {
					found = true
					break
				}
			}
		}
		if !found {
			problems = append(problems, "unresolvable column "+c.Column)
		}
	}
	sort.Strings(problems)
	return problems
}

// VersionImpact is the impact of one schema version's delta on a query
// workload.
type VersionImpact struct {
	Version int
	Impacts []Impact
}

// OverHistory replays a schema history against a query workload and
// reports, per version, the queries that version's change set affects —
// the cost of schema evolution the paper's conclusions discuss.
func OverHistory(h *history.History, queries []*Query) []VersionImpact {
	var out []VersionImpact
	for _, v := range h.Versions {
		impacts := OfDelta(v.Delta, queries)
		if len(impacts) > 0 {
			out = append(out, VersionImpact{Version: v.Seq, Impacts: impacts})
		}
	}
	return out
}

// TotalBreakages counts Broken impacts across a history replay.
func TotalBreakages(vis []VersionImpact) int {
	n := 0
	for _, vi := range vis {
		for _, im := range vi.Impacts {
			if im.Severity == Broken {
				n++
			}
		}
	}
	return n
}
