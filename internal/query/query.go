// Package query provides light-weight analysis of SQL SELECT statements
// against evolving schemata. The paper's motivation (§1, §7) is that
// schema evolution "breaks the mapping to the surrounding code, thus
// incurring significant costs"; this package quantifies that: it extracts
// the tables and columns a query depends on, validates them against a
// schema version, and reports which queries a schema delta breaks.
package query

import (
	"fmt"
	"sort"
	"strings"

	"schemaevo/internal/sqlddl"
)

// ColumnRef is one column dependency of a query. Table is the resolved
// table name when the reference was qualified (directly or through an
// alias), or "" for unqualified references.
type ColumnRef struct {
	Table  string
	Column string
}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Query is the dependency footprint of one SELECT statement.
type Query struct {
	// Name is an optional caller-provided label (e.g. the source file).
	Name string
	// Raw is the original SQL text.
	Raw string
	// Tables are the referenced base tables, sorted and de-duplicated.
	Tables []string
	// Columns are the referenced columns, sorted and de-duplicated.
	Columns []ColumnRef
	// SelectStar reports a bare "SELECT *" or "t.*" projection; such a
	// query depends on every column of the starred tables.
	SelectStar bool
}

// DependsOnTable reports whether the query references the table.
func (q *Query) DependsOnTable(table string) bool {
	for _, t := range q.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// DependsOnColumn reports whether the query references the column. An
// unqualified reference matches the column in any of the query's tables.
func (q *Query) DependsOnColumn(table, column string) bool {
	for _, c := range q.Columns {
		if c.Column != column {
			continue
		}
		if c.Table == table || (c.Table == "" && q.DependsOnTable(table)) {
			return true
		}
	}
	return false
}

// sqlKeywords are identifiers that never denote a table or column in the
// scanned clauses.
var sqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true, "as": true,
	"join": true, "inner": true, "left": true, "right": true, "full": true,
	"outer": true, "cross": true, "on": true, "using": true, "and": true,
	"or": true, "not": true, "null": true, "is": true, "in": true,
	"exists": true, "between": true, "like": true, "group": true, "by": true,
	"having": true, "order": true, "asc": true, "desc": true, "limit": true,
	"offset": true, "union": true, "all": true, "case": true, "when": true,
	"then": true, "else": true, "end": true, "true": true, "false": true,
	"cast": true, "interval": true,
}

// Parse extracts the dependency footprint of a SELECT statement. It is a
// scanner, not a validator: structurally odd but lexically sane SQL still
// yields a useful footprint; a non-SELECT input is an error.
func Parse(sql string) (*Query, error) {
	toks := sqlddl.Tokenize(sql)
	if len(toks) == 0 || !toks[0].Match("select") {
		if len(toks) > 0 && toks[0].Match("with") {
			// CTEs: scan the whole statement; the footprint is the union.
		} else {
			return nil, fmt.Errorf("query: not a SELECT statement: %.40q", sql)
		}
	}
	q := &Query{Raw: sql}

	// Pass 1: table references and aliases from FROM/JOIN clauses.
	aliases := map[string]string{} // alias -> table
	tables := map[string]bool{}
	cteNames := map[string]bool{}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		// WITH name AS ( ... ): record CTE names so they are not counted
		// as base tables.
		if t.Match("with") || (t.Kind == sqlddl.Comma && len(cteNames) > 0 && i+2 < len(toks) && toks[i+2].Match("as")) {
			if i+1 < len(toks) && toks[i+1].IsIdent() {
				cteNames[identText(toks[i+1])] = true
			}
			continue
		}
		if !t.Match("from") && !t.Match("join") {
			continue
		}
		j := i + 1
		for j < len(toks) {
			// Subquery in table position: its own FROM is handled by the
			// outer scan; skip just the opening paren.
			if toks[j].Kind == sqlddl.LParen {
				break
			}
			if !toks[j].IsIdent() || sqlKeywords[strings.ToLower(toks[j].Text)] {
				break
			}
			name := identText(toks[j])
			// Schema-qualified: db.table
			if j+2 < len(toks) && toks[j+1].Kind == sqlddl.Dot && toks[j+2].IsIdent() {
				name = identText(toks[j+2])
				j += 2
			}
			if !cteNames[name] {
				tables[name] = true
			}
			j++
			// Optional alias: [AS] ident
			if j < len(toks) && toks[j].Match("as") {
				j++
			}
			if j < len(toks) && toks[j].IsIdent() && !sqlKeywords[strings.ToLower(toks[j].Text)] {
				aliases[identText(toks[j])] = name
				j++
			}
			// Comma-separated FROM list continues.
			if j < len(toks) && toks[j].Kind == sqlddl.Comma {
				j++
				continue
			}
			break
		}
	}

	resolve := func(name string) string {
		if base, ok := aliases[name]; ok {
			return base
		}
		return name
	}

	// Pass 2: column references.
	cols := map[ColumnRef]bool{}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == sqlddl.Op && t.Text == "*" {
			// A '*' right after SELECT or a comma or a dot is a projection
			// star, not multiplication, when it is followed by FROM/comma.
			if i+1 < len(toks) && (toks[i+1].Match("from") || toks[i+1].Kind == sqlddl.Comma) {
				q.SelectStar = true
			}
			continue
		}
		if !t.IsIdent() || sqlKeywords[strings.ToLower(t.Text)] {
			continue
		}
		name := identText(t)
		// Qualified reference: name.column or name.*
		if i+2 < len(toks) && toks[i+1].Kind == sqlddl.Dot {
			if toks[i+2].IsIdent() {
				base := resolve(name)
				if tables[base] {
					cols[ColumnRef{Table: base, Column: identText(toks[i+2])}] = true
				}
				i += 2
				continue
			}
			if toks[i+2].Kind == sqlddl.Op && toks[i+2].Text == "*" {
				q.SelectStar = true
				i += 2
				continue
			}
		}
		// Function call: name(...) — not a column.
		if i+1 < len(toks) && toks[i+1].Kind == sqlddl.LParen {
			continue
		}
		// Table names, aliases and CTE names in column position are
		// already accounted for.
		if tables[name] || aliases[name] != "" || cteNames[name] {
			continue
		}
		cols[ColumnRef{Column: name}] = true
	}

	for name := range tables {
		q.Tables = append(q.Tables, name)
	}
	sort.Strings(q.Tables)
	for c := range cols {
		q.Columns = append(q.Columns, c)
	}
	sort.Slice(q.Columns, func(i, j int) bool {
		if q.Columns[i].Table != q.Columns[j].Table {
			return q.Columns[i].Table < q.Columns[j].Table
		}
		return q.Columns[i].Column < q.Columns[j].Column
	})
	return q, nil
}

func identText(t sqlddl.Token) string {
	if t.Kind == sqlddl.QuotedIdent {
		return t.Text
	}
	return strings.ToLower(t.Text)
}

// ParseAll parses a batch of SELECT statements, naming them q0, q1, ...
// unless names are provided.
func ParseAll(sqls []string) ([]*Query, error) {
	out := make([]*Query, 0, len(sqls))
	for i, s := range sqls {
		q, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		q.Name = fmt.Sprintf("q%d", i)
		out = append(out, q)
	}
	return out, nil
}
