package query

import (
	"testing"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParse(t, `SELECT id, name FROM users WHERE age > 30 ORDER BY name`)
	if len(q.Tables) != 1 || q.Tables[0] != "users" {
		t.Errorf("tables: %v", q.Tables)
	}
	wantCols := []string{"age", "id", "name"}
	if len(q.Columns) != len(wantCols) {
		t.Fatalf("columns: %v", q.Columns)
	}
	for i, w := range wantCols {
		if q.Columns[i].Column != w || q.Columns[i].Table != "" {
			t.Errorf("column %d = %v, want %s", i, q.Columns[i], w)
		}
	}
	if q.SelectStar {
		t.Error("no star expected")
	}
}

func TestParseJoinsAndAliases(t *testing.T) {
	q := mustParse(t, `
		SELECT u.name, o.total
		FROM users AS u
		JOIN orders o ON o.user_id = u.id
		LEFT JOIN products p ON p.id = o.product_id
		WHERE u.active = true`)
	wantTables := []string{"orders", "products", "users"}
	if len(q.Tables) != 3 {
		t.Fatalf("tables: %v", q.Tables)
	}
	for i, w := range wantTables {
		if q.Tables[i] != w {
			t.Errorf("table %d = %s, want %s", i, q.Tables[i], w)
		}
	}
	if !q.DependsOnColumn("users", "name") || !q.DependsOnColumn("orders", "total") {
		t.Errorf("alias resolution failed: %v", q.Columns)
	}
	if !q.DependsOnColumn("orders", "user_id") || !q.DependsOnColumn("products", "id") {
		t.Errorf("join condition columns: %v", q.Columns)
	}
}

func TestParseSelectStar(t *testing.T) {
	q := mustParse(t, `SELECT * FROM logs`)
	if !q.SelectStar {
		t.Error("star not detected")
	}
	q2 := mustParse(t, `SELECT t.* FROM things t`)
	if !q2.SelectStar {
		t.Error("qualified star not detected")
	}
	// Multiplication is not a star projection.
	q3 := mustParse(t, `SELECT price * quantity FROM items`)
	if q3.SelectStar {
		t.Error("multiplication misread as star")
	}
}

func TestParseFunctionsNotColumns(t *testing.T) {
	q := mustParse(t, `SELECT count(id), max(score), now() FROM games`)
	for _, c := range q.Columns {
		if c.Column == "count" || c.Column == "max" || c.Column == "now" {
			t.Errorf("function misread as column: %v", c)
		}
	}
	if !q.DependsOnColumn("games", "id") || !q.DependsOnColumn("games", "score") {
		t.Errorf("function arguments lost: %v", q.Columns)
	}
}

func TestParseCommaFromList(t *testing.T) {
	q := mustParse(t, `SELECT a.x, b.y FROM first a, second b WHERE a.id = b.id`)
	if len(q.Tables) != 2 || q.Tables[0] != "first" || q.Tables[1] != "second" {
		t.Errorf("tables: %v", q.Tables)
	}
}

func TestParseSchemaQualifiedTable(t *testing.T) {
	q := mustParse(t, `SELECT id FROM public.users`)
	if len(q.Tables) != 1 || q.Tables[0] != "users" {
		t.Errorf("tables: %v", q.Tables)
	}
}

func TestParseCTE(t *testing.T) {
	q := mustParse(t, `WITH recent AS (SELECT id FROM orders WHERE ts > '2020')
		SELECT u.name FROM users u JOIN recent ON recent.id = u.id`)
	if q.DependsOnTable("recent") {
		t.Errorf("CTE counted as base table: %v", q.Tables)
	}
	if !q.DependsOnTable("orders") || !q.DependsOnTable("users") {
		t.Errorf("tables: %v", q.Tables)
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, `SELECT name FROM users WHERE id IN (SELECT user_id FROM orders)`)
	if !q.DependsOnTable("orders") || !q.DependsOnTable("users") {
		t.Errorf("tables: %v", q.Tables)
	}
}

func TestParseRejectsNonSelect(t *testing.T) {
	if _, err := Parse(`DELETE FROM users`); err == nil {
		t.Error("non-SELECT accepted")
	}
	if _, err := Parse(``); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParseAll(t *testing.T) {
	qs, err := ParseAll([]string{`SELECT a FROM t`, `SELECT b FROM u`})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Name != "q0" || qs[1].Name != "q1" {
		t.Errorf("%v", qs)
	}
	if _, err := ParseAll([]string{`SELECT a FROM t`, `UPDATE t SET a=1`}); err == nil {
		t.Error("bad batch accepted")
	}
}
