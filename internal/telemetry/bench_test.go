package telemetry

import (
	"testing"
	"time"
)

// The overhead contract (DESIGN.md §8): disabled telemetry — a nil
// collector and nil stage handles — must cost a single nil check per
// call, no atomics, no allocation. These benchmarks pin that floor; the
// CI smoke compares whole-pipeline wall time with telemetry off vs on.

func BenchmarkDisabledStageObserve(b *testing.B) {
	var s *Stage
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Enter()
		s.Observe(time.Microsecond, time.Microsecond, false)
		s.Exit()
	}
}

func BenchmarkDisabledCacheCounters(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.CacheHit(1024)
		c.CacheMiss()
		c.CacheWrite(1024)
	}
}

func BenchmarkDisabledRecordSpan(b *testing.B) {
	var c *Collector
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.RecordSpan("project", "parse", now, time.Microsecond, false)
	}
}

func BenchmarkEnabledStageObserve(b *testing.B) {
	s := New().Stage("parse")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Enter()
		s.Observe(time.Microsecond, time.Microsecond, false)
		s.Exit()
	}
}

func BenchmarkEnabledStageObserveParallel(b *testing.B) {
	s := New().Stage("parse")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Enter()
			s.Observe(time.Microsecond, time.Microsecond, false)
			s.Exit()
		}
	})
}
