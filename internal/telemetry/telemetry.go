// Package telemetry is the toolchain's zero-dependency observability
// layer: per-stage counters and duration histograms, queue-wait and
// worker-occupancy tracking, cache effectiveness counters, fault and
// degradation event tallies, and span-style per-project traces.
//
// The design contract is that disabled telemetry costs nothing on the hot
// path: a nil *Collector (and the nil *Stage handles it hands out) is a
// valid no-op — every method nil-checks its receiver and returns
// immediately, so instrumented code carries no conditional wiring and no
// allocation when observability is off. When enabled, the hot-path
// operations are single atomic adds (plus one mutex-guarded append per
// span, which happens once per project per stage, far off the per-byte
// paths). BenchmarkDisabled* pins the disabled-path cost at the
// single-nil-check floor.
//
// A Collector is scoped to one run. Wire it through pipeline.Options,
// read the results with Snapshot (a Report with stable, documented field
// order), and export per-project traces with WriteTraceJSONL.
package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of exponential duration buckets: bucket i
// counts durations in [2^(i-1), 2^i) microseconds, so the histogram spans
// sub-microsecond to ~2^38 µs (~76 hours) — wider than any stage run.
const histBuckets = 40

// histogram is a lock-free exponential duration histogram.
type histogram struct {
	counts [histBuckets]atomic.Int64
}

// observe files one duration. Safe for concurrent use.
func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	idx := bits.Len64(uint64(us)) // 0 for <1µs
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx].Add(1)
}

// quantile returns the upper bound of the bucket holding the q-th
// quantile (q in [0,1]), as a duration. Zero observations yield 0.
func (h *histogram) quantile(q float64) time.Duration {
	total := int64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	run := int64(0)
	for i := range h.counts {
		run += h.counts[i].Load()
		if run > target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(int64(1)<<i) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<(histBuckets-1)) * time.Microsecond
}

// Stage accumulates one pipeline stage's telemetry. Obtain handles from
// Collector.Stage once per run and reuse them: every method is a plain
// atomic update (or a no-op on a nil receiver), so handles are safe to
// call from any number of workers.
type Stage struct {
	name    string
	col     *Collector
	workers atomic.Int64
	jobs    atomic.Int64
	errs    atomic.Int64
	busyNS  atomic.Int64
	waitNS  atomic.Int64
	active  atomic.Int64
	maxAct  atomic.Int64
	hist    histogram
}

// SetWorkers records the stage's configured pool size. Nil-safe.
func (s *Stage) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.workers.Store(int64(n))
}

// Enter marks a worker busy on this stage, maintaining the occupancy
// high-water mark. Nil-safe.
func (s *Stage) Enter() {
	if s == nil {
		return
	}
	cur := s.active.Add(1)
	for {
		max := s.maxAct.Load()
		if cur <= max || s.maxAct.CompareAndSwap(max, cur) {
			return
		}
	}
}

// Exit marks the worker idle again. Nil-safe.
func (s *Stage) Exit() {
	if s == nil {
		return
	}
	s.active.Add(-1)
}

// Observe files one processed job: how long it waited in the stage's
// input queue, how long the stage function ran, and whether it failed.
// Nil-safe.
func (s *Stage) Observe(wait, busy time.Duration, failed bool) {
	if s == nil {
		return
	}
	s.jobs.Add(1)
	if failed {
		s.errs.Add(1)
	}
	s.busyNS.Add(int64(busy))
	s.waitNS.Add(int64(wait))
	s.hist.observe(busy)
}

// Span is one traced unit of work: a (project, stage) pair with its
// start offset from the run start and its duration.
type Span struct {
	Project string `json:"project"`
	Stage   string `json:"stage"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Err     bool   `json:"err,omitempty"`
}

// defaultSpanCap bounds the trace buffer; beyond it spans are counted as
// dropped rather than growing memory without bound on huge corpora.
const defaultSpanCap = 1 << 17

// Collector gathers one run's telemetry. A nil *Collector is a valid
// no-op: every method (and every handle it returns) checks for nil, so
// instrumented code needs no enablement flags. Construct with New.
type Collector struct {
	start   time.Time
	spanCap int

	mu      sync.Mutex
	stages  []*Stage
	byName  map[string]*Stage
	faults  map[string]int64
	degrade map[string]int64
	gauges  map[string]int64
	spans   []Span

	spansDropped atomic.Int64

	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheWrites   atomic.Int64
	cacheErrors   atomic.Int64
	cacheCorrupt  atomic.Int64
	cacheRetries  atomic.Int64
	cacheQuarant  atomic.Int64
	cacheReaped   atomic.Int64
	cacheBytesIn  atomic.Int64
	cacheBytesOut atomic.Int64

	storeHotHits     atomic.Int64
	storeHotMisses   atomic.Int64
	storeDiskHits    atomic.Int64
	storeDiskMisses  atomic.Int64
	storeAppends     atomic.Int64
	storeFlushes     atomic.Int64
	storeFlushErrors atomic.Int64
	storeCompactions atomic.Int64
	storeQuarant     atomic.Int64
	storeEvictions   atomic.Int64
	storeReanalyses  atomic.Int64
	storeScrubPasses atomic.Int64
	storeScrubbed    atomic.Int64
	storeRepairs     atomic.Int64
	storeDiskFull    atomic.Int64
	storeReadOnly    atomic.Int64
	storeBytesIn     atomic.Int64
	storeBytesOut    atomic.Int64

	renderHits        atomic.Int64
	renderMisses      atomic.Int64
	renderWrites      atomic.Int64
	renderInvalidates atomic.Int64
	renderEvictions   atomic.Int64
	renderNotModified atomic.Int64
	renderBytesIn     atomic.Int64
	renderBytesOut    atomic.Int64
}

// New returns a collector anchored at the current time.
func New() *Collector {
	return &Collector{
		start:   time.Now(),
		spanCap: defaultSpanCap,
		byName:  map[string]*Stage{},
		faults:  map[string]int64{},
		degrade: map[string]int64{},
		gauges:  map[string]int64{},
	}
}

// Stage returns the accumulator for the named stage, registering it on
// first use. The handle order of first registration is the report order.
// A nil collector returns a nil (still fully usable, no-op) handle.
func (c *Collector) Stage(name string) *Stage {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.byName[name]; ok {
		return s
	}
	s := &Stage{name: name, col: c}
	c.byName[name] = s
	c.stages = append(c.stages, s)
	return s
}

// CacheHit records a cache hit serving n bytes. Nil-safe.
func (c *Collector) CacheHit(n int64) {
	if c == nil {
		return
	}
	c.cacheHits.Add(1)
	c.cacheBytesIn.Add(n)
}

// CacheMiss records a cache miss. Nil-safe.
func (c *Collector) CacheMiss() {
	if c == nil {
		return
	}
	c.cacheMisses.Add(1)
}

// CacheWrite records a successful entry write of n bytes. Nil-safe.
func (c *Collector) CacheWrite(n int64) {
	if c == nil {
		return
	}
	c.cacheWrites.Add(1)
	c.cacheBytesOut.Add(n)
}

// CacheError records an unhealthy cache incident (unreadable entry,
// failed write). Nil-safe.
func (c *Collector) CacheError() {
	if c == nil {
		return
	}
	c.cacheErrors.Add(1)
}

// CacheCorrupt records an entry that failed its integrity check. Nil-safe.
func (c *Collector) CacheCorrupt() {
	if c == nil {
		return
	}
	c.cacheCorrupt.Add(1)
}

// CacheRetry records one retry of a cache filesystem operation. Nil-safe.
func (c *Collector) CacheRetry() {
	if c == nil {
		return
	}
	c.cacheRetries.Add(1)
}

// CacheQuarantine records an entry moved to the corrupt/ directory.
// Nil-safe.
func (c *Collector) CacheQuarantine() {
	if c == nil {
		return
	}
	c.cacheQuarant.Add(1)
}

// CacheReap records a quarantined corrupt/ file reaped by the retention
// cap (too many, or too old). Nil-safe.
func (c *Collector) CacheReap() {
	if c == nil {
		return
	}
	c.cacheReaped.Add(1)
}

// StoreHotHit records a result-store hit served from the in-memory hot
// tier, n bytes. Nil-safe.
func (c *Collector) StoreHotHit(n int64) {
	if c == nil {
		return
	}
	c.storeHotHits.Add(1)
	c.storeBytesIn.Add(n)
}

// StoreHotMiss records a hot-tier miss (the lookup continues to the disk
// tier when one is configured). Nil-safe.
func (c *Collector) StoreHotMiss() {
	if c == nil {
		return
	}
	c.storeHotMisses.Add(1)
}

// StoreDiskHit records a result-store hit served from the disk tier,
// n bytes. Nil-safe.
func (c *Collector) StoreDiskHit(n int64) {
	if c == nil {
		return
	}
	c.storeDiskHits.Add(1)
	c.storeBytesIn.Add(n)
}

// StoreDiskMiss records a store lookup that missed every tier. Nil-safe.
func (c *Collector) StoreDiskMiss() {
	if c == nil {
		return
	}
	c.storeDiskMisses.Add(1)
}

// StoreAppend records one record of n bytes appended to a segment file
// (still buffered until the next flush). Nil-safe.
func (c *Collector) StoreAppend(n int64) {
	if c == nil {
		return
	}
	c.storeAppends.Add(1)
	c.storeBytesOut.Add(n)
}

// StoreFlush records one successful segment flush. Nil-safe.
func (c *Collector) StoreFlush() {
	if c == nil {
		return
	}
	c.storeFlushes.Add(1)
}

// StoreFlushError records a failed (possibly torn) segment flush. Nil-safe.
func (c *Collector) StoreFlushError() {
	if c == nil {
		return
	}
	c.storeFlushErrors.Add(1)
}

// StoreCompaction records one shard compaction. Nil-safe.
func (c *Collector) StoreCompaction() {
	if c == nil {
		return
	}
	c.storeCompactions.Add(1)
}

// StoreQuarantine records a store record that failed its integrity check
// and was quarantined (skipped, its entry served from elsewhere or marked
// for re-analysis). Nil-safe.
func (c *Collector) StoreQuarantine() {
	if c == nil {
		return
	}
	c.storeQuarant.Add(1)
}

// StoreEvict records a hot-tier eviction. Nil-safe.
func (c *Collector) StoreEvict() {
	if c == nil {
		return
	}
	c.storeEvictions.Add(1)
}

// StoreReanalysis records a project recomputed from its persisted source
// snapshot because its stored result was evicted or quarantined. Nil-safe.
func (c *Collector) StoreReanalysis() {
	if c == nil {
		return
	}
	c.storeReanalyses.Add(1)
}

// StoreScrubPass records one completed scrubber pass over every shard.
// Nil-safe.
func (c *Collector) StoreScrubPass() {
	if c == nil {
		return
	}
	c.storeScrubPasses.Add(1)
}

// StoreScrubRecord records one record proactively CRC-verified by the
// scrubber (clean or not). Nil-safe.
func (c *Collector) StoreScrubRecord() {
	if c == nil {
		return
	}
	c.storeScrubbed.Add(1)
}

// StoreRepair records one quarantined entry restored to service by the
// scrubber's repair callback. Nil-safe.
func (c *Collector) StoreRepair() {
	if c == nil {
		return
	}
	c.storeRepairs.Add(1)
}

// StoreDiskFull records one ENOSPC (or injected equivalent) observed on
// the segment write path. Nil-safe.
func (c *Collector) StoreDiskFull() {
	if c == nil {
		return
	}
	c.storeDiskFull.Add(1)
}

// StoreReadOnlyEvent records one transition of the store into read-only
// mode. Nil-safe.
func (c *Collector) StoreReadOnlyEvent() {
	if c == nil {
		return
	}
	c.storeReadOnly.Add(1)
}

// RenderHit records a pre-rendered response body served straight from
// the render cache, n body bytes. Nil-safe.
func (c *Collector) RenderHit(n int64) {
	if c == nil {
		return
	}
	c.renderHits.Add(1)
	c.renderBytesIn.Add(n)
}

// RenderMiss records a render-cache lookup that found no live entry (the
// body is rendered and, epoch permitting, inserted). Nil-safe.
func (c *Collector) RenderMiss() {
	if c == nil {
		return
	}
	c.renderMisses.Add(1)
}

// RenderWrite records one rendered body of n bytes inserted into the
// render cache. Nil-safe.
func (c *Collector) RenderWrite(n int64) {
	if c == nil {
		return
	}
	c.renderWrites.Add(1)
	c.renderBytesOut.Add(n)
}

// RenderInvalidate records one render-cache invalidation (overwrite,
// delete, or re-analysis commit bumping the key's epoch). Nil-safe.
func (c *Collector) RenderInvalidate() {
	if c == nil {
		return
	}
	c.renderInvalidates.Add(1)
}

// RenderEvict records one rendered body evicted by the byte budget.
// Nil-safe.
func (c *Collector) RenderEvict() {
	if c == nil {
		return
	}
	c.renderEvictions.Add(1)
}

// RenderNotModified records one conditional GET answered 304 with zero
// body bytes. Nil-safe.
func (c *Collector) RenderNotModified() {
	if c == nil {
		return
	}
	c.renderNotModified.Add(1)
}

// SetGauge records the current value of a named gauge (health state,
// read-only flag, free disk bytes). Last write wins; gauges render sorted
// by name in the report. Nil-safe.
func (c *Collector) SetGauge(name string, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Fault records one injected fault firing at a site. Nil-safe. This is a
// cold path (faults are rare by construction), so a mutex is fine.
func (c *Collector) Fault(site, kind string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.faults[site+"/"+kind]++
	c.mu.Unlock()
}

// Degradation records one degradation event of the given taxonomy kind
// (parse, assemble, metrics, timeout, panic, anomaly, ...). Nil-safe.
func (c *Collector) Degradation(kind string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.degrade[kind]++
	c.mu.Unlock()
}

// RecordSpan traces one (project, stage) execution. Spans beyond the
// buffer cap are counted as dropped. Nil-safe.
func (c *Collector) RecordSpan(project, stage string, start time.Time, d time.Duration, failed bool) {
	if c == nil {
		return
	}
	sp := Span{
		Project: project,
		Stage:   stage,
		StartUS: start.Sub(c.start).Microseconds(),
		DurUS:   d.Microseconds(),
		Err:     failed,
	}
	c.mu.Lock()
	if len(c.spans) >= c.spanCap {
		c.mu.Unlock()
		c.spansDropped.Add(1)
		return
	}
	c.spans = append(c.spans, sp)
	c.mu.Unlock()
}

// Spans returns a copy of the recorded spans sorted by start offset,
// then project, then stage — a deterministic order for any export.
// Nil-safe.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]Span(nil), c.spans...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		if out[i].Project != out[j].Project {
			return out[i].Project < out[j].Project
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}
