package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts an HTTP listener exposing the standard net/http/pprof
// endpoints under /debug/pprof/ and expvar under /debug/vars, plus the
// collector's live report under /debug/telemetry. It returns the bound
// address (useful with ":0") and never blocks; the listener lives until
// the process exits. col may be nil, in which case /debug/telemetry
// serves the JSON null literal.
func Serve(addr string, col *Collector) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = col.WriteJSON(w)
	})
	go func() {
		// The server runs for the process lifetime; errors after a
		// successful bind (e.g. listener closed at exit) are not actionable.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
