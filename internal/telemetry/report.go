package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ReportSchemaVersion identifies the report layout; consumers should
// reject versions they do not understand. Bump it whenever a field is
// added, removed, or changes meaning.
const ReportSchemaVersion = 4

// StageReport is one stage's aggregated telemetry. Field order is part
// of the report contract and is pinned by a golden test.
type StageReport struct {
	Name string `json:"name"`
	// Workers is the configured pool size.
	Workers int64 `json:"workers"`
	// Jobs and Errors count processed and failed jobs.
	Jobs   int64 `json:"jobs"`
	Errors int64 `json:"errors"`
	// BusyUS is total stage-function wall time, QueueWaitUS total time
	// jobs sat in the stage's input queue.
	BusyUS      int64 `json:"busy_us"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	// MaxOccupancy is the busy-worker high-water mark; MeanOccupancy is
	// BusyUS over the run's elapsed time (average busy workers).
	MaxOccupancy  int64   `json:"max_occupancy"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	// P50US..MaxUS summarize the per-job duration histogram (bucket
	// upper bounds, so values are power-of-two microseconds).
	P50US int64 `json:"p50_us"`
	P90US int64 `json:"p90_us"`
	P99US int64 `json:"p99_us"`
	MaxUS int64 `json:"max_us"`
}

// CacheReport aggregates the result cache's telemetry.
type CacheReport struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	Errors      int64 `json:"errors"`
	Corrupt     int64 `json:"corrupt"`
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
	// Reaped counts quarantined corrupt/ files deleted by the retention
	// cap (count or age) so the quarantine directory stays bounded.
	Reaped       int64 `json:"reaped"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	// HitRate is Hits/(Hits+Misses), 0 when the cache saw no traffic.
	HitRate float64 `json:"hit_rate"`
}

// StoreReport aggregates the two-tier result store's telemetry.
type StoreReport struct {
	HotHits     int64 `json:"hot_hits"`
	HotMisses   int64 `json:"hot_misses"`
	DiskHits    int64 `json:"disk_hits"`
	DiskMisses  int64 `json:"disk_misses"`
	Appends     int64 `json:"appends"`
	Flushes     int64 `json:"flushes"`
	FlushErrors int64 `json:"flush_errors"`
	Compactions int64 `json:"compactions"`
	Quarantined int64 `json:"quarantined"`
	Evictions   int64 `json:"evictions"`
	// Reanalyses counts projects recomputed from their persisted source
	// because the stored result was evicted or quarantined.
	Reanalyses int64 `json:"reanalyses"`
	// ScrubPasses/ScrubbedRecords/Repairs summarize the background
	// scrubber: full passes completed, records proactively verified, and
	// quarantined entries restored to service by the repair callback.
	ScrubPasses     int64 `json:"scrub_passes"`
	ScrubbedRecords int64 `json:"scrubbed_records"`
	Repairs         int64 `json:"repairs"`
	// DiskFullEvents counts ENOSPC incidents on the write path;
	// ReadOnlyEvents counts transitions into read-only mode.
	DiskFullEvents int64 `json:"disk_full_events"`
	ReadOnlyEvents int64 `json:"read_only_events"`
	BytesRead      int64 `json:"bytes_read"`
	BytesWritten   int64 `json:"bytes_written"`
	// HitRate is (HotHits+DiskHits)/(HotHits+DiskHits+DiskMisses): the
	// fraction of lookups any tier answered. 0 with no traffic.
	HitRate float64 `json:"hit_rate"`
}

// RenderReport aggregates the HTTP render cache's telemetry: how often
// pre-rendered response bytes were served without decode or marshal, and
// how the cache churned (version 4 of the report added this block).
type RenderReport struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Writes        int64 `json:"writes"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
	// NotModified counts conditional GETs answered 304 with no body.
	NotModified  int64 `json:"not_modified"`
	BytesServed  int64 `json:"bytes_served"`
	BytesWritten int64 `json:"bytes_written"`
	// HitRate is Hits/(Hits+Misses), 0 when the cache saw no traffic.
	HitRate float64 `json:"hit_rate"`
}

// EventCount is one named event tally (a fault site/kind pair, a
// degradation taxonomy kind).
type EventCount struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
}

// Report is the machine-readable summary of one run. Its JSON field
// order is stable (struct order) and its slices are always present (never
// null), so two reports of the same toolchain version are structurally
// identical — the property the -telemetry-json golden test pins.
type Report struct {
	SchemaVersion int   `json:"schema_version"`
	ElapsedUS     int64 `json:"elapsed_us"`
	// Stages appear in registration order (pipeline order).
	Stages []StageReport `json:"stages"`
	Cache  CacheReport   `json:"cache"`
	Store  StoreReport   `json:"store"`
	Render RenderReport  `json:"render"`
	// Faults and Degradation are sorted by name.
	Faults      []EventCount `json:"faults"`
	Degradation []EventCount `json:"degradation"`
	// Gauges are last-write-wins point-in-time values (health state,
	// read-only flag), sorted by name.
	Gauges       []EventCount `json:"gauges"`
	SpanCount    int          `json:"span_count"`
	SpansDropped int64        `json:"spans_dropped"`
}

// Snapshot renders the collector's current state as a Report. Nil-safe:
// a nil collector yields a nil report.
func (c *Collector) Snapshot() *Report {
	if c == nil {
		return nil
	}
	elapsed := time.Since(c.start)
	r := &Report{
		SchemaVersion: ReportSchemaVersion,
		ElapsedUS:     elapsed.Microseconds(),
		Stages:        []StageReport{},
		Faults:        []EventCount{},
		Degradation:   []EventCount{},
		Gauges:        []EventCount{},
	}

	c.mu.Lock()
	stages := append([]*Stage(nil), c.stages...)
	r.Faults = sortedEvents(c.faults)
	r.Degradation = sortedEvents(c.degrade)
	r.Gauges = sortedEvents(c.gauges)
	r.SpanCount = len(c.spans)
	c.mu.Unlock()
	r.SpansDropped = c.spansDropped.Load()

	for _, s := range stages {
		sr := StageReport{
			Name:         s.name,
			Workers:      s.workers.Load(),
			Jobs:         s.jobs.Load(),
			Errors:       s.errs.Load(),
			BusyUS:       time.Duration(s.busyNS.Load()).Microseconds(),
			QueueWaitUS:  time.Duration(s.waitNS.Load()).Microseconds(),
			MaxOccupancy: s.maxAct.Load(),
			P50US:        s.hist.quantile(0.50).Microseconds(),
			P90US:        s.hist.quantile(0.90).Microseconds(),
			P99US:        s.hist.quantile(0.99).Microseconds(),
			MaxUS:        s.hist.quantile(1.00).Microseconds(),
		}
		if elapsed > 0 {
			sr.MeanOccupancy = float64(s.busyNS.Load()) / float64(elapsed.Nanoseconds())
		}
		r.Stages = append(r.Stages, sr)
	}

	r.Cache = CacheReport{
		Hits:         c.cacheHits.Load(),
		Misses:       c.cacheMisses.Load(),
		Writes:       c.cacheWrites.Load(),
		Errors:       c.cacheErrors.Load(),
		Corrupt:      c.cacheCorrupt.Load(),
		Retries:      c.cacheRetries.Load(),
		Quarantined:  c.cacheQuarant.Load(),
		Reaped:       c.cacheReaped.Load(),
		BytesRead:    c.cacheBytesIn.Load(),
		BytesWritten: c.cacheBytesOut.Load(),
	}
	if probes := r.Cache.Hits + r.Cache.Misses; probes > 0 {
		r.Cache.HitRate = float64(r.Cache.Hits) / float64(probes)
	}

	r.Store = StoreReport{
		HotHits:         c.storeHotHits.Load(),
		HotMisses:       c.storeHotMisses.Load(),
		DiskHits:        c.storeDiskHits.Load(),
		DiskMisses:      c.storeDiskMisses.Load(),
		Appends:         c.storeAppends.Load(),
		Flushes:         c.storeFlushes.Load(),
		FlushErrors:     c.storeFlushErrors.Load(),
		Compactions:     c.storeCompactions.Load(),
		Quarantined:     c.storeQuarant.Load(),
		Evictions:       c.storeEvictions.Load(),
		Reanalyses:      c.storeReanalyses.Load(),
		ScrubPasses:     c.storeScrubPasses.Load(),
		ScrubbedRecords: c.storeScrubbed.Load(),
		Repairs:         c.storeRepairs.Load(),
		DiskFullEvents:  c.storeDiskFull.Load(),
		ReadOnlyEvents:  c.storeReadOnly.Load(),
		BytesRead:       c.storeBytesIn.Load(),
		BytesWritten:    c.storeBytesOut.Load(),
	}
	if hits := r.Store.HotHits + r.Store.DiskHits; hits+r.Store.DiskMisses > 0 {
		r.Store.HitRate = float64(hits) / float64(hits+r.Store.DiskMisses)
	}

	r.Render = RenderReport{
		Hits:          c.renderHits.Load(),
		Misses:        c.renderMisses.Load(),
		Writes:        c.renderWrites.Load(),
		Invalidations: c.renderInvalidates.Load(),
		Evictions:     c.renderEvictions.Load(),
		NotModified:   c.renderNotModified.Load(),
		BytesServed:   c.renderBytesIn.Load(),
		BytesWritten:  c.renderBytesOut.Load(),
	}
	if probes := r.Render.Hits + r.Render.Misses; probes > 0 {
		r.Render.HitRate = float64(r.Render.Hits) / float64(probes)
	}
	return r
}

func sortedEvents(m map[string]int64) []EventCount {
	out := make([]EventCount, 0, len(m))
	for k, v := range m {
		out = append(out, EventCount{Name: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the report as indented JSON with a trailing newline.
// Nil-safe: a nil collector writes the JSON null literal.
func (c *Collector) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding report: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteTraceJSONL writes every recorded span as one JSON object per line,
// sorted by start offset — loadable into any trace viewer or joinable
// with the run report by project name. Nil-safe no-op.
func (c *Collector) WriteTraceJSONL(w io.Writer) error {
	for _, sp := range c.Spans() {
		data, err := json.Marshal(sp)
		if err != nil {
			return fmt.Errorf("telemetry: encoding span: %w", err)
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a compact human-readable digest of the report: one
// line per stage plus the cache line, for CLI output.
func (r *Report) Summary() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	for _, s := range r.Stages {
		fmt.Fprintf(&sb, "telemetry: stage %-10s %5d jobs (%d errors) busy %v, wait %v, occupancy max %d / mean %.2f\n",
			s.Name, s.Jobs, s.Errors,
			time.Duration(s.BusyUS)*time.Microsecond,
			time.Duration(s.QueueWaitUS)*time.Microsecond,
			s.MaxOccupancy, s.MeanOccupancy)
	}
	fmt.Fprintf(&sb, "telemetry: cache %d hits / %d misses (%.0f%% hit rate), %d writes, %d corrupt, %d retries\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.HitRate*100, r.Cache.Writes, r.Cache.Corrupt, r.Cache.Retries)
	return sb.String()
}
