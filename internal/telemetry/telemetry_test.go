package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollectorIsNoOp drives the entire surface through a nil
// collector: nothing may panic, and everything returns zero values.
func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	s := c.Stage("parse")
	if s != nil {
		t.Fatal("nil collector returned a non-nil stage")
	}
	s.SetWorkers(4)
	s.Enter()
	s.Exit()
	s.Observe(time.Millisecond, time.Millisecond, true)
	c.CacheHit(100)
	c.CacheMiss()
	c.CacheWrite(200)
	c.CacheError()
	c.CacheCorrupt()
	c.CacheRetry()
	c.CacheQuarantine()
	c.StoreHotHit(10)
	c.StoreHotMiss()
	c.StoreDiskHit(20)
	c.StoreDiskMiss()
	c.StoreAppend(30)
	c.StoreFlush()
	c.StoreFlushError()
	c.StoreCompaction()
	c.StoreQuarantine()
	c.StoreEvict()
	c.StoreReanalysis()
	c.Fault("site", "kind")
	c.Degradation("parse")
	c.RecordSpan("p", "parse", time.Now(), time.Millisecond, false)
	if got := c.Spans(); got != nil {
		t.Fatalf("nil collector has spans: %v", got)
	}
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector has a snapshot: %+v", got)
	}
	var buf bytes.Buffer
	if err := c.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil collector wrote a trace: %q", buf.String())
	}
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "null" {
		t.Fatalf("nil collector report = %q, want null", buf.String())
	}
}

// TestStageAccounting checks counters, histograms and occupancy under
// concurrent observation.
func TestStageAccounting(t *testing.T) {
	c := New()
	s := c.Stage("parse")
	s.SetWorkers(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Enter()
				s.Observe(time.Microsecond, 10*time.Microsecond, i%10 == 0)
				s.Exit()
			}
		}()
	}
	wg.Wait()

	rep := c.Snapshot()
	if len(rep.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(rep.Stages))
	}
	sr := rep.Stages[0]
	if sr.Name != "parse" || sr.Workers != 8 {
		t.Fatalf("stage header = %q/%d", sr.Name, sr.Workers)
	}
	if sr.Jobs != 800 {
		t.Fatalf("jobs = %d, want 800", sr.Jobs)
	}
	if sr.Errors != 80 {
		t.Fatalf("errors = %d, want 80", sr.Errors)
	}
	if sr.BusyUS != 8000 {
		t.Fatalf("busy = %dµs, want 8000", sr.BusyUS)
	}
	if sr.QueueWaitUS != 800 {
		t.Fatalf("wait = %dµs, want 800", sr.QueueWaitUS)
	}
	if sr.MaxOccupancy < 1 || sr.MaxOccupancy > 8 {
		t.Fatalf("max occupancy = %d, want in [1,8]", sr.MaxOccupancy)
	}
	// 10µs observations land in the (8,16] bucket: upper bound 16.
	if sr.P50US != 16 || sr.MaxUS != 16 {
		t.Fatalf("p50/max = %d/%d µs, want 16/16", sr.P50US, sr.MaxUS)
	}
}

// TestStageRegistrationOrder pins report order to first-registration
// order regardless of observation order.
func TestStageRegistrationOrder(t *testing.T) {
	c := New()
	c.Stage("parse")
	c.Stage("assemble")
	c.Stage("metrics")
	c.Stage("assemble").Observe(0, time.Millisecond, false)
	var names []string
	for _, s := range c.Snapshot().Stages {
		names = append(names, s.Name)
	}
	want := []string{"parse", "assemble", "metrics"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("stage order = %v, want %v", names, want)
	}
}

// TestCacheAndEventCounters checks the cache tallies, hit rate, and the
// sorted fault/degradation tallies.
func TestCacheAndEventCounters(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		c.CacheHit(100)
	}
	c.CacheMiss()
	c.CacheWrite(400)
	c.CacheError()
	c.CacheCorrupt()
	c.CacheRetry()
	c.CacheQuarantine()
	c.Fault("cache.read", "io-error")
	c.Fault("cache.read", "io-error")
	c.Fault("pipeline.parse", "panic")
	c.Degradation("timeout")
	c.Degradation("anomaly")

	rep := c.Snapshot()
	cr := rep.Cache
	if cr.Hits != 3 || cr.Misses != 1 || cr.Writes != 1 || cr.Errors != 1 ||
		cr.Corrupt != 1 || cr.Retries != 1 || cr.Quarantined != 1 {
		t.Fatalf("cache counters wrong: %+v", cr)
	}
	if cr.BytesRead != 300 || cr.BytesWritten != 400 {
		t.Fatalf("cache bytes = %d/%d, want 300/400", cr.BytesRead, cr.BytesWritten)
	}
	if cr.HitRate != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", cr.HitRate)
	}
	if len(rep.Faults) != 2 || rep.Faults[0].Name != "cache.read/io-error" || rep.Faults[0].Count != 2 {
		t.Fatalf("faults = %+v", rep.Faults)
	}
	if len(rep.Degradation) != 2 || rep.Degradation[0].Name != "anomaly" {
		t.Fatalf("degradation = %+v", rep.Degradation)
	}
}

// TestStoreCounters checks the result-store counter block, including its
// whole-store hit-rate definition (hot misses that a disk hit answers are
// not misses of the store).
func TestStoreCounters(t *testing.T) {
	c := New()
	c.StoreHotHit(100)
	c.StoreHotHit(100)
	c.StoreHotMiss()
	c.StoreDiskHit(300)
	c.StoreHotMiss()
	c.StoreDiskMiss()
	c.StoreAppend(500)
	c.StoreAppend(250)
	c.StoreFlush()
	c.StoreFlushError()
	c.StoreCompaction()
	c.StoreQuarantine()
	c.StoreEvict()
	c.StoreReanalysis()

	sr := c.Snapshot().Store
	if sr.HotHits != 2 || sr.HotMisses != 2 || sr.DiskHits != 1 || sr.DiskMisses != 1 {
		t.Fatalf("tier counters wrong: %+v", sr)
	}
	if sr.Appends != 2 || sr.Flushes != 1 || sr.FlushErrors != 1 || sr.Compactions != 1 {
		t.Fatalf("write-path counters wrong: %+v", sr)
	}
	if sr.Quarantined != 1 || sr.Evictions != 1 || sr.Reanalyses != 1 {
		t.Fatalf("health counters wrong: %+v", sr)
	}
	if sr.BytesRead != 500 || sr.BytesWritten != 750 {
		t.Fatalf("store bytes = %d/%d, want 500/750", sr.BytesRead, sr.BytesWritten)
	}
	if sr.HitRate != 0.75 { // 3 hits / (3 hits + 1 terminal miss)
		t.Fatalf("store hit rate = %v, want 0.75", sr.HitRate)
	}
}

// TestTraceJSONL checks span export: one JSON object per line, sorted by
// start offset, with the drop counter engaging past the cap.
func TestTraceJSONL(t *testing.T) {
	c := New()
	c.spanCap = 3
	base := c.start
	c.RecordSpan("beta", "parse", base.Add(2*time.Millisecond), time.Millisecond, false)
	c.RecordSpan("alpha", "parse", base.Add(time.Millisecond), time.Millisecond, true)
	c.RecordSpan("alpha", "assemble", base.Add(3*time.Millisecond), time.Millisecond, false)
	c.RecordSpan("gamma", "parse", base.Add(4*time.Millisecond), time.Millisecond, false)

	var buf bytes.Buffer
	if err := c.WriteTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		spans = append(spans, sp)
	}
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3 (cap)", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].StartUS < spans[i-1].StartUS {
			t.Fatalf("spans out of order: %+v", spans)
		}
	}
	if spans[0].Project != "alpha" || !spans[0].Err {
		t.Fatalf("first span = %+v, want alpha with err", spans[0])
	}
	rep := c.Snapshot()
	if rep.SpanCount != 3 || rep.SpansDropped != 1 {
		t.Fatalf("span count/dropped = %d/%d, want 3/1", rep.SpanCount, rep.SpansDropped)
	}
}

// TestReportShapeStable asserts two snapshots of different collectors
// marshal to the same JSON key structure — the report-contract property
// the CLI golden test relies on.
func TestReportShapeStable(t *testing.T) {
	a := New()
	a.Stage("parse").Observe(0, time.Millisecond, false)
	b := New()
	b.Stage("parse")
	b.CacheHit(1)
	b.Fault("x", "y") // faults list length may differ; keys inside entries must not

	keysOf := func(rep *Report) string {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return strings.Join(keys, ",")
	}
	if got, want := keysOf(a.Snapshot()), keysOf(b.Snapshot()); got != want {
		t.Fatalf("report top-level key sets differ: %s vs %s", got, want)
	}
	// Slices must be present (never null) so the shape is constant.
	data, _ := json.Marshal(New().Snapshot())
	for _, field := range []string{`"stages":[]`, `"faults":[]`, `"degradation":[]`} {
		if !bytes.Contains(data, []byte(field)) {
			t.Fatalf("empty report missing %s: %s", field, data)
		}
	}
}

// TestServePprof boots the observability listener on an ephemeral port
// and fetches the three endpoint families.
func TestServePprof(t *testing.T) {
	c := New()
	c.Stage("parse").Observe(0, time.Millisecond, false)
	addr, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/telemetry"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
		if path == "/debug/telemetry" {
			var rep Report
			if err := json.Unmarshal(body, &rep); err != nil {
				t.Fatalf("/debug/telemetry not a report: %v", err)
			}
			if len(rep.Stages) != 1 {
				t.Fatalf("/debug/telemetry stages = %d", len(rep.Stages))
			}
		}
	}
}

// TestHistogramQuantiles sanity-checks bucket math at the edges.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	h.observe(0)
	if got := h.quantile(1.0); got != time.Microsecond {
		t.Fatalf("sub-µs max = %v, want 1µs", got)
	}
	h.observe(100 * time.Millisecond) // 1e5 µs -> bucket upper bound 2^17
	if got := h.quantile(1.0); got != (1<<17)*time.Microsecond {
		t.Fatalf("max = %v, want %v", got, (1<<17)*time.Microsecond)
	}
	h.observe(-time.Second) // negative durations clamp to the floor bucket
	if got := h.quantile(0.0); got != time.Microsecond {
		t.Fatalf("p0 = %v, want 1µs", got)
	}
}
