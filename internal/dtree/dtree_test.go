package dtree

import (
	"math/rand"
	"strings"
	"testing"
)

var weatherNames = []string{"outlook", "humidity", "wind"}

// weather is the classic play-tennis toy set (separable).
var weather = []Sample{
	{[]string{"sunny", "high", "weak"}, "no"},
	{[]string{"sunny", "high", "strong"}, "no"},
	{[]string{"overcast", "high", "weak"}, "yes"},
	{[]string{"rain", "high", "weak"}, "yes"},
	{[]string{"rain", "normal", "weak"}, "yes"},
	{[]string{"rain", "normal", "strong"}, "no"},
	{[]string{"overcast", "normal", "strong"}, "yes"},
	{[]string{"sunny", "normal", "weak"}, "yes"},
	{[]string{"sunny", "high", "weak"}, "no"},
	{[]string{"rain", "normal", "weak"}, "yes"},
	{[]string{"sunny", "normal", "strong"}, "yes"},
	{[]string{"overcast", "high", "strong"}, "yes"},
	{[]string{"overcast", "normal", "weak"}, "yes"},
	{[]string{"rain", "high", "strong"}, "no"},
}

func TestTrainSeparable(t *testing.T) {
	tree, err := Train(weatherNames, weather, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if miss := tree.Misclassified(weather); len(miss) != 0 {
		t.Errorf("misclassified %d on separable training data", len(miss))
	}
	if acc := tree.Accuracy(weather); acc != 1 {
		t.Errorf("accuracy = %v", acc)
	}
	if tree.Depth() < 1 || tree.Leaves() < 3 {
		t.Errorf("degenerate tree: depth %d leaves %d", tree.Depth(), tree.Leaves())
	}
}

func TestPredictUnseenValueFallsBack(t *testing.T) {
	tree, err := Train(weatherNames, weather, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := tree.Predict([]string{"snow", "normal", "weak"})
	if got != "yes" && got != "no" {
		t.Errorf("unseen value prediction = %q", got)
	}
}

func TestMaxDepth(t *testing.T) {
	tree, err := Train(weatherNames, weather, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Errorf("depth = %d, want <= 1", tree.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	tree, err := Train(weatherNames, weather, Options{MinLeaf: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.Leaves() != 1 {
		t.Errorf("huge MinLeaf should give a stump: depth %d leaves %d", tree.Depth(), tree.Leaves())
	}
	// The stump predicts the majority class.
	if got := tree.Predict([]string{"sunny", "high", "weak"}); got != "yes" {
		t.Errorf("stump prediction = %q", got)
	}
}

func TestPureNodeStops(t *testing.T) {
	samples := []Sample{
		{[]string{"a"}, "x"},
		{[]string{"b"}, "x"},
		{[]string{"c"}, "x"},
	}
	tree, err := Train([]string{"f"}, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Error("pure data should yield a leaf")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(weatherNames, nil, Options{}); err == nil {
		t.Error("no samples should error")
	}
	bad := []Sample{{[]string{"only-one"}, "x"}}
	if _, err := Train(weatherNames, bad, Options{}); err == nil {
		t.Error("feature arity mismatch should error")
	}
}

func TestRender(t *testing.T) {
	tree, err := Train(weatherNames, weather, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	if !strings.Contains(out, "outlook") && !strings.Contains(out, "humidity") {
		t.Errorf("render lacks feature names:\n%s", out)
	}
	if !strings.Contains(out, "->") {
		t.Errorf("render lacks leaves:\n%s", out)
	}
	// Deterministic rendering.
	if out != tree.Render() {
		t.Error("render is not deterministic")
	}
}

func TestDeterministicTraining(t *testing.T) {
	t1, _ := Train(weatherNames, weather, Options{})
	t2, _ := Train(weatherNames, weather, Options{})
	if t1.Render() != t2.Render() {
		t.Error("training is not deterministic")
	}
}

// TestDeterministicTrainingWideFanout retrains on a noisy set whose
// features have many distinct values — the case where the Gini sums run
// over many-key partitions and a map-order float accumulation could flip
// a near-tie split between runs.
func TestDeterministicTrainingWideFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var samples []Sample
	for i := 0; i < 300; i++ {
		f := []string{
			string(rune('a' + rng.Intn(12))),
			string(rune('k' + rng.Intn(9))),
			string(rune('t' + rng.Intn(6))),
		}
		class := "one"
		if rng.Intn(2) == 0 {
			class = "two"
		}
		samples = append(samples, Sample{f, class})
	}
	first, err := Train(weatherNames, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := first.Render()
	for i := 0; i < 20; i++ {
		again, err := Train(weatherNames, samples, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := again.Render(); got != want {
			t.Fatalf("run %d: tree differs from first run:\n%s\n---\n%s", i, want, got)
		}
	}
}

// TestRandomLabelNoise: with noisy labels the tree cannot be perfect but
// must never crash and accuracy must be in [0,1].
func TestRandomLabelNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 200; i++ {
		f := []string{
			[]string{"a", "b", "c"}[rng.Intn(3)],
			[]string{"x", "y"}[rng.Intn(2)],
			[]string{"p", "q", "r", "s"}[rng.Intn(4)],
		}
		class := "one"
		if rng.Intn(2) == 0 {
			class = "two"
		}
		samples = append(samples, Sample{f, class})
	}
	tree, err := Train(weatherNames, samples, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := tree.Accuracy(samples)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	tree, _ := Train(weatherNames, weather, Options{})
	if tree.Accuracy(nil) != 0 {
		t.Error("empty evaluation set should yield 0")
	}
}
