// Package dtree implements a greedy decision tree over categorical
// features (multiway splits, Gini impurity). The paper (§5.3, Fig. 5)
// extracts such a tree from the labeled projects after manual annotation
// to show the patterns are automatically separable up to a few
// misclassifications.
package dtree

import (
	"fmt"
	"sort"
	"strings"
)

// Sample is one training or evaluation instance: a categorical feature
// vector and its class label.
type Sample struct {
	Features []string
	Class    string
}

// Options tunes the induction.
type Options struct {
	// MaxDepth bounds the tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples required to split a node
	// further; nodes smaller than this become leaves. Values below 2 are
	// treated as 2.
	MinLeaf int
}

// Tree is a trained decision tree.
type Tree struct {
	featureNames []string
	root         *node
}

type node struct {
	// leaf nodes carry only class; internal nodes split on feature.
	leaf     bool
	class    string
	feature  int
	children map[string]*node
	// majority is the majority class at this node, used for feature
	// values unseen during training.
	majority string
	// n is the number of training samples that reached this node.
	n int
}

// Train induces a tree from the samples. All samples must have
// len(featureNames) features.
func Train(featureNames []string, samples []Sample, opts Options) (*Tree, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dtree: no training samples")
	}
	for i, s := range samples {
		if len(s.Features) != len(featureNames) {
			return nil, fmt.Errorf("dtree: sample %d has %d features, want %d",
				i, len(s.Features), len(featureNames))
		}
	}
	if opts.MinLeaf < 2 {
		opts.MinLeaf = 2
	}
	t := &Tree{featureNames: featureNames}
	used := make([]bool, len(featureNames))
	t.root = grow(samples, used, 0, opts)
	return t, nil
}

func gini(samples []Sample) float64 {
	counts := map[string]int{}
	for _, s := range samples {
		counts[s.Class]++
	}
	g := 1.0
	n := float64(len(samples))
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

func majorityClass(samples []Sample) string {
	counts := map[string]int{}
	for _, s := range samples {
		counts[s.Class]++
	}
	best, bestN := "", -1
	// Deterministic tie-break by class name.
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

func pure(samples []Sample) bool {
	for i := 1; i < len(samples); i++ {
		if samples[i].Class != samples[0].Class {
			return false
		}
	}
	return true
}

func grow(samples []Sample, used []bool, depth int, opts Options) *node {
	nd := &node{majority: majorityClass(samples), n: len(samples)}
	if pure(samples) || len(samples) < opts.MinLeaf ||
		(opts.MaxDepth > 0 && depth >= opts.MaxDepth) {
		nd.leaf, nd.class = true, nd.majority
		return nd
	}
	bestFeature, bestGain := -1, 1e-12
	parentGini := gini(samples)
	n := float64(len(samples))
	for f := range used {
		if used[f] {
			continue
		}
		parts := partition(samples, f)
		if len(parts) < 2 {
			continue
		}
		// Sum in sorted key order: float addition is order-sensitive, and
		// map-order iteration could flip a near-tie split between runs.
		values := make([]string, 0, len(parts))
		for v := range parts {
			values = append(values, v)
		}
		sort.Strings(values)
		weighted := 0.0
		for _, v := range values {
			part := parts[v]
			weighted += float64(len(part)) / n * gini(part)
		}
		if gain := parentGini - weighted; gain > bestGain {
			bestFeature, bestGain = f, gain
		}
	}
	if bestFeature < 0 {
		nd.leaf, nd.class = true, nd.majority
		return nd
	}
	nd.feature = bestFeature
	nd.children = map[string]*node{}
	childUsed := append([]bool(nil), used...)
	childUsed[bestFeature] = true
	for value, part := range partition(samples, bestFeature) {
		nd.children[value] = grow(part, childUsed, depth+1, opts)
	}
	return nd
}

func partition(samples []Sample, feature int) map[string][]Sample {
	parts := map[string][]Sample{}
	for _, s := range samples {
		v := s.Features[feature]
		parts[v] = append(parts[v], s)
	}
	return parts
}

// Predict classifies a feature vector; feature values unseen during
// training fall back to the majority class of the deepest node reached.
func (t *Tree) Predict(features []string) string {
	nd := t.root
	for !nd.leaf {
		child, ok := nd.children[features[nd.feature]]
		if !ok {
			return nd.majority
		}
		nd = child
	}
	return nd.class
}

// Misclassified returns the samples the tree labels differently from
// their class — the Fig. 5 headline number when evaluated on the training
// corpus itself.
func (t *Tree) Misclassified(samples []Sample) []Sample {
	var out []Sample
	for _, s := range samples {
		if t.Predict(s.Features) != s.Class {
			out = append(out, s)
		}
	}
	return out
}

// Accuracy returns the fraction of samples classified correctly.
func (t *Tree) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	return 1 - float64(len(t.Misclassified(samples)))/float64(len(samples))
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(nd *node) int {
	if nd.leaf {
		return 0
	}
	max := 0
	for _, c := range nd.children {
		if d := depthOf(c); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return leavesOf(t.root) }

func leavesOf(nd *node) int {
	if nd.leaf {
		return 1
	}
	n := 0
	for _, c := range nd.children {
		n += leavesOf(c)
	}
	return n
}

// Render prints the tree as indented text, children sorted by feature
// value for stable output.
func (t *Tree) Render() string {
	var sb strings.Builder
	t.render(&sb, t.root, 0)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder, nd *node, indent int) {
	pad := strings.Repeat("  ", indent)
	if nd.leaf {
		fmt.Fprintf(sb, "%s-> %s (n=%d)\n", pad, nd.class, nd.n)
		return
	}
	values := make([]string, 0, len(nd.children))
	for v := range nd.children {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		fmt.Fprintf(sb, "%s%s = %s:\n", pad, t.featureNames[nd.feature], v)
		t.render(sb, nd.children[v], indent+1)
	}
}
