package history_test

// Property tests pinning the incremental reconstructor to the full
// per-version rebuild: for every version of every history — synthetic
// corpora in both schema-file styles, plus hand-built adversarial
// histories — schema.Reconstructor must produce schemas and notes
// indistinguishable from running schema.ParseAndBuild on each snapshot
// from scratch. This is the correctness contract the allocation work of
// the hot path rests on.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"schemaevo/internal/history"
	"schemaevo/internal/schema"
	"schemaevo/internal/synth"
	"schemaevo/internal/vcs"
)

// fullRebuild is the reference implementation: every snapshot parsed and
// applied from an empty schema, no sharing, no caches.
func fullRebuild(r *vcs.Repo, path string) []history.ParsedVersion {
	var out []history.ParsedVersion
	for _, fv := range r.FileHistory(path) {
		pv := history.ParsedVersion{Time: fv.Time}
		if fv.Deleted {
			pv.Schema = schema.New()
		} else {
			pv.Schema, pv.Notes = schema.ParseAndBuild(fv.Content)
		}
		out = append(out, pv)
	}
	return out
}

// requireSameVersions compares incremental output against the reference,
// version by version. Reference schemas are sealed first: published
// incremental snapshots are always sealed, and reflect.DeepEqual sees the
// sharing flag.
func requireSameVersions(t *testing.T, label string, got, want []history.ParsedVersion) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d versions incremental vs %d full", label, len(got), len(want))
	}
	for i := range want {
		want[i].Schema.Seal()
		if !got[i].Time.Equal(want[i].Time) {
			t.Fatalf("%s v%d: time %v vs %v", label, i, got[i].Time, want[i].Time)
		}
		if !reflect.DeepEqual(got[i].Notes, want[i].Notes) {
			t.Fatalf("%s v%d: notes diverge\nincremental: %#v\nfull:        %#v",
				label, i, got[i].Notes, want[i].Notes)
		}
		if !reflect.DeepEqual(got[i].Schema, want[i].Schema) {
			t.Fatalf("%s v%d: schemas diverge\nincremental: %s\nfull:        %s",
				label, i, got[i].Schema, want[i].Schema)
		}
	}
}

func checkRepo(t *testing.T, label string, r *vcs.Repo) {
	t.Helper()
	path := r.MainDDLPath()
	if path == "" {
		t.Fatalf("%s: no DDL path", label)
	}
	got, err := history.ParseVersions(r, path)
	if err != nil {
		t.Fatalf("%s: ParseVersions: %v", label, err)
	}
	requireSameVersions(t, label, got, fullRebuild(r, path))
}

func TestReconstructorMatchesFullRebuild(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, err := synth.RandomCorpus(8, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range c.Projects {
			checkRepo(t, fmt.Sprintf("seed%d/%s", seed, p.Name), p.Repo)
		}
	}
}

// Both schema-file styles must agree with the reference: full dumps churn
// the statement prefix, migration scripts extend it — the two extremes of
// the incremental path.
func TestReconstructorMatchesFullRebuildBothStyles(t *testing.T) {
	start := time.Date(2014, 5, 1, 9, 0, 0, 0, time.UTC)
	sched := &synth.Schedule{
		PUP:      30,
		Monthly:  []int{12, 0, 6, 3, 0, 0, 9, 0, 4, 0, 0, 7, 0, 0, 0, 5, 0, 0, 2, 0, 0, 0, 8, 0, 0, 3, 0, 0, 0, 6},
		ExpShare: 0.6,
	}
	for style, name := range map[synth.Style]string{
		synth.FullDump:        "full-dump",
		synth.MigrationScript: "migration-script",
	} {
		repo, err := synth.RealizeStyled(sched, name, start, rand.New(rand.NewSource(77)), style)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkRepo(t, name, repo)
	}
}

// Adversarial shapes the synthesizer never emits: deletions breaking the
// incremental chain, parse errors mid-script, prefix edits, rename
// collisions, and statements that shrink rather than extend the script.
func TestReconstructorMatchesFullRebuildAdversarial(t *testing.T) {
	at := func(d int) time.Time { return time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, d) }
	repoOf := func(contents ...string) *vcs.Repo {
		r := &vcs.Repo{Name: "adv"}
		for i, content := range contents {
			c := vcs.Commit{ID: fmt.Sprintf("c%d", i), Time: at(i)}
			if content == "<deleted>" {
				c.Deleted = []string{"schema.sql"}
			} else {
				c.Files = map[string]string{"schema.sql": content}
			}
			r.Commits = append(r.Commits, c)
		}
		return r
	}

	cases := map[string]*vcs.Repo{
		"delete-then-recreate": repoOf(
			"CREATE TABLE a (id int primary key, name text);",
			"CREATE TABLE a (id int primary key, name text);\nALTER TABLE a ADD COLUMN x int;",
			"<deleted>",
			"CREATE TABLE a (id int primary key);",
		),
		"parse-error-suffix": repoOf(
			"CREATE TABLE a (id int);",
			"CREATE TABLE a (id int);\nCREATE TABLE ((((;",
			"CREATE TABLE a (id int);\nCREATE TABLE ((((;\nCREATE TABLE b (y int);",
		),
		"prefix-edit": repoOf(
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);",
			"CREATE TABLE a (id bigint);\nCREATE TABLE b (x int);",
		),
		"shrinking-script": repoOf(
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);\nCREATE TABLE c (y int);",
			"CREATE TABLE a (id int);",
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);",
		),
		"duplicate-create": repoOf(
			"CREATE TABLE a (id int);",
			"CREATE TABLE a (id int);\nCREATE TABLE a (id int, z text);",
			"CREATE TABLE a (id int);\nCREATE TABLE a (id int, z text);\nCREATE TABLE IF NOT EXISTS a (w int);",
		),
		"rename-collision": repoOf(
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);",
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);\nALTER TABLE a RENAME TO b;",
			"CREATE TABLE a (id int);\nCREATE TABLE b (x int);\nALTER TABLE a RENAME TO b;\nALTER TABLE b ADD COLUMN q int;",
		),
		"alter-missing-table": repoOf(
			"ALTER TABLE ghost ADD COLUMN x int;",
			"ALTER TABLE ghost ADD COLUMN x int;\nCREATE TABLE ghost (id int);",
		),
		"whitespace-and-comments": repoOf(
			"-- lead comment\nCREATE TABLE a (id int);",
			"-- lead comment\nCREATE TABLE a (id int);\n\n-- trailing note\n",
			"-- changed comment\nCREATE TABLE a (id int);\n\n-- trailing note\n",
		),
	}
	for name, repo := range cases {
		t.Run(name, func(t *testing.T) { checkRepo(t, name, repo) })
	}
}

// A reconstructor reused across projects (the pipeline's per-worker
// pattern) must not leak one project's caches into the next.
func TestReconstructorReuseAcrossProjects(t *testing.T) {
	rc := schema.AcquireReconstructor()
	defer schema.ReleaseReconstructor(rc)

	c, err := synth.RandomCorpus(6, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		path := p.Repo.MainDDLPath()
		got, err := history.ParseVersionsWith(rc, p.Repo, path)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		requireSameVersions(t, p.Name, got, fullRebuild(p.Repo, path))
	}
}
