package history

import (
	"reflect"
	"testing"
	"time"

	"schemaevo/internal/schema"
	"schemaevo/internal/vcs"
)

// mustParse builds a sealed schema from DDL source, failing the test on
// anomalies — these fixtures are meant to be clean.
func mustParse(t *testing.T, src string) *schema.Schema {
	t.Helper()
	s, notes := schema.ParseAndBuild(src)
	if len(notes) != 0 {
		t.Fatalf("fixture DDL has notes: %v", notes)
	}
	s.Seal()
	return s
}

// TestAssembleExtendMatchesAssemble pins the extension contract at the
// assembly level: carrying a previously assembled prefix into a longer
// project lifetime yields exactly what a full assembly of all versions
// would — including the recomputation of out-of-span clamp notes, whose
// text depends on the (now longer) span.
func TestAssembleExtendMatchesAssemble(t *testing.T) {
	day := func(m, d int) time.Time {
		return time.Date(2020, time.Month(m), d, 12, 0, 0, 0, time.UTC)
	}
	s1 := mustParse(t, "CREATE TABLE a (x INT);")
	s2 := mustParse(t, "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);")
	s3 := mustParse(t, "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT, z INT);")

	parsed := func() []ParsedVersion {
		return []ParsedVersion{
			{Time: day(1, 3), Schema: s1},
			// Deliberately misdated far beyond any fixture span: clamped in
			// every assembly, but the clamp note's month differs between
			// the short and the extended span.
			{Time: day(12, 1).AddDate(10, 0, 0), Schema: s2, Notes: []schema.Note{{Stmt: 0, Msg: "fixture parse note"}}},
		}
	}
	suffix := []ParsedVersion{{Time: day(5, 20), Schema: s3}}

	prevRepo := &vcs.Repo{Name: "p", Commits: []vcs.Commit{
		{ID: "c0", Time: day(1, 3)},
		{ID: "c1", Time: day(2, 1), SrcLines: 4},
	}}
	fullRepo := &vcs.Repo{Name: "p", Commits: append(append([]vcs.Commit(nil), prevRepo.Commits...),
		vcs.Commit{ID: "c2", Time: day(5, 20), SrcLines: 9},
	)}

	prev := Assemble(prevRepo, "schema.sql", parsed())
	if got := len(prev.SpanAnomalies()); got != 1 {
		t.Fatalf("prev anomalies = %d, want 1", got)
	}

	got := AssembleExtend(fullRepo, "schema.sql", prev, suffix)
	want := Assemble(fullRepo, "schema.sql", append(parsed(), suffix...))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extended history differs from full assembly:\n got: %+v\nwant: %+v", got, want)
	}
	// The extension must not have scribbled on the prev history it read.
	if !reflect.DeepEqual(prev, Assemble(prevRepo, "schema.sql", parsed())) {
		t.Fatal("AssembleExtend mutated the previous history")
	}
	// Non-vacuity: the clamp note moved from month 1 (prev span) to month
	// 4 (extended span), so the recompute path really ran.
	if prev.SpanAnomalies()[0] == got.SpanAnomalies()[0] {
		t.Fatal("clamp note unchanged; expected it to be recomputed against the longer span")
	}
}

// TestAssembleExtendEmptySuffix pins the degenerate extension: new commits
// that never touch the DDL file still stretch the lifetime, so heartbeats
// and months change while every version is carried over.
func TestAssembleExtendEmptySuffix(t *testing.T) {
	day := func(m, d int) time.Time {
		return time.Date(2021, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	}
	s1 := mustParse(t, "CREATE TABLE a (x INT);")
	parsed := []ParsedVersion{{Time: day(1, 1), Schema: s1}}
	prevRepo := &vcs.Repo{Name: "q", Commits: []vcs.Commit{{ID: "c0", Time: day(1, 1)}}}
	fullRepo := &vcs.Repo{Name: "q", Commits: []vcs.Commit{
		{ID: "c0", Time: day(1, 1)},
		{ID: "c1", Time: day(4, 1), SrcLines: 11},
	}}
	prev := Assemble(prevRepo, "schema.sql", parsed)
	got := AssembleExtend(fullRepo, "schema.sql", prev, nil)
	want := Assemble(fullRepo, "schema.sql", parsed)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty-suffix extension differs:\n got: %+v\nwant: %+v", got, want)
	}
	if got.Months() != 4 {
		t.Fatalf("months = %d, want 4", got.Months())
	}
}
