package history

import (
	"math"
	"testing"
	"time"

	"schemaevo/internal/vcs"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

// demoRepo: project starts Jan 2020 (no schema), schema born Mar 2020
// with 3 attributes, grows by 2 in Jun, one type change in Jul, project
// ends Dec 2020. Lifetime: 12 months.
func demoRepo() *vcs.Repo {
	return &vcs.Repo{Name: "demo", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 10), Files: map[string]string{"main.go": "x"}, SrcLines: 100},
		{ID: "1", Time: day(2020, 3, 5), Files: map[string]string{"schema.sql": "CREATE TABLE t (a INT, b INT, c TEXT);"}, SrcLines: 10},
		{ID: "2", Time: day(2020, 6, 5), Files: map[string]string{"schema.sql": "CREATE TABLE t (a INT, b INT, c TEXT, d INT, e INT);"}, SrcLines: 30},
		{ID: "3", Time: day(2020, 7, 20), Files: map[string]string{"schema.sql": "CREATE TABLE t (a BIGINT, b INT, c TEXT, d INT, e INT);"}, SrcLines: 5},
		{ID: "4", Time: day(2020, 12, 1), Files: map[string]string{"main.go": "y"}, SrcLines: 50},
	}}
}

func TestFromRepoBasics(t *testing.T) {
	h, err := FromRepo(demoRepo())
	if err != nil {
		t.Fatal(err)
	}
	if h.Project != "demo" || h.DDLPath != "schema.sql" {
		t.Errorf("identity: %q %q", h.Project, h.DDLPath)
	}
	if h.Months() != 12 {
		t.Errorf("months = %d, want 12", h.Months())
	}
	if len(h.Versions) != 3 {
		t.Fatalf("versions = %d", len(h.Versions))
	}
	// Birth delta: 3 attributes born with table.
	if h.Versions[0].Delta.NBornWithTable != 3 {
		t.Errorf("birth delta: %+v", h.Versions[0].Delta)
	}
	if h.Versions[1].Delta.NInjected != 2 {
		t.Errorf("growth delta: %+v", h.Versions[1].Delta)
	}
	if h.Versions[2].Delta.NTypeChanged != 1 {
		t.Errorf("type delta: %+v", h.Versions[2].Delta)
	}
	if h.TotalActivity() != 6 {
		t.Errorf("total activity = %d, want 6", h.TotalActivity())
	}
	if h.ExpansionTotal != 5 || h.MaintenanceTotal != 1 {
		t.Errorf("expansion/maintenance = %d/%d", h.ExpansionTotal, h.MaintenanceTotal)
	}
}

func TestMonthlyHeartbeats(t *testing.T) {
	h, err := FromRepo(demoRepo())
	if err != nil {
		t.Fatal(err)
	}
	// Months: Jan=0 ... Dec=11. Schema events: Mar(2)=3, Jun(5)=2, Jul(6)=1.
	wantSchema := []int{0, 0, 3, 0, 0, 2, 1, 0, 0, 0, 0, 0}
	for i, w := range wantSchema {
		if h.SchemaMonthly[i] != w {
			t.Errorf("schema month %d = %d, want %d", i, h.SchemaMonthly[i], w)
		}
	}
	wantSrc := []int{100, 0, 10, 0, 0, 30, 5, 0, 0, 0, 0, 50}
	for i, w := range wantSrc {
		if h.SourceMonthly[i] != w {
			t.Errorf("src month %d = %d, want %d", i, h.SourceMonthly[i], w)
		}
	}
}

func TestCumulative(t *testing.T) {
	got := Cumulative([]int{0, 3, 0, 2, 1})
	want := []float64{0, 0.5, 0.5, 5.0 / 6.0, 1.0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("cumulative[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	zeros := Cumulative([]int{0, 0, 0})
	for i, v := range zeros {
		if v != 0 {
			t.Errorf("zero heartbeat cumulative[%d] = %g", i, v)
		}
	}
	if len(Cumulative(nil)) != 0 {
		t.Error("nil heartbeat should produce empty series")
	}
}

func TestCumulativeIsMonotone(t *testing.T) {
	h, _ := FromRepo(demoRepo())
	c := h.SchemaCumulative()
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, c)
		}
	}
	if c[len(c)-1] != 1.0 {
		t.Errorf("cumulative must end at 1, got %g", c[len(c)-1])
	}
}

func TestSchemaDeletionVersion(t *testing.T) {
	r := &vcs.Repo{Name: "del", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"s.sql": "CREATE TABLE t (a INT, b INT);"}},
		{ID: "1", Time: day(2020, 5, 1), Deleted: []string{"s.sql"}},
		{ID: "2", Time: day(2021, 1, 1), Files: map[string]string{"main.go": "x"}},
	}}
	h, err := FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Versions) != 2 {
		t.Fatalf("versions = %d", len(h.Versions))
	}
	if h.Versions[1].Delta.NDeletedWithTable != 2 {
		t.Errorf("deletion delta: %+v", h.Versions[1].Delta)
	}
	if h.FinalSchema().TableCount() != 0 {
		t.Errorf("final schema should be empty")
	}
}

func TestParseAnomaliesAreRecordedNotFatal(t *testing.T) {
	r := &vcs.Repo{Name: "messy", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"s.sql": "CREATE TABLE ok (a INT); CREATE TABLE bad (,,);"}},
		{ID: "1", Time: day(2021, 2, 1), Files: map[string]string{"s.sql": "CREATE TABLE ok (a INT, b INT);"}},
	}}
	h, err := FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	if h.NoteCount() == 0 {
		t.Error("expected notes for the bad statement")
	}
	if h.TotalActivity() != 2 { // birth of ok(a) + injection of b
		t.Errorf("activity = %d", h.TotalActivity())
	}
}

func TestErrors(t *testing.T) {
	noDDL := &vcs.Repo{Name: "none", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"main.go": "x"}},
	}}
	if _, err := FromRepo(noDDL); err == nil {
		t.Error("repo without DDL should fail")
	}
	invalid := &vcs.Repo{Name: "empty"}
	if _, err := FromRepo(invalid); err == nil {
		t.Error("invalid repo should fail")
	}
	r := demoRepo()
	if _, err := FromRepoFile(r, "nope.sql"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSnapshotSemanticsRebuildFromScratch(t *testing.T) {
	// Version 2 drops table a entirely and adds b: the diff must see both.
	r := &vcs.Repo{Name: "swap", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"s.sql": "CREATE TABLE a (x INT);"}},
		{ID: "1", Time: day(2021, 6, 1), Files: map[string]string{"s.sql": "CREATE TABLE b (y INT, z INT);"}},
	}}
	h, err := FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	d := h.Versions[1].Delta
	if d.NBornWithTable != 2 || d.NDeletedWithTable != 1 {
		t.Errorf("swap delta: %+v", d)
	}
}

func TestSummarize(t *testing.T) {
	h, err := FromRepo(demoRepo())
	if err != nil {
		t.Fatal(err)
	}
	s := h.Summarize()
	if s.Versions != 3 || s.ActiveVersions != 3 {
		t.Errorf("versions: %+v", s)
	}
	if s.Months != 12 || s.ActiveMonths != 3 {
		t.Errorf("months: %+v", s)
	}
	// Active months 2, 5, 6: dormancy runs are months 3-4 (2 months).
	if s.LongestDormancy != 2 {
		t.Errorf("dormancy = %d", s.LongestDormancy)
	}
	if s.MeanChangePerActiveMonth != 2 { // 6 attrs over 3 active months
		t.Errorf("mean change = %v", s.MeanChangePerActiveMonth)
	}
	if s.FirstChange.Month() != 3 || s.LastChange.Month() != 7 {
		t.Errorf("change bounds: %v .. %v", s.FirstChange, s.LastChange)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

func TestSummarizeZeroActivity(t *testing.T) {
	h := &History{Project: "quiet", SchemaMonthly: make([]int, 20)}
	s := h.Summarize()
	if s.ActiveMonths != 0 || s.MeanChangePerActiveMonth != 0 || s.LongestDormancy != 0 {
		t.Errorf("summary: %+v", s)
	}
}

func TestSizeSeriesAndAttrsMonthly(t *testing.T) {
	h, err := FromRepo(demoRepo())
	if err != nil {
		t.Fatal(err)
	}
	sizes := h.SizeSeries()
	if len(sizes) != 3 {
		t.Fatalf("size points = %d", len(sizes))
	}
	if sizes[0].Attrs != 3 || sizes[1].Attrs != 5 || sizes[2].Attrs != 5 {
		t.Errorf("attr sizes: %+v", sizes)
	}
	if sizes[0].Tables != 1 {
		t.Errorf("tables: %+v", sizes[0])
	}
	monthly := h.AttrsMonthly()
	want := []int{0, 0, 3, 3, 3, 5, 5, 5, 5, 5, 5, 5}
	if len(monthly) != len(want) {
		t.Fatalf("monthly = %v", monthly)
	}
	for i, w := range want {
		if monthly[i] != w {
			t.Errorf("month %d = %d, want %d", i, monthly[i], w)
		}
	}
	empty := &History{SchemaMonthly: nil}
	if got := empty.AttrsMonthly(); len(got) != 0 {
		t.Errorf("empty monthly = %v", got)
	}
}

// TestAssembleOutOfSpanTimestamp is the regression test for the
// month-index guard: a parsed version timestamped before the project's
// first commit or after its last must become a recorded anomaly (an
// AnomalyStmt note plus clamped heartbeat activity), never a panic with a
// heartbeat index out of range.
func TestAssembleOutOfSpanTimestamp(t *testing.T) {
	r := demoRepo() // span Jan..Dec 2020, 12 months
	parsed, err := ParseVersions(r, "schema.sql")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name      string
		time      time.Time
		wantMonth int
	}{
		{"before-start", day(2019, 6, 1), 0},
		{"after-end", day(2021, 4, 1), 11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			skewed := append([]ParsedVersion(nil), parsed...)
			skewed[len(skewed)-1].Time = tc.time

			h := Assemble(r, "schema.sql", skewed) // must not panic
			if got := h.Months(); got != 12 {
				t.Fatalf("months = %d, want 12", got)
			}
			// The type change (1 attribute) lands in the clamped month
			// instead of Jul (month 6).
			if h.SchemaMonthly[6] != 0 {
				t.Errorf("month 6 still has activity %d after skew", h.SchemaMonthly[6])
			}
			base := 0
			if tc.wantMonth == 0 {
				base = 0 // Jan has no schema activity in the demo repo
			}
			if h.SchemaMonthly[tc.wantMonth] != base+1 {
				t.Errorf("clamped month %d = %d, want %d", tc.wantMonth, h.SchemaMonthly[tc.wantMonth], base+1)
			}
			if h.TotalActivity() != 6 {
				t.Errorf("total activity = %d, want 6 (no activity may be lost)", h.TotalActivity())
			}

			anoms := h.SpanAnomalies()
			if len(anoms) != 1 {
				t.Fatalf("span anomalies = %v, want exactly 1", anoms)
			}
			last := h.Versions[len(h.Versions)-1]
			found := false
			for _, n := range last.Notes {
				if n.Stmt == AnomalyStmt {
					found = true
				}
			}
			if !found {
				t.Errorf("skewed version carries no AnomalyStmt note: %+v", last.Notes)
			}
		})
	}

	// A clean history reports no span anomalies.
	h := Assemble(r, "schema.sql", parsed)
	if got := h.SpanAnomalies(); len(got) != 0 {
		t.Errorf("clean history has span anomalies: %v", got)
	}
}
