// Package history reconstructs the evolution of a project's schema from
// its repository: one logical-schema snapshot per DDL-file version, the
// attribute-level delta between consecutive versions, and the monthly
// heartbeats (schema and source) whose cumulative fractional form is the
// line the paper's patterns are read from (Fig. 1).
package history

import (
	"fmt"
	"time"

	"schemaevo/internal/diff"
	"schemaevo/internal/schema"
	"schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
	"schemaevo/internal/vcs"
)

// Version is one state of the schema in time.
type Version struct {
	// Seq is the zero-based version index.
	Seq  int
	Time time.Time
	// Schema is the logical schema after this version.
	Schema *schema.Schema
	// Delta is the change from the previous version; for the first
	// version it is the change from the empty schema (schema birth).
	Delta *diff.Delta
	// Notes records parse/apply anomalies encountered in this version.
	Notes []schema.Note
}

// History is the full schema history of a project, aligned to the
// project's lifetime (not just the schema file's).
type History struct {
	// Project is the repository name.
	Project string
	// DDLPath is the schema file that was analyzed.
	DDLPath string
	// Dialect is the SQL dialect the snapshots were parsed under
	// (DialectGeneric for the legacy union grammar).
	Dialect sqlddl.DialectID
	// Versions are the chronological schema versions.
	Versions []Version
	// Start and End bound the Project Update Period: the originating
	// commit (V_p^0) and the last commit of the whole project.
	Start, End time.Time
	// SchemaMonthly is the schema heartbeat: affected attributes per
	// calendar month, indexed from the project's first month; length is
	// the project lifetime in months.
	SchemaMonthly []int
	// SourceMonthly is the project (source-code) heartbeat in lines
	// touched per month, same indexing.
	SourceMonthly []int
	// ExpansionTotal and MaintenanceTotal split the total activity per
	// §6.3.
	ExpansionTotal   int
	MaintenanceTotal int
}

// Months returns the project lifetime in months (the PUP in month
// granules).
func (h *History) Months() int { return len(h.SchemaMonthly) }

// TotalActivity returns the total schema-evolution volume: the sum of
// affected attributes over all versions, including schema birth.
func (h *History) TotalActivity() int {
	n := 0
	for _, v := range h.SchemaMonthly {
		n += v
	}
	return n
}

// FromRepo builds the history of the repo's main DDL file. It fails only
// on structural problems (invalid repo, no DDL file); content problems are
// tolerated and recorded per version.
func FromRepo(r *vcs.Repo) (*History, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	path := r.MainDDLPath()
	if path == "" {
		return nil, fmt.Errorf("history: repo %q has no DDL file", r.Name)
	}
	return FromRepoFile(r, path)
}

// FromRepoFile builds the history of one specific DDL file of the repo.
// It is the sequential composition of the two pipeline stages: parsing
// every snapshot (ParseVersions) and assembling the history (Assemble).
func FromRepoFile(r *vcs.Repo, path string) (*History, error) {
	parsed, err := ParseVersions(r, path)
	if err != nil {
		return nil, err
	}
	return Assemble(r, path, parsed), nil
}

// FromRepoFileDialect is FromRepoFile parsing under an explicit dialect;
// d == nil auto-detects from the file's first surviving snapshot. The
// dialect actually used is recorded in History.Dialect.
func FromRepoFileDialect(r *vcs.Repo, path string, d sqlddl.Dialect) (*History, error) {
	rc := schema.AcquireReconstructor()
	defer schema.ReleaseReconstructor(rc)
	parsed, err := ParseVersionsIn(rc, r, path, d)
	if err != nil {
		return nil, err
	}
	h := Assemble(r, path, parsed)
	h.Dialect = rc.DialectID()
	return h, nil
}

// ParsedVersion is one parsed snapshot of a DDL file: the reconstructed
// logical schema plus any parse/apply anomalies. It is the unit of work of
// the pipeline's parse stage; Assemble turns a sequence of them into a
// History.
type ParsedVersion struct {
	Time   time.Time
	Schema *schema.Schema
	Notes  []schema.Note
}

// ParseVersions parses every snapshot of the given DDL file into a logical
// schema. This is the CPU-heavy stage of history reconstruction (lexing,
// parsing, schema building). Snapshots are reconstructed incrementally —
// each version reuses the parse and schema work of its predecessor where
// the statement prefix is unchanged — with results identical to a full
// per-version rebuild (see schema.Reconstructor).
func ParseVersions(r *vcs.Repo, path string) ([]ParsedVersion, error) {
	rc := schema.AcquireReconstructor()
	defer schema.ReleaseReconstructor(rc)
	return ParseVersionsWith(rc, r, path)
}

// ParseVersionsWith is ParseVersions running on a caller-provided
// reconstructor, letting pipeline workers reuse one reconstructor's
// buffers and intern table across many projects. Per-project caches are
// reset on entry.
func ParseVersionsWith(rc *schema.Reconstructor, r *vcs.Repo, path string) ([]ParsedVersion, error) {
	return ParseVersionsIn(rc, r, path, sqlddl.Generic)
}

// ParseVersionsIn is ParseVersionsWith under an explicit dialect. A nil
// dialect means auto-detect: the detector scores the first surviving
// (non-deleted) snapshot's content, which is stable under suffix
// extension — appending newer versions can never change the detection
// input, so incremental re-analysis agrees with a fresh run. The dialect
// actually used is readable from rc.DialectID() after the call.
func ParseVersionsIn(rc *schema.Reconstructor, r *vcs.Repo, path string, d sqlddl.Dialect) ([]ParsedVersion, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	fileVersions := r.FileHistory(path)
	if len(fileVersions) == 0 {
		return nil, fmt.Errorf("history: repo %q has no versions of %q", r.Name, path)
	}
	if d == nil {
		d = sqlddl.Generic
		for _, fv := range fileVersions {
			if !fv.Deleted {
				d = dialect.Detect(fv.Content)
				break
			}
		}
	}
	rc.SetDialect(d)
	rc.ResetProject()
	out := make([]ParsedVersion, 0, len(fileVersions))
	for _, fv := range fileVersions {
		pv := ParsedVersion{Time: fv.Time}
		if fv.Deleted {
			pv.Schema = schema.New()
			rc.ResetFile() // chain broken: next content starts from scratch
		} else {
			pv.Schema, pv.Notes = rc.Build(fv.Content)
		}
		// Published versions share table storage; seal each snapshot so a
		// stray mutation cannot corrupt a sibling version.
		pv.Schema.Seal()
		out = append(out, pv)
	}
	return out, nil
}

// AnomalyStmt is the sentinel Note.Stmt value marking a history-level data
// anomaly (as opposed to a statement-level parse/apply note, whose Stmt is
// a non-negative statement index).
const AnomalyStmt = -1

// Assemble builds the history from the parsed snapshots: the
// attribute-level delta between consecutive versions, the monthly
// heartbeats, and the expansion/maintenance split. The parsed slice must
// come from ParseVersions on the same repo and path.
//
// A version timestamped outside the project's [Start, End] span — a
// misdated commit, clock skew, or a corrupt upstream record — is a data
// anomaly, not a structural failure: its activity is clamped to the
// nearest month of the span and the version gets an AnomalyStmt note, so
// the wrinkle is visible downstream instead of panicking on a heartbeat
// index out of range.
func Assemble(r *vcs.Repo, path string, parsed []ParsedVersion) *History {
	h := newShell(r, path)
	var prev *schema.Schema
	for _, pv := range parsed {
		h.appendVersion(pv.Time, pv.Schema, diff.Schemas(prev, pv.Schema), pv.Notes)
		prev = pv.Schema
	}
	return h
}

// AssembleExtend assembles the history of a repo whose DDL file history
// extends a previously assembled one: the first len(prev.Versions)
// snapshots are carried over from prev (schemas, deltas and parse/apply
// notes are pure functions of unchanged inputs), and only the suffix —
// freshly parsed by the caller, typically on a Reconstructor primed with
// the last carried-over snapshot — is diffed and appended.
//
// Everything derived from the repo's full commit timeline is recomputed
// from scratch: Start/End, the heartbeats, the expansion/maintenance
// split, and the out-of-span clamp notes (the span the clamp is judged
// against changes as the project's lifetime grows). The caller must have
// verified that the new repo's file history of path pairwise-equals the
// old one over the carried-over prefix; under that precondition the result
// is byte-identical (through the cache codec) to a full Assemble of the
// new repo — the differential suite pins this.
func AssembleExtend(r *vcs.Repo, path string, prev *History, suffix []ParsedVersion) *History {
	h := newShell(r, path)
	var last *schema.Schema
	for i := range prev.Versions {
		pv := &prev.Versions[i]
		h.appendVersion(pv.Time, pv.Schema, pv.Delta, stripSpanAnomalies(pv.Notes))
		last = pv.Schema
	}
	for _, pv := range suffix {
		h.appendVersion(pv.Time, pv.Schema, diff.Schemas(last, pv.Schema), pv.Notes)
		last = pv.Schema
	}
	return h
}

// newShell builds the version-less skeleton of a history: identity, span,
// and the heartbeats with only the source line filled in.
func newShell(r *vcs.Repo, path string) *History {
	h := &History{
		Project: r.Name,
		DDLPath: path,
		Start:   r.Start(),
		End:     r.End(),
	}
	h.SchemaMonthly = make([]int, r.LifetimeMonths())
	h.SourceMonthly = r.MonthlySrcLines()
	return h
}

// appendVersion files one snapshot: clamp out-of-span timestamps (with an
// AnomalyStmt note), post the delta to the schema heartbeat and the
// expansion/maintenance totals. It is the single shared body of Assemble
// and AssembleExtend, so a carried-over prefix cannot drift from what a
// full assembly would have produced.
func (h *History) appendVersion(t time.Time, s *schema.Schema, d *diff.Delta, notes []schema.Note) {
	seq := len(h.Versions)
	v := Version{Seq: seq, Time: t, Schema: s, Delta: d, Notes: notes}
	months := len(h.SchemaMonthly)
	month := vcs.MonthIndex(h.Start, t)
	if month < 0 || month >= months {
		clamped := 0
		if month >= months {
			clamped = months - 1
		}
		v.Notes = append(v.Notes, schema.Note{
			Stmt: AnomalyStmt,
			Msg: fmt.Sprintf("version %d timestamped %s outside the project span [%s, %s]; activity clamped to month %d",
				seq, t.Format("2006-01-02"), h.Start.Format("2006-01-02"), h.End.Format("2006-01-02"), clamped),
		})
		month = clamped
	}
	h.Versions = append(h.Versions, v)
	h.SchemaMonthly[month] += d.Total()
	h.ExpansionTotal += d.Expansion()
	h.MaintenanceTotal += d.Maintenance()
}

// stripSpanAnomalies removes history-level AnomalyStmt notes from a
// version's note list, recovering the parse/apply notes as the parse stage
// produced them: nil when nothing remains (Build never returns a non-nil
// empty slice), a fresh slice otherwise (never aliasing the input, whose
// backing array may be shared with a published History).
func stripSpanAnomalies(notes []schema.Note) []schema.Note {
	n := 0
	for _, note := range notes {
		if note.Stmt != AnomalyStmt {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]schema.Note, 0, n)
	for _, note := range notes {
		if note.Stmt != AnomalyStmt {
			out = append(out, note)
		}
	}
	return out
}

// Cumulative returns the cumulative fractional activity of a monthly
// heartbeat: entry i is the fraction of total activity attained by the
// end of month i, in [0,1]. A heartbeat with zero total yields all zeros.
func Cumulative(monthly []int) []float64 {
	out := make([]float64, len(monthly))
	total := 0
	for _, v := range monthly {
		total += v
	}
	if total == 0 {
		return out
	}
	run := 0
	for i, v := range monthly {
		run += v
		out[i] = float64(run) / float64(total)
	}
	return out
}

// SchemaCumulative returns the cumulative fractional schema line of Fig. 1.
func (h *History) SchemaCumulative() []float64 { return Cumulative(h.SchemaMonthly) }

// SourceCumulative returns the cumulative fractional source line of Fig. 1.
func (h *History) SourceCumulative() []float64 { return Cumulative(h.SourceMonthly) }

// FinalSchema returns the schema after the last version, or nil when the
// history is empty.
func (h *History) FinalSchema() *schema.Schema {
	if len(h.Versions) == 0 {
		return nil
	}
	return h.Versions[len(h.Versions)-1].Schema
}

// NoteCount returns the total number of anomalies recorded across
// versions — a quick data-quality indicator.
func (h *History) NoteCount() int {
	n := 0
	for _, v := range h.Versions {
		n += len(v.Notes)
	}
	return n
}

// SpanAnomalies returns the messages of every history-level data anomaly
// (AnomalyStmt notes: out-of-span timestamps and the like), in version
// order. Empty for a clean history.
func (h *History) SpanAnomalies() []string {
	var out []string
	for _, v := range h.Versions {
		for _, n := range v.Notes {
			if n.Stmt == AnomalyStmt {
				out = append(out, n.Msg)
			}
		}
	}
	return out
}
