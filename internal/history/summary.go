package history

import (
	"fmt"
	"time"

	"schemaevo/internal/vcs"
)

// Summary condenses a history for reporting: version counts, activity
// cadence and dormancy, the facts cmd/schemaevo prints and the paper's
// prose cites ("people prefer clustered groups of schema changes rather
// than constant incremental maintenance").
type Summary struct {
	Project string
	// Versions is the number of schema-file versions.
	Versions int
	// ActiveVersions counts versions with a non-zero delta (dump
	// refreshes and comment-only commits produce zero deltas).
	ActiveVersions int
	// Months and ActiveMonths give the monthly cadence.
	Months       int
	ActiveMonths int
	// LongestDormancy is the longest run of consecutive months without
	// schema change between two active months.
	LongestDormancy int
	// MeanChangePerActiveMonth is the average attribute volume of an
	// active month.
	MeanChangePerActiveMonth float64
	// FirstChange and LastChange bound the schema activity in time.
	FirstChange, LastChange time.Time
}

// Summarize computes the timeline summary.
func (h *History) Summarize() Summary {
	s := Summary{
		Project:  h.Project,
		Versions: len(h.Versions),
		Months:   h.Months(),
	}
	for _, v := range h.Versions {
		if !v.Delta.IsZero() {
			s.ActiveVersions++
			if s.FirstChange.IsZero() {
				s.FirstChange = v.Time
			}
			s.LastChange = v.Time
		}
	}
	total := 0
	firstActive, lastActive := -1, -1
	for i, v := range h.SchemaMonthly {
		if v > 0 {
			s.ActiveMonths++
			total += v
			if firstActive < 0 {
				firstActive = i
			}
			lastActive = i
		}
	}
	if s.ActiveMonths > 0 {
		s.MeanChangePerActiveMonth = float64(total) / float64(s.ActiveMonths)
	}
	// Longest dormancy strictly between active months.
	run, longest := 0, 0
	for i := firstActive; i >= 0 && i <= lastActive; i++ {
		if h.SchemaMonthly[i] > 0 {
			if run > longest {
				longest = run
			}
			run = 0
			continue
		}
		run++
	}
	s.LongestDormancy = longest
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d versions (%d active), %d/%d active months, longest dormancy %d months, %.1f attrs/active month",
		s.Project, s.Versions, s.ActiveVersions, s.ActiveMonths, s.Months,
		s.LongestDormancy, s.MeanChangePerActiveMonth)
}

// SizePoint is the schema size at one version.
type SizePoint struct {
	Time   time.Time
	Tables int
	Attrs  int
}

// SizeSeries returns the schema size after every version — the
// schema-growth view earlier studies chart (size over time progress).
func (h *History) SizeSeries() []SizePoint {
	out := make([]SizePoint, 0, len(h.Versions))
	for _, v := range h.Versions {
		out = append(out, SizePoint{
			Time:   v.Time,
			Tables: v.Schema.TableCount(),
			Attrs:  v.Schema.AttributeCount(),
		})
	}
	return out
}

// AttrsMonthly returns the attribute count at the end of each month of
// the project's life (carrying the last known size forward), suitable for
// charting schema growth on the same axis as the heartbeats.
func (h *History) AttrsMonthly() []int {
	out := make([]int, h.Months())
	if len(out) == 0 {
		return out
	}
	size := 0
	vi := 0
	for m := range out {
		for vi < len(h.Versions) && vcs.MonthIndex(h.Start, h.Versions[vi].Time) <= m {
			size = h.Versions[vi].Schema.AttributeCount()
			vi++
		}
		out[m] = size
	}
	return out
}
