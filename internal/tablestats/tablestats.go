// Package tablestats analyzes schema evolution at the granularity of
// individual tables: when each table is born and dies, how much in-place
// restructuring it receives, and how the total change splits between
// table-grain operations (whole tables added or dropped) and in-place
// edits. It substantiates the paper's §6.3 observation that "both
// expansion and maintenance are performed with the granule of change being
// mostly the entire table".
package tablestats

import (
	"sort"

	"schemaevo/internal/diff"
	"schemaevo/internal/history"
)

// TableLife is the lifetime record of one table name within a history.
// A name that is dropped and later re-created yields two records.
type TableLife struct {
	Name string
	// BornVersion and BornMonth locate the table's first appearance.
	BornVersion, BornMonth int
	// DiedVersion and DiedMonth locate the drop; -1 while the table
	// survives to the end of the history.
	DiedVersion, DiedMonth int
	// AttrsAtBirth and AttrsAtEnd size the table at its bounds (AttrsAtEnd
	// is the size just before death for dropped tables).
	AttrsAtBirth, AttrsAtEnd int
	// In-place restructuring over the table's life.
	Injections  int
	Ejections   int
	TypeChanges int
	KeyChanges  int
}

// Updates returns the total in-place edits the table received.
func (tl *TableLife) Updates() int {
	return tl.Injections + tl.Ejections + tl.TypeChanges + tl.KeyChanges
}

// Survived reports whether the table is alive at the end of the history.
func (tl *TableLife) Survived() bool { return tl.DiedVersion < 0 }

// monthOf maps a version index to a month index within the history.
func monthOf(h *history.History, version int) int {
	v := h.Versions[version]
	return monthIndex(h, v)
}

func monthIndex(h *history.History, v history.Version) int {
	return (v.Time.Year()*12 + int(v.Time.Month())) -
		(h.Start.Year()*12 + int(h.Start.Month()))
}

// Analyze reconstructs the per-table lives of a history from the
// per-version deltas.
func Analyze(h *history.History) []TableLife {
	var lives []TableLife
	open := map[string]int{} // table name -> index into lives
	for vi, v := range h.Versions {
		d := v.Delta
		for _, name := range d.TablesAdded {
			tbl, _ := v.Schema.Table(name)
			attrs := 0
			if tbl != nil {
				attrs = len(tbl.Columns)
			}
			lives = append(lives, TableLife{
				Name:         name,
				BornVersion:  vi,
				BornMonth:    monthOf(h, vi),
				DiedVersion:  -1,
				DiedMonth:    -1,
				AttrsAtBirth: attrs,
				AttrsAtEnd:   attrs,
			})
			open[name] = len(lives) - 1
		}
		for _, name := range d.TablesDropped {
			if idx, ok := open[name]; ok {
				lives[idx].DiedVersion = vi
				lives[idx].DiedMonth = monthOf(h, vi)
				delete(open, name)
			}
		}
		for _, c := range d.Changes {
			idx, ok := open[c.Table]
			if !ok {
				continue
			}
			switch c.Kind {
			case diff.Injected:
				lives[idx].Injections++
			case diff.Ejected:
				lives[idx].Ejections++
			case diff.TypeChanged:
				lives[idx].TypeChanges++
			case diff.KeyChanged:
				lives[idx].KeyChanges++
			}
		}
		// Refresh surviving tables' end sizes.
		for name, idx := range open {
			if tbl, ok := v.Schema.Table(name); ok {
				lives[idx].AttrsAtEnd = len(tbl.Columns)
			}
		}
	}
	sort.Slice(lives, func(i, j int) bool {
		if lives[i].BornVersion != lives[j].BornVersion {
			return lives[i].BornVersion < lives[j].BornVersion
		}
		return lives[i].Name < lives[j].Name
	})
	return lives
}

// Granularity splits a history's total change by the grain it was
// performed at.
type Granularity struct {
	// TableGrain counts attributes affected by whole-table operations
	// (born with a new table, deleted with a dropped table).
	TableGrain int
	// InPlace counts attributes affected inside surviving tables
	// (injections, ejections, type and key changes).
	InPlace int
}

// Total returns the overall affected-attribute count.
func (g Granularity) Total() int { return g.TableGrain + g.InPlace }

// TableGrainShare returns the fraction of change performed at table
// granularity (0 when the history has no change).
func (g Granularity) TableGrainShare() float64 {
	if g.Total() == 0 {
		return 0
	}
	return float64(g.TableGrain) / float64(g.Total())
}

// GranularityOf computes the table-grain/in-place split of a history.
func GranularityOf(h *history.History) Granularity {
	var g Granularity
	for _, v := range h.Versions {
		d := v.Delta
		g.TableGrain += d.NBornWithTable + d.NDeletedWithTable
		g.InPlace += d.NInjected + d.NEjected + d.NTypeChanged + d.NKeyChanged
	}
	return g
}

// Summary aggregates table-level facts for one history.
type Summary struct {
	// TablesEver is the number of table lives observed.
	TablesEver int
	// TablesSurviving counts lives alive at the end.
	TablesSurviving int
	// BornAtSchemaBirth counts tables born in the first schema version.
	BornAtSchemaBirth int
	// NeverUpdated counts tables that received no in-place edit.
	NeverUpdated int
	// MedianAttrsAtBirth is the median table width at birth.
	MedianAttrsAtBirth float64
	Granularity        Granularity
}

// Summarize computes the table-level summary of a history.
func Summarize(h *history.History) Summary {
	lives := Analyze(h)
	s := Summary{TablesEver: len(lives), Granularity: GranularityOf(h)}
	var widths []int
	for _, tl := range lives {
		if tl.Survived() {
			s.TablesSurviving++
		}
		if tl.BornVersion == 0 {
			s.BornAtSchemaBirth++
		}
		if tl.Updates() == 0 {
			s.NeverUpdated++
		}
		widths = append(widths, tl.AttrsAtBirth)
	}
	s.MedianAttrsAtBirth = medianInts(widths)
	return s
}

func medianInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return float64(s[mid])
	}
	return float64(s[mid-1]+s[mid]) / 2
}
