package tablestats

import (
	"schemaevo/internal/history"
)

// TableClass grades the activity of one table's life, following the
// authors' companion table-level studies ("gravitating to rigidity"):
// the vast majority of tables never change internally after birth.
type TableClass int

// Table activity classes.
const (
	// RigidTable: no in-place update over the whole life.
	RigidTable TableClass = iota
	// QuietTable: 1-3 in-place updates.
	QuietTable
	// ActiveTable: more than 3 in-place updates.
	ActiveTable
)

func (c TableClass) String() string {
	return [...]string{"rigid", "quiet", "active"}[c]
}

// ClassifyTable grades one table life.
func ClassifyTable(tl TableLife) TableClass {
	switch u := tl.Updates(); {
	case u == 0:
		return RigidTable
	case u <= 3:
		return QuietTable
	default:
		return ActiveTable
	}
}

// RigidityReport aggregates table-level rigidity over one or more
// histories.
type RigidityReport struct {
	// Counts per activity class.
	Rigid, Quiet, Active int
	// Dropped counts table lives that ended before the history did.
	Dropped int
	// DroppedRigid counts dropped tables that were never updated — the
	// "dead on arrival" tables.
	DroppedRigid int
	// Total is the number of table lives observed.
	Total int
}

// RigidShare is the fraction of rigid tables.
func (r RigidityReport) RigidShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Rigid) / float64(r.Total)
}

// Add folds one history's tables into the report.
func (r *RigidityReport) Add(h *history.History) {
	for _, tl := range Analyze(h) {
		r.Total++
		switch ClassifyTable(tl) {
		case RigidTable:
			r.Rigid++
		case QuietTable:
			r.Quiet++
		case ActiveTable:
			r.Active++
		}
		if !tl.Survived() {
			r.Dropped++
			if tl.Updates() == 0 {
				r.DroppedRigid++
			}
		}
	}
}

// Rigidity builds a report over a set of histories.
func Rigidity(hs []*history.History) RigidityReport {
	var r RigidityReport
	for _, h := range hs {
		r.Add(h)
	}
	return r
}
