package tablestats

import (
	"testing"
	"time"

	"schemaevo/internal/history"
	"schemaevo/internal/vcs"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

// demoHistory: table a born v0 (2 attrs) and updated; table b born v1
// (1 attr) and dropped at v2; table c born v2.
func demoHistory(t *testing.T) *history.History {
	t.Helper()
	r := &vcs.Repo{Name: "demo", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{
			"s.sql": "CREATE TABLE a (x INT, y INT);"}},
		{ID: "1", Time: day(2020, 4, 1), Files: map[string]string{
			"s.sql": "CREATE TABLE a (x INT, y INT, z TEXT); CREATE TABLE b (p INT);"}},
		{ID: "2", Time: day(2020, 9, 1), Files: map[string]string{
			"s.sql": "CREATE TABLE a (x BIGINT, y INT, z TEXT); CREATE TABLE c (q INT, r INT);"}},
		{ID: "3", Time: day(2021, 6, 1), Files: map[string]string{"main.go": "x"}},
	}}
	h, err := history.FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAnalyzeLives(t *testing.T) {
	lives := Analyze(demoHistory(t))
	if len(lives) != 3 {
		t.Fatalf("lives = %d: %+v", len(lives), lives)
	}
	byName := map[string]TableLife{}
	for _, l := range lives {
		byName[l.Name] = l
	}
	a := byName["a"]
	if a.BornVersion != 0 || a.BornMonth != 0 || !a.Survived() {
		t.Errorf("a: %+v", a)
	}
	if a.AttrsAtBirth != 2 || a.AttrsAtEnd != 3 {
		t.Errorf("a sizes: %+v", a)
	}
	if a.Injections != 1 || a.TypeChanges != 1 || a.Updates() != 2 {
		t.Errorf("a updates: %+v", a)
	}
	b := byName["b"]
	if b.BornVersion != 1 || b.Survived() || b.DiedVersion != 2 || b.DiedMonth != 8 {
		t.Errorf("b: %+v", b)
	}
	c := byName["c"]
	if c.BornVersion != 2 || c.AttrsAtBirth != 2 || c.Updates() != 0 {
		t.Errorf("c: %+v", c)
	}
}

func TestGranularity(t *testing.T) {
	g := GranularityOf(demoHistory(t))
	// Table grain: a born (2) + b born (1) + c born (2) + b dropped (1) = 6.
	// In place: z injected (1) + x type change (1) = 2.
	if g.TableGrain != 6 || g.InPlace != 2 {
		t.Errorf("granularity: %+v", g)
	}
	if g.Total() != 8 {
		t.Errorf("total = %d", g.Total())
	}
	if share := g.TableGrainShare(); share != 0.75 {
		t.Errorf("share = %v", share)
	}
	if (Granularity{}).TableGrainShare() != 0 {
		t.Error("empty granularity share should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(demoHistory(t))
	if s.TablesEver != 3 || s.TablesSurviving != 2 || s.BornAtSchemaBirth != 1 {
		t.Errorf("summary: %+v", s)
	}
	if s.NeverUpdated != 2 { // b and c
		t.Errorf("never updated = %d", s.NeverUpdated)
	}
	if s.MedianAttrsAtBirth != 2 {
		t.Errorf("median width = %v", s.MedianAttrsAtBirth)
	}
}

func TestRecreatedTableGetsTwoLives(t *testing.T) {
	r := &vcs.Repo{Name: "recreate", Commits: []vcs.Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"s.sql": "CREATE TABLE t (a INT);"}},
		{ID: "1", Time: day(2020, 6, 1), Files: map[string]string{"s.sql": "-- gone\n"}},
		{ID: "2", Time: day(2021, 2, 1), Files: map[string]string{"s.sql": "CREATE TABLE t (a INT, b INT);"}},
	}}
	h, err := history.FromRepo(r)
	if err != nil {
		t.Fatal(err)
	}
	lives := Analyze(h)
	if len(lives) != 2 {
		t.Fatalf("lives = %d", len(lives))
	}
	if lives[0].Survived() || !lives[1].Survived() {
		t.Errorf("lifecycles: %+v", lives)
	}
	if lives[1].AttrsAtBirth != 2 {
		t.Errorf("second life width: %+v", lives[1])
	}
}

func TestEmptyHistory(t *testing.T) {
	h := &history.History{SchemaMonthly: make([]int, 13)}
	if got := Analyze(h); len(got) != 0 {
		t.Errorf("lives on empty history: %v", got)
	}
	s := Summarize(h)
	if s.TablesEver != 0 || s.MedianAttrsAtBirth != 0 {
		t.Errorf("summary: %+v", s)
	}
}

func TestClassifyTable(t *testing.T) {
	if got := ClassifyTable(TableLife{}); got != RigidTable {
		t.Errorf("no updates = %v", got)
	}
	if got := ClassifyTable(TableLife{Injections: 2, TypeChanges: 1}); got != QuietTable {
		t.Errorf("3 updates = %v", got)
	}
	if got := ClassifyTable(TableLife{Injections: 4}); got != ActiveTable {
		t.Errorf("4 updates = %v", got)
	}
	if RigidTable.String() != "rigid" || ActiveTable.String() != "active" {
		t.Error("class strings")
	}
}

func TestRigidityReport(t *testing.T) {
	h := demoHistory(t)
	r := Rigidity([]*history.History{h})
	// Tables: a (2 updates -> quiet), b (0 updates, dropped -> rigid),
	// c (0 updates -> rigid).
	if r.Total != 3 || r.Rigid != 2 || r.Quiet != 1 || r.Active != 0 {
		t.Errorf("report: %+v", r)
	}
	if r.Dropped != 1 || r.DroppedRigid != 1 {
		t.Errorf("dropped: %+v", r)
	}
	if share := r.RigidShare(); share < 0.66 || share > 0.67 {
		t.Errorf("rigid share = %v", share)
	}
	if (RigidityReport{}).RigidShare() != 0 {
		t.Error("empty report share")
	}
}
