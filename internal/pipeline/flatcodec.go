package pipeline

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
	"unsafe"

	"schemaevo/internal/diff"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/schema"
	"schemaevo/internal/sqlddl"
)

// Cache entries are persisted in a flat, mmap-friendly binary format:
//
//	[0:4]   magic "SEVF"
//	[4:8]   u32 format version (must equal cacheFormatVersion)
//	[8:16]  u64 arena offset
//	[16:24] u64 arena length (offset + length == file size, exactly)
//	[24]    u8 dialect tag (sqlddl.DialectID of the history; 0 = generic)
//	[25:32] reserved, must be zero
//	[32:ao] fixed-width field stream
//	[ao:]   string arena
//
// The dialect tag lives in the header rather than the field stream so
// tooling can classify an entry without decoding it; the decoder rejects
// tags outside the known DialectID range and nonzero reserved bytes, so
// the encoding stays canonical (value-equal entries are byte-equal).
//
// Every field in the stream has a fixed width: integers and floats are 8
// bytes little-endian, presence flags and booleans one byte, slice counts
// u32 (0 = nil, n+1 otherwise, mirroring the variable-width codec), and
// every string an 8-byte (offset, length) reference into the arena. A
// decoded entry therefore allocates no per-string memory at all: strings
// are bounds-checked views over the arena (unsafe.String), which for a
// memory-mapped file means views over the mapping itself. The arena is
// deduplicated — each distinct string is stored once — and the decoder
// never copies it, so the backing buffer must outlive the decoded entry
// (see mmap_unix.go for the mapping-lifetime contract).
//
// The predecessor format re-encoded every version's full table list, so a
// warm decode allocated every table fresh even though cold assembly shares
// unchanged tables pointer-identically across versions (schema.CloneCOW).
// The flat format restores that sharing on the read side: tables are
// written once into a value-deduplicated pool (dedup key = encoded bytes,
// first-encounter order, so encoding stays deterministic for value-equal
// inputs even when the in-memory pointer structure differs, e.g. after an
// incremental ExtendResult), and each version's schema is a list of u32
// pool indexes. The header additionally carries slab totals (columns,
// string elements, foreign keys, ...) so the decoder can allocate each
// kind of element as one slab instead of per-table slices.
//
// Decoded snapshots are Sealed, exactly like freshly computed ones: the
// pool tables are shared across versions, so any later mutation must go
// through the copy-on-write path.

// flatMagic guards against feeding arbitrary files to the decoder.
var flatMagic = [4]byte{'S', 'E', 'V', 'F'}

const flatHeaderSize = 32

// flatRef locates one string in the arena.
type flatRef struct{ off, n uint32 }

// flatArena accumulates deduplicated string data during encoding.
type flatArena struct {
	data   []byte
	intern map[string]flatRef
}

func (a *flatArena) ref(s string) flatRef {
	if s == "" {
		return flatRef{}
	}
	if r, ok := a.intern[s]; ok {
		return r
	}
	r := flatRef{off: uint32(len(a.data)), n: uint32(len(s))}
	a.data = append(a.data, s...)
	a.intern[s] = r
	return r
}

// flatEnc writes the fixed-width field stream. Multiple encoders may
// share one arena (the table pool is encoded out-of-line, then spliced
// into the stream ahead of the versions that reference it).
type flatEnc struct {
	buf []byte
	ar  *flatArena
}

func (e *flatEnc) u8(v byte) { e.buf = append(e.buf, v) }
func (e *flatEnc) bool8(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *flatEnc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *flatEnc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *flatEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *flatEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *flatEnc) str(s string)  { r := e.ar.ref(s); e.u32(r.off); e.u32(r.n) }

// cnt encodes a slice length, distinguishing nil (0) from empty (1).
func (e *flatEnc) cnt(n int, isNil bool) {
	if isNil {
		e.u32(0)
		return
	}
	e.u32(uint32(n) + 1)
}

func (e *flatEnc) when(t time.Time) {
	e.u64(uint64(t.UnixNano()))
	_, off := t.Zone()
	e.i64(int64(off))
}

func (e *flatEnc) strs(ss []string) {
	e.cnt(len(ss), ss == nil)
	for _, s := range ss {
		e.str(s)
	}
}

func (e *flatEnc) ints(vs []int) {
	e.cnt(len(vs), vs == nil)
	for _, v := range vs {
		e.i64(int64(v))
	}
}

func (e *flatEnc) table(t *schema.Table) {
	e.str(t.Name)
	e.cnt(len(t.Columns), t.Columns == nil)
	for i := range t.Columns {
		c := &t.Columns[i]
		e.str(c.Name)
		e.str(c.Type)
		e.str(c.Default)
		var f byte
		if c.NotNull {
			f |= 1
		}
		if c.HasDefault {
			f |= 2
		}
		if c.AutoIncrement {
			f |= 4
		}
		if c.InPK {
			f |= 8
		}
		e.u8(f)
	}
	e.strs(t.PrimaryKey)
	e.cnt(len(t.ForeignKeys), t.ForeignKeys == nil)
	for i := range t.ForeignKeys {
		fk := &t.ForeignKeys[i]
		e.str(fk.Name)
		e.strs(fk.Columns)
		e.str(fk.RefTable)
		e.strs(fk.RefColumns)
	}
	e.cnt(len(t.Uniques), t.Uniques == nil)
	for _, u := range t.Uniques {
		e.strs(u)
	}
}

func (e *flatEnc) delta(dl *diff.Delta) {
	if dl == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.strs(dl.TablesAdded)
	e.strs(dl.TablesDropped)
	e.i64(int64(dl.NBornWithTable))
	e.i64(int64(dl.NInjected))
	e.i64(int64(dl.NDeletedWithTable))
	e.i64(int64(dl.NEjected))
	e.i64(int64(dl.NTypeChanged))
	e.i64(int64(dl.NKeyChanged))
	e.cnt(len(dl.Changes), dl.Changes == nil)
	for i := range dl.Changes {
		ch := &dl.Changes[i]
		e.str(ch.Table)
		e.str(ch.Attr)
		e.i64(int64(ch.Kind))
	}
}

// flatTotals are the slab sizes written ahead of the table pool so the
// decoder can allocate each element kind once.
type flatTotals struct {
	cols, strs, uniq, fks, deltas, changes, notes uint32
}

func (e *flatEnc) history(h *history.History) {
	if h == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.str(h.Project)
	e.str(h.DDLPath)

	// Walk the versions once to build the deduplicated table pool and the
	// per-version index lists, accumulating slab totals along the way. The
	// pool is encoded into a side buffer sharing this encoder's arena, so
	// its string references are final when spliced into the stream.
	pool := &flatEnc{ar: e.ar}
	byPtr := make(map[*schema.Table]uint32)
	byVal := make(map[string]uint32)
	refs := make([][]uint32, len(h.Versions))
	var tot flatTotals
	var npool uint32
	assign := func(t *schema.Table) uint32 {
		if i, ok := byPtr[t]; ok {
			return i
		}
		start := len(pool.buf)
		pool.table(t)
		key := string(pool.buf[start:])
		if i, ok := byVal[key]; ok {
			// Value-equal to an already pooled table under a different
			// pointer: discard the re-encoded bytes, reuse the index.
			pool.buf = pool.buf[:start]
			byPtr[t] = i
			return i
		}
		i := npool
		npool++
		byVal[key] = i
		byPtr[t] = i
		tot.cols += uint32(len(t.Columns))
		tot.strs += uint32(len(t.PrimaryKey))
		tot.fks += uint32(len(t.ForeignKeys))
		for j := range t.ForeignKeys {
			tot.strs += uint32(len(t.ForeignKeys[j].Columns) + len(t.ForeignKeys[j].RefColumns))
		}
		tot.uniq += uint32(len(t.Uniques))
		for _, u := range t.Uniques {
			tot.strs += uint32(len(u))
		}
		return i
	}
	for i := range h.Versions {
		v := &h.Versions[i]
		if v.Schema != nil {
			ts := v.Schema.Tables()
			rs := make([]uint32, len(ts))
			for k, t := range ts {
				rs[k] = assign(t)
			}
			refs[i] = rs
		}
		if v.Delta != nil {
			tot.deltas++
			tot.changes += uint32(len(v.Delta.Changes))
			tot.strs += uint32(len(v.Delta.TablesAdded) + len(v.Delta.TablesDropped))
		}
		tot.notes += uint32(len(v.Notes))
	}

	e.u32(npool)
	e.u32(tot.cols)
	e.u32(tot.strs)
	e.u32(tot.uniq)
	e.u32(tot.fks)
	e.u32(tot.deltas)
	e.u32(tot.changes)
	e.u32(tot.notes)
	e.buf = append(e.buf, pool.buf...)

	e.cnt(len(h.Versions), h.Versions == nil)
	for i := range h.Versions {
		v := &h.Versions[i]
		e.i64(int64(v.Seq))
		e.when(v.Time)
		if v.Schema == nil {
			e.u8(0)
		} else {
			e.u8(1)
			e.u32(uint32(len(refs[i])))
			for _, r := range refs[i] {
				e.u32(r)
			}
		}
		e.delta(v.Delta)
		e.cnt(len(v.Notes), v.Notes == nil)
		for j := range v.Notes {
			e.i64(int64(v.Notes[j].Stmt))
			e.str(v.Notes[j].Msg)
		}
	}
	e.when(h.Start)
	e.when(h.End)
	e.ints(h.SchemaMonthly)
	e.ints(h.SourceMonthly)
	e.i64(int64(h.ExpansionTotal))
	e.i64(int64(h.MaintenanceTotal))
}

func (e *flatEnc) measures(m *metrics.Measures) {
	e.str(m.Project)
	e.i64(int64(m.PUPMonths))
	e.bool8(m.HasSchema)
	e.i64(int64(m.BirthMonth))
	e.f64(m.BirthPct)
	e.f64(m.BirthVolumePct)
	e.i64(int64(m.TopBandMonth))
	e.f64(m.TopBandPct)
	e.f64(m.IntervalBirthToTopPct)
	e.f64(m.IntervalTopToEndPct)
	e.bool8(m.HasVault)
	e.i64(int64(m.ActiveGrowthMonths))
	e.f64(m.ActivePctGrowth)
	e.f64(m.ActivePctPUP)
	e.i64(int64(m.TotalActivity))
	e.i64(int64(m.Expansion))
	e.i64(int64(m.Maintenance))
	e.i64(int64(m.TablesAtBirth))
	e.i64(int64(m.AttrsAtBirth))
	e.i64(int64(m.TablesAtEnd))
	e.i64(int64(m.AttrsAtEnd))
	e.cnt(len(m.Vector), m.Vector == nil)
	for _, v := range m.Vector {
		e.f64(v)
	}
}

// encodeEntry serializes a cache entry in the flat format. Encoding is
// deterministic: value-equal entries produce identical bytes, which the
// result store's content addressing and the differential tests rely on.
func encodeEntry(e *cacheEntry) []byte {
	ar := &flatArena{intern: make(map[string]flatRef, 64)}
	w := &flatEnc{buf: make([]byte, flatHeaderSize, 16<<10), ar: ar}
	w.str(e.Fingerprint)
	w.str(e.Project)
	w.history(e.History)
	w.measures(&e.Measures)
	copy(w.buf[0:4], flatMagic[:])
	binary.LittleEndian.PutUint32(w.buf[4:8], uint32(e.Version))
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(len(w.buf)))
	binary.LittleEndian.PutUint64(w.buf[16:24], uint64(len(ar.data)))
	if e.History != nil {
		w.buf[24] = byte(e.History.Dialect)
	}
	return append(w.buf, ar.data...)
}

// flatDec reads the fixed-width stream of one entry. All reads are
// bounded by the arena offset (the stream may not reach into the arena)
// and all string references are bounds-checked against the arena, so a
// truncated or bit-flipped file can never index out of range. Returned
// strings alias the input buffer.
type flatDec struct {
	buf   []byte
	off   int
	end   int // arena offset: exclusive bound of the field stream
	arena []byte
	err   error
}

func (d *flatDec) fail() {
	if d.err == nil {
		d.err = errCorruptEntry
	}
}

func (d *flatDec) u8() byte {
	if d.err != nil || d.off >= d.end {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *flatDec) bool8() bool { return d.u8() != 0 }

func (d *flatDec) u32() uint32 {
	if d.err != nil || d.off+4 > d.end {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *flatDec) u64() uint64 {
	if d.err != nil || d.off+8 > d.end {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *flatDec) i64() int64   { return int64(d.u64()) }
func (d *flatDec) f64() float64 { return math.Float64frombits(d.u64()) }

// str resolves an arena reference into a zero-copy string view.
func (d *flatDec) str() string {
	off := d.u32()
	n := d.u32()
	if n == 0 || d.err != nil {
		return ""
	}
	if uint64(off)+uint64(n) > uint64(len(d.arena)) {
		d.fail()
		return ""
	}
	return unsafe.String(&d.arena[off], int(n))
}

// cnt decodes a slice length; n < 0 means the slice was nil. As in the
// variable-width codec, elemSize is the minimum encoded size of one
// element, bounding the length against the remaining stream bytes so a
// crafted count cannot force overallocation.
func (d *flatDec) cnt(elemSize int) int {
	v := d.u32()
	if v == 0 || d.err != nil {
		return -1
	}
	if uint64(v-1) > uint64(d.end-d.off)/uint64(elemSize) {
		d.fail()
		return -1
	}
	return int(v - 1)
}

// total decodes a plain (non-nilable) u32 element count with the same
// remaining-bytes bound as cnt.
func (d *flatDec) total(elemSize int) int {
	v := d.u32()
	if d.err != nil {
		return 0
	}
	if uint64(v) > uint64(d.end-d.off)/uint64(elemSize) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *flatDec) when() time.Time {
	ns := int64(d.u64())
	off := int(d.i64())
	t := time.Unix(0, ns)
	if off == 0 {
		return t.UTC()
	}
	return t.In(time.FixedZone("", off))
}

func (d *flatDec) ints() []int {
	n := d.cnt(8)
	if n < 0 || d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i64())
	}
	return out
}

// flatSlabs hands out decoded elements from per-kind slabs sized by the
// encoded totals. Exhausting a slab (totals inconsistent with the actual
// counts) is corruption.
type flatSlabs struct {
	cols    []schema.Column
	strs    []string
	uniq    [][]string
	fks     []schema.ForeignKey
	deltas  []diff.Delta
	changes []diff.AttrChange
	notes   []schema.Note
}

// strsInto decodes a string slice out of the shared string-element slab.
func (d *flatDec) strsInto(sl *flatSlabs) []string {
	n := d.cnt(8)
	if n < 0 || d.err != nil {
		return nil
	}
	if n > len(sl.strs) {
		d.fail()
		return nil
	}
	out := sl.strs[:n:n]
	sl.strs = sl.strs[n:]
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *flatDec) table(t *schema.Table, sl *flatSlabs) {
	t.Name = d.str()
	if n := d.cnt(25); n >= 0 { // column: 3 refs + flags byte
		if n > len(sl.cols) {
			d.fail()
			return
		}
		t.Columns = sl.cols[:n:n]
		sl.cols = sl.cols[n:]
		for i := range t.Columns {
			c := &t.Columns[i]
			c.Name = d.str()
			c.Type = d.str()
			c.Default = d.str()
			f := d.u8()
			c.NotNull = f&1 != 0
			c.HasDefault = f&2 != 0
			c.AutoIncrement = f&4 != 0
			c.InPK = f&8 != 0
		}
	}
	t.PrimaryKey = d.strsInto(sl)
	if n := d.cnt(24); n >= 0 { // foreign key: 2 refs + 2 counts
		if n > len(sl.fks) {
			d.fail()
			return
		}
		t.ForeignKeys = sl.fks[:n:n]
		sl.fks = sl.fks[n:]
		for i := range t.ForeignKeys {
			fk := &t.ForeignKeys[i]
			fk.Name = d.str()
			fk.Columns = d.strsInto(sl)
			fk.RefTable = d.str()
			fk.RefColumns = d.strsInto(sl)
		}
	}
	if n := d.cnt(4); n >= 0 { // unique: one count
		if n > len(sl.uniq) {
			d.fail()
			return
		}
		t.Uniques = sl.uniq[:n:n]
		sl.uniq = sl.uniq[n:]
		for i := range t.Uniques {
			t.Uniques[i] = d.strsInto(sl)
		}
	}
}

func (d *flatDec) delta(sl *flatSlabs) *diff.Delta {
	if d.u8() == 0 {
		return nil
	}
	if len(sl.deltas) == 0 {
		d.fail()
		return nil
	}
	dl := &sl.deltas[0]
	sl.deltas = sl.deltas[1:]
	dl.TablesAdded = d.strsInto(sl)
	dl.TablesDropped = d.strsInto(sl)
	dl.NBornWithTable = int(d.i64())
	dl.NInjected = int(d.i64())
	dl.NDeletedWithTable = int(d.i64())
	dl.NEjected = int(d.i64())
	dl.NTypeChanged = int(d.i64())
	dl.NKeyChanged = int(d.i64())
	if n := d.cnt(24); n >= 0 { // attr change: 2 refs + kind
		if n > len(sl.changes) {
			d.fail()
			return dl
		}
		dl.Changes = sl.changes[:n:n]
		sl.changes = sl.changes[n:]
		for i := range dl.Changes {
			dl.Changes[i].Table = d.str()
			dl.Changes[i].Attr = d.str()
			dl.Changes[i].Kind = diff.ChangeKind(d.i64())
		}
	}
	return dl
}

func (d *flatDec) notesInto(sl *flatSlabs) []schema.Note {
	n := d.cnt(16) // note: stmt + msg ref
	if n < 0 || d.err != nil {
		return nil
	}
	if n > len(sl.notes) {
		d.fail()
		return nil
	}
	out := sl.notes[:n:n]
	sl.notes = sl.notes[n:]
	for i := range out {
		out[i].Stmt = int(d.i64())
		out[i].Msg = d.str()
	}
	return out
}

func (d *flatDec) history() *history.History {
	if d.u8() == 0 {
		return nil
	}
	h := &history.History{Project: d.str(), DDLPath: d.str()}
	// table: name ref + 4 counts
	npool := d.total(24)
	sl := flatSlabs{}
	if n := d.total(25); d.err == nil {
		sl.cols = make([]schema.Column, n)
	}
	if n := d.total(8); d.err == nil {
		sl.strs = make([]string, n)
	}
	if n := d.total(4); d.err == nil {
		sl.uniq = make([][]string, n)
	}
	if n := d.total(24); d.err == nil {
		sl.fks = make([]schema.ForeignKey, n)
	}
	if n := d.total(60); d.err == nil { // delta: 2 counts + 6 ints + count
		sl.deltas = make([]diff.Delta, n)
	}
	if n := d.total(24); d.err == nil {
		sl.changes = make([]diff.AttrChange, n)
	}
	if n := d.total(16); d.err == nil {
		sl.notes = make([]schema.Note, n)
	}
	if d.err != nil {
		return h
	}
	tstructs := make([]schema.Table, npool)
	pool := make([]*schema.Table, npool)
	for i := range tstructs {
		if d.err != nil {
			break
		}
		d.table(&tstructs[i], &sl)
		pool[i] = &tstructs[i]
	}
	// version: seq + time + 2 presence bytes + notes count
	if nv := d.cnt(30); nv >= 0 {
		h.Versions = make([]history.Version, nv)
		for i := range h.Versions {
			if d.err != nil {
				break
			}
			v := &h.Versions[i]
			v.Seq = int(d.i64())
			v.Time = d.when()
			if d.u8() != 0 {
				nt := d.total(4) // table reference: u32 pool index
				s := schema.NewWithCapacity(nt)
				for k := 0; k < nt && d.err == nil; k++ {
					idx := d.u32()
					if uint64(idx) >= uint64(len(pool)) {
						d.fail()
						break
					}
					s.AddTable(pool[idx])
				}
				// Decoded snapshots are published artifacts, sealed exactly
				// like the freshly computed ones they must be
				// indistinguishable from; the pool tables are shared across
				// versions, so sealing is also what routes any later
				// mutation through copy-on-write.
				s.Seal()
				v.Schema = s
			}
			v.Delta = d.delta(&sl)
			v.Notes = d.notesInto(&sl)
		}
	}
	h.Start = d.when()
	h.End = d.when()
	h.SchemaMonthly = d.ints()
	h.SourceMonthly = d.ints()
	h.ExpansionTotal = int(d.i64())
	h.MaintenanceTotal = int(d.i64())
	return h
}

func (d *flatDec) measures() metrics.Measures {
	var m metrics.Measures
	m.Project = d.str()
	m.PUPMonths = int(d.i64())
	m.HasSchema = d.bool8()
	m.BirthMonth = int(d.i64())
	m.BirthPct = d.f64()
	m.BirthVolumePct = d.f64()
	m.TopBandMonth = int(d.i64())
	m.TopBandPct = d.f64()
	m.IntervalBirthToTopPct = d.f64()
	m.IntervalTopToEndPct = d.f64()
	m.HasVault = d.bool8()
	m.ActiveGrowthMonths = int(d.i64())
	m.ActivePctGrowth = d.f64()
	m.ActivePctPUP = d.f64()
	m.TotalActivity = int(d.i64())
	m.Expansion = int(d.i64())
	m.Maintenance = int(d.i64())
	m.TablesAtBirth = int(d.i64())
	m.AttrsAtBirth = int(d.i64())
	m.TablesAtEnd = int(d.i64())
	m.AttrsAtEnd = int(d.i64())
	if n := d.cnt(8); n >= 0 {
		m.Vector = make([]float64, n)
		for i := range m.Vector {
			m.Vector[i] = d.f64()
		}
	}
	return m
}

// decodeEntry deserializes a flat cache entry, failing on any truncation,
// trailing garbage, version mismatch, or magic/bounds violation. Strings
// in the returned entry alias data; the caller must not mutate or unmap
// the buffer while the entry is reachable.
func decodeEntry(data []byte) (*cacheEntry, error) {
	if len(data) < flatHeaderSize || string(data[0:4]) != string(flatMagic[:]) {
		return nil, errCorruptEntry
	}
	version := binary.LittleEndian.Uint32(data[4:8])
	arenaOff := binary.LittleEndian.Uint64(data[8:16])
	arenaLen := binary.LittleEndian.Uint64(data[16:24])
	if version != cacheFormatVersion {
		return nil, fmt.Errorf("%w: format version %d", errCorruptEntry, version)
	}
	if arenaOff < flatHeaderSize || arenaOff > uint64(len(data)) || arenaLen != uint64(len(data))-arenaOff {
		return nil, fmt.Errorf("%w: arena bounds [%d,+%d) outside %d-byte entry", errCorruptEntry, arenaOff, arenaLen, len(data))
	}
	dia := sqlddl.DialectID(data[24])
	if !dia.Valid() {
		return nil, fmt.Errorf("%w: dialect tag %d", errCorruptEntry, data[24])
	}
	for _, b := range data[25:32] {
		if b != 0 {
			return nil, fmt.Errorf("%w: nonzero reserved header byte", errCorruptEntry)
		}
	}
	d := &flatDec{buf: data, off: flatHeaderSize, end: int(arenaOff), arena: data[arenaOff:]}
	e := &cacheEntry{Version: int(version)}
	e.Fingerprint = d.str()
	e.Project = d.str()
	e.History = d.history()
	if e.History != nil {
		e.History.Dialect = dia
	} else if dia != sqlddl.DialectGeneric {
		// A dialect tag with no history to hang it on is not a state the
		// encoder produces.
		return nil, fmt.Errorf("%w: dialect tag %d on history-less entry", errCorruptEntry, data[24])
	}
	e.Measures = d.measures()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != d.end {
		return nil, fmt.Errorf("%w: %d trailing stream bytes", errCorruptEntry, d.end-d.off)
	}
	return e, nil
}
