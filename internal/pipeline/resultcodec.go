package pipeline

import (
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
)

// CachedResult is the exported view of one memoized analysis entry: the
// expensive derived artifacts of a single project, keyed by its content
// fingerprint. It is the unit the analysis service's in-memory result
// store holds, serialized with the same binary codec (and therefore the
// same byte layout) as the on-disk cache entries.
type CachedResult struct {
	Fingerprint string
	Project     string
	History     *history.History
	Measures    metrics.Measures
}

// EncodeResult serializes a result with the cache-entry codec. The bytes
// round-trip exactly through DecodeResult; they carry no checksum trailer
// (in-memory stores do not bit-rot — the disk cache adds CRC-32C
// separately via its seal/unseal layer).
func EncodeResult(r *CachedResult) []byte {
	return encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: r.Fingerprint,
		Project:     r.Project,
		History:     r.History,
		Measures:    r.Measures,
	})
}

// DecodeResult deserializes EncodeResult bytes, failing on truncation,
// trailing garbage, or a codec-version mismatch.
func DecodeResult(data []byte) (*CachedResult, error) {
	e, err := decodeEntry(data)
	if err != nil {
		return nil, err
	}
	if e.Version != cacheFormatVersion {
		return nil, errCorruptEntry
	}
	return &CachedResult{
		Fingerprint: e.Fingerprint,
		Project:     e.Project,
		History:     e.History,
		Measures:    e.Measures,
	}, nil
}
