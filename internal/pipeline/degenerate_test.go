package pipeline

import (
	"context"
	"testing"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

// degenerateCorpus builds projects at the edges of the lifetime model:
// a project whose whole history fits in one calendar month (the shortest
// legal PUP), and a project whose DDL file is deleted and later recreated
// (the schema dies to an empty snapshot and is reborn). Analysis mutates
// projects, so every caller gets a fresh copy.
func degenerateCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	mk := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 10, 0, 0, 0, time.UTC)
	}
	oneMonth := &vcs.Repo{Name: "one-month", Commits: []vcs.Commit{
		{ID: "0", Time: mk(2021, 3, 2), Files: map[string]string{"db.sql": "CREATE TABLE a (x INT);"}, SrcLines: 10},
		{ID: "1", Time: mk(2021, 3, 15), Files: map[string]string{"db.sql": "CREATE TABLE a (x INT, y INT);"}, SrcLines: 4},
		{ID: "2", Time: mk(2021, 3, 30), Files: map[string]string{"db.sql": "CREATE TABLE a (x INT, y INT);\nCREATE TABLE b (z INT);"}, SrcLines: 7},
	}}
	reborn := &vcs.Repo{Name: "reborn-ddl", Commits: []vcs.Commit{
		{ID: "0", Time: mk(2020, 1, 5), Files: map[string]string{"db.sql": "CREATE TABLE a (x INT, y INT);"}, SrcLines: 20},
		{ID: "1", Time: mk(2020, 4, 5), Files: map[string]string{"main.go": "x"}, Deleted: []string{"db.sql"}, SrcLines: 3},
		{ID: "2", Time: mk(2020, 9, 5), Files: map[string]string{"db.sql": "CREATE TABLE c (p INT, q INT, r INT);"}, SrcLines: 9},
		{ID: "3", Time: mk(2021, 2, 5), Files: map[string]string{"main.go": "y"}, SrcLines: 2},
	}}
	for _, r := range []*vcs.Repo{oneMonth, reborn} {
		if err := r.Validate(); err != nil {
			t.Fatalf("fixture %s: %v", r.Name, err)
		}
	}
	return &corpus.Corpus{Projects: []*corpus.Project{
		{Name: oneMonth.Name, Repo: oneMonth},
		{Name: reborn.Name, Repo: reborn},
	}}
}

// TestDegenerateLifetimes drives the edge-case projects through the
// sequential analyzer and the full parallel pipeline, cold and warm
// cache, and requires identical results everywhere — plus the shape
// invariants that make these histories degenerate in the first place.
func TestDegenerateLifetimes(t *testing.T) {
	scheme := quantize.DefaultScheme()

	seq := degenerateCorpus(t)
	if err := seq.Analyze(scheme); err != nil {
		t.Fatal(err)
	}

	cacheDir := t.TempDir()
	for _, phase := range []string{"cold", "warm"} {
		c := degenerateCorpus(t)
		stats, err := Run(context.Background(), c, Options{CacheDir: cacheDir})
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}
		if stats.Failed != 0 {
			t.Fatalf("%s: %d projects failed: %s", phase, stats.Failed, stats.Degradation.Render())
		}
		wantHits := 0
		if phase == "warm" {
			wantHits = c.Len()
		}
		if stats.CacheHits != wantHits {
			t.Errorf("%s: cache hits = %d, want %d", phase, stats.CacheHits, wantHits)
		}
		assertSameAnalysis(t, "seq vs pipeline "+phase, seq, c)

		one := c.Projects[0]
		if months := one.History.Months(); months != 1 {
			t.Errorf("%s: one-month lifetime = %d months, want 1", phase, months)
		}
		if one.Measures.PUPMonths != 1 {
			t.Errorf("%s: one-month PUPMonths = %d, want 1", phase, one.Measures.PUPMonths)
		}
		if act := one.History.TotalActivity(); act == 0 || one.History.SchemaMonthly[0] != act {
			t.Errorf("%s: one-month activity %v not concentrated in its single month", phase, one.History.SchemaMonthly)
		}

		reb := c.Projects[1]
		if n := len(reb.History.Versions); n != 3 {
			t.Fatalf("%s: reborn versions = %d, want 3 (create, delete, recreate)", phase, n)
		}
		if tables := reb.History.Versions[1].Schema.Tables(); len(tables) != 0 {
			t.Errorf("%s: deleted DDL snapshot still has %d tables", phase, len(tables))
		}
		if tables := reb.History.Versions[2].Schema.Tables(); len(tables) != 1 {
			t.Errorf("%s: recreated DDL snapshot has %d tables, want 1", phase, len(tables))
		}
		if reb.History.MaintenanceTotal == 0 {
			t.Errorf("%s: deletion recorded no maintenance activity", phase)
		}
	}
}

// TestDegenerateLifetimesParallelWorkers runs the same corpus through the
// pipeline at several worker counts; degenerate histories must not depend
// on scheduling.
func TestDegenerateLifetimesParallelWorkers(t *testing.T) {
	scheme := quantize.DefaultScheme()
	seq := degenerateCorpus(t)
	if err := seq.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		c := degenerateCorpus(t)
		_, err := Run(context.Background(), c, Options{
			ParseWorkers: w, AssembleWorkers: w, MetricsWorkers: w,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		assertSameAnalysis(t, "degenerate workers", seq, c)
	}
}
