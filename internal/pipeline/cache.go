package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/vcs"
)

// cacheFormatVersion is bumped whenever the entry layout or the meaning of
// the memoized computation changes; entries with another version are
// treated as misses. Version 2 switched the entry body from JSON to the
// binary codec (see codec.go).
const cacheFormatVersion = 2

// Fingerprint returns a content hash of everything the analysis pipeline
// reads from a repository: the repo name, every commit's timestamp and
// source-line count, the content of every DDL snapshot, and DDL deletions.
// Two repos with equal fingerprints yield byte-identical history and
// measures, so the fingerprint is a sound memoization key. Non-DDL file
// contents are deliberately excluded: the pipeline only consumes their
// per-commit SrcLines aggregate, which is hashed.
func Fingerprint(r *vcs.Repo) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeInt(cacheFormatVersion)
	writeStr(r.Name)
	writeInt(int64(len(r.Commits)))
	for _, c := range r.Commits {
		writeInt(c.Time.UnixNano())
		writeInt(int64(c.SrcLines))
		paths := make([]string, 0, len(c.Files))
		for p := range c.Files {
			if vcs.IsDDLPath(p) {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		writeInt(int64(len(paths)))
		for _, p := range paths {
			writeStr(p)
			writeStr(c.Files[p])
		}
		var deleted []string
		for _, p := range c.Deleted {
			if vcs.IsDDLPath(p) {
				deleted = append(deleted, p)
			}
		}
		sort.Strings(deleted)
		writeInt(int64(len(deleted)))
		for _, p := range deleted {
			writeStr(p)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the persisted form of one project's memoized analysis:
// the reconstructed history and the computed measures. Labels are cheap
// and scheme-dependent, so they are always recomputed. Entries are
// serialized with the binary codec in codec.go.
type cacheEntry struct {
	Version     int
	Fingerprint string
	Project     string
	History     *history.History
	Measures    metrics.Measures
}

// diskCache memoizes analysis results under a directory, one file per
// repository fingerprint. All methods are safe for concurrent use:
// files are written atomically (temp + rename) and the counters are
// atomics. A nil *diskCache is a valid no-op cache.
type diskCache struct {
	dir    string
	hits   atomic.Int64
	misses atomic.Int64
	writes atomic.Int64
	errs   atomic.Int64
}

// openCache prepares a cache rooted at dir, creating it if needed.
func openCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

func (c *diskCache) path(fingerprint string) string {
	return filepath.Join(c.dir, fingerprint+".sevc")
}

// load returns the memoized entry for the fingerprint, or nil on a miss.
// Corrupt or mismatched entries count as misses (and as cache errors when
// unreadable), never as failures: the pipeline just recomputes.
func (c *diskCache) load(fingerprint string) *cacheEntry {
	if c == nil {
		return nil
	}
	data, err := os.ReadFile(c.path(fingerprint))
	if err != nil {
		if !os.IsNotExist(err) {
			c.errs.Add(1)
		}
		c.misses.Add(1)
		return nil
	}
	e, err := decodeEntry(data)
	if err != nil || e.Version != cacheFormatVersion || e.Fingerprint != fingerprint {
		c.errs.Add(1)
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// store persists an entry; failures are counted but non-fatal (the cache
// is an accelerator, not a source of truth).
func (c *diskCache) store(fingerprint, project string, h *history.History, m metrics.Measures) {
	if c == nil {
		return
	}
	data := encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: fingerprint,
		Project:     project,
		History:     h,
		Measures:    m,
	})
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		c.errs.Add(1)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), c.path(fingerprint)); err != nil {
		os.Remove(tmp.Name())
		c.errs.Add(1)
		return
	}
	c.writes.Add(1)
}
