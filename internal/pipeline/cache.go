package pipeline

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"schemaevo/internal/faultinject"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// cacheFormatVersion is bumped whenever the entry layout or the meaning of
// the memoized computation changes; entries with another version are
// treated as misses. Version 2 switched the entry body from JSON to a
// binary codec; version 3 added the whole-file CRC-32C integrity trailer;
// version 4 replaced the decode-loop layout with the flat, mmap-friendly
// format in flatcodec.go (string arena + deduplicated table pool);
// version 5 widened the flat header to 32 bytes with the history's SQL
// dialect tag and made the dialect part of the fingerprint.
const cacheFormatVersion = 5

// Fingerprint returns a content hash of everything the analysis pipeline
// reads from a repository: the repo name, every commit's timestamp and
// source-line count, the content of every DDL snapshot, and DDL deletions.
// Two repos with equal fingerprints yield byte-identical history and
// measures, so the fingerprint is a sound memoization key. Non-DDL file
// contents are deliberately excluded: the pipeline only consumes their
// per-commit SrcLines aggregate, which is hashed.
//
// Fingerprint hashes under the default (generic) dialect; it equals
// FingerprintDialect(r, "").
func Fingerprint(r *vcs.Repo) string { return FingerprintDialect(r, "") }

// FingerprintDialect is Fingerprint under a dialect selection. The
// dialect changes which grammar parses the hashed DDL content, so it is
// part of the memoization key: "" and "generic" collapse to the same
// (untagged) key, every other value — "auto" included — is hashed
// verbatim. "auto" is a sound tag even though it names a selection rule
// rather than one grammar: detection is a pure function of the first
// surviving DDL snapshot, which is hashed, so equal auto-fingerprints
// resolve to the same dialect.
func FingerprintDialect(r *vcs.Repo, dialect string) string {
	if dialect == "generic" {
		dialect = ""
	}
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeInt(cacheFormatVersion)
	writeStr(dialect)
	writeStr(r.Name)
	writeInt(int64(len(r.Commits)))
	for _, c := range r.Commits {
		writeInt(c.Time.UnixNano())
		writeInt(int64(c.SrcLines))
		paths := make([]string, 0, len(c.Files))
		for p := range c.Files {
			if vcs.IsDDLPath(p) {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		writeInt(int64(len(paths)))
		for _, p := range paths {
			writeStr(p)
			writeStr(c.Files[p])
		}
		var deleted []string
		for _, p := range c.Deleted {
			if vcs.IsDDLPath(p) {
				deleted = append(deleted, p)
			}
		}
		sort.Strings(deleted)
		writeInt(int64(len(deleted)))
		for _, p := range deleted {
			writeStr(p)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the persisted form of one project's memoized analysis:
// the reconstructed history and the computed measures. Labels are cheap
// and scheme-dependent, so they are always recomputed. Entries are
// serialized with the binary codec in codec.go and sealed with a CRC-32C
// trailer.
type cacheEntry struct {
	Version     int
	Fingerprint string
	Project     string
	History     *history.History
	Measures    metrics.Measures
}

// corruptDirName is the subdirectory entries failing their integrity
// check are moved to, preserved for inspection instead of deleted.
const corruptDirName = "corrupt"

// Quarantined entries are kept for inspection, not forever: the reaper
// deletes files older than corruptMaxAge and, beyond that, the oldest
// files past corruptMaxFiles. Bounds the directory on long-lived
// deployments where bit-rot trickles in indefinitely.
const (
	corruptMaxFiles = 32
	corruptMaxAge   = 7 * 24 * time.Hour
)

// diskCache memoizes analysis results under a directory, one file per
// repository fingerprint. All methods are safe for concurrent use:
// files are written atomically (temp + rename) and the counters are
// atomics. Transient filesystem faults are retried with backoff; entries
// that fail their checksum are quarantined to <dir>/corrupt/ and read as
// misses, so a crash mid-write or bit-rot can never surface a wrong
// result. A nil *diskCache is a valid no-op cache.
type diskCache struct {
	dir     string
	fault   *faultinject.Injector
	tel     *telemetry.Collector
	ctx     context.Context
	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	errs    atomic.Int64
	corrupt atomic.Int64
}

// openCache prepares a cache rooted at dir, creating it if needed. fault
// optionally injects chaos at the cache.read/cache.write sites; tel
// optionally records cache telemetry; ctx bounds injected delays.
func openCache(dir string, fault *faultinject.Injector, tel *telemetry.Collector, ctx context.Context) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: cache dir: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := &diskCache{dir: dir, fault: fault, tel: tel, ctx: ctx}
	// A restart is the natural moment to age out quarantined entries
	// left by previous runs.
	c.reapCorrupt()
	return c, nil
}

// onRetry is the withRetry telemetry tap for cache filesystem operations.
// Returns nil when telemetry is off so the retry loop skips the call.
func (c *diskCache) onRetry() func() {
	if c.tel == nil {
		return nil
	}
	return func() { c.tel.CacheRetry() }
}

func (c *diskCache) path(fingerprint string) string {
	return filepath.Join(c.dir, fingerprint+".sevc")
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// seal appends the CRC-32C of data, producing the on-disk file image.
func seal(data []byte) []byte {
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(data, crcTable))
	return append(data, trailer[:]...)
}

// unseal verifies and strips the CRC-32C trailer.
func unseal(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the checksum trailer", errCorruptEntry, len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", errCorruptEntry)
	}
	return payload, nil
}

// readEntryFile reads one cache entry image, preferring a read-only
// memory mapping so the flat decoder can return zero-copy views over the
// file; platforms (or files, e.g. empty ones) where mapping fails fall
// back to an ordinary read, which decodes byte-identically. The release
// function is non-nil only for mappings and must be called on every path
// that does not publish a decoded entry; published entries pin their
// mapping for the life of the process (see mapFile).
func readEntryFile(path string) ([]byte, func(), error) {
	data, release, err := mapFile(path)
	if err == nil {
		return data, release, nil
	}
	if os.IsNotExist(err) {
		return nil, nil, err
	}
	b, rerr := os.ReadFile(path)
	return b, nil, rerr
}

// load returns the memoized entry for the fingerprint, or nil on a miss.
// Unreadable files are retried, then count as misses plus cache errors;
// entries failing the checksum or decode are quarantined for inspection
// and count as misses — never as failures: the pipeline just recomputes.
func (c *diskCache) load(fingerprint string) *cacheEntry {
	if c == nil {
		return nil
	}
	var data []byte
	var release func()
	err := withRetry(retryAttempts, retryBackoff, c.onRetry(), func() error {
		switch c.fault.At("cache.read", fingerprint) {
		case faultinject.KindErr:
			return &faultinject.Error{Site: "cache.read", Key: fingerprint}
		case faultinject.KindDelay:
			c.fault.Sleep(c.ctx)
		}
		var rerr error
		data, release, rerr = readEntryFile(c.path(fingerprint))
		return rerr
	})
	if err != nil {
		if !os.IsNotExist(err) {
			c.errs.Add(1)
			c.tel.CacheError()
		}
		c.misses.Add(1)
		c.tel.CacheMiss()
		return nil
	}
	if c.fault.At("cache.read.bytes", fingerprint) == faultinject.KindCorrupt {
		// Mangle a private copy: a mapping is read-only memory, and the
		// original file must stay intact for quarantine to preserve it.
		data = append([]byte(nil), data...)
		if release != nil {
			release()
			release = nil
		}
		c.fault.Mangle(data, fingerprint)
	}
	payload, err := unseal(data)
	var e *cacheEntry
	if err == nil {
		e, err = decodeEntry(payload)
	}
	if err != nil || e.Version != cacheFormatVersion || e.Fingerprint != fingerprint {
		if release != nil {
			release()
		}
		c.tel.CacheCorrupt()
		c.quarantine(fingerprint)
		c.errs.Add(1)
		c.tel.CacheError()
		c.misses.Add(1)
		c.tel.CacheMiss()
		return nil
	}
	// On the mapped path the entry's strings alias the mapping, which is
	// deliberately never unmapped from here on (see mapFile).
	c.hits.Add(1)
	c.tel.CacheHit(int64(len(data)))
	return e
}

// quarantine moves an entry that failed its integrity check into
// <dir>/corrupt/ so it can be inspected; if the move fails the entry is
// deleted, because a poisoned file must never be re-read as a hit.
func (c *diskCache) quarantine(fingerprint string) {
	c.corrupt.Add(1)
	c.tel.CacheQuarantine()
	src := c.path(fingerprint)
	dir := filepath.Join(c.dir, corruptDirName)
	if os.MkdirAll(dir, 0o755) == nil {
		if os.Rename(src, filepath.Join(dir, fingerprint+".sevc")) == nil {
			c.reapCorrupt()
			return
		}
	}
	os.Remove(src)
}

// reapCorrupt enforces the quarantine retention policy: delete files in
// <dir>/corrupt/ older than corruptMaxAge, then the oldest files beyond
// corruptMaxFiles. Every deletion is counted via telemetry; failures are
// ignored — retention is hygiene, not correctness, and the next pass
// retries. Concurrent reapers at worst race on os.Remove, which is
// idempotent (only successful removals are counted).
func (c *diskCache) reapCorrupt() {
	dir := filepath.Join(c.dir, corruptDirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var files []aged
	now := time.Now()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > corruptMaxAge {
			if os.Remove(filepath.Join(dir, e.Name())) == nil {
				c.tel.CacheReap()
			}
			continue
		}
		files = append(files, aged{e.Name(), info.ModTime()})
	}
	if len(files) <= corruptMaxFiles {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for _, f := range files[:len(files)-corruptMaxFiles] {
		if os.Remove(filepath.Join(dir, f.name)) == nil {
			c.tel.CacheReap()
		}
	}
}

// store persists an entry; transient failures are retried, remaining
// failures are counted but non-fatal (the cache is an accelerator, not a
// source of truth).
func (c *diskCache) store(fingerprint, project string, h *history.History, m metrics.Measures) {
	if c == nil {
		return
	}
	data := seal(encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: fingerprint,
		Project:     project,
		History:     h,
		Measures:    m,
	}))
	if c.fault.At("cache.write.bytes", fingerprint) == faultinject.KindCorrupt {
		data = append([]byte(nil), data...)
		c.fault.Mangle(data, fingerprint)
	}
	err := withRetry(retryAttempts, retryBackoff, c.onRetry(), func() error {
		switch c.fault.At("cache.write", fingerprint) {
		case faultinject.KindErr:
			return &faultinject.Error{Site: "cache.write", Key: fingerprint}
		case faultinject.KindDelay:
			c.fault.Sleep(c.ctx)
		}
		return c.writeAtomic(fingerprint, data)
	})
	if err != nil {
		c.errs.Add(1)
		c.tel.CacheError()
		return
	}
	c.writes.Add(1)
	c.tel.CacheWrite(int64(len(data)))
}

// writeAtomic lands data at the entry path via temp file + rename, so
// concurrent readers see either the old complete entry or the new one,
// never a torn write.
func (c *diskCache) writeAtomic(fingerprint string, data []byte) error {
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), c.path(fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
