package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"schemaevo/internal/diff"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/schema"
)

// Cache entries are persisted in a hand-rolled binary format rather than
// JSON: a warm corpus load decodes tens of megabytes of history, and
// reflection-based JSON decoding turned out to cost more than recomputing
// the analysis from scratch (see BenchmarkCacheLoad). The format is
// length-prefixed little-endian, nil-preserving for slices and pointers,
// and versioned by cacheFormatVersion — bump it whenever the layout or any
// encoded struct changes shape, or stale entries would decode garbage.
//
// Layout conventions:
//   - ints are uint64 little-endian (two's complement for negatives)
//   - strings and slices carry 0 for nil, length+1 otherwise
//   - times are (UnixNano, zone offset seconds); the zone name is dropped,
//     matching what a JSON RFC 3339 round trip would preserve
//   - pointers carry a presence byte

var errCorruptEntry = errors.New("pipeline: corrupt cache entry")

// cacheMagic guards against feeding arbitrary files to the decoder.
var cacheMagic = [4]byte{'S', 'E', 'V', 'C'}

type enc struct{ buf []byte }

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *enc) int(v int)      { e.u64(uint64(int64(v))) }
func (e *enc) f64(v float64)  { e.u64(math.Float64bits(v)) }
func (e *enc) boolean(v bool) { e.buf = append(e.buf, b2u(v)) }
func (e *enc) bytes(p []byte) { e.buf = append(e.buf, p...) }
func (e *enc) str(s string)   { e.u64(uint64(len(s)) + 1); e.buf = append(e.buf, s...) }

// count encodes a slice length, distinguishing nil (0) from empty (1).
func (e *enc) count(n int, isNil bool) {
	if isNil {
		e.u64(0)
		return
	}
	e.u64(uint64(n) + 1)
}

func (e *enc) when(t time.Time) {
	e.u64(uint64(t.UnixNano()))
	_, off := t.Zone()
	e.int(off)
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errCorruptEntry
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) int() int     { return int(int64(d.u64())) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) boolean() bool {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}

func (d *dec) str() string {
	n := d.u64()
	if n == 0 {
		return ""
	}
	n--
	if d.err != nil || uint64(len(d.buf)-d.off) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count decodes a slice length; n < 0 means the slice was nil. elemSize
// is the minimum encoded size in bytes of one element of the slice being
// decoded. A length that could not possibly fit in the remaining bytes is
// corruption; the comparison is done in uint64 so a huge encoded value
// cannot wrap the int conversion into a negative (make panic) or a small
// positive (overallocation) length.
func (d *dec) count(elemSize int) int {
	v := d.u64()
	if v == 0 {
		return -1
	}
	if d.err != nil {
		return -1
	}
	if v-1 > uint64(len(d.buf)-d.off)/uint64(elemSize) {
		d.fail()
		return -1
	}
	return int(v - 1)
}

func (d *dec) when() time.Time {
	ns := int64(d.u64())
	off := d.int()
	t := time.Unix(0, ns)
	if off == 0 {
		return t.UTC()
	}
	return t.In(time.FixedZone("", off))
}

func encStrings(e *enc, ss []string) {
	e.count(len(ss), ss == nil)
	for _, s := range ss {
		e.str(s)
	}
}

func decStrings(d *dec) []string {
	n := d.count(8) // string: 8-byte length prefix
	if n < 0 || d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func encInts(e *enc, vs []int) {
	e.count(len(vs), vs == nil)
	for _, v := range vs {
		e.int(v)
	}
}

func decInts(d *dec) []int {
	n := d.count(8) // int: 8 bytes
	if n < 0 || d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.int()
	}
	return out
}

func encSchema(e *enc, s *schema.Schema) {
	if s == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	tables := s.Tables()
	e.count(len(tables), false)
	for _, t := range tables {
		e.str(t.Name)
		e.count(len(t.Columns), t.Columns == nil)
		for _, c := range t.Columns {
			e.str(c.Name)
			e.str(c.Type)
			e.boolean(c.NotNull)
			e.str(c.Default)
			e.boolean(c.HasDefault)
			e.boolean(c.AutoIncrement)
			e.boolean(c.InPK)
		}
		encStrings(e, t.PrimaryKey)
		e.count(len(t.ForeignKeys), t.ForeignKeys == nil)
		for _, fk := range t.ForeignKeys {
			e.str(fk.Name)
			encStrings(e, fk.Columns)
			e.str(fk.RefTable)
			encStrings(e, fk.RefColumns)
		}
		e.count(len(t.Uniques), t.Uniques == nil)
		for _, u := range t.Uniques {
			encStrings(e, u)
		}
	}
}

func decSchema(d *dec) *schema.Schema {
	if !d.boolean() {
		return nil
	}
	s := schema.New()
	n := d.count(40) // table: 5 length/count prefixes at minimum
	for i := 0; i < n && d.err == nil; i++ {
		t := &schema.Table{Name: d.str()}
		if nc := d.count(28); nc >= 0 { // column: 3 string prefixes + 4 bools
			t.Columns = make([]schema.Column, nc)
			for j := range t.Columns {
				c := &t.Columns[j]
				c.Name = d.str()
				c.Type = d.str()
				c.NotNull = d.boolean()
				c.Default = d.str()
				c.HasDefault = d.boolean()
				c.AutoIncrement = d.boolean()
				c.InPK = d.boolean()
			}
		}
		t.PrimaryKey = decStrings(d)
		if nf := d.count(32); nf >= 0 { // foreign key: 4 length/count prefixes
			t.ForeignKeys = make([]schema.ForeignKey, nf)
			for j := range t.ForeignKeys {
				fk := &t.ForeignKeys[j]
				fk.Name = d.str()
				fk.Columns = decStrings(d)
				fk.RefTable = d.str()
				fk.RefColumns = decStrings(d)
			}
		}
		if nu := d.count(8); nu >= 0 { // unique: one count prefix
			t.Uniques = make([][]string, nu)
			for j := range t.Uniques {
				t.Uniques[j] = decStrings(d)
			}
		}
		s.AddTable(t)
	}
	// Decoded snapshots are published artifacts, sealed exactly like the
	// freshly computed ones they must be indistinguishable from.
	s.Seal()
	return s
}

func encDelta(e *enc, dl *diff.Delta) {
	if dl == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	encStrings(e, dl.TablesAdded)
	encStrings(e, dl.TablesDropped)
	e.int(dl.NBornWithTable)
	e.int(dl.NInjected)
	e.int(dl.NDeletedWithTable)
	e.int(dl.NEjected)
	e.int(dl.NTypeChanged)
	e.int(dl.NKeyChanged)
	e.count(len(dl.Changes), dl.Changes == nil)
	for _, ch := range dl.Changes {
		e.str(ch.Table)
		e.str(ch.Attr)
		e.int(int(ch.Kind))
	}
}

func decDelta(d *dec) *diff.Delta {
	if !d.boolean() {
		return nil
	}
	dl := &diff.Delta{}
	dl.TablesAdded = decStrings(d)
	dl.TablesDropped = decStrings(d)
	dl.NBornWithTable = d.int()
	dl.NInjected = d.int()
	dl.NDeletedWithTable = d.int()
	dl.NEjected = d.int()
	dl.NTypeChanged = d.int()
	dl.NKeyChanged = d.int()
	if n := d.count(24); n >= 0 { // attr change: 2 string prefixes + int
		dl.Changes = make([]diff.AttrChange, n)
		for i := range dl.Changes {
			dl.Changes[i].Table = d.str()
			dl.Changes[i].Attr = d.str()
			dl.Changes[i].Kind = diff.ChangeKind(d.int())
		}
	}
	return dl
}

func encNotes(e *enc, notes []schema.Note) {
	e.count(len(notes), notes == nil)
	for _, n := range notes {
		e.int(n.Stmt)
		e.str(n.Msg)
	}
}

func decNotes(d *dec) []schema.Note {
	n := d.count(16) // note: int + string prefix
	if n < 0 || d.err != nil {
		return nil
	}
	out := make([]schema.Note, n)
	for i := range out {
		out[i].Stmt = d.int()
		out[i].Msg = d.str()
	}
	return out
}

func encHistory(e *enc, h *history.History) {
	if h == nil {
		e.boolean(false)
		return
	}
	e.boolean(true)
	e.str(h.Project)
	e.str(h.DDLPath)
	e.count(len(h.Versions), h.Versions == nil)
	for i := range h.Versions {
		v := &h.Versions[i]
		e.int(v.Seq)
		e.when(v.Time)
		encSchema(e, v.Schema)
		encDelta(e, v.Delta)
		encNotes(e, v.Notes)
	}
	e.when(h.Start)
	e.when(h.End)
	encInts(e, h.SchemaMonthly)
	encInts(e, h.SourceMonthly)
	e.int(h.ExpansionTotal)
	e.int(h.MaintenanceTotal)
}

func decHistory(d *dec) *history.History {
	if !d.boolean() {
		return nil
	}
	h := &history.History{}
	h.Project = d.str()
	h.DDLPath = d.str()
	if n := d.count(34); n >= 0 { // version: int + time + 2 presence bytes + count
		h.Versions = make([]history.Version, n)
		for i := range h.Versions {
			if d.err != nil {
				break
			}
			v := &h.Versions[i]
			v.Seq = d.int()
			v.Time = d.when()
			v.Schema = decSchema(d)
			v.Delta = decDelta(d)
			v.Notes = decNotes(d)
		}
	}
	h.Start = d.when()
	h.End = d.when()
	h.SchemaMonthly = decInts(d)
	h.SourceMonthly = decInts(d)
	h.ExpansionTotal = d.int()
	h.MaintenanceTotal = d.int()
	return h
}

func encMeasures(e *enc, m *metrics.Measures) {
	e.str(m.Project)
	e.int(m.PUPMonths)
	e.boolean(m.HasSchema)
	e.int(m.BirthMonth)
	e.f64(m.BirthPct)
	e.f64(m.BirthVolumePct)
	e.int(m.TopBandMonth)
	e.f64(m.TopBandPct)
	e.f64(m.IntervalBirthToTopPct)
	e.f64(m.IntervalTopToEndPct)
	e.boolean(m.HasVault)
	e.int(m.ActiveGrowthMonths)
	e.f64(m.ActivePctGrowth)
	e.f64(m.ActivePctPUP)
	e.int(m.TotalActivity)
	e.int(m.Expansion)
	e.int(m.Maintenance)
	e.int(m.TablesAtBirth)
	e.int(m.AttrsAtBirth)
	e.int(m.TablesAtEnd)
	e.int(m.AttrsAtEnd)
	e.count(len(m.Vector), m.Vector == nil)
	for _, v := range m.Vector {
		e.f64(v)
	}
}

func decMeasures(d *dec) metrics.Measures {
	var m metrics.Measures
	m.Project = d.str()
	m.PUPMonths = d.int()
	m.HasSchema = d.boolean()
	m.BirthMonth = d.int()
	m.BirthPct = d.f64()
	m.BirthVolumePct = d.f64()
	m.TopBandMonth = d.int()
	m.TopBandPct = d.f64()
	m.IntervalBirthToTopPct = d.f64()
	m.IntervalTopToEndPct = d.f64()
	m.HasVault = d.boolean()
	m.ActiveGrowthMonths = d.int()
	m.ActivePctGrowth = d.f64()
	m.ActivePctPUP = d.f64()
	m.TotalActivity = d.int()
	m.Expansion = d.int()
	m.Maintenance = d.int()
	m.TablesAtBirth = d.int()
	m.AttrsAtBirth = d.int()
	m.TablesAtEnd = d.int()
	m.AttrsAtEnd = d.int()
	if n := d.count(8); n >= 0 { // float64: 8 bytes
		m.Vector = make([]float64, n)
		for i := range m.Vector {
			m.Vector[i] = d.f64()
		}
	}
	return m
}

// encodeEntry serializes a cache entry.
func encodeEntry(e *cacheEntry) []byte {
	w := &enc{buf: make([]byte, 0, 16<<10)}
	w.bytes(cacheMagic[:])
	w.int(e.Version)
	w.str(e.Fingerprint)
	w.str(e.Project)
	encHistory(w, e.History)
	encMeasures(w, &e.Measures)
	return w.buf
}

// decodeEntry deserializes a cache entry, failing on any truncation,
// trailing garbage, or magic/size mismatch.
func decodeEntry(data []byte) (*cacheEntry, error) {
	if len(data) < len(cacheMagic) || string(data[:len(cacheMagic)]) != string(cacheMagic[:]) {
		return nil, errCorruptEntry
	}
	d := &dec{buf: data, off: len(cacheMagic)}
	e := &cacheEntry{}
	e.Version = d.int()
	e.Fingerprint = d.str()
	e.Project = d.str()
	e.History = decHistory(d)
	e.Measures = decMeasures(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorruptEntry, len(data)-d.off)
	}
	return e, nil
}
