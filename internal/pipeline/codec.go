package pipeline

import (
	"encoding/binary"
	"errors"
	"time"
)

// The pipeline persists two kinds of binary artifacts: source snapshots
// (repocodec.go, variable-width length-prefixed stream) and analysis
// cache entries (flatcodec.go, fixed-width flat format with a string
// arena). The enc/dec helpers below implement the shared variable-width
// conventions used by the repo codec:
//   - ints are uint64 little-endian (two's complement for negatives)
//   - strings and slices carry 0 for nil, length+1 otherwise
//   - times are (UnixNano, zone offset seconds); the zone name is dropped,
//     matching what a JSON RFC 3339 round trip would preserve

var errCorruptEntry = errors.New("pipeline: corrupt cache entry")

type enc struct{ buf []byte }

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

func (e *enc) int(v int)      { e.u64(uint64(int64(v))) }
func (e *enc) bytes(p []byte) { e.buf = append(e.buf, p...) }
func (e *enc) str(s string)   { e.u64(uint64(len(s)) + 1); e.buf = append(e.buf, s...) }

// count encodes a slice length, distinguishing nil (0) from empty (1).
func (e *enc) count(n int, isNil bool) {
	if isNil {
		e.u64(0)
		return
	}
	e.u64(uint64(n) + 1)
}

func (e *enc) when(t time.Time) {
	e.u64(uint64(t.UnixNano()))
	_, off := t.Zone()
	e.int(off)
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errCorruptEntry
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) int() int { return int(int64(d.u64())) }

func (d *dec) str() string {
	n := d.u64()
	if n == 0 {
		return ""
	}
	n--
	if d.err != nil || uint64(len(d.buf)-d.off) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count decodes a slice length; n < 0 means the slice was nil. elemSize
// is the minimum encoded size in bytes of one element of the slice being
// decoded. A length that could not possibly fit in the remaining bytes is
// corruption; the comparison is done in uint64 so a huge encoded value
// cannot wrap the int conversion into a negative (make panic) or a small
// positive (overallocation) length.
func (d *dec) count(elemSize int) int {
	v := d.u64()
	if v == 0 {
		return -1
	}
	if d.err != nil {
		return -1
	}
	if v-1 > uint64(len(d.buf)-d.off)/uint64(elemSize) {
		d.fail()
		return -1
	}
	return int(v - 1)
}

func (d *dec) when() time.Time {
	ns := int64(d.u64())
	off := d.int()
	t := time.Unix(0, ns)
	if off == 0 {
		return t.UTC()
	}
	return t.In(time.FixedZone("", off))
}

func encStrings(e *enc, ss []string) {
	e.count(len(ss), ss == nil)
	for _, s := range ss {
		e.str(s)
	}
}

func decStrings(d *dec) []string {
	n := d.count(8) // string: 8-byte length prefix
	if n < 0 || d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}
