package pipeline

import (
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/schema"
	"schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
	"schemaevo/internal/vcs"
)

// Extends reports whether next's history of the DDL file at path extends
// prevRepo's: the same file, with prevRepo's snapshots as an exact prefix
// (same times — including UTC offset, which the codec persists — same
// content, same deletions). Under this predicate the per-version parse
// work of the prefix is reusable verbatim.
func Extends(prevRepo, next *vcs.Repo, path string) bool {
	if path == "" || next.MainDDLPath() != path || prevRepo.MainDDLPath() != path {
		return false
	}
	old := prevRepo.FileHistory(path)
	cur := next.FileHistory(path)
	if len(cur) < len(old) {
		return false
	}
	for i := range old {
		o, c := &old[i], &cur[i]
		if !o.Time.Equal(c.Time) || o.Content != c.Content || o.Deleted != c.Deleted {
			return false
		}
		_, oOff := o.Time.Zone()
		_, cOff := c.Time.Zone()
		if oOff != cOff {
			return false
		}
	}
	return true
}

// ExtendResult re-analyzes next incrementally from a previous result:
// when next's DDL history extends prevRepo's, the prefix's parsed
// schemas, deltas and notes are carried over from prev, the Reconstructor
// is primed with the last carried-over snapshot, and only the suffix is
// parsed and diffed. The returned result is byte-identical (through
// EncodeResult) to a full cold analysis of next — the differential suite
// pins this across whole corpora.
//
// ok is false when the histories do not extend (different DDL file,
// rewritten prefix, no DDL file at all) or the extended measures fail
// validation; callers fall back to the full pipeline.
func ExtendResult(prev *CachedResult, prevRepo, next *vcs.Repo) (res *CachedResult, ok bool) {
	if prev == nil || prev.History == nil {
		return nil, false
	}
	path := prev.History.DDLPath
	if !Extends(prevRepo, next, path) {
		return nil, false
	}
	old := prevRepo.FileHistory(path)
	if len(old) != len(prev.History.Versions) {
		return nil, false
	}
	cur := next.FileHistory(path)

	rc := schema.AcquireReconstructor()
	defer schema.ReleaseReconstructor(rc)
	// The carried-over prefix was parsed under prev's dialect; the suffix
	// must be too, or the primed statement cache and the appended schemas
	// would disagree with a cold re-analysis.
	rc.SetDialect(dialect.ByID(prev.History.Dialect))
	rc.ResetProject()
	if n := len(old); n > 0 && !old[n-1].Deleted {
		rc.Prime(old[n-1].Content)
	}
	suffix := make([]history.ParsedVersion, 0, len(cur)-len(old))
	for _, fv := range cur[len(old):] {
		pv := history.ParsedVersion{Time: fv.Time}
		if fv.Deleted {
			pv.Schema = schema.New()
			rc.ResetFile()
		} else {
			pv.Schema, pv.Notes = rc.Build(fv.Content)
		}
		pv.Schema.Seal()
		suffix = append(suffix, pv)
	}

	h := history.AssembleExtend(next, path, prev.History, suffix)
	h.Dialect = prev.History.Dialect
	m := metrics.Compute(h)
	if err := m.Validate(); err != nil {
		// A full run would degrade with FailMetrics; let it, with its
		// proper error report.
		return nil, false
	}
	fpDialect := ""
	if h.Dialect != sqlddl.DialectGeneric {
		fpDialect = h.Dialect.String()
	}
	return &CachedResult{
		Fingerprint: FingerprintDialect(next, fpDialect),
		Project:     next.Name,
		History:     h,
		Measures:    m,
	}, true
}
