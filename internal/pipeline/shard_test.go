package pipeline

import (
	"context"
	"runtime"
	"testing"

	"schemaevo/internal/quantize"
)

// TestResolveShards pins the shard-count resolution order: explicit
// Shards wins, then the maximum of the legacy per-stage worker fields,
// then GOMAXPROCS; the result is clamped to the project count.
func TestResolveShards(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name string
		opts Options
		jobs int
		want int
	}{
		{"explicit", Options{Shards: 3}, 100, 3},
		{"explicit-clamped-to-jobs", Options{Shards: 64}, 2, 2},
		{"legacy-max-of-stage-pools", Options{ParseWorkers: 2, AssembleWorkers: 5, MetricsWorkers: 1}, 100, 5},
		{"explicit-beats-legacy", Options{Shards: 2, ParseWorkers: 7}, 100, 2},
		{"default-gomaxprocs", Options{}, 1 << 20, gmp},
		{"single-project-degenerates", Options{Shards: 16}, 1, 1},
	} {
		if got := resolveShards(tc.opts, tc.jobs); got != tc.want {
			t.Errorf("%s: resolveShards = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestShardForDeterministic pins that project→shard assignment depends
// only on the name and shard count, and lands in range.
func TestShardForDeterministic(t *testing.T) {
	names := []string{"", "a", "proj-1", "proj-2", "some/long/project/name"}
	for _, n := range names {
		for _, shards := range []int{1, 2, 7, 16} {
			s := shardFor(n, shards)
			if s < 0 || s >= shards {
				t.Fatalf("shardFor(%q, %d) = %d out of range", n, shards, s)
			}
			if again := shardFor(n, shards); again != s {
				t.Fatalf("shardFor(%q, %d) not deterministic: %d vs %d", n, shards, s, again)
			}
		}
	}
}

// TestPipelineSingleShardSequentialPath is the satellite bugfix pin: a
// run with one shard (explicitly, or via any workers<=1 legacy config)
// must select the sequential execution path — Stats reports exactly one
// shard, and the results are identical to the sequential Analyze. The
// throughput side of the pin (pipeline >= sequential at GOMAXPROCS=1) is
// enforced by cmd/benchpipe -check, which CI runs at GOMAXPROCS 1 and 2.
func TestPipelineSingleShardSequentialPath(t *testing.T) {
	scheme := quantize.DefaultScheme()
	seq := paperCorpus(t, 11)
	if err := seq.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Shards: 1},
		{ParseWorkers: 1, AssembleWorkers: 1, MetricsWorkers: 1},
	} {
		piped := paperCorpus(t, 11)
		stats, err := Run(context.Background(), piped, opts)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Shards != 1 {
			t.Fatalf("opts %+v: ran with %d shards, want the sequential path (1)", opts, stats.Shards)
		}
		if stats.ParseWorkers != 1 || stats.AssembleWorkers != 1 || stats.MetricsWorkers != 1 {
			t.Fatalf("opts %+v: legacy worker stats %d/%d/%d, want 1/1/1",
				opts, stats.ParseWorkers, stats.AssembleWorkers, stats.MetricsWorkers)
		}
		assertSameAnalysis(t, "seq vs single-shard pipeline", seq, piped)
	}
}

// TestPipelineExplicitShards pins that Options.Shards drives the run and
// preserves equivalence at several counts (including counts above the
// core count — shards are goroutines, not cores).
func TestPipelineExplicitShards(t *testing.T) {
	scheme := quantize.DefaultScheme()
	seq := paperCorpus(t, 12)
	if err := seq.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8} {
		piped := paperCorpus(t, 12)
		stats, err := Run(context.Background(), piped, Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		want := shards
		if n := piped.Len(); want > n {
			want = n
		}
		if stats.Shards != want {
			t.Fatalf("shards=%d: stats.Shards = %d, want %d", shards, stats.Shards, want)
		}
		if stats.Analyzed != piped.Len() {
			t.Fatalf("shards=%d: analyzed %d of %d", shards, stats.Analyzed, piped.Len())
		}
		assertSameAnalysis(t, "seq vs sharded pipeline", seq, piped)
	}
}
