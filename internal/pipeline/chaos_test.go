package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/quantize"
)

// The chaos suite drives the full pipeline under deterministic injected
// faults (I/O errors, bit-rot, stalls, panics) and asserts the robustness
// invariant of the degradation layer:
//
//	faults in up to N projects never change the results of unaffected
//	projects, a panic fails only its own project, and the process never
//	crashes or leaks goroutines.

// referenceAnalysis computes the fault-free ground truth sequentially.
func referenceAnalysis(t testing.TB, seed int64) *corpus.Corpus {
	t.Helper()
	c := paperCorpus(t, seed)
	if err := c.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	return c
}

// assertUnaffectedIdentical compares every project outside `affected`
// against the fault-free reference, field by field (reflect.DeepEqual on
// Measures — the invariant is byte-identical results, not approximate).
func assertUnaffectedIdentical(t *testing.T, label string, ref, got *corpus.Corpus, affected map[string]bool) {
	t.Helper()
	if ref.Len() != got.Len() {
		t.Fatalf("%s: corpus sizes differ: %d vs %d", label, ref.Len(), got.Len())
	}
	for i := range ref.Projects {
		w, g := ref.Projects[i], got.Projects[i]
		if affected[g.Name] {
			if g.Analyzed {
				t.Errorf("%s: %s failed yet is marked Analyzed", label, g.Name)
			}
			continue
		}
		if !g.Analyzed {
			t.Errorf("%s: %s is unaffected by faults but was not analyzed", label, g.Name)
			continue
		}
		if !reflect.DeepEqual(w.Measures, g.Measures) {
			t.Errorf("%s: %s: measures differ from the fault-free run", label, g.Name)
		}
		if w.Labels != g.Labels {
			t.Errorf("%s: %s: labels differ from the fault-free run", label, g.Name)
		}
		if w.Assigned() != g.Assigned() {
			t.Errorf("%s: %s: assigned pattern differs from the fault-free run", label, g.Name)
		}
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to (about)
// its baseline — quarantined workers must finish and vanish, not pile up.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	const slack = 4 // runtime helpers, test framework timers
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
}

// affectedFrom maps a run's degradation report to the set of lost projects.
func affectedFrom(t *testing.T, stats Stats) map[string]bool {
	t.Helper()
	if stats.Degradation == nil {
		t.Fatal("run produced no degradation report")
	}
	out := map[string]bool{}
	for _, f := range stats.Degradation.Failures {
		out[f.Project] = true
	}
	return out
}

// TestChaosInvariant is the headline chaos property: at several fault
// seeds, with every fault kind armed across the pipeline and cache sites,
// the projects the injector did not take down produce results identical
// to a fault-free run, every loss is classified, and no goroutine leaks.
func TestChaosInvariant(t *testing.T) {
	ref := referenceAnalysis(t, 1)
	faultSeeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		faultSeeds = faultSeeds[:2]
	}
	baseline := runtime.NumGoroutine()
	for _, fseed := range faultSeeds {
		inj := faultinject.New(faultinject.Config{Seed: fseed, Rate: 0.08})
		c := paperCorpus(t, 1)
		stats, err := Run(context.Background(), c, Options{
			CacheDir:       t.TempDir(),
			ProjectTimeout: 30 * time.Second, // generous: only real sticking should trip it
			Fault:          inj,
		})
		affected := affectedFrom(t, stats)
		if len(affected) == 0 && err != nil {
			t.Fatalf("fault seed %d: error with empty report: %v", fseed, err)
		}
		if len(affected) > 0 && err == nil {
			t.Fatalf("fault seed %d: %d failures but nil error", fseed, len(affected))
		}
		if stats.Analyzed+len(affected) != c.Len() {
			t.Errorf("fault seed %d: %d analyzed + %d lost != %d projects",
				fseed, stats.Analyzed, len(affected), c.Len())
		}
		// Every failure must carry a taxonomy kind and the project name.
		for _, f := range stats.Degradation.Failures {
			if f.Kind == "" || f.Project == "" || f.Error == "" {
				t.Errorf("fault seed %d: unclassified failure %+v", fseed, f)
			}
		}
		assertUnaffectedIdentical(t, "chaos", ref, c, affected)
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestChaosPanicIsolation: a worker panic in one project fails only that
// project, with the panic taxonomy, and the process survives.
func TestChaosPanicIsolation(t *testing.T) {
	ref := referenceAnalysis(t, 2)
	inj := faultinject.New(faultinject.Config{
		Seed:  9,
		Rate:  0.15,
		Kinds: []faultinject.Kind{faultinject.KindPanic},
		Sites: []string{"pipeline.parse", "pipeline.assemble", "pipeline.metrics"},
	})
	c := paperCorpus(t, 2)
	stats, err := Run(context.Background(), c, Options{Fault: inj})
	affected := affectedFrom(t, stats)
	if len(affected) == 0 {
		t.Fatal("panic injector took down no project; raise the rate")
	}
	if err == nil {
		t.Fatal("panicking projects must surface as an error")
	}
	for _, f := range stats.Degradation.Failures {
		if f.Kind != FailPanic {
			t.Errorf("%s classified as %q, want %q", f.Project, f.Kind, FailPanic)
		}
		if !strings.Contains(f.Error, "panic") {
			t.Errorf("%s: error does not mention the panic: %s", f.Project, f.Error)
		}
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("joined error does not mention the panic: %v", err)
	}
	assertUnaffectedIdentical(t, "panic isolation", ref, c, affected)
}

// TestChaosTimeoutQuarantine: a stalled project is abandoned at its
// deadline with the timeout taxonomy, listed as quarantined, never
// committed, and its stray worker eventually exits (no leak).
func TestChaosTimeoutQuarantine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj := faultinject.New(faultinject.Config{
		Seed:  3,
		Rate:  1,
		Kinds: []faultinject.Kind{faultinject.KindDelay},
		Sites: []string{"pipeline.assemble"},
		Delay: 400 * time.Millisecond,
	})
	projects := []*corpus.Project{}
	for _, name := range []string{"stall-a", "stall-b", "stall-c"} {
		projects = append(projects, &corpus.Project{Name: name, Repo: goodRepo(name)})
	}
	c := &corpus.Corpus{Projects: projects}
	stats, err := Run(context.Background(), c, Options{ProjectTimeout: 40 * time.Millisecond, Fault: inj})
	if err == nil {
		t.Fatal("stalled projects must surface as an error")
	}
	rep := stats.Degradation
	if len(rep.Failures) != c.Len() {
		t.Fatalf("%d of %d stalled projects failed: %+v", len(rep.Failures), c.Len(), rep)
	}
	for _, f := range rep.Failures {
		if f.Kind != FailTimeout {
			t.Errorf("%s classified as %q, want %q", f.Project, f.Kind, FailTimeout)
		}
	}
	if len(rep.Quarantined) != c.Len() || stats.Quarantined != c.Len() {
		t.Errorf("quarantine list %v (stat %d), want all %d projects",
			rep.Quarantined, stats.Quarantined, c.Len())
	}
	for _, p := range c.Projects {
		if p.Analyzed {
			t.Errorf("%s: timed-out project was committed", p.Name)
		}
	}
	if !strings.Contains(rep.Render(), "quarantined") {
		t.Errorf("report render omits the quarantine list:\n%s", rep.Render())
	}
	checkNoGoroutineLeak(t, baseline)
}

// TestChaosHealthyProjectsSurviveTimeouts: with the watchdog armed and
// stalls injected into a strict subset of projects, the untouched
// projects complete normally.
func TestChaosHealthyProjectsSurviveTimeouts(t *testing.T) {
	// Sites keyed by project name: fire only for the "stall-" projects by
	// picking a rate of 1 on a dedicated site list and distinct naming —
	// the injector hashes (site, key), so choose the subset empirically.
	inj := faultinject.New(faultinject.Config{
		Seed:  11,
		Rate:  0.5,
		Kinds: []faultinject.Kind{faultinject.KindDelay},
		Sites: []string{"pipeline.parse"},
		Delay: 300 * time.Millisecond,
	})
	var projects []*corpus.Project
	stalled := map[string]bool{}
	for i := 0; i < 12; i++ {
		name := "proj-" + string(rune('a'+i))
		projects = append(projects, &corpus.Project{Name: name, Repo: goodRepo(name)})
		if inj.At("pipeline.parse", name) == faultinject.KindDelay {
			stalled[name] = true
		}
	}
	if len(stalled) == 0 || len(stalled) == len(projects) {
		t.Fatalf("need a strict subset stalled, got %d/%d; adjust the seed", len(stalled), len(projects))
	}
	c := &corpus.Corpus{Projects: projects}
	stats, _ := Run(context.Background(), c, Options{ProjectTimeout: 60 * time.Millisecond, Fault: inj})
	for _, p := range c.Projects {
		if stalled[p.Name] && p.Analyzed {
			t.Errorf("%s: stalled project committed", p.Name)
		}
		if !stalled[p.Name] && !p.Analyzed {
			t.Errorf("%s: healthy project lost to a neighbour's stall", p.Name)
		}
	}
	if stats.Analyzed != len(projects)-len(stalled) {
		t.Errorf("analyzed %d, want %d", stats.Analyzed, len(projects)-len(stalled))
	}
}

// TestCacheBitRotAndPartialWrite: flipped bytes and truncated entries in a
// live cache read as misses, are quarantined to corrupt/ for inspection,
// and the pipeline recomputes and overwrites them with healthy entries —
// results stay identical throughout.
func TestCacheBitRotAndPartialWrite(t *testing.T) {
	dir := t.TempDir()
	cold := paperCorpus(t, 3)
	if _, err := Run(context.Background(), cold, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.sevc"))
	if err != nil || len(entries) < 2 {
		t.Fatalf("need at least 2 cache entries, have %d (err %v)", len(entries), err)
	}
	// Bit-rot: flip one byte in the middle of the first entry.
	rot, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	rot[len(rot)/2] ^= 0x40
	if err := os.WriteFile(entries[0], rot, 0o644); err != nil {
		t.Fatal(err)
	}
	// Partial write: truncate the second entry mid-body.
	if err := os.Truncate(entries[1], 10); err != nil {
		t.Fatal(err)
	}

	warm := paperCorpus(t, 3)
	stats, err := Run(context.Background(), warm, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 2 || stats.CacheCorrupt != 2 {
		t.Errorf("stats = %+v, want exactly 2 misses and 2 corrupt entries", stats)
	}
	if stats.Analyzed != warm.Len() {
		t.Errorf("analyzed %d of %d despite cache corruption", stats.Analyzed, warm.Len())
	}
	seq := referenceAnalysis(t, 3)
	assertSameAnalysis(t, "seq vs bit-rotted cache", seq, warm)

	// The corrupt entries are preserved for inspection...
	quarantined, err := filepath.Glob(filepath.Join(dir, corruptDirName, "*.sevc"))
	if err != nil || len(quarantined) != 2 {
		t.Errorf("corrupt/ holds %d entries, want 2 (err %v)", len(quarantined), err)
	}
	// ...and the live entries were overwritten healthy: a third run is all hits.
	again := paperCorpus(t, 3)
	stats, err = Run(context.Background(), again, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != again.Len() || stats.CacheErrors != 0 {
		t.Errorf("post-repair run: %+v, want %d hits and no errors", stats, again.Len())
	}
}

// TestChaosCacheFaultsNeverLoseProjects: cache-site faults (I/O errors,
// corrupted reads and writes, stalls) degrade to recomputation — no
// project may fail, and results stay identical to the reference.
func TestChaosCacheFaultsNeverLoseProjects(t *testing.T) {
	ref := referenceAnalysis(t, 1)
	inj := faultinject.New(faultinject.Config{
		Seed: 21,
		Rate: 0.30,
		Sites: []string{
			"cache.read", "cache.read.bytes", "cache.write", "cache.write.bytes",
		},
	})
	dir := t.TempDir()
	for pass := 0; pass < 2; pass++ { // cold then warm
		c := paperCorpus(t, 1)
		stats, err := Run(context.Background(), c, Options{CacheDir: dir, Fault: inj})
		if err != nil {
			t.Fatalf("pass %d: cache faults failed the run: %v", pass, err)
		}
		if stats.Analyzed != c.Len() {
			t.Fatalf("pass %d: analyzed %d of %d", pass, stats.Analyzed, c.Len())
		}
		assertUnaffectedIdentical(t, "cache chaos", ref, c, nil)
		if pass == 1 && stats.Degradation.CacheIncidents == 0 {
			t.Error("warm pass reports no cache incidents; injector misconfigured?")
		}
	}
}

// TestChaosFailFast: fault injection composes with fail-fast cancellation
// without deadlock or crash.
func TestChaosFailFast(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:  5,
		Rate:  0.2,
		Kinds: []faultinject.Kind{faultinject.KindErr, faultinject.KindPanic},
		Sites: []string{"pipeline.parse"},
	})
	c := paperCorpus(t, 1)
	stats, err := Run(context.Background(), c, Options{FailFast: true, Fault: inj})
	if err == nil {
		t.Skip("no project faulted at this seed")
	}
	if stats.Failed == 0 {
		t.Error("error without recorded failure")
	}
}

// TestChaosDeterministicReport: the same fault seed yields the same
// degradation report (same projects lost, same kinds) run over run.
func TestChaosDeterministicReport(t *testing.T) {
	newRun := func() Stats {
		inj := faultinject.New(faultinject.Config{Seed: 13, Rate: 0.1})
		c := paperCorpus(t, 1)
		stats, _ := Run(context.Background(), c, Options{Fault: inj})
		return stats
	}
	a, b := newRun(), newRun()
	if len(a.Degradation.Failures) != len(b.Degradation.Failures) {
		t.Fatalf("failure counts differ: %d vs %d",
			len(a.Degradation.Failures), len(b.Degradation.Failures))
	}
	for i := range a.Degradation.Failures {
		fa, fb := a.Degradation.Failures[i], b.Degradation.Failures[i]
		if fa.Project != fb.Project || fa.Kind != fb.Kind {
			t.Errorf("failure %d differs: %+v vs %+v", i, fa, fb)
		}
	}
}

// TestRetryTransient covers the backoff helper: transient errors are
// retried, definitive filesystem answers are not.
func TestRetryTransient(t *testing.T) {
	calls, retries := 0, 0
	onRetry := func() { retries++ }
	err := withRetry(3, time.Microsecond, onRetry, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient hiccup")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("withRetry: err=%v calls=%d, want success on the 3rd call", err, calls)
	}
	if retries != 2 {
		t.Errorf("withRetry: onRetry fired %d times, want 2", retries)
	}

	calls, retries = 0, 0
	err = withRetry(3, time.Microsecond, onRetry, func() error {
		calls++
		return os.ErrNotExist
	})
	if !errors.Is(err, os.ErrNotExist) || calls != 1 {
		t.Errorf("withRetry retried a non-retryable error: err=%v calls=%d", err, calls)
	}
	if retries != 0 {
		t.Errorf("withRetry: onRetry fired %d times for a non-retryable error, want 0", retries)
	}

	calls = 0
	err = withRetry(2, time.Microsecond, nil, func() error {
		calls++
		return errors.New("always failing")
	})
	if err == nil || calls != 2 {
		t.Errorf("withRetry: err=%v calls=%d, want exhaustion after 2", err, calls)
	}
}

// TestDegradationReportShape covers the report accessors and rendering.
func TestDegradationReportShape(t *testing.T) {
	var nilRep *DegradationReport
	if nilRep.Degraded() || nilRep.LossFraction() != 0 {
		t.Error("nil report must read as healthy")
	}
	rep := &DegradationReport{
		Projects: 4,
		Analyzed: 2,
		Failures: []ProjectFailure{
			{Project: "a", Kind: FailParse, Error: "bad ddl"},
			{Project: "b", Kind: FailTimeout, Error: "deadline\nstack"},
		},
		ByKind:      map[FailureKind]int{FailParse: 1, FailTimeout: 1},
		Quarantined: []string{"b"},
	}
	if !rep.Degraded() || rep.LossFraction() != 0.5 {
		t.Errorf("Degraded=%v LossFraction=%v", rep.Degraded(), rep.LossFraction())
	}
	out := rep.Render()
	for _, want := range []string{"2 of 4", "parse", "timeout", "[timeout] b", "quarantined", "..."} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	healthy := &DegradationReport{Projects: 3, Analyzed: 3}
	if !strings.Contains(healthy.Render(), "none") {
		t.Errorf("healthy render: %s", healthy.Render())
	}
}
