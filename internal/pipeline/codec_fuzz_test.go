package pipeline

import (
	"math"
	"reflect"
	"testing"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/synth"
)

// validEntryBytes encodes one real project's analysis as a seed input.
func validEntryBytes(tb testing.TB) []byte {
	tb.Helper()
	c, err := synth.RandomCorpus(1, 9)
	if err != nil {
		tb.Fatal(err)
	}
	r := c.Projects[0].Repo
	h, err := history.FromRepo(r)
	if err != nil {
		tb.Fatal(err)
	}
	return encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: Fingerprint(r),
		Project:     r.Name,
		History:     h,
		Measures:    metrics.Compute(h),
	})
}

// entryPrefix builds a well-formed entry up to (and excluding) the
// history's Versions count, so crafted counts land on a live decode path.
func entryPrefix() *enc {
	w := &enc{}
	w.bytes(cacheMagic[:])
	w.int(cacheFormatVersion)
	w.str("fp")
	w.str("proj")
	w.boolean(true) // history present
	w.str("proj")
	w.str("schema.sql")
	return w
}

// hugeCountEntry carries a Versions count of 2^64-1. Before dec.count
// compared in uint64, int(v-1) wrapped this to a negative length that was
// silently decoded as a nil slice, leaving the decoder misaligned.
func hugeCountEntry() []byte {
	w := entryPrefix()
	w.u64(math.MaxUint64)
	return w.buf
}

// overCountEntry carries a Versions count that fits the remaining byte
// count but not the per-element minimum size — the case a byte-granular
// bound check used to admit, overallocating 34x before failing mid-loop.
func overCountEntry() []byte {
	w := entryPrefix()
	pad := make([]byte, 256)
	w.u64(uint64(len(pad)) + 1)
	w.bytes(pad)
	return w.buf
}

// TestCodecCountBounds pins the two crafted-count corruptions: both must
// be rejected as corrupt entries, never panic or silently misdecode.
func TestCodecCountBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"huge-count-wraps-int", hugeCountEntry()},
		{"count-exceeds-element-bound", overCountEntry()},
	} {
		if _, err := decodeEntry(tc.data); err == nil {
			t.Errorf("%s: crafted entry accepted", tc.name)
		}
	}
}

// FuzzDecodeEntry hammers the cache-entry decoder with mutated inputs.
// The decoder must never panic, and any input it accepts must re-encode
// into a stable fixed point (boolean bytes are the only non-canonical
// encoding, so equality is checked decode-to-decode, not byte-to-byte).
func FuzzDecodeEntry(f *testing.F) {
	f.Add(validEntryBytes(f))
	f.Add(hugeCountEntry())
	f.Add(overCountEntry())
	f.Add([]byte{})
	f.Add(cacheMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEntry(data)
		if err != nil {
			return
		}
		again, err := decodeEntry(encodeEntry(e))
		if err != nil {
			t.Fatalf("accepted entry does not re-encode: %v", err)
		}
		if !reflect.DeepEqual(e, again) {
			t.Fatal("re-encoded entry decodes differently")
		}
	})
}
