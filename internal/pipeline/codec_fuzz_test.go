package pipeline

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"
	"time"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/synth"
)

// validEntryBytes encodes one real project's analysis as a seed input.
func validEntryBytes(tb testing.TB) []byte {
	tb.Helper()
	c, err := synth.RandomCorpus(1, 9)
	if err != nil {
		tb.Fatal(err)
	}
	r := c.Projects[0].Repo
	h, err := history.FromRepo(r)
	if err != nil {
		tb.Fatal(err)
	}
	return encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: Fingerprint(r),
		Project:     r.Name,
		History:     h,
		Measures:    metrics.Compute(h),
	})
}

// flatEntry assembles a crafted flat entry: a well-formed header and
// entry prefix up to (and excluding) the history's table-pool count, then
// whatever build appends, then the arena. Crafted counts and references
// therefore land on a live decode path.
func flatEntry(build func(w *flatEnc)) []byte {
	w := &flatEnc{
		buf: make([]byte, flatHeaderSize),
		ar:  &flatArena{intern: make(map[string]flatRef)},
	}
	w.str("fp")
	w.str("proj")
	w.u8(1) // history present
	w.str("proj")
	w.str("schema.sql")
	build(w)
	copy(w.buf[0:4], flatMagic[:])
	binary.LittleEndian.PutUint32(w.buf[4:8], cacheFormatVersion)
	binary.LittleEndian.PutUint64(w.buf[8:16], uint64(len(w.buf)))
	binary.LittleEndian.PutUint64(w.buf[16:24], uint64(len(w.ar.data)))
	return append(w.buf, w.ar.data...)
}

// pool and slab-total header: empty pool, all slabs zero.
func emptyPool(w *flatEnc) {
	for i := 0; i < 8; i++ {
		w.u32(0)
	}
}

// hugeCountEntry carries a Versions count of 2^32-1, far beyond what the
// remaining stream bytes could hold. Must be rejected by the count bound,
// not overallocate.
func hugeCountEntry() []byte {
	return flatEntry(func(w *flatEnc) {
		emptyPool(w)
		w.u32(math.MaxUint32)
	})
}

// overCountEntry carries a Versions count that fits the remaining byte
// count but not the per-element minimum size — the case a byte-granular
// bound check would admit, overallocating before failing mid-loop.
func overCountEntry() []byte {
	return flatEntry(func(w *flatEnc) {
		emptyPool(w)
		w.u32(256) // 255 versions, but only 256 bytes follow
		w.buf = append(w.buf, make([]byte, 256)...)
	})
}

// poolIndexEntry has a version referencing table-pool index 5 of an empty
// pool — the out-of-range reference must be corruption, never an OOB read.
func poolIndexEntry() []byte {
	return flatEntry(func(w *flatEnc) {
		emptyPool(w)
		w.u32(2) // one version
		w.i64(0) // seq
		w.when(time.Time{})
		w.u8(1)  // schema present
		w.u32(1) // one table reference
		w.u32(5) // pool index 5 of 0
	})
}

// slabLieEntry declares zero slab totals but encodes a one-column table;
// the exhausted column slab must read as corruption.
func slabLieEntry() []byte {
	return flatEntry(func(w *flatEnc) {
		w.u32(1) // one pool table
		for i := 0; i < 7; i++ {
			w.u32(0) // all slab totals zero
		}
		w.str("t")
		w.u32(2) // one column, but the column slab is empty
	})
}

// arenaRefEntry carries a string reference reaching past the arena end.
func arenaRefEntry() []byte {
	data := flatEntry(func(w *flatEnc) { emptyPool(w) })
	// Rewrite the fingerprint reference (first 8 stream bytes) to point
	// one past the arena.
	arenaLen := binary.LittleEndian.Uint64(data[16:24])
	binary.LittleEndian.PutUint32(data[flatHeaderSize:], 0)
	binary.LittleEndian.PutUint32(data[flatHeaderSize+4:], uint32(arenaLen)+1)
	return data
}

// TestCodecCraftedCorruption pins the crafted corruptions specific to the
// flat layout: all must be rejected as corrupt entries, never panic,
// never index out of bounds, never overallocate.
func TestCodecCraftedCorruption(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"huge-count", hugeCountEntry()},
		{"count-exceeds-element-bound", overCountEntry()},
		{"pool-index-out-of-range", poolIndexEntry()},
		{"slab-totals-lie", slabLieEntry()},
		{"arena-ref-out-of-bounds", arenaRefEntry()},
	} {
		if _, err := decodeEntry(tc.data); err == nil {
			t.Errorf("%s: crafted entry accepted", tc.name)
		}
	}
}

// FuzzDecodeFlat hammers the flat cache-entry decoder with mutated
// (truncated, bit-flipped, crafted) inputs. The decoder must never panic
// or slice out of bounds, and any input it accepts must re-encode into a
// stable fixed point (presence bytes and arena layout are the only
// non-canonical encodings, so equality is checked decode-to-decode, not
// byte-to-byte).
func FuzzDecodeFlat(f *testing.F) {
	f.Add(validEntryBytes(f))
	f.Add(hugeCountEntry())
	f.Add(overCountEntry())
	f.Add(poolIndexEntry())
	f.Add(slabLieEntry())
	f.Add(arenaRefEntry())
	f.Add([]byte{})
	f.Add(flatMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEntry(data)
		if err != nil {
			return
		}
		again, err := decodeEntry(encodeEntry(e))
		if err != nil {
			t.Fatalf("accepted entry does not re-encode: %v", err)
		}
		if !reflect.DeepEqual(e, again) {
			t.Fatal("re-encoded entry decodes differently")
		}
	})
}
