package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFlatDecodeMmapAndReadFileIdentical pins the cross-platform
// contract of the flat format: decoding an entry through the mmap path
// and through the os.ReadFile fallback must yield deeply equal entries
// that re-encode to byte-identical images. On platforms without mmap the
// mapped leg degrades to the fallback inside readEntryFile, which still
// exercises the contract end to end.
func TestFlatDecodeMmapAndReadFileIdentical(t *testing.T) {
	image := seal(validEntryBytes(t))
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.sevc")
	if err := os.WriteFile(path, image, 0o644); err != nil {
		t.Fatal(err)
	}

	decode := func(data []byte) *cacheEntry {
		t.Helper()
		payload, err := unseal(data)
		if err != nil {
			t.Fatal(err)
		}
		e, err := decodeEntry(payload)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	read, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	viaRead := decode(read)

	mapped, release, err := readEntryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported {
		if release == nil {
			t.Fatal("mmap platform returned no release func: fallback taken unexpectedly")
		}
		defer release()
	} else if release != nil {
		t.Fatal("fallback platform returned a release func")
	}
	viaMap := decode(mapped)

	if !reflect.DeepEqual(viaRead, viaMap) {
		t.Fatal("mmap and ReadFile decodes differ")
	}
	if !bytes.Equal(encodeEntry(viaRead), encodeEntry(viaMap)) {
		t.Fatal("mmap and ReadFile decodes re-encode to different bytes")
	}
}

// TestReadEntryFileEmptyFallsBack pins that zero-length files (which
// cannot be mapped) take the ReadFile fallback and surface as ordinary
// corruption, not as a mapping error.
func TestReadEntryFileEmptyFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.sevc")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	data, release, err := readEntryFile(path)
	if err != nil {
		t.Fatalf("empty file read: %v", err)
	}
	if release != nil {
		t.Fatal("empty file should not be mapped")
	}
	if len(data) != 0 {
		t.Fatalf("unexpected data: %d bytes", len(data))
	}
	if _, err := unseal(data); err == nil {
		t.Fatal("empty image unsealed")
	}
}

// TestReadEntryFileMissing pins that a missing entry is reported as
// not-exist (a cache miss), on both the mapped and fallback paths.
func TestReadEntryFileMissing(t *testing.T) {
	_, release, err := readEntryFile(filepath.Join(t.TempDir(), "nope.sevc"))
	if !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
	if release != nil {
		t.Fatal("missing file returned a release func")
	}
}
