package pipeline

import (
	"errors"
	"io/fs"
	"time"
)

// Cache and filesystem operations retry a few times with exponential
// backoff before giving up: transient faults (EINTR-ish hiccups, a file
// mid-rename, injected chaos) should cost a retry, not a recompute — and
// never a failed project.
const (
	retryAttempts = 3
	retryBackoff  = time.Millisecond
)

// retryable reports whether an error is worth retrying. Definitive
// filesystem answers (the file does not exist, permission denied) are
// final; everything else is treated as transient.
func retryable(err error) bool {
	return !errors.Is(err, fs.ErrNotExist) && !errors.Is(err, fs.ErrPermission)
}

// withRetry runs fn up to attempts times, sleeping base, 2*base, ... in
// between, until fn succeeds or returns a non-retryable error. It returns
// fn's last error. onRetry, when non-nil, is invoked once per re-attempt
// (not for the first try) — the telemetry tap for retry counting.
func withRetry(attempts int, base time.Duration, onRetry func(), fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && onRetry != nil {
			onRetry()
		}
		if err = fn(); err == nil || !retryable(err) {
			return err
		}
		if i < attempts-1 {
			time.Sleep(base << i)
		}
	}
	return err
}
