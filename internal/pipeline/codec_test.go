package pipeline

import (
	"reflect"
	"testing"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/synth"
)

// TestCodecRoundTrip encodes and decodes the full analysis of every
// project of a calibrated corpus and requires deep equality — the cache
// must be invisible, down to nil-vs-empty slices and time locations.
func TestCodecRoundTrip(t *testing.T) {
	c, err := synth.PaperCorpus(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		h, err := history.FromRepo(p.Repo)
		if err != nil {
			t.Fatalf("%s: %v", p.Repo.Name, err)
		}
		in := &cacheEntry{
			Version:     cacheFormatVersion,
			Fingerprint: Fingerprint(p.Repo),
			Project:     p.Repo.Name,
			History:     h,
			Measures:    metrics.Compute(h),
		}
		out, err := decodeEntry(encodeEntry(in))
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Repo.Name, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%s: round trip not identical:\n in: %+v\nout: %+v",
				p.Repo.Name, in, out)
		}
	}
}

// TestCodecRejectsCorruption truncates and mangles a valid entry at every
// offset; the decoder must return an error (never panic, never succeed on
// trailing garbage).
func TestCodecRejectsCorruption(t *testing.T) {
	c, err := synth.PaperCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Projects[0]
	h, err := history.FromRepo(p.Repo)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeEntry(&cacheEntry{
		Version:     cacheFormatVersion,
		Fingerprint: Fingerprint(p.Repo),
		Project:     p.Repo.Name,
		History:     h,
		Measures:    metrics.Compute(h),
	})

	if _, err := decodeEntry(data); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	if _, err := decodeEntry(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := decodeEntry([]byte("{broken json}")); err == nil {
		t.Error("non-magic input accepted")
	}
	if _, err := decodeEntry(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	step := len(data)/200 + 1
	for n := 0; n < len(data); n += step {
		if _, err := decodeEntry(data[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(data))
		}
	}
}
