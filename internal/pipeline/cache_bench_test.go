package pipeline

import (
	"context"
	"testing"

	"schemaevo/internal/synth"
)

// BenchmarkFingerprint isolates the cache-key computation (hashing commit
// timestamps and DDL blobs) for the whole calibrated corpus.
func BenchmarkFingerprint(b *testing.B) {
	c, err := synth.PaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range c.Projects {
			if Fingerprint(p.Repo) == "" {
				b.Fatal("empty fingerprint")
			}
		}
	}
}

// BenchmarkCacheLoad isolates decoding all cache entries of a warm cache
// (the per-hit cost of a warm pipeline run, minus fingerprinting).
func BenchmarkCacheLoad(b *testing.B) {
	c, err := synth.PaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := Run(context.Background(), c, Options{CacheDir: dir}); err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 0, len(c.Projects))
	for _, p := range c.Projects {
		keys = append(keys, Fingerprint(p.Repo))
	}
	cache, err := openCache(dir, nil, nil, context.Background())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if cache.load(k) == nil {
				b.Fatal("cache miss")
			}
		}
	}
}
