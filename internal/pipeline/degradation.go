package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// FailureKind is the taxonomy bucket of a per-project failure. A degraded
// run classifies every loss so operators can tell a corpus-quality problem
// (parse) from an infrastructure one (timeout, panic, cache).
type FailureKind string

const (
	// FailParse covers repository validation and DDL snapshot parsing.
	FailParse FailureKind = "parse"
	// FailAssemble covers history assembly (diffing, heartbeats).
	FailAssemble FailureKind = "assemble"
	// FailMetrics covers measure computation and validation.
	FailMetrics FailureKind = "metrics"
	// FailCache marks cache-layer incidents. Cache faults never fail a
	// project (the pipeline recomputes), so this kind appears in incident
	// counters, not in per-project failures.
	FailCache FailureKind = "cache"
	// FailTimeout marks a project that exceeded Options.ProjectTimeout and
	// was quarantined by the watchdog.
	FailTimeout FailureKind = "timeout"
	// FailPanic marks a project whose analysis panicked; the panic was
	// recovered inside the worker and attributed to the project.
	FailPanic FailureKind = "panic"
	// FailAnomaly marks a recorded data anomaly (e.g. a version
	// timestamped outside the project span, clamped by history.Assemble).
	// Anomalies never fail a project: they appear in the report's
	// Anomalies list, not in per-project failures.
	FailAnomaly FailureKind = "anomaly"
)

// ProjectFailure is one project's attributed loss.
type ProjectFailure struct {
	Project string      `json:"project"`
	Kind    FailureKind `json:"kind"`
	Error   string      `json:"error"`
}

// ProjectAnomaly is one recorded data anomaly of a project that was
// nonetheless analyzed (FailAnomaly taxonomy).
type ProjectAnomaly struct {
	Project string `json:"project"`
	Message string `json:"message"`
}

// DegradationReport states exactly what a pipeline run skipped and why,
// so a degraded run never silently shrinks the corpus. It is always
// attached to Stats; Degraded reports whether anything was lost.
type DegradationReport struct {
	// Projects and Analyzed mirror Stats.
	Projects int `json:"projects"`
	Analyzed int `json:"analyzed"`
	// Failures lists every lost project in corpus order.
	Failures []ProjectFailure `json:"failures,omitempty"`
	// ByKind counts the failures per taxonomy bucket.
	ByKind map[FailureKind]int `json:"by_kind,omitempty"`
	// Quarantined names projects whose worker was abandoned by the
	// deadline watchdog (a subset of the timeout failures); their
	// goroutines finish in the background and their results are discarded.
	Quarantined []string `json:"quarantined,omitempty"`
	// CacheIncidents counts non-fatal cache faults (unreadable entries,
	// failed writes, corrupt entries quarantined for inspection). They
	// degrade speed, never results.
	CacheIncidents int `json:"cache_incidents,omitempty"`
	// Anomalies lists recorded data anomalies of successfully analyzed
	// projects (out-of-span version timestamps and the like), in corpus
	// order. They taint data quality, not the analysis itself, so they
	// do not make the run Degraded.
	Anomalies []ProjectAnomaly `json:"anomalies,omitempty"`
}

// Degraded reports whether the run lost any project.
func (r *DegradationReport) Degraded() bool {
	return r != nil && len(r.Failures) > 0
}

// LossFraction is the share of the corpus that was lost, in [0, 1].
func (r *DegradationReport) LossFraction() float64 {
	if r == nil || r.Projects == 0 {
		return 0
	}
	return float64(len(r.Failures)) / float64(r.Projects)
}

// Render prints the report for humans: the headline, the taxonomy
// breakdown, each lost project with its reason, and the quarantine list.
func (r *DegradationReport) Render() string {
	var sb strings.Builder
	if !r.Degraded() {
		fmt.Fprintf(&sb, "degradation: none (%d/%d projects analyzed)", r.analyzed(), r.projects())
		if r != nil && r.CacheIncidents > 0 {
			fmt.Fprintf(&sb, "; %d cache incident(s) recovered", r.CacheIncidents)
		}
		if r != nil && len(r.Anomalies) > 0 {
			fmt.Fprintf(&sb, "; %d data anomaly(ies) recorded", len(r.Anomalies))
		}
		sb.WriteString("\n")
		r.renderAnomalies(&sb)
		return sb.String()
	}
	fmt.Fprintf(&sb, "degradation: %d of %d projects lost (%.1f%%)\n",
		len(r.Failures), r.Projects, r.LossFraction()*100)
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-8s %d\n", k, r.ByKind[FailureKind(k)])
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "  [%s] %s: %s\n", f.Kind, f.Project, firstLine(f.Error))
	}
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(&sb, "  quarantined (worker abandoned): %s\n", strings.Join(r.Quarantined, ", "))
	}
	if r.CacheIncidents > 0 {
		fmt.Fprintf(&sb, "  cache incidents recovered: %d\n", r.CacheIncidents)
	}
	r.renderAnomalies(&sb)
	return sb.String()
}

// renderAnomalies appends the data-anomaly lines, if any.
func (r *DegradationReport) renderAnomalies(sb *strings.Builder) {
	if r == nil {
		return
	}
	for _, a := range r.Anomalies {
		fmt.Fprintf(sb, "  [%s] %s: %s\n", FailAnomaly, a.Project, firstLine(a.Message))
	}
}

func (r *DegradationReport) projects() int {
	if r == nil {
		return 0
	}
	return r.Projects
}

func (r *DegradationReport) analyzed() int {
	if r == nil {
		return 0
	}
	return r.Analyzed
}

// firstLine truncates multi-line error text (panic stacks) for display.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
