package pipeline

import (
	"bytes"
	"testing"

	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/synth"
	"schemaevo/internal/vcs"
)

// coldResult runs the full (non-incremental) analysis of a repo and
// returns the encoded result, or nil when the repo is not analyzable yet
// (e.g. a truncation before the first DDL commit).
func coldResult(t *testing.T, r *vcs.Repo) *CachedResult {
	t.Helper()
	if r.MainDDLPath() == "" {
		return nil
	}
	h, err := history.FromRepo(r)
	if err != nil {
		return nil
	}
	m := metrics.Compute(h)
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: cold measures invalid: %v", r.Name, err)
	}
	return &CachedResult{Fingerprint: Fingerprint(r), Project: r.Name, History: h, Measures: m}
}

func truncated(r *vcs.Repo, k int) *vcs.Repo {
	return &vcs.Repo{Name: r.Name, Commits: r.Commits[:k]}
}

// TestExtendResultDifferential is the incremental-equals-full differential
// at the pipeline level: for every corpus project, grow the repo a few
// commits at a time and check that each incremental extension produces
// bytes identical to a cold full analysis of the same prefix. Falls back
// to the cold result exactly where ExtendResult declines (e.g. the main
// DDL file changes as the history grows) — the same protocol the server
// follows.
func TestExtendResultDifferential(t *testing.T) {
	c, err := synth.RandomCorpus(10, 29)
	if err != nil {
		t.Fatal(err)
	}
	extensions, fallbacks := 0, 0
	for _, p := range c.Projects {
		n := len(p.Repo.Commits)
		step := n / 6
		if step < 1 {
			step = 1
		}
		var prev *CachedResult
		var prevRepo *vcs.Repo
		for k := 1; k <= n; k += step {
			if k+step > n {
				k = n // always include the full repo as the last point
			}
			next := truncated(p.Repo, k)
			want := coldResult(t, next)
			if want == nil {
				continue
			}
			if prev != nil {
				if got, ok := ExtendResult(prev, prevRepo, next); ok {
					extensions++
					if !bytes.Equal(EncodeResult(got), EncodeResult(want)) {
						t.Fatalf("%s@%d: incremental result differs from cold analysis", p.Name, k)
					}
					prev, prevRepo = got, next
					if k == n {
						break
					}
					continue
				}
				fallbacks++
			}
			prev, prevRepo = want, next
			if k == n {
				break
			}
		}
	}
	if extensions == 0 {
		t.Fatal("differential was vacuous: no incremental extension ever ran")
	}
	t.Logf("extensions=%d fallbacks=%d", extensions, fallbacks)
}

// TestExtendResultDeclines pins the fallback conditions: a rewritten
// prefix, a changed DDL file, and a DDL-less repo must all decline rather
// than produce a result.
func TestExtendResultDeclines(t *testing.T) {
	c, err := synth.RandomCorpus(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	full := c.Projects[0].Repo
	n := len(full.Commits)
	prevRepo := truncated(full, n-1)
	prev := coldResult(t, prevRepo)
	if prev == nil {
		t.Fatal("fixture prefix not analyzable")
	}

	if _, ok := ExtendResult(prev, prevRepo, full); !ok {
		t.Fatal("clean extension declined")
	}

	// Rewritten prefix: perturb an early DDL snapshot.
	rew := &vcs.Repo{Name: full.Name, Commits: append([]vcs.Commit(nil), full.Commits...)}
	path := full.MainDDLPath()
	for i := range rew.Commits {
		if src, ok := rew.Commits[i].Files[path]; ok {
			files := map[string]string{}
			for k, v := range rew.Commits[i].Files {
				files[k] = v
			}
			files[path] = src + "\n-- rewritten"
			rew.Commits[i].Files = files
			break
		}
	}
	if _, ok := ExtendResult(prev, prevRepo, rew); ok {
		t.Fatal("rewritten prefix extended")
	}

	// No DDL file at all.
	bare := &vcs.Repo{Name: "bare", Commits: []vcs.Commit{{ID: "c", Time: full.Commits[0].Time}}}
	if _, ok := ExtendResult(prev, prevRepo, bare); ok {
		t.Fatal("DDL-less repo extended")
	}
}
