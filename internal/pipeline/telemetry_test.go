package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// TestRunTelemetry drives a cold-then-warm pipeline run with a collector
// attached and checks the whole observability surface: stage registration
// and job accounting, cache hit/miss/byte counters, and per-project spans.
func TestRunTelemetry(t *testing.T) {
	dir := t.TempDir()
	n := 0

	for _, phase := range []string{"cold", "warm"} {
		c, err := synth.RandomCorpus(12, 5)
		if err != nil {
			t.Fatal(err)
		}
		n = c.Len()
		tel := telemetry.New()
		stats, err := Run(context.Background(), c, Options{CacheDir: dir, Telemetry: tel})
		if err != nil {
			t.Fatalf("%s: %v", phase, err)
		}

		rep := tel.Snapshot()
		if len(rep.Stages) != 3 {
			t.Fatalf("%s: stages = %d, want 3", phase, len(rep.Stages))
		}
		for i, want := range []string{"parse", "assemble", "metrics"} {
			sr := rep.Stages[i]
			if sr.Name != want {
				t.Errorf("%s: stage %d = %q, want %q", phase, i, sr.Name, want)
			}
			if sr.Jobs != int64(n) {
				t.Errorf("%s: stage %s jobs = %d, want %d", phase, sr.Name, sr.Jobs, n)
			}
			if sr.Errors != 0 {
				t.Errorf("%s: stage %s errors = %d", phase, sr.Name, sr.Errors)
			}
		}
		if rep.Stages[0].Workers != int64(stats.ParseWorkers) {
			t.Errorf("%s: parse workers = %d, want %d", phase, rep.Stages[0].Workers, stats.ParseWorkers)
		}

		switch phase {
		case "cold":
			if rep.Cache.Misses != int64(n) || rep.Cache.Hits != 0 {
				t.Errorf("cold: cache hits/misses = %d/%d, want 0/%d", rep.Cache.Hits, rep.Cache.Misses, n)
			}
			if rep.Cache.Writes != int64(n) || rep.Cache.BytesWritten == 0 {
				t.Errorf("cold: cache writes = %d (%d bytes), want %d writes", rep.Cache.Writes, rep.Cache.BytesWritten, n)
			}
		case "warm":
			if rep.Cache.Hits != int64(n) || rep.Cache.Misses != 0 {
				t.Errorf("warm: cache hits/misses = %d/%d, want %d/0", rep.Cache.Hits, rep.Cache.Misses, n)
			}
			if rep.Cache.HitRate != 1 {
				t.Errorf("warm: hit rate = %v, want 1", rep.Cache.HitRate)
			}
			if rep.Cache.BytesRead == 0 {
				t.Error("warm: no cache bytes read recorded")
			}
		}

		// Every project leaves one span per stage it entered; a cache hit
		// still passes through all three stages.
		if rep.SpanCount != 3*n {
			t.Errorf("%s: spans = %d, want %d", phase, rep.SpanCount, 3*n)
		}
		for _, sp := range tel.Spans() {
			if sp.Project == "" || sp.Stage == "" || sp.DurUS < 0 {
				t.Fatalf("%s: malformed span %+v", phase, sp)
			}
		}
	}
}

// TestRunTelemetryFaultsAndDegradation checks that injected faults and
// per-project failures reach the collector's event tallies.
func TestRunTelemetryFaultsAndDegradation(t *testing.T) {
	c, err := synth.RandomCorpus(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	inj := faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1, // every project faults at the parse site
		Kinds: []faultinject.Kind{faultinject.KindErr},
		Sites: []string{"pipeline.parse"},
	})
	stats, err := Run(context.Background(), c, Options{Fault: inj, Telemetry: tel})
	if err == nil {
		t.Fatal("expected failures under rate-1 injection")
	}
	if stats.Failed != c.Len() {
		t.Fatalf("failed = %d, want %d", stats.Failed, c.Len())
	}

	rep := tel.Snapshot()
	var faultTotal int64
	for _, f := range rep.Faults {
		if !strings.HasPrefix(f.Name, "pipeline.parse/") {
			t.Errorf("unexpected fault tally %q", f.Name)
		}
		faultTotal += f.Count
	}
	if faultTotal != int64(c.Len()) {
		t.Errorf("fault events = %d, want %d", faultTotal, c.Len())
	}
	if len(rep.Degradation) != 1 || rep.Degradation[0].Name != string(FailParse) || rep.Degradation[0].Count != int64(c.Len()) {
		t.Errorf("degradation tallies = %+v, want parse×%d", rep.Degradation, c.Len())
	}
	// The observer is detached after the run: later injector activity must
	// not mutate this run's report.
	inj.At("pipeline.parse", "post-run-key")
	if got := tel.Snapshot(); len(got.Faults) != len(rep.Faults) {
		t.Error("injector observer leaked past the run")
	}
}

// anomalousEntry builds a repo plus a cached analysis whose history
// carries an out-of-span version timestamp (the history.Assemble clamp
// path) — the way a data anomaly reaches a pipeline run in practice.
func anomalousEntry(t *testing.T, dir string) *vcs.Repo {
	t.Helper()
	mk := func(y int, m time.Month, d int) time.Time {
		return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
	}
	r := &vcs.Repo{Name: "skewed", Commits: []vcs.Commit{
		{ID: "0", Time: mk(2020, 1, 10), Files: map[string]string{"schema.sql": "CREATE TABLE a (x INT);"}, SrcLines: 5},
		{ID: "1", Time: mk(2020, 6, 10), Files: map[string]string{"schema.sql": "CREATE TABLE a (x INT, y INT);"}, SrcLines: 5},
		{ID: "2", Time: mk(2021, 6, 10), Files: map[string]string{"main.go": "x"}, SrcLines: 5},
	}}
	parsed, err := history.ParseVersions(r, "schema.sql")
	if err != nil {
		t.Fatal(err)
	}
	parsed[1].Time = mk(2019, 3, 1) // before the project's first commit
	h := history.Assemble(r, "schema.sql", parsed)
	if len(h.SpanAnomalies()) != 1 {
		t.Fatalf("fixture: span anomalies = %v", h.SpanAnomalies())
	}
	cache, err := openCache(dir, nil, nil, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cache.store(Fingerprint(r), r.Name, h, metrics.Compute(h))
	if cache.writes.Load() != 1 {
		t.Fatal("fixture: cache entry was not written")
	}
	return r
}

// TestRunSurfacesDataAnomalies checks the full path of the out-of-span
// bugfix: a cached history carrying an AnomalyStmt note flows through
// pipeline.Run without failing the project, and surfaces as Stats.
// DataAnomalies, a DegradationReport.Anomalies entry, and a telemetry
// "anomaly" degradation event — while the run itself stays non-degraded.
func TestRunSurfacesDataAnomalies(t *testing.T) {
	dir := t.TempDir()
	r := anomalousEntry(t, dir)
	c := &corpus.Corpus{Projects: []*corpus.Project{{Name: r.Name, Repo: r}}}

	tel := telemetry.New()
	stats, err := Run(context.Background(), c, Options{CacheDir: dir, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 1 || stats.CacheHits != 1 {
		t.Fatalf("analyzed/hits = %d/%d, want 1/1", stats.Analyzed, stats.CacheHits)
	}
	if stats.DataAnomalies != 1 {
		t.Fatalf("data anomalies = %d, want 1", stats.DataAnomalies)
	}
	rep := stats.Degradation
	if rep.Degraded() {
		t.Error("anomaly wrongly marked the run degraded")
	}
	if len(rep.Anomalies) != 1 || rep.Anomalies[0].Project != "skewed" {
		t.Fatalf("report anomalies = %+v", rep.Anomalies)
	}
	if !strings.Contains(rep.Anomalies[0].Message, "outside the project span") {
		t.Errorf("anomaly message = %q", rep.Anomalies[0].Message)
	}
	if !strings.Contains(rep.Render(), "anomaly") {
		t.Errorf("rendered report omits the anomaly:\n%s", rep.Render())
	}
	snap := tel.Snapshot()
	found := false
	for _, d := range snap.Degradation {
		if d.Name == string(FailAnomaly) && d.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("telemetry degradation tallies = %+v, want anomaly×1", snap.Degradation)
	}
}
