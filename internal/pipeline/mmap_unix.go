//go:build linux || darwin

package pipeline

import (
	"os"
	"syscall"
)

// mmapSupported reports whether mapFile can succeed on this platform; it
// gates the cross-platform fallback tests, mirroring the
// diskfree_unix/diskfree_other split in internal/store.
const mmapSupported = true

// mapFile maps path read-only and returns the mapping plus a release
// function that unmaps it. Callers release the mapping only on failure
// paths: a successfully decoded flat entry holds string views into the
// mapping (see flatcodec.go), so once an entry escapes, its mapping is
// pinned for the life of the process — dropping the slice leaks the
// mapping intentionally, and nothing may ever munmap or write it.
// Empty files are reported as an error so the caller falls back to
// os.ReadFile and the ordinary corruption handling.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
