package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
	"schemaevo/internal/vcs"
)

// paperCorpus builds a fresh calibrated corpus; each caller gets its own
// copy because analysis mutates the projects.
func paperCorpus(t testing.TB, seed int64) *corpus.Corpus {
	t.Helper()
	c, err := synth.PaperCorpus(seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertSameAnalysis fails unless both corpora carry identical derived
// fields project by project.
func assertSameAnalysis(t *testing.T, label string, want, got *corpus.Corpus) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: corpus sizes differ: %d vs %d", label, want.Len(), got.Len())
	}
	for i := range want.Projects {
		w, g := want.Projects[i], got.Projects[i]
		if w.Name != g.Name {
			t.Fatalf("%s: project %d name %q vs %q", label, i, w.Name, g.Name)
		}
		if w.Analyzed != g.Analyzed {
			t.Fatalf("%s: %s: Analyzed %v vs %v", label, w.Name, w.Analyzed, g.Analyzed)
		}
		if !reflect.DeepEqual(w.Measures, g.Measures) {
			t.Errorf("%s: %s: measures differ:\n%+v\nvs\n%+v", label, w.Name, w.Measures, g.Measures)
		}
		if w.Labels != g.Labels {
			t.Errorf("%s: %s: labels differ: %+v vs %+v", label, w.Name, w.Labels, g.Labels)
		}
		if w.Assigned() != g.Assigned() {
			t.Errorf("%s: %s: assigned pattern %v vs %v", label, w.Name, w.Assigned(), g.Assigned())
		}
	}
}

// TestPipelineEquivalence is the satellite property test: for several
// seeds and worker counts, the staged pipeline, the sequential Analyze and
// the worker-pool AnalyzeParallel must produce identical Measures, Labels
// and Assigned patterns for every project.
func TestPipelineEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	workerCounts := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	scheme := quantize.DefaultScheme()
	for _, seed := range seeds {
		seq := paperCorpus(t, seed)
		if err := seq.Analyze(scheme); err != nil {
			t.Fatal(err)
		}
		par := paperCorpus(t, seed)
		if err := par.AnalyzeParallel(scheme, 4); err != nil {
			t.Fatal(err)
		}
		assertSameAnalysis(t, "seq vs AnalyzeParallel", seq, par)
		for _, w := range workerCounts {
			piped := paperCorpus(t, seed)
			opts := Options{ParseWorkers: w, AssembleWorkers: w, MetricsWorkers: w}
			stats, err := Run(context.Background(), piped, opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if stats.Analyzed != piped.Len() {
				t.Fatalf("seed %d workers %d: analyzed %d of %d", seed, w, stats.Analyzed, piped.Len())
			}
			assertSameAnalysis(t, "seq vs pipeline", seq, piped)
		}
	}
}

// TestPipelineCacheWarm checks the memoization contract: a cold run fills
// the cache, a warm run restores every project from it (hit counter equals
// the corpus size, nothing recomputed), and the warm results are identical
// to an uncached sequential analysis.
func TestPipelineCacheWarm(t *testing.T) {
	dir := t.TempDir()
	opts := Options{CacheDir: dir}

	cold := paperCorpus(t, 1)
	stats, err := Run(context.Background(), cold, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("cold run: %d cache hits, want 0", stats.CacheHits)
	}
	if stats.CacheWrites != cold.Len() {
		t.Errorf("cold run: %d cache writes, want %d", stats.CacheWrites, cold.Len())
	}

	warm := paperCorpus(t, 1)
	stats, err = Run(context.Background(), warm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != warm.Len() || stats.CacheMisses != 0 {
		t.Errorf("warm run: hits %d misses %d, want %d and 0",
			stats.CacheHits, stats.CacheMisses, warm.Len())
	}

	seq := paperCorpus(t, 1)
	if err := seq.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	assertSameAnalysis(t, "seq vs warm cache", seq, warm)
}

// TestPipelineCacheCorruptEntry: a truncated cache file must count as a
// miss (plus an error), never poison the results.
func TestPipelineCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := paperCorpus(t, 2)
	if _, err := Run(context.Background(), c, Options{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.sevc"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err %v)", err)
	}
	if err := os.WriteFile(entries[0], []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm := paperCorpus(t, 2)
	stats, err := Run(context.Background(), warm, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 1 || stats.CacheErrors == 0 {
		t.Errorf("stats = %+v, want exactly 1 miss and >0 cache errors", stats)
	}
	seq := paperCorpus(t, 2)
	if err := seq.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	assertSameAnalysis(t, "seq vs corrupt-entry warm", seq, warm)
}

// badRepo is structurally valid but has no DDL file, so analysis fails.
func badRepo(name string) *vcs.Repo {
	return &vcs.Repo{Name: name, Commits: []vcs.Commit{{
		ID:   "0",
		Time: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		Files: map[string]string{
			"main.go": "package main",
		},
	}}}
}

func goodRepo(name string) *vcs.Repo {
	r := &vcs.Repo{Name: name}
	for i := 0; i < 14; i++ {
		r.Commits = append(r.Commits, vcs.Commit{
			ID:   "c",
			Time: time.Date(2020, time.Month(1+i), 1, 0, 0, 0, 0, time.UTC),
			Files: map[string]string{
				"schema.sql": "CREATE TABLE t (a INT);",
			},
			SrcLines: 10,
		})
	}
	return r
}

// TestPipelineCollectsAllFailures: with FailFast off, every failing
// project must be reported, attributed by name, and the healthy projects
// must still be analyzed.
func TestPipelineCollectsAllFailures(t *testing.T) {
	c := &corpus.Corpus{Projects: []*corpus.Project{
		{Name: "bad-one", Repo: badRepo("bad-one")},
		{Name: "ok-one", Repo: goodRepo("ok-one")},
		{Name: "bad-two", Repo: badRepo("bad-two")},
		{Name: "ok-two", Repo: goodRepo("ok-two")},
		{Name: "bad-three", Repo: badRepo("bad-three")},
	}}
	stats, err := Run(context.Background(), c, Options{})
	if err == nil {
		t.Fatal("expected an error")
	}
	for _, name := range []string{"bad-one", "bad-two", "bad-three"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not mention %q: %v", name, err)
		}
	}
	if stats.Failed != 3 || stats.Analyzed != 2 {
		t.Errorf("stats = %+v, want 3 failed and 2 analyzed", stats)
	}
	for _, p := range c.Projects {
		wantAnalyzed := strings.HasPrefix(p.Name, "ok")
		if p.Analyzed != wantAnalyzed {
			t.Errorf("%s: Analyzed = %v, want %v", p.Name, p.Analyzed, wantAnalyzed)
		}
	}
}

// TestPipelineFailFast: the first failure cancels the run and is reported.
func TestPipelineFailFast(t *testing.T) {
	projects := []*corpus.Project{{Name: "bad", Repo: badRepo("bad")}}
	for i := 0; i < 20; i++ {
		name := "ok-" + strings.Repeat("x", i+1)
		projects = append(projects, &corpus.Project{Name: name, Repo: goodRepo(name)})
	}
	c := &corpus.Corpus{Projects: projects}
	stats, err := Run(context.Background(), c, Options{FailFast: true, ParseWorkers: 1, AssembleWorkers: 1, MetricsWorkers: 1})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error does not name the failing project: %v", err)
	}
	if stats.Failed == 0 {
		t.Errorf("stats = %+v, want at least one failure", stats)
	}
}

// TestPipelineCancelledContext: a pre-cancelled context analyzes nothing
// and surfaces context.Canceled.
func TestPipelineCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &corpus.Corpus{Projects: []*corpus.Project{
		{Name: "a", Repo: goodRepo("a")},
		{Name: "b", Repo: goodRepo("b")},
	}}
	stats, err := Run(ctx, c, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Analyzed != 0 {
		t.Errorf("analyzed %d projects under a cancelled context", stats.Analyzed)
	}
}

// TestAnalyzeRepoSingle: the single-repo entry point matches a direct
// corpus analysis of the same repository.
func TestAnalyzeRepoSingle(t *testing.T) {
	res, stats, err := AnalyzeRepo(context.Background(), goodRepo("solo"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 1 {
		t.Fatalf("stats = %+v, want 1 analyzed", stats)
	}
	c := &corpus.Corpus{Projects: []*corpus.Project{{Name: "solo", Repo: goodRepo("solo")}}}
	if err := c.Analyze(quantize.DefaultScheme()); err != nil {
		t.Fatal(err)
	}
	p := c.Projects[0]
	if !reflect.DeepEqual(res.Measures, p.Measures) || res.Labels != p.Labels {
		t.Errorf("single-repo result differs from corpus analysis")
	}
	if core.ClassifyNearest(res.Labels) != core.ClassifyNearest(p.Labels) {
		t.Errorf("classification differs")
	}
}

// TestFingerprintSensitivity: the fingerprint must change when any
// analysis-relevant input changes, and must ignore non-DDL file content.
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(goodRepo("fp"))
	if other := Fingerprint(goodRepo("fp")); other != base {
		t.Error("fingerprint not deterministic")
	}

	r := goodRepo("fp")
	r.Commits[3].Files["schema.sql"] = "CREATE TABLE t (a INT, b INT);"
	if Fingerprint(r) == base {
		t.Error("fingerprint ignores DDL content")
	}

	r = goodRepo("fp")
	r.Commits[3].Time = r.Commits[3].Time.Add(time.Hour)
	if Fingerprint(r) == base {
		t.Error("fingerprint ignores commit times")
	}

	r = goodRepo("fp")
	r.Commits[3].SrcLines = 99
	if Fingerprint(r) == base {
		t.Error("fingerprint ignores source-line counts")
	}

	r = goodRepo("fp")
	r.Name = "renamed"
	if Fingerprint(r) == base {
		t.Error("fingerprint ignores the repo name")
	}

	// Non-DDL content feeds the analysis only through SrcLines, which is
	// hashed separately; its raw content must not perturb the key.
	r = goodRepo("fp")
	r.Commits[3].Files["main.go"] = "package main // changed"
	if Fingerprint(r) != base {
		t.Error("fingerprint depends on non-DDL file content")
	}
}
