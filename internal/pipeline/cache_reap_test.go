package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"schemaevo/internal/telemetry"
)

// seedCorrupt drops n dummy quarantined entries into <dir>/corrupt/,
// each stamped with the given mtime plus i seconds so ordering by age
// is deterministic. Returns the file names, oldest first.
func seedCorrupt(t *testing.T, dir string, n int, mtime time.Time) []string {
	t.Helper()
	cdir := filepath.Join(dir, corruptDirName)
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("entry-%03d.sevc", i)
		p := filepath.Join(cdir, names[i])
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, time.Time{}, mtime.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

func listCorrupt(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, corruptDirName))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool, len(entries))
	for _, e := range entries {
		got[e.Name()] = true
	}
	return got
}

// TestReapCorruptByAgeAndCount pins the retention policy at openCache
// time: entries past corruptMaxAge go regardless of count, then the
// oldest survivors beyond corruptMaxFiles go too, and every deletion is
// counted in telemetry.
func TestReapCorruptByAgeAndCount(t *testing.T) {
	dir := t.TempDir()
	// 5 ancient entries (age-reaped) + corruptMaxFiles+3 recent ones
	// (3 count-reaped).
	ancient := seedCorrupt(t, dir, 5, time.Now().Add(-corruptMaxAge-time.Hour))
	cdir := filepath.Join(dir, corruptDirName)
	recent := make([]string, corruptMaxFiles+3)
	base := time.Now().Add(-time.Hour)
	for i := range recent {
		recent[i] = fmt.Sprintf("recent-%03d.sevc", i)
		p := filepath.Join(cdir, recent[i])
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, time.Time{}, base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	tel := telemetry.New()
	if _, err := openCache(dir, nil, tel, context.Background()); err != nil {
		t.Fatal(err)
	}

	got := listCorrupt(t, dir)
	if len(got) != corruptMaxFiles {
		t.Fatalf("corrupt/ holds %d files after reap, want %d", len(got), corruptMaxFiles)
	}
	for _, name := range ancient {
		if got[name] {
			t.Errorf("ancient entry %s survived the age reap", name)
		}
	}
	// The 3 oldest recent entries were count-reaped; the rest survive.
	for i, name := range recent {
		if want := i >= 3; got[name] != want {
			t.Errorf("recent entry %s present = %v, want %v", name, got[name], want)
		}
	}
	if reaped := tel.Snapshot().Cache.Reaped; reaped != 8 {
		t.Fatalf("telemetry reaped = %d, want 8 (5 aged + 3 over cap)", reaped)
	}
}

// TestReapCorruptOnQuarantine pins the other trigger: a quarantine that
// pushes the directory past the cap reaps the oldest entry immediately,
// and the freshly quarantined file survives.
func TestReapCorruptOnQuarantine(t *testing.T) {
	dir := t.TempDir()
	tel := telemetry.New()
	cache, err := openCache(dir, nil, tel, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := seedCorrupt(t, dir, corruptMaxFiles, time.Now().Add(-time.Hour))

	// Plant a poisoned live entry and quarantine it.
	const fp = "deadbeef"
	if err := os.WriteFile(cache.path(fp), []byte("poisoned"), 0o644); err != nil {
		t.Fatal(err)
	}
	cache.quarantine(fp)

	got := listCorrupt(t, dir)
	if len(got) != corruptMaxFiles {
		t.Fatalf("corrupt/ holds %d files after quarantine, want %d", len(got), corruptMaxFiles)
	}
	if !got[fp+".sevc"] {
		t.Fatal("the freshly quarantined entry was reaped instead of the oldest")
	}
	if got[names[0]] {
		t.Fatalf("oldest entry %s survived; reap removed something else", names[0])
	}
	if reaped := tel.Snapshot().Cache.Reaped; reaped != 1 {
		t.Fatalf("telemetry reaped = %d, want 1", reaped)
	}
}
