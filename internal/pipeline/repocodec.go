package pipeline

import (
	"fmt"
	"sort"

	"schemaevo/internal/vcs"
)

// Source snapshots (vcs.Repo) are persisted by the result store alongside
// their analysis results, with the same hand-rolled binary conventions as
// the cache-entry codec: length-prefixed little-endian, nil-preserving
// counts, (UnixNano, zone offset) times. Map entries are written in
// sorted-key order so encoding is deterministic — EncodeRepo of equal
// repos yields equal bytes, which the store's content addressing and the
// differential tests both rely on.

// repoMagic guards against feeding arbitrary bytes to DecodeRepo.
var repoMagic = [4]byte{'S', 'E', 'V', 'S'}

// repoCodecVersion identifies the source-snapshot layout; bump it whenever
// vcs.Repo or the encoding changes shape.
const repoCodecVersion = 1

// EncodeRepo serializes a repository snapshot. The bytes round-trip
// exactly through DecodeRepo up to time-zone names (only the UTC offset is
// kept, matching a JSON RFC 3339 round trip), which is invisible to the
// analysis: fingerprints and results of the decoded repo are identical to
// the original's.
func EncodeRepo(r *vcs.Repo) []byte {
	w := &enc{buf: make([]byte, 0, 8<<10)}
	w.bytes(repoMagic[:])
	w.int(repoCodecVersion)
	w.str(r.Name)
	w.count(len(r.Commits), r.Commits == nil)
	var paths []string
	for i := range r.Commits {
		c := &r.Commits[i]
		w.str(c.ID)
		w.when(c.Time)
		w.str(c.Message)
		w.count(len(c.Files), c.Files == nil)
		paths = paths[:0]
		for p := range c.Files {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			w.str(p)
			w.str(c.Files[p])
		}
		encStrings(w, c.Deleted)
		w.int(c.SrcLines)
	}
	return w.buf
}

// DecodeRepo deserializes EncodeRepo bytes, failing on truncation,
// trailing garbage, or a magic/version mismatch. It does not re-validate
// the repo: the store only persists snapshots that already passed
// vcs.Repo.Validate at submission time.
func DecodeRepo(data []byte) (*vcs.Repo, error) {
	if len(data) < len(repoMagic) || string(data[:len(repoMagic)]) != string(repoMagic[:]) {
		return nil, errCorruptEntry
	}
	d := &dec{buf: data, off: len(repoMagic)}
	if d.int() != repoCodecVersion {
		return nil, errCorruptEntry
	}
	r := &vcs.Repo{Name: d.str()}
	// commit: id + time + message + files count + deleted count + src lines
	if n := d.count(8 + 16 + 8 + 8 + 8 + 8); n >= 0 {
		r.Commits = make([]vcs.Commit, n)
		for i := range r.Commits {
			if d.err != nil {
				break
			}
			c := &r.Commits[i]
			c.ID = d.str()
			c.Time = d.when()
			c.Message = d.str()
			if nf := d.count(16); nf >= 0 { // file: path + content prefixes
				c.Files = make(map[string]string, nf)
				for j := 0; j < nf; j++ {
					p := d.str()
					c.Files[p] = d.str()
				}
			}
			c.Deleted = decStrings(d)
			c.SrcLines = d.int()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorruptEntry, len(data)-d.off)
	}
	return r, nil
}
