// Package pipeline runs the per-project analysis path (DDL parsing →
// history assembly → measures → labels) as a staged concurrent pipeline
// over a corpus: one bounded worker pool per stage, connected by channels,
// with per-project error attribution, cooperative cancellation, and an
// optional content-addressed result cache that memoizes the expensive
// stages across invocations.
//
// The pipeline is a pure accelerator: for any worker configuration, with a
// cold or warm cache, its per-project results are identical to the
// sequential corpus.Corpus.Analyze. The equivalence is enforced by
// property tests at several seeds and worker counts.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/vcs"
)

// Options configures a pipeline run. The zero value is valid: every stage
// sized to GOMAXPROCS, the paper's quantization scheme, no cache, and
// collect-all error handling.
type Options struct {
	// ParseWorkers, AssembleWorkers and MetricsWorkers size the three
	// stage pools (snapshot parsing; history assembly/diffing; measures,
	// validation and labeling). Values <= 0 select GOMAXPROCS.
	ParseWorkers    int
	AssembleWorkers int
	MetricsWorkers  int
	// FailFast cancels the run on the first project failure instead of
	// collecting every failure (the default).
	FailFast bool
	// CacheDir enables the content-hash result cache rooted at this
	// directory; empty disables caching.
	CacheDir string
	// Scheme overrides the quantization scheme; nil selects the paper's
	// DefaultScheme.
	Scheme *quantize.Scheme
}

// Stats reports what a pipeline run did. CacheHits counts projects whose
// history and measures were restored from the cache without recomputation.
type Stats struct {
	Projects int `json:"projects"`
	Analyzed int `json:"analyzed"`
	Failed   int `json:"failed"`

	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	CacheWrites int `json:"cache_writes"`
	CacheErrors int `json:"cache_errors"`

	ParseWorkers    int `json:"parse_workers"`
	AssembleWorkers int `json:"assemble_workers"`
	MetricsWorkers  int `json:"metrics_workers"`

	Elapsed time.Duration `json:"elapsed_ns"`
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"pipeline: %d projects analyzed (%d failed) in %v; workers %d/%d/%d; cache %d hits, %d misses, %d writes",
		s.Analyzed, s.Failed, s.Elapsed.Round(time.Millisecond),
		s.ParseWorkers, s.AssembleWorkers, s.MetricsWorkers,
		s.CacheHits, s.CacheMisses, s.CacheWrites)
}

// job carries one project through the stages. Derived values are staged
// here and committed to the Project only when the whole chain succeeds, so
// a failed project is left un-Analyzed rather than half-populated.
type job struct {
	idx         int
	p           *corpus.Project
	fingerprint string
	entry       *cacheEntry
	ddlPath     string
	parsed      []history.ParsedVersion
	history     *history.History
	measures    metrics.Measures
	err         error
}

// Run analyzes every project of the corpus through the staged pipeline.
// On failure it returns the join of every project's error (or the first
// one under FailFast), each attributed to its project; projects that
// failed or were skipped keep Analyzed == false.
func Run(ctx context.Context, c *corpus.Corpus, opts Options) (Stats, error) {
	start := time.Now()
	n := len(c.Projects)
	scheme := quantize.DefaultScheme()
	if opts.Scheme != nil {
		scheme = *opts.Scheme
	}
	stats := Stats{
		Projects:        n,
		ParseWorkers:    clampWorkers(opts.ParseWorkers, n),
		AssembleWorkers: clampWorkers(opts.AssembleWorkers, n),
		MetricsWorkers:  clampWorkers(opts.MetricsWorkers, n),
	}

	var cache *diskCache
	if opts.CacheDir != "" {
		var err error
		if cache, err = openCache(opts.CacheDir); err != nil {
			stats.Elapsed = time.Since(start)
			return stats, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(j *job, err error) {
		j.err = fmt.Errorf("pipeline: project %q: %w", j.p.Name, err)
		if opts.FailFast {
			cancel()
		}
	}

	// Stage 1: fingerprint/cache probe and snapshot parsing.
	parse := func(j *job) {
		if cache != nil {
			j.fingerprint = Fingerprint(j.p.Repo)
			if j.entry = cache.load(j.fingerprint); j.entry != nil {
				j.history = j.entry.History
				j.measures = j.entry.Measures
				return
			}
		}
		if err := j.p.Repo.Validate(); err != nil {
			fail(j, err)
			return
		}
		j.ddlPath = j.p.Repo.MainDDLPath()
		if j.ddlPath == "" {
			fail(j, fmt.Errorf("history: repo %q has no DDL file", j.p.Repo.Name))
			return
		}
		parsed, err := history.ParseVersions(j.p.Repo, j.ddlPath)
		if err != nil {
			fail(j, err)
			return
		}
		j.parsed = parsed
	}

	// Stage 2: history assembly (diffing, heartbeats).
	assemble := func(j *job) {
		if j.entry != nil {
			return
		}
		j.history = history.Assemble(j.p.Repo, j.ddlPath, j.parsed)
		j.parsed = nil
	}

	// Stage 3: measures, validation, cache write-back, labels, commit.
	measure := func(j *job) {
		if j.entry == nil {
			j.measures = metrics.Compute(j.history)
			if err := j.measures.Validate(); err != nil {
				fail(j, err)
				return
			}
			cache.store(j.fingerprint, j.p.Name, j.history, j.measures)
		}
		j.p.History = j.history
		j.p.Measures = j.measures
		if j.measures.HasSchema {
			j.p.Labels = quantize.Compute(j.measures, scheme)
		}
		j.p.Analyzed = true
	}

	in := make(chan *job)
	parsedCh := make(chan *job)
	assembledCh := make(chan *job)
	done := make(chan *job)

	go func() {
		defer close(in)
		for i, p := range c.Projects {
			select {
			case in <- &job{idx: i, p: p}:
			case <-runCtx.Done():
				return
			}
		}
	}()
	startStage(stats.ParseWorkers, in, parsedCh, runCtx, parse)
	startStage(stats.AssembleWorkers, parsedCh, assembledCh, runCtx, assemble)
	startStage(stats.MetricsWorkers, assembledCh, done, runCtx, measure)

	var failures []*job
	for j := range done {
		if j.err != nil {
			failures = append(failures, j)
		} else if j.p.Analyzed {
			stats.Analyzed++
		}
	}
	stats.Failed = len(failures)
	if cache != nil {
		stats.CacheHits = int(cache.hits.Load())
		stats.CacheMisses = int(cache.misses.Load())
		stats.CacheWrites = int(cache.writes.Load())
		stats.CacheErrors = int(cache.errs.Load())
	}
	stats.Elapsed = time.Since(start)

	sort.Slice(failures, func(a, b int) bool { return failures[a].idx < failures[b].idx })
	errs := make([]error, 0, len(failures)+1)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for _, j := range failures {
		errs = append(errs, j.err)
	}
	return stats, errors.Join(errs...)
}

// startStage launches a bounded worker pool that applies fn to every job
// from in and forwards it to out, closing out when the pool drains.
// Errored jobs and jobs arriving after cancellation pass through
// unprocessed, so every fed job reaches the collector and nothing blocks.
func startStage(workers int, in <-chan *job, out chan<- *job, ctx context.Context, fn func(*job)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range in {
				if j.err == nil && ctx.Err() == nil {
					fn(j)
				}
				out <- j
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
}

// clampWorkers resolves a per-stage worker request against the job count.
func clampWorkers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Result is the analysis of a single repository produced by AnalyzeRepo.
type Result struct {
	History  *history.History
	Measures metrics.Measures
	Labels   quantize.Labels
}

// AnalyzeRepo runs one repository through the pipeline (including the
// cache, when configured). It is the single-project entry point behind the
// schemaevo command and public API.
func AnalyzeRepo(ctx context.Context, r *vcs.Repo, opts Options) (*Result, Stats, error) {
	c := &corpus.Corpus{Projects: []*corpus.Project{{Name: r.Name, Repo: r}}}
	stats, err := Run(ctx, c, opts)
	if err != nil {
		return nil, stats, err
	}
	p := c.Projects[0]
	return &Result{History: p.History, Measures: p.Measures, Labels: p.Labels}, stats, nil
}
