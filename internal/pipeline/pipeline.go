// Package pipeline runs the per-project analysis path (DDL parsing →
// history assembly → measures → labels) over a corpus with a
// shard-per-core architecture: projects are hashed to N shards, each shard
// is one goroutine that owns its reconstructor scratch and runs every
// stage of its projects to completion, with per-project error attribution,
// cooperative cancellation, and an optional content-addressed result cache
// that memoizes the expensive stages across invocations. There are no
// cross-stage channels: at one shard the run degenerates to exactly the
// sequential loop, so the pipeline can never underperform
// corpus.Corpus.Analyze by construction (the regression the earlier
// channel-staged design measured at 1 core).
//
// The pipeline is a pure accelerator: for any shard configuration, with a
// cold or warm cache, its per-project results are identical to the
// sequential corpus.Corpus.Analyze. The equivalence is enforced by
// property tests at several seeds and shard counts.
//
// The pipeline is also a fault boundary: a panicking, erroring, or stuck
// project becomes one attributed entry in the run's DegradationReport, and
// can never crash the process or perturb another project's results. Worker
// panics are recovered and classified; Options.ProjectTimeout arms a
// watchdog that abandons and quarantines stuck projects; cache and
// filesystem hiccups are retried with backoff and degrade to recomputation.
// The chaos tests (chaos_test.go) drive all of this with deterministic
// fault injection (internal/faultinject) and assert the core invariant:
// projects untouched by faults produce results identical to a fault-free
// run.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/schema"
	"schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// Options configures a pipeline run. The zero value is valid: one shard
// per core (GOMAXPROCS), the paper's quantization scheme, no cache, no
// deadline, no fault injection, and collect-all error handling.
type Options struct {
	// Shards sets how many analysis shards the corpus is hashed across;
	// each shard is one goroutine running every stage of its projects to
	// completion. <= 0 derives the count from the legacy worker fields,
	// else GOMAXPROCS; the count is clamped to the project count, and a
	// single shard runs inline in the caller's goroutine — exactly the
	// sequential loop.
	Shards int
	// ParseWorkers, AssembleWorkers and MetricsWorkers are the legacy
	// per-stage pool sizes; since the shard-per-core rewrite a stage
	// cannot be sized independently, so when Shards is unset the shard
	// count is the maximum of the three. Values <= 0 select GOMAXPROCS.
	ParseWorkers    int
	AssembleWorkers int
	MetricsWorkers  int
	// FailFast cancels the run on the first project failure instead of
	// collecting every failure (the default).
	FailFast bool
	// CacheDir enables the content-hash result cache rooted at this
	// directory; empty disables caching.
	CacheDir string
	// Dialect selects the SQL dialect DDL snapshots are parsed under:
	// "" or "generic" (the default) is the legacy union grammar, "auto"
	// detects per project from the first surviving snapshot, and a
	// concrete name ("mysql", "postgres", "sqlite", or an alias) forces
	// that adapter. The selection is part of the cache fingerprint and is
	// recorded in every produced History.Dialect.
	Dialect string
	// Scheme overrides the quantization scheme; nil selects the paper's
	// DefaultScheme.
	Scheme *quantize.Scheme
	// ProjectTimeout bounds one project's total in-stage processing time.
	// A project that exceeds it is failed with the timeout taxonomy and
	// its worker goroutine is abandoned (quarantined): the stage pool
	// moves on immediately and the stray goroutine's results are
	// discarded when it eventually returns. 0 disables the watchdog.
	ProjectTimeout time.Duration
	// Fault injects deterministic faults at the pipeline's named sites
	// (pipeline.parse, pipeline.assemble, pipeline.metrics, cache.read,
	// cache.write) — the chaos-testing hook. nil disables injection.
	Fault *faultinject.Injector
	// Telemetry, when non-nil, collects per-stage timings and occupancy,
	// cache effectiveness counters, fault/degradation events and per-project
	// spans for this run. nil (the default) disables collection at zero
	// hot-path cost.
	Telemetry *telemetry.Collector
}

// Stats reports what a pipeline run did. CacheHits counts projects whose
// history and measures were restored from the cache without recomputation.
// Degradation itemizes every lost project; it is non-nil on every run.
type Stats struct {
	Projects int `json:"projects"`
	Analyzed int `json:"analyzed"`
	Failed   int `json:"failed"`
	// Quarantined counts projects abandoned by the deadline watchdog.
	Quarantined int `json:"quarantined,omitempty"`
	// DataAnomalies counts recorded data anomalies (FailAnomaly taxonomy)
	// across successfully analyzed projects; the per-project detail is in
	// Degradation.Anomalies.
	DataAnomalies int `json:"data_anomalies,omitempty"`

	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	CacheWrites int `json:"cache_writes"`
	CacheErrors int `json:"cache_errors"`
	// CacheCorrupt counts entries that failed their integrity check and
	// were quarantined to <cachedir>/corrupt/ (also included in
	// CacheErrors, preserving its "anything unhealthy" meaning).
	CacheCorrupt int `json:"cache_corrupt,omitempty"`

	// Shards is the resolved shard count of the run; the legacy per-stage
	// worker fields all report the same value (stages are no longer sized
	// independently).
	Shards          int `json:"shards"`
	ParseWorkers    int `json:"parse_workers"`
	AssembleWorkers int `json:"assemble_workers"`
	MetricsWorkers  int `json:"metrics_workers"`

	Elapsed time.Duration `json:"elapsed_ns"`

	Degradation *DegradationReport `json:"degradation,omitempty"`
}

func (s Stats) String() string {
	msg := fmt.Sprintf(
		"pipeline: %d projects analyzed (%d failed) in %v; %d shards; cache %d hits, %d misses, %d writes",
		s.Analyzed, s.Failed, s.Elapsed.Round(time.Millisecond),
		s.Shards,
		s.CacheHits, s.CacheMisses, s.CacheWrites)
	if s.Quarantined > 0 {
		msg += fmt.Sprintf("; %d quarantined", s.Quarantined)
	}
	return msg
}

// Lifecycle states of one job, used to arbitrate between the committing
// worker and the deadline watchdog without locks.
const (
	stateRunning   int32 = iota // stages may process and commit the job
	stateCommitted              // the metrics stage published results to the Project
	stateAbandoned              // the watchdog gave up on the job; discard its results
)

// job carries one project through the stages. Derived values are staged
// here and committed to the Project only when the whole chain succeeds, so
// a failed project is left un-Analyzed rather than half-populated.
type job struct {
	idx         int
	p           *corpus.Project
	fingerprint string
	entry       *cacheEntry
	ddlPath     string
	parsed      []history.ParsedVersion
	dialect     sqlddl.DialectID
	history     *history.History
	measures    metrics.Measures
	err         error
	kind        FailureKind
	// deadline is set when the project enters its first stage; the
	// watchdog abandons the job when a stage outlives it.
	deadline time.Time
	// readyAt is stamped (only when telemetry is on) when the job becomes
	// eligible for its next stage; the stage reads it to account queue wait.
	readyAt time.Time
	// state arbitrates commit vs abandon: the metrics stage CASes
	// running→committed before touching the Project, the watchdog CASes
	// running→abandoned before reporting a timeout. Exactly one wins, so
	// an abandoned worker can never publish results.
	state atomic.Int32
}

// Run analyzes every project of the corpus through the staged pipeline.
// On failure it returns the join of every project's error (or the first
// one under FailFast), each attributed to its project; projects that
// failed or were skipped keep Analyzed == false. Stats.Degradation holds
// the same failures in structured form, classified by taxonomy.
func Run(ctx context.Context, c *corpus.Corpus, opts Options) (Stats, error) {
	start := time.Now()
	n := len(c.Projects)
	scheme := quantize.DefaultScheme()
	if opts.Scheme != nil {
		scheme = *opts.Scheme
	}
	shards := resolveShards(opts, n)
	stats := Stats{
		Projects:        n,
		Shards:          shards,
		ParseWorkers:    shards,
		AssembleWorkers: shards,
		MetricsWorkers:  shards,
	}

	// Resolve the dialect selection once: a forced adapter, or nil under
	// "auto" (per-project detection inside ParseVersionsIn). An unknown
	// name fails the whole run up front — silently falling back to generic
	// would poison the cache under a key claiming the requested dialect.
	autoDialect := opts.Dialect == "auto"
	var forcedDialect sqlddl.Dialect
	if !autoDialect {
		d, ok := dialect.ByName(opts.Dialect)
		if !ok {
			stats.Elapsed = time.Since(start)
			return stats, fmt.Errorf("pipeline: unknown dialect %q (accepted: %v)", opts.Dialect, dialect.Names())
		}
		forcedDialect = d
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	tel := opts.Telemetry
	// Register the stages in pipeline order so the report lists them that
	// way, and tap the injector so fired faults land in the run report.
	tel.Stage("parse").SetWorkers(shards)
	tel.Stage("assemble").SetWorkers(shards)
	tel.Stage("metrics").SetWorkers(shards)
	if tel != nil && opts.Fault != nil {
		opts.Fault.SetObserver(tel.Fault)
		defer opts.Fault.SetObserver(nil)
	}

	var cache *diskCache
	if opts.CacheDir != "" {
		var err error
		if cache, err = openCache(opts.CacheDir, opts.Fault, tel, runCtx); err != nil {
			stats.Elapsed = time.Since(start)
			return stats, err
		}
	}

	fail := func(j *job, kind FailureKind, err error) {
		j.kind = kind
		j.err = fmt.Errorf("pipeline: project %q: %w", j.p.Name, err)
		if opts.FailFast {
			cancel()
		}
	}

	// inject applies a configured fault at a pipeline stage site: KindErr
	// returns the error for the caller to attribute, KindPanic panics
	// (recovered by the stage wrapper), KindDelay stalls cooperatively.
	// KindCorrupt has no meaning at a stage boundary and is ignored.
	inject := func(site string, j *job) error {
		switch opts.Fault.At(site, j.p.Name) {
		case faultinject.KindErr:
			return &faultinject.Error{Site: site, Key: j.p.Name}
		case faultinject.KindPanic:
			panic(fmt.Sprintf("faultinject: %s (%s)", site, j.p.Name))
		case faultinject.KindDelay:
			opts.Fault.Sleep(runCtx)
		}
		return nil
	}

	// Stage 1: fingerprint/cache probe and snapshot parsing. The parse
	// work runs on the worker's own reconstructor, so one worker's whole
	// job stream shares parser buffers and an intern table.
	parse := func(j *job, ws *workerScratch) {
		if err := inject("pipeline.parse", j); err != nil {
			fail(j, FailParse, err)
			return
		}
		if cache != nil {
			j.fingerprint = FingerprintDialect(j.p.Repo, opts.Dialect)
			if j.entry = cache.load(j.fingerprint); j.entry != nil {
				j.history = j.entry.History
				j.measures = j.entry.Measures
				return
			}
		}
		if err := j.p.Repo.Validate(); err != nil {
			fail(j, FailParse, err)
			return
		}
		j.ddlPath = j.p.Repo.MainDDLPath()
		if j.ddlPath == "" {
			fail(j, FailParse, fmt.Errorf("history: repo %q has no DDL file", j.p.Repo.Name))
			return
		}
		rc, release := ws.reconstructor()
		defer release()
		parsed, err := history.ParseVersionsIn(rc, j.p.Repo, j.ddlPath, forcedDialect)
		if err != nil {
			fail(j, FailParse, err)
			return
		}
		j.parsed = parsed
		j.dialect = rc.DialectID()
	}

	// Stage 2: history assembly (diffing, heartbeats).
	assemble := func(j *job, _ *workerScratch) {
		if err := inject("pipeline.assemble", j); err != nil {
			fail(j, FailAssemble, err)
			return
		}
		if j.entry != nil {
			return
		}
		j.history = history.Assemble(j.p.Repo, j.ddlPath, j.parsed)
		j.history.Dialect = j.dialect
		j.parsed = nil
	}

	// Stage 3: measures, validation, cache write-back, labels, commit.
	measure := func(j *job, _ *workerScratch) {
		if err := inject("pipeline.metrics", j); err != nil {
			fail(j, FailMetrics, err)
			return
		}
		if j.entry == nil {
			j.measures = metrics.Compute(j.history)
			if err := j.measures.Validate(); err != nil {
				fail(j, FailMetrics, err)
				return
			}
			cache.store(j.fingerprint, j.p.Name, j.history, j.measures)
		}
		if !j.state.CompareAndSwap(stateRunning, stateCommitted) {
			// The watchdog abandoned this project mid-flight; its timeout
			// failure is already on the way to the collector. Discard.
			return
		}
		j.p.History = j.history
		j.p.Measures = j.measures
		if j.measures.HasSchema {
			j.p.Labels = quantize.Compute(j.measures, scheme)
		}
		j.p.Analyzed = true
	}

	exec := stageExec{timeout: opts.ProjectTimeout, fail: fail, col: tel}
	chain := [...]stage{
		exec.named("parse", parse),
		exec.named("assemble", assemble),
		exec.named("metrics", measure),
	}

	// Hash every project to a shard up front. All jobs exist before any
	// shard runs, so a cancelled or failed-fast run still accounts for
	// every project (skipped ones pass through un-Analyzed and error-free,
	// exactly as jobs past a closed channel did in the old staged design).
	results := make([]*job, n)
	buckets := make([][]*job, shards)
	for i, p := range c.Projects {
		s := 0
		if shards > 1 {
			s = shardFor(p.Name, shards)
		}
		buckets[s] = append(buckets[s], &job{idx: i, p: p})
	}

	// Each shard owns one workerScratch and drives its projects through
	// every stage back to back: no cross-stage handoff, no channel sends,
	// and reconstructor/parser state stays hot in one goroutine. The stage
	// wrappers still provide panic isolation, the deadline watchdog, and
	// per-stage telemetry.
	runShard := func(jobs []*job) {
		ws := &workerScratch{}
		defer ws.release()
		for _, j := range jobs {
			if tel != nil {
				j.readyAt = time.Now()
			}
			for _, st := range &chain {
				if j.err == nil && runCtx.Err() == nil {
					if st.tel == nil {
						j = st.run(j, ws)
					} else {
						j = st.observed(j, ws)
					}
				}
				if st.tel != nil {
					j.readyAt = time.Now()
				}
			}
			results[j.idx] = j
		}
	}
	if shards <= 1 {
		// Single shard: run inline in the caller's goroutine — this is
		// exactly the sequential analysis loop, with zero scheduling
		// overhead on top.
		runShard(buckets[0])
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(jobs []*job) {
				defer wg.Done()
				runShard(jobs)
			}(buckets[s])
		}
		wg.Wait()
	}

	// Collect in corpus order: results is index-addressed, so failure and
	// anomaly reporting is deterministic without sorting.
	var failures []*job
	var anomalous []*job
	for _, j := range results {
		if j.err != nil {
			failures = append(failures, j)
			tel.Degradation(string(j.kind))
		} else if j.p.Analyzed {
			stats.Analyzed++
			if j.history != nil && len(j.history.SpanAnomalies()) > 0 {
				anomalous = append(anomalous, j)
			}
		}
	}
	stats.Failed = len(failures)
	if cache != nil {
		stats.CacheHits = int(cache.hits.Load())
		stats.CacheMisses = int(cache.misses.Load())
		stats.CacheWrites = int(cache.writes.Load())
		stats.CacheErrors = int(cache.errs.Load())
		stats.CacheCorrupt = int(cache.corrupt.Load())
	}

	rep := &DegradationReport{Projects: n, ByKind: map[FailureKind]int{}, CacheIncidents: stats.CacheErrors}
	for _, j := range failures {
		rep.Failures = append(rep.Failures, ProjectFailure{Project: j.p.Name, Kind: j.kind, Error: j.err.Error()})
		rep.ByKind[j.kind]++
		if j.kind == FailTimeout {
			rep.Quarantined = append(rep.Quarantined, j.p.Name)
		}
	}
	for _, j := range anomalous {
		for _, msg := range j.history.SpanAnomalies() {
			rep.Anomalies = append(rep.Anomalies, ProjectAnomaly{Project: j.p.Name, Message: msg})
			tel.Degradation(string(FailAnomaly))
		}
	}
	stats.DataAnomalies = len(rep.Anomalies)
	stats.Quarantined = len(rep.Quarantined)
	rep.Analyzed = stats.Analyzed
	stats.Degradation = rep
	stats.Elapsed = time.Since(start)

	errs := make([]error, 0, len(failures)+1)
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	for _, j := range failures {
		errs = append(errs, j.err)
	}
	return stats, errors.Join(errs...)
}

// stageExec carries the per-run fault-handling and telemetry configuration
// shared by the three stage pools; named binds it to one stage's function.
type stageExec struct {
	timeout time.Duration
	fail    func(*job, FailureKind, error)
	col     *telemetry.Collector
}

func (e stageExec) named(name string, fn func(*job, *workerScratch)) stage {
	return stage{name: name, fn: fn, timeout: e.timeout, fail: e.fail, col: e.col, tel: e.col.Stage(name)}
}

// workerScratch is the per-worker arena of a stage pool: state one worker
// goroutine reuses across every job it processes, so steady-state stage
// work stops allocating per project. It is owned by exactly one goroutine
// at a time and must never be shared with an abandonable goroutine (see
// stage.run).
type workerScratch struct {
	rc *schema.Reconstructor
}

// reconstructor returns the worker's reconstructor and a release func.
// With a nil receiver (no worker affinity: the deadline watchdog may
// abandon the running goroutine and reuse the worker, so worker state
// cannot be lent out) it falls back to a pooled per-call instance.
func (ws *workerScratch) reconstructor() (*schema.Reconstructor, func()) {
	if ws != nil {
		if ws.rc == nil {
			ws.rc = schema.AcquireReconstructor()
		}
		return ws.rc, func() {}
	}
	rc := schema.AcquireReconstructor()
	return rc, func() { schema.ReleaseReconstructor(rc) }
}

func (ws *workerScratch) release() {
	if ws.rc != nil {
		schema.ReleaseReconstructor(ws.rc)
		ws.rc = nil
	}
}

// stage is one pool's unit of execution: the stage function wrapped in
// panic recovery and (when configured) the per-project deadline watchdog.
type stage struct {
	name    string
	fn      func(*job, *workerScratch)
	timeout time.Duration
	fail    func(*job, FailureKind, error)
	// col and tel are nil when telemetry is off; the worker loop gates all
	// clock reads on tel so the disabled path costs one pointer compare.
	col *telemetry.Collector
	tel *telemetry.Stage
}

// invoke runs the stage function under panic isolation: a panicking
// project becomes an attributed failure of that project, never a crashed
// process.
func (s stage) invoke(j *job, ws *workerScratch) {
	defer func() {
		if r := recover(); r != nil {
			s.fail(j, FailPanic, fmt.Errorf("%s stage: panic: %v\n%s", s.name, r, debug.Stack()))
		}
	}()
	s.fn(j, ws)
}

// run executes the stage for one job. Without a timeout it runs inline.
// With one, the stage function runs in a goroutine raced against the
// job's deadline (armed on first-stage entry and shared by all stages):
// if the deadline fires first and the abandon CAS wins, the worker moves
// on immediately with a replacement job carrying the timeout failure,
// while the stray goroutine finishes in the background against a job
// nobody reads — the commit gate in the metrics stage keeps it from ever
// publishing to the Project.
func (s stage) run(j *job, ws *workerScratch) *job {
	if s.timeout <= 0 {
		s.invoke(j, ws)
		return j
	}
	if j.deadline.IsZero() {
		j.deadline = time.Now().Add(s.timeout)
	}
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		// The goroutine may outlive the watchdog's abandonment while the
		// worker moves on to the next job, so it must not borrow the
		// worker's scratch: nil routes it to pooled per-call state.
		s.invoke(j, nil)
	}()
	timer := time.NewTimer(time.Until(j.deadline))
	defer timer.Stop()
	select {
	case <-finished:
		return j
	case <-timer.C:
		if !j.state.CompareAndSwap(stateRunning, stateAbandoned) {
			// The job committed in the race window; keep it.
			<-finished
			return j
		}
		repl := &job{idx: j.idx, p: j.p, deadline: j.deadline}
		s.fail(repl, FailTimeout, fmt.Errorf(
			"%s stage: exceeded the per-project deadline (%v); worker quarantined", s.name, s.timeout))
		return repl
	}
}

// observed wraps run with the stage's telemetry: queue wait (time since the
// job became eligible), occupancy, the per-job duration histogram, and one
// trace span. Only called when telemetry is on.
func (s stage) observed(j *job, ws *workerScratch) *job {
	var wait time.Duration
	if !j.readyAt.IsZero() {
		wait = time.Since(j.readyAt)
	}
	s.tel.Enter()
	begin := time.Now()
	j = s.run(j, ws)
	busy := time.Since(begin)
	s.tel.Exit()
	failed := j.err != nil
	s.tel.Observe(wait, busy, failed)
	s.col.RecordSpan(j.p.Name, s.name, begin, busy, failed)
	return j
}

// resolveShards picks the run's shard count: an explicit Options.Shards
// wins; otherwise the legacy per-stage worker fields (their maximum, so
// configurations tuned for the old staged pools keep their parallelism);
// otherwise GOMAXPROCS. The result is clamped to the project count.
func resolveShards(opts Options, jobs int) int {
	s := opts.Shards
	if s <= 0 {
		s = max(opts.ParseWorkers, opts.AssembleWorkers, opts.MetricsWorkers)
	}
	return clampWorkers(s, jobs)
}

// shardFor hashes a project name onto a shard (FNV-1a): assignment is
// deterministic across runs and independent of corpus order.
func shardFor(name string, shards int) int {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// clampWorkers resolves a shard-count request against the job count.
func clampWorkers(n, jobs int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Result is the analysis of a single repository produced by AnalyzeRepo.
type Result struct {
	History  *history.History
	Measures metrics.Measures
	Labels   quantize.Labels
}

// AnalyzeRepo runs one repository through the pipeline (including the
// cache, when configured). It is the single-project entry point behind the
// schemaevo command and public API.
func AnalyzeRepo(ctx context.Context, r *vcs.Repo, opts Options) (*Result, Stats, error) {
	c := &corpus.Corpus{Projects: []*corpus.Project{{Name: r.Name, Repo: r}}}
	stats, err := Run(ctx, c, opts)
	if err != nil {
		return nil, stats, err
	}
	p := c.Projects[0]
	return &Result{History: p.History, Measures: p.Measures, Labels: p.Labels}, stats, nil
}
