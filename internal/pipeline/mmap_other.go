//go:build !linux && !darwin

package pipeline

import "errors"

// mmapSupported reports whether mapFile can succeed on this platform; it
// gates the cross-platform fallback tests, mirroring the
// diskfree_unix/diskfree_other split in internal/store.
const mmapSupported = false

// mapFile is unsupported here; the cache falls back to os.ReadFile, which
// decodes byte-identically (the flat decoder only needs a stable buffer,
// not a mapping).
func mapFile(string) ([]byte, func(), error) {
	return nil, nil, errors.ErrUnsupported
}
