package pipeline

import (
	"bytes"
	"testing"
	"time"

	"schemaevo/internal/synth"
	"schemaevo/internal/vcs"
)

// TestRepoCodecRoundTrip pins that EncodeRepo/DecodeRepo preserve every
// field the analysis consumes — in particular that the content fingerprint
// of the decoded repo equals the original's, which is what makes persisted
// source snapshots re-analyzable under the same ID.
func TestRepoCodecRoundTrip(t *testing.T) {
	c, err := synth.RandomCorpus(8, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		data := EncodeRepo(p.Repo)
		got, err := DecodeRepo(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if Fingerprint(got) != Fingerprint(p.Repo) {
			t.Fatalf("%s: fingerprint changed across the codec round trip", p.Name)
		}
		if !bytes.Equal(EncodeRepo(got), data) {
			t.Fatalf("%s: re-encoding the decoded repo changed the bytes", p.Name)
		}
	}
}

// TestRepoCodecEdgeCases exercises nil-ness preservation and awkward
// commits: nil Files, empty Files, deletions, zoned times.
func TestRepoCodecEdgeCases(t *testing.T) {
	zone := time.FixedZone("", 5*3600+1800)
	r := &vcs.Repo{
		Name: "edge",
		Commits: []vcs.Commit{
			{ID: "c0", Time: time.Unix(1e9, 42).In(zone), Files: map[string]string{"schema.sql": "CREATE TABLE t (a INT);"}},
			{ID: "c1", Time: time.Unix(2e9, 0).UTC(), Message: "drop", Deleted: []string{"schema.sql"}, SrcLines: 7},
			{ID: "c2", Time: time.Unix(3e9, 0).UTC(), Files: map[string]string{}},
			{ID: "c3", Time: time.Unix(4e9, 0).UTC()},
		},
	}
	got, err := DecodeRepo(EncodeRepo(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Commits[0].Files == nil || len(got.Commits[0].Files) != 1 {
		t.Fatalf("commit 0 files lost: %#v", got.Commits[0].Files)
	}
	if !got.Commits[0].Time.Equal(r.Commits[0].Time) {
		t.Fatalf("commit 0 time = %v, want %v", got.Commits[0].Time, r.Commits[0].Time)
	}
	if _, off := got.Commits[0].Time.Zone(); off != 5*3600+1800 {
		t.Fatalf("commit 0 zone offset = %d, want %d", off, 5*3600+1800)
	}
	if got.Commits[1].Deleted == nil || got.Commits[1].Deleted[0] != "schema.sql" || got.Commits[1].SrcLines != 7 {
		t.Fatalf("commit 1 mangled: %#v", got.Commits[1])
	}
	if got.Commits[2].Files == nil || len(got.Commits[2].Files) != 0 {
		t.Fatalf("commit 2 empty-map nil-ness lost: %#v", got.Commits[2].Files)
	}
	if got.Commits[3].Files != nil || got.Commits[3].Deleted != nil {
		t.Fatalf("commit 3 nil-ness lost: %#v", got.Commits[3])
	}
}

// TestDecodeRepoRejectsGarbage pins the decoder's failure modes:
// truncation, trailing bytes, wrong magic and wrong version all error
// instead of returning a half-decoded repo.
func TestDecodeRepoRejectsGarbage(t *testing.T) {
	good := EncodeRepo(&vcs.Repo{Name: "g", Commits: []vcs.Commit{{ID: "c", Time: time.Unix(1e9, 0).UTC()}}})
	if _, err := DecodeRepo(good[:len(good)-3]); err == nil {
		t.Fatal("truncated bytes decoded")
	}
	if _, err := DecodeRepo(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := DecodeRepo(bad); err == nil {
		t.Fatal("wrong magic decoded")
	}
	bad = append([]byte(nil), good...)
	bad[4] ^= 0xff // version field
	if _, err := DecodeRepo(bad); err == nil {
		t.Fatal("wrong version decoded")
	}
	if _, err := DecodeRepo(nil); err == nil {
		t.Fatal("nil decoded")
	}
}
