package vcs

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"schemaevo/internal/faultinject"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

func sampleRepo() *Repo {
	return &Repo{
		Name: "demo",
		Commits: []Commit{
			{ID: "c0", Time: day(2020, 1, 5), Files: map[string]string{"main.go": "package main"}, SrcLines: 10},
			{ID: "c1", Time: day(2020, 2, 10), Files: map[string]string{"db/schema.sql": "CREATE TABLE a (x INT);"}, SrcLines: 5},
			{ID: "c2", Time: day(2020, 4, 1), Files: map[string]string{"db/schema.sql": "CREATE TABLE a (x INT, y INT);"}, SrcLines: 7},
			{ID: "c3", Time: day(2020, 6, 30), Files: map[string]string{"main.go": "package main // v2"}, SrcLines: 20},
		},
	}
}

func TestValidate(t *testing.T) {
	r := sampleRepo()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Repo{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty repo should fail validation")
	}
	bad := sampleRepo()
	bad.Commits[2].Time = day(2019, 1, 1)
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order commits should fail validation")
	}
}

func TestLifetimeAndMonthIndex(t *testing.T) {
	r := sampleRepo()
	if got := r.LifetimeMonths(); got != 6 {
		t.Errorf("lifetime = %d months, want 6 (Jan..Jun)", got)
	}
	if got := MonthIndex(day(2020, 1, 5), day(2020, 1, 31)); got != 0 {
		t.Errorf("same month index = %d", got)
	}
	if got := MonthIndex(day(2020, 11, 1), day(2021, 2, 1)); got != 3 {
		t.Errorf("cross-year index = %d", got)
	}
}

func TestFileHistoryAndDDLPaths(t *testing.T) {
	r := sampleRepo()
	hist := r.FileHistory("db/schema.sql")
	if len(hist) != 2 {
		t.Fatalf("versions = %d", len(hist))
	}
	if hist[0].Time != day(2020, 2, 10) || hist[1].Content != "CREATE TABLE a (x INT, y INT);" {
		t.Errorf("history: %+v", hist)
	}
	paths := r.DDLPaths()
	if len(paths) != 1 || paths[0] != "db/schema.sql" {
		t.Errorf("ddl paths: %v", paths)
	}
	if got := r.MainDDLPath(); got != "db/schema.sql" {
		t.Errorf("main ddl = %q", got)
	}
}

func TestMainDDLPathPrefersMostVersions(t *testing.T) {
	r := &Repo{Name: "multi", Commits: []Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"a.sql": "1", "b.sql": "1"}},
		{ID: "1", Time: day(2020, 2, 1), Files: map[string]string{"b.sql": "2"}},
	}}
	if got := r.MainDDLPath(); got != "b.sql" {
		t.Errorf("main ddl = %q, want b.sql", got)
	}
}

func TestMainDDLPathTieBreaks(t *testing.T) {
	r := &Repo{Name: "tie", Commits: []Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"z.sql": "1", "a.sql": "1"}},
	}}
	if got := r.MainDDLPath(); got != "a.sql" {
		t.Errorf("tie break = %q, want a.sql", got)
	}
	none := &Repo{Name: "none", Commits: []Commit{{ID: "0", Time: day(2020, 1, 1)}}}
	if got := none.MainDDLPath(); got != "" {
		t.Errorf("no ddl = %q", got)
	}
}

func TestFileDeletion(t *testing.T) {
	r := &Repo{Name: "del", Commits: []Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"s.sql": "CREATE TABLE a (x INT);"}},
		{ID: "1", Time: day(2020, 2, 1), Deleted: []string{"s.sql"}},
	}}
	hist := r.FileHistory("s.sql")
	if len(hist) != 2 || !hist[1].Deleted {
		t.Errorf("history: %+v", hist)
	}
}

func TestMonthlySrcLines(t *testing.T) {
	r := sampleRepo()
	m := r.MonthlySrcLines()
	want := []int{10, 5, 0, 7, 0, 20}
	if len(m) != len(want) {
		t.Fatalf("months = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("month %d = %d, want %d", i, m[i], want[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sampleRepo()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != r.Name || len(back.Commits) != len(r.Commits) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Commits[1].Files["db/schema.sql"] != r.Commits[1].Files["db/schema.sql"] {
		t.Error("file content lost")
	}
	if !back.Commits[2].Time.Equal(r.Commits[2].Time) {
		t.Error("time lost")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"name":"x","commits":[]}`)); err == nil {
		t.Error("commitless repo should be rejected")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestVersionDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := sampleRepo()
	if err := WriteVersionDir(r, dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVersionDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Commits) != 2 {
		t.Fatalf("commits = %d", len(back.Commits))
	}
	hist := back.FileHistory("schema.sql")
	if hist[0].Content != "CREATE TABLE a (x INT);" {
		t.Errorf("v0 content = %q", hist[0].Content)
	}
	if got := hist[1].Time.Format("2006-01-02"); got != "2020-04-01" {
		t.Errorf("v1 date = %s", got)
	}
}

func TestReadVersionDirRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadVersionDir(dir); err == nil {
		t.Error("empty dir should be rejected")
	}
	if _, err := ReadVersionDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should be rejected")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	r := sampleRepo()
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "demo" || len(back.Commits) != 4 {
		t.Errorf("loaded: %+v", back)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

// TestFaultInjection exercises the package-level injector hooks: read
// faults surface as errors with the site recorded, corrupt reads mangle
// the bytes deterministically, and removing the injector restores clean
// behaviour. Not parallel — the injector is package-global.
func TestFaultInjection(t *testing.T) {
	dir := t.TempDir()
	if err := WriteVersionDir(sampleRepo(), dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "repo.json")
	if err := sampleRepo().SaveFile(path); err != nil {
		t.Fatal(err)
	}

	SetFaultInjector(faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1,
		Kinds: []faultinject.Kind{faultinject.KindErr},
		Sites: []string{"vcs.open"},
	}))
	defer SetFaultInjector(nil)

	var injErr *faultinject.Error
	if _, err := LoadFile(path); !errors.As(err, &injErr) || injErr.Site != "vcs.open" {
		t.Errorf("LoadFile under injection: err = %v, want a vcs.open fault", err)
	}
	if _, err := ReadVersionDir(dir); !errors.As(err, &injErr) {
		t.Errorf("ReadVersionDir under injection: err = %v, want a vcs.open fault", err)
	}

	// Corrupt reads: the snapshot content differs from what is on disk,
	// and identically so on every read (the mangling is deterministic).
	SetFaultInjector(faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  1,
		Kinds: []faultinject.Kind{faultinject.KindCorrupt},
		Sites: []string{"vcs.read.bytes"},
	}))
	first, err := ReadVersionDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ReadVersionDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	clean := sampleRepo()
	if first.Commits[0].Files["schema.sql"] == clean.Commits[1].Files["db/schema.sql"] {
		t.Error("corrupt injection left the snapshot content untouched")
	}
	if first.Commits[0].Files["schema.sql"] != second.Commits[0].Files["schema.sql"] {
		t.Error("corrupt injection is not deterministic across reads")
	}

	SetFaultInjector(nil)
	if _, err := LoadFile(path); err != nil {
		t.Errorf("clearing the injector did not restore clean reads: %v", err)
	}
}
