// Package vcs provides the minimal repository substrate the analysis
// pipeline needs: a chronological sequence of commits, each carrying full
// snapshots of the files it touches plus a count of source-code lines
// touched. It stands in for the local git clones the paper's authors used:
// the pipeline consumes only (timestamped DDL versions, per-commit source
// activity), and that is exactly what this model carries.
package vcs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"schemaevo/internal/faultinject"
)

// fault optionally injects chaos into the package's filesystem reads (the
// "vcs.open" and "vcs.read" sites), so extraction robustness can be tested
// against I/O errors, stalls, and corrupted snapshot bytes. The default is
// nil: no injection, zero overhead beyond an atomic load.
var fault atomic.Pointer[faultinject.Injector]

// SetFaultInjector installs (or, with nil, removes) the injector applied
// to this package's repository reads. Intended for chaos tests and the
// CLIs' -fault-seed mode.
func SetFaultInjector(in *faultinject.Injector) { fault.Store(in) }

// injectRead applies a configured fault at a read site: KindErr returns an
// injected transient error, KindDelay stalls briefly. Corrupt faults are
// handled by the call sites that hold bytes.
func injectRead(site, key string) error {
	in := fault.Load()
	switch in.At(site, key) {
	case faultinject.KindErr:
		return &faultinject.Error{Site: site, Key: key}
	case faultinject.KindDelay:
		in.Sleep(context.Background())
	}
	return nil
}

// Commit is one repository commit. Files carries the full post-commit
// content of each touched file (snapshot semantics, as obtained from
// `git show <rev>:<path>`); Deleted lists files removed by the commit.
type Commit struct {
	ID      string            `json:"id"`
	Time    time.Time         `json:"time"`
	Message string            `json:"message,omitempty"`
	Files   map[string]string `json:"files,omitempty"`
	Deleted []string          `json:"deleted,omitempty"`
	// SrcLines is the number of source-code lines touched by the commit
	// in non-DDL files. It feeds the project (source) heartbeat of Fig. 1.
	SrcLines int `json:"src_lines,omitempty"`
}

// Repo is an ordered commit history for one project.
type Repo struct {
	Name    string   `json:"name"`
	Commits []Commit `json:"commits"`
}

// Validate checks structural invariants: at least one commit, and
// non-decreasing commit times.
func (r *Repo) Validate() error {
	if len(r.Commits) == 0 {
		return fmt.Errorf("vcs: repo %q has no commits", r.Name)
	}
	for i := 1; i < len(r.Commits); i++ {
		if r.Commits[i].Time.Before(r.Commits[i-1].Time) {
			return fmt.Errorf("vcs: repo %q commit %d (%s) precedes commit %d (%s)",
				r.Name, i, r.Commits[i].Time.Format(time.RFC3339),
				i-1, r.Commits[i-1].Time.Format(time.RFC3339))
		}
	}
	return nil
}

// Start returns the time of the originating commit (the paper's V_p^0).
func (r *Repo) Start() time.Time { return r.Commits[0].Time }

// End returns the time of the last commit.
func (r *Repo) End() time.Time { return r.Commits[len(r.Commits)-1].Time }

// LifetimeMonths returns the project life span in whole months,
// inclusive of both the first and last month (a project whose commits all
// fall in one calendar month has a lifetime of 1).
func (r *Repo) LifetimeMonths() int {
	return MonthIndex(r.Start(), r.End()) + 1
}

// MonthIndex returns the zero-based calendar-month offset of t from start.
func MonthIndex(start, t time.Time) int {
	return (t.Year()*12 + int(t.Month())) - (start.Year()*12 + int(start.Month()))
}

// FileVersion is one snapshot of a file.
type FileVersion struct {
	Time    time.Time
	Content string
	// Deleted marks a version that removes the file.
	Deleted bool
}

// FileHistory returns the chronological snapshots of path, one per commit
// that touched it.
func (r *Repo) FileHistory(path string) []FileVersion {
	var out []FileVersion
	for _, c := range r.Commits {
		if content, ok := c.Files[path]; ok {
			out = append(out, FileVersion{Time: c.Time, Content: content})
			continue
		}
		for _, d := range c.Deleted {
			if d == path {
				out = append(out, FileVersion{Time: c.Time, Deleted: true})
				break
			}
		}
	}
	return out
}

// IsDDLPath reports whether a path looks like a schema definition file.
func IsDDLPath(path string) bool {
	ext := strings.ToLower(filepath.Ext(path))
	return ext == ".sql" || ext == ".ddl"
}

// DDLPaths returns every DDL file path ever touched, sorted.
func (r *Repo) DDLPaths() []string {
	seen := map[string]bool{}
	for _, c := range r.Commits {
		for p := range c.Files {
			if IsDDLPath(p) {
				seen[p] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// MainDDLPath picks the schema file to analyze: the DDL path with the
// most versions, ties broken by earliest first appearance and then by
// name. It returns "" when the repo has no DDL file.
func (r *Repo) MainDDLPath() string {
	type cand struct {
		versions int
		first    int
	}
	stats := map[string]*cand{}
	for i, c := range r.Commits {
		for p := range c.Files {
			if !IsDDLPath(p) {
				continue
			}
			s, ok := stats[p]
			if !ok {
				s = &cand{first: i}
				stats[p] = s
			}
			s.versions++
		}
	}
	best := ""
	for p, s := range stats {
		if best == "" {
			best = p
			continue
		}
		b := stats[best]
		if s.versions > b.versions ||
			(s.versions == b.versions && (s.first < b.first ||
				(s.first == b.first && p < best))) {
			best = p
		}
	}
	return best
}

// MonthlySrcLines aggregates the source heartbeat by calendar month,
// indexed from the originating commit's month. The returned slice has
// LifetimeMonths() entries.
func (r *Repo) MonthlySrcLines() []int {
	out := make([]int, r.LifetimeMonths())
	start := r.Start()
	for _, c := range r.Commits {
		out[MonthIndex(start, c.Time)] += c.SrcLines
	}
	return out
}

// WriteJSON serializes the repo.
func (r *Repo) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("vcs: encoding repo %q: %w", r.Name, err)
	}
	return nil
}

// ReadJSON deserializes a repo and validates it.
func ReadJSON(rd io.Reader) (*Repo, error) {
	var r Repo
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("vcs: decoding repo: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// SaveFile writes the repo to path as JSON.
func (r *Repo) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vcs: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a repo from a JSON file.
func LoadFile(path string) (*Repo, error) {
	if err := injectRead("vcs.open", path); err != nil {
		return nil, fmt.Errorf("vcs: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vcs: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// versionFileRe matches the on-disk version layout accepted by
// ReadVersionDir: an optional ordinal, a date, and the .sql extension,
// e.g. "0003_2014-07-01.sql" or "2014-07-01.sql".
var versionFileRe = regexp.MustCompile(`^(?:\d+_)?(\d{4}-\d{2}-\d{2})\.sql$`)

// ReadVersionDir builds a single-file repo from a directory of dated
// schema snapshots named NNNN_YYYY-MM-DD.sql (or YYYY-MM-DD.sql). The
// synthetic repo has one commit per snapshot, all touching "schema.sql".
func ReadVersionDir(dir string) (*Repo, error) {
	if err := injectRead("vcs.open", dir); err != nil {
		return nil, fmt.Errorf("vcs: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vcs: %w", err)
	}
	type dated struct {
		name string
		t    time.Time
	}
	var files []dated
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := versionFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		t, err := time.Parse("2006-01-02", m[1])
		if err != nil {
			return nil, fmt.Errorf("vcs: %s: %w", e.Name(), err)
		}
		files = append(files, dated{e.Name(), t})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vcs: %s contains no NNNN_YYYY-MM-DD.sql snapshots", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].t.Equal(files[j].t) {
			return files[i].t.Before(files[j].t)
		}
		return files[i].name < files[j].name
	})
	repo := &Repo{Name: filepath.Base(dir)}
	for i, f := range files {
		path := filepath.Join(dir, f.name)
		if err := injectRead("vcs.read", path); err != nil {
			return nil, fmt.Errorf("vcs: %w", err)
		}
		content, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("vcs: %w", err)
		}
		if in := fault.Load(); in.At("vcs.read.bytes", path) == faultinject.KindCorrupt {
			in.Mangle(content, path)
		}
		repo.Commits = append(repo.Commits, Commit{
			ID:      fmt.Sprintf("v%04d", i),
			Time:    f.t,
			Message: "schema snapshot " + f.name,
			Files:   map[string]string{"schema.sql": string(content)},
		})
	}
	return repo, nil
}

// WriteVersionDir writes the repo's main DDL file history as dated
// snapshots into dir, the inverse of ReadVersionDir.
func WriteVersionDir(r *Repo, dir string) error {
	path := r.MainDDLPath()
	if path == "" {
		return fmt.Errorf("vcs: repo %q has no DDL file", r.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("vcs: %w", err)
	}
	for i, v := range r.FileHistory(path) {
		if v.Deleted {
			continue
		}
		name := fmt.Sprintf("%04d_%s.sql", i, v.Time.Format("2006-01-02"))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(v.Content), 0o644); err != nil {
			return fmt.Errorf("vcs: %w", err)
		}
	}
	return nil
}
