package predict

import (
	"math"
	"testing"

	"schemaevo/internal/core"
)

func TestBucketFor(t *testing.T) {
	cases := map[int]Bucket{
		0: BornM0, 1: BornM1to6, 6: BornM1to6,
		7: BornM7to12, 12: BornM7to12, 13: BornAfterM12, 99: BornAfterM12,
	}
	for month, want := range cases {
		if got := BucketFor(month); got != want {
			t.Errorf("BucketFor(%d) = %v, want %v", month, got, want)
		}
	}
}

func sampleObs() []Observation {
	var obs []Observation
	add := func(n, month int, p core.Pattern) {
		for i := 0; i < n; i++ {
			obs = append(obs, Observation{BirthMonth: month, Pattern: p})
		}
	}
	// A miniature Fig. 7: M0 dominated by flatliners, late births by
	// sigmoids.
	add(6, 0, core.Flatliner)
	add(2, 0, core.RadicalSign)
	add(2, 0, core.Siesta)
	add(5, 3, core.RadicalSign)
	add(5, 3, core.QuantumSteps)
	add(4, 20, core.Sigmoid)
	add(1, 20, core.LateRiser)
	return obs
}

func TestFitAndProb(t *testing.T) {
	e, err := Fit(sampleObs())
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 25 {
		t.Fatalf("n = %d", e.N())
	}
	if got := e.Prob(BornM0, core.Flatliner); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("P(flatliner|M0) = %v", got)
	}
	if got := e.Prob(BornM1to6, core.RadicalSign); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(radical|M1-6) = %v", got)
	}
	if got := e.Prob(BornM7to12, core.Sigmoid); got != 0 {
		t.Errorf("empty bucket prob = %v", got)
	}
	if got := e.OverallProb(core.Sigmoid); math.Abs(got-4.0/25.0) > 1e-12 {
		t.Errorf("overall sigmoid = %v", got)
	}
	if e.Count(BornAfterM12, core.Sigmoid) != 4 || e.BucketTotal(BornAfterM12) != 5 {
		t.Errorf("counts: %d/%d", e.Count(BornAfterM12, core.Sigmoid), e.BucketTotal(BornAfterM12))
	}
}

func TestProbsSumToOnePerBucket(t *testing.T) {
	e, _ := Fit(sampleObs())
	for _, b := range AllBuckets {
		if e.BucketTotal(b) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range core.AllPatterns {
			sum += e.Prob(b, p)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("bucket %v probabilities sum to %v", b, sum)
		}
	}
}

func TestFamilyAndRigidity(t *testing.T) {
	e, _ := Fit(sampleObs())
	// M0: 8 of 10 are BQBD (6 flat + 2 radical).
	if got := e.FamilyProb(BornM0, core.BeQuickOrBeDead); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("family prob = %v", got)
	}
	if got := e.RigidityProb(BornM0); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("rigidity = %v", got)
	}
}

func TestSmoothing(t *testing.T) {
	e, _ := Fit(sampleObs())
	// Empty bucket: smoothed probability is uniform.
	got := e.ProbSmoothed(BornM7to12, core.Sigmoid, 1)
	want := 1.0 / float64(len(core.AllPatterns))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("smoothed empty bucket = %v, want %v", got, want)
	}
	// Smoothed probabilities still sum to 1.
	sum := 0.0
	for _, p := range core.AllPatterns {
		sum += e.ProbSmoothed(BornM0, p, 0.5)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("smoothed sum = %v", sum)
	}
}

func TestPredictPattern(t *testing.T) {
	e, _ := Fit(sampleObs())
	p, prob := e.PredictPattern(0)
	if p != core.Flatliner || math.Abs(prob-0.6) > 1e-12 {
		t.Errorf("predict M0 = %v (%v)", p, prob)
	}
	p, _ = e.PredictPattern(25)
	if p != core.Sigmoid {
		t.Errorf("predict late = %v", p)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("no observations should error")
	}
	if _, err := Fit([]Observation{{0, core.Unclassified}}); err == nil {
		t.Error("unclassified observation should error")
	}
}
