// Package predict implements the §6.2 estimator: given the month of
// schema birth, what pattern (and family) will the project's schema
// evolution follow? It reproduces the probability table of Fig. 7 and the
// headline rigidity probabilities, with an optional Laplace-smoothed
// variant for out-of-corpus use.
package predict

import (
	"fmt"

	"schemaevo/internal/core"
)

// Bucket is a Fig. 7 birth-month bucket.
type Bucket int

// The four birth buckets of Fig. 7.
const (
	BornM0 Bucket = iota
	BornM1to6
	BornM7to12
	BornAfterM12
	numBuckets
)

func (b Bucket) String() string {
	return [...]string{"M0", "M1..M6", "M7..M12", ">M12"}[b]
}

// AllBuckets lists the buckets in order.
var AllBuckets = []Bucket{BornM0, BornM1to6, BornM7to12, BornAfterM12}

// BucketFor maps an absolute birth month (0-based) to its bucket.
func BucketFor(birthMonth int) Bucket {
	switch {
	case birthMonth <= 0:
		return BornM0
	case birthMonth <= 6:
		return BornM1to6
	case birthMonth <= 12:
		return BornM7to12
	default:
		return BornAfterM12
	}
}

// Observation is one training point: a project's birth month and its
// assigned pattern.
type Observation struct {
	BirthMonth int
	Pattern    core.Pattern
}

// Estimator holds the empirical counts behind Fig. 7.
type Estimator struct {
	counts  [numBuckets]map[core.Pattern]int
	totals  [numBuckets]int
	overall map[core.Pattern]int
	n       int
}

// Fit builds the estimator from observations.
func Fit(obs []Observation) (*Estimator, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("predict: no observations")
	}
	e := &Estimator{overall: map[core.Pattern]int{}}
	for b := range e.counts {
		e.counts[b] = map[core.Pattern]int{}
	}
	for _, o := range obs {
		if o.Pattern == core.Unclassified {
			return nil, fmt.Errorf("predict: observation with unclassified pattern")
		}
		b := BucketFor(o.BirthMonth)
		e.counts[b][o.Pattern]++
		e.totals[b]++
		e.overall[o.Pattern]++
		e.n++
	}
	return e, nil
}

// N returns the number of observations.
func (e *Estimator) N() int { return e.n }

// Count returns the observation count for a bucket/pattern cell.
func (e *Estimator) Count(b Bucket, p core.Pattern) int { return e.counts[b][p] }

// BucketTotal returns the number of observations in a bucket.
func (e *Estimator) BucketTotal(b Bucket) int { return e.totals[b] }

// OverallCount returns the total observation count for a pattern.
func (e *Estimator) OverallCount(p core.Pattern) int { return e.overall[p] }

// OverallProb returns the unconditional probability of the pattern.
func (e *Estimator) OverallProb(p core.Pattern) float64 {
	return float64(e.overall[p]) / float64(e.n)
}

// Prob returns P(pattern | birth bucket) from the raw counts; it is 0
// for empty buckets.
func (e *Estimator) Prob(b Bucket, p core.Pattern) float64 {
	if e.totals[b] == 0 {
		return 0
	}
	return float64(e.counts[b][p]) / float64(e.totals[b])
}

// ProbSmoothed returns the Laplace-smoothed P(pattern | bucket) with
// pseudo-count alpha per pattern, usable even for empty buckets.
func (e *Estimator) ProbSmoothed(b Bucket, p core.Pattern, alpha float64) float64 {
	den := float64(e.totals[b]) + alpha*float64(len(core.AllPatterns))
	return (float64(e.counts[b][p]) + alpha) / den
}

// FamilyProb returns P(family | birth bucket).
func (e *Estimator) FamilyProb(b Bucket, f core.Family) float64 {
	if e.totals[b] == 0 {
		return 0
	}
	n := 0
	for p, c := range e.counts[b] {
		if core.FamilyOf(p) == f {
			n += c
		}
	}
	return float64(n) / float64(e.totals[b])
}

// RigidityProb is the paper's headline §6.2 number: the probability that
// a schema born in the bucket stays essentially frozen (flatliner or
// radical sign).
func (e *Estimator) RigidityProb(b Bucket) float64 {
	return e.Prob(b, core.Flatliner) + e.Prob(b, core.RadicalSign)
}

// PredictPattern returns the most probable pattern for a birth month and
// its probability (raw counts; ties broken by pattern order).
func (e *Estimator) PredictPattern(birthMonth int) (core.Pattern, float64) {
	b := BucketFor(birthMonth)
	best, bestP := core.Unclassified, -1.0
	for _, p := range core.AllPatterns {
		if pr := e.Prob(b, p); pr > bestP {
			best, bestP = p, pr
		}
	}
	return best, bestP
}
