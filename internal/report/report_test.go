package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Demo", "name", "count")
	tb.Add("alpha", "1")
	tb.Add("a-much-longer-name", "42")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" || lines[1] != "====" {
		t.Errorf("title block: %q %q", lines[0], lines[1])
	}
	// The count column starts at the same offset on every data line.
	idx1 := strings.Index(lines[4], "1")
	idx42 := strings.Index(lines[5], "42")
	if idx1 != idx42 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx42, out)
	}
	if strings.Contains(out, " \n") {
		t.Error("trailing whitespace on a line")
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.Add("just", "cells")
	out := tb.String()
	if strings.Contains(out, "=") || strings.Contains(out, "-") {
		t.Errorf("no title/header decoration expected:\n%s", out)
	}
	if !strings.Contains(out, "just  cells") {
		t.Errorf("row content: %q", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("x")
	tb.Add("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("wide row lost: %s", out)
	}
}

func TestAddf(t *testing.T) {
	tb := New("")
	tb.Addf("n=%d", 7)
	if !strings.Contains(tb.String(), "n=7") {
		t.Error("Addf row missing")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.666) != "67%" {
		t.Errorf("Pct = %q", Pct(0.666))
	}
	if Pct1(0.1234) != "12.3%" {
		t.Errorf("Pct1 = %q", Pct1(0.1234))
	}
	if F2(3.14159) != "3.14" {
		t.Errorf("F2 = %q", F2(3.14159))
	}
	if Itoa(42) != "42" {
		t.Errorf("Itoa = %q", Itoa(42))
	}
}
