package report

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	r := NewHTMLReport("Demo <Report>")
	r.AddText("Section & One", "plain <text> body")
	r.AddSVG("Figure", `<svg xmlns="http://www.w3.org/2000/svg"></svg>`)
	out := r.String()
	if !strings.HasPrefix(out, "<!DOCTYPE html>") {
		t.Error("missing doctype")
	}
	if !strings.Contains(out, "Demo &lt;Report&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "plain &lt;text&gt; body") {
		t.Error("pre body not escaped")
	}
	if !strings.Contains(out, `<svg xmlns`) {
		t.Error("svg not inlined")
	}
	if !strings.Contains(out, `href="#s0"`) || !strings.Contains(out, `href="#s1"`) {
		t.Error("nav links missing")
	}
	if strings.Count(out, "<h2") != 2 {
		t.Error("section headings missing")
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("keys: %v", got)
	}
}
