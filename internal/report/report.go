// Package report renders fixed-width text tables for the experiment
// reproductions. All of cmd/reproduce's tables and the bench summaries go
// through it, so paper artifacts print uniformly.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a single-column formatted row (useful for notes).
func (t *Table) Addf(format string, args ...any) {
	t.Add(fmt.Sprintf(format, args...))
}

func (t *Table) columnCount() int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := t.columnCount()
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			parts[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		sb.WriteString(strings.TrimRight(strings.Join(parts, "  "), " "))
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage with no decimals.
func Pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// Pct1 formats a fraction as a percentage with one decimal.
func Pct1(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Itoa formats an int.
func Itoa(n int) string { return fmt.Sprintf("%d", n) }
