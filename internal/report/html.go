package report

import (
	"fmt"
	"html"
	"sort"
	"strings"
)

// HTMLReport assembles a self-contained HTML document from text sections
// and inline SVG figures — the shareable form of cmd/reproduce's output.
type HTMLReport struct {
	Title    string
	sections []htmlSection
}

type htmlSection struct {
	heading string
	pre     string // preformatted text body, "" if svg-only
	svg     string // raw SVG markup, "" if text-only
}

// NewHTMLReport creates an empty report.
func NewHTMLReport(title string) *HTMLReport {
	return &HTMLReport{Title: title}
}

// AddText appends a preformatted text section.
func (r *HTMLReport) AddText(heading, body string) {
	r.sections = append(r.sections, htmlSection{heading: heading, pre: body})
}

// AddSVG appends an inline SVG figure.
func (r *HTMLReport) AddSVG(heading, svg string) {
	r.sections = append(r.sections, htmlSection{heading: heading, svg: svg})
}

// String renders the document.
func (r *HTMLReport) String() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(r.Title))
	sb.WriteString(`<style>
body { font-family: sans-serif; max-width: 72rem; margin: 2rem auto; padding: 0 1rem; }
pre { background: #f6f6f4; padding: 1rem; overflow-x: auto; font-size: 0.8rem; line-height: 1.25; }
h1 { border-bottom: 2px solid #333; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
nav a { margin-right: 1rem; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n<nav>", html.EscapeString(r.Title))
	for i, sec := range r.sections {
		fmt.Fprintf(&sb, `<a href="#s%d">%s</a>`, i, html.EscapeString(sec.heading))
		sb.WriteString("\n")
	}
	sb.WriteString("</nav>\n")
	for i, sec := range r.sections {
		fmt.Fprintf(&sb, `<h2 id="s%d">%s</h2>`, i, html.EscapeString(sec.heading))
		sb.WriteString("\n")
		if sec.pre != "" {
			fmt.Fprintf(&sb, "<pre>%s</pre>\n", html.EscapeString(sec.pre))
		}
		if sec.svg != "" {
			sb.WriteString(sec.svg)
			sb.WriteString("\n")
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

// SortedKeys is a small helper for deterministic iteration over string
// maps when assembling reports.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
