// Package chart renders the cumulative schema/source progress lines of
// Fig. 1 and Fig. 3 as ASCII (for terminals and logs) and SVG (for
// documents). The horizontal axis is normalized project time; the
// vertical axis is cumulative fractional activity.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Options configures rendering.
type Options struct {
	// Width and Height are the plot area size in characters (ASCII) or
	// tenths of pixels (SVG uses Width*8 x Height*16). Zero values take
	// the defaults 60x15.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// SchemaRune and SourceRune are the plot marks; defaults '*' and '-'.
	SchemaRune, SourceRune rune
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 60
	}
	if o.Height <= 0 {
		o.Height = 15
	}
	if o.SchemaRune == 0 {
		o.SchemaRune = '*'
	}
	if o.SourceRune == 0 {
		o.SourceRune = '-'
	}
	return o
}

// sample maps a series of monthly values onto w columns by nearest index.
func sample(series []float64, w int) []float64 {
	out := make([]float64, w)
	if len(series) == 0 {
		return out
	}
	last := len(series) - 1
	for i := 0; i < w; i++ {
		f := 0.0
		if w > 1 {
			f = float64(i) / float64(w-1)
		}
		out[i] = series[int(math.Round(f*float64(last)))]
	}
	return out
}

// ASCII renders the two cumulative lines in a character grid with axes.
// Either series may be nil.
func ASCII(schema, source []float64, opts Options) string {
	o := opts.withDefaults()
	grid := make([][]rune, o.Height)
	for r := range grid {
		grid[r] = make([]rune, o.Width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	plot := func(series []float64, mark rune) {
		if len(series) == 0 {
			return
		}
		for c, v := range sample(series, o.Width) {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row := o.Height - 1 - int(math.Round(v*float64(o.Height-1)))
			if grid[row][c] == ' ' || grid[row][c] == mark {
				grid[row][c] = mark
			} else {
				grid[row][c] = '#' // overlap
			}
		}
	}
	plot(source, o.SourceRune)
	plot(schema, o.SchemaRune)

	var sb strings.Builder
	if o.Title != "" {
		sb.WriteString(o.Title)
		sb.WriteByte('\n')
	}
	for r, row := range grid {
		switch r {
		case 0:
			sb.WriteString("100%|")
		case o.Height - 1:
			sb.WriteString("  0%|")
		default:
			sb.WriteString("    |")
		}
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString("    +" + strings.Repeat("-", o.Width) + "\n")
	gap := o.Width - len("0%") - len("100% of project life")
	if gap < 1 {
		gap = 1
	}
	sb.WriteString("     0%" + strings.Repeat(" ", gap) + "100% of project life\n")
	legend := fmt.Sprintf("     schema: %c", o.SchemaRune)
	if source != nil {
		legend += fmt.Sprintf("   source: %c", o.SourceRune)
	}
	sb.WriteString(legend + "\n")
	return sb.String()
}

// SVG renders the two cumulative lines as a standalone SVG document.
func SVG(schema, source []float64, opts Options) string {
	o := opts.withDefaults()
	w, h := o.Width*10, o.Height*16
	margin := 30
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w+2*margin, h+2*margin, w+2*margin, h+2*margin)
	sb.WriteString("\n")
	if o.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="14" font-family="sans-serif">%s</text>`,
			margin, margin-10, escapeXML(o.Title))
		sb.WriteString("\n")
	}
	// Axes.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888"/>`,
		margin, margin, w, h)
	sb.WriteString("\n")
	line := func(series []float64, color string, dash string) {
		if len(series) == 0 {
			return
		}
		pts := make([]string, 0, len(series))
		for i, v := range series {
			x := margin
			if len(series) > 1 {
				x = margin + i*w/(len(series)-1)
			}
			y := margin + h - int(v*float64(h))
			pts = append(pts, fmt.Sprintf("%d,%d", x, y))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`,
			strings.Join(pts, " "), color, dash)
		sb.WriteString("\n")
	}
	line(source, "#2a9d4e", "")
	line(schema, "#2457a8", ` stroke-dasharray="5,3"`)
	sb.WriteString("</svg>\n")
	return sb.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line unicode bar chart of the given
// width, scaled to the series' own maximum. Empty or all-zero series
// render as the lowest bar.
func Sparkline(series []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	sampled := sample(series, width)
	max := 0.0
	for _, v := range sampled {
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i, v := range sampled {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}
