package chart

import (
	"strings"
	"testing"
)

func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

func TestASCIIBasics(t *testing.T) {
	schema := ramp(40)
	source := make([]float64, 40)
	for i := range source {
		source[i] = 0.5
	}
	out := ASCII(schema, source, Options{Title: "demo", Width: 40, Height: 10})
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "100%|") || !strings.Contains(out, "  0%|") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "-") {
		t.Errorf("missing plot marks:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// title + height rows + axis + label + legend + trailing empty
	if len(lines) != 1+10+1+1+1+1 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestASCIIFlatLineAtTop(t *testing.T) {
	flat := make([]float64, 30)
	for i := range flat {
		flat[i] = 1.0
	}
	out := ASCII(flat, nil, Options{Width: 30, Height: 8})
	top := strings.Split(out, "\n")[0]
	if strings.Count(top, "*") != 30 {
		t.Errorf("flat line should fill the top row:\n%s", out)
	}
	if strings.Contains(out, "source:") {
		t.Error("legend should omit absent source series")
	}
}

func TestASCIIHandlesEmptyAndClamps(t *testing.T) {
	out := ASCII(nil, nil, Options{})
	if out == "" {
		t.Error("empty chart should still render a frame")
	}
	weird := []float64{-0.5, 0.5, 1.7}
	out = ASCII(weird, nil, Options{Width: 10, Height: 5})
	if !strings.Contains(out, "*") {
		t.Error("clamped values should still plot")
	}
}

func TestASCIIOverlapMark(t *testing.T) {
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i], b[i] = 0.5, 0.5
	}
	out := ASCII(a, b, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "#") {
		t.Errorf("coinciding lines should render overlap marks:\n%s", out)
	}
}

func TestSVG(t *testing.T) {
	out := SVG(ramp(24), ramp(24), Options{Title: "a <b> & \"c\""})
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("expected two polylines:\n%s", out)
	}
	if strings.Contains(out, "<b>") || !strings.Contains(out, "&lt;b&gt;") {
		t.Error("title not XML-escaped")
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("schema line should be dashed")
	}
}

func TestSVGEmptySeries(t *testing.T) {
	out := SVG(nil, nil, Options{})
	if strings.Contains(out, "<polyline") {
		t.Error("no polylines expected for empty series")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline(ramp(50), 20)
	if len([]rune(s)) != 20 {
		t.Fatalf("width = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[19] != '█' {
		t.Errorf("ramp sparkline = %q", s)
	}
	flat := Sparkline(make([]float64, 10), 10)
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("zero series sparkline = %q", flat)
		}
	}
	if got := len([]rune(Sparkline(nil, 0))); got != 40 {
		t.Errorf("default width = %d", got)
	}
}
