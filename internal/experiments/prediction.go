package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"schemaevo/internal/core"
	"schemaevo/internal/predict"
	"schemaevo/internal/report"
	"schemaevo/internal/stats"
)

// PredictionEvalResult is the §6.2 follow-up the paper leaves as future
// work ("provision of solid foundations for the prediction of future
// behavior"): an honest train/test evaluation of the birth-point
// estimator against baselines.
type PredictionEvalResult struct {
	Folds int
	// EstimatorAccuracy is the mean held-out pattern accuracy of the
	// birth-point estimator.
	EstimatorAccuracy float64
	// FamilyAccuracy is the mean held-out family accuracy.
	FamilyAccuracy float64
	// MajorityBaseline always predicts the training majority pattern.
	MajorityBaseline float64
	// FamilyBaseline always predicts the training majority family.
	FamilyBaseline float64
}

// PredictionEval cross-validates the Fig. 7 estimator with k folds.
func PredictionEval(ctx *Context, folds int, seed int64) (*PredictionEvalResult, error) {
	if folds < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 folds, got %d", folds)
	}
	type obs struct {
		birthMonth int
		pattern    core.Pattern
	}
	var all []obs
	for _, p := range ctx.Corpus.Projects {
		all = append(all, obs{p.Measures.BirthMonth, p.Assigned()})
	}
	if len(all) < folds {
		return nil, fmt.Errorf("experiments: %d projects for %d folds", len(all), folds)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })

	res := &PredictionEvalResult{Folds: folds}
	var accEst, accFam, accMajP, accMajF float64
	for fold := 0; fold < folds; fold++ {
		var train, test []obs
		for i, o := range all {
			if i%folds == fold {
				test = append(test, o)
			} else {
				train = append(train, o)
			}
		}
		var trainObs []predict.Observation
		patCount := map[core.Pattern]int{}
		famCount := map[core.Family]int{}
		for _, o := range train {
			trainObs = append(trainObs, predict.Observation{BirthMonth: o.birthMonth, Pattern: o.pattern})
			patCount[o.pattern]++
			famCount[core.FamilyOf(o.pattern)]++
		}
		est, err := predict.Fit(trainObs)
		if err != nil {
			return nil, err
		}
		majPat, majFam := argmaxPattern(patCount), argmaxFamily(famCount)
		var hitEst, hitFam, hitMajP, hitMajF int
		for _, o := range test {
			pred, _ := est.PredictPattern(o.birthMonth)
			if pred == o.pattern {
				hitEst++
			}
			if core.FamilyOf(pred) == core.FamilyOf(o.pattern) {
				hitFam++
			}
			if majPat == o.pattern {
				hitMajP++
			}
			if majFam == core.FamilyOf(o.pattern) {
				hitMajF++
			}
		}
		n := float64(len(test))
		accEst += float64(hitEst) / n
		accFam += float64(hitFam) / n
		accMajP += float64(hitMajP) / n
		accMajF += float64(hitMajF) / n
	}
	f := float64(folds)
	res.EstimatorAccuracy = accEst / f
	res.FamilyAccuracy = accFam / f
	res.MajorityBaseline = accMajP / f
	res.FamilyBaseline = accMajF / f
	return res, nil
}

func argmaxPattern(counts map[core.Pattern]int) core.Pattern {
	best, bestN := core.Unclassified, -1
	for _, p := range core.AllPatterns {
		if counts[p] > bestN {
			best, bestN = p, counts[p]
		}
	}
	return best
}

func argmaxFamily(counts map[core.Family]int) core.Family {
	best, bestN := core.NoFamily, -1
	for _, f := range core.AllFamilies {
		if counts[f] > bestN {
			best, bestN = f, counts[f]
		}
	}
	return best
}

// Render prints the prediction evaluation.
func (r *PredictionEvalResult) Render() string {
	t := report.New(fmt.Sprintf("Extension — birth-point prediction, %d-fold cross-validation", r.Folds),
		"predictor", "pattern accuracy", "family accuracy")
	t.Add("birth-point estimator (Fig. 7)", report.Pct(r.EstimatorAccuracy), report.Pct(r.FamilyAccuracy))
	t.Add("majority baseline", report.Pct(r.MajorityBaseline), report.Pct(r.FamilyBaseline))
	return t.String()
}

// CorrelationAgreementResult checks that the Fig. 2 findings do not
// depend on the choice of rank statistic: Kendall's tau-b must agree in
// sign with Spearman's rho on every strongly correlated pair.
type CorrelationAgreementResult struct {
	Pairs      int
	Agreements int
	// MaxAbsDiff is the largest |rho - tau| over the strong pairs (the
	// two statistics differ in magnitude by construction; the check is
	// about sign and ordering).
	MaxAbsDiff float64
}

// CorrelationAgreement recomputes the strong Fig. 2 pairs with Kendall's
// tau.
func CorrelationAgreement(ctx *Context, f2 *Figure2Result) (*CorrelationAgreementResult, error) {
	ms := ctx.measuresOf()
	series := map[string][]float64{}
	for _, m := range ms {
		series["BirthVolume_pctTotal"] = append(series["BirthVolume_pctTotal"], m.BirthVolumePct)
		series["BirthPoint_pctPUP"] = append(series["BirthPoint_pctPUP"], m.BirthPct)
		series["TopBandPoint_pctPUP"] = append(series["TopBandPoint_pctPUP"], m.TopBandPct)
		series["IntervalBirthToTop_pctPUP"] = append(series["IntervalBirthToTop_pctPUP"], m.IntervalBirthToTopPct)
		series["IntervalTopToEnd_pctPUP"] = append(series["IntervalTopToEnd_pctPUP"], m.IntervalTopToEndPct)
		series["ActiveGrowthMonths"] = append(series["ActiveGrowthMonths"], float64(m.ActiveGrowthMonths))
		series["ActiveGrowth_pctGrowth"] = append(series["ActiveGrowth_pctGrowth"], m.ActivePctGrowth)
		series["ActiveGrowth_pctPUP"] = append(series["ActiveGrowth_pctPUP"], m.ActivePctPUP)
	}
	res := &CorrelationAgreementResult{}
	for _, pr := range f2.Matrix.StrongPairs(0.6) {
		a, b := f2.Matrix.Names[pr[0]], f2.Matrix.Names[pr[1]]
		rho := f2.Matrix.R[pr[0]][pr[1]]
		tau := stats.KendallTau(series[a], series[b])
		res.Pairs++
		if rho*tau > 0 {
			res.Agreements++
		}
		if d := math.Abs(rho - tau); d > res.MaxAbsDiff {
			res.MaxAbsDiff = d
		}
	}
	return res, nil
}

// Render prints the agreement check.
func (r *CorrelationAgreementResult) Render() string {
	return fmt.Sprintf("Extension — Spearman/Kendall agreement on strong pairs: %d/%d same sign, max |rho-tau| = %.2f\n",
		r.Agreements, r.Pairs, r.MaxAbsDiff)
}
