package experiments

import (
	"fmt"
	"sort"
	"strings"

	"schemaevo/internal/coevolution"
	"schemaevo/internal/core"
	"schemaevo/internal/query"
	"schemaevo/internal/report"
	"schemaevo/internal/stats"
	"schemaevo/internal/tablestats"
)

// CoEvolutionResult is the schema/source co-evolution extension: the
// paper's companion study reports the lag between the two lines; here we
// measure it per pattern on the calibrated corpus.
type CoEvolutionResult struct {
	// PerPattern aggregates the lag measures per assigned pattern.
	PerPattern map[core.Pattern]coevolution.Aggregate
	// Overall aggregates the whole corpus.
	Overall coevolution.Aggregate
}

// CoEvolution computes the schema-vs-source timing relationship for the
// corpus.
func CoEvolution(ctx *Context) (*CoEvolutionResult, error) {
	res := &CoEvolutionResult{PerPattern: map[core.Pattern]coevolution.Aggregate{}}
	var all []coevolution.Measures
	for pattern, projects := range ctx.projectsByPattern() {
		var ms []coevolution.Measures
		for _, p := range projects {
			m, err := coevolution.Compute(p.History)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
			}
			ms = append(ms, m)
			all = append(all, m)
		}
		agg, err := coevolution.Summarize(ms)
		if err != nil {
			return nil, err
		}
		res.PerPattern[pattern] = agg
	}
	overall, err := coevolution.Summarize(all)
	if err != nil {
		return nil, err
	}
	res.Overall = overall
	return res, nil
}

// Render prints the co-evolution extension.
func (r *CoEvolutionResult) Render() string {
	t := report.New("Extension — schema vs source co-evolution",
		"pattern", "median half-point lag", "schema leads", "median source done at schema freeze")
	for _, p := range core.AllPatterns {
		agg := r.PerPattern[p]
		t.Add(p.String(), report.F2(agg.MedianLag),
			fmt.Sprintf("%d/%d", agg.SchemaLeads, agg.N),
			report.Pct(agg.MedianSourceAtTop))
	}
	t.Add("ALL", report.F2(r.Overall.MedianLag),
		fmt.Sprintf("%d/%d", r.Overall.SchemaLeads, r.Overall.N),
		report.Pct(r.Overall.MedianSourceAtTop))
	return t.String()
}

// workloadFor synthesizes a query workload against a project's *birth*
// schema: one SELECT per table touching up to three of its columns — the
// application code written against the freshly designed schema, which
// later evolution then has to avoid breaking (the paper's motivating
// cost).
func workloadFor(ctx *Context, projectIdx int) ([]*query.Query, error) {
	p := ctx.Corpus.Projects[projectIdx]
	if len(p.History.Versions) == 0 {
		return nil, nil
	}
	birth := p.History.Versions[0].Schema
	var sqls []string
	for _, tbl := range birth.Tables() {
		cols := tbl.ColumnNames()
		if len(cols) > 3 {
			cols = cols[:3]
		}
		sqls = append(sqls, fmt.Sprintf("SELECT %s FROM %s", strings.Join(cols, ", "), tbl.Name))
	}
	if len(sqls) == 0 {
		return nil, nil
	}
	return query.ParseAll(sqls)
}

// ImpactResult is the query-impact extension: replaying a per-project
// workload over each history and counting the schema changes that break
// queries — the paper's "schema evolution breaks the surrounding code"
// cost, made concrete.
type ImpactResult struct {
	// BreakagesPerFamily counts broken query incidents per family.
	BreakagesPerFamily map[core.Family]int
	// ProjectsWithBreakage counts projects whose history breaks at least
	// one workload query.
	ProjectsWithBreakage int
	// MedianBreakagesActive is the median breakage count among the
	// actively evolving patterns (Stairway to Heaven).
	MedianBreakagesActive float64
	N                     int
}

// Impact replays workloads over the corpus histories.
func Impact(ctx *Context) (*ImpactResult, error) {
	res := &ImpactResult{
		BreakagesPerFamily: map[core.Family]int{},
		N:                  ctx.Corpus.Len(),
	}
	var activeBreakages []int
	for i, p := range ctx.Corpus.Projects {
		workload, err := workloadFor(ctx, i)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
		}
		if workload == nil {
			continue
		}
		broken := query.TotalBreakages(query.OverHistory(p.History, workload))
		if broken > 0 {
			res.ProjectsWithBreakage++
		}
		fam := core.FamilyOf(p.Assigned())
		res.BreakagesPerFamily[fam] += broken
		if fam == core.StairwayToHeaven {
			activeBreakages = append(activeBreakages, broken)
		}
	}
	sort.Ints(activeBreakages)
	if len(activeBreakages) > 0 {
		fs := make([]float64, len(activeBreakages))
		for i, v := range activeBreakages {
			fs[i] = float64(v)
		}
		res.MedianBreakagesActive = stats.Median(fs)
	}
	return res, nil
}

// Render prints the impact extension.
func (r *ImpactResult) Render() string {
	t := report.New("Extension — query breakage under schema evolution",
		"scope", "broken query incidents")
	for _, f := range core.AllFamilies {
		t.Add("family: "+f.String(), report.Itoa(r.BreakagesPerFamily[f]))
	}
	t.Addf("projects breaking at least one workload query: %d/%d", r.ProjectsWithBreakage, r.N)
	t.Addf("median breakages among Stairway-to-Heaven projects: %.1f", r.MedianBreakagesActive)
	return t.String()
}

// TableRigidityResult is the table-level rigidity extension, echoing the
// authors' earlier table-granularity studies: the overwhelming majority
// of tables never change internally after birth.
type TableRigidityResult struct {
	Report tablestats.RigidityReport
	// PerFamily maps each family to the rigid-table share within its
	// projects.
	PerFamily map[core.Family]float64
}

// TableRigidity audits every table life in the corpus.
func TableRigidity(ctx *Context) *TableRigidityResult {
	res := &TableRigidityResult{PerFamily: map[core.Family]float64{}}
	perFamily := map[core.Family]*tablestats.RigidityReport{}
	for pattern, projects := range ctx.projectsByPattern() {
		f := core.FamilyOf(pattern)
		if perFamily[f] == nil {
			perFamily[f] = &tablestats.RigidityReport{}
		}
		for _, p := range projects {
			res.Report.Add(p.History)
			perFamily[f].Add(p.History)
		}
	}
	for f, r := range perFamily {
		res.PerFamily[f] = r.RigidShare()
	}
	return res
}

// Render prints the table-rigidity extension.
func (r *TableRigidityResult) Render() string {
	t := report.New("Extension — table-level rigidity", "scope", "rigid share", "tables")
	for _, f := range core.AllFamilies {
		t.Add("family: "+f.String(), report.Pct(r.PerFamily[f]), "")
	}
	t.Add("corpus", report.Pct(r.Report.RigidShare()), report.Itoa(r.Report.Total))
	t.Addf("table lives: %d rigid, %d quiet, %d active; %d dropped (%d of them never updated)",
		r.Report.Rigid, r.Report.Quiet, r.Report.Active, r.Report.Dropped, r.Report.DroppedRigid)
	return t.String()
}
