package experiments

import (
	"strings"
	"sync"
	"testing"

	"schemaevo/internal/core"
	"schemaevo/internal/predict"
)

var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

// paperCtx builds the calibrated context once per test binary.
func paperCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { ctxVal, ctxErr = NewPaperContext(1) })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxVal
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	res := Table1(paperCtx(t))
	if res.N != 151 {
		t.Fatalf("N = %d", res.N)
	}
	for _, row := range res.Rows {
		sum := 0
		for _, c := range row.Counts {
			sum += c
		}
		if sum != 151 {
			t.Errorf("%s: counts sum to %d: %v", row.Metric, sum, row.Counts)
		}
	}
	// Birth timing row: paper reports 52 at V_p^0 and 105 at V_p^0+early.
	var birth Table1Row
	for _, row := range res.Rows {
		if strings.Contains(row.Metric, "Point of Birth") {
			birth = row
		}
	}
	if birth.Counts[0] != 52 {
		t.Errorf("births at V_p^0 = %d, paper 52", birth.Counts[0])
	}
	if got := birth.Counts[0] + birth.Counts[1]; got < 95 || got > 115 {
		t.Errorf("births in first quarter = %d, paper 105", got)
	}
	// The render must mention every metric.
	out := res.Render()
	if !strings.Contains(out, "Volume of Birth") || !strings.Contains(out, "Active months") {
		t.Error("render incomplete")
	}
}

func TestTable2MatchesPaperExceptions(t *testing.T) {
	res := Table2(paperCtx(t))
	if res.TotalExceptions() != 8 {
		t.Errorf("total exceptions = %d, want 8 (Table 2)", res.TotalExceptions())
	}
	byPattern := map[core.Pattern]core.ExceptionReport{}
	for _, r := range res.Reports {
		byPattern[r.Pattern] = r
	}
	if n := byPattern[core.Flatliner].Projects; n != 23 {
		t.Errorf("flatliners = %d", n)
	}
	if n := len(byPattern[core.Siesta].Exceptions); n != 3 {
		t.Errorf("siesta exceptions = %d", n)
	}
	if !strings.Contains(res.Render(), "Radical Sign") {
		t.Error("render incomplete")
	}
}

func TestFigure1(t *testing.T) {
	res := Figure1(paperCtx(t))
	if res.Project == "" || !strings.Contains(res.Chart, "100%|") {
		t.Errorf("figure 1: %+v", res.Project)
	}
	if !strings.HasPrefix(res.SVG, "<svg") {
		t.Error("missing SVG")
	}
	if res.TopBandPct <= res.BirthPct {
		t.Errorf("RC exemplar should have a growth interval: birth %f top %f",
			res.BirthPct, res.TopBandPct)
	}
}

func TestFigure2CorrelationSigns(t *testing.T) {
	res, err := Figure2(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline correlations (Fig. 2):
	// TopBandPoint strongly anti-correlated with the tail interval.
	if r := res.R("TopBandPoint_pctPUP", "IntervalTopToEnd_pctPUP"); r > -0.9 {
		t.Errorf("top-band vs tail rho = %.2f, paper ~ -1", r)
	}
	// Birth volume positively related to... inverse of the growth
	// interval: higher birth volume → shorter interval (negative rho).
	if r := res.R("BirthVolume_pctTotal", "IntervalBirthToTop_pctPUP"); r > -0.3 {
		t.Errorf("birth volume vs growth interval rho = %.2f, expected clearly negative", r)
	}
	// Active growth months positively correlated with the growth interval.
	if r := res.R("ActiveGrowthMonths", "IntervalBirthToTop_pctPUP"); r < 0.5 {
		t.Errorf("active months vs interval rho = %.2f, expected strongly positive", r)
	}
	// Birth point pushes top-band attainment later (paper: 0.61).
	if r := res.R("BirthPoint_pctPUP", "TopBandPoint_pctPUP"); r < 0.3 {
		t.Errorf("birth vs top band rho = %.2f, paper 0.61", r)
	}
	// ActiveGrowthMonths tightly related to its normalizations.
	if r := res.R("ActiveGrowthMonths", "ActiveGrowth_pctPUP"); r < 0.8 {
		t.Errorf("active months vs %%PUP rho = %.2f, paper: very tight", r)
	}
	if !strings.Contains(res.Render(), "Strong pairs") {
		t.Error("render incomplete")
	}
}

func TestFigure3HasAllPatterns(t *testing.T) {
	res := Figure3(paperCtx(t))
	for _, p := range core.AllPatterns {
		if _, ok := res.Charts[p]; !ok {
			t.Errorf("no exemplar chart for %v", p)
		}
	}
	out := res.Render()
	for _, p := range core.AllPatterns {
		if !strings.Contains(out, p.String()) {
			t.Errorf("render lacks %v", p)
		}
	}
}

func TestFigure4Profiles(t *testing.T) {
	res := Figure4(paperCtx(t))
	counts := map[core.Pattern]int{}
	for _, pr := range res.Profiles {
		counts[pr.Pattern] = pr.Count
	}
	if counts[core.Flatliner] != 23 || counts[core.RadicalSign] != 41 {
		t.Errorf("profile counts: %v", counts)
	}
	// Flatliners: all born vp0, all vaulted.
	for _, pr := range res.Profiles {
		if pr.Pattern == core.Flatliner {
			if pr.BirthTiming["vp0"] != 23 || pr.Vault["true"] != 23 {
				t.Errorf("flatliner profile: %v %v", pr.BirthTiming, pr.Vault)
			}
			if pr.ActiveMonthsMax != 0 {
				t.Errorf("flatliner active months max = %d", pr.ActiveMonthsMax)
			}
		}
		if pr.Pattern == core.RegularlyCurated && pr.ActiveMonthsMin <= 3 {
			t.Errorf("regularly curated min active months = %d, want > 3", pr.ActiveMonthsMin)
		}
	}
	if !strings.Contains(res.Render(), "Smoking Funnel") {
		t.Error("render incomplete")
	}
}

func TestFigure5FewMisclassified(t *testing.T) {
	res, err := Figure5(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 151 {
		t.Fatalf("N = %d", res.N)
	}
	// Paper: 4 of 151 misclassified. Our corpus has 8 definitional
	// exceptions; allow the same order of magnitude.
	if len(res.Misclassified) > 10 {
		t.Errorf("misclassified = %d, paper reports 4/151", len(res.Misclassified))
	}
	if res.Tree.Depth() < 2 {
		t.Errorf("tree depth = %d, expected a real tree", res.Tree.Depth())
	}
	if !strings.Contains(res.Render(), "misclassified") {
		t.Error("render incomplete")
	}
}

func TestFigure6EssentialDisjointness(t *testing.T) {
	res := Figure6(paperCtx(t))
	if len(res.Points) < 10 {
		t.Errorf("only %d populated domain points", len(res.Points))
	}
	// The paper reports near-complete disjointness with a few shared
	// areas, all induced by the exception projects (e.g. Siesta members
	// sitting in Regularly Curated territory).
	if len(res.Shared) > 6 {
		t.Errorf("%d domain points shared by multiple patterns", len(res.Shared))
	}
	for _, pt := range res.Shared {
		// Every shared point must involve at most one "intruding"
		// project group beside the majority pattern.
		if len(pt.Patterns) > 2 {
			t.Errorf("domain point %s shared by %d patterns", pt.Key(), len(pt.Patterns))
		}
	}
	total := 0
	for _, pt := range res.Points {
		total += pt.Total
	}
	if total != 151 {
		t.Errorf("domain points cover %d projects", total)
	}
}

func TestFigure7Probabilities(t *testing.T) {
	res, err := Figure7(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	e := res.Estimator
	if e.N() != 151 {
		t.Fatalf("N = %d", e.N())
	}
	// Fig. 7 margins: 52 born M0; 38 in M1..6; 13 in M7..12; 48 later.
	wantTotals := map[predict.Bucket]int{
		predict.BornM0: 52, predict.BornM1to6: 38,
		predict.BornM7to12: 13, predict.BornAfterM12: 48,
	}
	for b, want := range wantTotals {
		if got := e.BucketTotal(b); got != want {
			t.Errorf("bucket %v total = %d, want %d", b, got, want)
		}
	}
	// Flatliners are 44% of M0 births in the paper.
	if p := e.Prob(predict.BornM0, core.Flatliner); p < 0.40 || p > 0.48 {
		t.Errorf("P(flatliner|M0) = %.2f, paper 44%%", p)
	}
	if !strings.Contains(res.Render(), "born M0") {
		t.Error("render incomplete")
	}
}

func TestSection34Stats(t *testing.T) {
	res, err := Section34(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: half born in first 10% of time; generous tolerance.
	if res.BornFirst10Pct < 60 || res.BornFirst10Pct > 95 {
		t.Errorf("born in first 10%% = %d, paper 74", res.BornFirst10Pct)
	}
	if res.ZeroActiveGrowth < 85 || res.ZeroActiveGrowth > 110 {
		t.Errorf("zero active growth = %d, paper 98", res.ZeroActiveGrowth)
	}
	if res.AtMostOneActiveGrowth < res.ZeroActiveGrowth {
		t.Error("<=1 active must include the zero-active projects")
	}
	// Every measure is non-normal; the paper's max p is ~1e-9.
	if res.MaxShapiroP() > 1e-6 {
		t.Errorf("max Shapiro-Wilk p = %g, expected non-normal everywhere", res.MaxShapiroP())
	}
	if !strings.Contains(res.Render(), "Shapiro-Wilk") {
		t.Error("render incomplete")
	}
}

func TestSection52CohesionRange(t *testing.T) {
	res, err := Section52(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MDC) != len(core.AllPatterns) {
		t.Fatalf("MDC computed for %d patterns", len(res.MDC))
	}
	// Paper: MDC between 0.06 and 1.25 for 20-dim vectors in [0,1].
	if res.Min < 0 || res.Max > 1.6 {
		t.Errorf("MDC range %.2f..%.2f out of plausible bounds", res.Min, res.Max)
	}
	// Flatliners are the most cohesive pattern by construction.
	if res.MDC[core.Flatliner] > 0.2 {
		t.Errorf("flatliner MDC = %.2f, expected near 0", res.MDC[core.Flatliner])
	}
}

func TestSection61Medians(t *testing.T) {
	res := Section61(paperCtx(t))
	m := res.Medians
	// Shape checks against the paper's progression: BQBD small (radical
	// ~13, rest <3), Siesta ~17, Quantum ~22, Funnel ~189, RC ~250.
	if m[core.Flatliner] > 2 {
		t.Errorf("flatliner post-birth median = %v, paper: <3", m[core.Flatliner])
	}
	if m[core.Sigmoid] > 8 || m[core.LateRiser] > 8 {
		t.Errorf("sigmoid/late riser medians too large: %v / %v", m[core.Sigmoid], m[core.LateRiser])
	}
	if m[core.RadicalSign] < 5 || m[core.RadicalSign] > 25 {
		t.Errorf("radical sign median = %v, paper 13", m[core.RadicalSign])
	}
	if m[core.Siesta] < 8 || m[core.Siesta] > 35 {
		t.Errorf("siesta median = %v, paper 17", m[core.Siesta])
	}
	if m[core.QuantumSteps] < 10 || m[core.QuantumSteps] > 45 {
		t.Errorf("quantum median = %v, paper 22", m[core.QuantumSteps])
	}
	if m[core.SmokingFunnel] < 100 || m[core.SmokingFunnel] > 400 {
		t.Errorf("smoking funnel median = %v, paper 189", m[core.SmokingFunnel])
	}
	if m[core.RegularlyCurated] < 120 || m[core.RegularlyCurated] > 500 {
		t.Errorf("regularly curated median = %v, paper 250", m[core.RegularlyCurated])
	}
	// Ordering: the two active patterns are orders of magnitude above
	// the rest.
	if m[core.SmokingFunnel] < 4*m[core.QuantumSteps] || m[core.RegularlyCurated] < 4*m[core.QuantumSteps] {
		t.Error("active patterns should dominate by a large factor")
	}
}

func TestSection62Rigidity(t *testing.T) {
	f7, err := Figure7(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	res := Section62(f7)
	if p := res.SharpFocused[predict.BornM0]; p < 0.70 || p > 0.80 {
		t.Errorf("P(sharp|M0) = %.2f, paper 75%%", p)
	}
	if res.FirstYear < 0.45 || res.FirstYear > 0.62 {
		t.Errorf("P(sharp|first year) = %.2f, paper ~53%%", res.FirstYear)
	}
	if p := res.SharpFocused[predict.BornAfterM12]; p < 0.55 || p > 0.72 {
		t.Errorf("P(sharp|>M12) = %.2f, paper 64%%", p)
	}
}

func TestSection63Mixture(t *testing.T) {
	res := Section63(paperCtx(t))
	// Change is biased toward expansion everywhere.
	for _, f := range core.AllFamilies {
		if res.FamilyShare[f] < 0.5 {
			t.Errorf("family %v expansion share = %.2f, expected expansion bias", f, res.FamilyShare[f])
		}
	}
	// BQBD patterns are near-monothematic (very high expansion).
	if res.FamilyShare[core.BeQuickOrBeDead] < 0.75 {
		t.Errorf("BQBD expansion share = %.2f", res.FamilyShare[core.BeQuickOrBeDead])
	}
}

func TestLabelSensitivity(t *testing.T) {
	res, err := LabelSensitivity(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	for name, changed := range res.Perturbations {
		// Robustness: no perturbation should reshuffle a large share of
		// the corpus.
		if changed > res.N/4 {
			t.Errorf("%s reclassified %d/%d projects", name, changed, res.N)
		}
	}
	if !strings.Contains(res.Render(), "perturbation") {
		t.Error("render incomplete")
	}
}

func TestTreeDepthAblation(t *testing.T) {
	res, err := TreeDepth(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Deeper trees must not be worse on training data.
	if res.ByDepth[0][0] > res.ByDepth[1][0] {
		t.Errorf("unbounded tree (%d wrong) worse than a stump (%d wrong)",
			res.ByDepth[0][0], res.ByDepth[1][0])
	}
	if !strings.Contains(res.Render(), "unbounded") {
		t.Error("render incomplete")
	}
}

func TestUnsupervisedCrossCheck(t *testing.T) {
	res, err := Unsupervised(paperCtx(t), 42)
	if err != nil {
		t.Fatal(err)
	}
	// The time-shape vectors carry real signal: clustering should beat
	// the majority-class baseline (41/151 ≈ 0.27) comfortably.
	if res.Purity < 0.4 {
		t.Errorf("pattern purity = %.2f", res.Purity)
	}
	if res.FamilyPurity < res.Purity-1e-9 {
		t.Error("family purity cannot be below pattern purity")
	}
	if !strings.Contains(res.Render(), "k-means") {
		t.Error("render incomplete")
	}
}

func TestSection63TableGranularity(t *testing.T) {
	res := Section63(paperCtx(t))
	// Paper: "the granule of change [is] mostly the entire table".
	if res.CorpusTableGrainShare < 0.5 {
		t.Errorf("corpus table-grain share = %.2f, expected table-dominant change",
			res.CorpusTableGrainShare)
	}
	if !strings.Contains(res.Render(), "table-grain") {
		t.Error("render incomplete")
	}
}

func TestCoEvolutionExtension(t *testing.T) {
	res, err := CoEvolution(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.N != 151 {
		t.Fatalf("N = %d", res.Overall.N)
	}
	// In the calibrated corpus the source grows throughout project life
	// while 2/3 of schemata freeze early: the schema leads for a clear
	// majority of projects.
	if res.Overall.SchemaLeads < 90 {
		t.Errorf("schema leads in %d/151 projects, expected a clear majority", res.Overall.SchemaLeads)
	}
	// Flatliners freeze at month 0: their source is barely started.
	if agg := res.PerPattern[core.Flatliner]; agg.MedianSourceAtTop > 0.25 {
		t.Errorf("flatliner source at freeze = %.2f", agg.MedianSourceAtTop)
	}
	// Late-change patterns freeze near the end of life: source nearly done.
	if agg := res.PerPattern[core.LateRiser]; agg.MedianSourceAtTop < 0.6 {
		t.Errorf("late riser source at freeze = %.2f", agg.MedianSourceAtTop)
	}
	if !strings.Contains(res.Render(), "co-evolution") {
		t.Error("render incomplete")
	}
}

func TestImpactExtension(t *testing.T) {
	res, err := Impact(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	// Actively-evolving families must break more queries than the
	// frozen majority; flatliners break none after birth.
	active := res.BreakagesPerFamily[core.StairwayToHeaven]
	frozen := res.BreakagesPerFamily[core.BeQuickOrBeDead]
	if active == 0 {
		t.Error("active family broke no queries at all")
	}
	if active <= frozen {
		t.Errorf("active family breakages (%d) should exceed frozen family's (%d)", active, frozen)
	}
	if !strings.Contains(res.Render(), "breakage") {
		t.Error("render incomplete")
	}
}

func TestTableRigidityExtension(t *testing.T) {
	res := TableRigidity(paperCtx(t))
	if res.Report.Total < 500 {
		t.Fatalf("only %d table lives in the corpus", res.Report.Total)
	}
	// The companion studies report overwhelming table rigidity.
	if res.Report.RigidShare() < 0.5 {
		t.Errorf("rigid share = %.2f, expected a clear majority", res.Report.RigidShare())
	}
	if !strings.Contains(res.Render(), "rigid") {
		t.Error("render incomplete")
	}
}

func TestPredictionEval(t *testing.T) {
	res, err := PredictionEval(paperCtx(t), 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The birth point carries real signal: held-out accuracy must beat
	// the majority baseline on patterns and reach a solid family level.
	if res.EstimatorAccuracy <= res.MajorityBaseline {
		t.Errorf("estimator %.2f <= baseline %.2f", res.EstimatorAccuracy, res.MajorityBaseline)
	}
	if res.FamilyAccuracy < 0.5 {
		t.Errorf("family accuracy = %.2f", res.FamilyAccuracy)
	}
	if _, err := PredictionEval(paperCtx(t), 1, 0); err == nil {
		t.Error("folds < 2 should error")
	}
	if !strings.Contains(res.Render(), "cross-validation") {
		t.Error("render incomplete")
	}
}

func TestCorrelationAgreement(t *testing.T) {
	f2, err := Figure2(paperCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := CorrelationAgreement(paperCtx(t), f2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no strong pairs")
	}
	if res.Agreements != res.Pairs {
		t.Errorf("sign agreement %d/%d", res.Agreements, res.Pairs)
	}
	if !strings.Contains(res.Render(), "Kendall") {
		t.Error("render incomplete")
	}
}
