package experiments

import (
	"context"
	"fmt"

	"schemaevo/internal/core"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/report"
	"schemaevo/internal/synth"
)

// DialectRow is one dialect's line in the cross-dialect comparison: the
// calibrated corpus restyled in that dialect, re-analyzed end to end with
// per-file dialect auto-detection.
type DialectRow struct {
	Dialect string
	// Projects is the corpus size after the >12-months filter.
	Projects int
	// Detected counts projects whose auto-detected dialect matches the
	// generator's intent (the corpus annotation).
	Detected int
	// ParseNotes totals the parser's degradation notes across the corpus;
	// a dialect adapter that mishandles its own syntax shows up here.
	ParseNotes int
	// Patterns is the assigned-pattern distribution.
	Patterns map[core.Pattern]int
}

// CrossDialectResult compares the pattern study across SQL dialects. The
// generator restyles the same seed's corpus per dialect without touching
// the logical schemas, so the study's findings must be dialect-invariant:
// identical pattern distributions, full detection accuracy, no parse
// degradation. Invariant reports whether the distributions all match the
// generic baseline.
type CrossDialectResult struct {
	Seed      int64
	Rows      []DialectRow
	Invariant bool
}

// crossDialectNames is the comparison order: the neutral baseline first.
var crossDialectNames = []string{"generic", "mysql", "postgres", "sqlite"}

// CrossDialect generates the calibrated corpus in each dialect and runs
// the full pipeline with dialect auto-detection over each.
func CrossDialect(seed int64) (*CrossDialectResult, error) {
	res := &CrossDialectResult{Seed: seed, Invariant: true}
	for _, name := range crossDialectNames {
		c, err := synth.PaperCorpusDialect(seed, name)
		if err != nil {
			return nil, err
		}
		scheme := quantize.DefaultScheme()
		opts := pipeline.Options{Scheme: &scheme, Dialect: "auto"}
		if _, err := pipeline.Run(context.Background(), c, opts); err != nil {
			return nil, fmt.Errorf("experiments: dialect %s: %w", name, err)
		}
		filtered := c.FilterMinMonths(12)
		row := DialectRow{Dialect: name, Projects: filtered.Len(), Patterns: map[core.Pattern]int{}}
		for _, p := range filtered.Projects {
			want := p.Dialect
			if want == "" {
				want = "generic"
			}
			if p.History.Dialect.String() == want {
				row.Detected++
			}
			row.ParseNotes += p.History.NoteCount()
			row.Patterns[p.Assigned()]++
		}
		res.Rows = append(res.Rows, row)
		base := res.Rows[0]
		for _, pat := range core.AllPatterns {
			if row.Patterns[pat] != base.Patterns[pat] {
				res.Invariant = false
			}
		}
	}
	return res, nil
}

// Render prints the cross-dialect comparison table.
func (r *CrossDialectResult) Render() string {
	t := report.New("Extension — cross-dialect invariance",
		"dialect", "projects", "detected", "parse notes", "distribution drift")
	base := r.Rows[0]
	for _, row := range r.Rows {
		drift := 0
		for _, pat := range core.AllPatterns {
			if d := row.Patterns[pat] - base.Patterns[pat]; d > 0 {
				drift += d
			} else {
				drift -= d
			}
		}
		t.Add(row.Dialect,
			fmt.Sprintf("%d", row.Projects),
			fmt.Sprintf("%d/%d", row.Detected, row.Projects),
			fmt.Sprintf("%d", row.ParseNotes),
			fmt.Sprintf("%d", drift))
	}
	verdict := "pattern distributions identical across dialects"
	if !r.Invariant {
		verdict = "WARNING: pattern distributions drift across dialects"
	}
	return t.String() + verdict + "\n"
}
