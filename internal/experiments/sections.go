package experiments

import (
	"fmt"
	"strings"

	"schemaevo/internal/core"
	"schemaevo/internal/metrics"
	"schemaevo/internal/predict"
	"schemaevo/internal/report"
	"schemaevo/internal/stats"
)

// Section34Result reproduces the §3.4 statistical properties of the
// time-related measures.
type Section34Result struct {
	N int
	// BornFirst10Pct counts schemata born within the first 10% of time
	// (paper: half the corpus).
	BornFirst10Pct int
	// TopBandFirst25Pct counts projects reaching the top band at V_p^0 or
	// before 25% of the PUP (paper: 64 projects, 42%).
	TopBandFirst25Pct int
	// ZeroActiveGrowth counts projects with zero active growth months
	// (paper: 98, two thirds).
	ZeroActiveGrowth int
	// AtMostOneActiveGrowth counts projects with <= 1 active growth month
	// (paper: 115, 76%).
	AtMostOneActiveGrowth int
	// Vaults counts projects whose birth-to-top transition is a vault.
	Vaults int
	// SingleVault counts projects whose cumulative line shows exactly one
	// vault episode (paper: 58% single vault, 42% none or several).
	SingleVault int
	// MedianGini is the median heartbeat concentration (0 = even change,
	// 1 = all change in one month) — the "clustered groups of changes"
	// observation, quantified.
	MedianGini float64
	// GrowthUnder10Pct counts birth-to-top intervals under 10% of the PUP
	// (paper: 88).
	GrowthUnder10Pct int
	// ShapiroP maps each Fig. 2 measure to its Shapiro-Wilk p-value
	// (paper: all non-normal, max p ~ 1e-9).
	ShapiroP map[string]float64
	// ShapiroW maps each measure to the W statistic.
	ShapiroW map[string]float64
}

// Section34 computes the §3.4 headline statistics.
func Section34(ctx *Context) (*Section34Result, error) {
	ms := ctx.measuresOf()
	res := &Section34Result{
		N:        len(ms),
		ShapiroP: map[string]float64{},
		ShapiroW: map[string]float64{},
	}
	var ginis []float64
	for _, p := range ctx.Corpus.Projects {
		if metrics.CountVaults(p.History.SchemaCumulative(), metrics.DefaultVaultGain) == 1 {
			res.SingleVault++
		}
		ginis = append(ginis, metrics.GiniConcentration(p.History.SchemaMonthly))
	}
	res.MedianGini = stats.Median(ginis)
	series := map[string][]float64{}
	for _, m := range ms {
		if m.BirthPct <= 0.10 {
			res.BornFirst10Pct++
		}
		if m.TopBandPct <= 0.25 {
			res.TopBandFirst25Pct++
		}
		if m.ActiveGrowthMonths == 0 {
			res.ZeroActiveGrowth++
		}
		if m.ActiveGrowthMonths <= 1 {
			res.AtMostOneActiveGrowth++
		}
		if m.HasVault {
			res.Vaults++
		}
		if m.IntervalBirthToTopPct < 0.10 {
			res.GrowthUnder10Pct++
		}
		series["BirthVolume_pctTotal"] = append(series["BirthVolume_pctTotal"], m.BirthVolumePct)
		series["BirthPoint_pctPUP"] = append(series["BirthPoint_pctPUP"], m.BirthPct)
		series["TopBandPoint_pctPUP"] = append(series["TopBandPoint_pctPUP"], m.TopBandPct)
		series["IntervalBirthToTop_pctPUP"] = append(series["IntervalBirthToTop_pctPUP"], m.IntervalBirthToTopPct)
		series["IntervalTopToEnd_pctPUP"] = append(series["IntervalTopToEnd_pctPUP"], m.IntervalTopToEndPct)
		series["ActiveGrowthMonths"] = append(series["ActiveGrowthMonths"], float64(m.ActiveGrowthMonths))
	}
	for name, xs := range series {
		w, p, err := stats.ShapiroWilk(xs)
		if err != nil {
			return nil, fmt.Errorf("experiments: shapiro %s: %w", name, err)
		}
		res.ShapiroW[name] = w
		res.ShapiroP[name] = p
	}
	return res, nil
}

// MaxShapiroP returns the largest p-value across measures (the paper's
// headline is that even the largest is ~1e-9).
func (r *Section34Result) MaxShapiroP() float64 {
	max := 0.0
	for _, p := range r.ShapiroP {
		if p > max {
			max = p
		}
	}
	return max
}

// Render prints the §3.4 reproduction.
func (r *Section34Result) Render() string {
	t := report.New("§3.4 — Statistical properties of the time-related measures",
		"statistic", "measured", "paper")
	n := float64(r.N)
	t.Add("schema born in first 10% of time",
		fmt.Sprintf("%d (%s)", r.BornFirst10Pct, report.Pct(float64(r.BornFirst10Pct)/n)), "74 (49%)")
	t.Add("top band at V_p^0 or first 25%",
		fmt.Sprintf("%d (%s)", r.TopBandFirst25Pct, report.Pct(float64(r.TopBandFirst25Pct)/n)), "64 (42%)")
	t.Add("birth→top interval under 10% PUP",
		fmt.Sprintf("%d (%s)", r.GrowthUnder10Pct, report.Pct(float64(r.GrowthUnder10Pct)/n)), "88 (58%)")
	t.Add("zero active growth months",
		fmt.Sprintf("%d (%s)", r.ZeroActiveGrowth, report.Pct(float64(r.ZeroActiveGrowth)/n)), "98 (65%)")
	t.Add("at most 1 active growth month",
		fmt.Sprintf("%d (%s)", r.AtMostOneActiveGrowth, report.Pct(float64(r.AtMostOneActiveGrowth)/n)), "115 (76%)")
	t.Add("projects with a vaulted birth→top transition",
		fmt.Sprintf("%d (%s)", r.Vaults, report.Pct(float64(r.Vaults)/n)), "")
	t.Add("projects with a single vault in the line",
		fmt.Sprintf("%d (%s)", r.SingleVault, report.Pct(float64(r.SingleVault)/n)), "~88 (58%)")
	t.Add("median heartbeat concentration (Gini)",
		report.F2(r.MedianGini), "(change is clustered, not incremental)")
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("\nShapiro-Wilk normality (all expected non-normal):\n")
	for _, name := range Figure2Names[:6] {
		if p, ok := r.ShapiroP[name]; ok {
			fmt.Fprintf(&sb, "  %-28s W=%.4f  p=%.3g\n", name, r.ShapiroW[name], p)
		}
	}
	fmt.Fprintf(&sb, "  max p across measures: %.3g (paper: ~1e-9)\n", r.MaxShapiroP())
	return sb.String()
}

// Section62Result reproduces the §6.2 headline rigidity probabilities:
// the chance of sharp, focused change (the Be Quick or Be Dead family)
// given the point of schema birth.
type Section62Result struct {
	// SharpFocused maps each birth bucket to P(Be Quick or Be Dead).
	SharpFocused map[predict.Bucket]float64
	// FirstYear pools births in M1..M12 (paper: ~53%).
	FirstYear float64
}

// Section62 derives the rigidity probabilities from the Fig. 7 estimator.
func Section62(f7 *Figure7Result) *Section62Result {
	e := f7.Estimator
	res := &Section62Result{SharpFocused: map[predict.Bucket]float64{}}
	for _, b := range predict.AllBuckets {
		res.SharpFocused[b] = e.FamilyProb(b, core.BeQuickOrBeDead)
	}
	// Births in M1..M12: pooled counts across the two buckets.
	n := e.BucketTotal(predict.BornM1to6) + e.BucketTotal(predict.BornM7to12)
	if n > 0 {
		sharp := 0
		for _, p := range core.AllPatterns {
			if core.FamilyOf(p) != core.BeQuickOrBeDead {
				continue
			}
			sharp += e.Count(predict.BornM1to6, p) + e.Count(predict.BornM7to12, p)
		}
		res.FirstYear = float64(sharp) / float64(n)
	}
	return res
}

// Render prints the §6.2 reproduction.
func (r *Section62Result) Render() string {
	t := report.New("§6.2 — Probability of sharp, focused change by birth point",
		"birth point", "measured", "paper")
	t.Add("M0", report.Pct(r.SharpFocused[predict.BornM0]), "75%")
	t.Add("within first year (M1..M12)", report.Pct(r.FirstYear), "~53%")
	t.Add("after first year", report.Pct(r.SharpFocused[predict.BornAfterM12]), "64%")
	return t.String()
}
