package experiments

import (
	"fmt"
	"strings"

	"schemaevo/internal/cluster"
	"schemaevo/internal/core"
	"schemaevo/internal/dtree"
	"schemaevo/internal/quantize"
	"schemaevo/internal/report"
)

// LabelSensitivityResult is the quantization-cut-point ablation: how many
// projects change pattern when the Table 1 limits are perturbed.
type LabelSensitivityResult struct {
	// Perturbations maps a perturbation description to the number of
	// projects whose definitional classification changes.
	Perturbations map[string]int
	N             int
}

// LabelSensitivity reclassifies the corpus under perturbed quantization
// schemes. The classification should be fairly robust: the patterns are
// not artifacts of the exact cut points (VQ1 of §5). A perturbation that
// breaks the cut-point ordering is a bug in the ablation table and is
// returned as an error.
func LabelSensitivity(ctx *Context) (*LabelSensitivityResult, error) {
	base := map[string]core.Pattern{}
	for _, p := range ctx.Corpus.Projects {
		base[p.Name] = core.Classify(p.Labels)
	}
	perturb := func(name string, mutate func(*quantize.Scheme)) (int, error) {
		s := ctx.Scheme
		mutate(&s)
		if err := s.Validate(); err != nil {
			return 0, fmt.Errorf("experiments: label-sensitivity perturbation %q yields an invalid scheme: %w", name, err)
		}
		changed := 0
		for _, p := range ctx.Corpus.Projects {
			l := quantize.Compute(p.Measures, s)
			if core.Classify(l) != base[p.Name] {
				changed++
			}
		}
		return changed, nil
	}
	res := &LabelSensitivityResult{Perturbations: map[string]int{}, N: ctx.Corpus.Len()}
	cases := []struct {
		name   string
		mutate func(*quantize.Scheme)
	}{
		{"timing early 0.25→0.20", func(s *quantize.Scheme) { s.TimingEarlyMax = 0.20 }},
		{"timing early 0.25→0.30", func(s *quantize.Scheme) { s.TimingEarlyMax = 0.30 }},
		{"timing middle 0.75→0.70", func(s *quantize.Scheme) { s.TimingMiddleMax = 0.70 }},
		{"timing middle 0.75→0.80", func(s *quantize.Scheme) { s.TimingMiddleMax = 0.80 }},
		{"growth soon 0.10→0.15", func(s *quantize.Scheme) { s.GrowthSoonMax = 0.15 }},
		{"growth long 0.75→0.70", func(s *quantize.Scheme) { s.GrowthLongMax = 0.70 }},
	}
	for _, c := range cases {
		changed, err := perturb(c.name, c.mutate)
		if err != nil {
			return nil, err
		}
		res.Perturbations[c.name] = changed
	}
	return res, nil
}

// Render prints the label-sensitivity ablation.
func (r *LabelSensitivityResult) Render() string {
	t := report.New("Ablation — classification sensitivity to quantization cut points",
		"perturbation", "projects reclassified", "share")
	for _, name := range []string{
		"timing early 0.25→0.20", "timing early 0.25→0.30",
		"timing middle 0.75→0.70", "timing middle 0.75→0.80",
		"growth soon 0.10→0.15", "growth long 0.75→0.70",
	} {
		n := r.Perturbations[name]
		t.Add(name, report.Itoa(n), report.Pct(float64(n)/float64(r.N)))
	}
	return t.String()
}

// TreeDepthResult is the decision-tree depth ablation of Fig. 5.
type TreeDepthResult struct {
	// ByDepth maps max depth to (misclassified, leaves).
	ByDepth map[int][2]int
	N       int
}

// TreeDepth retrains the Fig. 5 tree at several depth caps.
func TreeDepth(ctx *Context) (*TreeDepthResult, error) {
	samples := treeSamples(ctx)
	res := &TreeDepthResult{ByDepth: map[int][2]int{}, N: len(samples)}
	for _, depth := range []int{1, 2, 3, 4, 0} {
		tree, err := dtree.Train(featureNames(), samples, dtree.Options{MaxDepth: depth, MinLeaf: 2})
		if err != nil {
			return nil, err
		}
		res.ByDepth[depth] = [2]int{len(tree.Misclassified(samples)), tree.Leaves()}
	}
	return res, nil
}

// Render prints the tree-depth ablation.
func (r *TreeDepthResult) Render() string {
	t := report.New("Ablation — decision-tree depth vs misclassification",
		"max depth", "misclassified", "leaves")
	for _, d := range []int{1, 2, 3, 4, 0} {
		name := fmt.Sprintf("%d", d)
		if d == 0 {
			name = "unbounded"
		}
		v := r.ByDepth[d]
		t.Add(name, fmt.Sprintf("%d/%d", v[0], r.N), report.Itoa(v[1]))
	}
	return t.String()
}

// UnsupervisedResult is the k-means cross-check: do the manually-shaped
// families emerge from the raw 20-dim vectors without labels?
type UnsupervisedResult struct {
	K         int
	Purity    float64
	RandIndex float64
	// FamilyPurity scores agreement against the 3 families instead of
	// the 8 patterns.
	FamilyPurity float64
}

// Unsupervised clusters the corpus vectors with k-means (k = 8) and
// scores agreement with the assigned patterns and families.
func Unsupervised(ctx *Context, seed int64) (*UnsupervisedResult, error) {
	var vectors [][]float64
	var patterns []string
	var families []string
	for _, p := range ctx.Corpus.Projects {
		vectors = append(vectors, p.Measures.Vector)
		patterns = append(patterns, p.Assigned().String())
		families = append(families, core.FamilyOf(p.Assigned()).String())
	}
	k := len(core.AllPatterns)
	assign, err := cluster.KMeans(vectors, k, seed, 100)
	if err != nil {
		return nil, err
	}
	purity, err := cluster.Purity(assign, patterns)
	if err != nil {
		return nil, err
	}
	ri, err := cluster.RandIndex(assign, patterns)
	if err != nil {
		return nil, err
	}
	famPurity, err := cluster.Purity(assign, families)
	if err != nil {
		return nil, err
	}
	return &UnsupervisedResult{K: k, Purity: purity, RandIndex: ri, FamilyPurity: famPurity}, nil
}

// Render prints the unsupervised cross-check.
func (r *UnsupervisedResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation — unsupervised k-means over the 20-dim vectors\n")
	fmt.Fprintf(&sb, "  k=%d  pattern purity=%.2f  rand index=%.2f  family purity=%.2f\n",
		r.K, r.Purity, r.RandIndex, r.FamilyPurity)
	return sb.String()
}
