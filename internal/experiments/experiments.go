// Package experiments reproduces every table and figure of the paper's
// evaluation from an analyzed corpus. Each experiment returns a
// structured result plus a text rendering; cmd/reproduce prints them in
// paper order and the root bench suite times them.
package experiments

import (
	"fmt"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
)

// Context carries the corpus and quantization scheme all experiments
// operate on.
type Context struct {
	Corpus *corpus.Corpus
	Scheme quantize.Scheme
}

// NewPaperContext generates the calibrated 151-project corpus, analyzes
// it end-to-end (DDL parsing onward) and applies the >12-months filter of
// §3.1.
func NewPaperContext(seed int64) (*Context, error) {
	c, err := synth.PaperCorpus(seed)
	if err != nil {
		return nil, err
	}
	scheme := quantize.DefaultScheme()
	if err := c.Analyze(scheme); err != nil {
		return nil, err
	}
	filtered := c.FilterMinMonths(12)
	if filtered.Len() != c.Len() {
		return nil, fmt.Errorf("experiments: generator produced %d projects under 13 months",
			c.Len()-filtered.Len())
	}
	return &Context{Corpus: filtered, Scheme: scheme}, nil
}

// NewContext wraps an existing corpus (already built, not yet analyzed).
func NewContext(c *corpus.Corpus, scheme quantize.Scheme) (*Context, error) {
	if err := c.Analyze(scheme); err != nil {
		return nil, err
	}
	return &Context{Corpus: c.FilterMinMonths(12), Scheme: scheme}, nil
}

// measuresOf collects the per-project measures in corpus order.
func (ctx *Context) measuresOf() []metrics.Measures {
	out := make([]metrics.Measures, 0, ctx.Corpus.Len())
	for _, p := range ctx.Corpus.Projects {
		out = append(out, p.Measures)
	}
	return out
}

// subjects returns the taxonomy view of the corpus.
func (ctx *Context) subjects() []core.Subject {
	return ctx.Corpus.Subjects()
}

// projectsByPattern groups projects by assigned pattern.
func (ctx *Context) projectsByPattern() map[core.Pattern][]*corpus.Project {
	return ctx.Corpus.ByPattern()
}
