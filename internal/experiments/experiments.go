// Package experiments reproduces every table and figure of the paper's
// evaluation from an analyzed corpus. Each experiment returns a
// structured result plus a text rendering; cmd/reproduce prints them in
// paper order and the root bench suite times them.
package experiments

import (
	"context"
	"fmt"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/metrics"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
)

// Context carries the corpus and quantization scheme all experiments
// operate on.
type Context struct {
	Corpus *corpus.Corpus
	Scheme quantize.Scheme
}

// NewPaperContext generates the calibrated 151-project corpus, analyzes
// it end-to-end (DDL parsing onward) and applies the >12-months filter of
// §3.1. The analysis runs through the staged concurrent pipeline with
// default options; results are identical to a sequential Corpus.Analyze.
func NewPaperContext(seed int64) (*Context, error) {
	ctx, _, err := NewPaperContextWithOptions(seed, pipeline.Options{})
	return ctx, err
}

// NewPaperContextWithOptions is NewPaperContext with explicit pipeline
// options (worker counts, cache directory, fail-fast), returning the
// pipeline statistics — including the cache-hit counters — alongside the
// context.
func NewPaperContextWithOptions(seed int64, opts pipeline.Options) (*Context, pipeline.Stats, error) {
	c, err := synth.PaperCorpus(seed)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	scheme := quantize.DefaultScheme()
	opts.Scheme = &scheme
	stats, err := pipeline.Run(context.Background(), c, opts)
	if err != nil {
		return nil, stats, err
	}
	filtered := c.FilterMinMonths(12)
	if filtered.Len() != c.Len() {
		return nil, stats, fmt.Errorf("experiments: generator produced %d projects under 13 months",
			c.Len()-filtered.Len())
	}
	return &Context{Corpus: filtered, Scheme: scheme}, stats, nil
}

// NewPaperContextTolerant is NewPaperContextWithOptions for degraded
// runs: per-project analysis failures do not abort the reproduction.
// Failed projects are dropped from the returned corpus and itemized in
// stats.Degradation, so the caller can decide how much loss it accepts —
// the same discipline that let the paper's study proceed with 151 of its
// 195 mined repositories. It errors only when nothing survives (or the
// corpus cannot be generated at all).
func NewPaperContextTolerant(seed int64, opts pipeline.Options) (*Context, pipeline.Stats, error) {
	c, err := synth.PaperCorpus(seed)
	if err != nil {
		return nil, pipeline.Stats{}, err
	}
	scheme := quantize.DefaultScheme()
	opts.Scheme = &scheme
	stats, runErr := pipeline.Run(context.Background(), c, opts)
	survived := &corpus.Corpus{}
	for _, p := range c.Projects {
		if p.Analyzed {
			survived.Projects = append(survived.Projects, p)
		}
	}
	if survived.Len() == 0 {
		if runErr == nil {
			runErr = fmt.Errorf("experiments: no project survived analysis")
		}
		return nil, stats, runErr
	}
	return &Context{Corpus: survived.FilterMinMonths(12), Scheme: scheme}, stats, nil
}

// NewContext wraps an existing corpus (already built, not yet analyzed),
// analyzing it through the pipeline.
func NewContext(c *corpus.Corpus, scheme quantize.Scheme) (*Context, error) {
	if _, err := pipeline.Run(context.Background(), c, pipeline.Options{Scheme: &scheme}); err != nil {
		return nil, err
	}
	return &Context{Corpus: c.FilterMinMonths(12), Scheme: scheme}, nil
}

// measuresOf collects the per-project measures in corpus order.
func (ctx *Context) measuresOf() []metrics.Measures {
	out := make([]metrics.Measures, 0, ctx.Corpus.Len())
	for _, p := range ctx.Corpus.Projects {
		out = append(out, p.Measures)
	}
	return out
}

// subjects returns the taxonomy view of the corpus.
func (ctx *Context) subjects() []core.Subject {
	return ctx.Corpus.Subjects()
}

// projectsByPattern groups projects by assigned pattern.
func (ctx *Context) projectsByPattern() map[core.Pattern][]*corpus.Project {
	return ctx.Corpus.ByPattern()
}
