package experiments

import (
	"fmt"
	"strings"

	"schemaevo/internal/core"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/report"
	"schemaevo/internal/stats"
	"schemaevo/internal/tablestats"
)

// Table1Row is one metric row of Table 1: the label vocabulary and the
// number of projects per label.
type Table1Row struct {
	Metric string
	Labels []string
	Counts []int
}

// Table1Result reproduces Table 1 (labeling limits and per-label project
// counts).
type Table1Result struct {
	Rows []Table1Row
	N    int
}

// Table1 quantizes every project and counts label populations.
func Table1(ctx *Context) *Table1Result {
	type dim struct {
		metric string
		labels []string
		value  func(quantize.Labels) string
	}
	dims := []dim{
		{"Volume of Birth (%Total)", []string{"low", "fair", "high", "full"},
			func(l quantize.Labels) string { return l.BirthVolume.String() }},
		{"Time Point of Birth (%PUP)", []string{"vp0", "early", "middle", "late"},
			func(l quantize.Labels) string { return l.BirthTiming.String() }},
		{"Time Point of Top Band (%PUP)", []string{"vp0", "early", "middle", "late"},
			func(l quantize.Labels) string { return l.TopBandPoint.String() }},
		{"Interval Birth→TopBand (%PUP)", []string{"zero", "soon", "fair", "long", "vlong"},
			func(l quantize.Labels) string { return l.IntervalBirthToTop.String() }},
		{"Interval TopBand→End (%PUP)", []string{"soon", "fair", "long", "full"},
			func(l quantize.Labels) string { return l.IntervalTopToEnd.String() }},
		{"Active months as %growth", []string{"zero", "few", "fair", "high"},
			func(l quantize.Labels) string { return l.ActivePctGrowth.String() }},
		{"Active months as %PUP", []string{"zero", "fair", "high", "ultra"},
			func(l quantize.Labels) string { return l.ActivePctPUP.String() }},
	}
	res := &Table1Result{N: ctx.Corpus.Len()}
	for _, d := range dims {
		counts := map[string]int{}
		for _, p := range ctx.Corpus.Projects {
			counts[d.value(p.Labels)]++
		}
		row := Table1Row{Metric: d.metric, Labels: d.labels}
		for _, lbl := range d.labels {
			row.Counts = append(row.Counts, counts[lbl])
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the Table 1 reproduction.
func (r *Table1Result) Render() string {
	t := report.New(fmt.Sprintf("Table 1 — Labeling of schema evolution metrics (N=%d)", r.N),
		"metric", "labels (count)")
	for _, row := range r.Rows {
		var parts []string
		for i, lbl := range row.Labels {
			parts = append(parts, fmt.Sprintf("%s (%d)", lbl, row.Counts[i]))
		}
		t.Add(row.Metric, strings.Join(parts, "  "))
	}
	return t.String()
}

// Table2Result reproduces Table 2 (per-pattern populations, exceptions,
// overlaps).
type Table2Result struct {
	Reports []core.ExceptionReport
}

// Table2 audits the corpus against the formal pattern definitions.
func Table2(ctx *Context) *Table2Result {
	return &Table2Result{Reports: core.Exceptions(ctx.subjects())}
}

// TotalExceptions sums the exceptions across patterns.
func (r *Table2Result) TotalExceptions() int {
	n := 0
	for _, rep := range r.Reports {
		n += len(rep.Exceptions)
	}
	return n
}

// TotalOverlaps sums the overlaps across patterns.
func (r *Table2Result) TotalOverlaps() int {
	n := 0
	for _, rep := range r.Reports {
		n += len(rep.Overlaps)
	}
	return n
}

// Render prints the Table 2 reproduction.
func (r *Table2Result) Render() string {
	t := report.New("Table 2 — Exceptions and overlaps of the pattern definitions",
		"pattern", "#prjs", "exceptions", "overlaps")
	for _, rep := range r.Reports {
		t.Add(rep.Pattern.String(), report.Itoa(rep.Projects),
			report.Itoa(len(rep.Exceptions)), report.Itoa(len(rep.Overlaps)))
	}
	t.Add("TOTAL", "", report.Itoa(r.TotalExceptions()), report.Itoa(r.TotalOverlaps()))
	return t.String()
}

// Section61Result reproduces the §6.1 activity analysis: the median
// post-birth schema activity per pattern.
type Section61Result struct {
	// Medians maps each pattern to the median number of attributes
	// changed after schema birth.
	Medians map[core.Pattern]float64
	// TotalMedians maps each pattern to the median total activity
	// (including birth).
	TotalMedians map[core.Pattern]float64
}

// postBirthActivity is the §6.1 measure: total change minus the birth
// month's volume.
func postBirthActivity(m metrics.Measures) int {
	if !m.HasSchema {
		return 0
	}
	birth := int(m.BirthVolumePct*float64(m.TotalActivity) + 0.5)
	return m.TotalActivity - birth
}

// Section61 computes the per-pattern activity medians.
func Section61(ctx *Context) *Section61Result {
	res := &Section61Result{
		Medians:      map[core.Pattern]float64{},
		TotalMedians: map[core.Pattern]float64{},
	}
	for pattern, projects := range ctx.projectsByPattern() {
		var post, total []int
		for _, p := range projects {
			post = append(post, postBirthActivity(p.Measures))
			total = append(total, p.Measures.TotalActivity)
		}
		res.Medians[pattern] = stats.MedianInts(post)
		res.TotalMedians[pattern] = stats.MedianInts(total)
	}
	return res
}

// Render prints the §6.1 reproduction.
func (r *Section61Result) Render() string {
	t := report.New("§6.1 — Median schema activity per pattern (attributes)",
		"pattern", "post-birth median", "total median")
	for _, p := range core.AllPatterns {
		t.Add(p.String(), report.F2(r.Medians[p]), report.F2(r.TotalMedians[p]))
	}
	return t.String()
}

// Section63Result reproduces §6.3: the expansion/maintenance mixture per
// pattern and family, plus the granularity of change (the paper observes
// that change is performed mostly at the granularity of whole tables).
type Section63Result struct {
	// ExpansionShare maps each pattern to expansion/(expansion+maintenance)
	// summed over its projects.
	ExpansionShare map[core.Pattern]float64
	// FamilyShare aggregates by family.
	FamilyShare map[core.Family]float64
	// TableGrainShare maps each pattern to the fraction of affected
	// attributes changed via whole-table additions/deletions.
	TableGrainShare map[core.Pattern]float64
	// CorpusTableGrainShare is the table-grain share over the whole corpus.
	CorpusTableGrainShare float64
}

// Section63 computes the change-type mixture and granularity.
func Section63(ctx *Context) *Section63Result {
	res := &Section63Result{
		ExpansionShare:  map[core.Pattern]float64{},
		FamilyShare:     map[core.Family]float64{},
		TableGrainShare: map[core.Pattern]float64{},
	}
	famExp := map[core.Family]int{}
	famTot := map[core.Family]int{}
	var corpusGrain tablestats.Granularity
	for pattern, projects := range ctx.projectsByPattern() {
		exp, tot := 0, 0
		var grain tablestats.Granularity
		for _, p := range projects {
			exp += p.History.ExpansionTotal
			tot += p.History.ExpansionTotal + p.History.MaintenanceTotal
			g := tablestats.GranularityOf(p.History)
			grain.TableGrain += g.TableGrain
			grain.InPlace += g.InPlace
		}
		if tot > 0 {
			res.ExpansionShare[pattern] = float64(exp) / float64(tot)
		}
		res.TableGrainShare[pattern] = grain.TableGrainShare()
		corpusGrain.TableGrain += grain.TableGrain
		corpusGrain.InPlace += grain.InPlace
		f := core.FamilyOf(pattern)
		famExp[f] += exp
		famTot[f] += tot
	}
	for f, tot := range famTot {
		if tot > 0 {
			res.FamilyShare[f] = float64(famExp[f]) / float64(tot)
		}
	}
	res.CorpusTableGrainShare = corpusGrain.TableGrainShare()
	return res
}

// Render prints the §6.3 reproduction.
func (r *Section63Result) Render() string {
	t := report.New("§6.3 — Mixture and granularity of schema change",
		"scope", "expansion share", "table-grain share")
	for _, p := range core.AllPatterns {
		t.Add(p.String(), report.Pct(r.ExpansionShare[p]), report.Pct(r.TableGrainShare[p]))
	}
	for _, f := range core.AllFamilies {
		t.Add("family: "+f.String(), report.Pct(r.FamilyShare[f]))
	}
	t.Add("corpus", "", report.Pct(r.CorpusTableGrainShare))
	return t.String()
}
