package experiments

import (
	"fmt"
	"sort"
	"strings"

	"schemaevo/internal/chart"
	"schemaevo/internal/cluster"
	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/dtree"
	"schemaevo/internal/predict"
	"schemaevo/internal/report"
	"schemaevo/internal/stats"
)

// Figure1Result reproduces the Fig. 1 nomenclature chart: one project's
// schema and source cumulative lines with the landmark measures.
type Figure1Result struct {
	Project string
	Chart   string
	SVG     string
	// Landmarks, normalized to [0,1].
	BirthPct, TopBandPct float64
	HasVault             bool
}

// Figure1 charts an illustrative project (a regularly curated one, whose
// line shows every landmark distinctly).
func Figure1(ctx *Context) *Figure1Result {
	var pick *corpus.Project
	for _, p := range ctx.Corpus.Projects {
		if p.Assigned() == core.RegularlyCurated {
			pick = p
			break
		}
	}
	if pick == nil {
		pick = ctx.Corpus.Projects[0]
	}
	title := fmt.Sprintf("Fig. 1 — %s (birth %.0f%%, top band %.0f%%, vault %v)",
		pick.Name, pick.Measures.BirthPct*100, pick.Measures.TopBandPct*100, pick.Measures.HasVault)
	sc := pick.History.SchemaCumulative()
	src := pick.History.SourceCumulative()
	return &Figure1Result{
		Project:    pick.Name,
		Chart:      chart.ASCII(sc, src, chart.Options{Title: title}),
		SVG:        chart.SVG(sc, src, chart.Options{Title: title}),
		BirthPct:   pick.Measures.BirthPct,
		TopBandPct: pick.Measures.TopBandPct,
		HasVault:   pick.Measures.HasVault,
	}
}

// Render prints the Fig. 1 reproduction.
func (r *Figure1Result) Render() string { return r.Chart }

// Figure2Names lists the time-related measures correlated in Fig. 2.
var Figure2Names = []string{
	"BirthVolume_pctTotal",
	"BirthPoint_pctPUP",
	"TopBandPoint_pctPUP",
	"IntervalBirthToTop_pctPUP",
	"IntervalTopToEnd_pctPUP",
	"ActiveGrowthMonths",
	"ActiveGrowth_pctGrowth",
	"ActiveGrowth_pctPUP",
}

// Figure2Result reproduces the Spearman correlation matrix of Fig. 2.
type Figure2Result struct {
	Matrix *stats.Matrix
}

// Figure2 computes all pairwise Spearman correlations of the Fig. 2
// measures.
func Figure2(ctx *Context) (*Figure2Result, error) {
	ms := ctx.measuresOf()
	series := make([][]float64, len(Figure2Names))
	for i := range series {
		series[i] = make([]float64, len(ms))
	}
	for j, m := range ms {
		series[0][j] = m.BirthVolumePct
		series[1][j] = m.BirthPct
		series[2][j] = m.TopBandPct
		series[3][j] = m.IntervalBirthToTopPct
		series[4][j] = m.IntervalTopToEndPct
		series[5][j] = float64(m.ActiveGrowthMonths)
		series[6][j] = m.ActivePctGrowth
		series[7][j] = m.ActivePctPUP
	}
	mx, err := stats.SpearmanMatrix(Figure2Names, series)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{Matrix: mx}, nil
}

// R returns the correlation between two named measures.
func (r *Figure2Result) R(a, b string) float64 {
	ia, ib := -1, -1
	for i, n := range r.Matrix.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0
	}
	return r.Matrix.R[ia][ib]
}

// Render prints the correlation matrix with the strong pairs highlighted
// below (the "clean view" of Fig. 2).
func (r *Figure2Result) Render() string {
	t := report.New("Fig. 2 — Spearman correlations of time-related metrics",
		append([]string{""}, shortNames(r.Matrix.Names)...)...)
	for i, name := range r.Matrix.Names {
		row := []string{shortName(name)}
		for j := range r.Matrix.Names {
			row = append(row, report.F2(r.Matrix.R[i][j]))
		}
		t.Add(row...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("\nStrong pairs (|rho| >= 0.6):\n")
	for _, pr := range r.Matrix.StrongPairs(0.6) {
		fmt.Fprintf(&sb, "  %-26s ~ %-26s rho=%.2f\n",
			r.Matrix.Names[pr[0]], r.Matrix.Names[pr[1]], r.Matrix.R[pr[0]][pr[1]])
	}
	return sb.String()
}

func shortNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = shortName(n)
	}
	return out
}

func shortName(n string) string {
	if i := strings.Index(n, "_"); i > 0 {
		return n[:i]
	}
	return n
}

// Figure3Result reproduces Fig. 3: one exemplar cumulative chart per
// pattern.
type Figure3Result struct {
	// Charts maps each pattern to the ASCII chart of one exemplar
	// project (the definitional member with the median total activity).
	Charts map[core.Pattern]string
	// SVGs holds the same exemplars as SVG documents.
	SVGs  map[core.Pattern]string
	Names map[core.Pattern]string
}

// Figure3 picks one exemplar per pattern and charts it.
func Figure3(ctx *Context) *Figure3Result {
	res := &Figure3Result{
		Charts: map[core.Pattern]string{},
		SVGs:   map[core.Pattern]string{},
		Names:  map[core.Pattern]string{},
	}
	for pattern, projects := range ctx.projectsByPattern() {
		if pattern == core.Unclassified || len(projects) == 0 {
			continue
		}
		// Prefer a non-exception member.
		var candidates []*corpus.Project
		for _, p := range projects {
			if !p.Subject().IsException() {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			candidates = projects
		}
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].Measures.TotalActivity < candidates[j].Measures.TotalActivity
		})
		pick := candidates[len(candidates)/2]
		title := fmt.Sprintf("%s — %s", pattern, pick.Name)
		res.Charts[pattern] = chart.ASCII(pick.History.SchemaCumulative(),
			pick.History.SourceCumulative(), chart.Options{Title: title, Height: 10})
		res.SVGs[pattern] = chart.SVG(pick.History.SchemaCumulative(),
			pick.History.SourceCumulative(), chart.Options{Title: title})
		res.Names[pattern] = pick.Name
	}
	return res
}

// Render prints all exemplar charts in pattern order.
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 3 — Example schema evolution time-related patterns\n\n")
	for _, p := range core.AllPatterns {
		if c, ok := r.Charts[p]; ok {
			sb.WriteString(c)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Figure4Result reproduces the Fig. 4 per-pattern characteristics
// overview.
type Figure4Result struct {
	Profiles []core.Profile
}

// Figure4 aggregates the label profiles per pattern.
func Figure4(ctx *Context) *Figure4Result {
	return &Figure4Result{Profiles: core.Profiles(ctx.subjects())}
}

// Render prints the overview table.
func (r *Figure4Result) Render() string {
	t := report.New("Fig. 4 — Characteristics of the time-related patterns",
		"pattern (#)", "birth vol", "birth timing", "top band", "vault",
		"birth→top", "active months", "act %growth", "act %PUP", "top→end")
	for _, pr := range r.Profiles {
		t.Add(
			fmt.Sprintf("%s (%d)", pr.Pattern, pr.Count),
			core.LabelSet(pr.BirthVol),
			core.LabelSet(pr.BirthTiming),
			core.LabelSet(pr.TopBandPoint),
			core.LabelSet(pr.Vault),
			core.LabelSet(pr.GrowInterval),
			fmt.Sprintf("%d-%d", pr.ActiveMonthsMin, pr.ActiveMonthsMax),
			core.LabelSet(pr.ActGrowth),
			core.LabelSet(pr.ActPUP),
			core.LabelSet(pr.Tail),
		)
	}
	return t.String()
}

// Figure5Result reproduces Fig. 5: the decision tree over the labeled
// corpus and its misclassification count.
type Figure5Result struct {
	Tree          *dtree.Tree
	Misclassified []dtree.Sample
	N             int
}

// Figure5 trains a categorical decision tree on the label profiles with
// the manual (ground-truth) pattern as the class.
func Figure5(ctx *Context) (*Figure5Result, error) {
	samples := treeSamples(ctx)
	tree, err := dtree.Train(featureNames(), samples, dtree.Options{MinLeaf: 2})
	if err != nil {
		return nil, err
	}
	return &Figure5Result{
		Tree:          tree,
		Misclassified: tree.Misclassified(samples),
		N:             len(samples),
	}, nil
}

func featureNames() []string {
	// HasVault is excluded: the paper's tree (Fig. 5) splits on the
	// timing/interval/rate labels.
	return []string{"BirthTiming", "TopBandPoint", "IntervalBirthToTop", "ActiveRate", "BirthVolume"}
}

func treeSamples(ctx *Context) []dtree.Sample {
	var out []dtree.Sample
	for _, s := range ctx.subjects() {
		rate := "few"
		if s.Labels.ActiveGrowthMonths > 3 {
			rate = "many"
		}
		out = append(out, dtree.Sample{
			Features: []string{
				s.Labels.BirthTiming.String(),
				s.Labels.TopBandPoint.String(),
				s.Labels.IntervalBirthToTop.String(),
				rate,
				s.Labels.BirthVolume.String(),
			},
			Class: s.Assigned.String(),
		})
	}
	return out
}

// Render prints the tree and the misclassification headline.
func (r *Figure5Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 5 — Decision tree over the labeled corpus (%d/%d misclassified)\n\n",
		len(r.Misclassified), r.N)
	sb.WriteString(r.Tree.Render())
	return sb.String()
}

// Figure6Result reproduces Fig. 6: the populated points of the defining
// label space per pattern.
type Figure6Result struct {
	Points []core.DomainPoint
	Shared []core.DomainPoint
}

// Figure6 computes the active-domain coverage.
func Figure6(ctx *Context) *Figure6Result {
	points := core.DomainCoverage(ctx.subjects())
	return &Figure6Result{Points: points, Shared: core.SharedPoints(points)}
}

// Render prints the coverage table.
func (r *Figure6Result) Render() string {
	t := report.New("Fig. 6 — Coverage of the label space by the patterns",
		"birth/top/interval/rate", "#prjs", "patterns")
	for _, pt := range r.Points {
		var parts []string
		for _, p := range core.AllPatterns {
			if n := pt.Patterns[p]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", p, n))
			}
		}
		if n := pt.Patterns[core.Unclassified]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", core.Unclassified, n))
		}
		t.Add(pt.Key(), report.Itoa(pt.Total), strings.Join(parts, ", "))
	}
	t.Addf("points shared by >1 pattern: %d of %d", len(r.Shared), len(r.Points))
	return t.String()
}

// Figure7Result reproduces Fig. 7: P(pattern | birth bucket).
type Figure7Result struct {
	Estimator *predict.Estimator
}

// Figure7 fits the birth-point estimator on the corpus.
func Figure7(ctx *Context) (*Figure7Result, error) {
	var obs []predict.Observation
	for _, p := range ctx.Corpus.Projects {
		obs = append(obs, predict.Observation{
			BirthMonth: p.Measures.BirthMonth,
			Pattern:    p.Assigned(),
		})
	}
	e, err := predict.Fit(obs)
	if err != nil {
		return nil, err
	}
	return &Figure7Result{Estimator: e}, nil
}

// Render prints the probability table in the paper's layout.
func (r *Figure7Result) Render() string {
	e := r.Estimator
	headers := []string{"pattern", "overall"}
	for _, b := range predict.AllBuckets {
		headers = append(headers, "born "+b.String())
	}
	t := report.New("Fig. 7 — P(pattern | point of schema birth)", headers...)
	for _, p := range core.AllPatterns {
		row := []string{p.String(),
			fmt.Sprintf("%d (%s)", e.OverallCount(p), report.Pct(e.OverallProb(p)))}
		for _, b := range predict.AllBuckets {
			if n := e.Count(b, p); n > 0 {
				row = append(row, fmt.Sprintf("%d (%s)", n, report.Pct(e.Prob(b, p))))
			} else {
				row = append(row, "")
			}
		}
		t.Add(row...)
	}
	totals := []string{"TOTAL", report.Itoa(e.N())}
	for _, b := range predict.AllBuckets {
		totals = append(totals, report.Itoa(e.BucketTotal(b)))
	}
	t.Add(totals...)
	return t.String()
}

// Section52Result reproduces the §5.2 cohesion analysis: the Mean
// Distance to Centroid of each pattern's 20-point vectors.
type Section52Result struct {
	MDC map[core.Pattern]float64
	// Centroids holds each pattern's mean 20-point cumulative line.
	Centroids map[core.Pattern][]float64
	// Min and Max bound the observed MDCs (the paper reports 0.06-1.25).
	Min, Max float64
}

// Section52 computes per-pattern MDC over the resampled cumulative
// vectors.
func Section52(ctx *Context) (*Section52Result, error) {
	res := &Section52Result{
		MDC:       map[core.Pattern]float64{},
		Centroids: map[core.Pattern][]float64{},
	}
	first := true
	for pattern, projects := range ctx.projectsByPattern() {
		if pattern == core.Unclassified {
			continue
		}
		var vectors [][]float64
		for _, p := range projects {
			vectors = append(vectors, p.Measures.Vector)
		}
		mdc, err := cluster.MeanDistToCentroid(vectors)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v: %w", pattern, err)
		}
		centroid, err := cluster.Centroid(vectors)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v: %w", pattern, err)
		}
		res.MDC[pattern] = mdc
		res.Centroids[pattern] = centroid
		if first || mdc < res.Min {
			res.Min = mdc
		}
		if first || mdc > res.Max {
			res.Max = mdc
		}
		first = false
	}
	return res, nil
}

// Render prints the cohesion table.
func (r *Section52Result) Render() string {
	t := report.New("§5.2 — Pattern cohesion: mean distance to centroid (20-dim vectors)",
		"pattern", "MDC", "centroid line")
	for _, p := range core.AllPatterns {
		t.Add(p.String(), report.F2(r.MDC[p]), chart.Sparkline(r.Centroids[p], 20))
	}
	t.Addf("range: %.2f .. %.2f (paper: 0.06 .. 1.25)", r.Min, r.Max)
	return t.String()
}

// Figure3Order returns the patterns that have an exemplar, in the paper's
// presentation order — for deterministic report assembly.
func Figure3Order(r *Figure3Result) []core.Pattern {
	var out []core.Pattern
	for _, p := range core.AllPatterns {
		if _, ok := r.SVGs[p]; ok {
			out = append(out, p)
		}
	}
	return out
}
