package experiments

import (
	"strings"
	"testing"
)

// TestCrossDialectInvariance: the headline check of the dialect
// extension — restyling the corpus in any dialect changes nothing about
// the pattern study, detection is exact, and no adapter degrades on its
// own syntax.
func TestCrossDialectInvariance(t *testing.T) {
	res, err := CrossDialect(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if !res.Invariant {
		t.Errorf("pattern distributions drift across dialects:")
		for _, row := range res.Rows {
			t.Errorf("  %s: %v", row.Dialect, row.Patterns)
		}
	}
	for _, row := range res.Rows {
		if row.Projects != 151 {
			t.Errorf("%s: %d projects, want 151", row.Dialect, row.Projects)
		}
		if row.Detected != row.Projects {
			t.Errorf("%s: detected %d/%d", row.Dialect, row.Detected, row.Projects)
		}
		if row.ParseNotes != 0 {
			t.Errorf("%s: %d parse notes", row.Dialect, row.ParseNotes)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "cross-dialect") || !strings.Contains(out, "identical across dialects") {
		t.Errorf("render missing verdict:\n%s", out)
	}
}
