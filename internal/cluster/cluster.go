// Package cluster provides the vector-space validation machinery of §5.2:
// per-pattern centroids of the 20-point resampled cumulative lines, the
// Mean Distance to Centroid (MDC) cohesion measure, and — as an
// unsupervised cross-check extension — k-means clustering with purity and
// Rand-index agreement scores against a reference grouping.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Centroid returns the coordinate-wise mean of the vectors. All vectors
// must share the same dimension.
func Centroid(vectors [][]float64) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("cluster: centroid of empty set")
	}
	dim := len(vectors[0])
	c := make([]float64, dim)
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("cluster: vector %d has dim %d, want %d", i, len(v), dim)
		}
		for j, x := range v {
			c[j] += x
		}
	}
	for j := range c {
		c[j] /= float64(len(vectors))
	}
	return c, nil
}

// Euclidean returns the Euclidean distance between two equal-length
// vectors.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MeanDistToCentroid returns the MDC cohesion measure of §5.2: the mean
// Euclidean distance of the vectors to their centroid. A singleton set
// has MDC 0.
func MeanDistToCentroid(vectors [][]float64) (float64, error) {
	c, err := Centroid(vectors)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, v := range vectors {
		s += Euclidean(v, c)
	}
	return s / float64(len(vectors)), nil
}

// KMeans clusters the vectors into k groups with Lloyd's algorithm and
// k-means++ seeding from the given deterministic seed. It returns the
// cluster assignment of each vector. maxIter bounds the Lloyd iterations.
func KMeans(vectors [][]float64, k int, seed int64, maxIter int) ([]int, error) {
	if k <= 0 || k > len(vectors) {
		return nil, fmt.Errorf("cluster: k = %d for %d vectors", k, len(vectors))
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("cluster: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(vectors, k, rng)
	assign := make([]int, len(vectors))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := Euclidean(v, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; empty clusters keep their old position.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return assign, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy.
func seedPlusPlus(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := vectors[rng.Intn(len(vectors))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(vectors))
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := Euclidean(v, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with existing centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), vectors[0]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), vectors[idx]...))
	}
	return centroids
}

// Purity scores how well the clusters align with reference labels: the
// fraction of points whose cluster's majority label matches their own.
func Purity(assign []int, labels []string) (float64, error) {
	if len(assign) != len(labels) {
		return 0, fmt.Errorf("cluster: %d assignments for %d labels", len(assign), len(labels))
	}
	if len(assign) == 0 {
		return 0, fmt.Errorf("cluster: empty input")
	}
	perCluster := map[int]map[string]int{}
	for i, c := range assign {
		if perCluster[c] == nil {
			perCluster[c] = map[string]int{}
		}
		perCluster[c][labels[i]]++
	}
	correct := 0
	for _, counts := range perCluster {
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign)), nil
}

// RandIndex scores pairwise agreement between the clustering and the
// reference labels: the fraction of point pairs on which the two
// groupings agree (same/same or different/different).
func RandIndex(assign []int, labels []string) (float64, error) {
	if len(assign) != len(labels) {
		return 0, fmt.Errorf("cluster: %d assignments for %d labels", len(assign), len(labels))
	}
	n := len(assign)
	if n < 2 {
		return 0, fmt.Errorf("cluster: rand index needs at least 2 points")
	}
	agree := 0
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameCluster := assign[i] == assign[j]
			sameLabel := labels[i] == labels[j]
			if sameCluster == sameLabel {
				agree++
			}
			pairs++
		}
	}
	return float64(agree) / float64(pairs), nil
}
