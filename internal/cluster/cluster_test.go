package cluster

import (
	"math"
	"testing"
)

func TestCentroid(t *testing.T) {
	c, err := Centroid([][]float64{{0, 0}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 1 || c[1] != 2 {
		t.Errorf("centroid = %v", c)
	}
	if _, err := Centroid(nil); err == nil {
		t.Error("empty set should error")
	}
	if _, err := Centroid([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged vectors should error")
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Errorf("distance = %v", d)
	}
	if d := Euclidean([]float64{1, 1}, []float64{1, 1}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestMeanDistToCentroid(t *testing.T) {
	mdc, err := MeanDistToCentroid([][]float64{{0, 0}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if mdc != 1 {
		t.Errorf("mdc = %v", mdc)
	}
	single, _ := MeanDistToCentroid([][]float64{{5, 5, 5}})
	if single != 0 {
		t.Errorf("singleton mdc = %v", single)
	}
}

func wellSeparated() ([][]float64, []string) {
	var vectors [][]float64
	var labels []string
	for i := 0; i < 10; i++ {
		vectors = append(vectors, []float64{0 + float64(i)*0.01, 0})
		labels = append(labels, "a")
	}
	for i := 0; i < 10; i++ {
		vectors = append(vectors, []float64{10 + float64(i)*0.01, 10})
		labels = append(labels, "b")
	}
	return vectors, labels
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	vectors, labels := wellSeparated()
	assign, err := KMeans(vectors, 2, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	purity, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if purity != 1 {
		t.Errorf("purity = %v for well-separated clusters", purity)
	}
	ri, err := RandIndex(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("rand index = %v", ri)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	vectors, _ := wellSeparated()
	a1, _ := KMeans(vectors, 2, 42, 50)
	a2, _ := KMeans(vectors, 2, 42, 50)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	vectors, _ := wellSeparated()
	if _, err := KMeans(vectors, 0, 1, 10); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(vectors, len(vectors)+1, 1, 10); err == nil {
		t.Error("k>n should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 1, 10); err == nil {
		t.Error("ragged vectors should error")
	}
}

func TestKMeansDegenerateAllSame(t *testing.T) {
	vectors := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	assign, err := KMeans(vectors, 2, 9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 4 {
		t.Errorf("assignments: %v", assign)
	}
}

func TestPurityAndRandIndexErrors(t *testing.T) {
	if _, err := Purity([]int{0}, []string{"a", "b"}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := RandIndex([]int{0}, []string{"a"}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestRandIndexPartialAgreement(t *testing.T) {
	// 4 points: clusters {0,0,1,1}, labels {a,a,a,b}.
	// Pairs: (0,1) same/same agree; (0,2) diff/same disagree; (0,3) diff/diff agree;
	// (1,2) diff/same disagree; (1,3) diff/diff agree; (2,3) same/diff disagree.
	ri, err := RandIndex([]int{0, 0, 1, 1}, []string{"a", "a", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ri-0.5) > 1e-12 {
		t.Errorf("rand index = %v, want 0.5", ri)
	}
}
