package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
	"schemaevo/internal/quantize"
)

// spec is one block of projects to generate: a pattern, a birth-month
// bucket, a population, and whether the block consists of intentional
// definition exceptions (Table 2).
type spec struct {
	pattern core.Pattern
	gen     generator
	bucket  BirthBucket
	n       int
	exc     bool
}

// paperSpecs encodes the published corpus composition: the per-pattern
// populations of Table 2 crossed with the birth-month buckets of Fig. 7,
// including the exception projects the paper reports per pattern.
func paperSpecs() []spec {
	return []spec{
		// Flatliners: 23, all born at M0.
		{core.Flatliner, genFlatliner, BornM0, 23, false},

		// Radical Sign: 41 = 16 + 19 + 5 + 1 across the birth buckets.
		{core.RadicalSign, genRadicalSign, BornM0, 16, false},
		{core.RadicalSign, genRadicalSign, BornM1to6, 19, false},
		{core.RadicalSign, genRadicalSign, BornM7to12, 5, false},
		{core.RadicalSign, genRadicalSign, BornAfterM12, 1, false},

		// Sigmoid: 19 = 17 regular (1 + 16) plus the 2 early-born
		// exceptions (1 in M1..6, 1 in M7..12).
		{core.Sigmoid, genSigmoid, BornM7to12, 1, false},
		{core.Sigmoid, genSigmoid, BornAfterM12, 16, false},
		{core.Sigmoid, genSigmoidExcEarly, BornM1to6, 1, true},
		{core.Sigmoid, genSigmoidExcEarly, BornM7to12, 1, true},

		// Late Risers: 14 = 13 regular plus the middle-top exception.
		{core.LateRiser, genLateRiser, BornAfterM12, 13, false},
		{core.LateRiser, genLateRiserExcMiddle, BornAfterM12, 1, true},

		// Quantum Steps: 23 = variant A (4 + 10 + 2), variant B (5), and
		// 2 exceptions.
		{core.QuantumSteps, genQuantumA, BornM0, 4, false},
		{core.QuantumSteps, genQuantumA, BornM1to6, 10, false},
		{core.QuantumSteps, genQuantumA, BornM7to12, 2, false},
		{core.QuantumSteps, genQuantumB, BornAfterM12, 5, false},
		{core.QuantumSteps, genQuantumExcLateTop, BornM1to6, 1, true},
		{core.QuantumSteps, genQuantumExcFairSigmoid, BornAfterM12, 1, true},

		// Regularly Curated: 14 = variant A (3 + 4 + 3 + 1), variant B (3).
		{core.RegularlyCurated, genRegularEarly, BornM0, 3, false},
		{core.RegularlyCurated, genRegularEarly, BornM1to6, 4, false},
		{core.RegularlyCurated, genRegularEarly, BornM7to12, 3, false},
		{core.RegularlyCurated, genRegularEarly, BornAfterM12, 1, false},
		{core.RegularlyCurated, genRegularMiddle, BornAfterM12, 3, false},

		// Smoking Funnel: 7, all middle-born (after M12).
		{core.SmokingFunnel, genSmokingFunnel, BornAfterM12, 7, false},

		// Siesta: 10 = 7 regular (5 + 2) plus 3 exceptions.
		{core.Siesta, genSiesta, BornM0, 5, false},
		{core.Siesta, genSiesta, BornM1to6, 2, false},
		{core.Siesta, genSiestaExcActive, BornM0, 1, true},
		{core.Siesta, genSiestaExcActive, BornM1to6, 1, true},
		{core.Siesta, genSiestaExcLong, BornM7to12, 1, true},
	}
}

// PaperPopulations returns the per-pattern population counts the
// generator is calibrated to (Table 2 of the paper).
func PaperPopulations() map[core.Pattern]int {
	out := map[core.Pattern]int{}
	for _, sp := range paperSpecs() {
		out[sp.pattern] += sp.n
	}
	return out
}

func slug(p core.Pattern) string {
	return strings.ReplaceAll(strings.ToLower(p.String()), " ", "-")
}

func randomStart(rng *rand.Rand) time.Time {
	year := 2004 + rng.Intn(14)
	month := time.Month(1 + rng.Intn(12))
	return time.Date(year, month, 1, 9, 0, 0, 0, time.UTC)
}

// PaperCorpus generates the calibrated 151-project corpus. Generation is
// deterministic for a given seed. Every project's repository is a full
// DDL commit history; derived fields are not yet computed (call
// Corpus.Analyze).
func PaperCorpus(seed int64) (*corpus.Corpus, error) {
	return PaperCorpusDialect(seed, "")
}

// PaperCorpusDialect is PaperCorpus with every project's DDL rendered in
// the named SQL dialect ("" or "generic" keeps the neutral rendering).
// The flavor changes only the SQL surface text: the RNG consumption,
// commit schedule and logical schemas are identical to the generic
// corpus of the same seed, so measures and pattern assignments match
// project-for-project across dialects.
func PaperCorpusDialect(seed int64, dialectName string) (*corpus.Corpus, error) {
	flavor, ok := FlavorByName(dialectName)
	if !ok {
		return nil, fmt.Errorf("synth: unknown dialect %q", dialectName)
	}
	dialectTag := ""
	if flavor != FlavorGeneric {
		dialectTag = flavor.String()
	}
	rng := rand.New(rand.NewSource(seed))
	scheme := quantize.DefaultScheme()
	c := &corpus.Corpus{}
	idx := 0
	for _, sp := range paperSpecs() {
		for i := 0; i < sp.n; i++ {
			sched, err := generateVerified(rng, sp.gen, sp.bucket, sp.pattern, sp.exc, scheme)
			if err != nil {
				return nil, fmt.Errorf("synth: %v/%v #%d: %w", sp.pattern, sp.bucket, i, err)
			}
			name := fmt.Sprintf("prj%03d-%s", idx, slug(sp.pattern))
			// About a third of real FOSS projects keep their schema as an
			// append-only migration script rather than a full dump; mirror
			// that mix so both parser paths carry corpus-scale load.
			style := FullDump
			if rng.Float64() < 0.3 {
				style = MigrationScript
			}
			repo, err := RealizeFlavored(sched, name, randomStart(rng), rng, style, flavor)
			if err != nil {
				return nil, fmt.Errorf("synth: %s: %w", name, err)
			}
			c.Projects = append(c.Projects, &corpus.Project{
				Name:        name,
				Repo:        repo,
				GroundTruth: sp.pattern,
				Dialect:     dialectTag,
			})
			idx++
		}
	}
	rng.Shuffle(len(c.Projects), func(i, j int) {
		c.Projects[i], c.Projects[j] = c.Projects[j], c.Projects[i]
	})
	return c, nil
}

// RandomCorpus generates n projects with patterns drawn from the paper's
// population proportions and birth buckets drawn per pattern. Useful for
// scale benchmarks and robustness tests.
func RandomCorpus(n int, seed int64) (*corpus.Corpus, error) {
	rng := rand.New(rand.NewSource(seed))
	scheme := quantize.DefaultScheme()
	specs := paperSpecs()
	// Build a cumulative distribution over the non-exception specs.
	var weights []int
	total := 0
	for _, sp := range specs {
		w := 0
		if !sp.exc {
			w = sp.n
		}
		total += w
		weights = append(weights, total)
	}
	c := &corpus.Corpus{}
	for i := 0; i < n; i++ {
		r := rng.Intn(total)
		var sp spec
		for j, w := range weights {
			if r < w {
				sp = specs[j]
				break
			}
		}
		sched, err := generateVerified(rng, sp.gen, sp.bucket, sp.pattern, false, scheme)
		if err != nil {
			return nil, fmt.Errorf("synth: random #%d (%v): %w", i, sp.pattern, err)
		}
		name := fmt.Sprintf("rnd%04d-%s", i, slug(sp.pattern))
		repo, err := Realize(sched, name, randomStart(rng), rng)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: %w", name, err)
		}
		c.Projects = append(c.Projects, &corpus.Project{
			Name:        name,
			Repo:        repo,
			GroundTruth: sp.pattern,
		})
	}
	return c, nil
}
