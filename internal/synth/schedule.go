// Package synth generates synthetic project histories whose schema lines
// follow the paper's eight time-related patterns. It substitutes for the
// GitHub corpus the authors mined: each generated project is a concrete
// repository of timestamped DDL snapshots plus a source-code heartbeat, so
// the entire analysis pipeline (parse → diff → heartbeat → measures →
// labels → classification) runs end-to-end on it.
//
// Generation happens in two layers: a *schedule* (months × attribute
// budgets) drawn from per-pattern temporal profiles and verified against
// the pattern definition, and a *realization* that turns the schedule
// into actual DDL snapshots whose diffs reproduce the budgets exactly.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"schemaevo/internal/core"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
)

// Schedule is the month-by-month plan of one project's schema activity.
type Schedule struct {
	// PUP is the project lifetime in months.
	PUP int
	// Monthly[i] is the number of attributes to affect in month i.
	Monthly []int
	// ExpShare is the target fraction of activity realized as expansion
	// (the rest is maintenance); the birth month is always pure expansion.
	ExpShare float64
}

// TotalActivity returns the scheduled attribute total.
func (s *Schedule) TotalActivity() int {
	n := 0
	for _, v := range s.Monthly {
		n += v
	}
	return n
}

// Classify runs the schedule (without realizing it) through the measures
// and the taxonomy, returning the pattern its shape satisfies.
func (s *Schedule) Classify(scheme quantize.Scheme) core.Pattern {
	h := &history.History{
		Project:       "schedule",
		SchemaMonthly: s.Monthly,
		SourceMonthly: make([]int, len(s.Monthly)),
	}
	m := metrics.Compute(h)
	if !m.HasSchema {
		return core.Unclassified
	}
	return core.Classify(quantize.Compute(m, scheme))
}

// BirthBucket identifies the Fig. 7 birth-month buckets.
type BirthBucket int

// The four birth-month buckets of Fig. 7.
const (
	BornM0 BirthBucket = iota
	BornM1to6
	BornM7to12
	BornAfterM12
)

func (b BirthBucket) String() string {
	return [...]string{"M0", "M1..M6", "M7..M12", ">M12"}[b]
}

// monthIn draws a birth month inside the bucket.
func (b BirthBucket) monthIn(rng *rand.Rand, maxLate int) int {
	switch b {
	case BornM0:
		return 0
	case BornM1to6:
		return 1 + rng.Intn(6)
	case BornM7to12:
		return 7 + rng.Intn(6)
	default:
		if maxLate < 14 {
			maxLate = 14
		}
		return 13 + rng.Intn(maxLate-13)
	}
}

// lognormInt draws a positive integer from a lognormal with the given
// median and shape, clamped to [1, 100000].
func lognormInt(rng *rand.Rand, median float64, sigma float64) int {
	v := math.Exp(math.Log(median) + rng.NormFloat64()*sigma)
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	if n > 100000 {
		n = 100000
	}
	return n
}

// randPUP draws a project lifetime in months, > 12 (the corpus filter),
// at least minMonths.
func randPUP(rng *rand.Rand, minMonths int) int {
	p := 13 + lognormInt(rng, 28, 0.6)
	if p < minMonths {
		p = minMonths
	}
	if p > 180 {
		p = 180
	}
	return p
}

// pupForBirthPct picks a PUP so that birth month bm lands in the open
// percentage interval (loPct, hiPct] of normalized time. It returns an
// error when the bucket and class are incompatible.
func pupForBirthPct(rng *rand.Rand, bm int, loPct, hiPct float64) (int, error) {
	// pct = bm/(PUP-1); need loPct < pct <= hiPct.
	// PUP-1 in [bm/hiPct, bm/loPct).
	lo := int(math.Ceil(float64(bm)/hiPct)) + 1
	var hi int
	if loPct <= 0 {
		hi = 1 << 20
	} else {
		hi = int(math.Ceil(float64(bm) / loPct)) // exclusive on PUP-1, i.e. PUP <= hi
	}
	if lo < 13+1 {
		lo = 14
	}
	if hi > 181 {
		hi = 181
	}
	if hi < lo {
		return 0, fmt.Errorf("synth: no PUP puts month %d in (%.2f,%.2f]", bm, loPct, hiPct)
	}
	return lo + rng.Intn(hi-lo+1), nil
}

// monthAtPct returns the month index closest to the given fraction of the
// project's life.
func monthAtPct(pct float64, pup int) int {
	m := int(math.Round(pct * float64(pup-1)))
	if m < 0 {
		m = 0
	}
	if m > pup-1 {
		m = pup - 1
	}
	return m
}

// newSchedule allocates an empty schedule.
func newSchedule(pup int, expShare float64) *Schedule {
	return &Schedule{PUP: pup, Monthly: make([]int, pup), ExpShare: expShare}
}

// generator produces one schedule attempt for a pattern/bucket pair.
type generator func(rng *rand.Rand, bucket BirthBucket) (*Schedule, error)

// generateVerified retries a generator until the resulting schedule
// classifies as the wanted pattern (or, for exception specs, as anything
// but the wanted pattern while wanted stays its nearest pattern is not
// enforced — exceptions verify only the mismatch).
func generateVerified(rng *rand.Rand, g generator, bucket BirthBucket,
	want core.Pattern, exception bool, scheme quantize.Scheme) (*Schedule, error) {
	const maxTries = 200
	var lastErr error
	for try := 0; try < maxTries; try++ {
		s, err := g(rng, bucket)
		if err != nil {
			lastErr = err
			continue
		}
		got := s.Classify(scheme)
		if exception {
			if got != want {
				return s, nil
			}
			lastErr = fmt.Errorf("synth: exception schedule classified as its own pattern %v", got)
			continue
		}
		if got == want {
			return s, nil
		}
		lastErr = fmt.Errorf("synth: schedule classified as %v, want %v", got, want)
	}
	return nil, fmt.Errorf("synth: giving up after %d tries: %w", maxTries, lastErr)
}
