package synth

import (
	"testing"

	"schemaevo/internal/core"
	"schemaevo/internal/corpus"
)

// analyzedPaperCorpus is shared across calibration tests (generation plus
// full-pipeline analysis of 151 projects is the expensive part).
func analyzedPaperCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := PaperCorpus(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperCorpusCalibration(t *testing.T) {
	c := analyzedPaperCorpus(t)
	if c.Len() != 151 {
		t.Fatalf("corpus size = %d, want 151", c.Len())
	}
	if got := c.FilterMinMonths(12).Len(); got != 151 {
		t.Errorf("projects over 12 months = %d, want all 151", got)
	}

	// Per-pattern populations (Table 2).
	byPattern := map[core.Pattern]int{}
	for _, p := range c.Projects {
		byPattern[p.GroundTruth]++
		if !p.Measures.HasSchema {
			t.Errorf("%s: no schema activity", p.Name)
		}
	}
	for p, want := range PaperPopulations() {
		if byPattern[p] != want {
			t.Errorf("%v population = %d, want %d", p, byPattern[p], want)
		}
	}

	// Exceptions per pattern (Table 2): sigmoid 2, late riser 1,
	// quantum steps 2, siesta 3, others 0.
	wantExc := map[core.Pattern]int{
		core.Sigmoid: 2, core.LateRiser: 1, core.QuantumSteps: 2, core.Siesta: 3,
	}
	reports := core.Exceptions(c.Subjects())
	for _, r := range reports {
		if got := len(r.Exceptions); got != wantExc[r.Pattern] {
			t.Errorf("%v exceptions = %d (%v), want %d", r.Pattern, got, r.Exceptions, wantExc[r.Pattern])
		}
	}

	// Non-exception projects classify to their ground truth through the
	// full realized pipeline.
	for _, p := range c.Projects {
		got := core.Classify(p.Labels)
		if s := p.Subject(); s.IsException() {
			continue
		}
		if got != p.GroundTruth {
			t.Errorf("%s: classified %v, ground truth %v (labels %+v)",
				p.Name, got, p.GroundTruth, p.Labels)
		}
	}
}

func TestPaperCorpusBirthBuckets(t *testing.T) {
	c := analyzedPaperCorpus(t)
	bucketOf := func(m int) int {
		switch {
		case m == 0:
			return 0
		case m <= 6:
			return 1
		case m <= 12:
			return 2
		default:
			return 3
		}
	}
	got := map[core.Pattern][4]int{}
	for _, p := range c.Projects {
		b := bucketOf(p.Measures.BirthMonth)
		row := got[p.GroundTruth]
		row[b]++
		got[p.GroundTruth] = row
	}
	want := map[core.Pattern][4]int{ // Fig. 7 rows
		core.Flatliner:        {23, 0, 0, 0},
		core.RadicalSign:      {16, 19, 5, 1},
		core.Sigmoid:          {0, 1, 2, 16},
		core.LateRiser:        {0, 0, 0, 14},
		core.QuantumSteps:     {4, 11, 2, 6},
		core.RegularlyCurated: {3, 4, 3, 4},
		core.SmokingFunnel:    {0, 0, 0, 7},
		core.Siesta:           {6, 3, 1, 0},
	}
	for p, w := range want {
		if got[p] != w {
			t.Errorf("%v birth buckets = %v, want %v", p, got[p], w)
		}
	}
}

func TestPaperCorpusHeadlineStats(t *testing.T) {
	c := analyzedPaperCorpus(t)
	// §3.4: two thirds of projects have zero active growth months; 58%
	// have a vault. Allow shape-level tolerances.
	zeroActive, vaults := 0, 0
	for _, p := range c.Projects {
		if p.Measures.ActiveGrowthMonths == 0 {
			zeroActive++
		}
		if p.Measures.HasVault {
			vaults++
		}
	}
	if zeroActive < 85 || zeroActive > 110 {
		t.Errorf("zero-active-growth projects = %d, paper reports 98", zeroActive)
	}
	if vaults < 75 || vaults > 100 {
		t.Errorf("vault projects = %d, paper reports ~88 (58%%)", vaults)
	}
	// Two thirds of the corpus is in the Be Quick or Be Dead family.
	bqbd := 0
	for _, p := range c.Projects {
		if core.FamilyOf(p.GroundTruth) == core.BeQuickOrBeDead {
			bqbd++
		}
	}
	if bqbd != 97 {
		t.Errorf("BQBD population = %d, want 97", bqbd)
	}
}

func TestPaperCorpusRoundTripsThroughJSON(t *testing.T) {
	c, err := PaperCorpus(3)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/corpus.json"
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := corpus.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("round trip lost projects: %d vs %d", back.Len(), c.Len())
	}
	for i := range c.Projects {
		if back.Projects[i].GroundTruth != c.Projects[i].GroundTruth {
			t.Errorf("project %d ground truth lost", i)
		}
	}
	// The reloaded corpus re-derives identical measures.
	if err := back.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	if err := c.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	for i := range c.Projects {
		a, b := c.Projects[i].Measures, back.Projects[i].Measures
		if a.BirthMonth != b.BirthMonth || a.TotalActivity != b.TotalActivity ||
			a.TopBandMonth != b.TopBandMonth {
			t.Errorf("project %s measures differ after round trip", c.Projects[i].Name)
		}
	}
}
